//! Fan-out admission ablation: per-delivery prechecks vs the shared
//! memoized precheck vs batched multi-pool admission.
//!
//! The simulator's relay layer fans every broadcast to many node views.
//! Admission splits into a node-independent prefix (txid, vsize,
//! standalone rate, distinct prevout txids — [`AdmissionPrecheck`]) and
//! the node-local graph work (conflict maps, ancestor closure, index
//! maintenance). Three strategies over the same CPFP-heavy workload and
//! the same `K` receiving pools:
//!
//! * `per_delivery` — `add_shared` recomputes the precheck for every
//!   `(tx, node)` pair, the pre-batching shape.
//! * `precheck_memoized` — one [`RelayPayload`] per transaction; the
//!   first delivery populates the memo, the remaining `K - 1` reuse it.
//! * `batched` — same memoized payloads, but the `K` disjoint pools are
//!   fanned across the fork-join worker pool the way
//!   `World::deliver_batch` shards same-timestamp deliveries by node
//!   group. On a single-core host this degenerates to the memoized
//!   column plus scheduling overhead; with cores it overlaps the
//!   node-local graph work.
//!
//! The interesting figure is `per_delivery / precheck_memoized` as `K`
//! grows: the gap is exactly the redundant prefix work the relay memo
//! deletes.

use cn_chain::{Address, Amount, Transaction, Txid};
use cn_mempool::{Mempool, MempoolPolicy};
use cn_net::RelayPayload;
use cn_stats::{Pool, SimRng};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::sync::Arc;

/// Number of node views every broadcast fans out to.
const FANOUT: usize = 8;

/// One broadcast's inputs: the transaction plus its fee. Same CPFP mix
/// as the `mempool_admission` bench (≈ a third of transactions chain
/// off a resident parent) so ancestor walks run on every pool.
fn workload(n: usize, seed: u64) -> Vec<(Transaction, Amount)> {
    let mut rng = SimRng::seed_from_u64(seed);
    let mut resident: Vec<(Txid, u32)> = Vec::new();
    (0..n)
        .map(|i| {
            let parent = if !resident.is_empty() && rng.next_below(3) == 0 {
                let idx = rng.next_below(resident.len() as u64) as usize;
                (resident[idx].1 < 2).then(|| {
                    let vout = resident[idx].1;
                    resident[idx].1 += 1;
                    (resident[idx].0, vout)
                })
            } else {
                None
            };
            let (src, vout) = parent.unwrap_or_else(|| {
                let mut bytes = [0u8; 32];
                bytes[..8].copy_from_slice(&(i as u64).to_le_bytes());
                bytes[8] = 0xA5;
                (Txid::from(bytes), 0)
            });
            let tx = Transaction::builder()
                .add_input_with_sizes(src, vout, 107, 0)
                .pay_to(Address::from_label(&format!("l{i}")), Amount::from_sat(30_000))
                .pay_to(Address::from_label(&format!("r{i}")), Amount::from_sat(20_000))
                .build();
            let fee = Amount::from_sat(tx.vsize() * (2 + rng.next_below(200)));
            resident.push((tx.txid(), 0));
            (tx, fee)
        })
        .collect()
}

fn fresh_pools() -> Vec<Mempool> {
    (0..FANOUT).map(|_| Mempool::new(MempoolPolicy::default())).collect()
}

fn bench_fanout(c: &mut Criterion) {
    let mut group = c.benchmark_group("admission_batch");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(8));
    for n in [1_000usize, 5_000] {
        let txs: Vec<(Arc<Transaction>, Amount)> = workload(n, 17)
            .into_iter()
            .map(|(tx, fee)| (Arc::new(tx), fee))
            .collect();

        group.bench_with_input(BenchmarkId::new("per_delivery", n), &txs, |b, txs| {
            b.iter(|| {
                let mut pools = fresh_pools();
                for (i, (tx, fee)) in txs.iter().enumerate() {
                    for pool in &mut pools {
                        // Precheck recomputed inside every call.
                        let _ = black_box(pool.add_shared(Arc::clone(tx), *fee, i as u64));
                    }
                }
                black_box(pools.iter().map(Mempool::len).sum::<usize>())
            })
        });

        group.bench_with_input(BenchmarkId::new("precheck_memoized", n), &txs, |b, txs| {
            b.iter(|| {
                let mut pools = fresh_pools();
                for (i, (tx, fee)) in txs.iter().enumerate() {
                    let payload = RelayPayload::new(Arc::clone(tx), *fee);
                    for pool in &mut pools {
                        let _ = black_box(pool.add_prechecked(
                            Arc::clone(&payload.tx),
                            payload.fee,
                            i as u64,
                            payload.precheck(),
                        ));
                    }
                }
                black_box(pools.iter().map(Mempool::len).sum::<usize>())
            })
        });

        group.bench_with_input(BenchmarkId::new("batched", n), &txs, |b, txs| {
            let workers = Pool::auto();
            b.iter(|| {
                let mut pools = fresh_pools();
                // Payloads memoized once up front, as the event loop does
                // when it drains a same-timestamp run.
                let payloads: Vec<RelayPayload> = txs
                    .iter()
                    .map(|(tx, fee)| {
                        let p = RelayPayload::new(Arc::clone(tx), *fee);
                        let _ = p.precheck();
                        p
                    })
                    .collect();
                let payloads_ref = &payloads;
                workers.for_each_mut(&mut pools, |pool| {
                    for (i, payload) in payloads_ref.iter().enumerate() {
                        let _ = black_box(pool.add_prechecked(
                            Arc::clone(&payload.tx),
                            payload.fee,
                            i as u64,
                            payload.precheck(),
                        ));
                    }
                });
                black_box(pools.iter().map(Mempool::len).sum::<usize>())
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fanout);
criterion_main!(benches);
