//! Block-template construction cost, and the CPFP ablation: the
//! ancestor-package-aware assembler vs a naive per-transaction greedy.

use cn_chain::{Address, Amount, Params, Transaction, TxOut};
use cn_mempool::{Mempool, MempoolPolicy};
use cn_miner::{BlockAssembler, Priority};
use cn_stats::SimRng;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

/// Mempool with `n` transactions, ~25 % of which are CPFP children of
/// low-fee parents (the package-aware assembler earns its keep there).
fn build_pool(n: usize, seed: u64) -> Mempool {
    let mut rng = SimRng::seed_from_u64(seed);
    let mut pool = Mempool::new(MempoolPolicy::accept_all());
    let mut parents: Vec<Transaction> = Vec::new();
    for i in 0..n {
        let make_child = !parents.is_empty() && rng.next_bool(0.25);
        let tx = if make_child {
            let parent = &parents[rng.next_below(parents.len() as u64) as usize];
            Transaction::builder()
                .add_input_with_sizes(parent.txid(), 0, 107, 0)
                .add_output(TxOut::to_address(Amount::from_sat(10_000), Address::from_label("c")))
                .build()
        } else {
            let mut bytes = [0u8; 32];
            bytes[..8].copy_from_slice(&(i as u64).to_le_bytes());
            Transaction::builder()
                .add_input_with_sizes(bytes.into(), 0, 107, 0)
                .add_output(TxOut::to_address(Amount::from_sat(50_000), Address::from_label("p")))
                .build()
        };
        let rate = if make_child { 50 + rng.next_below(200) } else { rng.next_below(60) };
        let fee = Amount::from_sat(tx.vsize() * rate);
        if pool.add(tx.clone(), fee, i as u64).is_ok() && !make_child {
            parents.push(tx);
        }
    }
    pool
}

/// Naive greedy: take transactions in standalone fee-rate order, skipping
/// any whose parent is not yet included (no package scoring).
fn naive_greedy_revenue(pool: &Mempool, params: &Params) -> u64 {
    let budget = params.max_block_weight - params.coinbase_reserved_weight;
    let mut used = 0u64;
    let mut revenue = 0u64;
    let mut included = std::collections::HashSet::new();
    for entry in pool.iter_by_fee_rate_desc() {
        let parents_ok = entry
            .tx()
            .inputs()
            .iter()
            .all(|i| !pool.contains(&i.prevout.txid) || included.contains(&i.prevout.txid));
        if !parents_ok {
            continue;
        }
        let w = entry.tx().weight();
        if used + w > budget {
            continue;
        }
        used += w;
        revenue += entry.fee().to_sat();
        included.insert(entry.txid());
    }
    revenue
}

fn bench_assembler(c: &mut Criterion) {
    let mut group = c.benchmark_group("assembler");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(8));
    let params = Params { max_block_weight: 400_000, ..Params::mainnet() };
    for n in [1_000usize, 5_000] {
        let pool = build_pool(n, 99);
        let mut assembler = BlockAssembler::new(params.clone());
        group.bench_with_input(BenchmarkId::new("gbt_package_aware", n), &pool, |b, pool| {
            b.iter(|| black_box(assembler.assemble(pool, |_| Priority::Normal)))
        });
        group.bench_with_input(BenchmarkId::new("naive_greedy", n), &pool, |b, pool| {
            b.iter(|| black_box(naive_greedy_revenue(pool, &params)))
        });
        // Report the revenue gap once per size (printed via assertion
        // message if the package-aware assembler ever loses).
        let tpl = assembler.assemble(&pool, |_| Priority::Normal);
        let naive = naive_greedy_revenue(&pool, &params);
        assert!(
            tpl.total_fees.to_sat() >= naive,
            "package-aware assembler must never earn less (gbt {} vs naive {naive})",
            tpl.total_fees.to_sat()
        );
    }
    group.finish();
}

criterion_group!(benches, bench_assembler);
criterion_main!(benches);
