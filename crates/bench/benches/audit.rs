//! End-to-end audit costs on a simulated chain: chain indexing, PPE,
//! attribution, and the differential-prioritization test.

use cn_core::ppe::chain_ppe;
use cn_core::prioritization::differential_prioritization;
use cn_core::self_interest::find_self_interest_transactions;
use cn_core::{attribute, ChainIndex};
use cn_sim::{Scenario, World};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_audit(c: &mut Criterion) {
    // One moderate simulation reused by all audit benches.
    let mut scenario = Scenario::base("audit-bench", 31);
    scenario.duration = 3 * 3_600;
    scenario.params.max_block_weight = 400_000;
    scenario.congestion = cn_sim::congestion::CongestionProfile::flat(1.2);
    scenario.self_interest_rate = 0.01;
    let sim = World::new(scenario).run();
    let index = ChainIndex::build(&sim.chain);
    let attribution = attribute(&index);
    let c_txids = sim.truth.self_interest_txids(&sim.pool_names[0]);

    let mut group = c.benchmark_group("audit");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(8));
    group.bench_function("chain_index_build", |b| {
        b.iter(|| black_box(ChainIndex::build(black_box(&sim.chain))))
    });
    group.bench_function("chain_ppe", |b| b.iter(|| black_box(chain_ppe(black_box(&index)))));
    group.bench_function("attribution", |b| b.iter(|| black_box(attribute(black_box(&index)))));
    group.bench_function("self_interest_replay", |b| {
        b.iter(|| black_box(find_self_interest_transactions(&sim.chain, &attribution)))
    });
    group.bench_function("differential_test", |b| {
        b.iter(|| {
            black_box(differential_prioritization(
                black_box(&index),
                black_box(&c_txids),
                &sim.pool_names[0],
                0.4,
            ))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_audit);
criterion_main!(benches);
