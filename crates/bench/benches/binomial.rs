//! Ablation: exact binomial tail vs normal approximation (§5.1.3).

use cn_stats::binomial::{binomial_test, binomial_test_normal_approx};
use cn_stats::Tail;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_binomial(c: &mut Criterion) {
    let mut group = c.benchmark_group("binomial_test");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(8));
    for y in [100u64, 1_000, 10_000, 100_000] {
        let x = y / 4;
        let theta = 0.2;
        group.bench_with_input(BenchmarkId::new("exact", y), &y, |b, &y| {
            b.iter(|| black_box(binomial_test(black_box(x), y, theta, Tail::Upper)))
        });
        group.bench_with_input(BenchmarkId::new("normal_approx", y), &y, |b, &y| {
            b.iter(|| {
                black_box(binomial_test_normal_approx(black_box(x), y, theta, Tail::Upper))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_binomial);
criterion_main!(benches);
