//! Simulation fast-path costs: the event queue (binary heap vs the
//! calendar [`BucketQueue`] the world runs on) and zero-clone relay
//! delivery ([`Network::broadcast_tx`] fanning one `Arc`'d transaction
//! out to every stakeholder mempool).
//!
//! The queue is exercised under the two due-time regimes the simulator
//! produces: *uniform* over a short horizon (relay deliveries, snapshot
//! ticks) and *heavy-tail* (block finds minutes out, which land in the
//! bucket queue's far map and migrate in as the window advances).

use cn_chain::{Address, Amount, Transaction, TxOut};
use cn_mempool::MempoolPolicy;
use cn_net::{LatencyModel, Network, NodeRole, Topology};
use cn_sim::event::{BucketQueue, EventQueue, SimMillis};
use cn_stats::SimRng;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::sync::Arc;

/// Uniform due times over a ~an-hour window: the relay/snapshot regime.
fn uniform_dues(n: usize, seed: u64) -> Vec<SimMillis> {
    let mut rng = SimRng::seed_from_u64(seed);
    (0..n).map(|_| rng.next_below(3_600_000)).collect()
}

/// Heavy-tail due times: most within seconds, a fat tail minutes out
/// (the block-find regime that lands in the far map).
fn heavy_tail_dues(n: usize, seed: u64) -> Vec<SimMillis> {
    let mut rng = SimRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            if rng.next_below(10) == 0 {
                600_000 + rng.next_below(1_200_000) // 10-30 min out
            } else {
                rng.next_below(5_000) // within 5 s
            }
        })
        .collect()
}

/// Schedules every due time interleaved with pops — a churn pattern close
/// to the world loop's (each popped event schedules successors) — and
/// drains the queue.
fn churn_heap(dues: &[SimMillis]) -> u64 {
    let mut q = EventQueue::new();
    let mut acc = 0u64;
    let mut feed = dues.iter();
    for &d in feed.by_ref().take(dues.len() / 2) {
        q.schedule(d, d);
    }
    while let Some((now, payload)) = q.pop() {
        acc = acc.wrapping_add(now ^ payload);
        if let Some(&d) = feed.next() {
            q.schedule(now + (d % 5_000), d);
        }
    }
    acc
}

fn churn_bucket(dues: &[SimMillis]) -> u64 {
    let mut q = BucketQueue::new();
    let mut acc = 0u64;
    let mut feed = dues.iter();
    for &d in feed.by_ref().take(dues.len() / 2) {
        q.schedule(d, d);
    }
    while let Some((now, payload)) = q.pop() {
        acc = acc.wrapping_add(now ^ payload);
        if let Some(&d) = feed.next() {
            q.schedule(now + (d % 5_000), d);
        }
    }
    acc
}

fn bench_event_queue(c: &mut Criterion) {
    let mut group = c.benchmark_group("event_queue");
    group.sample_size(20);
    for (dist, dues) in [
        ("uniform", uniform_dues(100_000, 11)),
        ("heavy_tail", heavy_tail_dues(100_000, 11)),
    ] {
        group.bench_with_input(BenchmarkId::new("heap", dist), &dues, |b, dues| {
            b.iter(|| black_box(churn_heap(dues)))
        });
        group.bench_with_input(BenchmarkId::new("bucket", dist), &dues, |b, dues| {
            b.iter(|| black_box(churn_bucket(dues)))
        });
    }
    group.finish();
}

/// A small stakeholder network in the shape the world builds: one
/// observer, a few miner hubs, relays in between.
fn relay_network(nodes: usize) -> Network {
    let mut rng = SimRng::seed_from_u64(3);
    let degrees: Vec<usize> = (0..nodes).map(|_| 4).collect();
    let topology = Topology::random(nodes, &degrees, &mut rng);
    let latency = LatencyModel::sample(&topology, 0.2, 0.5, &mut rng);
    let mut roles = vec![NodeRole::Relay; nodes];
    roles[0] = NodeRole::Observer { policy: MempoolPolicy::default() };
    for (h, role) in roles.iter_mut().skip(1).take(4).enumerate() {
        *role = NodeRole::MinerHub { pool: h, policy: MempoolPolicy::default() };
    }
    Network::new(topology, latency, roles)
}

fn bench_relay_delivery(c: &mut Criterion) {
    let mut group = c.benchmark_group("relay");
    group.sample_size(20);
    for nodes in [16usize, 64] {
        let txs: Vec<(Arc<Transaction>, Amount)> = (0..2_000u64)
            .map(|i| {
                let mut prev = [0u8; 32];
                prev[..8].copy_from_slice(&i.to_le_bytes());
                let tx = Transaction::builder()
                    .add_input_with_sizes(prev.into(), 0, 107, 0)
                    .add_output(TxOut::to_address(
                        Amount::from_sat(40_000),
                        Address::from_label("sink"),
                    ))
                    .build();
                let fee = Amount::from_sat(tx.vsize() * 5);
                (Arc::new(tx), fee)
            })
            .collect();
        group.bench_with_input(BenchmarkId::new("broadcast_tx", nodes), &nodes, |b, &nodes| {
            // A fresh network per iteration keeps every broadcast a first
            // admission; construction is a small constant against the
            // 2 000 fan-outs measured.
            b.iter(|| {
                let mut net = relay_network(nodes);
                let mut accepted = 0usize;
                for (when, (tx, fee)) in txs.iter().enumerate() {
                    let results = net.broadcast_tx(5, Arc::clone(tx), *fee, when as u64);
                    accepted += results.iter().filter(|(_, _, r)| r.is_ok()).count();
                }
                black_box(accepted)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_event_queue, bench_relay_delivery);
criterion_main!(benches);
