//! Mempool operation costs: admission, block connect, snapshotting, and
//! the fee-rate-index ablation (maintained index vs re-sorting on demand).

use cn_chain::{Address, Amount, Transaction, TxOut};
use cn_mempool::{Mempool, MempoolPolicy};
use cn_stats::SimRng;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn transactions(n: usize, seed: u64) -> Vec<(Transaction, Amount)> {
    let mut rng = SimRng::seed_from_u64(seed);
    (0..n)
        .map(|i| {
            let mut bytes = [0u8; 32];
            bytes[..8].copy_from_slice(&(i as u64).to_le_bytes());
            let tx = Transaction::builder()
                .add_input_with_sizes(bytes.into(), 0, 107, 0)
                .add_output(TxOut::to_address(
                    Amount::from_sat(50_000),
                    Address::from_label("r"),
                ))
                .build();
            let fee = Amount::from_sat(tx.vsize() * (1 + rng.next_below(200)));
            (tx, fee)
        })
        .collect()
}

fn filled_pool(txs: &[(Transaction, Amount)]) -> Mempool {
    let mut pool = Mempool::new(MempoolPolicy::default());
    for (i, (tx, fee)) in txs.iter().enumerate() {
        pool.add(tx.clone(), *fee, i as u64).expect("distinct inputs");
    }
    pool
}

fn bench_mempool(c: &mut Criterion) {
    let mut group = c.benchmark_group("mempool");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(8));
    for n in [1_000usize, 10_000] {
        let txs = transactions(n, 7);
        group.bench_with_input(BenchmarkId::new("add_n", n), &txs, |b, txs| {
            b.iter(|| black_box(filled_pool(txs)))
        });
        let pool = filled_pool(&txs);
        group.bench_with_input(BenchmarkId::new("snapshot", n), &pool, |b, pool| {
            let mut pool = pool.clone();
            let mut t = 0u64;
            b.iter(|| {
                t += 1;
                black_box(pool.snapshot(t))
            })
        });
        // Ablation: reading the maintained fee-rate index vs sorting all
        // entries on demand (what a naive implementation would do per
        // block template).
        group.bench_with_input(BenchmarkId::new("iter_indexed", n), &pool, |b, pool| {
            b.iter(|| {
                let first = pool.iter_by_fee_rate_desc().take(500).count();
                black_box(first)
            })
        });
        group.bench_with_input(BenchmarkId::new("iter_resort", n), &pool, |b, pool| {
            b.iter(|| {
                let mut entries: Vec<_> =
                    pool.iter().map(|e| (e.fee_rate(), e.sequence(), e.txid())).collect();
                entries.sort_unstable_by(|a, b| b.cmp(a));
                black_box(entries.into_iter().take(500).count())
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_mempool);
criterion_main!(benches);
