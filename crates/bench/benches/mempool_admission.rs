//! Admission-path ablation: interned `u32` handles vs the pre-interned
//! Txid-keyed bookkeeping they replaced.
//!
//! `Mempool::add` resolves each input's parent once through the intern
//! table and then runs every graph step — parent dedup, ancestor closure,
//! package-limit checks, edge insertion — on dense `u32` handles. The
//! baseline here re-implements just that admission *bookkeeping* the way
//! the pre-intern mempool did it: `Txid`-keyed std `HashMap`s and
//! `HashSet` closures, hashing 32-byte keys at every hop. The interned
//! column is the complete admission (entry allocation, fee-rate and
//! ancestor-score index maintenance included), so the baseline is a
//! floor for the old graph cost, not a full-system rival — the figure to
//! watch is how the two *scale* with pool size and chain depth, where
//! the per-hop handle-vs-txid difference compounds. The workload is
//! CPFP-heavy (≈ a third of transactions chain off a resident parent) so
//! ancestor walks actually run; independent admissions mostly measure the
//! conflict/lookup maps.

use cn_chain::{Address, Amount, Transaction, Txid};
use cn_mempool::{Mempool, MempoolPolicy};
use cn_stats::SimRng;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::collections::{HashMap, HashSet};
use std::hint::black_box;

/// One admission's inputs: the transaction plus its fee.
fn workload(n: usize, seed: u64) -> Vec<(Transaction, Amount)> {
    let mut rng = SimRng::seed_from_u64(seed);
    let mut resident: Vec<(Txid, u32)> = Vec::new();
    (0..n)
        .map(|i| {
            // ~1/3 of transactions spend a resident parent's output (two
            // children max per parent, matching mempool child fan-out in
            // the simulated workloads).
            let parent = if !resident.is_empty() && rng.next_below(3) == 0 {
                let idx = rng.next_below(resident.len() as u64) as usize;
                (resident[idx].1 < 2).then(|| {
                    let vout = resident[idx].1;
                    resident[idx].1 += 1;
                    (resident[idx].0, vout)
                })
            } else {
                None
            };
            let (src, vout) = parent.unwrap_or_else(|| {
                let mut bytes = [0u8; 32];
                bytes[..8].copy_from_slice(&(i as u64).to_le_bytes());
                bytes[8] = 0xA5;
                (Txid::from(bytes), 0)
            });
            let tx = Transaction::builder()
                .add_input_with_sizes(src, vout, 107, 0)
                .pay_to(Address::from_label(&format!("l{i}")), Amount::from_sat(30_000))
                .pay_to(Address::from_label(&format!("r{i}")), Amount::from_sat(20_000))
                .build();
            let fee = Amount::from_sat(tx.vsize() * (2 + rng.next_below(200)));
            resident.push((tx.txid(), 0));
            (tx, fee)
        })
        .collect()
}

/// The pre-intern admission bookkeeping, verbatim in shape: every graph
/// edge and closure step keyed by 32-byte `Txid`s in SipHashed std maps.
/// It tracks exactly what admission needs — spent outpoints for conflict
/// checks, parent/child adjacency, and the ancestor closure for package
/// limits — and nothing the interned path doesn't also pay for.
#[derive(Default)]
struct PreInternedGraph {
    parents: HashMap<Txid, Vec<Txid>>,
    children: HashMap<Txid, Vec<Txid>>,
    spent: HashMap<(Txid, u32), Txid>,
    resident: HashSet<Txid>,
}

impl PreInternedGraph {
    fn admit(&mut self, tx: &Transaction, max_ancestors: usize) -> bool {
        let txid = tx.txid();
        if self.resident.contains(&txid) {
            return false;
        }
        for input in tx.inputs() {
            if self.spent.contains_key(&(input.prevout.txid, input.prevout.vout)) {
                return false;
            }
        }
        let mut parents: Vec<Txid> = Vec::new();
        for input in tx.inputs() {
            let p = input.prevout.txid;
            if self.resident.contains(&p) && !parents.contains(&p) {
                parents.push(p);
            }
        }
        // Ancestor closure over Txid keys — the package-limit walk.
        let mut closure: HashSet<Txid> = HashSet::new();
        let mut stack = parents.clone();
        while let Some(t) = stack.pop() {
            if !closure.insert(t) {
                continue;
            }
            if let Some(ps) = self.parents.get(&t) {
                stack.extend(ps.iter().copied());
            }
        }
        if closure.len() >= max_ancestors {
            return false;
        }
        for input in tx.inputs() {
            self.spent.insert((input.prevout.txid, input.prevout.vout), txid);
        }
        for p in &parents {
            self.children.entry(*p).or_default().push(txid);
        }
        self.parents.insert(txid, parents);
        self.resident.insert(txid);
        true
    }
}

fn bench_admission(c: &mut Criterion) {
    let mut group = c.benchmark_group("mempool_admission");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(8));
    for n in [1_000usize, 10_000] {
        let txs = workload(n, 11);
        group.bench_with_input(BenchmarkId::new("interned", n), &txs, |b, txs| {
            b.iter(|| {
                let mut pool = Mempool::new(MempoolPolicy::default());
                for (i, (tx, fee)) in txs.iter().enumerate() {
                    let _ = black_box(pool.add(tx.clone(), *fee, i as u64));
                }
                black_box(pool.len())
            })
        });
        group.bench_with_input(BenchmarkId::new("pre_interned_baseline", n), &txs, |b, txs| {
            b.iter(|| {
                let mut graph = PreInternedGraph::default();
                let mut admitted = 0usize;
                for (tx, _) in txs {
                    if black_box(graph.admit(tx, 25)) {
                        admitted += 1;
                    }
                }
                black_box(admitted)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_admission);
criterion_main!(benches);
