//! Ablation: cross-block pair-counting kernels.
//!
//! The streaming auditor charges every sealed block against up to W
//! window partners. This bench compares the three ways to count one
//! sealed-vs-partner pair of blocks:
//!
//! * `reference_quadratic` — the literal per-pair probe the kernels
//!   replaced (every (later, earlier) row pair compared);
//! * `sorted_merge` — arrival two-pointer + Fenwick over fee slots,
//!   O((n+m) log n);
//! * `bitset` — fee-descending sweep + arrival-rank bitset prefix
//!   popcount, O(m·n/64) with a tiny constant.
//!
//! Regimes: block size (rows per side) × arrival overlap. `disjoint`
//! separates the two blocks' arrival ranges (the merge kernel's Fenwick
//! fills before most queries), `interleaved` fully mixes them (the
//! worst case for eligibility prefixes).

use cn_chain::{FeeRate, Timestamp};
use cn_core::pairs::{
    count_cross_block_bitset, count_cross_block_merge, count_cross_block_reference, BlockPairSet,
};
use cn_stats::SimRng;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

const EPSILON: u64 = 10;

/// `n` rows with arrivals drawn from `[t0, t0 + spread)`.
fn rows(n: usize, t0: u64, spread: u64, seed: u64) -> Vec<(Timestamp, FeeRate)> {
    let mut rng = SimRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            (
                t0 + rng.next_below(spread),
                FeeRate::from_sat_per_kvb(1_000 + rng.next_below(200_000)),
            )
        })
        .collect()
}

fn bench_kernels(c: &mut Criterion) {
    let mut group = c.benchmark_group("pair_kernels");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(8));
    for &n in &[256usize, 1_024, 4_096] {
        for (overlap, t0_earlier, t0_later) in
            [("interleaved", 0u64, 0u64), ("disjoint", 0, 120_000)]
        {
            let earlier_rows = rows(n, t0_earlier, 100_000, 7);
            let later_rows = rows(n, t0_later, 100_000, 8);
            let earlier = BlockPairSet::new(earlier_rows.iter().copied());
            let later = BlockPairSet::new(later_rows.iter().copied());
            let label = |kernel: &str| format!("{kernel}/{overlap}");

            // The quadratic probe at n=4096 is 16.7M pair comparisons per
            // direction — keep it, that *is* the ablation.
            group.bench_with_input(
                BenchmarkId::new(label("reference_quadratic"), n),
                &(&later_rows, &earlier_rows),
                |b, (l, e)| b.iter(|| black_box(count_cross_block_reference(l, e, EPSILON))),
            );
            group.bench_with_input(
                BenchmarkId::new(label("sorted_merge"), n),
                &(&later, &earlier),
                |b, (l, e)| b.iter(|| black_box(count_cross_block_merge(l, e, EPSILON))),
            );
            group.bench_with_input(
                BenchmarkId::new(label("bitset"), n),
                &(&later, &earlier),
                |b, (l, e)| b.iter(|| black_box(count_cross_block_bitset(l, e, EPSILON))),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_kernels);
criterion_main!(benches);
