//! Ablation: O(n²) reference vs O(n log² n) CDQ violation-pair counting.

use cn_chain::FeeRate;
use cn_core::pairs::{count_violations_cdq, count_violations_reference, PairObservation};
use cn_stats::SimRng;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn observations(n: usize, seed: u64) -> Vec<PairObservation> {
    let mut rng = SimRng::seed_from_u64(seed);
    (0..n)
        .map(|_| PairObservation {
            received: rng.next_below(100_000),
            fee_rate: FeeRate::from_sat_per_kvb(1_000 + rng.next_below(200_000)),
            height: rng.next_below(120),
        })
        .collect()
}

fn bench_pairs(c: &mut Criterion) {
    let mut group = c.benchmark_group("violation_pairs");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(8));
    for n in [500usize, 2_000, 8_000] {
        let obs = observations(n, 42);
        group.bench_with_input(BenchmarkId::new("reference_quadratic", n), &obs, |b, obs| {
            b.iter(|| black_box(count_violations_reference(black_box(obs), 10)))
        });
        group.bench_with_input(BenchmarkId::new("cdq", n), &obs, |b, obs| {
            b.iter(|| black_box(count_violations_cdq(black_box(obs), 10)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_pairs);
criterion_main!(benches);
