//! Regenerates the paper's tables and figures.
//!
//! ```text
//! experiments [--quick] [--serial] [--verify] all
//! experiments [--quick] table2 fig7 ...
//! experiments --scale large megasim
//! experiments [--quick] --stream
//! experiments --list
//! ```
//!
//! `--scale <quick|full|large>` picks the lab scale explicitly; `--quick`
//! remains shorthand for `--scale quick`, and the default is full. The
//! `large` tier exists for the `megasim` scale experiment (thousands of
//! blocks through the event-log path); the standard datasets treat it
//! like full scale.
//!
//! `--stream` runs the long-lived service loop instead of the experiment
//! suite: it replays dataset 𝒜's interleaved block/snapshot event stream
//! through the incremental `StreamingAuditor` the way a live auditing
//! daemon would, printing rolling verdicts as blocks arrive and the exact
//! on-demand verdict at the end, then records ingestion throughput and
//! peak-RSS counters into `BENCH_pipeline.json`.
//!
//! Experiments run on a worker pool (one thread per available core, capped
//! at the number of ids); output is buffered per experiment and printed in
//! presentation order, so parallel runs are byte-identical to `--serial`
//! runs modulo the wall-clock figures in `[... took ...]` lines. On a box
//! with fewer than two workers the pool is skipped entirely — a plain
//! in-thread loop produces the same bytes without paying for the queue and
//! condvar machinery; `BENCH_pipeline.json` records which mode ran. Each
//! run also writes `BENCH_pipeline.json` with per-dataset simulation
//! times, per-experiment times, and total wall time — the perf trajectory
//! every future change is measured against.
//!
//! Output is printed and mirrored to `results/<id>.txt`. With `--verify`,
//! each freshly generated report is first compared byte-for-byte against
//! the checked-in `results/<id>.txt`; any mismatch fails the run (exit 3)
//! after all experiments finish, making golden drift visible in CI before
//! the files are refreshed.

use cn_bench::exp_streaming::peak_rss_kb;
use cn_bench::{run_experiment, Lab, MegasimTier, StreamingBench, ALL_IDS, DATASET_NAMES};
use cn_data::Scale;
use cn_core::streaming::{interleave, StreamEvent, StreamingAuditor, StreamingConfig};
use cn_core::StreamExpectation;
use std::fmt::Write as _;
use std::io::Write as _;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

/// Serial wall time of `experiments --quick all` on the reference machine,
/// taken as the minimum of three `--serial` runs (the least contaminated
/// figure on a noisy box). Re-measured after each hot-path overhaul so the
/// recorded speedup compares against the *current* serial engine, not a
/// stale one (the pre-overhaul origin was 49.029 s; earlier refreshes read
/// 17.1 s before the hardware-hash and scheduler work landed, then
/// 13.182 s before the incremental-assembly and fork-and-replay work —
/// though the box itself had also drifted ~20 % slower by the time of that
/// reading, so the true engine delta is larger than the two figures
/// suggest). The 32.704 s figure reflected the observer-fleet growth
/// (23rd experiment plus per-observer bookkeeping); 37.906 s added the
/// 24th (`streaming`: seven full event-stream replays per dataset). The
/// 27.332 s figure was a genuine engine win at unchanged workload: the
/// streaming auditor's cross-block pair scans moved from per-pair probing
/// to sorted-merge/bitset kernels, and issuance moved to pre-generated
/// per-transaction draw records (the fork-join layer's serial path). The
/// current figure (minimum of five runs) is the admission/eviction drain:
/// relay-shared admission prechecks, batched same-timestamp delivery
/// admission, parallel per-pool block ticks, and the mempool
/// index-maintenance diet (weight multiset and fee-rate set deleted,
/// fixed-point ancestor-rate prefix, seeded-cursor rebuilds).
const SERIAL_BASELINE_QUICK_ALL_SECS: f64 = 24.187;

/// Checked-in wall-time anchor CI gates against (`ci/bench_baseline_wall_seconds.txt`).
/// Read at runtime so the emitted speedup always compares to the same number
/// the regression gate uses; `None` when invoked outside the repo root.
fn checked_in_baseline_secs() -> Option<f64> {
    std::fs::read_to_string("ci/bench_baseline_wall_seconds.txt")
        .ok()
        .and_then(|s| s.trim().parse::<f64>().ok())
        .filter(|b| *b > 0.0)
}

/// One experiment's outcome, produced by a worker thread.
struct Slot {
    /// `None` for an unknown id.
    report: Option<String>,
    elapsed: Duration,
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--list") {
        for id in ALL_IDS {
            println!("{id}");
        }
        return;
    }
    // `--scale <tier>` consumes its value token, so walk the args rather
    // than filtering on the `--` prefix.
    let mut scale = Scale::Full;
    let mut serial_flag = false;
    let mut verify = false;
    let mut stream = false;
    let mut ids: Vec<String> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--quick" => scale = Scale::Quick,
            "--serial" => serial_flag = true,
            "--verify" => verify = true,
            "--stream" => stream = true,
            "--scale" => {
                i += 1;
                scale = match args.get(i).map(String::as_str) {
                    Some("quick") => Scale::Quick,
                    Some("full") => Scale::Full,
                    Some("large") => Scale::Large,
                    other => {
                        eprintln!("--scale expects quick|full|large, got {other:?}");
                        std::process::exit(2);
                    }
                };
            }
            flag if flag.starts_with("--") => {
                eprintln!("unknown flag: {flag}");
                std::process::exit(2);
            }
            id => ids.push(id.to_string()),
        }
        i += 1;
    }
    if stream {
        let lab = Lab::new(scale);
        let wall_started = Instant::now();
        run_stream_service(&lab);
        let total_wall = wall_started.elapsed().as_secs_f64();
        if let Err(e) = write_bench_json(&lab, scale, "stream", 1, 1, &[], total_wall) {
            eprintln!("warning: could not write BENCH_pipeline.json: {e}");
        }
        return;
    }
    let run_all = ids.is_empty() || ids.iter().any(|a| a == "all");
    if run_all {
        ids = ALL_IDS.iter().map(|s| s.to_string()).collect();
    }
    let lab = Lab::new(scale);
    let _ = std::fs::create_dir_all("results");

    let wall_started = Instant::now();
    // Detected once, recorded in BENCH_pipeline.json next to the count
    // actually used — a 1-worker record on a 16-core box is a probe bug,
    // not a measurement.
    let detected = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    // Adaptive pool: with fewer than two workers the pool's shared
    // counter, slot mutex, and condvar buy nothing, so fall back to the
    // plain loop a `--serial` run uses. The JSON records "serial-auto" so
    // a trajectory reader can tell a constrained box from a deliberate
    // serial measurement.
    let auto_serial = !serial_flag && detected < 2;
    let serial = serial_flag || auto_serial;
    let mode = if serial_flag {
        "serial"
    } else if auto_serial {
        "serial-auto"
    } else {
        "parallel"
    };
    // Warm all three datasets concurrently when the whole suite runs (it
    // touches all of them anyway); targeted invocations stay lazy so e.g.
    // `experiments fig1` never pays for dataset 𝒞.
    if run_all && !serial {
        lab.prewarm();
    }
    let workers = if serial { 1 } else { detected.min(ids.len()).max(1) };

    let mut failed = false;
    let mut verify_failures: Vec<String> = Vec::new();
    let mut experiment_secs: Vec<(String, f64)> = Vec::with_capacity(ids.len());
    if serial {
        // In-thread loop: same ids, same order, same bytes as the pool.
        for id in &ids {
            let started = Instant::now();
            let report = run_experiment(id, &lab);
            let slot = Slot { report, elapsed: started.elapsed() };
            emit_report(id, slot, verify, &mut failed, &mut verify_failures, &mut experiment_secs);
        }
    } else {
        // Worker pool with order-preserving output: workers claim ids
        // from a shared counter and park finished reports in `slots`; the
        // main thread prints slot i only after slots 0..i, so stdout
        // matches a serial run.
        let next = AtomicUsize::new(0);
        let slots: Mutex<Vec<Option<Slot>>> = Mutex::new((0..ids.len()).map(|_| None).collect());
        let ready = Condvar::new();
        std::thread::scope(|s| {
            for _ in 0..workers {
                s.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= ids.len() {
                        break;
                    }
                    let started = Instant::now();
                    let report = run_experiment(&ids[i], &lab);
                    let slot = Slot { report, elapsed: started.elapsed() };
                    let mut guard = slots.lock().expect("slot mutex");
                    guard[i] = Some(slot);
                    ready.notify_all();
                });
            }
            for (i, id) in ids.iter().enumerate() {
                let slot = {
                    let mut guard = slots.lock().expect("slot mutex");
                    loop {
                        if let Some(slot) = guard[i].take() {
                            break slot;
                        }
                        guard = ready.wait(guard).expect("slot mutex");
                    }
                };
                emit_report(
                    id,
                    slot,
                    verify,
                    &mut failed,
                    &mut verify_failures,
                    &mut experiment_secs,
                );
            }
        });
    }

    let total_wall = wall_started.elapsed().as_secs_f64();
    if let Err(e) =
        write_bench_json(&lab, scale, mode, detected, workers, &experiment_secs, total_wall)
    {
        eprintln!("warning: could not write BENCH_pipeline.json: {e}");
    }
    if failed {
        std::process::exit(2);
    }
    if !verify_failures.is_empty() {
        eprintln!("verify: {} experiment(s) drifted from results/: {}", verify_failures.len(), verify_failures.join(" "));
        std::process::exit(3);
    }
}

/// Prints one finished experiment, mirrors it to `results/<id>.txt`, and —
/// under `--verify` — diffs it against the previously checked-in bytes
/// first, so golden drift is detected before the file is refreshed.
fn emit_report(
    id: &str,
    slot: Slot,
    verify: bool,
    failed: &mut bool,
    verify_failures: &mut Vec<String>,
    experiment_secs: &mut Vec<(String, f64)>,
) {
    match slot.report {
        Some(report) => {
            println!("==================== {id} ====================");
            println!("{report}");
            println!("[{id} took {:.1?}]", slot.elapsed);
            experiment_secs.push((id.to_string(), slot.elapsed.as_secs_f64()));
            if verify {
                match std::fs::read_to_string(format!("results/{id}.txt")) {
                    Ok(golden) if golden == report => {}
                    Ok(_) => {
                        eprintln!("verify: {id} output differs from checked-in results/{id}.txt");
                        verify_failures.push(id.to_string());
                    }
                    Err(e) => {
                        eprintln!("verify: could not read results/{id}.txt: {e}");
                        verify_failures.push(id.to_string());
                    }
                }
            }
            match std::fs::File::create(format!("results/{id}.txt")) {
                Ok(mut f) => {
                    let _ = f.write_all(report.as_bytes());
                }
                Err(e) => eprintln!("warning: could not write results/{id}.txt: {e}"),
            }
        }
        None => {
            eprintln!("unknown experiment id: {id} (use --list)");
            *failed = true;
        }
    }
}

/// `--stream`: the long-lived service loop. Replays dataset 𝒜's
/// interleaved block/snapshot event stream through a [`StreamingAuditor`]
/// in arrival order, printing a rolling verdict every few blocks the way
/// a live auditing daemon would, then takes the exact on-demand verdict
/// (bit-identical to the batch audit) and records ingestion, throughput,
/// and peak-RSS counters for `BENCH_pipeline.json`.
fn run_stream_service(lab: &Lab) {
    /// Rolling-verdict cadence, in ingested blocks.
    const REPORT_EVERY_BLOCKS: u64 = 25;
    let (out, _) = lab.a();
    let s = &out.scenario;
    let exp =
        StreamExpectation::from_run(s.duration, s.snapshot_interval, s.snapshot_detail_every);
    let mut auditor =
        StreamingAuditor::new(out.chain.initial_utxos(), StreamingConfig::new(exp));
    let started = Instant::now();
    let mut last_report = 0u64;
    for ev in interleave(out.chain.blocks(), &out.snapshots) {
        if let Err(e) = auditor.push_event(&ev) {
            eprintln!("stream: unrecoverable ingest error: {e}");
            std::process::exit(2);
        }
        if matches!(ev, StreamEvent::Block(_))
            && auditor.tip_blocks() >= last_report + REPORT_EVERY_BLOCKS
        {
            last_report = auditor.tip_blocks();
            print!("{}", auditor.rolling().render());
        }
    }
    let replay_seconds = started.elapsed().as_secs_f64();
    let c = auditor.counters();
    println!("---- end of stream ----");
    print!("{}", auditor.rolling().render());
    match auditor.verdict() {
        Ok(report) => println!("{}", report.render()),
        Err(e) => println!("exact verdict refused: {e}"),
    }
    println!(
        "[stream replayed {} events in {:.2}s — {:.0} events/s, peak window rows {}]",
        c.events,
        replay_seconds,
        c.events as f64 / replay_seconds.max(1e-9),
        c.peak_window_rows,
    );
    lab.record_streaming(StreamingBench {
        events: c.events,
        blocks: c.blocks,
        snapshots: c.snapshots,
        rows_processed: c.rows_processed,
        peak_window_rows: c.peak_window_rows,
        replay_seconds,
        peak_rss_kb: peak_rss_kb(),
    });
}

/// Emits `BENCH_pipeline.json` by hand (no JSON dependency in-tree).
fn write_bench_json(
    lab: &Lab,
    scale: Scale,
    mode: &str,
    workers_detected: usize,
    workers_used: usize,
    experiment_secs: &[(String, f64)],
    total_wall: f64,
) -> std::io::Result<()> {
    let mut json = String::new();
    json.push_str("{\n");
    // Schema 7: adds the `megasim` block (the scale tier's per-tier
    // simulate→log→replay counters, throughput, and `VmHWM` after replay
    // — what the CI flat-RSS ceiling gates on) and the "large" scale.
    // Schema 6 split the `mempool` subsystem-seconds slot into
    // `admission` + `eviction` (per-view block-connect eviction was
    // previously buried in `assembly`), and added batched-admission and
    // rebuild-reason counters (`admission_precheck_hits`,
    // `delivery_batches`, `batched_deliveries`, `max_delivery_batch`,
    // `rebuilds_with_{accelerate,decelerate,exclude}`). Schema 5 added
    // intra-simulation fork-join accounting — the `sim_workers` width
    // used inside each simulation, the `pregen` subsystem-seconds slot,
    // and the per-worker `pregen_shards` breakdown. Schema 4 added the
    // `streaming` block (ingestion counters, replay throughput, peak
    // RSS) and the "stream" mode. Schema 3 added per-observer
    // snapshot/degraded counters, the fleet subsystem-seconds slot, and
    // the tri-state mode (serial/serial-auto/parallel). Bump on any key
    // change so trajectory tooling can tell versions apart without
    // sniffing.
    json.push_str("  \"schema\": 7,\n");
    let scale_name = match scale {
        Scale::Quick => "quick",
        Scale::Full => "full",
        Scale::Large => "large",
    };
    let _ = writeln!(json, "  \"scale\": \"{scale_name}\",");
    let _ = writeln!(json, "  \"mode\": \"{mode}\",");
    let _ = writeln!(json, "  \"workers_detected\": {workers_detected},");
    let _ = writeln!(json, "  \"workers_used\": {workers_used},");
    // The fork-join width *inside* each simulation (workload
    // pre-generation; also what the streaming auditor and reconciler
    // default to). Honors CN_WORKERS, so the CI dual-run gate's forced
    // widths are visible in the artifact it checks.
    let _ = writeln!(json, "  \"sim_workers\": {},", cn_stats::Pool::auto().workers());
    json.push_str("  \"dataset_sim_seconds\": {\n");
    let sim = lab.sim_seconds();
    for (i, name) in DATASET_NAMES.iter().enumerate() {
        let comma = if i + 1 < DATASET_NAMES.len() { "," } else { "" };
        match sim[i] {
            Some(secs) => {
                let _ = writeln!(json, "    \"{name}\": {secs:.3}{comma}");
            }
            None => {
                let _ = writeln!(json, "    \"{name}\": null{comma}");
            }
        }
    }
    json.push_str("  },\n");
    json.push_str("  \"sim_profile\": {\n");
    let profiles = lab.sim_profiles();
    for (i, name) in DATASET_NAMES.iter().enumerate() {
        let comma = if i + 1 < DATASET_NAMES.len() { "," } else { "" };
        match &profiles[i] {
            Some(p) => {
                let _ = writeln!(json, "    \"{name}\": {{");
                let _ = writeln!(json, "      \"events_popped\": {},", p.events_popped);
                let _ = writeln!(json, "      \"events_per_sec\": {:.0},", p.events_per_sec());
                let _ = writeln!(json, "      \"deliveries\": {},", p.deliveries);
                let _ = writeln!(json, "      \"user_txs\": {},", p.user_txs);
                let _ = writeln!(json, "      \"self_txs\": {},", p.self_txs);
                let _ = writeln!(json, "      \"blocks\": {},", p.blocks);
                let _ = writeln!(json, "      \"snapshot_ticks\": {},", p.snapshot_ticks);
                let _ = writeln!(json, "      \"observer_snapshots\": {:?},", p.observer_snapshots);
                let _ = writeln!(json, "      \"observer_degraded\": {:?},", p.observer_degraded);
                let _ = writeln!(
                    json,
                    "      \"assembly_incremental_hits\": {},",
                    p.assembly_incremental_hits
                );
                let _ = writeln!(
                    json,
                    "      \"assembly_full_rebuilds\": {},",
                    p.assembly_full_rebuilds
                );
                let _ = writeln!(
                    json,
                    "      \"rebuilds_with_accelerate\": {},",
                    p.rebuilds_with_accelerate
                );
                let _ = writeln!(
                    json,
                    "      \"rebuilds_with_decelerate\": {},",
                    p.rebuilds_with_decelerate
                );
                let _ = writeln!(json, "      \"rebuilds_with_exclude\": {},", p.rebuilds_with_exclude);
                let _ = writeln!(
                    json,
                    "      \"admission_precheck_hits\": {},",
                    p.admission_precheck_hits
                );
                let _ = writeln!(json, "      \"delivery_batches\": {},", p.delivery_batches);
                let _ = writeln!(json, "      \"batched_deliveries\": {},", p.batched_deliveries);
                let _ = writeln!(json, "      \"max_delivery_batch\": {},", p.max_delivery_batch);
                let _ = writeln!(json, "      \"subsystem_seconds\": {{");
                let _ = writeln!(json, "        \"issue\": {:.3},", p.issue);
                let _ = writeln!(json, "        \"relay\": {:.3},", p.relay);
                let _ = writeln!(json, "        \"faults\": {:.3},", p.faults);
                let _ = writeln!(json, "        \"admission\": {:.3},", p.admission);
                let _ = writeln!(json, "        \"eviction\": {:.3},", p.eviction);
                let _ = writeln!(json, "        \"assembly\": {:.3},", p.assembly);
                let _ = writeln!(json, "        \"snapshot\": {:.3},", p.snapshot);
                let _ = writeln!(json, "        \"fleet\": {:.3},", p.fleet);
                let _ = writeln!(json, "        \"pregen\": {:.3}", p.pregen);
                let _ = writeln!(json, "      }},");
                let _ = writeln!(json, "      \"pregen_shards\": {{");
                let _ = writeln!(json, "        \"batches\": {},", p.pregen_batches);
                let _ = writeln!(json, "        \"items\": {},", p.pregen_items);
                let _ = writeln!(json, "        \"items_per_worker\": {:?},", p.pregen_shard_items);
                let secs: Vec<String> =
                    p.pregen_shard_seconds.iter().map(|s| format!("{s:.3}")).collect();
                let _ = writeln!(json, "        \"seconds_per_worker\": [{}]", secs.join(", "));
                let _ = writeln!(json, "      }}");
                let _ = writeln!(json, "    }}{comma}");
            }
            None => {
                let _ = writeln!(json, "    \"{name}\": null{comma}");
            }
        }
    }
    json.push_str("  },\n");
    json.push_str("  \"experiment_seconds\": {\n");
    for (i, (id, secs)) in experiment_secs.iter().enumerate() {
        let comma = if i + 1 < experiment_secs.len() { "," } else { "" };
        let _ = writeln!(json, "    \"{id}\": {secs:.3}{comma}");
    }
    json.push_str("  },\n");
    // Streaming-auditor counters: present when the `streaming` experiment
    // or the `--stream` service loop ran this process. CI asserts the
    // windowed state stayed O(window) from these
    // (peak_window_rows ≪ rows_processed).
    match lab.streaming_bench() {
        Some(b) => {
            json.push_str("  \"streaming\": {\n");
            let _ = writeln!(json, "    \"events\": {},", b.events);
            let _ = writeln!(json, "    \"blocks\": {},", b.blocks);
            let _ = writeln!(json, "    \"snapshots\": {},", b.snapshots);
            let _ = writeln!(json, "    \"rows_processed\": {},", b.rows_processed);
            let _ = writeln!(json, "    \"peak_window_rows\": {},", b.peak_window_rows);
            let _ = writeln!(json, "    \"replay_seconds\": {:.3},", b.replay_seconds);
            let _ = writeln!(json, "    \"events_per_sec\": {:.0},", b.events_per_sec());
            match b.peak_rss_kb {
                Some(kb) => {
                    let _ = writeln!(json, "    \"peak_rss_kb\": {kb}");
                }
                None => json.push_str("    \"peak_rss_kb\": null\n"),
            }
            json.push_str("  },\n");
        }
        None => json.push_str("  \"streaming\": null,\n"),
    }
    // Megasim scale-tier counters: present when the `megasim` experiment
    // ran this process. CI's flat-RSS ceiling reads the two
    // `rss_after_replay_kb` values (main must stay within 2× ref despite
    // the 10× block target).
    match lab.megasim_bench() {
        Some(b) => {
            let tier_json = |json: &mut String, key: &str, t: &MegasimTier, comma: &str| {
                let _ = writeln!(json, "    \"{key}\": {{");
                let _ = writeln!(json, "      \"blocks\": {},", t.blocks);
                let _ = writeln!(json, "      \"snapshots\": {},", t.snapshots);
                let _ = writeln!(json, "      \"log_bytes\": {},", t.log_bytes);
                let _ = writeln!(json, "      \"log_segments\": {},", t.log_segments);
                let _ = writeln!(json, "      \"bytes_per_block\": {:.1},", t.bytes_per_block());
                let _ = writeln!(json, "      \"spill_segments\": {},", t.spill_segments);
                let _ = writeln!(json, "      \"spill_bytes\": {},", t.spill_bytes);
                let _ = writeln!(json, "      \"sim_seconds\": {:.3},", t.sim_seconds);
                let _ = writeln!(json, "      \"replay_seconds\": {:.3},", t.replay_seconds);
                let _ = writeln!(json, "      \"blocks_per_sec\": {:.1},", t.blocks_per_sec());
                match t.rss_after_sim_kb {
                    Some(kb) => {
                        let _ = writeln!(json, "      \"rss_after_sim_kb\": {kb},");
                    }
                    None => json.push_str("      \"rss_after_sim_kb\": null,\n"),
                }
                match t.rss_after_replay_kb {
                    Some(kb) => {
                        let _ = writeln!(json, "      \"rss_after_replay_kb\": {kb}");
                    }
                    None => json.push_str("      \"rss_after_replay_kb\": null\n"),
                }
                let _ = writeln!(json, "    }}{comma}");
            };
            json.push_str("  \"megasim\": {\n");
            tier_json(&mut json, "ref", &b.reference, ",");
            tier_json(&mut json, "main", &b.main, ",");
            match (b.reference.rss_after_replay_kb, b.main.rss_after_replay_kb) {
                (Some(r), Some(m)) if r > 0 => {
                    let _ = writeln!(
                        json,
                        "    \"rss_ratio_main_over_ref\": {:.2}",
                        m as f64 / r as f64
                    );
                }
                _ => json.push_str("    \"rss_ratio_main_over_ref\": null\n"),
            }
            json.push_str("  },\n");
        }
        None => json.push_str("  \"megasim\": null,\n"),
    }
    let _ = writeln!(json, "  \"total_wall_seconds\": {total_wall:.3},");
    let _ = writeln!(
        json,
        "  \"serial_baseline_quick_all_seconds\": {SERIAL_BASELINE_QUICK_ALL_SECS:.3},"
    );
    // The speedup figure only means something for the configuration the
    // baseline was measured on: the full quick-scale suite.
    let full_quick_suite = scale == Scale::Quick && experiment_secs.len() == ALL_IDS.len();
    if full_quick_suite && total_wall > 0.0 {
        let _ = writeln!(
            json,
            "  \"speedup_vs_serial_baseline\": {:.2},",
            SERIAL_BASELINE_QUICK_ALL_SECS / total_wall
        );
    } else {
        json.push_str("  \"speedup_vs_serial_baseline\": null,\n");
    }
    // Unlike the serial-baseline ratio above, this one stays meaningful on
    // a 1-worker box: it compares against the checked-in wall-time anchor
    // the CI gate uses, so algorithmic wins show up even without
    // parallelism. Emitted only for the configuration the anchor was
    // measured on (full quick suite).
    match checked_in_baseline_secs() {
        Some(baseline) if full_quick_suite && total_wall > 0.0 => {
            let _ = writeln!(json, "  \"checked_in_baseline_wall_seconds\": {baseline:.3},");
            let _ = writeln!(
                json,
                "  \"single_thread_speedup_vs_checked_in_baseline\": {:.2}",
                baseline / total_wall
            );
        }
        _ => {
            json.push_str("  \"checked_in_baseline_wall_seconds\": null,\n");
            json.push_str("  \"single_thread_speedup_vs_checked_in_baseline\": null\n");
        }
    }
    json.push_str("}\n");
    std::fs::write("BENCH_pipeline.json", json)
}
