//! Regenerates the paper's tables and figures.
//!
//! ```text
//! experiments [--quick] all
//! experiments [--quick] table2 fig7 ...
//! experiments --list
//! ```
//!
//! Output is printed and mirrored to `results/<id>.txt`.

use cn_bench::{run_experiment, Lab, ALL_IDS};
use std::io::Write as _;
use std::time::Instant;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--list") {
        for id in ALL_IDS {
            println!("{id}");
        }
        return;
    }
    let quick = args.iter().any(|a| a == "--quick");
    let mut ids: Vec<String> =
        args.into_iter().filter(|a| !a.starts_with("--")).collect();
    if ids.is_empty() || ids.iter().any(|a| a == "all") {
        ids = ALL_IDS.iter().map(|s| s.to_string()).collect();
    }
    let lab = if quick { Lab::quick() } else { Lab::full() };
    let _ = std::fs::create_dir_all("results");
    let mut failed = false;
    for id in &ids {
        let started = Instant::now();
        match run_experiment(id, &lab) {
            Some(report) => {
                println!("==================== {id} ====================");
                println!("{report}");
                println!("[{id} took {:.1?}]", started.elapsed());
                match std::fs::File::create(format!("results/{id}.txt")) {
                    Ok(mut f) => {
                        let _ = f.write_all(report.as_bytes());
                    }
                    Err(e) => eprintln!("warning: could not write results/{id}.txt: {e}"),
                }
            }
            None => {
                eprintln!("unknown experiment id: {id} (use --list)");
                failed = true;
            }
        }
    }
    if failed {
        std::process::exit(2);
    }
}
