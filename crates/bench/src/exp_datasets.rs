//! Dataset-description experiments: Table 1 and Figures 2–5 and 9–12.

use crate::lab::Lab;
use cn_core::congestion::{congested_fraction, fee_rates_by_congestion, size_series};
use cn_core::delay::{commit_delays, delays_by_fee_band, first_seen_times, DelayRecord, FeeBand};
use cn_core::report::{fmt_pct, Table};
use cn_core::{attribute, ChainIndex};
use cn_data::calibration;
use cn_sim::SimOutput;
use cn_stats::{ks_two_sample, Ecdf};
use std::fmt::Write as _;

fn block_capacity(out: &SimOutput) -> u64 {
    out.scenario.params.max_block_vsize()
}

/// Table 1: dataset summaries, paper vs measured.
pub fn table1(lab: &Lab) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "Table 1 — dataset summaries (measured vs paper; spans are scaled)");
    let mut table = Table::new(&[
        "dataset",
        "blocks",
        "issued txs",
        "CPFP %",
        "empty blocks",
        "paper blocks",
        "paper txs",
        "paper CPFP %",
        "paper empty",
    ]);
    let paper = [calibration::DATASET_A, calibration::DATASET_B, calibration::DATASET_C];
    for ((label, (sim, index)), cal) in
        [("A", lab.a()), ("B", lab.b()), ("C", lab.c())].into_iter().zip(paper)
    {
        table.row(&[
            label.to_string(),
            index.len().to_string(),
            sim.truth.len().to_string(),
            fmt_pct(index.cpfp_fraction()),
            index.empty_block_count().to_string(),
            cal.blocks.to_string(),
            cal.transactions.to_string(),
            fmt_pct(cal.cpfp_fraction),
            cal.empty_blocks.to_string(),
        ]);
    }
    out.push_str(&table.render());
    out
}

/// Figure 2: blocks and transactions by top-20 pool, per dataset.
pub fn fig2(lab: &Lab) -> String {
    let mut out = String::new();
    for (label, (_, index)) in [("A", lab.a()), ("B", lab.b()), ("C", lab.c())] {
        let attribution = attribute(index);
        let _ = writeln!(out, "Figure 2({}) — top-20 MPO footprint (dataset {label})",
            match label { "A" => "a", "B" => "b", _ => "c" });
        let mut table = Table::new(&["pool", "blocks", "hash share", "txs confirmed"]);
        for pool in attribution.top(20) {
            table.row(&[
                pool.name.clone(),
                pool.blocks.to_string(),
                fmt_pct(pool.blocks as f64 / attribution.total_blocks().max(1) as f64),
                pool.transactions.to_string(),
            ]);
        }
        out.push_str(&table.render());
        let _ = writeln!(
            out,
            "top-20 combined share: {} (paper: 94.97% / 93.52% / 98.08%)\n",
            fmt_pct(attribution.top_share(20))
        );
    }
    out
}

/// Figure 3: (a) issuance vs block production over time; (b) Mempool-size
/// CDFs for 𝒜 and ℬ; (c) the 𝒜 size time series.
pub fn fig3(lab: &Lab) -> String {
    let (out_a, index_a) = lab.a();
    let (out_b, _) = lab.b();
    let mut out = String::new();

    let _ = writeln!(out, "Figure 3(a) — cumulative transactions vs blocks (dataset A)");
    let horizon = out_a.scenario.duration;
    let mut issue_times: Vec<u64> = Vec::new();
    for block in index_a.blocks() {
        for tx in &block.txs {
            if let Some(t) = out_a.truth.issue_time(&tx.txid) {
                issue_times.push(t);
            }
        }
    }
    issue_times.sort_unstable();
    let block_times = index_a.block_times();
    let mut table = Table::new(&["t (h)", "cum txs", "cum blocks"]);
    for step in 0..=10u64 {
        let t = horizon * step / 10;
        let txs = issue_times.partition_point(|&x| x <= t);
        let blocks = block_times.partition_point(|&x| x <= t);
        table.row(&[format!("{:.1}", t as f64 / 3_600.0), txs.to_string(), blocks.to_string()]);
    }
    out.push_str(&table.render());

    let _ = writeln!(out, "\nFigure 3(b) — Mempool size distributions (vbytes)");
    for (label, sim) in [("A", out_a), ("B", out_b)] {
        let sizes: Vec<f64> =
            sim.snapshots.iter().map(|s| s.total_vsize() as f64).collect();
        let ecdf = Ecdf::new(sizes);
        let cap = block_capacity(sim) as f64;
        let _ = writeln!(
            out,
            "dataset {label}: congested {} of snapshots (paper: {}), median {:.0} vB, max {:.1}x capacity",
            fmt_pct(congested_fraction(&sim.snapshots, block_capacity(sim))),
            if label == "A" { "~75%" } else { "~92%" },
            ecdf.quantile(0.5),
            ecdf.max() / cap
        );
    }

    let _ = writeln!(out, "\nFigure 3(c) — Mempool size over time (dataset A, sampled)");
    let series = size_series(&out_a.snapshots);
    let stride = (series.len() / 20).max(1);
    let mut table = Table::new(&["t (h)", "mempool vB", "x capacity"]);
    for (t, v) in series.iter().step_by(stride) {
        table.row(&[
            format!("{:.2}", *t as f64 / 3_600.0),
            v.to_string(),
            format!("{:.2}", *v as f64 / block_capacity(out_a) as f64),
        ]);
    }
    out.push_str(&table.render());
    out
}

fn delay_records(sim: &SimOutput, index: &ChainIndex) -> Vec<DelayRecord> {
    let first = first_seen_times(&sim.snapshots);
    commit_delays(index, &first)
}

fn delay_cdf_line(out: &mut String, label: &str, delays: &[u64]) {
    if delays.is_empty() {
        let _ = writeln!(out, "{label}: (no transactions)");
        return;
    }
    let e = Ecdf::new(delays.iter().map(|&d| d as f64).collect());
    let _ = writeln!(
        out,
        "{label}: n={}, next-block {}, >=3 blocks {}, >=10 blocks {}, max {}",
        e.len(),
        fmt_pct(e.eval(1.0)),
        fmt_pct(1.0 - e.eval(2.0)),
        fmt_pct(1.0 - e.eval(9.0)),
        e.max()
    );
}

/// Figure 4: (a) commit-delay CDFs; (b) fee-rate CDFs; (c) fee rates by
/// congestion level (dataset 𝒜).
pub fn fig4(lab: &Lab) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "Figure 4(a) — commit delays in blocks");
    let _ = writeln!(out, "(paper: A 65% next block, ~15% >=3; B 60% / ~20%)");
    for (label, (sim, index)) in [("A", lab.a()), ("B", lab.b())] {
        let records = delay_records(sim, index);
        let delays: Vec<u64> = records.iter().map(|r| r.blocks).collect();
        delay_cdf_line(&mut out, &format!("dataset {label}"), &delays);
    }

    let _ = writeln!(out, "\nFigure 4(b) — fee-rate distributions (BTC/KB)");
    for (label, (_, index)) in [("A", lab.a()), ("B", lab.b())] {
        let rates: Vec<f64> = index
            .blocks()
            .iter()
            .flat_map(|b| b.txs.iter().map(|t| t.fee_rate().btc_per_kb()))
            .collect();
        if rates.is_empty() {
            continue;
        }
        let e = Ecdf::new(rates);
        let _ = writeln!(
            out,
            "dataset {label}: n={}, p10 {:.2e}, median {:.2e}, p90 {:.2e}, share in [1e-4,1e-3): {}",
            e.len(),
            e.quantile(0.1),
            e.quantile(0.5),
            e.quantile(0.9),
            fmt_pct(e.eval(1e-3) - e.eval(1e-4))
        );
    }

    let (out_a, _) = lab.a();
    let _ = writeln!(out, "\nFigure 4(c) — fee rates by congestion at issue time (dataset A)");
    let bins = fee_rates_by_congestion(&out_a.snapshots, block_capacity(out_a));
    let mut table = Table::new(&["congestion bin", "n", "median BTC/KB", "p90 BTC/KB"]);
    for (i, name) in ["<1x (none)", "1-2x", "2-4x", ">4x"].iter().enumerate() {
        if bins[i].is_empty() {
            table.row(&[name.to_string(), "0".into(), "-".into(), "-".into()]);
            continue;
        }
        let e = Ecdf::new(bins[i].clone());
        table.row(&[
            name.to_string(),
            e.len().to_string(),
            format!("{:.2e}", e.quantile(0.5)),
            format!("{:.2e}", e.quantile(0.9)),
        ]);
    }
    out.push_str(&table.render());
    ks_dominance_note(&mut out, &bins);
    let _ = writeln!(out, "(paper: fee rates strictly higher at higher congestion)");
    out
}

/// Appends two-sample KS tests between adjacent congestion bins — the
/// statistical backing for "strictly higher in distribution".
fn ks_dominance_note(out: &mut String, bins: &[Vec<f64>; 4]) {
    for w in [(0usize, 1usize), (1, 2), (2, 3)] {
        let (lo, hi) = (&bins[w.0], &bins[w.1]);
        if lo.len() < 20 || hi.len() < 20 {
            continue;
        }
        let t = ks_two_sample(lo, hi);
        let lo_med = Ecdf::new(lo.clone()).quantile(0.5);
        let hi_med = Ecdf::new(hi.clone()).quantile(0.5);
        let _ = writeln!(
            out,
            "KS bin{} vs bin{}: D = {:.3}, p = {:.2e} ({}higher median at higher congestion)",
            w.0,
            w.1,
            t.statistic,
            t.p_value,
            if hi_med > lo_med { "" } else { "NOT " }
        );
    }
}

fn fee_band_report(sim: &SimOutput, index: &ChainIndex, label: &str) -> String {
    let mut out = String::new();
    let records = delay_records(sim, index);
    let by_band = delays_by_fee_band(&records);
    let _ = writeln!(out, "commit delays by fee band (dataset {label}):");
    for (band, name) in [
        (FeeBand::Low, "low (<1e-4 BTC/KB)"),
        (FeeBand::High, "high [1e-4,1e-3)"),
        (FeeBand::Exorbitant, "exorbitant (>=1e-3)"),
    ] {
        match by_band.get(&band) {
            Some(delays) if !delays.is_empty() => {
                delay_cdf_line(&mut out, name, delays);
            }
            _ => {
                let _ = writeln!(out, "{name}: (no transactions)");
            }
        }
    }
    let _ = writeln!(out, "(paper: higher fee band => stochastically smaller delay)");
    out
}

/// Figure 5: delay CDFs by fee band (dataset 𝒜).
pub fn fig5(lab: &Lab) -> String {
    let (sim, index) = lab.a();
    format!("Figure 5 — {}", fee_band_report(sim, index, "A"))
}

/// Figure 9: the ℬ Mempool-size time series (larger and spikier than 𝒜).
pub fn fig9(lab: &Lab) -> String {
    let (out_b, _) = lab.b();
    let mut out = String::new();
    let _ = writeln!(out, "Figure 9 — Mempool size over time (dataset B, sampled)");
    let series = size_series(&out_b.snapshots);
    let stride = (series.len() / 20).max(1);
    let mut table = Table::new(&["t (h)", "mempool vB", "x capacity"]);
    for (t, v) in series.iter().step_by(stride) {
        table.row(&[
            format!("{:.2}", *t as f64 / 3_600.0),
            v.to_string(),
            format!("{:.2}", *v as f64 / block_capacity(out_b) as f64),
        ]);
    }
    out.push_str(&table.render());
    let congested = congested_fraction(&out_b.snapshots, block_capacity(out_b));
    let _ = writeln!(out, "congested fraction: {} (paper: ~92%)", fmt_pct(congested));
    out
}

/// Figure 10: fee-rate CDFs of the top-5 pools' confirmed transactions
/// (dataset 𝒜) — the paper finds no major differences.
pub fn fig10(lab: &Lab) -> String {
    let (_, index) = lab.a();
    let attribution = attribute(index);
    let mut out = String::new();
    let _ = writeln!(out, "Figure 10 — fee rates by confirming pool (dataset A, top 5)");
    let mut table = Table::new(&["pool", "n", "p25 BTC/KB", "median", "p75"]);
    for pool in attribution.top(5) {
        let rates: Vec<f64> = index
            .blocks()
            .iter()
            .filter(|b| b.miner.as_deref() == Some(pool.name.as_str()))
            .flat_map(|b| b.txs.iter().map(|t| t.fee_rate().btc_per_kb()))
            .collect();
        if rates.is_empty() {
            continue;
        }
        let e = Ecdf::new(rates);
        table.row(&[
            pool.name.clone(),
            e.len().to_string(),
            format!("{:.2e}", e.quantile(0.25)),
            format!("{:.2e}", e.quantile(0.5)),
            format!("{:.2e}", e.quantile(0.75)),
        ]);
    }
    out.push_str(&table.render());
    let _ = writeln!(out, "(paper: no major distribution differences across MPOs)");
    out
}

/// Figure 11: fee rates by congestion level (dataset ℬ).
pub fn fig11(lab: &Lab) -> String {
    let (out_b, _) = lab.b();
    let mut out = String::new();
    let _ = writeln!(out, "Figure 11 — fee rates by congestion at issue time (dataset B)");
    let bins = fee_rates_by_congestion(&out_b.snapshots, block_capacity(out_b));
    let mut table = Table::new(&["congestion bin", "n", "median BTC/KB", "p90 BTC/KB"]);
    for (i, name) in ["<1x (none)", "1-2x", "2-4x", ">4x"].iter().enumerate() {
        if bins[i].is_empty() {
            table.row(&[name.to_string(), "0".into(), "-".into(), "-".into()]);
            continue;
        }
        let e = Ecdf::new(bins[i].clone());
        table.row(&[
            name.to_string(),
            e.len().to_string(),
            format!("{:.2e}", e.quantile(0.5)),
            format!("{:.2e}", e.quantile(0.9)),
        ]);
    }
    out.push_str(&table.render());
    ks_dominance_note(&mut out, &bins);
    out
}

/// Figure 12: delay CDFs by fee band (dataset ℬ).
pub fn fig12(lab: &Lab) -> String {
    let (sim, index) = lab.b();
    format!("Figure 12 — {}", fee_band_report(sim, index, "B"))
}
