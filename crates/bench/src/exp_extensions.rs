//! Extension experiments beyond the paper's numbered artifacts:
//! `norm3` — the §4.2.3 below-floor analysis; `harm` — the §6
//! displacement (economic-harm) quantification.

use crate::lab::Lab;
use cn_core::attribute;
use cn_core::displacement::{displacement_by_miner, displacement_fee_gap};
use cn_core::lowfee::low_fee_report;
use cn_core::report::{fmt_pct, Table};
use cn_chain::FeeRate;
use std::fmt::Write as _;

/// §4.2.3: below-floor transactions — who sees them, who mines them.
pub fn norm3(lab: &Lab) -> String {
    let (sim, index) = lab.b();
    let report = low_fee_report(&sim.snapshots, index, FeeRate::MIN_RELAY);
    let mut out = String::new();
    let _ = writeln!(out, "Norm III (section 4.2.3) — below-floor transactions in dataset B");
    let _ = writeln!(out, "(paper: 1084 observed, 489 zero-fee, 53 confirmed — only by");
    let _ = writeln!(out, " F2Pool, ViaBTC and BTC.com)\n");
    let _ = writeln!(
        out,
        "observed below-floor: {} ({} zero-fee); confirmed: {} ({})",
        report.observed,
        report.zero_fee,
        report.confirmed,
        fmt_pct(report.confirmation_rate())
    );
    if report.by_miner.is_empty() {
        let _ = writeln!(out, "no below-floor confirmations.");
    } else {
        let mut table = Table::new(&["pool", "below-floor txs mined"]);
        for (miner, n) in &report.by_miner {
            table.row(&[miner.clone(), n.to_string()]);
        }
        out.push_str(&table.render());
    }
    // Invariant the paper reports: only the no-floor pools deviate.
    let deviants: Vec<&String> = report.by_miner.keys().collect();
    let allowed = ["BTC.com", "F2Pool", "ViaBTC"];
    let clean = deviants.iter().all(|d| allowed.contains(&d.as_str()));
    let _ = writeln!(
        out,
        "{}",
        if clean {
            "all below-floor confirmations come from the known no-floor pools."
        } else {
            "WARNING: an unexpected pool confirmed below-floor transactions."
        }
    );
    out
}

/// §6 extension: displacement — the harm norm violations cause to
/// honestly bidding users, per miner.
pub fn harm(lab: &Lab) -> String {
    let (_, index) = lab.c();
    let attribution = attribute(index);
    let mut out = String::new();
    let _ = writeln!(out, "Displacement (extension of section 6) — harm to honest bidders, dataset C");
    let _ = writeln!(out, "A queue-jumper is a transaction sitting in its block's top decile while");
    let _ = writeln!(out, "ranked in the bottom decile by fee rate.\n");
    let mut table = Table::new(&[
        "pool",
        "promoted txs",
        "positions lost",
        "jumped vbytes",
        "share of block space",
    ]);
    let by_miner = displacement_by_miner(index);
    // Show the top-10 pools by hash rate, in that order.
    for pool in attribution.top(10) {
        if let Some((_, d, share)) = by_miner.iter().find(|(m, _, _)| *m == pool.name) {
            table.row(&[
                pool.name.clone(),
                d.promoted.to_string(),
                d.positions_lost.to_string(),
                d.queue_jumped_vbytes.to_string(),
                fmt_pct(*share),
            ]);
        }
    }
    out.push_str(&table.render());
    // Total fee gap: what the displaced would have had to pay to hold rank.
    let total_gap: u64 = index.blocks().iter().map(displacement_fee_gap).sum();
    let _ = writeln!(
        out,
        "\ntotal fee premium consumed by queue-jumping (sats the jumpers did not pay): {total_gap}"
    );
    let _ = writeln!(
        out,
        "(expected shape: pools with non-zero jumped vbytes are exactly the misbehaving\n ones — the self-accelerators F2Pool/ViaBTC/1THash/SlushPool and the dark-fee\n sellers BTC.com/AntPool/Poolin; fully honest pools sit at zero)"
    );
    out
}
