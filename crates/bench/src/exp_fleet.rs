//! Observer-fleet experiment: how many vantage points does a trustworthy
//! audit need when the network is adversarial?
//!
//! The paper's datasets come from single observer nodes, and §7 concedes
//! the weakness: one mempool is one peer neighborhood's opinion. This
//! experiment runs the dataset-𝒞 misbehaviour roster with a *fleet* of
//! eight heterogeneous observers (peer counts, acceptance policies,
//! latency tiers) under four network scenarios — clean, an eclipse of the
//! primary observer, fleet-wide selective withholding of high-fee and
//! miner-origin transactions, and spy-resistant diffusion delays — then
//! reconciles the first N ∈ {1, 2, 4, 8} streams through
//! [`cn_core::reconcile`] and reports, per (scenario, N):
//!
//! * fused coverage confidence and degraded-window count — whether the
//!   audit would *refuse* below the coverage floor;
//! * pair-detection precision/recall vs the configured misbehaviours
//!   (chain-side, hence identical for every N within a scenario — the
//!   adversary can only take them away by forcing a refusal);
//! * observation recall over the ground-truth accelerated/self-interest
//!   transactions — the rows the withholding adversary targets;
//! * mean first-seen lag vs true issue times, and the cross-observer
//!   first-seen spread the reconciliation layer uses to spot tampering.
//!
//! The adversaries touch only observer deliveries (miners relay
//! unimpeded), so they never corrupt the chain-side detectors directly;
//! the chain can still shift *slightly* across scenarios because users
//! pace CPFP children on full propagation, which observer deliveries
//! participate in. What degrades under attack is *observation*, and what
//! the fleet buys back is audit availability and first-seen fidelity.

use crate::exp_robustness::{detected_pairs, precision_recall, sweep_config, truth_pairs};
use crate::lab::Lab;
use cn_chain::{FastMap, FastSet, Timestamp, Txid};
use cn_core::darkfee::score_detector;
use cn_core::report::{fmt_pct, Table};
use cn_core::{
    audit_chain, audit_with_fleet, reconcile, ChainIndex, ObserverView, StreamExpectation,
};
use cn_data::{dataset_c, Scale};
use cn_mempool::MempoolPolicy;
use cn_net::{AdversaryPlan, DiffusionDelay, EclipseWindow, WithholdPredicate, WithholdRule};
use cn_sim::scenario::ObserverConfig;
use cn_sim::{SimOutput, WorldCheckpoint};
use std::fmt::Write as _;

/// The swept fleet sizes (prefixes of the eight-observer roster).
pub const FLEET_SIZES: [usize; 4] = [1, 2, 4, 8];

/// Coverage floor for the main table: below this fused confidence the
/// audit refuses instead of reporting (graceful degradation, not a
/// crash).
const FLOOR: f64 = 0.3;

/// SPPE cutoff for the chain-side dark-fee column (see `exp_robustness`).
const DARKFEE_THRESHOLD: f64 = 90.0;

/// The heterogeneous eight-observer roster. Index 0 is the paper's
/// dataset-𝒜 analog (the node every pre-fleet scenario ran), so an N = 1
/// fleet is exactly the single-observer baseline; the rest vary peer
/// count, acceptance policy, mempool cap, and latency tier.
fn fleet_roster(mempool_cap: u64) -> Vec<ObserverConfig> {
    let node = |label: &str, peers: usize, latency: f64| ObserverConfig {
        label: label.into(),
        peers,
        policy: MempoolPolicy::default(),
        max_mempool_vsize: None,
        latency_factor: latency,
    };
    vec![
        ObserverConfig::default_node().named("dc-a"),
        ObserverConfig {
            label: "wide".into(),
            peers: 125,
            policy: MempoolPolicy::accept_all(),
            max_mempool_vsize: None,
            latency_factor: 1.0,
        },
        node("edge", 8, 1.6),
        node("region", 16, 1.25),
        ObserverConfig {
            label: "capped".into(),
            peers: 8,
            policy: MempoolPolicy::default(),
            max_mempool_vsize: Some(mempool_cap),
            latency_factor: 1.0,
        },
        node("spv", 4, 1.4),
        ObserverConfig {
            label: "backbone".into(),
            peers: 64,
            policy: MempoolPolicy::accept_all(),
            max_mempool_vsize: None,
            latency_factor: 0.9,
        },
        node("far", 8, 2.0),
    ]
}

/// The four network scenarios: one clean anchor and three adversaries.
fn network_scenarios(duration: Timestamp) -> Vec<(&'static str, AdversaryPlan)> {
    let eclipse = AdversaryPlan {
        // The primary observer loses its peers a quarter into the run
        // and never recovers: 75 % of its windows are degraded, pushing
        // its solo confidence under the audit floor.
        eclipses: vec![EclipseWindow {
            observer: 0,
            start_secs: duration / 4,
            end_secs: duration,
        }],
        ..AdversaryPlan::none()
    };
    let withhold = AdversaryPlan {
        // Spy nodes withhold exactly the transactions an auditor needs:
        // high-fee traffic and miner-origin transfers. Every observer is
        // targeted independently, so a fleet's union recovers what any
        // single vantage point loses.
        withholds: vec![
            WithholdRule {
                observer: None,
                control: 0.6,
                predicate: WithholdPredicate::HighFee { min_sat_per_kvb: 20_000 },
            },
            WithholdRule { observer: None, control: 0.5, predicate: WithholdPredicate::MinerOrigin },
        ],
        ..AdversaryPlan::none()
    };
    let diffusion = AdversaryPlan {
        // Spy-resistant diffusion: observer-bound announcements stall up
        // to 40 s, smearing first-seen times without hiding anything.
        diffusion: Some(DiffusionDelay { stall_prob: 0.6, max_stall_ms: 40_000 }),
        ..AdversaryPlan::none()
    };
    vec![
        ("clean", AdversaryPlan::none()),
        ("eclipse", eclipse),
        ("withhold", withhold),
        ("diffusion", diffusion),
    ]
}

/// One scenario's finished measurements: a table row per fleet size plus
/// the scenario header, produced on a worker thread and rendered serially.
struct ScenarioRows {
    header: String,
    rows: Vec<[String; 10]>,
    /// Populated for the eclipse scenario: the refuse-vs-recover demo
    /// driven through the one-call [`audit_with_fleet`] API.
    demo: Option<String>,
}

/// Builds the per-observer views for the first `n` streams of a run.
fn fleet_views(sim: &SimOutput, n: usize, expectation: StreamExpectation) -> Vec<ObserverView> {
    sim.scenario
        .observers
        .iter()
        .zip(&sim.observer_streams)
        .take(n)
        .map(|(cfg, stream)| ObserverView {
            label: cfg.label.clone(),
            snapshots: stream.clone(),
            expectation,
        })
        .collect()
}

/// Runs one network scenario end to end: simulate once with the full
/// roster, audit the chain once (it is snapshot-independent), then sweep
/// the fleet sizes as pure post-processing over the recorded streams.
fn run_scenario(
    checkpoint: &WorldCheckpoint,
    base: &cn_sim::scenario::Scenario,
    truth: &std::collections::HashSet<(String, String)>,
    name: &str,
    adversaries: &AdversaryPlan,
) -> ScenarioRows {
    let mut scenario = base.clone();
    scenario.name = format!("fleet-{name}");
    scenario.adversaries = adversaries.clone();
    let sim = checkpoint.fork(scenario).run();
    let index = ChainIndex::build(&sim.chain);
    let expectation = StreamExpectation::from_run(
        sim.scenario.duration,
        sim.scenario.snapshot_interval,
        sim.scenario.snapshot_detail_every,
    )
    .with_min_coverage(FLOOR);

    // Chain-side detections: identical for every fleet size within this
    // scenario (the audit's findings never read the snapshots; coverage
    // only decides whether they may be reported).
    let chain_report = audit_chain(&sim.chain, &index, sweep_config());
    let (pair_p, pair_r) = precision_recall(&detected_pairs(&chain_report.findings), truth);
    let provider = "BTC.com";
    let (dark_p, dark_r) = match sim
        .pool_names
        .iter()
        .position(|n| n == provider)
        .and_then(|i| sim.services[i].as_ref())
    {
        Some(service) => {
            let service = service.lock();
            let oracle = |t: &Txid| service.is_accelerated(t) || sim.truth.is_accelerated(t);
            score_detector(&index, provider, DARKFEE_THRESHOLD, &oracle)
        }
        None => (0.0, 0.0),
    };
    let header = format!(
        "scenario {name}: darkfee P {} / R {} (chain-side, identical for every N)",
        fmt_pct(dark_p),
        fmt_pct(dark_r)
    );

    // Ground-truth transactions the observation layer is scored on: the
    // accelerated order book plus every misbehaving pool's self-interest
    // transfers — exactly the rows the withholding adversary censors.
    let mut targets: FastSet<Txid> = sim.truth.accelerated_txids();
    for (owner, _) in truth {
        targets.extend(sim.truth.self_interest_txids(owner));
    }

    let mut rows = Vec::with_capacity(FLEET_SIZES.len());
    for n in FLEET_SIZES {
        let views = fleet_views(&sim, n, expectation);
        let fleet = reconcile(&views).expect("a recording fleet always reconciles");
        let coverage = fleet.coverage.with_chain(&fleet.fused, &index);
        let confidence = coverage.confidence();
        let refused = confidence < FLOOR;

        let observed: FastSet<Txid> = fleet
            .fused
            .iter()
            .filter(|s| s.is_detailed())
            .flat_map(|s| s.entries.iter().map(|e| e.txid))
            .collect();
        let seen = targets.iter().filter(|t| observed.contains(t)).count();
        let seen_r = if targets.is_empty() { 1.0 } else { seen as f64 / targets.len() as f64 };

        // Mean fused first-seen lag vs true issue time over the observed
        // targets: the diffusion adversary's signature. Keyed by the same
        // digest-based fast hasher every other audit path uses.
        let mut first_seen: FastMap<Txid, Timestamp> = FastMap::default();
        for snap in fleet.fused.iter().filter(|s| s.is_detailed()) {
            for e in snap.entries.iter() {
                first_seen
                    .entry(e.txid)
                    .and_modify(|t| *t = (*t).min(e.received))
                    .or_insert(e.received);
            }
        }
        let lags: Vec<f64> = targets
            .iter()
            .filter_map(|t| {
                let seen = *first_seen.get(t)?;
                let issued = sim.truth.issue_time(t)?;
                Some(seen.saturating_sub(issued) as f64)
            })
            .collect();
        let mean_lag = if lags.is_empty() {
            0.0
        } else {
            lags.iter().sum::<f64>() / lags.len() as f64
        };

        rows.push([
            name.to_string(),
            n.to_string(),
            format!("{}/{}", fleet.labels.len(), n),
            if refused {
                format!("{confidence:.3} REFUSED")
            } else {
                format!("{confidence:.3}")
            },
            coverage.degraded_windows.to_string(),
            if refused { "-".into() } else { fmt_pct(pair_p) },
            if refused { "-".into() } else { fmt_pct(pair_r) },
            fmt_pct(seen_r),
            format!("{mean_lag:.1}"),
            format!("{:.1}", fleet.first_seen.mean_spread_secs),
        ]);
    }

    // The eclipse scenario doubles as the graceful-degradation demo: the
    // same streams through the one-call fleet audit, solo vs full fleet.
    let demo = (name == "eclipse").then(|| {
        let mut out = String::new();
        for n in [1, FLEET_SIZES[FLEET_SIZES.len() - 1]] {
            let views = fleet_views(&sim, n, expectation);
            match audit_with_fleet(&sim.chain, &index, &views, sweep_config()) {
                Ok((report, fleet)) => {
                    let cov = report.coverage.expect("fleet audits carry coverage");
                    let _ = writeln!(
                        out,
                        "audit_with_fleet N={n}: reported at confidence {:.3} ({} live observer(s))",
                        cov.confidence(),
                        fleet.labels.len()
                    );
                }
                Err(e) => {
                    let _ = writeln!(out, "audit_with_fleet N={n}: refused — {e}");
                }
            }
        }
        out
    });

    ScenarioRows { header, rows, demo }
}

/// The observer-fleet sweep: audit quality vs vantage-point count under
/// adversarial network scenarios.
pub fn observer_fleet(lab: &Lab) -> String {
    // Dataset 𝒞's roster and misbehaviours (the same ground truth the
    // robustness sweep scores against), span-trimmed at Full scale for
    // the same reason: four 8-observer runs of the full 7-day span would
    // dominate the harness.
    let mut base = dataset_c(lab.scale());
    if matches!(lab.scale(), Scale::Full) {
        base.duration = 48 * 3_600;
    }
    base.observers = fleet_roster(12 * base.params.max_block_vsize());
    // Eight streams make per-window detail four times as expensive as the
    // single-observer datasets; sample at 30 s / every 8th detailed so the
    // sweep's reconciliation work stays proportionate. Coverage fractions
    // are schedule-relative, so the trim does not bias any column.
    base.snapshot_interval = 30;
    base.snapshot_detail_every = 8;
    let truth = truth_pairs(&base);
    let scenarios = network_scenarios(base.duration);
    // One topology/funding build shared by all four scenarios: the forks
    // differ only in adversary plan, which consumes no construction-time
    // randomness (fork-and-replay, bit-identical to fresh builds).
    let checkpoint = WorldCheckpoint::new(&base);

    let mut out = String::new();
    let _ = writeln!(out, "Observer fleet — audit quality vs vantage-point count under adversarial networks");
    let _ = writeln!(
        out,
        "(dataset-C roster, {}h span, seed 0x{:X}; 8 heterogeneous observers, N = fleet prefix;",
        base.duration / 3_600,
        base.seed
    );
    let _ = writeln!(
        out,
        " adversaries: observer eclipse, selective withholding of high-fee/miner-origin txs,"
    );
    let _ = writeln!(out, " spy-resistant diffusion delays; coverage floor {FLOOR})\n");
    let _ = writeln!(out, "observer roster:");
    for o in &base.observers {
        let _ = writeln!(
            out,
            "  {}: {} peers, latency x{:.2}{}{}",
            o.label,
            o.peers,
            o.latency_factor,
            if o.policy == MempoolPolicy::accept_all() { ", accept-all" } else { "" },
            if o.max_mempool_vsize.is_some() { ", capped mempool" } else { "" },
        );
    }
    let _ = writeln!(out, "\nground-truth acceleration pairs: {}", truth.len());
    out.push('\n');

    // The four scenarios are independent sims over forks of one
    // checkpoint; `Pool::map` claims them across workers and joins in
    // input order, so output is byte-identical to a serial sweep.
    let results = cn_stats::Pool::auto().map(&scenarios, |(name, plan)| {
        run_scenario(&checkpoint, &base, &truth, name, plan)
    });

    let mut table = Table::new(&[
        "scenario",
        "N",
        "live",
        "confidence",
        "degraded",
        "pair P",
        "pair R",
        "seen R",
        "lag s",
        "spread s",
    ]);
    let mut demo = String::new();
    for scenario in results {
        let _ = writeln!(out, "{}", scenario.header);
        for row in &scenario.rows {
            table.row(row);
        }
        if let Some(d) = scenario.demo {
            demo = d;
        }
    }
    out.push('\n');
    out.push_str(&table.render());
    let _ = writeln!(
        out,
        "\npair P/R: flagged (owner, miner) pairs vs configured misbehaviours; '-' = audit refused"
    );
    let _ = writeln!(
        out,
        "(chain-side columns shift slightly across scenarios: observer deliveries take part in"
    );
    let _ = writeln!(
        out,
        " the full-propagation pacing of CPFP children, so suppressing them nudges the workload)"
    );
    let _ = writeln!(
        out,
        "seen R: ground-truth accelerated/self-interest txs observed pending by the fused stream"
    );
    let _ = writeln!(
        out,
        "lag s: mean fused first-seen minus true issue time; spread s: mean cross-observer first-seen spread"
    );
    out.push('\n');
    out.push_str(&demo);
    out
}
