//! Megasim — the scale tier: simulate-and-audit thousands of blocks
//! through the event-log path, with memory flat in chain length.
//!
//! Every other experiment holds its run in RAM as a [`cn_sim::SimOutput`];
//! this one exercises the disk-shaped pipeline end to end at two tiers
//! (a reference target and a 10× main target):
//!
//! 1. **Simulate → log**: [`cn_sim::World::run_streamed`] streams the
//!    canonical block/snapshot event stream into a
//!    [`cn_data::log::LogWriter`] on a temp file, dropping artifacts from
//!    memory as it goes (peak sim RSS is O(epoch)).
//! 2. **Log → audit**: a [`cn_data::log::LogReader`] replays the stream
//!    into a [`cn_core::SpilledAuditor`], which epoch-checkpoints the
//!    chain digest to a second temp file (peak replay RSS is
//!    O(window + epoch)); the exact verdict is taken at the end.
//! 3. **Identity**: the same log replayed through a plain unspilled
//!    [`StreamingAuditor`] must produce a bit-identical verdict.
//!
//! Phases 1–2 run for *both* tiers before any verdict is taken: `VmHWM`
//! is process-monotone, and the exact verdict (like the unspilled
//! identity replay) deliberately rebuilds O(run) state — sampling after
//! it would hand the main tier the reference tier's transient peak.
//!
//! The report pins only machine-independent facts (block/snapshot counts,
//! log bytes, spill segments, verdict identity). Throughput and `VmHWM`
//! peak RSS go to `BENCH_pipeline.json` via [`Lab::record_megasim`]; CI
//! runs the tier with `--scale large` and asserts the main tier's RSS is
//! within 2× the reference tier's despite the 10× block target — memory
//! must not scale with chain length.

use crate::exp_streaming::peak_rss_kb;
use crate::lab::{Lab, MegasimBench, MegasimTier};
use cn_core::report::Table;
use cn_core::streaming::{StreamingAuditor, StreamingConfig};
use cn_core::{AuditReport, SpilledAuditor, StreamExpectation};
use cn_data::log::{LogEvent, LogReader, LogWriter};
use cn_data::{dataset_mega, Scale};
use cn_sim::World;
use std::fmt::Write as _;
use std::fs::File;
use std::io::{BufReader, BufWriter};
use std::path::PathBuf;
use std::time::Instant;

/// Blocks per event-log segment (resets the txid intern table).
const LOG_EPOCH_BLOCKS: u64 = 50;

/// Sealed heights per digest-spill checkpoint.
const SPILL_EPOCH_BLOCKS: u64 = 16;

/// Block-count targets `(reference, main)` for the lab's scale.
fn targets(scale: Scale) -> (u64, u64) {
    match scale {
        Scale::Quick => (52, 520),
        Scale::Full | Scale::Large => (520, 5_200),
    }
}

/// A scratch file path under the system temp dir, unique to this process.
fn scratch(label: &str, kind: &str) -> PathBuf {
    std::env::temp_dir().join(format!("cn-megasim-{}-{label}.{kind}", std::process::id()))
}

/// A tier's disk-shaped pipeline, paused before any exact verdict: the
/// event log sits on disk, the spilled auditor holds only its
/// O(window + epoch) tail. Kept alive so the verdict and the identity
/// replay can run *after* every tier's RSS samples are taken.
struct TierPipeline {
    tier: MegasimTier,
    spilled: SpilledAuditor<File>,
    expectation: StreamExpectation,
    log_path: PathBuf,
    spill_path: PathBuf,
}

/// One tier's pipeline: simulate into the log, replay through the spilled
/// auditor, sample `VmHWM` — and stop there. The exact verdict rebuilds
/// the full digest transiently (a documented paid-once peak), and `VmHWM`
/// is process-monotone, so a verdict taken here would pollute every later
/// tier's sample; [`finish_tier`] runs it once all tiers are measured.
fn run_pipeline(label: &str, target_blocks: u64) -> TierPipeline {
    let scenario = dataset_mega(target_blocks);
    let expectation = StreamExpectation::from_run(
        scenario.duration,
        scenario.snapshot_interval,
        scenario.snapshot_detail_every,
    );
    let log_path = scratch(label, "evlog");
    let spill_path = scratch(label, "spill");

    // Simulate, streaming the canonical event stream to the log.
    let sim_started = Instant::now();
    let log_file = File::create(&log_path).expect("create event log");
    let mut writer = LogWriter::new(BufWriter::new(log_file), LOG_EPOCH_BLOCKS);
    let summary = World::new(scenario).run_streamed(&mut writer);
    let stats = writer.finish().expect("event log finishes");
    let sim_seconds = sim_started.elapsed().as_secs_f64();
    let rss_after_sim_kb = peak_rss_kb();

    // Replay the log through the spilled auditor.
    let replay_started = Instant::now();
    let mut reader = LogReader::new(BufReader::new(File::open(&log_path).expect("reopen log")))
        .expect("valid log header");
    let spill_store = File::options()
        .read(true)
        .write(true)
        .create(true)
        .truncate(true)
        .open(&spill_path)
        .expect("create spill store");
    let mut spilled = SpilledAuditor::new(
        StreamingAuditor::new(reader.initial_utxos(), StreamingConfig::new(expectation)),
        spill_store,
        SPILL_EPOCH_BLOCKS,
    );
    while let Some(event) = reader.next_event().expect("log replays") {
        match &event {
            LogEvent::Block(b) => spilled.push_block(b).expect("block replays"),
            LogEvent::Snapshot(s) => spilled.push_snapshot(s),
        }
    }
    let replay_seconds = replay_started.elapsed().as_secs_f64();
    let rss_after_replay_kb = peak_rss_kb();

    let tier = MegasimTier {
        label: label.to_string(),
        blocks: summary.blocks,
        snapshots: summary.snapshots,
        log_bytes: stats.bytes,
        log_segments: stats.segments,
        spill_segments: spilled.spilled_segments(),
        spill_bytes: spilled.spilled_bytes(),
        sim_seconds,
        replay_seconds,
        rss_after_sim_kb,
        rss_after_replay_kb,
    };
    TierPipeline { tier, spilled, expectation, log_path, spill_path }
}

/// The deferred verdict phase: the spilled exact verdict, then the same
/// log through a plain unspilled auditor as the identity oracle. Cleans
/// up the tier's scratch files. Returns the verdict and whether the two
/// replays agreed bit-for-bit.
fn finish_tier(pipeline: TierPipeline) -> (AuditReport, bool) {
    let TierPipeline { tier: _, mut spilled, expectation, log_path, spill_path } = pipeline;
    let report = spilled.verdict().expect("spilled verdict");

    let mut reader = LogReader::new(BufReader::new(File::open(&log_path).expect("reopen log")))
        .expect("valid log header");
    let mut plain =
        StreamingAuditor::new(reader.initial_utxos(), StreamingConfig::new(expectation));
    while let Some(event) = reader.next_event().expect("log replays") {
        match &event {
            LogEvent::Block(b) => plain.push_block(b).expect("block replays"),
            LogEvent::Snapshot(s) => plain.push_snapshot(s),
        }
    }
    let identical = plain.verdict().expect("plain verdict") == report;

    let _ = std::fs::remove_file(&log_path);
    let _ = std::fs::remove_file(&spill_path);
    (report, identical)
}

/// The `megasim` experiment.
pub fn megasim(lab: &Lab) -> String {
    let (ref_target, main_target) = targets(lab.scale());
    let mut txt = String::new();
    txt.push_str("Megasim — simulate-and-audit through the event-log path\n");
    let _ = writeln!(
        txt,
        "(dataset-M at block targets {ref_target} ref / {main_target} main; log epoch \
         {LOG_EPOCH_BLOCKS} blocks, digest spill epoch {SPILL_EPOCH_BLOCKS} sealed blocks)\n"
    );

    let mut table = Table::new(&[
        "tier",
        "blocks",
        "snapshots",
        "log bytes",
        "bytes/block",
        "log segments",
        "spill segments",
        "spill bytes",
        "identical",
    ]);
    let mut bench = MegasimBench::default();
    let mut all_identical = true;

    // Phase 1: both tiers' disk-shaped pipelines, so every RSS sample is
    // taken before any O(run) verdict transient (VmHWM is monotone).
    let pipelines: Vec<TierPipeline> = [("ref", ref_target), ("main", main_target)]
        .into_iter()
        .map(|(label, target)| run_pipeline(label, target))
        .collect();
    bench.reference = pipelines[0].tier.clone();
    bench.main = pipelines[1].tier.clone();

    // Phase 2: exact verdicts and unspilled identity replays.
    for pipeline in pipelines {
        let tier = pipeline.tier.clone();
        let (report, identical) = finish_tier(pipeline);
        all_identical &= identical;
        let _ = writeln!(
            txt,
            "tier {}: {} blocks, {} snapshots, {} findings in the exact verdict",
            tier.label,
            tier.blocks,
            tier.snapshots,
            report.findings.len(),
        );
        table.row(&[
            tier.label.clone(),
            tier.blocks.to_string(),
            tier.snapshots.to_string(),
            tier.log_bytes.to_string(),
            format!("{:.1}", tier.bytes_per_block()),
            tier.log_segments.to_string(),
            tier.spill_segments.to_string(),
            tier.spill_bytes.to_string(),
            if identical { "yes".into() } else { "NO — DIVERGED".into() },
        ]);
    }

    txt.push('\n');
    txt.push_str(&table.render());
    let _ = writeln!(
        txt,
        "\nspilled verdict identical to unspilled replay on both tiers: {}",
        if all_identical { "yes" } else { "NO — DIVERGED" },
    );
    txt.push_str(
        "(throughput and VmHWM peak RSS go to BENCH_pipeline.json; CI asserts the main\n tier's \
         RSS stays within 2x the reference tier's despite the 10x block target)\n",
    );
    lab.record_megasim(bench);
    txt
}
