//! Misbehaviour experiments: Figures 8, 13, 14 and Tables 2–4.

use crate::lab::Lab;
use cn_core::darkfee::{score_detector, sppe_threshold_table};
use cn_core::prioritization::differential_prioritization;
use cn_core::report::{fmt_p, fmt_pct, Table};
use cn_core::self_interest::find_self_interest_transactions;
use cn_core::sppe::sppe_for_miner;
use cn_core::attribute;
use cn_chain::Txid;
use cn_miner::acceleration::fee_multiple;
use cn_stats::{Ecdf, SimRng, Summary};
use std::fmt::Write as _;

/// Figure 8: (a) reward-wallet inventories per pool; (b) inferred
/// self-interest transaction counts per pool.
pub fn fig8(lab: &Lab) -> String {
    let (sim, index) = lab.c();
    let attribution = attribute(index);
    let self_map = find_self_interest_transactions(&sim.chain, &attribution);
    let mut out = String::new();
    let _ = writeln!(out, "Figure 8(a,b) — pool wallets and inferred MPO transactions (dataset C)");
    let _ = writeln!(out, "(paper: SlushPool used 56 wallets, Poolin 23; 12,121 MPO txs total)\n");
    let mut table = Table::new(&["pool", "wallets", "self-interest txs"]);
    let mut total = 0usize;
    for pool in attribution.top(20) {
        let n = self_map.of(&pool.name).map(|s| s.len()).unwrap_or(0);
        total += n;
        table.row(&[pool.name.clone(), pool.wallets.len().to_string(), n.to_string()]);
    }
    out.push_str(&table.render());
    let _ = writeln!(out, "total inferred MPO transactions: {total}");
    out
}

/// Table 2: differential prioritization of self-interest transactions.
///
/// For every pool whose wallets originate transactions, tests each top-10
/// miner for acceleration/deceleration; prints significant rows (accel
/// p < 0.001 — the paper's bar) plus the honest-pool nulls.
pub fn table2(lab: &Lab) -> String {
    let (sim, index) = lab.c();
    let attribution = attribute(index);
    let self_map = find_self_interest_transactions(&sim.chain, &attribution);
    let mut out = String::new();
    let _ = writeln!(out, "Table 2 — differential prioritization of self-interest transactions");
    let _ = writeln!(out, "(paper: F2Pool, ViaBTC, 1THash & 58Coin, SlushPool self-accelerate;");
    let _ = writeln!(out, " ViaBTC collusively accelerates 1THash & 58Coin and SlushPool)\n");
    let mut table = Table::new(&[
        "transactions of",
        "mining pool (m)",
        "theta0",
        "x",
        "y",
        "p-value (accel)",
        "p-value (decel)",
        "% SPPE(m)",
    ]);
    let mut flagged: Vec<(String, String)> = Vec::new();
    // Rows of interest: each misbehaving owner's own pool plus the
    // colluding miner (the paper's Table 2 row set) — printed regardless
    // of significance — and any other significant pair found by the
    // exhaustive sweep.
    let paper_rows = [
        ("F2Pool", "F2Pool"),
        ("ViaBTC", "ViaBTC"),
        ("1THash & 58Coin", "ViaBTC"),
        ("1THash & 58Coin", "1THash & 58Coin"),
        ("SlushPool", "SlushPool"),
        ("SlushPool", "ViaBTC"),
    ];
    for owner in attribution.top(20) {
        let Some(c_txids) = self_map.of(&owner.name) else { continue };
        if c_txids.len() < 5 {
            continue;
        }
        for miner in attribution.top(10) {
            let theta0 = attribution.hash_rate(&miner.name).unwrap_or(0.0);
            let test = differential_prioritization(index, c_txids, &miner.name, theta0);
            if test.y == 0 {
                continue;
            }
            let significant = test.accelerates_at(0.001);
            let is_paper_row = paper_rows
                .iter()
                .any(|(o, m)| *o == owner.name && *m == miner.name);
            if significant || is_paper_row {
                let sppe = sppe_for_miner(index, c_txids, &miner.name).unwrap_or(0.0);
                table.row(&[
                    format!("{}{}", if significant { "*" } else { " " }, owner.name),
                    miner.name.clone(),
                    format!("{theta0:.4}"),
                    test.x.to_string(),
                    test.y.to_string(),
                    fmt_p(test.p_accelerate),
                    fmt_p(test.p_decelerate),
                    format!("{sppe:.4}"),
                ]);
            }
            if significant {
                flagged.push((owner.name.clone(), miner.name.clone()));
            }
        }
    }
    out.push_str(&table.render());
    let _ = writeln!(out, "(* = acceleration significant at alpha 0.001)");
    let _ = writeln!(out, "\nsignificant (accel p < 0.001) pairs: {}", flagged.len());

    // The null check the paper implies: honest pools not flagged.
    let honest = ["Poolin", "AntPool", "Huobi", "Okex", "Binance Pool"];
    let mut clean = true;
    for name in honest {
        if flagged.iter().any(|(owner, miner)| owner == name && miner == name) {
            clean = false;
            let _ = writeln!(out, "WARNING: honest pool {name} self-flagged");
        }
    }
    if clean {
        let _ = writeln!(out, "honest pools ({}) show no self-acceleration.", honest.join(", "));
    }
    out
}

/// Table 3: the scam-payment window — no pool should be flagged in either
/// direction.
pub fn table3(lab: &Lab) -> String {
    let (sim, index) = lab.c();
    let attribution = attribute(index);
    let scam_txids = sim.truth.scam_txids();
    let mut out = String::new();
    let _ = writeln!(out, "Table 3 — differential prioritization of scam payments");
    let _ = writeln!(out, "(paper: no statistically significant evidence in either direction)\n");
    let mut table = Table::new(&[
        "mining pool (m)",
        "theta0",
        "x",
        "y",
        "p-value (accel)",
        "p-value (decel)",
        "% SPPE(m)",
    ]);
    let mut any_flagged = false;
    for pool in attribution.top(9) {
        let theta0 = attribution.hash_rate(&pool.name).unwrap_or(0.0);
        let test = differential_prioritization(index, &scam_txids, &pool.name, theta0);
        let sppe = sppe_for_miner(index, &scam_txids, &pool.name).unwrap_or(0.0);
        table.row(&[
            pool.name.clone(),
            format!("{theta0:.4}"),
            test.x.to_string(),
            test.y.to_string(),
            fmt_p(test.p_accelerate),
            fmt_p(test.p_decelerate),
            format!("{sppe:.4}"),
        ]);
        any_flagged |= test.accelerates_at(0.001) || test.decelerates_at(0.001);
    }
    out.push_str(&table.render());
    let _ = writeln!(
        out,
        "\nscam donations observed: {}; confirmed: {}",
        scam_txids.len(),
        scam_txids.iter().filter(|t| index.locate(t).is_some()).count()
    );
    let _ = writeln!(
        out,
        "{}",
        if any_flagged {
            "WARNING: a pool was flagged — the simulated miners treat scam payments neutrally, so this indicates a detector false positive at alpha=0.001."
        } else {
            "no pool flagged at alpha = 0.001 in either direction — matching the paper."
        }
    );
    out
}

/// Table 4: SPPE-threshold detection of dark-fee accelerations on
/// BTC.com's blocks, scored against the acceleration service's order book
/// (the paper used BTC.com's public checker).
pub fn table4(lab: &Lab) -> String {
    let (sim, index) = lab.c();
    let provider = "BTC.com";
    let provider_idx = sim
        .pool_names
        .iter()
        .position(|n| n == provider)
        .expect("BTC.com is in the dataset-C roster");
    let service = sim.services[provider_idx].as_ref().expect("BTC.com sells acceleration");
    let service = service.lock();
    let is_accelerated = |t: &Txid| service.is_accelerated(t) || sim.truth.is_accelerated(t);

    let mut out = String::new();
    let _ = writeln!(out, "Table 4 — % of high-SPPE transactions that were dark-fee accelerated");
    let _ = writeln!(out, "(paper, BTC.com: >=99% SPPE -> 64.98% accelerated; >=50% -> 1.06%)\n");
    let mut table = Table::new(&["SPPE >=", "# txs", "# accelerated", "% accelerated"]);
    let rows = sppe_threshold_table(index, provider, &[100.0, 99.0, 90.0, 50.0, 1.0], &is_accelerated);
    for row in &rows {
        table.row(&[
            format!("{:.0}%", row.threshold),
            row.total.to_string(),
            row.accelerated.to_string(),
            fmt_pct(row.precision()),
        ]);
    }
    out.push_str(&table.render());

    // The paper's negative control: a random sample of the pool's txs.
    let mut rng = SimRng::seed_from_u64(4);
    let all: Vec<Txid> = index
        .blocks()
        .iter()
        .filter(|b| b.miner.as_deref() == Some(provider))
        .flat_map(|b| b.txs.iter().map(|t| t.txid))
        .collect();
    let mut accelerated_in_sample = 0usize;
    let sample_n = 1_000.min(all.len());
    for _ in 0..sample_n {
        if let Some(t) = rng.choose(&all) {
            if is_accelerated(t) {
                accelerated_in_sample += 1;
            }
        }
    }
    let _ = writeln!(
        out,
        "\nrandom sample of {sample_n} BTC.com txs: {accelerated_in_sample} accelerated (paper: 0 of 1000)"
    );
    let (precision, recall) = score_detector(index, provider, 99.0, &is_accelerated);
    let _ = writeln!(
        out,
        "detector at SPPE>=99%: precision {} recall {} (vs ground truth)",
        fmt_pct(precision),
        fmt_pct(recall)
    );
    out
}

/// Figure 13: the MPO distribution within the scam window.
pub fn fig13(lab: &Lab) -> String {
    let (sim, index) = lab.c();
    let scam = sim.scenario.scam.as_ref().expect("dataset C has a scam window");
    let mut out = String::new();
    let _ = writeln!(out, "Figure 13 — blocks mined during the scam window, by pool");
    let mut counts: Vec<(String, usize, usize)> = Vec::new();
    for block in index.blocks() {
        if block.time < scam.window_start || block.time >= scam.window_end {
            continue;
        }
        let name = block.miner.clone().unwrap_or_else(|| "(unknown)".into());
        match counts.iter_mut().find(|(n, _, _)| *n == name) {
            Some(entry) => {
                entry.1 += 1;
                entry.2 += block.txs.len();
            }
            None => counts.push((name, 1, block.txs.len())),
        }
    }
    counts.sort_by_key(|c| std::cmp::Reverse(c.1));
    let total: usize = counts.iter().map(|(_, b, _)| b).sum();
    let mut table = Table::new(&["pool", "blocks", "share", "txs"]);
    for (name, blocks, txs) in counts.iter().take(20) {
        table.row(&[
            name.clone(),
            blocks.to_string(),
            fmt_pct(*blocks as f64 / total.max(1) as f64),
            txs.to_string(),
        ]);
    }
    out.push_str(&table.render());
    let _ = writeln!(out, "window blocks: {total} (paper: 3697 over Jul 14 - Aug 9, 2020)");
    out
}

/// Figure 14: acceleration quotes vs public fees over a congested Mempool
/// snapshot.
pub fn fig14(lab: &Lab) -> String {
    let (sim, _) = lab.c();
    let provider_idx = sim
        .pool_names
        .iter()
        .position(|n| n == "BTC.com")
        .expect("BTC.com in roster");
    let service = sim.services[provider_idx].as_ref().expect("service").lock();

    // Pick the most congested *detailed* snapshot, as §G did (the paper
    // used one live Mempool snapshot from Nov 24, 2020).
    let snapshot = sim
        .snapshots
        .iter()
        .filter(|s| s.is_detailed())
        .max_by_key(|s| s.total_vsize())
        .expect("detailed snapshots recorded");
    let top_rate = snapshot
        .entries
        .iter()
        .map(|e| e.fee_rate())
        .max()
        .unwrap_or(cn_chain::FeeRate::MIN_RELAY);
    let mut multiples = Vec::new();
    for entry in snapshot.entries.iter() {
        let quote = service.quote(entry.vsize, entry.fee, top_rate);
        if let Some(mult) = fee_multiple(entry.fee, quote) {
            multiples.push(mult);
        }
    }
    let mut out = String::new();
    let _ = writeln!(out, "Figure 14 — acceleration-fee multiples over public fees");
    let _ = writeln!(out, "(paper: mean 566.3x, median 116.64x, p25 51.64, p75 351.8)\n");
    if multiples.is_empty() {
        let _ = writeln!(out, "(snapshot empty — no quotes)");
        return out;
    }
    let summary = Summary::of(&multiples);
    let _ = writeln!(
        out,
        "quotes: n={}, mean {:.1}x, median {:.2}x, p25 {:.2}, p75 {:.2}, min {:.2}, max {:.0}",
        summary.n, summary.mean, summary.median, summary.p25, summary.p75, summary.min, summary.max
    );
    let ecdf = Ecdf::new(multiples);
    let _ = writeln!(out, "\nCDF (multiple  F):");
    out.push_str(&cn_core::report::fmt_cdf(&ecdf.curve(11)));
    let _ = writeln!(out, "snapshot: {} pending txs at t={}s", snapshot.len(), snapshot.time);
    out
}
