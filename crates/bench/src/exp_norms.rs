//! Norm-adherence experiments: Figures 1, 6, and 7.

use crate::lab::Lab;
use cn_core::pairs::{count_violations_cdq, PairObservation};
use cn_core::ppe::{block_ppe, chain_ppe, ppe_by_miner};
use cn_core::report::{fmt_cdf, Table};
use cn_core::{attribute, ChainIndex};
use cn_data::legacy::{synthetic_blocks, EraOrdering};
use cn_mempool::MempoolSnapshot;
use cn_stats::{Ecdf, SimRng, Summary};
use std::fmt::Write as _;

/// Figure 1: CDF of the fee-rate predictor's position error, pre- vs
/// post-April-2016 ordering norms.
pub fn fig1(_lab: &Lab) -> String {
    let mut rng = SimRng::seed_from_u64(2016);
    let pre = synthetic_blocks(EraOrdering::CoinAgePriority, 300, 120, &mut rng);
    let post = synthetic_blocks(EraOrdering::FeeRate, 300, 120, &mut rng);
    let pre_ppe: Vec<f64> = pre.iter().filter_map(block_ppe).collect();
    let post_ppe: Vec<f64> = post.iter().filter_map(block_ppe).collect();
    let pre_ecdf = Ecdf::new(pre_ppe);
    let post_ecdf = Ecdf::new(post_ppe);
    let mut out = String::new();
    let _ = writeln!(out, "Figure 1 — fee-rate-norm position-prediction error by era");
    let _ = writeln!(out, "(paper: ordering tracks the norm closely only after April 2016)\n");
    let _ = writeln!(
        out,
        "pre-2016 (coin-age priority): mean PPE {:.2}%, median {:.2}%",
        pre_ecdf.mean(),
        pre_ecdf.quantile(0.5)
    );
    let _ = writeln!(
        out,
        "post-2016 (fee-rate norm):    mean PPE {:.2}%, median {:.2}%\n",
        post_ecdf.mean(),
        post_ecdf.quantile(0.5)
    );
    let _ = writeln!(out, "CDF, pre-2016 era (PPE%  F):");
    out.push_str(&fmt_cdf(&pre_ecdf.curve(11)));
    let _ = writeln!(out, "\nCDF, post-2016 era (PPE%  F):");
    out.push_str(&fmt_cdf(&post_ecdf.curve(11)));
    out
}

/// Collects snapshot-level violation observations for Figure 6.
fn snapshot_observations(
    snap: &MempoolSnapshot,
    index: &ChainIndex,
    exclude_cpfp: bool,
) -> Vec<PairObservation> {
    snap.entries
        .iter()
        .filter_map(|e| {
            let rec = index.record(&e.txid)?;
            if exclude_cpfp && (rec.is_cpfp || e.has_unconfirmed_parent) {
                return None;
            }
            Some(PairObservation {
                received: e.received,
                fee_rate: e.fee_rate(),
                height: rec.height,
            })
        })
        .collect()
}

/// Figure 6: fraction of transaction pairs violating the selection norm
/// across 30 random Mempool snapshots of dataset 𝒜, for ε ∈ {0 s, 10 s,
/// 10 min}, with and without CPFP filtering.
pub fn fig6(lab: &Lab) -> String {
    let (out_a, index) = lab.a();
    let mut rng = SimRng::seed_from_u64(6);
    // Sample 30 snapshots with a decent backlog, uniformly at random.
    let eligible: Vec<&MempoolSnapshot> = out_a
        .snapshots
        .iter()
        .filter(|s| s.is_detailed() && s.len() >= 30)
        .collect();
    let mut picks: Vec<&MempoolSnapshot> = Vec::new();
    for _ in 0..30 {
        if let Some(s) = rng.choose(&eligible) {
            picks.push(s);
        }
    }
    let mut out = String::new();
    let _ = writeln!(out, "Figure 6 — violation-pair fractions over 30 random snapshots (dataset A)");
    let _ = writeln!(out, "(paper: a small but non-trivial fraction violates the norm, surviving");
    let _ = writeln!(out, " epsilon-tightening and CPFP removal)\n");
    for (label, exclude_cpfp) in [("all transactions", false), ("non-CPFP only", true)] {
        let mut table = Table::new(&["epsilon", "mean frac", "median frac", "max frac"]);
        for (eps_label, eps) in [("0s", 0u64), ("10s", 10), ("10min", 600)] {
            let fracs: Vec<f64> = picks
                .iter()
                .map(|s| {
                    let obs = snapshot_observations(s, index, exclude_cpfp);
                    count_violations_cdq(&obs, eps).fraction_of_all()
                })
                .collect();
            let e = Ecdf::new(fracs);
            let pct4 = |x: f64| format!("{:.4}%", x * 100.0);
            table.row(&[
                eps_label.to_string(),
                pct4(e.mean()),
                pct4(e.quantile(0.5)),
                pct4(e.max()),
            ]);
        }
        let _ = writeln!(out, "[{label}]");
        out.push_str(&table.render());
        out.push('\n');
    }
    out
}

/// Figure 7: PPE CDF over dataset 𝒞 (a) overall and (b) per top-6 miner.
pub fn fig7(lab: &Lab) -> String {
    let (_, index) = lab.c();
    let ppes = chain_ppe(index);
    let ecdf = Ecdf::new(ppes.clone());
    let summary = Summary::of(&ppes);
    let mut out = String::new();
    let _ = writeln!(out, "Figure 7(a) — PPE over all dataset-C blocks");
    let _ = writeln!(
        out,
        "(paper: mean 2.65%, std 2.89, 80% of blocks below 4.03%)\n"
    );
    let _ = writeln!(
        out,
        "measured: mean {:.2}%, std {:.2}, p80 {:.2}%, blocks {}",
        summary.mean,
        summary.std,
        ecdf.quantile(0.8),
        summary.n
    );
    let _ = writeln!(out, "\nCDF (PPE%  F):");
    out.push_str(&fmt_cdf(&ecdf.curve(11)));

    let _ = writeln!(out, "\nFigure 7(b) — PPE by top-6 miner");
    let attribution = attribute(index);
    let by_miner = ppe_by_miner(index);
    let mut table = Table::new(&["pool", "blocks", "mean PPE", "median", "p80"]);
    for pool in attribution.top(6) {
        if let Some(values) = by_miner.get(&pool.name) {
            let e = Ecdf::new(values.clone());
            table.row(&[
                pool.name.clone(),
                values.len().to_string(),
                format!("{:.2}%", e.mean()),
                format!("{:.2}%", e.quantile(0.5)),
                format!("{:.2}%", e.quantile(0.8)),
            ]);
        }
    }
    out.push_str(&table.render());
    let _ = writeln!(
        out,
        "\n(paper: all pools broadly follow the norm; ViaBTC deviates slightly more)"
    );
    out
}
