//! Table 5: the fee share of miner revenue across subsidy eras.

use crate::lab::Lab;
use cn_core::report::Table;
use cn_data::calibration::PAPER_FEE_SHARE_BY_YEAR;
use cn_data::datasets::scaled_params;
use cn_data::Scale;
use cn_sim::congestion::CongestionProfile;
use cn_sim::scenario::{PoolConfig, Scenario};
use cn_sim::World;
use cn_stats::Summary;
use std::fmt::Write as _;

/// One simulated "year": a subsidy level and a demand level, standing in
/// for 2016–2020 (the 2017 mania year gets the demand spike; 2020 the
/// post-halving subsidy).
struct Era {
    year: u32,
    subsidy_btc: u64,
    demand: f64,
}

/// Table 5: per-era fee share of total miner revenue.
pub fn table5(lab: &Lab) -> String {
    let eras = [
        Era { year: 2016, subsidy_btc: 25, demand: 0.50 },
        Era { year: 2017, subsidy_btc: 12, demand: 2.20 },
        Era { year: 2018, subsidy_btc: 12, demand: 0.52 },
        Era { year: 2019, subsidy_btc: 12, demand: 0.55 },
        Era { year: 2020, subsidy_btc: 6, demand: 0.95 },
    ];
    let duration = match lab.scale() {
        Scale::Quick => 4 * 3_600,
        Scale::Full | Scale::Large => 24 * 3_600,
    };
    let mut out = String::new();
    let _ = writeln!(out, "Table 5 — miners' relative revenue from fees, by era");
    let _ = writeln!(out, "(paper yearly means: 2016 2.48%, 2017 11.77%, 2018 3.19%, 2019 2.75%, 2020 6.29%)\n");
    let mut table = Table::new(&[
        "year", "blocks", "mean %", "std", "min", "median", "max", "paper mean %",
    ]);
    for era in eras {
        let mut s = Scenario::base(format!("era-{}", era.year), 5_000 + era.year as u64);
        s.params = scaled_params();
        // Scale the subsidy with the block-capacity scale-down (1/10) so
        // fee-vs-subsidy ratios stay comparable to mainnet's.
        s.params.initial_subsidy = cn_chain::Amount::from_sat(era.subsidy_btc * 10_000_000);
        s.duration = duration;
        s.pools = vec![
            PoolConfig::honest("Alpha", 0.4, 2),
            PoolConfig::honest("Beta", 0.35, 2),
            PoolConfig::honest("Gamma", 0.25, 1),
        ];
        s.congestion = CongestionProfile::diurnal(era.demand, 0.4);
        // Snapshots are irrelevant to revenue; keep them light and bound
        // the observer so heavy-demand eras stay in memory.
        s.snapshot_detail_every = 240;
        s.observers[0].max_mempool_vsize = Some(25 * s.params.max_block_vsize());
        s.users = 250;
        s.relay_nodes = 10;
        s.miner_hubs = 2;
        let sim = World::new(s).run();
        let shares: Vec<f64> = sim
            .chain
            .records()
            .iter()
            .map(|r| {
                let total = r.fees + r.subsidy;
                if total.is_zero() {
                    0.0
                } else {
                    100.0 * r.fees.to_sat() as f64 / total.to_sat() as f64
                }
            })
            .collect();
        if shares.is_empty() {
            continue;
        }
        let summary = Summary::of(&shares);
        let paper = PAPER_FEE_SHARE_BY_YEAR
            .iter()
            .find(|(y, _)| *y == era.year)
            .map(|(_, v)| *v)
            .unwrap_or(f64::NAN);
        table.row(&[
            era.year.to_string(),
            summary.n.to_string(),
            format!("{:.2}", summary.mean),
            format!("{:.2}", summary.std),
            format!("{:.2}", summary.min),
            format!("{:.2}", summary.median),
            format!("{:.2}", summary.max),
            format!("{paper:.2}"),
        ]);
    }
    out.push_str(&table.render());
    let _ = writeln!(out, "\n(shape to hold: 2017 demand spike dominates; 2020 > 2018/2019 after the halving)");
    out
}
