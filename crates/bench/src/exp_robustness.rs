//! Robustness experiment: detector quality under injected faults.
//!
//! Sweeps [`FaultPlan::scaled`] intensity over the dataset-𝒞 misbehaviour
//! roster and reports, per level, how much observation survived (coverage
//! confidence), how many blocks were lost to stale-tip races, and the
//! precision/recall of the two detector families against the simulator's
//! ground truth:
//!
//! * **pair detection** — which (owner, miner) acceleration pairs the
//!   audit flags ([`Finding::SelfAcceleration`] /
//!   [`Finding::CollusiveAcceleration`]) vs the pools actually configured
//!   with `SelfInterest` / `Collude` behaviours;
//! * **dark-fee detection** — high-SPPE suspects in the provider's
//!   blocks scored against the acceleration order book (Table 4's
//!   methodology, degraded inputs).
//!
//! The zero-intensity row doubles as a regression anchor: it must match
//! what the fault-free audit reports.

use crate::lab::Lab;
use cn_chain::Txid;
use cn_core::darkfee::score_detector;
use cn_core::report::{fmt_pct, Table};
use cn_core::{audit_with_snapshots, AuditConfig, ChainIndex, Finding, StreamExpectation};
use cn_data::{dataset_c, Scale};
use cn_net::FaultPlan;
use cn_sim::scenario::{PoolBehavior, Scenario};
use cn_sim::WorldCheckpoint;
use std::collections::HashSet;
use std::fmt::Write as _;

/// The swept fault intensities (≥ 4 levels per the robustness protocol).
pub const INTENSITIES: [f64; 5] = [0.0, 0.15, 0.35, 0.6, 0.85];

/// SPPE cutoff for scoring the dark-fee detector. 90 % rather than the
/// paper's 99: the sweep's spans are hours, not a year, and quick-scale
/// blocks are small enough that the extreme percentile is mostly empty.
const DARKFEE_THRESHOLD: f64 = 90.0;

/// Detector settings for the sweep. Looser than [`AuditConfig::default`]
/// (alpha 0.01 vs 0.001, owners tested from 5 self-interest txs) so the
/// zero-fault row starts with measurable recall on a short span — the
/// sweep studies *degradation*, which needs a baseline above zero.
pub(crate) fn sweep_config() -> AuditConfig {
    AuditConfig { alpha: 0.01, sppe_threshold: DARKFEE_THRESHOLD, top_k: 20, min_c_txs: 5 }
}

/// (owner, miner) acceleration pairs the scenario actually configures —
/// the ground truth the audit findings are scored against.
pub(crate) fn truth_pairs(scenario: &Scenario) -> HashSet<(String, String)> {
    let mut pairs = HashSet::new();
    for pool in &scenario.pools {
        for behavior in &pool.behaviors {
            match behavior {
                PoolBehavior::SelfInterest => {
                    pairs.insert((pool.name.clone(), pool.name.clone()));
                }
                PoolBehavior::Collude { partners } => {
                    for partner in partners {
                        pairs.insert((partner.clone(), pool.name.clone()));
                    }
                }
                _ => {}
            }
        }
    }
    pairs
}

/// (owner, miner) pairs flagged by the audit.
pub(crate) fn detected_pairs(findings: &[Finding]) -> HashSet<(String, String)> {
    findings
        .iter()
        .filter_map(|f| match f {
            Finding::SelfAcceleration { miner, .. } => Some((miner.clone(), miner.clone())),
            Finding::CollusiveAcceleration { miner, owner, .. } => {
                Some((owner.clone(), miner.clone()))
            }
            Finding::DarkFeeSuspects { .. } => None,
        })
        .collect()
}

pub(crate) fn precision_recall(
    detected: &HashSet<(String, String)>,
    truth: &HashSet<(String, String)>,
) -> (f64, f64) {
    let tp = detected.intersection(truth).count() as f64;
    let precision = if detected.is_empty() { 1.0 } else { tp / detected.len() as f64 };
    let recall = if truth.is_empty() { 1.0 } else { tp / truth.len() as f64 };
    (precision, recall)
}

/// One intensity level's finished measurements, produced on a worker
/// thread and rendered serially so output stays byte-identical to the
/// old one-sim-at-a-time loop.
struct SweepRow {
    cells: [String; 9],
    /// Populated only for the last intensity: the 95 % coverage-floor demo.
    floor_demo: Option<String>,
}

/// Runs one fault-intensity level end to end: simulate, audit, score both
/// detector families. Pure function of its inputs, so levels can run on
/// separate workers.
fn sweep_level(
    checkpoint: &WorldCheckpoint,
    base: &Scenario,
    truth: &HashSet<(String, String)>,
    intensity: f64,
    is_last: bool,
) -> SweepRow {
    let mut scenario = base.clone();
    scenario.name = format!("robustness-{intensity:.2}");
    scenario.faults = FaultPlan::scaled(intensity);
    let sim = checkpoint.fork(scenario).run();
    let index = ChainIndex::build(&sim.chain);
    let expectation = StreamExpectation::from_run(
        sim.scenario.duration,
        sim.scenario.snapshot_interval,
        sim.scenario.snapshot_detail_every,
    );

    let (confidence, windows, detailed, pair_p, pair_r) = match audit_with_snapshots(
        &sim.chain,
        &index,
        &sim.snapshots,
        expectation,
        sweep_config(),
    ) {
        Ok(report) => {
            let cov = report.coverage.expect("snapshot audits carry coverage");
            let (p, r) = precision_recall(&detected_pairs(&report.findings), truth);
            (
                format!("{:.3}", cov.confidence()),
                format!("{}/{}", cov.present_windows, cov.expected_windows),
                format!(
                    "{}/{} ({})",
                    cov.present_detailed, cov.expected_detailed, cov.truncated_detailed
                ),
                fmt_pct(p),
                fmt_pct(r),
            )
        }
        Err(e) => {
            // With min_coverage = 0 this only fires on a totally dead
            // observer; report it instead of crashing the sweep.
            (format!("err: {e}"), "-".into(), "-".into(), "-".into(), "-".into())
        }
    };

    // Dark-fee detection, scored against the provider's order book
    // (BTC.com, as in Table 4) plus the simulator's labels.
    let provider = "BTC.com";
    let (dark_p, dark_r) = match sim
        .pool_names
        .iter()
        .position(|n| n == provider)
        .and_then(|i| sim.services[i].as_ref())
    {
        Some(service) => {
            let service = service.lock();
            let oracle = |t: &Txid| service.is_accelerated(t) || sim.truth.is_accelerated(t);
            score_detector(&index, provider, DARKFEE_THRESHOLD, &oracle)
        }
        None => (0.0, 0.0),
    };

    // At the harshest level, show the refuse-to-report path: the same
    // stream against a 95 % coverage floor.
    let floor_demo = is_last.then(|| {
        let strict = expectation.with_min_coverage(0.95);
        match audit_with_snapshots(&sim.chain, &index, &sim.snapshots, strict, sweep_config()) {
            Ok(_) => {
                format!("coverage floor 0.95 at intensity {intensity:.2}: audit still passed")
            }
            Err(e) => format!("coverage floor 0.95 at intensity {intensity:.2}: refused — {e}"),
        }
    });

    SweepRow {
        cells: [
            format!("{intensity:.2}"),
            confidence,
            windows,
            detailed,
            sim.orphaned_blocks.to_string(),
            pair_p,
            pair_r,
            fmt_pct(dark_p),
            fmt_pct(dark_r),
        ],
        floor_demo,
    }
}

/// The robustness sweep: detector precision/recall vs fault intensity.
pub fn robustness(lab: &Lab) -> String {
    // Dataset 𝒞's roster and misbehaviours, with the span trimmed at Full
    // scale: five runs of the 7-day scenario would dominate the whole
    // harness, and fault effects saturate well before that.
    let mut base = dataset_c(lab.scale());
    if matches!(lab.scale(), Scale::Full) {
        base.duration = 48 * 3_600;
    }
    let truth = truth_pairs(&base);
    // Fork-and-replay: the five levels differ only in fault plan and
    // name, so topology sampling and chain/workload funding are built
    // once here and forked per level (bit-identical to five fresh
    // constructions — see `WorldCheckpoint`).
    let checkpoint = WorldCheckpoint::new(&base);

    let mut out = String::new();
    let _ = writeln!(out, "Robustness — detector quality vs injected-fault intensity");
    let _ = writeln!(
        out,
        "(dataset-C roster, {}h span, seed 0x{:X}; faults: link loss/spikes/duplicates,",
        base.duration / 3_600,
        base.seed
    );
    let _ = writeln!(
        out,
        " observer downtime + truncated detail dumps, stale-tip block races)\n"
    );
    let _ = writeln!(out, "ground-truth acceleration pairs: {}", truth.len());
    for (owner, miner) in {
        let mut sorted: Vec<_> = truth.iter().collect();
        sorted.sort();
        sorted
    } {
        let _ = writeln!(out, "  {miner} accelerates {owner}");
    }
    out.push('\n');

    let mut table = Table::new(&[
        "intensity",
        "confidence",
        "windows",
        "detailed (trunc)",
        "orphans",
        "pair P",
        "pair R",
        "darkfee P",
        "darkfee R",
    ]);
    // The five levels are independent sims over clones of the same base
    // scenario, so they run on a claim-counter worker pool (one worker per
    // available core, capped at the level count — oversubscribing a small
    // box with five live worlds costs more in cache pressure than the
    // overlap buys). Results land in per-level slots and are rendered in
    // level order, so the table is byte-identical to a serial sweep.
    let workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(INTENSITIES.len());
    let next = std::sync::atomic::AtomicUsize::new(0);
    let slots: Vec<std::sync::Mutex<Option<SweepRow>>> =
        INTENSITIES.iter().map(|_| std::sync::Mutex::new(None)).collect();
    std::thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|| loop {
                let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if i >= INTENSITIES.len() {
                    break;
                }
                let is_last = i + 1 == INTENSITIES.len();
                let row = sweep_level(&checkpoint, &base, &truth, INTENSITIES[i], is_last);
                *slots[i].lock().expect("sweep slot") = Some(row);
            });
        }
    });
    let rows: Vec<SweepRow> = slots
        .into_iter()
        .map(|slot| slot.into_inner().expect("sweep slot").expect("sweep level ran"))
        .collect();

    let mut floor_demo = String::new();
    for row in rows {
        table.row(&row.cells);
        if let Some(demo) = row.floor_demo {
            floor_demo = demo;
        }
    }
    out.push_str(&table.render());
    let _ = writeln!(
        out,
        "\npair P/R: flagged (owner, miner) acceleration pairs vs configured misbehaviours"
    );
    let _ = writeln!(
        out,
        "darkfee P/R: SPPE>=90% suspects in BTC.com blocks vs the acceleration order book"
    );
    let _ = writeln!(out, "{floor_demo}");
    out
}
