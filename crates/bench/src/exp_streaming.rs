//! Streaming-audit experiment: replays each pinned dataset's event stream
//! through the incremental [`cn_core::streaming::StreamingAuditor`] and
//! demonstrates, on the same goldens every other experiment pins, that
//!
//! * the on-demand exact verdict is **bit-identical** to the batch
//!   `audit_with_snapshots` over the finished run — for the canonical
//!   time-ordered replay, for three seeded randomized *chunkings* of it
//!   (administrative chunk boundaries), and for three seeded randomized
//!   *interleavings* of blocks against snapshots (arrival-order shuffles);
//! * the rolling windowed telemetry is chunking-invariant — every chunked
//!   replay ends in the same [`cn_core::streaming::RollingVerdict`] as the
//!   canonical one;
//! * the windowed state stays O(window), not O(history): the peak retained
//!   row count is a small multiple of the sliding window while the rows
//!   *processed* grow with the run.
//!
//! Wall-clock throughput and peak RSS are measured too, but deliberately
//! kept out of the golden report (they are machine-dependent); the driver
//! exports them into `BENCH_pipeline.json` via [`Lab::record_streaming`].

use crate::lab::{Lab, StreamingBench};
use cn_core::report::Table;
use cn_core::streaming::{interleave, StreamEvent, StreamingAuditor, StreamingConfig};
use cn_core::{audit_with_snapshots, AuditConfig, AuditReport, StreamExpectation};
use cn_sim::SimOutput;
use cn_stats::SimRng;
use std::fmt::Write as _;
use std::time::Instant;

/// Seeds for the randomized chunkings of the canonical stream.
const CHUNKING_SEEDS: [u64; 3] = [1, 2, 3];

/// Seeds for the randomized block/snapshot interleavings.
const INTERLEAVING_SEEDS: [u64; 3] = [7, 8, 9];

/// Largest random chunk, in events.
const MAX_CHUNK: u64 = 64;

fn expectation(out: &SimOutput) -> StreamExpectation {
    let s = &out.scenario;
    StreamExpectation::from_run(s.duration, s.snapshot_interval, s.snapshot_detail_every)
}

fn fresh(out: &SimOutput, exp: StreamExpectation) -> StreamingAuditor {
    StreamingAuditor::new(out.chain.initial_utxos(), StreamingConfig::new(exp))
}

fn batch_report(out: &SimOutput, index: &cn_core::ChainIndex, exp: StreamExpectation) -> AuditReport {
    audit_with_snapshots(&out.chain, index, &out.snapshots, exp, AuditConfig::default())
        .expect("batch audits the pinned dataset")
}

/// A seeded random interleaving: each source keeps its internal order
/// (blocks must connect in height order), but which source supplies the
/// next event is a coin flip.
fn random_interleaving<'a>(out: &'a SimOutput, rng: &mut SimRng) -> Vec<StreamEvent<'a>> {
    let blocks = out.chain.blocks();
    let snapshots = &out.snapshots;
    let mut events = Vec::with_capacity(blocks.len() + snapshots.len());
    let (mut bi, mut si) = (0usize, 0usize);
    while bi < blocks.len() || si < snapshots.len() {
        let take_block = if bi == blocks.len() {
            false
        } else if si == snapshots.len() {
            true
        } else {
            rng.next_bool(0.5)
        };
        if take_block {
            events.push(StreamEvent::Block(&blocks[bi]));
            bi += 1;
        } else {
            events.push(StreamEvent::Snapshot(&snapshots[si]));
            si += 1;
        }
    }
    events
}

/// Peak resident set size of this process in KiB (`VmHWM`), where the
/// platform exposes `/proc/self/status`; `None` elsewhere.
pub fn peak_rss_kb() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    status.lines().find_map(|line| {
        line.strip_prefix("VmHWM:")
            .and_then(|rest| rest.trim().trim_end_matches("kB").trim().parse().ok())
    })
}

fn yes_no(ok: bool) -> &'static str {
    if ok { "yes" } else { "NO — DIVERGED" }
}

/// The `streaming` experiment.
pub fn streaming(lab: &Lab) -> String {
    let mut txt = String::new();
    txt.push_str("Streaming auditor vs batch audit over the pinned datasets\n");
    txt.push_str("(verdicts must be bit-identical under every replay order)\n\n");

    let datasets = [("A", lab.a()), ("B", lab.b()), ("C", lab.c())];
    let mut bench = StreamingBench::default();
    let mut table =
        Table::new(&["dataset", "events", "rows processed", "peak window rows", "bound ratio", "identical"]);
    let mut all_identical = true;

    for (name, (out, index)) in datasets {
        let exp = expectation(out);
        let batch = batch_report(out, index, exp);
        let events = interleave(out.chain.blocks(), &out.snapshots);

        // Canonical time-ordered replay — the one the throughput counters
        // are taken from.
        let started = Instant::now();
        let mut auditor = fresh(out, exp);
        for ev in &events {
            auditor.push_event(ev).expect("replays the pinned dataset");
        }
        let push_secs = started.elapsed().as_secs_f64();
        let canonical_ok = auditor.verdict().expect("audits") == batch;
        let rolling = auditor.rolling();
        let counters = auditor.counters();
        let mut dataset_ok = canonical_ok;

        bench.events += counters.events;
        bench.blocks += counters.blocks;
        bench.snapshots += counters.snapshots;
        bench.rows_processed += counters.rows_processed;
        bench.peak_window_rows = bench.peak_window_rows.max(counters.peak_window_rows);
        bench.replay_seconds += push_secs;

        let _ = writeln!(
            txt,
            "dataset {name}: {} blocks, {} snapshots, {} events, {} snapshot rows",
            counters.blocks, counters.snapshots, counters.events, counters.rows_processed,
        );
        let _ = writeln!(txt, "  canonical replay     verdict identical to batch: {}", yes_no(canonical_ok));

        // Three randomized chunkings of the canonical stream: chunk
        // boundaries are administrative, so the exact verdict *and* the
        // rolling telemetry must both land where the canonical replay did.
        for seed in CHUNKING_SEEDS {
            let mut rng = SimRng::seed_from_u64(seed);
            let mut chunked = fresh(out, exp);
            let mut i = 0usize;
            while i < events.len() {
                let end = (i + 1 + rng.next_below(MAX_CHUNK) as usize).min(events.len());
                for ev in &events[i..end] {
                    chunked.push_event(ev).expect("replays");
                }
                i = end;
            }
            let verdict_ok = chunked.verdict().expect("audits") == batch;
            let rolling_ok = chunked.rolling() == rolling;
            dataset_ok &= verdict_ok && rolling_ok;
            let _ = writeln!(
                txt,
                "  chunking seed {seed}      verdict identical to batch: {}, rolling matches canonical: {}",
                yes_no(verdict_ok),
                yes_no(rolling_ok),
            );
        }

        // Three randomized interleavings of blocks against snapshots: the
        // exact verdict depends only on the event *set*, not arrival order.
        for seed in INTERLEAVING_SEEDS {
            let mut rng = SimRng::seed_from_u64(seed);
            let mut shuffled = fresh(out, exp);
            for ev in random_interleaving(out, &mut rng) {
                shuffled.push_event(&ev).expect("replays");
            }
            let verdict_ok = shuffled.verdict().expect("audits") == batch;
            dataset_ok &= verdict_ok;
            let _ = writeln!(
                txt,
                "  interleaving seed {seed}  verdict identical to batch: {}",
                yes_no(verdict_ok),
            );
        }

        // End-of-run rolling telemetry from the canonical replay.
        for line in rolling.render().lines() {
            let _ = writeln!(txt, "  | {line}");
        }
        let ratio = if counters.peak_window_rows > 0 {
            counters.rows_processed as f64 / counters.peak_window_rows as f64
        } else {
            0.0
        };
        let _ = writeln!(
            txt,
            "  memory: peak window rows {} vs {} rows processed ({:.1}x below)\n",
            counters.peak_window_rows, counters.rows_processed, ratio,
        );

        all_identical &= dataset_ok;
        table.row(&[
            name.to_string(),
            counters.events.to_string(),
            counters.rows_processed.to_string(),
            counters.peak_window_rows.to_string(),
            format!("{ratio:.1}x"),
            yes_no(dataset_ok).to_string(),
        ]);
    }

    bench.peak_rss_kb = peak_rss_kb();
    lab.record_streaming(bench);

    txt.push_str(&table.render());
    let _ = writeln!(
        txt,
        "\nall replays bit-identical to batch: {}",
        yes_no(all_identical),
    );
    txt
}
