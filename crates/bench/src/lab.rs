//! The lab: runs each dataset scenario at most once per process and
//! shares the outputs (plus their chain indexes) across experiments.

use cn_core::ChainIndex;
use cn_data::{dataset_a, dataset_b, dataset_c, Scale};
use cn_sim::{SimOutput, SimProfile, World};
use std::sync::OnceLock;
use std::time::Instant;

/// How many datasets the lab manages (𝒜, ℬ, 𝒞).
pub const DATASET_COUNT: usize = 3;

/// Display names for the lab's datasets, in cell order.
pub const DATASET_NAMES: [&str; DATASET_COUNT] = ["A", "B", "C"];

/// Ingestion and state-size counters from the streaming-audit experiment,
/// surfaced into `BENCH_pipeline.json` so CI can assert the online
/// auditor's windowed state stays O(window) rather than O(history).
#[derive(Clone, Copy, Debug, Default)]
pub struct StreamingBench {
    /// Events replayed across the canonical dataset replays.
    pub events: u64,
    /// Blocks among them.
    pub blocks: u64,
    /// Snapshots among them.
    pub snapshots: u64,
    /// Snapshot rows ingested — the volume a batch audit retains in full.
    pub rows_processed: u64,
    /// High-water mark of retained windowed rows across all replays.
    pub peak_window_rows: u64,
    /// Wall-clock seconds spent pushing events (excludes verdicts).
    pub replay_seconds: f64,
    /// Peak resident set size in KiB (`VmHWM`), when the platform
    /// exposes it.
    pub peak_rss_kb: Option<u64>,
}

impl StreamingBench {
    /// Events pushed per second of replay wall time.
    pub fn events_per_sec(&self) -> f64 {
        if self.replay_seconds > 0.0 {
            self.events as f64 / self.replay_seconds
        } else {
            0.0
        }
    }
}

/// One `megasim` tier's measurements: a full simulate→log→replay→audit
/// pass through the event-log path at a fixed block-count target.
#[derive(Clone, Debug, Default)]
pub struct MegasimTier {
    /// Tier label (`"ref"` or `"main"`).
    pub label: String,
    /// Blocks simulated (and written to the log).
    pub blocks: u64,
    /// Snapshots written to the log.
    pub snapshots: u64,
    /// Event-log size in bytes.
    pub log_bytes: u64,
    /// Segments the event log was chunked into.
    pub log_segments: u64,
    /// Digest segments the spilled auditor checkpointed to its store.
    pub spill_segments: u64,
    /// Bytes the spilled digest occupies.
    pub spill_bytes: u64,
    /// Wall-clock seconds simulating (writing the log).
    pub sim_seconds: f64,
    /// Wall-clock seconds replaying the log through the spilled auditor
    /// (excludes the verdict).
    pub replay_seconds: f64,
    /// `VmHWM` in KiB sampled right after the simulation finished writing
    /// the log, when the platform exposes it.
    pub rss_after_sim_kb: Option<u64>,
    /// `VmHWM` in KiB sampled right after the replay (before the verdict's
    /// transient digest rebuild), when the platform exposes it.
    pub rss_after_replay_kb: Option<u64>,
}

impl MegasimTier {
    /// Blocks simulated-and-audited per second of sim + replay wall time.
    pub fn blocks_per_sec(&self) -> f64 {
        let secs = self.sim_seconds + self.replay_seconds;
        if secs > 0.0 {
            self.blocks as f64 / secs
        } else {
            0.0
        }
    }

    /// Log bytes per block — the disk-shaped cost per unit of chain.
    pub fn bytes_per_block(&self) -> f64 {
        if self.blocks > 0 {
            self.log_bytes as f64 / self.blocks as f64
        } else {
            0.0
        }
    }
}

/// The `megasim` experiment's two tiers (reference and main), surfaced
/// into `BENCH_pipeline.json` so CI can assert peak RSS stays flat as the
/// block-count target grows 10×.
#[derive(Clone, Debug, Default)]
pub struct MegasimBench {
    /// The small tier (a tenth of the main target), measured first.
    pub reference: MegasimTier,
    /// The main tier.
    pub main: MegasimTier,
}

/// Lazily simulated datasets plus derived indexes.
///
/// Each dataset lives in one `OnceLock` cell, so it is simulated at most
/// once per process no matter how many experiments (or threads) ask for
/// it. A `World` owns all of its RNG streams, which makes every cell's
/// init closure self-contained — [`Lab::prewarm`] exploits that to warm
/// all three cells on parallel scoped threads with bit-identical results.
pub struct Lab {
    scale: Scale,
    cells: [OnceLock<(SimOutput, ChainIndex)>; DATASET_COUNT],
    /// Wall-clock seconds each cell's init took (simulate + index);
    /// `None` until that dataset has been materialized.
    sim_seconds: [OnceLock<f64>; DATASET_COUNT],
    /// Counters recorded by the streaming experiment, if it ran.
    streaming: OnceLock<StreamingBench>,
    /// Counters recorded by the megasim experiment, if it ran.
    megasim: OnceLock<MegasimBench>,
}

impl Lab {
    /// A lab at the given scale.
    pub fn new(scale: Scale) -> Lab {
        Lab {
            scale,
            cells: [OnceLock::new(), OnceLock::new(), OnceLock::new()],
            sim_seconds: [OnceLock::new(), OnceLock::new(), OnceLock::new()],
            streaming: OnceLock::new(),
            megasim: OnceLock::new(),
        }
    }

    /// Hours-scale lab for tests.
    pub fn quick() -> Lab {
        Lab::new(Scale::Quick)
    }

    /// Days-scale lab for the experiment harness.
    pub fn full() -> Lab {
        Lab::new(Scale::Full)
    }

    /// The megasim scale tier: standard datasets behave as at full scale,
    /// while `megasim` stretches to its thousands-of-blocks targets.
    pub fn large() -> Lab {
        Lab::new(Scale::Large)
    }

    /// The scale in use.
    pub fn scale(&self) -> Scale {
        self.scale
    }

    /// The dataset in cell `which` (0 = 𝒜, 1 = ℬ, 2 = 𝒞), simulated on
    /// first use.
    fn dataset(&self, which: usize) -> &(SimOutput, ChainIndex) {
        self.cells[which].get_or_init(|| {
            let started = Instant::now();
            let scenario = match which {
                0 => dataset_a(self.scale),
                1 => dataset_b(self.scale),
                _ => dataset_c(self.scale),
            };
            let out = World::new(scenario).run();
            let index = ChainIndex::build(&out.chain);
            let _ = self.sim_seconds[which].set(started.elapsed().as_secs_f64());
            (out, index)
        })
    }

    /// Dataset 𝒜's output and index (simulated on first use).
    pub fn a(&self) -> &(SimOutput, ChainIndex) {
        self.dataset(0)
    }

    /// Dataset ℬ's output and index.
    pub fn b(&self) -> &(SimOutput, ChainIndex) {
        self.dataset(1)
    }

    /// Dataset 𝒞's output and index.
    pub fn c(&self) -> &(SimOutput, ChainIndex) {
        self.dataset(2)
    }

    /// Materializes all three datasets on parallel scoped threads.
    ///
    /// Each `World` is seeded from its scenario and owns its RNG streams,
    /// so warming concurrently produces bit-identical outputs to the lazy
    /// serial path; `OnceLock` guarantees each cell still initializes
    /// exactly once even if experiments race with the warmers.
    pub fn prewarm(&self) {
        std::thread::scope(|s| {
            for which in 0..DATASET_COUNT {
                s.spawn(move || {
                    self.dataset(which);
                });
            }
        });
    }

    /// Wall-clock seconds spent simulating + indexing each dataset, in
    /// [`DATASET_NAMES`] order; `None` for datasets never requested.
    pub fn sim_seconds(&self) -> [Option<f64>; DATASET_COUNT] {
        [
            self.sim_seconds[0].get().copied(),
            self.sim_seconds[1].get().copied(),
            self.sim_seconds[2].get().copied(),
        ]
    }

    /// Records the streaming experiment's counters (first writer wins —
    /// the experiment runs once per process).
    pub fn record_streaming(&self, bench: StreamingBench) {
        let _ = self.streaming.set(bench);
    }

    /// The streaming experiment's counters, if it ran this process.
    pub fn streaming_bench(&self) -> Option<StreamingBench> {
        self.streaming.get().copied()
    }

    /// Records the megasim experiment's tier measurements (first writer
    /// wins — the experiment runs once per process).
    pub fn record_megasim(&self, bench: MegasimBench) {
        let _ = self.megasim.set(bench);
    }

    /// The megasim experiment's tier measurements, if it ran this process.
    pub fn megasim_bench(&self) -> Option<MegasimBench> {
        self.megasim.get().cloned()
    }

    /// Per-run simulator profiles (event counts, per-subsystem seconds),
    /// in [`DATASET_NAMES`] order; `None` for datasets never requested.
    pub fn sim_profiles(&self) -> [Option<SimProfile>; DATASET_COUNT] {
        [
            self.cells[0].get().map(|(out, _)| out.profile.clone()),
            self.cells[1].get().map(|(out, _)| out.profile.clone()),
            self.cells[2].get().map(|(out, _)| out.profile.clone()),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sim_seconds_track_materialization() {
        let lab = Lab::quick();
        assert_eq!(lab.sim_seconds(), [None, None, None]);
        lab.a();
        let secs = lab.sim_seconds();
        assert!(secs[0].is_some());
        assert_eq!(secs[1], None);
        assert_eq!(secs[2], None);
    }
}
