//! The lab: runs each dataset scenario at most once per process and
//! shares the outputs (plus their chain indexes) across experiments.

use cn_core::ChainIndex;
use cn_data::{dataset_a, dataset_b, dataset_c, Scale};
use cn_sim::{SimOutput, World};
use std::sync::OnceLock;

/// Lazily simulated datasets plus derived indexes.
pub struct Lab {
    scale: Scale,
    a: OnceLock<(SimOutput, ChainIndex)>,
    b: OnceLock<(SimOutput, ChainIndex)>,
    c: OnceLock<(SimOutput, ChainIndex)>,
}

impl Lab {
    /// A lab at the given scale.
    pub fn new(scale: Scale) -> Lab {
        Lab { scale, a: OnceLock::new(), b: OnceLock::new(), c: OnceLock::new() }
    }

    /// Hours-scale lab for tests.
    pub fn quick() -> Lab {
        Lab::new(Scale::Quick)
    }

    /// Days-scale lab for the experiment harness.
    pub fn full() -> Lab {
        Lab::new(Scale::Full)
    }

    /// The scale in use.
    pub fn scale(&self) -> Scale {
        self.scale
    }

    /// Dataset 𝒜's output and index (simulated on first use).
    pub fn a(&self) -> &(SimOutput, ChainIndex) {
        self.a.get_or_init(|| {
            let out = World::new(dataset_a(self.scale)).run();
            let index = ChainIndex::build(&out.chain);
            (out, index)
        })
    }

    /// Dataset ℬ's output and index.
    pub fn b(&self) -> &(SimOutput, ChainIndex) {
        self.b.get_or_init(|| {
            let out = World::new(dataset_b(self.scale)).run();
            let index = ChainIndex::build(&out.chain);
            (out, index)
        })
    }

    /// Dataset 𝒞's output and index.
    pub fn c(&self) -> &(SimOutput, ChainIndex) {
        self.c.get_or_init(|| {
            let out = World::new(dataset_c(self.scale)).run();
            let index = ChainIndex::build(&out.chain);
            (out, index)
        })
    }
}
