//! # cn-bench — the experiment harness
//!
//! One function per table and figure in the paper's evaluation, each
//! regenerating the artifact from a calibrated simulation and printing
//! the same rows/series the paper reports (see `EXPERIMENTS.md` for the
//! paper-vs-measured record). Run them via the `experiments` binary:
//!
//! ```text
//! cargo run --release -p cn-bench --bin experiments -- all
//! cargo run --release -p cn-bench --bin experiments -- table2 fig7
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod exp_datasets;
pub mod exp_extensions;
pub mod exp_fleet;
pub mod exp_megasim;
pub mod exp_misbehavior;
pub mod exp_norms;
pub mod exp_revenue;
pub mod exp_robustness;
pub mod exp_streaming;
pub mod lab;

pub use lab::{Lab, MegasimBench, MegasimTier, StreamingBench, DATASET_COUNT, DATASET_NAMES};

/// Every experiment id, in presentation order.
pub const ALL_IDS: &[&str] = &[
    "fig1", "table1", "fig2", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8", "table2",
    "table3", "table4", "table5", "fig9", "fig10", "fig11", "fig12", "fig13", "fig14",
    // Extensions beyond the numbered artifacts:
    "norm3", "harm", "robustness", "observer_fleet", "streaming", "megasim",
];

/// Runs one experiment by id; `None` for an unknown id.
pub fn run_experiment(id: &str, lab: &Lab) -> Option<String> {
    Some(match id {
        "fig1" => exp_norms::fig1(lab),
        "table1" => exp_datasets::table1(lab),
        "fig2" => exp_datasets::fig2(lab),
        "fig3" => exp_datasets::fig3(lab),
        "fig4" => exp_datasets::fig4(lab),
        "fig5" => exp_datasets::fig5(lab),
        "fig6" => exp_norms::fig6(lab),
        "fig7" => exp_norms::fig7(lab),
        "fig8" => exp_misbehavior::fig8(lab),
        "table2" => exp_misbehavior::table2(lab),
        "table3" => exp_misbehavior::table3(lab),
        "table4" => exp_misbehavior::table4(lab),
        "table5" => exp_revenue::table5(lab),
        "fig9" => exp_datasets::fig9(lab),
        "fig10" => exp_datasets::fig10(lab),
        "fig11" => exp_datasets::fig11(lab),
        "fig12" => exp_datasets::fig12(lab),
        "fig13" => exp_misbehavior::fig13(lab),
        "fig14" => exp_misbehavior::fig14(lab),
        "norm3" => exp_extensions::norm3(lab),
        "harm" => exp_extensions::harm(lab),
        "robustness" => exp_robustness::robustness(lab),
        "observer_fleet" => exp_fleet::observer_fleet(lab),
        "streaming" => exp_streaming::streaming(lab),
        "megasim" => exp_megasim::megasim(lab),
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_covers_all_ids() {
        let lab = Lab::quick();
        // Only check id resolution here — actually running them is the
        // integration tests' job (they are expensive).
        assert!(run_experiment("nope", &lab).is_none());
        assert_eq!(ALL_IDS.len(), 25);
        let mut ids: Vec<&&str> = ALL_IDS.iter().collect();
        ids.sort();
        ids.dedup();
        assert_eq!(ids.len(), 25, "ids must be unique");
    }
}
