//! Determinism guards for the parallel harness: a pre-warmed `Lab` driven
//! by worker threads must be byte-identical to a lazy serial one, and the
//! `FaultPlan::none()` bit-inertness from the fault-injection layer must
//! survive running worlds on spawned threads.

use cn_bench::{run_experiment, Lab};
use cn_data::{dataset_a, Scale};
use cn_net::FaultPlan;
use cn_sim::{SimOutput, World};

/// A cheap-but-covering experiment subset: `table1` touches all three
/// datasets, `fig2` reads the 𝒜/ℬ snapshot streams, `table2` exercises the
/// misbehaviour roster on dataset 𝒞.
const IDS: [&str; 3] = ["table1", "fig2", "table2"];

#[test]
fn parallel_prewarm_matches_serial_byte_for_byte() {
    let serial = Lab::quick();
    let serial_reports: Vec<String> =
        IDS.iter().map(|id| run_experiment(id, &serial).expect("known id")).collect();

    let parallel = Lab::quick();
    parallel.prewarm();
    let parallel_reports: Vec<String> = std::thread::scope(|s| {
        let handles: Vec<_> =
            IDS.iter().map(|id| s.spawn(|| run_experiment(id, &parallel).expect("known id"))).collect();
        handles.into_iter().map(|h| h.join().expect("worker panicked")).collect()
    });

    for ((id, serial_report), parallel_report) in
        IDS.iter().zip(&serial_reports).zip(&parallel_reports)
    {
        assert_eq!(serial_report, parallel_report, "{id} diverged between serial and parallel");
    }
}

/// Canonical comparison surface for a run: chain shape, snapshot stream,
/// and attribution ground truth. (`SimOutput` holds service handles, so it
/// cannot simply derive `PartialEq`.)
fn fingerprint(out: &SimOutput) -> (Vec<cn_chain::BlockHash>, usize, Vec<usize>, usize) {
    let hashes = out.chain.blocks().iter().map(|b| b.block_hash()).collect();
    (hashes, out.snapshots.len(), out.block_miners.clone(), out.orphaned_blocks)
}

#[test]
fn fault_plan_none_stays_bit_inert_on_worker_threads() {
    let stock = dataset_a(Scale::Quick);
    let mut explicit_none = dataset_a(Scale::Quick);
    explicit_none.faults = FaultPlan::none();

    let (stock_out, none_out) = std::thread::scope(|s| {
        let a = s.spawn(|| World::new(stock).run());
        let b = s.spawn(|| World::new(explicit_none).run());
        (a.join().expect("stock run"), b.join().expect("none run"))
    });

    assert_eq!(
        fingerprint(&stock_out),
        fingerprint(&none_out),
        "FaultPlan::none() must not perturb a run, threaded or not"
    );
    assert_eq!(stock_out.snapshots, none_out.snapshots, "snapshot streams diverged");
}
