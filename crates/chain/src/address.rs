//! Wallet addresses: base58check (legacy) and bech32 (native SegWit).
//!
//! The audit pipeline identifies mining-pool operators by the reward
//! addresses appearing in coinbase transactions (§5.2 of the paper), so
//! addresses must be first-class, hashable values with a stable textual
//! form. We support the two classic Bitcoin address kinds plus P2WPKH;
//! script execution is out of scope.

use crate::hash::sha256d;
use serde::{Deserialize, Serialize};
use std::fmt;

const BASE58_ALPHABET: &[u8; 58] =
    b"123456789ABCDEFGHJKLMNPQRSTUVWXYZabcdefghijkmnopqrstuvwxyz";

/// A wallet address: a 20-byte hash plus a kind discriminant.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Address {
    /// Pay-to-public-key-hash (version byte `0x00`).
    P2pkh([u8; 20]),
    /// Pay-to-script-hash (version byte `0x05`).
    P2sh([u8; 20]),
    /// Native SegWit v0 pay-to-witness-public-key-hash (`bc1q…`).
    P2wpkh([u8; 20]),
}

impl Address {
    /// Constructs a P2PKH address from a 20-byte key hash.
    pub const fn p2pkh(hash: [u8; 20]) -> Address {
        Address::P2pkh(hash)
    }

    /// Constructs a P2SH address from a 20-byte script hash.
    pub const fn p2sh(hash: [u8; 20]) -> Address {
        Address::P2sh(hash)
    }

    /// Constructs a native SegWit P2WPKH address from a 20-byte key hash.
    pub const fn p2wpkh(hash: [u8; 20]) -> Address {
        Address::P2wpkh(hash)
    }

    /// Derives a deterministic P2PKH address from a label (for simulations,
    /// where key management is irrelevant but stable identity matters).
    pub fn from_label(label: &str) -> Address {
        let h = crate::hash::sha256(label.as_bytes());
        let mut out = [0u8; 20];
        out.copy_from_slice(&h.as_bytes()[..20]);
        Address::P2pkh(out)
    }

    /// The 20-byte payload.
    pub fn payload(&self) -> &[u8; 20] {
        match self {
            Address::P2pkh(h) | Address::P2sh(h) | Address::P2wpkh(h) => h,
        }
    }

    /// The base58check version byte (legacy kinds only).
    fn version(&self) -> u8 {
        match self {
            Address::P2pkh(_) => 0x00,
            Address::P2sh(_) => 0x05,
            Address::P2wpkh(_) => unreachable!("segwit addresses use bech32"),
        }
    }

    /// The canonical script-pubkey bytes locking coins to this address.
    ///
    /// P2PKH: `OP_DUP OP_HASH160 <20> OP_EQUALVERIFY OP_CHECKSIG` (25 bytes);
    /// P2SH: `OP_HASH160 <20> OP_EQUAL` (23 bytes); P2WPKH: `OP_0 <20>`
    /// (22 bytes). Real templates keep output sizes — and hence virtual
    /// sizes and fee rates — realistic.
    pub fn script_pubkey(&self) -> Vec<u8> {
        match self {
            Address::P2pkh(h) => {
                let mut s = Vec::with_capacity(25);
                s.extend_from_slice(&[0x76, 0xa9, 0x14]);
                s.extend_from_slice(h);
                s.extend_from_slice(&[0x88, 0xac]);
                s
            }
            Address::P2sh(h) => {
                let mut s = Vec::with_capacity(23);
                s.extend_from_slice(&[0xa9, 0x14]);
                s.extend_from_slice(h);
                s.push(0x87);
                s
            }
            Address::P2wpkh(h) => {
                let mut s = Vec::with_capacity(22);
                s.extend_from_slice(&[0x00, 0x14]);
                s.extend_from_slice(h);
                s
            }
        }
    }

    /// Recovers an address from script-pubkey bytes, if it matches a known
    /// template.
    pub fn from_script_pubkey(script: &[u8]) -> Option<Address> {
        match script {
            [0x76, 0xa9, 0x14, mid @ .., 0x88, 0xac] if mid.len() == 20 => {
                Some(Address::P2pkh(mid.try_into().ok()?))
            }
            [0xa9, 0x14, mid @ .., 0x87] if mid.len() == 20 => {
                Some(Address::P2sh(mid.try_into().ok()?))
            }
            [0x00, 0x14, rest @ ..] if rest.len() == 20 => {
                Some(Address::P2wpkh(rest.try_into().ok()?))
            }
            _ => None,
        }
    }

    /// Renders the canonical textual form: base58check for legacy kinds,
    /// bech32 for SegWit.
    pub fn to_text(&self) -> String {
        match self {
            Address::P2wpkh(h) => crate::bech32::encode_segwit_v0("bc", h),
            _ => self.to_base58check(),
        }
    }

    /// Parses any supported textual address form.
    pub fn from_text(s: &str) -> Option<Address> {
        if let Some((0, program)) = crate::bech32::decode_segwit("bc", s) {
            if program.len() == 20 {
                return Some(Address::P2wpkh(program.try_into().ok()?));
            }
            return None;
        }
        Address::from_base58check(s)
    }

    /// Encodes as a base58check string.
    ///
    /// # Panics
    /// Panics for SegWit addresses — use [`Address::to_text`].
    pub fn to_base58check(&self) -> String {
        let mut data = Vec::with_capacity(25);
        data.push(self.version());
        data.extend_from_slice(self.payload());
        let checksum = sha256d(&data);
        data.extend_from_slice(&checksum.as_bytes()[..4]);
        base58_encode(&data)
    }

    /// Decodes a base58check string, validating the checksum and version.
    pub fn from_base58check(s: &str) -> Option<Address> {
        let data = base58_decode(s)?;
        if data.len() != 25 {
            return None;
        }
        let (body, checksum) = data.split_at(21);
        let expect = sha256d(body);
        if checksum != &expect.as_bytes()[..4] {
            return None;
        }
        let payload: [u8; 20] = body[1..].try_into().ok()?;
        match body[0] {
            0x00 => Some(Address::P2pkh(payload)),
            0x05 => Some(Address::P2sh(payload)),
            _ => None,
        }
    }
}

impl fmt::Display for Address {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_text())
    }
}

impl fmt::Debug for Address {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Address({self})")
    }
}

fn base58_encode(data: &[u8]) -> String {
    // Count leading zero bytes; each maps to a literal '1'.
    let zeros = data.iter().take_while(|&&b| b == 0).count();
    // Big-number base conversion, digits little-endian.
    let mut digits: Vec<u8> = Vec::with_capacity(data.len() * 138 / 100 + 1);
    for &byte in &data[zeros..] {
        let mut carry = byte as u32;
        for d in digits.iter_mut() {
            carry += (*d as u32) << 8;
            *d = (carry % 58) as u8;
            carry /= 58;
        }
        while carry > 0 {
            digits.push((carry % 58) as u8);
            carry /= 58;
        }
    }
    let mut out = String::with_capacity(zeros + digits.len());
    out.extend(std::iter::repeat_n('1', zeros));
    for &d in digits.iter().rev() {
        out.push(BASE58_ALPHABET[d as usize] as char);
    }
    out
}

fn base58_decode(s: &str) -> Option<Vec<u8>> {
    let ones = s.bytes().take_while(|&b| b == b'1').count();
    let mut bytes: Vec<u8> = Vec::with_capacity(s.len());
    for ch in s.bytes().skip(ones) {
        let val = BASE58_ALPHABET.iter().position(|&a| a == ch)? as u32;
        let mut carry = val;
        for b in bytes.iter_mut() {
            carry += (*b as u32) * 58;
            *b = (carry & 0xff) as u8;
            carry >>= 8;
        }
        while carry > 0 {
            bytes.push((carry & 0xff) as u8);
            carry >>= 8;
        }
    }
    let mut out = vec![0u8; ones];
    out.extend(bytes.iter().rev());
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_genesis_address_encoding() {
        // The famous genesis-block reward address.
        // hash160 = 62e907b15cbf27d5425399ebf6f0fb50ebb88f18
        let payload: [u8; 20] = [
            0x62, 0xe9, 0x07, 0xb1, 0x5c, 0xbf, 0x27, 0xd5, 0x42, 0x53, 0x99, 0xeb, 0xf6, 0xf0,
            0xfb, 0x50, 0xeb, 0xb8, 0x8f, 0x18,
        ];
        let addr = Address::p2pkh(payload);
        assert_eq!(addr.to_base58check(), "1A1zP1eP5QGefi2DMPTfTL5SLmv7DivfNa");
    }

    #[test]
    fn base58check_round_trip() {
        for i in 0u8..20 {
            let addr = Address::p2pkh([i; 20]);
            let s = addr.to_base58check();
            assert_eq!(Address::from_base58check(&s), Some(addr));
            let addr = Address::p2sh([i; 20]);
            let s = addr.to_base58check();
            assert_eq!(Address::from_base58check(&s), Some(addr));
        }
    }

    #[test]
    fn checksum_detects_typos() {
        let s = Address::p2pkh([9; 20]).to_base58check();
        let mut corrupted = s.clone().into_bytes();
        // Flip the final character to a different alphabet letter.
        corrupted[0] = if corrupted[0] == b'1' { b'2' } else { b'1' };
        let corrupted = String::from_utf8(corrupted).expect("ascii");
        if corrupted != s {
            assert_eq!(Address::from_base58check(&corrupted), None);
        }
        assert_eq!(Address::from_base58check("0OIl"), None); // invalid chars
        assert_eq!(Address::from_base58check(""), None);
    }

    #[test]
    fn script_pubkey_round_trip() {
        let a = Address::p2pkh([3; 20]);
        assert_eq!(Address::from_script_pubkey(&a.script_pubkey()), Some(a));
        let b = Address::p2sh([4; 20]);
        assert_eq!(Address::from_script_pubkey(&b.script_pubkey()), Some(b));
        assert_eq!(Address::from_script_pubkey(&[0x6a, 0x01, 0x02]), None);
    }

    #[test]
    fn script_sizes_match_bitcoin() {
        assert_eq!(Address::p2pkh([0; 20]).script_pubkey().len(), 25);
        assert_eq!(Address::p2sh([0; 20]).script_pubkey().len(), 23);
    }

    #[test]
    fn from_label_is_deterministic_and_distinct() {
        let a = Address::from_label("pool:F2Pool:0");
        let b = Address::from_label("pool:F2Pool:0");
        let c = Address::from_label("pool:F2Pool:1");
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn p2wpkh_text_round_trip() {
        // The BIP-173 example key hash.
        let payload: [u8; 20] = [
            0x75, 0x1e, 0x76, 0xe8, 0x19, 0x91, 0x96, 0xd4, 0x54, 0x94, 0x1c, 0x45, 0xd1, 0xb3,
            0xa3, 0x23, 0xf1, 0x43, 0x3b, 0xd6,
        ];
        let addr = Address::p2wpkh(payload);
        let text = addr.to_text();
        assert_eq!(text, "bc1qw508d6qejxtdg4y5r3zarvary0c5xw7kv8f3t4");
        assert_eq!(Address::from_text(&text), Some(addr));
        assert_eq!(addr.to_string(), text);
    }

    #[test]
    fn p2wpkh_script_round_trip_and_size() {
        let addr = Address::p2wpkh([9; 20]);
        let script = addr.script_pubkey();
        assert_eq!(script.len(), 22);
        assert_eq!(script[0], 0x00);
        assert_eq!(script[1], 0x14);
        assert_eq!(Address::from_script_pubkey(&script), Some(addr));
    }

    #[test]
    fn from_text_parses_all_kinds() {
        let legacy = Address::p2pkh([3; 20]);
        assert_eq!(Address::from_text(&legacy.to_text()), Some(legacy));
        let script = Address::p2sh([4; 20]);
        assert_eq!(Address::from_text(&script.to_text()), Some(script));
        assert_eq!(Address::from_text("definitely-not-an-address"), None);
    }

    #[test]
    #[should_panic(expected = "bech32")]
    fn base58check_panics_for_segwit() {
        let _ = Address::p2wpkh([1; 20]).to_base58check();
    }

    #[test]
    fn leading_zeros_preserved() {
        let addr = Address::p2pkh([0; 20]);
        let s = addr.to_base58check();
        assert!(s.starts_with('1'));
        assert_eq!(Address::from_base58check(&s), Some(addr));
    }
}
