//! Monetary amounts in satoshi, with checked arithmetic.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Sub};

/// Number of satoshi in one bitcoin.
pub const SAT_PER_BTC: u64 = 100_000_000;

/// A non-negative monetary amount, stored in satoshi.
///
/// Plain `+`/`-` panic on overflow/underflow (a logic error in this codebase);
/// use [`Amount::checked_add`] / [`Amount::checked_sub`] where failure is a
/// legitimate outcome (e.g. computing a fee from untrusted inputs).
#[derive(
    Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Amount(u64);

impl Amount {
    /// Zero satoshi.
    pub const ZERO: Amount = Amount(0);
    /// One satoshi.
    pub const ONE_SAT: Amount = Amount(1);
    /// One bitcoin.
    pub const ONE_BTC: Amount = Amount(SAT_PER_BTC);
    /// Maximum money supply (21 million BTC), as in Bitcoin's `MAX_MONEY`.
    pub const MAX_MONEY: Amount = Amount(21_000_000 * SAT_PER_BTC);

    /// Constructs an amount from satoshi.
    #[inline]
    pub const fn from_sat(sat: u64) -> Amount {
        Amount(sat)
    }

    /// Constructs an amount from whole bitcoin.
    #[inline]
    pub const fn from_btc(btc: u64) -> Amount {
        Amount(btc * SAT_PER_BTC)
    }

    /// Constructs an amount from a fractional BTC value, rounding to the
    /// nearest satoshi. Returns `None` for negative, non-finite, or
    /// out-of-range inputs.
    pub fn from_btc_f64(btc: f64) -> Option<Amount> {
        if !btc.is_finite() || btc < 0.0 {
            return None;
        }
        let sat = (btc * SAT_PER_BTC as f64).round();
        if sat > Amount::MAX_MONEY.0 as f64 {
            return None;
        }
        Some(Amount(sat as u64))
    }

    /// The amount in satoshi.
    #[inline]
    pub const fn to_sat(self) -> u64 {
        self.0
    }

    /// The amount as fractional BTC (lossy beyond 2^53 sat; fine for display).
    #[inline]
    pub fn to_btc(self) -> f64 {
        self.0 as f64 / SAT_PER_BTC as f64
    }

    /// Checked addition.
    #[inline]
    pub fn checked_add(self, rhs: Amount) -> Option<Amount> {
        self.0.checked_add(rhs.0).map(Amount)
    }

    /// Checked subtraction.
    #[inline]
    pub fn checked_sub(self, rhs: Amount) -> Option<Amount> {
        self.0.checked_sub(rhs.0).map(Amount)
    }

    /// Saturating subtraction (clamps at zero).
    #[inline]
    pub fn saturating_sub(self, rhs: Amount) -> Amount {
        Amount(self.0.saturating_sub(rhs.0))
    }

    /// True when the amount is zero.
    #[inline]
    pub fn is_zero(self) -> bool {
        self.0 == 0
    }
}

impl Add for Amount {
    type Output = Amount;
    fn add(self, rhs: Amount) -> Amount {
        self.checked_add(rhs).expect("Amount overflow")
    }
}

impl AddAssign for Amount {
    fn add_assign(&mut self, rhs: Amount) {
        *self = *self + rhs;
    }
}

impl Sub for Amount {
    type Output = Amount;
    fn sub(self, rhs: Amount) -> Amount {
        self.checked_sub(rhs).expect("Amount underflow")
    }
}

impl Sum for Amount {
    fn sum<I: Iterator<Item = Amount>>(iter: I) -> Amount {
        iter.fold(Amount::ZERO, |a, b| a + b)
    }
}

impl fmt::Display for Amount {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let btc = self.0 / SAT_PER_BTC;
        let rem = self.0 % SAT_PER_BTC;
        write!(f, "{btc}.{rem:08} BTC")
    }
}

impl fmt::Debug for Amount {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} sat", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_agree() {
        assert_eq!(Amount::from_btc(1), Amount::from_sat(SAT_PER_BTC));
        assert_eq!(Amount::from_btc_f64(0.5), Some(Amount::from_sat(50_000_000)));
        assert_eq!(Amount::from_btc_f64(-1.0), None);
        assert_eq!(Amount::from_btc_f64(f64::NAN), None);
        assert_eq!(Amount::from_btc_f64(22_000_000.0), None);
    }

    #[test]
    fn arithmetic() {
        let a = Amount::from_sat(10);
        let b = Amount::from_sat(3);
        assert_eq!((a + b).to_sat(), 13);
        assert_eq!((a - b).to_sat(), 7);
        assert_eq!(b.checked_sub(a), None);
        assert_eq!(b.saturating_sub(a), Amount::ZERO);
        assert_eq!(Amount::from_sat(u64::MAX).checked_add(Amount::ONE_SAT), None);
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn sub_underflow_panics() {
        let _ = Amount::from_sat(1) - Amount::from_sat(2);
    }

    #[test]
    fn sum_of_iterator() {
        let total: Amount = (1..=4).map(Amount::from_sat).sum();
        assert_eq!(total.to_sat(), 10);
    }

    #[test]
    fn display_formats_btc() {
        assert_eq!(Amount::from_sat(150_000_000).to_string(), "1.50000000 BTC");
        assert_eq!(Amount::from_sat(1).to_string(), "0.00000001 BTC");
    }

    #[test]
    fn btc_round_trip() {
        let a = Amount::from_sat(123_456_789);
        assert_eq!(Amount::from_btc_f64(a.to_btc()), Some(a));
    }
}
