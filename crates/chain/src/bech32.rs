//! Bech32 encoding (BIP-173), for native-SegWit addresses.

/// The bech32 character set.
const CHARSET: &[u8; 32] = b"qpzry9x8gf2tvdw0s3jn54khce6mua7l";

/// Generator coefficients for the bech32 checksum.
const GENERATOR: [u32; 5] = [0x3b6a_57b2, 0x2650_8e6d, 0x1ea1_19fa, 0x3d42_33dd, 0x2a14_62b3];

fn polymod(values: &[u8]) -> u32 {
    let mut chk: u32 = 1;
    for &v in values {
        let top = chk >> 25;
        chk = ((chk & 0x01ff_ffff) << 5) ^ v as u32;
        for (i, &g) in GENERATOR.iter().enumerate() {
            if (top >> i) & 1 == 1 {
                chk ^= g;
            }
        }
    }
    chk
}

fn hrp_expand(hrp: &str) -> Vec<u8> {
    let mut out = Vec::with_capacity(hrp.len() * 2 + 1);
    for b in hrp.bytes() {
        out.push(b >> 5);
    }
    out.push(0);
    for b in hrp.bytes() {
        out.push(b & 0x1f);
    }
    out
}

/// Converts between bit groupings (e.g. 8-bit bytes to 5-bit groups).
/// Returns `None` when `pad` is false and leftover bits are non-zero or
/// too many.
pub fn convert_bits(data: &[u8], from: u32, to: u32, pad: bool) -> Option<Vec<u8>> {
    let mut acc: u32 = 0;
    let mut bits: u32 = 0;
    let mut out = Vec::new();
    let maxv: u32 = (1 << to) - 1;
    for &b in data {
        let v = b as u32;
        if v >> from != 0 {
            return None;
        }
        acc = (acc << from) | v;
        bits += from;
        while bits >= to {
            bits -= to;
            out.push(((acc >> bits) & maxv) as u8);
        }
    }
    if pad {
        if bits > 0 {
            out.push(((acc << (to - bits)) & maxv) as u8);
        }
    } else if bits >= from || ((acc << (to - bits)) & maxv) != 0 {
        return None;
    }
    Some(out)
}

/// Encodes `data` (5-bit groups) under the human-readable part `hrp`.
pub fn encode(hrp: &str, data: &[u8]) -> String {
    let mut values = hrp_expand(hrp);
    values.extend_from_slice(data);
    values.extend_from_slice(&[0; 6]);
    let plm = polymod(&values) ^ 1;
    let mut out = String::with_capacity(hrp.len() + 1 + data.len() + 6);
    out.push_str(hrp);
    out.push('1');
    for &d in data {
        out.push(CHARSET[d as usize] as char);
    }
    for i in 0..6 {
        out.push(CHARSET[((plm >> (5 * (5 - i))) & 0x1f) as usize] as char);
    }
    out
}

/// Decodes a bech32 string into `(hrp, data)` (data in 5-bit groups,
/// checksum verified and stripped). Mixed case is rejected per BIP-173.
pub fn decode(s: &str) -> Option<(String, Vec<u8>)> {
    if s.len() < 8 || s.len() > 90 {
        return None;
    }
    let has_lower = s.bytes().any(|b| b.is_ascii_lowercase());
    let has_upper = s.bytes().any(|b| b.is_ascii_uppercase());
    if has_lower && has_upper {
        return None;
    }
    let s = s.to_ascii_lowercase();
    let sep = s.rfind('1')?;
    if sep == 0 || sep + 7 > s.len() {
        return None;
    }
    let (hrp, rest) = s.split_at(sep);
    let rest = &rest[1..];
    if hrp.bytes().any(|b| !(33..=126).contains(&b)) {
        return None;
    }
    let mut data = Vec::with_capacity(rest.len());
    for c in rest.bytes() {
        let v = CHARSET.iter().position(|&x| x == c)?;
        data.push(v as u8);
    }
    let mut values = hrp_expand(hrp);
    values.extend_from_slice(&data);
    if polymod(&values) != 1 {
        return None;
    }
    data.truncate(data.len() - 6);
    Some((hrp.to_string(), data))
}

/// Encodes a SegWit v0 program (a 20- or 32-byte hash) as a `bc1…`
/// address.
pub fn encode_segwit_v0(hrp: &str, program: &[u8]) -> String {
    let mut data = vec![0u8]; // witness version 0
    data.extend(convert_bits(program, 8, 5, true).expect("8->5 with padding never fails"));
    encode(hrp, &data)
}

/// Decodes a SegWit address into `(witness_version, program)`.
pub fn decode_segwit(expected_hrp: &str, s: &str) -> Option<(u8, Vec<u8>)> {
    let (hrp, data) = decode(s)?;
    if hrp != expected_hrp || data.is_empty() {
        return None;
    }
    let version = data[0];
    if version > 16 {
        return None;
    }
    let program = convert_bits(&data[1..], 5, 8, false)?;
    if program.len() < 2 || program.len() > 40 {
        return None;
    }
    if version == 0 && program.len() != 20 && program.len() != 32 {
        return None;
    }
    Some((version, program))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bip173_valid_strings_decode() {
        for s in [
            "A12UEL5L",
            "an83characterlonghumanreadablepartthatcontainsthenumber1andtheexcludedcharactersbio1tt5tgs",
            "abcdef1qpzry9x8gf2tvdw0s3jn54khce6mua7lmqqqxw",
            "split1checkupstagehandshakeupstreamerranterredcaperred2y9e3w",
        ] {
            assert!(decode(s).is_some(), "{s} should decode");
        }
    }

    #[test]
    fn bip173_invalid_strings_rejected() {
        for s in [
            "pzry9x0s0muk",    // no separator
            "1pzry9x0s0muk",   // empty hrp
            "x1b4n0q5v",       // invalid data char
            "li1dgmt3",        // checksum too short
            "A1G7SGD8",        // bad checksum
            "10a06t8",         // empty hrp
            "1qzzfhee",        // empty hrp
            "abcDEF1qpzry9x8gf2tvdw0s3jn54khce6mua7lmqqqxw", // mixed case
        ] {
            assert!(decode(s).is_none(), "{s} should be rejected");
        }
    }

    #[test]
    fn encode_decode_round_trip() {
        let data: Vec<u8> = (0..32).collect();
        let s = encode("bc", &data);
        let (hrp, decoded) = decode(&s).expect("round trip");
        assert_eq!(hrp, "bc");
        assert_eq!(decoded, data);
    }

    #[test]
    fn bip173_segwit_vector() {
        // The canonical P2WPKH example from BIP-173.
        let program: [u8; 20] = [
            0x75, 0x1e, 0x76, 0xe8, 0x19, 0x91, 0x96, 0xd4, 0x54, 0x94, 0x1c, 0x45, 0xd1, 0xb3,
            0xa3, 0x23, 0xf1, 0x43, 0x3b, 0xd6,
        ];
        let addr = encode_segwit_v0("bc", &program);
        assert_eq!(addr, "bc1qw508d6qejxtdg4y5r3zarvary0c5xw7kv8f3t4");
        let (version, decoded) = decode_segwit("bc", &addr).expect("valid");
        assert_eq!(version, 0);
        assert_eq!(decoded, program);
    }

    #[test]
    fn segwit_rejects_wrong_hrp_and_bad_programs() {
        let program = [7u8; 20];
        let addr = encode_segwit_v0("bc", &program);
        assert!(decode_segwit("tb", &addr).is_none());
        // Corrupt a data character.
        let mut corrupted = addr.clone().into_bytes();
        let last = corrupted.len() - 1;
        corrupted[last] = if corrupted[last] == b'q' { b'p' } else { b'q' };
        let corrupted = String::from_utf8(corrupted).expect("ascii");
        assert!(decode_segwit("bc", &corrupted).is_none());
    }

    #[test]
    fn convert_bits_round_trips() {
        let bytes: Vec<u8> = (0u8..=255).collect();
        let five = convert_bits(&bytes, 8, 5, true).expect("pad ok");
        let back = convert_bits(&five, 5, 8, false).expect("exact");
        assert_eq!(back, bytes);
        // Unpadded conversion with leftover bits fails.
        assert!(convert_bits(&[0xff], 8, 5, false).is_none());
    }
}
