//! Block headers and blocks.

use crate::encode::{
    ensure_remaining, read_compact_size, write_compact_size, Decodable, DecodeError, Encodable,
};
use crate::hash::{sha256d, Hash256};
use crate::merkle::merkle_root;
use crate::transaction::{Transaction, Txid};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use std::fmt;
use std::sync::Arc;

/// A block identifier: the double-SHA-256 of the 80-byte header.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct BlockHash(pub Hash256);

impl BlockHash {
    /// The all-zero hash, used as the genesis block's previous hash.
    pub const ZERO: BlockHash = BlockHash(Hash256::ZERO);
}

impl fmt::Display for BlockHash {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

impl fmt::Debug for BlockHash {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BlockHash({})", self.0)
    }
}

/// An 80-byte block header.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Header {
    /// Block version.
    pub version: i32,
    /// Hash of the previous block header.
    pub prev_hash: BlockHash,
    /// Merkle root over the block's txids.
    pub merkle_root: Hash256,
    /// Block timestamp in seconds (simulation time).
    pub time: u64,
    /// Compact difficulty target (constant in this substrate — difficulty
    /// retargeting does not affect transaction ordering).
    pub bits: u32,
    /// Nonce (carries simulation entropy so block hashes are distinct).
    pub nonce: u32,
}

impl Header {
    /// The header's block hash.
    pub fn block_hash(&self) -> BlockHash {
        BlockHash(sha256d(&self.encode_to_bytes()))
    }
}

impl Encodable for Header {
    fn encode(&self, buf: &mut BytesMut) {
        buf.put_i32_le(self.version);
        self.prev_hash.0.encode(buf);
        self.merkle_root.encode(buf);
        // Bitcoin headers carry a u32 timestamp; we encode the low 32 bits
        // (sim time fits comfortably) to preserve the 80-byte layout.
        buf.put_u32_le(self.time as u32);
        buf.put_u32_le(self.bits);
        buf.put_u32_le(self.nonce);
    }

    fn encoded_len(&self) -> usize {
        80
    }
}

impl Decodable for Header {
    fn decode(buf: &mut Bytes) -> Result<Self, DecodeError> {
        ensure_remaining(buf, 80)?;
        let version = buf.get_i32_le();
        let prev_hash = BlockHash(Hash256::decode(buf)?);
        let merkle_root = Hash256::decode(buf)?;
        let time = buf.get_u32_le() as u64;
        let bits = buf.get_u32_le();
        let nonce = buf.get_u32_le();
        Ok(Header { version, prev_hash, merkle_root, time, bits, nonce })
    }
}

/// A block: a header plus transactions, the first being the coinbase.
///
/// Transactions are held behind [`Arc`]: a mined block shares the same
/// transaction objects the mempools and the template hold, so block
/// construction and relay never copy transaction bodies.
#[derive(Clone, PartialEq, Eq)]
pub struct Block {
    /// The block header.
    pub header: Header,
    /// The transactions, coinbase first.
    pub transactions: Vec<Arc<Transaction>>,
}

impl Block {
    /// Assembles a block from a coinbase plus ordered non-coinbase
    /// transactions, computing the merkle root. Accepts owned
    /// transactions or shared `Arc` handles (the zero-copy miner path).
    pub fn assemble<I>(
        version: i32,
        prev_hash: BlockHash,
        time: u64,
        nonce: u32,
        coinbase: Transaction,
        transactions: I,
    ) -> Block
    where
        I: IntoIterator,
        I::Item: Into<Arc<Transaction>>,
    {
        let transactions = transactions.into_iter();
        let mut all: Vec<Arc<Transaction>> = Vec::with_capacity(1 + transactions.size_hint().0);
        all.push(Arc::new(coinbase));
        all.extend(transactions.map(Into::into));
        let txids: Vec<Txid> = all.iter().map(|t| t.txid()).collect();
        let header = Header {
            version,
            prev_hash,
            merkle_root: merkle_root(&txids),
            time,
            bits: 0x1d00_ffff,
            nonce,
        };
        Block { header, transactions: all }
    }

    /// The block's hash.
    pub fn block_hash(&self) -> BlockHash {
        self.header.block_hash()
    }

    /// The coinbase transaction, if the block is non-empty of transactions.
    pub fn coinbase(&self) -> Option<&Transaction> {
        self.transactions.first().filter(|t| t.is_coinbase()).map(|t| t.as_ref())
    }

    /// The non-coinbase transactions in block order (shared handles).
    pub fn body(&self) -> &[Arc<Transaction>] {
        if self.coinbase().is_some() {
            &self.transactions[1..]
        } else {
            &self.transactions
        }
    }

    /// True when the block commits no user transactions (the paper's
    /// "empty blocks").
    pub fn is_empty_block(&self) -> bool {
        self.body().is_empty()
    }

    /// Total BIP-141 weight of all transactions (header overhead excluded).
    pub fn total_weight(&self) -> u64 {
        self.transactions.iter().map(|t| t.weight()).sum()
    }

    /// Total virtual size of all transactions in vbytes.
    pub fn total_vsize(&self) -> u64 {
        self.transactions.iter().map(|t| t.vsize()).sum()
    }

    /// Recomputed merkle root over current transactions.
    pub fn computed_merkle_root(&self) -> Hash256 {
        let txids: Vec<Txid> = self.transactions.iter().map(|t| t.txid()).collect();
        merkle_root(&txids)
    }
}

impl fmt::Debug for Block {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Block")
            .field("hash", &self.block_hash())
            .field("txs", &self.transactions.len())
            .field("vsize", &self.total_vsize())
            .finish()
    }
}

impl Encodable for Block {
    fn encode(&self, buf: &mut BytesMut) {
        self.header.encode(buf);
        write_compact_size(buf, self.transactions.len() as u64);
        for tx in &self.transactions {
            tx.encode(buf);
        }
    }
}

impl Decodable for Block {
    fn decode(buf: &mut Bytes) -> Result<Self, DecodeError> {
        let header = Header::decode(buf)?;
        let n = read_compact_size(buf)?;
        if n > crate::encode::MAX_DECODE_LEN {
            return Err(DecodeError::OversizedLength(n));
        }
        let mut transactions = Vec::with_capacity(n as usize);
        for _ in 0..n {
            transactions.push(Arc::new(Transaction::decode(buf)?));
        }
        Ok(Block { header, transactions })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::address::Address;
    use crate::amount::Amount;
    use crate::transaction::{OutPoint, TxIn};

    fn coinbase() -> Transaction {
        Transaction::builder()
            .add_input(TxIn::new(OutPoint::NULL))
            .pay_to(Address::p2pkh([1; 20]), Amount::from_btc(6))
            .build()
    }

    fn user_tx(n: u8) -> Transaction {
        Transaction::builder()
            .add_input_with_sizes([n; 32].into(), 0, 107, 0)
            .pay_to(Address::p2pkh([n; 20]), Amount::from_sat(10_000))
            .build()
    }

    #[test]
    fn assemble_puts_coinbase_first() {
        let b = Block::assemble(2, BlockHash::ZERO, 100, 7, coinbase(), vec![user_tx(2)]);
        assert!(b.transactions[0].is_coinbase());
        assert_eq!(b.body().len(), 1);
        assert!(!b.is_empty_block());
    }

    #[test]
    fn empty_block_detection() {
        let b = Block::assemble(2, BlockHash::ZERO, 100, 7, coinbase(), Vec::<Transaction>::new());
        assert!(b.is_empty_block());
        assert_eq!(b.body().len(), 0);
    }

    #[test]
    fn merkle_root_commits_to_order() {
        let b1 = Block::assemble(2, BlockHash::ZERO, 0, 0, coinbase(), vec![user_tx(2), user_tx(3)]);
        let b2 = Block::assemble(2, BlockHash::ZERO, 0, 0, coinbase(), vec![user_tx(3), user_tx(2)]);
        assert_ne!(b1.header.merkle_root, b2.header.merkle_root);
        assert_ne!(b1.block_hash(), b2.block_hash());
        assert_eq!(b1.computed_merkle_root(), b1.header.merkle_root);
    }

    #[test]
    fn header_is_eighty_bytes_and_round_trips() {
        let b = Block::assemble(2, BlockHash::ZERO, 99, 3, coinbase(), vec![user_tx(4)]);
        let bytes = b.header.encode_to_bytes();
        assert_eq!(bytes.len(), 80);
        let decoded = Header::decode_all(&bytes).expect("decode");
        assert_eq!(decoded, b.header);
        assert_eq!(decoded.block_hash(), b.block_hash());
    }

    #[test]
    fn block_round_trips() {
        let b = Block::assemble(2, BlockHash::ZERO, 5, 1, coinbase(), vec![user_tx(2), user_tx(9)]);
        let bytes = b.encode_to_bytes();
        let decoded = Block::decode_all(&bytes).expect("decode");
        assert_eq!(decoded, b);
        assert_eq!(decoded.block_hash(), b.block_hash());
    }

    #[test]
    fn nonce_changes_hash() {
        let b1 = Block::assemble(2, BlockHash::ZERO, 5, 1, coinbase(), Vec::<Transaction>::new());
        let b2 = Block::assemble(2, BlockHash::ZERO, 5, 2, coinbase(), Vec::<Transaction>::new());
        assert_ne!(b1.block_hash(), b2.block_hash());
    }

    #[test]
    fn sizes_aggregate() {
        let txs = vec![user_tx(2), user_tx(3)];
        let expected: u64 = txs.iter().map(|t| t.vsize()).sum();
        let b = Block::assemble(2, BlockHash::ZERO, 5, 1, coinbase(), txs);
        assert_eq!(b.total_vsize(), expected + b.transactions[0].vsize());
        assert_eq!(b.total_weight(), b.transactions.iter().map(|t| t.weight()).sum::<u64>());
    }
}
