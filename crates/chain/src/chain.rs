//! An append-only, validated chain of blocks.

use crate::amount::Amount;
use crate::block::{Block, BlockHash};
use crate::params::Params;
use crate::transaction::Txid;
use crate::utxo::UtxoSet;
use crate::validation::{connect_block, ValidationError};
use crate::fasthash::FastMap;
use std::fmt;

/// Errors from extending a [`Chain`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ChainError {
    /// The block's `prev_hash` does not match the current tip.
    WrongParent {
        /// The tip the block should have extended.
        expected: BlockHash,
        /// The parent it actually names.
        actual: BlockHash,
    },
    /// The block failed validation.
    Invalid(ValidationError),
}

impl fmt::Display for ChainError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ChainError::WrongParent { expected, actual } => {
                write!(f, "block extends {actual}, tip is {expected}")
            }
            ChainError::Invalid(e) => write!(f, "invalid block: {e}"),
        }
    }
}

impl std::error::Error for ChainError {}

impl From<ValidationError> for ChainError {
    fn from(e: ValidationError) -> Self {
        ChainError::Invalid(e)
    }
}

/// Per-block bookkeeping the audit pipeline consumes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BlockRecord {
    /// Height in the chain (genesis = 0).
    pub height: u64,
    /// The block's hash.
    pub hash: BlockHash,
    /// Fees collected from body transactions.
    pub fees: Amount,
    /// Each body transaction's fee, in block order — what the ordering
    /// audit ranks by.
    pub tx_fees: Vec<Amount>,
    /// Subsidy available at this height.
    pub subsidy: Amount,
}

/// A single-branch, fully validated blockchain with txid and height indexes.
///
/// Reorgs are out of scope: the audit operates on the confirmed main chain,
/// exactly as the paper's datasets do.
#[derive(Clone, Debug, Default)]
pub struct Chain {
    params: Params,
    blocks: Vec<Block>,
    records: Vec<BlockRecord>,
    by_hash: FastMap<BlockHash, u64>,
    tx_index: FastMap<Txid, u64>,
    utxos: UtxoSet,
    seeds: Vec<crate::transaction::Transaction>,
    /// Number of leading blocks dropped by [`Chain::prune_below`];
    /// `blocks[0]` sits at this height. Zero for unpruned chains, so the
    /// in-memory layout and behavior of the batch pipeline are unchanged.
    pruned: u64,
}

impl Chain {
    /// Creates an empty chain with the given parameters.
    pub fn new(params: Params) -> Chain {
        Chain { params, ..Chain::default() }
    }

    /// The chain parameters.
    pub fn params(&self) -> &Params {
        &self.params
    }

    /// Number of blocks ever connected (pruned blocks still count).
    pub fn height(&self) -> u64 {
        self.pruned + self.blocks.len() as u64
    }

    /// True when no blocks have been connected.
    pub fn is_empty(&self) -> bool {
        self.height() == 0
    }

    /// Height of the lowest block still held in memory (0 unless
    /// [`Chain::prune_below`] ran).
    pub fn pruned_below(&self) -> u64 {
        self.pruned
    }

    /// Hash of the tip block, or the zero hash for an empty chain.
    pub fn tip_hash(&self) -> BlockHash {
        self.blocks.last().map_or(BlockHash::ZERO, |b| b.block_hash())
    }

    /// All *retained* blocks in height order (everything, unless
    /// [`Chain::prune_below`] dropped a prefix).
    pub fn blocks(&self) -> &[Block] {
        &self.blocks
    }

    /// Per-block records for the retained blocks, in height order.
    pub fn records(&self) -> &[BlockRecord] {
        &self.records
    }

    /// The block at `height` (`None` if pruned or beyond the tip).
    pub fn block_at(&self, height: u64) -> Option<&Block> {
        let idx = height.checked_sub(self.pruned)?;
        self.blocks.get(idx as usize)
    }

    /// Looks up a block by hash.
    pub fn block_by_hash(&self, hash: &BlockHash) -> Option<&Block> {
        self.by_hash.get(hash).and_then(|&h| self.block_at(h))
    }

    /// The height of the block containing `txid`, if confirmed.
    pub fn height_of_tx(&self, txid: &Txid) -> Option<u64> {
        self.tx_index.get(txid).copied()
    }

    /// True when `txid` is confirmed anywhere in the chain.
    pub fn contains_tx(&self, txid: &Txid) -> bool {
        self.tx_index.contains_key(txid)
    }

    /// The current UTXO set.
    pub fn utxos(&self) -> &UtxoSet {
        &self.utxos
    }

    /// Seeds the UTXO set with the outputs of a funding transaction without
    /// putting it in a block — the simulator's stand-in for coins that
    /// predate the observation window. Seeds are remembered so auditors
    /// can replay the chain from its initial state.
    pub fn seed_utxos(&mut self, tx: &crate::transaction::Transaction) {
        self.utxos.insert_outputs(tx);
        self.seeds.push(tx.clone());
    }

    /// The funding transactions seeded before any block, for replay.
    pub fn seeded_transactions(&self) -> &[crate::transaction::Transaction] {
        &self.seeds
    }

    /// Reconstructs the UTXO set as it stood before the first block.
    pub fn initial_utxos(&self) -> UtxoSet {
        let mut set = UtxoSet::new();
        for tx in &self.seeds {
            set.insert_outputs(tx);
        }
        set
    }

    /// Validates and appends `block` at the tip.
    pub fn connect(&mut self, block: Block) -> Result<&BlockRecord, ChainError> {
        let expected = self.tip_hash();
        if block.header.prev_hash != expected {
            return Err(ChainError::WrongParent { expected, actual: block.header.prev_hash });
        }
        let height = self.height();
        let tx_fees = connect_block(&block, &mut self.utxos, height, &self.params)?;
        let fees: Amount = tx_fees.iter().copied().sum();
        let hash = block.block_hash();
        for tx in &block.transactions {
            self.tx_index.insert(tx.txid(), height);
        }
        self.by_hash.insert(hash, height);
        self.records.push(BlockRecord {
            height,
            hash,
            fees,
            tx_fees,
            subsidy: self.params.subsidy_at(height),
        });
        self.blocks.push(block);
        Ok(self.records.last().expect("just pushed"))
    }

    /// Drops every block strictly below `height` from memory: the block
    /// bodies, their per-block records, and their `by_hash`/`tx_index`
    /// entries. The UTXO set, seeds, and tip bookkeeping are untouched, so
    /// the chain keeps validating and connecting new blocks exactly as
    /// before — this is how the chunked simulation keeps resident state
    /// O(epoch) instead of O(chain).
    ///
    /// At least the tip block is always retained. Pruned history is gone:
    /// `block_at`/`block_by_hash` return `None` and `contains_tx` returns
    /// `false` for it — callers that need full history (the batch audit
    /// pipeline) simply never prune. Returns the number of blocks dropped.
    pub fn prune_below(&mut self, height: u64) -> usize {
        let cutoff = height.min(self.height().saturating_sub(1));
        let Some(dropped) = cutoff.checked_sub(self.pruned).map(|d| d as usize) else {
            return 0;
        };
        if dropped == 0 {
            return 0;
        }
        for block in self.blocks.drain(..dropped) {
            self.by_hash.remove(&block.block_hash());
            for tx in &block.transactions {
                self.tx_index.remove(&tx.txid());
            }
        }
        self.records.drain(..dropped);
        self.pruned = cutoff;
        dropped
    }

    /// Total fees collected across the retained blocks.
    pub fn total_fees(&self) -> Amount {
        self.records.iter().map(|r| r.fees).sum()
    }

    /// Count of retained blocks with no user transactions.
    pub fn empty_block_count(&self) -> usize {
        self.blocks.iter().filter(|b| b.is_empty_block()).count()
    }

    /// Total number of confirmed non-coinbase transactions in the retained
    /// blocks.
    pub fn body_tx_count(&self) -> usize {
        self.blocks.iter().map(|b| b.body().len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::address::Address;
    use crate::coinbase::CoinbaseBuilder;
    use crate::transaction::{OutPoint, Transaction, TxIn};

    fn coinbase(height: u64) -> Transaction {
        CoinbaseBuilder::new(height)
            .reward(Address::from_label("pool"), Amount::from_btc(50))
            .extra_nonce(height)
            .build()
    }

    fn extend(chain: &mut Chain, body: Vec<Transaction>) -> BlockHash {
        let h = chain.height();
        let block =
            Block::assemble(2, chain.tip_hash(), h * 600, h as u32, coinbase(h), body);
        let hash = block.block_hash();
        chain.connect(block).expect("valid block");
        hash
    }

    #[test]
    fn genesis_then_children_connect() {
        let mut chain = Chain::new(Params::mainnet());
        let g = extend(&mut chain, vec![]);
        let b1 = extend(&mut chain, vec![]);
        assert_eq!(chain.height(), 2);
        assert_eq!(chain.tip_hash(), b1);
        assert_eq!(chain.block_by_hash(&g).expect("genesis").header.prev_hash, BlockHash::ZERO);
        assert_eq!(chain.empty_block_count(), 2);
    }

    #[test]
    fn wrong_parent_rejected() {
        let mut chain = Chain::new(Params::mainnet());
        extend(&mut chain, vec![]);
        let orphan = Block::assemble(2, BlockHash::ZERO, 0, 99, coinbase(1), Vec::<Transaction>::new());
        assert!(matches!(chain.connect(orphan), Err(ChainError::WrongParent { .. })));
    }

    #[test]
    fn tx_index_tracks_heights() {
        let mut chain = Chain::new(Params::mainnet());
        let fund = Transaction::builder()
            .add_input(TxIn::new(OutPoint::NULL))
            .pay_to(Address::from_label("funder"), Amount::from_sat(500_000))
            .build();
        chain.seed_utxos(&fund);
        extend(&mut chain, vec![]);
        let spend = Transaction::builder()
            .add_input_with_sizes(fund.txid(), 0, 107, 0)
            .pay_to(Address::from_label("r"), Amount::from_sat(400_000))
            .build();
        let txid = spend.txid();
        extend(&mut chain, vec![spend]);
        assert_eq!(chain.height_of_tx(&txid), Some(1));
        assert!(chain.contains_tx(&txid));
        assert_eq!(chain.body_tx_count(), 1);
        assert_eq!(chain.total_fees(), Amount::from_sat(100_000));
    }

    #[test]
    fn invalid_block_does_not_advance_chain() {
        let mut chain = Chain::new(Params::mainnet());
        extend(&mut chain, vec![]);
        let bad_spend = Transaction::builder()
            .add_input_with_sizes([0xaa; 32].into(), 0, 107, 0)
            .pay_to(Address::from_label("x"), Amount::from_sat(1))
            .build();
        let block = Block::assemble(2, chain.tip_hash(), 600, 1, coinbase(1), vec![bad_spend]);
        assert!(chain.connect(block).is_err());
        assert_eq!(chain.height(), 1);
    }

    #[test]
    fn prune_below_drops_history_but_keeps_connecting() {
        let mut chain = Chain::new(Params::mainnet());
        let fund = Transaction::builder()
            .add_input(TxIn::new(OutPoint::NULL))
            .pay_to(Address::from_label("funder"), Amount::from_sat(500_000))
            .build();
        chain.seed_utxos(&fund);
        let mut hashes = Vec::new();
        for _ in 0..3 {
            hashes.push(extend(&mut chain, vec![]));
        }
        let spend = Transaction::builder()
            .add_input_with_sizes(fund.txid(), 0, 107, 0)
            .pay_to(Address::from_label("r"), Amount::from_sat(400_000))
            .build();
        let txid = spend.txid();
        hashes.push(extend(&mut chain, vec![spend]));

        assert_eq!(chain.prune_below(2), 2);
        assert_eq!(chain.pruned_below(), 2);
        assert_eq!(chain.height(), 4, "height counts pruned blocks");
        assert_eq!(chain.tip_hash(), hashes[3]);
        assert_eq!(chain.blocks().len(), 2);
        assert!(chain.block_at(1).is_none(), "pruned history is gone");
        assert!(chain.block_by_hash(&hashes[0]).is_none());
        assert_eq!(chain.block_at(3).map(Block::block_hash), Some(hashes[3]));
        assert!(chain.contains_tx(&txid), "retained txs still indexed");
        assert_eq!(chain.records().first().map(|r| r.height), Some(2));

        // Re-pruning below the current frontier is a no-op; the tip is
        // always retained even when asked to prune everything.
        assert_eq!(chain.prune_below(1), 0);
        assert_eq!(chain.prune_below(u64::MAX), 1);
        assert_eq!(chain.blocks().len(), 1);
        assert_eq!(chain.tip_hash(), hashes[3]);

        // The chain still validates and connects new blocks after pruning.
        let next = extend(&mut chain, vec![]);
        assert_eq!(chain.height(), 5);
        assert_eq!(chain.tip_hash(), next);
        assert_eq!(chain.block_at(4).map(Block::block_hash), Some(next));
    }

    #[test]
    fn records_carry_subsidy_schedule() {
        let mut params = Params::mainnet();
        params.halving_interval = 2;
        let mut chain = Chain::new(params);
        for _ in 0..4 {
            let h = chain.height();
            let cb = CoinbaseBuilder::new(h)
                .reward(Address::from_label("p"), chain.params().subsidy_at(h))
                .extra_nonce(h)
                .build();
            let block = Block::assemble(2, chain.tip_hash(), h * 600, h as u32, cb, Vec::<Transaction>::new());
            chain.connect(block).expect("valid");
        }
        let subsidies: Vec<u64> = chain.records().iter().map(|r| r.subsidy.to_sat()).collect();
        assert_eq!(
            subsidies,
            vec![5_000_000_000, 5_000_000_000, 2_500_000_000, 2_500_000_000]
        );
    }
}
