//! Coinbase construction and mining-pool markers.
//!
//! Mining pools stamp an ASCII tag into the coinbase scriptSig (the paper
//! uses these tags, following Judmayer et al. and Romiti et al., to attribute
//! blocks to pools). [`CoinbaseBuilder`] writes a BIP-34-style height plus a
//! `PoolMarker`; [`PoolMarker::parse`] recovers the tag for attribution.

use crate::address::Address;
use crate::amount::Amount;
use crate::transaction::{OutPoint, Transaction, TxIn};

/// Marker framing: `0xCA 0xFE <len> <tag bytes>` after the height push.
const MARKER_MAGIC: [u8; 2] = [0xca, 0xfe];

/// An ASCII pool tag embedded in the coinbase scriptSig.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct PoolMarker(pub String);

impl PoolMarker {
    /// Creates a marker, truncating to 75 bytes (single-push limit).
    pub fn new(tag: impl Into<String>) -> PoolMarker {
        let mut tag = tag.into();
        tag.truncate(75);
        PoolMarker(tag)
    }

    /// Extracts the marker from coinbase scriptSig bytes, if present.
    pub fn parse(script_sig: &[u8]) -> Option<PoolMarker> {
        let pos = script_sig
            .windows(2)
            .position(|w| w == MARKER_MAGIC)?;
        let rest = &script_sig[pos + 2..];
        let len = *rest.first()? as usize;
        let tag = rest.get(1..1 + len)?;
        String::from_utf8(tag.to_vec()).ok().map(PoolMarker)
    }

    /// Extracts the marker from a coinbase transaction.
    pub fn from_coinbase(tx: &Transaction) -> Option<PoolMarker> {
        if !tx.is_coinbase() {
            return None;
        }
        PoolMarker::parse(&tx.inputs()[0].script_sig)
    }
}

/// Builds a coinbase transaction carrying a height, a pool marker, and
/// reward outputs.
#[derive(Clone, Debug)]
pub struct CoinbaseBuilder {
    height: u64,
    marker: Option<PoolMarker>,
    outputs: Vec<(Address, Amount)>,
    extra_nonce: u64,
}

impl CoinbaseBuilder {
    /// Starts a coinbase for the block at `height`.
    pub fn new(height: u64) -> CoinbaseBuilder {
        CoinbaseBuilder { height, marker: None, outputs: Vec::new(), extra_nonce: 0 }
    }

    /// Sets the pool marker tag.
    pub fn marker(mut self, marker: PoolMarker) -> Self {
        self.marker = Some(marker);
        self
    }

    /// Adds a reward output.
    pub fn reward(mut self, address: Address, amount: Amount) -> Self {
        self.outputs.push((address, amount));
        self
    }

    /// Sets an extra nonce, making otherwise-identical coinbases distinct
    /// (and thus giving every block a unique txid set).
    pub fn extra_nonce(mut self, n: u64) -> Self {
        self.extra_nonce = n;
        self
    }

    /// Builds the coinbase transaction.
    pub fn build(self) -> Transaction {
        let mut script_sig = Vec::with_capacity(16 + 78);
        // BIP-34-style height push (length-prefixed little-endian).
        let height_bytes = self.height.to_le_bytes();
        let sig_len = height_bytes.iter().rposition(|&b| b != 0).map_or(1, |p| p + 1);
        script_sig.push(sig_len as u8);
        script_sig.extend_from_slice(&height_bytes[..sig_len]);
        if let Some(marker) = &self.marker {
            script_sig.extend_from_slice(&MARKER_MAGIC);
            script_sig.push(marker.0.len() as u8);
            script_sig.extend_from_slice(marker.0.as_bytes());
        }
        script_sig.extend_from_slice(&self.extra_nonce.to_le_bytes());

        let mut builder = Transaction::builder().add_input(TxIn {
            prevout: OutPoint::NULL,
            script_sig,
            sequence: 0xffff_ffff,
            witness: Vec::new(),
        });
        for (address, amount) in self.outputs {
            builder = builder.pay_to(address, amount);
        }
        builder.build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn marker_round_trips() {
        let cb = CoinbaseBuilder::new(650_000)
            .marker(PoolMarker::new("/F2Pool/"))
            .reward(Address::from_label("f2pool:0"), Amount::from_btc(6))
            .build();
        assert!(cb.is_coinbase());
        assert_eq!(PoolMarker::from_coinbase(&cb), Some(PoolMarker::new("/F2Pool/")));
    }

    #[test]
    fn marker_absent_when_not_set() {
        let cb = CoinbaseBuilder::new(1)
            .reward(Address::from_label("solo"), Amount::from_btc(50))
            .build();
        assert_eq!(PoolMarker::from_coinbase(&cb), None);
    }

    #[test]
    fn marker_rejected_for_non_coinbase() {
        let tx = Transaction::builder()
            .add_input_with_sizes([1; 32].into(), 0, 10, 0)
            .pay_to(Address::from_label("u"), Amount::from_sat(1))
            .build();
        assert_eq!(PoolMarker::from_coinbase(&tx), None);
    }

    #[test]
    fn long_tags_truncated() {
        let tag = "x".repeat(100);
        let m = PoolMarker::new(tag);
        assert_eq!(m.0.len(), 75);
    }

    #[test]
    fn extra_nonce_distinguishes_coinbases() {
        let a = CoinbaseBuilder::new(5)
            .reward(Address::from_label("p"), Amount::from_btc(50))
            .extra_nonce(1)
            .build();
        let b = CoinbaseBuilder::new(5)
            .reward(Address::from_label("p"), Amount::from_btc(50))
            .extra_nonce(2)
            .build();
        assert_ne!(a.txid(), b.txid());
    }

    #[test]
    fn height_zero_encodes_one_byte() {
        let cb = CoinbaseBuilder::new(0)
            .reward(Address::from_label("g"), Amount::from_btc(50))
            .build();
        assert_eq!(cb.inputs()[0].script_sig[0], 1);
        assert_eq!(cb.inputs()[0].script_sig[1], 0);
    }

    #[test]
    fn multiple_reward_outputs() {
        let cb = CoinbaseBuilder::new(9)
            .marker(PoolMarker::new("/Multi/"))
            .reward(Address::from_label("a"), Amount::from_btc(3))
            .reward(Address::from_label("b"), Amount::from_btc(3))
            .build();
        assert_eq!(cb.outputs().len(), 2);
        assert_eq!(cb.output_value(), Amount::from_btc(6));
    }

    #[test]
    fn marker_survives_weird_bytes_before_magic() {
        // parse should find the magic anywhere in the scriptSig.
        let mut script = vec![0x03, 0x01, 0x02, 0x03, 0x00, 0xff];
        script.extend_from_slice(&MARKER_MAGIC);
        script.push(4);
        script.extend_from_slice(b"Pool");
        assert_eq!(PoolMarker::parse(&script), Some(PoolMarker::new("Pool")));
    }
}
