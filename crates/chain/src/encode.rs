//! Bitcoin-style wire encoding: little-endian integers and compact-size
//! varints.
//!
//! Transactions and blocks are serialized with this format so that byte
//! sizes — and therefore fee *rates*, the quantity every ordering norm in the
//! paper ranks by — behave like the real network's.

use crate::hash::Hash256;
use bytes::{Buf, BufMut, Bytes, BytesMut};
use std::fmt;

/// Error returned when decoding malformed bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// Input ended before the value was complete.
    UnexpectedEnd,
    /// A compact-size used a longer encoding than necessary.
    NonCanonicalCompactSize,
    /// A length prefix exceeded the sanity limit.
    OversizedLength(u64),
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::UnexpectedEnd => write!(f, "unexpected end of input"),
            DecodeError::NonCanonicalCompactSize => write!(f, "non-canonical compact size"),
            DecodeError::OversizedLength(n) => write!(f, "length {n} exceeds sanity limit"),
        }
    }
}

impl std::error::Error for DecodeError {}

/// Sanity cap on decoded collection lengths (prevents allocation bombs).
pub const MAX_DECODE_LEN: u64 = 8_000_000;

/// Types that can be serialized to the wire format.
pub trait Encodable {
    /// Appends the encoding of `self` to `buf`.
    fn encode(&self, buf: &mut BytesMut);

    /// Serializes to a standalone byte buffer.
    fn encode_to_bytes(&self) -> Bytes {
        let mut buf = BytesMut::new();
        self.encode(&mut buf);
        buf.freeze()
    }

    /// The encoded length in bytes.
    fn encoded_len(&self) -> usize {
        let mut buf = BytesMut::new();
        self.encode(&mut buf);
        buf.len()
    }
}

/// Types that can be deserialized from the wire format.
pub trait Decodable: Sized {
    /// Consumes bytes from `buf` and reconstructs the value.
    fn decode(buf: &mut Bytes) -> Result<Self, DecodeError>;

    /// Decodes from a byte slice, requiring that all input is consumed.
    fn decode_all(bytes: &[u8]) -> Result<Self, DecodeError> {
        let mut b = Bytes::copy_from_slice(bytes);
        let v = Self::decode(&mut b)?;
        if b.has_remaining() {
            return Err(DecodeError::UnexpectedEnd);
        }
        Ok(v)
    }
}

/// Writes a Bitcoin compact-size varint.
pub fn write_compact_size(buf: &mut BytesMut, n: u64) {
    match n {
        0..=0xfc => buf.put_u8(n as u8),
        0xfd..=0xffff => {
            buf.put_u8(0xfd);
            buf.put_u16_le(n as u16);
        }
        0x1_0000..=0xffff_ffff => {
            buf.put_u8(0xfe);
            buf.put_u32_le(n as u32);
        }
        _ => {
            buf.put_u8(0xff);
            buf.put_u64_le(n);
        }
    }
}

/// Reads a Bitcoin compact-size varint, enforcing canonical (minimal) form.
pub fn read_compact_size(buf: &mut Bytes) -> Result<u64, DecodeError> {
    if !buf.has_remaining() {
        return Err(DecodeError::UnexpectedEnd);
    }
    let tag = buf.get_u8();
    let value = match tag {
        0xfd => {
            ensure_remaining(buf, 2)?;
            let v = buf.get_u16_le() as u64;
            if v < 0xfd {
                return Err(DecodeError::NonCanonicalCompactSize);
            }
            v
        }
        0xfe => {
            ensure_remaining(buf, 4)?;
            let v = buf.get_u32_le() as u64;
            if v <= 0xffff {
                return Err(DecodeError::NonCanonicalCompactSize);
            }
            v
        }
        0xff => {
            ensure_remaining(buf, 8)?;
            let v = buf.get_u64_le();
            if v <= 0xffff_ffff {
                return Err(DecodeError::NonCanonicalCompactSize);
            }
            v
        }
        n => n as u64,
    };
    Ok(value)
}

/// Number of bytes `write_compact_size` will emit for `n`.
pub const fn compact_size_len(n: u64) -> usize {
    match n {
        0..=0xfc => 1,
        0xfd..=0xffff => 3,
        0x1_0000..=0xffff_ffff => 5,
        _ => 9,
    }
}

/// Reads a length prefix and that many raw bytes.
pub fn read_var_bytes(buf: &mut Bytes) -> Result<Vec<u8>, DecodeError> {
    let len = read_compact_size(buf)?;
    if len > MAX_DECODE_LEN {
        return Err(DecodeError::OversizedLength(len));
    }
    ensure_remaining(buf, len as usize)?;
    let mut out = vec![0u8; len as usize];
    buf.copy_to_slice(&mut out);
    Ok(out)
}

/// Writes a length-prefixed byte string.
pub fn write_var_bytes(buf: &mut BytesMut, bytes: &[u8]) {
    write_compact_size(buf, bytes.len() as u64);
    buf.put_slice(bytes);
}

/// Fails with `UnexpectedEnd` unless at least `n` bytes remain.
pub fn ensure_remaining(buf: &Bytes, n: usize) -> Result<(), DecodeError> {
    if buf.remaining() < n {
        Err(DecodeError::UnexpectedEnd)
    } else {
        Ok(())
    }
}

impl Encodable for Hash256 {
    fn encode(&self, buf: &mut BytesMut) {
        buf.put_slice(&self.0);
    }

    fn encoded_len(&self) -> usize {
        32
    }
}

impl Decodable for Hash256 {
    fn decode(buf: &mut Bytes) -> Result<Self, DecodeError> {
        ensure_remaining(buf, 32)?;
        let mut out = [0u8; 32];
        buf.copy_to_slice(&mut out);
        Ok(Hash256(out))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(n: u64) -> u64 {
        let mut buf = BytesMut::new();
        write_compact_size(&mut buf, n);
        assert_eq!(buf.len(), compact_size_len(n));
        let mut bytes = buf.freeze();
        let v = read_compact_size(&mut bytes).expect("round trip");
        assert!(!bytes.has_remaining());
        v
    }

    #[test]
    fn compact_size_round_trips_at_boundaries() {
        for n in [
            0,
            1,
            0xfc,
            0xfd,
            0xffff,
            0x1_0000,
            0xffff_ffff,
            0x1_0000_0000,
            u64::MAX,
        ] {
            assert_eq!(round_trip(n), n);
        }
    }

    #[test]
    fn non_canonical_rejected() {
        // 0xfd with a payload < 0xfd must be rejected.
        let mut bytes = Bytes::from_static(&[0xfd, 0x01, 0x00]);
        assert_eq!(
            read_compact_size(&mut bytes),
            Err(DecodeError::NonCanonicalCompactSize)
        );
        let mut bytes = Bytes::from_static(&[0xfe, 0xff, 0xff, 0x00, 0x00]);
        assert_eq!(
            read_compact_size(&mut bytes),
            Err(DecodeError::NonCanonicalCompactSize)
        );
        let mut bytes = Bytes::from_static(&[0xff, 0, 0, 0, 0xff, 0, 0, 0, 0]);
        assert_eq!(
            read_compact_size(&mut bytes),
            Err(DecodeError::NonCanonicalCompactSize)
        );
    }

    #[test]
    fn truncated_input_fails_cleanly() {
        let mut bytes = Bytes::from_static(&[0xfd, 0x01]);
        assert_eq!(read_compact_size(&mut bytes), Err(DecodeError::UnexpectedEnd));
        let mut empty = Bytes::new();
        assert_eq!(read_compact_size(&mut empty), Err(DecodeError::UnexpectedEnd));
    }

    #[test]
    fn var_bytes_round_trip() {
        let payload = b"arbitrary payload".to_vec();
        let mut buf = BytesMut::new();
        write_var_bytes(&mut buf, &payload);
        let mut bytes = buf.freeze();
        assert_eq!(read_var_bytes(&mut bytes).expect("ok"), payload);
    }

    #[test]
    fn var_bytes_rejects_oversized_claim() {
        let mut buf = BytesMut::new();
        write_compact_size(&mut buf, MAX_DECODE_LEN + 1);
        let mut bytes = buf.freeze();
        assert!(matches!(
            read_var_bytes(&mut bytes),
            Err(DecodeError::OversizedLength(_))
        ));
    }

    #[test]
    fn hash_round_trip() {
        let h = crate::hash::sha256(b"x");
        let mut buf = BytesMut::new();
        h.encode(&mut buf);
        assert_eq!(buf.len(), 32);
        let decoded = Hash256::decode_all(&buf).expect("ok");
        assert_eq!(decoded, h);
    }
}
