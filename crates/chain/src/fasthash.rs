//! Prefix-folding hashers for SHA-256-derived keys.
//!
//! Txids, wtxids, and block hashes are SHA-256 outputs, so every byte is
//! already uniformly distributed — running 32 such bytes through SipHash
//! (the `HashMap` default) buys collision resistance the key material
//! already has. Bitcoin Core draws the same conclusion: its mempool maps
//! use `SaltedTxidHasher`, which just reads 8 bytes of the txid. The
//! hashers here do the equivalent fold, turning every map touch on the
//! admission/assembly hot path into a few integer ops.
//!
//! Not for attacker-chosen keys: a key that is not itself a hash output
//! (or derived from one) gets no mixing here and can be driven into
//! collisions. Every use in this workspace keys on digests.

use crate::hash::Hash256;
use crate::transaction::{OutPoint, Txid};
use std::hash::{BuildHasherDefault, Hasher};

/// A [`Hasher`] that folds the first 8 bytes of digest-shaped input and
/// ignores everything else (including the length prefixes `Hash` impls
/// write for composite keys).
///
/// [`Txid`]/[`Hash256`] feed it one 32-byte `write`; [`OutPoint`] adds a
/// `write_u32` for the output index, which is mixed in multiplicatively so
/// `(txid, 0)` and `(txid, 1)` land in different buckets.
#[derive(Clone, Copy, Default)]
pub struct DigestHasher {
    state: u64,
}

impl Hasher for DigestHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.state
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        // First 8 bytes of a digest are as good as any mix of all 32.
        // Shorter inputs (there are none on the hot path) still fold in.
        let mut buf = [0u8; 8];
        let n = bytes.len().min(8);
        buf[..n].copy_from_slice(&bytes[..n]);
        self.state ^= u64::from_le_bytes(buf);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        // OutPoint vout: spread it across the word so adjacent indexes
        // don't collide after the xor-fold (odd constant from splitmix64).
        self.state ^= (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.state ^= i.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    }

    #[inline]
    fn write_usize(&mut self, _i: usize) {
        // Length prefixes from derived `Hash` impls carry no key entropy.
    }
}

/// `BuildHasher` for [`DigestHasher`] — stateless, so map construction is
/// free and hashes are stable within a process run.
pub type DigestHashBuilder = BuildHasherDefault<DigestHasher>;

/// A `HashMap` keyed by digests ([`Txid`], [`Hash256`], [`OutPoint`], …).
pub type FastMap<K, V> = std::collections::HashMap<K, V, DigestHashBuilder>;

/// A `HashSet` over digest-shaped keys.
pub type FastSet<K> = std::collections::HashSet<K, DigestHashBuilder>;

/// Convenience fold used by code that wants the bucket index directly.
#[inline]
pub fn fold_txid(txid: &Txid) -> u64 {
    txid.0.to_u64()
}

/// Fold for outpoints: txid prefix xor a spread of the output index.
#[inline]
pub fn fold_outpoint(op: &OutPoint) -> u64 {
    op.txid.0.to_u64() ^ (op.vout as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

/// Debug-readable digest prefix check: the fold must agree with hashing
/// the key through the `Hash` trait (keeps the two paths in lockstep).
#[inline]
pub fn fold_hash256(h: &Hash256) -> u64 {
    h.to_u64()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::{BuildHasher, Hash};

    fn hash_one<T: Hash>(v: &T) -> u64 {
        DigestHashBuilder::default().hash_one(v)
    }

    #[test]
    fn txid_hash_is_prefix_fold() {
        let txid = Txid::from([0xAB; 32]);
        assert_eq!(hash_one(&txid), fold_txid(&txid));
    }

    #[test]
    fn outpoints_on_same_txid_differ() {
        let txid = Txid::from([7; 32]);
        let a = hash_one(&OutPoint::new(txid, 0));
        let b = hash_one(&OutPoint::new(txid, 1));
        assert_ne!(a, b);
        assert_eq!(a, fold_outpoint(&OutPoint::new(txid, 0)));
    }

    #[test]
    fn maps_behave_like_std() {
        let mut fast: FastMap<Txid, u32> = FastMap::default();
        let mut std_map = std::collections::HashMap::new();
        for i in 0..64u8 {
            let txid = Txid::from([i; 32]);
            fast.insert(txid, i as u32);
            std_map.insert(txid, i as u32);
        }
        assert_eq!(fast.len(), std_map.len());
        for (k, v) in &std_map {
            assert_eq!(fast.get(k), Some(v));
        }
    }
}
