//! Fee rates: the quantity the GetBlockTemplate norm ranks transactions by.
//!
//! Internally a fee rate is satoshi per 1000 virtual bytes (`sat/kvB`), the
//! same integer representation Bitcoin Core uses, so ranking is exact (no
//! float ties). Conversions to the paper's `BTC/KB` units are provided for
//! reporting: `1 sat/vB == 1000 sat/kvB == 1e-5 BTC/KB`.

use crate::Amount;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A transaction fee rate in satoshi per 1000 virtual bytes.
#[derive(
    Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct FeeRate(u64);

impl FeeRate {
    /// Zero fee rate.
    pub const ZERO: FeeRate = FeeRate(0);

    /// Bitcoin Core's default minimum relay fee rate: 1 sat/vB
    /// (the paper's "recommended minimum" of 1e-5 BTC/KB).
    pub const MIN_RELAY: FeeRate = FeeRate(1_000);

    /// Constructs a fee rate from satoshi per 1000 virtual bytes.
    #[inline]
    pub const fn from_sat_per_kvb(s: u64) -> FeeRate {
        FeeRate(s)
    }

    /// Constructs a fee rate from whole satoshi per virtual byte.
    #[inline]
    pub const fn from_sat_per_vb(s: u64) -> FeeRate {
        FeeRate(s * 1_000)
    }

    /// Computes `fee / vsize`, rounding down to the nearest sat/kvB.
    ///
    /// A zero `vsize` is a logic error (no valid transaction is empty) and
    /// yields a zero rate rather than a panic, which keeps audit passes over
    /// adversarial data total.
    pub fn from_fee_and_vsize(fee: Amount, vsize: u64) -> FeeRate {
        if vsize == 0 {
            return FeeRate::ZERO;
        }
        FeeRate(fee.to_sat().saturating_mul(1_000) / vsize)
    }

    /// The rate in satoshi per 1000 virtual bytes.
    #[inline]
    pub const fn to_sat_per_kvb(self) -> u64 {
        self.0
    }

    /// The rate in satoshi per virtual byte (fractional).
    #[inline]
    pub fn sat_per_vbyte(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// The rate in the paper's reporting unit, BTC per kilobyte.
    ///
    /// `1 sat/kvB == 1e-8 BTC / kvB`, and the paper treats KB and kvB
    /// interchangeably post-segwit.
    #[inline]
    pub fn btc_per_kb(self) -> f64 {
        self.0 as f64 * 1e-8
    }

    /// The fee this rate implies for a transaction of `vsize` virtual bytes,
    /// rounded up (Bitcoin Core's `GetFee` rounds up so the rate is met).
    pub fn fee_for_vsize(self, vsize: u64) -> Amount {
        let sat = (self.0 as u128 * vsize as u128).div_ceil(1_000) as u64;
        Amount::from_sat(sat)
    }
}

impl fmt::Display for FeeRate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3} sat/vB", self.sat_per_vbyte())
    }
}

impl fmt::Debug for FeeRate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} sat/kvB", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_conversions() {
        let r = FeeRate::from_sat_per_vb(10);
        assert_eq!(r.to_sat_per_kvb(), 10_000);
        assert!((r.sat_per_vbyte() - 10.0).abs() < 1e-12);
        assert!((r.btc_per_kb() - 1e-4).abs() < 1e-15);
    }

    #[test]
    fn min_relay_matches_paper_recommended_minimum() {
        // 1e-5 BTC/KB from the paper.
        assert!((FeeRate::MIN_RELAY.btc_per_kb() - 1e-5).abs() < 1e-18);
    }

    #[test]
    fn from_fee_and_vsize_rounds_down() {
        let r = FeeRate::from_fee_and_vsize(Amount::from_sat(1), 3);
        assert_eq!(r.to_sat_per_kvb(), 333);
        assert_eq!(FeeRate::from_fee_and_vsize(Amount::from_sat(5), 0), FeeRate::ZERO);
    }

    #[test]
    fn fee_for_vsize_rounds_up() {
        let r = FeeRate::from_sat_per_kvb(333);
        assert_eq!(r.fee_for_vsize(3).to_sat(), 1); // 0.999 -> 1
        assert_eq!(r.fee_for_vsize(1_000).to_sat(), 333);
        assert_eq!(FeeRate::ZERO.fee_for_vsize(250), Amount::ZERO);
    }

    #[test]
    fn ordering_is_exact() {
        assert!(FeeRate::from_sat_per_kvb(1_001) > FeeRate::from_sat_per_kvb(1_000));
    }

    #[test]
    fn rate_fee_round_trip_is_consistent() {
        // fee_for_vsize(from_fee_and_vsize(f, s), s) >= implied-rate fee and
        // the derived rate never exceeds the original.
        for (fee, vsize) in [(1_000u64, 250u64), (12_345, 141), (7, 3), (0, 200)] {
            let r = FeeRate::from_fee_and_vsize(Amount::from_sat(fee), vsize);
            assert!(r.fee_for_vsize(vsize).to_sat() <= fee.max(1));
        }
    }
}
