//! SHA-256, double SHA-256, and the 32-byte [`Hash256`] digest type.
//!
//! A from-scratch, constant-table SHA-256 (FIPS 180-4) keeps the substrate
//! dependency-free while producing real, collision-resistant transaction and
//! block identifiers — the audit pipeline keys every data structure on them.

use std::fmt;

/// A 32-byte digest, displayed in Bitcoin's reversed-hex convention.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Hash256(pub [u8; 32]);

impl Hash256 {
    /// The all-zero hash (used e.g. for the coinbase prevout and genesis prev-hash).
    pub const ZERO: Hash256 = Hash256([0u8; 32]);

    /// Returns the raw bytes.
    #[inline]
    pub fn as_bytes(&self) -> &[u8; 32] {
        &self.0
    }

    /// Interprets the first 8 bytes as a little-endian integer.
    ///
    /// Handy for deterministic, hash-derived pseudo-random decisions
    /// (e.g. sampling transactions by txid).
    #[inline]
    pub fn to_u64(&self) -> u64 {
        u64::from_le_bytes(self.0[..8].try_into().expect("32 >= 8"))
    }

    /// Parses a 64-character hex string in Bitcoin's reversed display order.
    pub fn from_hex(s: &str) -> Option<Hash256> {
        if s.len() != 64 {
            return None;
        }
        let mut out = [0u8; 32];
        for (i, chunk) in s.as_bytes().chunks(2).enumerate() {
            let hi = (chunk[0] as char).to_digit(16)?;
            let lo = (chunk[1] as char).to_digit(16)?;
            // Display order is byte-reversed relative to memory order.
            out[31 - i] = ((hi << 4) | lo) as u8;
        }
        Some(Hash256(out))
    }
}

impl From<[u8; 32]> for Hash256 {
    fn from(b: [u8; 32]) -> Self {
        Hash256(b)
    }
}

impl fmt::Display for Hash256 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Bitcoin convention: print bytes in reverse order.
        for b in self.0.iter().rev() {
            write!(f, "{b:02x}")?;
        }
        Ok(())
    }
}

impl fmt::Debug for Hash256 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

const K: [u32; 64] = [
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4, 0xab1c5ed5,
    0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174,
    0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967,
    0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85,
    0xa2bfe8a1, 0xa81a664b, 0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
    0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2,
];

const H0: [u32; 8] = [
    0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a, 0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19,
];

/// Incremental SHA-256 hasher (FIPS 180-4).
#[derive(Clone)]
pub struct Sha256 {
    state: [u32; 8],
    buf: [u8; 64],
    buf_len: usize,
    total_len: u64,
}

impl Default for Sha256 {
    fn default() -> Self {
        Self::new()
    }
}

impl Sha256 {
    /// Creates a hasher in the initial state.
    pub fn new() -> Self {
        Sha256 { state: H0, buf: [0u8; 64], buf_len: 0, total_len: 0 }
    }

    /// Absorbs `data` into the hash state.
    pub fn update(&mut self, data: &[u8]) {
        self.total_len = self.total_len.wrapping_add(data.len() as u64);
        let mut data = data;
        if self.buf_len > 0 {
            let need = 64 - self.buf_len;
            let take = need.min(data.len());
            self.buf[self.buf_len..self.buf_len + take].copy_from_slice(&data[..take]);
            self.buf_len += take;
            data = &data[take..];
            if self.buf_len == 64 {
                let block = self.buf;
                self.compress(&block);
                self.buf_len = 0;
            }
        }
        while data.len() >= 64 {
            let block: [u8; 64] = data[..64].try_into().expect("len checked");
            self.compress(&block);
            data = &data[64..];
        }
        if !data.is_empty() {
            self.buf[..data.len()].copy_from_slice(data);
            self.buf_len = data.len();
        }
    }

    /// Finishes the hash and returns the digest.
    pub fn finalize(mut self) -> Hash256 {
        let bit_len = self.total_len.wrapping_mul(8);
        // Pad in place: 0x80, zeros to the next 56-byte boundary, then the
        // big-endian bit length — one or two compressions, no per-byte
        // update calls.
        let len = self.buf_len;
        self.buf[len] = 0x80;
        if len < 56 {
            self.buf[len + 1..56].fill(0);
        } else {
            self.buf[len + 1..].fill(0);
            let block = self.buf;
            self.compress(&block);
            self.buf[..56].fill(0);
        }
        self.buf[56..].copy_from_slice(&bit_len.to_be_bytes());
        let block = self.buf;
        self.compress(&block);
        let mut out = [0u8; 32];
        for (i, w) in self.state.iter().enumerate() {
            out[i * 4..i * 4 + 4].copy_from_slice(&w.to_be_bytes());
        }
        Hash256(out)
    }

    fn compress(&mut self, block: &[u8; 64]) {
        #[cfg(target_arch = "x86_64")]
        if shani::available() {
            // SAFETY-adjacent note: `available()` has verified the sha,
            // sse2, ssse3 and sse4.1 CPUID bits that the accelerated
            // routine's `#[target_feature]` contract requires.
            shani::compress(&mut self.state, block);
            return;
        }
        compress_scalar(&mut self.state, block);
    }
}

/// Portable SHA-256 block compression — the reference implementation the
/// hardware path is equivalence-tested against, and the only path on
/// non-x86 targets.
fn compress_scalar(state: &mut [u32; 8], block: &[u8; 64]) {
        // One round with the working variables in fixed registers; callers
        // rotate the variable *roles* instead of shuffling eight registers
        // per round (the textbook h=g; g=f; ... chain), which is the main
        // scalar-SHA-256 speedup available without unsafe intrinsics.
        macro_rules! round {
            ($a:ident, $b:ident, $c:ident, $d:ident,
             $e:ident, $f:ident, $g:ident, $h:ident, $kw:expr) => {{
                let s1 = $e.rotate_right(6) ^ $e.rotate_right(11) ^ $e.rotate_right(25);
                let ch = ($e & $f) ^ (!$e & $g);
                let t1 = $h.wrapping_add(s1).wrapping_add(ch).wrapping_add($kw);
                let s0 = $a.rotate_right(2) ^ $a.rotate_right(13) ^ $a.rotate_right(22);
                let maj = ($a & $b) ^ ($a & $c) ^ ($b & $c);
                $d = $d.wrapping_add(t1);
                $h = t1.wrapping_add(s0).wrapping_add(maj);
            }};
        }

        let mut w = [0u32; 64];
        for (i, word) in w.iter_mut().take(16).enumerate() {
            *word = u32::from_be_bytes(block[i * 4..i * 4 + 4].try_into().expect("4 bytes"));
        }
        for i in 16..64 {
            let s0 = w[i - 15].rotate_right(7) ^ w[i - 15].rotate_right(18) ^ (w[i - 15] >> 3);
            let s1 = w[i - 2].rotate_right(17) ^ w[i - 2].rotate_right(19) ^ (w[i - 2] >> 10);
            w[i] = w[i - 16]
                .wrapping_add(s0)
                .wrapping_add(w[i - 7])
                .wrapping_add(s1);
        }
        let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut h] = *state;
        let mut i = 0;
        while i < 64 {
            round!(a, b, c, d, e, f, g, h, K[i].wrapping_add(w[i]));
            round!(h, a, b, c, d, e, f, g, K[i + 1].wrapping_add(w[i + 1]));
            round!(g, h, a, b, c, d, e, f, K[i + 2].wrapping_add(w[i + 2]));
            round!(f, g, h, a, b, c, d, e, K[i + 3].wrapping_add(w[i + 3]));
            round!(e, f, g, h, a, b, c, d, K[i + 4].wrapping_add(w[i + 4]));
            round!(d, e, f, g, h, a, b, c, K[i + 5].wrapping_add(w[i + 5]));
            round!(c, d, e, f, g, h, a, b, K[i + 6].wrapping_add(w[i + 6]));
            round!(b, c, d, e, f, g, h, a, K[i + 7].wrapping_add(w[i + 7]));
            i += 8;
        }
        state[0] = state[0].wrapping_add(a);
        state[1] = state[1].wrapping_add(b);
        state[2] = state[2].wrapping_add(c);
        state[3] = state[3].wrapping_add(d);
        state[4] = state[4].wrapping_add(e);
        state[5] = state[5].wrapping_add(f);
        state[6] = state[6].wrapping_add(g);
        state[7] = state[7].wrapping_add(h);
}

/// Hardware SHA-256 block compression via the x86 SHA extensions.
///
/// Transaction building is the simulator's hottest leaf: every filler byte,
/// txid, and block hash funnels through [`Sha256::compress`], and the
/// scalar rounds cap the whole experiment suite. This module is the one
/// place the workspace uses `unsafe` — a handful of `core::arch`
/// intrinsics behind a cached CPUID check, equivalence-tested against
/// [`compress_scalar`] (which remains the specification) on every build.
#[cfg(target_arch = "x86_64")]
#[allow(unsafe_code)]
mod shani {
    use super::K;
    use core::arch::x86_64::{
        __m128i, _mm_add_epi32, _mm_alignr_epi8, _mm_blend_epi16, _mm_loadu_si128,
        _mm_set_epi64x, _mm_setzero_si128, _mm_sha256msg1_epu32, _mm_sha256msg2_epu32,
        _mm_sha256rnds2_epu32, _mm_shuffle_epi32, _mm_shuffle_epi8, _mm_storeu_si128,
    };
    use std::sync::atomic::{AtomicU8, Ordering};

    /// Cached CPUID probe: 0 = unknown, 1 = supported, 2 = unsupported.
    static SUPPORT: AtomicU8 = AtomicU8::new(0);

    /// True when the CPU advertises every feature [`compress`] relies on.
    #[inline]
    pub fn available() -> bool {
        match SUPPORT.load(Ordering::Relaxed) {
            1 => true,
            2 => false,
            _ => {
                let yes = std::arch::is_x86_feature_detected!("sha")
                    && std::arch::is_x86_feature_detected!("sse2")
                    && std::arch::is_x86_feature_detected!("ssse3")
                    && std::arch::is_x86_feature_detected!("sse4.1");
                SUPPORT.store(if yes { 1 } else { 2 }, Ordering::Relaxed);
                yes
            }
        }
    }

    /// One SHA-256 compression over `block`, updating `state` in place.
    ///
    /// Follows Intel's reference sequence: the state lives in two
    /// registers as (ABEF, CDGH); message quads rotate through four
    /// registers with `sha256msg1`/`sha256msg2` extending the schedule.
    /// `m[q % 4]` holds quad `q`'s final W words until quad `q + 4`
    /// overwrites the slot (by then it holds the `msg1`-folded value the
    /// extension consumes).
    pub fn compress(state: &mut [u32; 8], block: &[u8; 64]) {
        debug_assert!(available());
        // SAFETY: the dispatcher only calls this after `available()`
        // confirmed the sha/sse2/ssse3/sse4.1 target features this
        // function is compiled with; loads and stores go through
        // unaligned intrinsics on slices of statically known length.
        unsafe { compress_impl(state, block) }
    }

    #[target_feature(enable = "sha,sse2,ssse3,sse4.1")]
    unsafe fn compress_impl(state: &mut [u32; 8], block: &[u8; 64]) {
        // Byte shuffle turning each 32-bit lane big-endian on load.
        let be_mask = _mm_set_epi64x(0x0c0d_0e0f_0809_0a0b, 0x0405_0607_0001_0203);

        // Repack [a,b,c,d] / [e,f,g,h] into the (ABEF, CDGH) register pair
        // the sha256rnds2 instruction operates on.
        let abcd = _mm_loadu_si128(state.as_ptr().cast());
        let efgh = _mm_loadu_si128(state.as_ptr().add(4).cast());
        let tmp = _mm_shuffle_epi32::<0xB1>(abcd);
        let efgh = _mm_shuffle_epi32::<0x1B>(efgh);
        let mut abef = _mm_alignr_epi8::<8>(tmp, efgh);
        let mut cdgh = _mm_blend_epi16::<0xF0>(efgh, tmp);
        let (save_abef, save_cdgh) = (abef, cdgh);

        let mut m = [_mm_setzero_si128(); 4];
        for q in 0..16 {
            if q < 4 {
                m[q] = _mm_shuffle_epi8(
                    _mm_loadu_si128(block.as_ptr().add(16 * q).cast()),
                    be_mask,
                );
            }
            let k = _mm_loadu_si128(K.as_ptr().add(4 * q).cast());
            let wk = _mm_add_epi32(m[q % 4], k);
            cdgh = _mm_sha256rnds2_epu32(cdgh, abef, wk);
            abef = _mm_sha256rnds2_epu32(abef, cdgh, _mm_shuffle_epi32::<0x0E>(wk));
            if (3..=14).contains(&q) {
                // Extend the schedule one quad ahead: W quad q+1 from the
                // msg1-folded quad q-3 (sitting in the slot about to be
                // overwritten) plus the alignr-carried W[t-7] words.
                let carry = _mm_alignr_epi8::<4>(m[q % 4], m[(q + 3) % 4]);
                let folded = _mm_add_epi32(m[(q + 1) % 4], carry);
                m[(q + 1) % 4] = _mm_sha256msg2_epu32(folded, m[q % 4]);
            }
            if (1..=12).contains(&q) {
                // Fold sigma0 of quad q into quad q-1; consumed when the
                // extension above reaches quad q+3.
                m[(q + 3) % 4] = _mm_sha256msg1_epu32(m[(q + 3) % 4], m[q % 4]);
            }
        }

        abef = _mm_add_epi32(abef, save_abef);
        cdgh = _mm_add_epi32(cdgh, save_cdgh);
        let tmp = _mm_shuffle_epi32::<0x1B>(abef);
        let cdgh = _mm_shuffle_epi32::<0xB1>(cdgh);
        let abcd = _mm_blend_epi16::<0xF0>(tmp, cdgh);
        let efgh: __m128i = _mm_alignr_epi8::<8>(cdgh, tmp);
        _mm_storeu_si128(state.as_mut_ptr().cast(), abcd);
        _mm_storeu_si128(state.as_mut_ptr().add(4).cast(), efgh);
    }
}

/// Single SHA-256 of `data`.
pub fn sha256(data: &[u8]) -> Hash256 {
    let mut h = Sha256::new();
    h.update(data);
    h.finalize()
}

/// Bitcoin's double SHA-256: `SHA256(SHA256(data))`.
pub fn sha256d(data: &[u8]) -> Hash256 {
    sha256(sha256(data).as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex_fwd(h: &Hash256) -> String {
        // Forward (memory-order) hex, matching FIPS test vectors.
        h.0.iter().map(|b| format!("{b:02x}")).collect()
    }

    #[test]
    fn fips_vector_empty() {
        assert_eq!(
            hex_fwd(&sha256(b"")),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
        );
    }

    #[test]
    fn fips_vector_abc() {
        assert_eq!(
            hex_fwd(&sha256(b"abc")),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        );
    }

    #[test]
    fn fips_vector_448_bits() {
        assert_eq!(
            hex_fwd(&sha256(b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq")),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
        );
    }

    #[test]
    fn fips_vector_million_a() {
        let data = vec![b'a'; 1_000_000];
        assert_eq!(
            hex_fwd(&sha256(&data)),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
        );
    }

    #[test]
    fn incremental_matches_oneshot() {
        let data: Vec<u8> = (0u8..=255).cycle().take(10_000).collect();
        for chunk in [1usize, 3, 63, 64, 65, 1000] {
            let mut h = Sha256::new();
            for c in data.chunks(chunk) {
                h.update(c);
            }
            assert_eq!(h.finalize(), sha256(&data), "chunk size {chunk}");
        }
    }

    #[test]
    fn double_sha256_of_hello() {
        // Known value: sha256d("hello")
        assert_eq!(
            hex_fwd(&sha256d(b"hello")),
            "9595c9df90075148eb06860365df33584b75bff782a510c6cd4883a419833d50"
        );
    }

    #[test]
    fn display_is_reversed_hex() {
        let mut bytes = [0u8; 32];
        bytes[0] = 0xab;
        bytes[31] = 0x01;
        let h = Hash256(bytes);
        let s = h.to_string();
        assert!(s.starts_with("01"));
        assert!(s.ends_with("ab"));
    }

    #[test]
    fn from_hex_round_trips_display() {
        let h = sha256(b"round trip");
        let parsed = Hash256::from_hex(&h.to_string()).expect("valid hex");
        assert_eq!(parsed, h);
        assert_eq!(Hash256::from_hex("xyz"), None);
        assert_eq!(Hash256::from_hex(&"0".repeat(63)), None);
    }

    #[test]
    #[cfg(target_arch = "x86_64")]
    fn hardware_compress_matches_scalar() {
        if !shani::available() {
            return; // nothing to cross-check on this machine
        }
        // Deterministic pseudo-random blocks and states: every compression
        // the hardware path can take must agree with the portable
        // reference bit for bit.
        let mut x = 0x9e37_79b9_7f4a_7c15u64;
        let mut next = move || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x
        };
        for _ in 0..500 {
            let mut state = [0u32; 8];
            for w in &mut state {
                *w = next() as u32;
            }
            let mut block = [0u8; 64];
            for chunk in block.chunks_mut(8) {
                chunk.copy_from_slice(&next().to_le_bytes());
            }
            let mut hw = state;
            let mut sw = state;
            shani::compress(&mut hw, &block);
            compress_scalar(&mut sw, &block);
            assert_eq!(hw, sw);
        }
    }

    #[test]
    fn to_u64_is_le_prefix() {
        let mut b = [0u8; 32];
        b[0] = 1;
        assert_eq!(Hash256(b).to_u64(), 1);
        b[7] = 1;
        assert_eq!(Hash256(b).to_u64(), 1 | (1 << 56));
    }
}
