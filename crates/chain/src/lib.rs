//! # cn-chain — Bitcoin-like chain substrate
//!
//! This crate implements the on-chain data model the audit toolkit
//! (`cn-core`) and the simulator (`cn-sim`) operate on: amounts,
//! double-SHA-256 hashing, Bitcoin-style compact-size serialization,
//! base58check addresses, transactions with BIP-141 weight/virtual-size
//! accounting, merkle trees, blocks with coinbase pool markers, a UTXO set,
//! and an append-only validated chain.
//!
//! The encoding follows Bitcoin's wire format closely enough that sizes,
//! txids, and block hashes behave like the real system (collision-free,
//! deterministic, size-dependent), which is what the ordering-audit metrics
//! key on. Consensus features irrelevant to transaction *ordering* (script
//! execution, signature checking, difficulty retargeting) are intentionally
//! out of scope; see `DESIGN.md` for the substitution table.
//!
//! ```
//! use cn_chain::{Amount, FeeRate, Transaction, TxOut, Address};
//!
//! let addr = Address::p2pkh([7u8; 20]);
//! let tx = Transaction::builder()
//!     .add_input_with_sizes([1u8; 32].into(), 0, 107, 0)
//!     .add_output(TxOut::new(Amount::from_sat(50_000), addr.script_pubkey()))
//!     .build();
//! let fee = Amount::from_sat(1_200);
//! let rate = FeeRate::from_fee_and_vsize(fee, tx.vsize());
//! assert!(rate.sat_per_vbyte() > 1.0);
//! ```

// Unsafe is denied by default; the single exception is `hash::shani`, the
// CPUID-gated SHA-256 hardware path, which opts in locally and is
// equivalence-tested against the portable implementation.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod address;
pub mod amount;
pub mod bech32;
pub mod block;
pub mod chain;
pub mod coinbase;
pub mod encode;
pub mod fasthash;
pub mod feerate;
pub mod hash;
pub mod merkle;
pub mod params;
pub mod transaction;
pub mod utxo;
pub mod validation;

pub use address::Address;
pub use amount::Amount;
pub use block::{Block, BlockHash, Header};
pub use chain::{Chain, ChainError};
pub use coinbase::{CoinbaseBuilder, PoolMarker};
pub use encode::{Decodable, Encodable};
pub use fasthash::{DigestHashBuilder, DigestHasher, FastMap, FastSet};
pub use feerate::FeeRate;
pub use hash::{sha256, sha256d, Hash256};
pub use merkle::merkle_root;
pub use params::Params;
pub use transaction::{OutPoint, Transaction, TxIn, TxOut, Txid};
pub use utxo::UtxoSet;
pub use validation::ValidationError;

/// Simulation time in seconds since the scenario epoch.
///
/// Every layer (mempool receipt times, block timestamps, snapshot clocks)
/// shares this unit; there is no ambient wall-clock anywhere in the
/// workspace.
pub type Timestamp = u64;
