//! Bitcoin-style merkle trees over transaction ids.

use crate::hash::{sha256d, Hash256};
use crate::transaction::Txid;

/// Computes the merkle root of a list of txids using Bitcoin's rule:
/// pair up hashes, duplicating the last when the level is odd, and hash each
/// concatenated pair with double SHA-256. An empty list yields the zero hash
/// (only possible for a structurally invalid block, which validation rejects
/// anyway since a block always has a coinbase).
pub fn merkle_root(txids: &[Txid]) -> Hash256 {
    if txids.is_empty() {
        return Hash256::ZERO;
    }
    let mut level: Vec<Hash256> = txids.iter().map(|t| t.0).collect();
    while level.len() > 1 {
        let mut next = Vec::with_capacity(level.len().div_ceil(2));
        for pair in level.chunks(2) {
            let left = pair[0];
            let right = *pair.last().expect("chunk non-empty");
            let mut data = [0u8; 64];
            data[..32].copy_from_slice(left.as_bytes());
            data[32..].copy_from_slice(right.as_bytes());
            next.push(sha256d(&data));
        }
        level = next;
    }
    level[0]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hash::sha256;

    fn tid(n: u8) -> Txid {
        Txid(sha256(&[n]))
    }

    #[test]
    fn empty_is_zero() {
        assert_eq!(merkle_root(&[]), Hash256::ZERO);
    }

    #[test]
    fn single_tx_root_is_its_txid() {
        let t = tid(1);
        assert_eq!(merkle_root(&[t]), t.0);
    }

    #[test]
    fn pair_is_hash_of_concatenation() {
        let (a, b) = (tid(1), tid(2));
        let mut data = [0u8; 64];
        data[..32].copy_from_slice(a.0.as_bytes());
        data[32..].copy_from_slice(b.0.as_bytes());
        assert_eq!(merkle_root(&[a, b]), sha256d(&data));
    }

    #[test]
    fn odd_level_duplicates_last() {
        let (a, b, c) = (tid(1), tid(2), tid(3));
        // Level 1: H(a||b), H(c||c); root: H(of those two).
        let root3 = merkle_root(&[a, b, c]);
        let root4 = merkle_root(&[a, b, c, c]);
        assert_eq!(root3, root4);
    }

    #[test]
    fn order_matters() {
        let (a, b) = (tid(1), tid(2));
        assert_ne!(merkle_root(&[a, b]), merkle_root(&[b, a]));
    }

    #[test]
    fn deterministic_for_larger_sets() {
        let txids: Vec<Txid> = (0u8..33).map(tid).collect();
        assert_eq!(merkle_root(&txids), merkle_root(&txids));
        let mut reversed = txids.clone();
        reversed.reverse();
        assert_ne!(merkle_root(&txids), merkle_root(&reversed));
    }
}
