//! Consensus and policy parameters.

use crate::amount::Amount;
use crate::feerate::FeeRate;
use serde::{Deserialize, Serialize};

/// Chain-wide consensus and default-policy parameters.
///
/// Defaults mirror Bitcoin mainnet where it matters for ordering studies:
/// a 4,000,000-weight-unit block (1,000,000 vbytes — the paper's "1 MB"),
/// a 50 BTC initial subsidy halving every 210,000 blocks, 600-second target
/// spacing, and a 1 sat/vB default relay floor.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Params {
    /// Maximum block weight in weight units.
    pub max_block_weight: u64,
    /// Initial block subsidy.
    pub initial_subsidy: Amount,
    /// Number of blocks between subsidy halvings.
    pub halving_interval: u64,
    /// Target seconds between blocks.
    pub target_spacing_secs: u64,
    /// Default minimum relay fee rate (norm III in the paper).
    pub min_relay_fee_rate: FeeRate,
    /// Reserved block weight for the coinbase transaction and header
    /// overhead when assembling templates (Bitcoin Core reserves 4,000 WU).
    pub coinbase_reserved_weight: u64,
}

impl Default for Params {
    fn default() -> Self {
        Params::mainnet()
    }
}

impl Params {
    /// Bitcoin-mainnet-like parameters.
    pub fn mainnet() -> Params {
        Params {
            max_block_weight: 4_000_000,
            initial_subsidy: Amount::from_btc(50),
            halving_interval: 210_000,
            target_spacing_secs: 600,
            min_relay_fee_rate: FeeRate::MIN_RELAY,
            coinbase_reserved_weight: 4_000,
        }
    }

    /// Small-block parameters for fast tests (40,000 WU = 10,000 vbytes).
    pub fn test() -> Params {
        Params {
            max_block_weight: 40_000,
            initial_subsidy: Amount::from_btc(50),
            halving_interval: 150,
            target_spacing_secs: 600,
            min_relay_fee_rate: FeeRate::MIN_RELAY,
            coinbase_reserved_weight: 4_000,
        }
    }

    /// Maximum block virtual size in vbytes.
    pub fn max_block_vsize(&self) -> u64 {
        self.max_block_weight / 4
    }

    /// The block subsidy at `height`, halving every `halving_interval`
    /// blocks and reaching zero after 64 halvings (as in Bitcoin).
    pub fn subsidy_at(&self, height: u64) -> Amount {
        let halvings = height / self.halving_interval;
        if halvings >= 64 {
            return Amount::ZERO;
        }
        Amount::from_sat(self.initial_subsidy.to_sat() >> halvings)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mainnet_vsize_is_one_megabyte() {
        assert_eq!(Params::mainnet().max_block_vsize(), 1_000_000);
    }

    #[test]
    fn subsidy_halves() {
        let p = Params::mainnet();
        assert_eq!(p.subsidy_at(0), Amount::from_btc(50));
        assert_eq!(p.subsidy_at(209_999), Amount::from_btc(50));
        assert_eq!(p.subsidy_at(210_000), Amount::from_btc(25));
        assert_eq!(p.subsidy_at(630_000), Amount::from_sat(625_000_000)); // 6.25 BTC
        assert_eq!(p.subsidy_at(64 * 210_000), Amount::ZERO);
    }

    #[test]
    fn total_supply_below_21m() {
        let p = Params::mainnet();
        let mut total: u64 = 0;
        for halving in 0..64u64 {
            total += p.subsidy_at(halving * p.halving_interval).to_sat() * p.halving_interval;
        }
        assert!(total <= Amount::MAX_MONEY.to_sat());
        assert!(total > Amount::MAX_MONEY.to_sat() - Amount::ONE_BTC.to_sat());
    }
}
