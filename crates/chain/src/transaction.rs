//! Transactions with BIP-141 weight and virtual-size accounting.
//!
//! A [`Transaction`] is immutable once built; its txid, wtxid, weight, and
//! virtual size are computed at construction and cached, because the audit
//! pipeline looks these up in tight loops over hundreds of thousands of
//! transactions.

use crate::address::Address;
use crate::amount::Amount;
use crate::encode::{
    compact_size_len, ensure_remaining, read_compact_size, read_var_bytes, write_compact_size,
    write_var_bytes, Decodable, DecodeError, Encodable,
};
use crate::hash::{sha256d, Hash256};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use std::fmt;

/// A transaction identifier: the double-SHA-256 of the non-witness encoding.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Txid(pub Hash256);

impl Txid {
    /// The all-zero txid (used by coinbase prevouts).
    pub const ZERO: Txid = Txid(Hash256::ZERO);
}

impl From<[u8; 32]> for Txid {
    fn from(b: [u8; 32]) -> Self {
        Txid(Hash256(b))
    }
}

impl fmt::Display for Txid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

impl fmt::Debug for Txid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Txid({})", self.0)
    }
}

/// A reference to a specific output of a prior transaction.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct OutPoint {
    /// The transaction whose output is spent.
    pub txid: Txid,
    /// The output index within that transaction.
    pub vout: u32,
}

impl OutPoint {
    /// The null outpoint marking a coinbase input.
    pub const NULL: OutPoint = OutPoint { txid: Txid::ZERO, vout: u32::MAX };

    /// Creates an outpoint.
    pub const fn new(txid: Txid, vout: u32) -> OutPoint {
        OutPoint { txid, vout }
    }

    /// True for the coinbase marker outpoint.
    pub fn is_null(&self) -> bool {
        *self == OutPoint::NULL
    }
}

impl Encodable for OutPoint {
    fn encode(&self, buf: &mut BytesMut) {
        self.txid.0.encode(buf);
        buf.put_u32_le(self.vout);
    }

    fn encoded_len(&self) -> usize {
        36
    }
}

impl Decodable for OutPoint {
    fn decode(buf: &mut Bytes) -> Result<Self, DecodeError> {
        let txid = Txid(Hash256::decode(buf)?);
        ensure_remaining(buf, 4)?;
        let vout = buf.get_u32_le();
        Ok(OutPoint { txid, vout })
    }
}

/// A transaction input.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct TxIn {
    /// The output being spent.
    pub prevout: OutPoint,
    /// Unlocking script bytes (content is opaque to this substrate;
    /// only its length matters for sizing).
    pub script_sig: Vec<u8>,
    /// Sequence number (relative locktime / RBF signalling).
    pub sequence: u32,
    /// Segregated-witness stack items.
    pub witness: Vec<Vec<u8>>,
}

impl TxIn {
    /// Creates an input spending `prevout` with an empty script and witness.
    pub fn new(prevout: OutPoint) -> TxIn {
        TxIn { prevout, script_sig: Vec::new(), sequence: 0xffff_ffff, witness: Vec::new() }
    }

    /// Creates an input spending `txid:vout` with filler unlocking data of
    /// the given sizes — the simulator's way of producing realistically
    /// sized transactions without real signatures. The filler content is
    /// derived from the prevout so distinct spends never collide.
    ///
    /// Building the (hash-heavy) filler once and reusing the `TxIn` is
    /// much cheaper than calling
    /// [`TransactionBuilder::add_input_with_sizes`] per draft.
    pub fn with_filler(txid: Txid, vout: u32, script_sig_len: usize, witness_len: usize) -> TxIn {
        let prevout = OutPoint::new(txid, vout);
        let mut seed = Vec::with_capacity(36);
        seed.extend_from_slice(txid.0.as_bytes());
        seed.extend_from_slice(&vout.to_le_bytes());
        let fill = sha256d(&seed);
        let script_sig = filler_bytes(fill, 0x51, script_sig_len);
        let witness = if witness_len > 0 {
            vec![filler_bytes(fill, 0x52, witness_len)]
        } else {
            Vec::new()
        };
        TxIn { prevout, script_sig, sequence: 0xffff_ffff, witness }
    }

    /// True when any witness item is present.
    pub fn has_witness(&self) -> bool {
        !self.witness.is_empty()
    }
}

/// A transaction output: an amount locked to a script.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct TxOut {
    /// The amount carried by this output.
    pub value: Amount,
    /// The locking script.
    pub script_pubkey: Vec<u8>,
}

impl TxOut {
    /// Creates an output.
    pub fn new(value: Amount, script_pubkey: Vec<u8>) -> TxOut {
        TxOut { value, script_pubkey }
    }

    /// Creates an output paying `value` to `address`.
    pub fn to_address(value: Amount, address: Address) -> TxOut {
        TxOut { value, script_pubkey: address.script_pubkey() }
    }

    /// The address this output pays to, when the script matches a template.
    pub fn address(&self) -> Option<Address> {
        Address::from_script_pubkey(&self.script_pubkey)
    }
}

impl Encodable for TxOut {
    fn encode(&self, buf: &mut BytesMut) {
        buf.put_u64_le(self.value.to_sat());
        write_var_bytes(buf, &self.script_pubkey);
    }
}

impl Decodable for TxOut {
    fn decode(buf: &mut Bytes) -> Result<Self, DecodeError> {
        ensure_remaining(buf, 8)?;
        let value = Amount::from_sat(buf.get_u64_le());
        let script_pubkey = read_var_bytes(buf)?;
        Ok(TxOut { value, script_pubkey })
    }
}

/// An immutable transaction with cached identity and size metrics.
#[derive(Clone, PartialEq, Eq)]
pub struct Transaction {
    version: i32,
    inputs: Vec<TxIn>,
    outputs: Vec<TxOut>,
    lock_time: u32,
    // Cached at construction:
    txid: Txid,
    wtxid: Hash256,
    weight: u64,
}

impl Transaction {
    /// Starts building a transaction.
    pub fn builder() -> TransactionBuilder {
        TransactionBuilder::new()
    }

    /// The transaction version.
    pub fn version(&self) -> i32 {
        self.version
    }

    /// The inputs.
    pub fn inputs(&self) -> &[TxIn] {
        &self.inputs
    }

    /// The outputs.
    pub fn outputs(&self) -> &[TxOut] {
        &self.outputs
    }

    /// The lock time.
    pub fn lock_time(&self) -> u32 {
        self.lock_time
    }

    /// The cached transaction id (hash of the non-witness serialization).
    pub fn txid(&self) -> Txid {
        self.txid
    }

    /// The cached witness transaction id.
    pub fn wtxid(&self) -> Hash256 {
        self.wtxid
    }

    /// BIP-141 weight: `3 * base_size + total_size`.
    pub fn weight(&self) -> u64 {
        self.weight
    }

    /// Virtual size in vbytes: `ceil(weight / 4)`.
    pub fn vsize(&self) -> u64 {
        self.weight.div_ceil(4)
    }

    /// True for a coinbase transaction (single null-prevout input).
    pub fn is_coinbase(&self) -> bool {
        self.inputs.len() == 1 && self.inputs[0].prevout.is_null()
    }

    /// Total value of all outputs.
    pub fn output_value(&self) -> Amount {
        self.outputs.iter().map(|o| o.value).sum()
    }

    /// Iterates over template-decodable destination addresses.
    pub fn output_addresses(&self) -> impl Iterator<Item = Address> + '_ {
        self.outputs.iter().filter_map(|o| o.address())
    }

    /// True when any input carries witness data.
    pub fn has_witness(&self) -> bool {
        self.inputs.iter().any(|i| i.has_witness())
    }

    fn encode_base(&self, buf: &mut BytesMut) {
        encode_base_parts(self.version, &self.inputs, &self.outputs, self.lock_time, buf);
    }

    fn encode_full(&self, buf: &mut BytesMut) {
        encode_full_parts(self.version, &self.inputs, &self.outputs, self.lock_time, buf);
    }
}

/// Non-witness serialization of a transaction's parts — shared by the
/// built [`Transaction`] and the builder's hash-free size preview so the
/// two can never disagree about encoded length.
fn encode_base_parts(
    version: i32,
    inputs: &[TxIn],
    outputs: &[TxOut],
    lock_time: u32,
    buf: &mut BytesMut,
) {
    buf.put_i32_le(version);
    write_compact_size(buf, inputs.len() as u64);
    for input in inputs {
        input.prevout.encode(buf);
        write_var_bytes(buf, &input.script_sig);
        buf.put_u32_le(input.sequence);
    }
    write_compact_size(buf, outputs.len() as u64);
    for output in outputs {
        output.encode(buf);
    }
    buf.put_u32_le(lock_time);
}

/// Byte length [`encode_base_parts`] would produce, computed arithmetically
/// from the compact-size rules — no serialization, no allocation.
fn base_parts_len(inputs: &[TxIn], outputs: &[TxOut]) -> usize {
    let mut len = 4 + compact_size_len(inputs.len() as u64);
    for input in inputs {
        len += 36 + compact_size_len(input.script_sig.len() as u64) + input.script_sig.len() + 4;
    }
    len += compact_size_len(outputs.len() as u64);
    for output in outputs {
        len += 8
            + compact_size_len(output.script_pubkey.len() as u64)
            + output.script_pubkey.len();
    }
    len + 4
}

/// Byte length [`encode_full_parts`] would produce.
fn full_parts_len(inputs: &[TxIn], outputs: &[TxOut]) -> usize {
    let base = base_parts_len(inputs, outputs);
    if !inputs.iter().any(|i| i.has_witness()) {
        return base;
    }
    let mut len = base + 2; // segwit marker + flag
    for input in inputs {
        len += compact_size_len(input.witness.len() as u64);
        for item in &input.witness {
            len += compact_size_len(item.len() as u64) + item.len();
        }
    }
    len
}

/// Full (witness-carrying) serialization of a transaction's parts.
fn encode_full_parts(
    version: i32,
    inputs: &[TxIn],
    outputs: &[TxOut],
    lock_time: u32,
    buf: &mut BytesMut,
) {
    if !inputs.iter().any(|i| i.has_witness()) {
        return encode_base_parts(version, inputs, outputs, lock_time, buf);
    }
    buf.put_i32_le(version);
    buf.put_u8(0x00); // segwit marker
    buf.put_u8(0x01); // segwit flag
    write_compact_size(buf, inputs.len() as u64);
    for input in inputs {
        input.prevout.encode(buf);
        write_var_bytes(buf, &input.script_sig);
        buf.put_u32_le(input.sequence);
    }
    write_compact_size(buf, outputs.len() as u64);
    for output in outputs {
        output.encode(buf);
    }
    for input in inputs {
        write_compact_size(buf, input.witness.len() as u64);
        for item in &input.witness {
            write_var_bytes(buf, item);
        }
    }
    buf.put_u32_le(lock_time);
}

impl fmt::Debug for Transaction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Transaction")
            .field("txid", &self.txid)
            .field("inputs", &self.inputs.len())
            .field("outputs", &self.outputs.len())
            .field("vsize", &self.vsize())
            .finish()
    }
}

impl Encodable for Transaction {
    fn encode(&self, buf: &mut BytesMut) {
        self.encode_full(buf);
    }
}

impl Decodable for Transaction {
    fn decode(buf: &mut Bytes) -> Result<Self, DecodeError> {
        ensure_remaining(buf, 4)?;
        let version = buf.get_i32_le();
        // Peek for the segwit marker: a zero here cannot be a canonical
        // input count for a valid transaction.
        ensure_remaining(buf, 1)?;
        let segwit = buf[0] == 0x00;
        if segwit {
            buf.advance(1);
            ensure_remaining(buf, 1)?;
            if buf.get_u8() != 0x01 {
                return Err(DecodeError::UnexpectedEnd);
            }
        }
        let n_in = read_compact_size(buf)?;
        if n_in > crate::encode::MAX_DECODE_LEN {
            return Err(DecodeError::OversizedLength(n_in));
        }
        let mut inputs = Vec::with_capacity(n_in as usize);
        for _ in 0..n_in {
            let prevout = OutPoint::decode(buf)?;
            let script_sig = read_var_bytes(buf)?;
            ensure_remaining(buf, 4)?;
            let sequence = buf.get_u32_le();
            inputs.push(TxIn { prevout, script_sig, sequence, witness: Vec::new() });
        }
        let n_out = read_compact_size(buf)?;
        if n_out > crate::encode::MAX_DECODE_LEN {
            return Err(DecodeError::OversizedLength(n_out));
        }
        let mut outputs = Vec::with_capacity(n_out as usize);
        for _ in 0..n_out {
            outputs.push(TxOut::decode(buf)?);
        }
        if segwit {
            for input in inputs.iter_mut() {
                let n_items = read_compact_size(buf)?;
                if n_items > crate::encode::MAX_DECODE_LEN {
                    return Err(DecodeError::OversizedLength(n_items));
                }
                let mut witness = Vec::with_capacity(n_items as usize);
                for _ in 0..n_items {
                    witness.push(read_var_bytes(buf)?);
                }
                input.witness = witness;
            }
        }
        ensure_remaining(buf, 4)?;
        let lock_time = buf.get_u32_le();
        Ok(TransactionBuilder { version, inputs, outputs, lock_time }.build())
    }
}

/// Builder for [`Transaction`]; computes and caches identity and sizes.
#[derive(Clone, Debug)]
pub struct TransactionBuilder {
    version: i32,
    inputs: Vec<TxIn>,
    outputs: Vec<TxOut>,
    lock_time: u32,
}

impl Default for TransactionBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl TransactionBuilder {
    /// Creates an empty builder (version 2, lock time 0).
    pub fn new() -> TransactionBuilder {
        TransactionBuilder { version: 2, inputs: Vec::new(), outputs: Vec::new(), lock_time: 0 }
    }

    /// Sets the version.
    pub fn version(mut self, v: i32) -> Self {
        self.version = v;
        self
    }

    /// Sets the lock time.
    pub fn lock_time(mut self, t: u32) -> Self {
        self.lock_time = t;
        self
    }

    /// Adds a fully specified input.
    pub fn add_input(mut self, input: TxIn) -> Self {
        self.inputs.push(input);
        self
    }

    /// Adds an input spending `txid:vout` with filler unlocking data of the
    /// given sizes — the simulator's way of producing realistically sized
    /// transactions without real signatures. The filler content is derived
    /// from the prevout so distinct spends never collide.
    pub fn add_input_with_sizes(
        mut self,
        txid: Txid,
        vout: u32,
        script_sig_len: usize,
        witness_len: usize,
    ) -> Self {
        self.inputs.push(TxIn::with_filler(txid, vout, script_sig_len, witness_len));
        self
    }

    /// Adds an output.
    pub fn add_output(mut self, output: TxOut) -> Self {
        self.outputs.push(output);
        self
    }

    /// Adds an output paying `value` to `address`.
    pub fn pay_to(self, address: Address, value: Amount) -> Self {
        self.add_output(TxOut::to_address(value, address))
    }

    /// BIP-141 weight of the transaction this builder would produce,
    /// computed arithmetically from the wire-format size rules — no
    /// serialization and no hashing, so fee-sizing drafts cost a few
    /// integer additions.
    pub fn weight(&self) -> u64 {
        let base = base_parts_len(&self.inputs, &self.outputs);
        let full = full_parts_len(&self.inputs, &self.outputs);
        3 * base as u64 + full as u64
    }

    /// Virtual size the built transaction will have: `ceil(weight / 4)`.
    pub fn vsize(&self) -> u64 {
        self.weight().div_ceil(4)
    }

    /// Finalizes the transaction, computing txid, wtxid, and weight.
    pub fn build(self) -> Transaction {
        let mut tx = Transaction {
            version: self.version,
            inputs: self.inputs,
            outputs: self.outputs,
            lock_time: self.lock_time,
            txid: Txid::ZERO,
            wtxid: Hash256::ZERO,
            weight: 0,
        };
        let base_len = base_parts_len(&tx.inputs, &tx.outputs);
        let mut base = BytesMut::with_capacity(base_len);
        tx.encode_base(&mut base);
        debug_assert_eq!(base.len(), base_len);
        tx.txid = Txid(sha256d(&base));
        if tx.has_witness() {
            let full_len = full_parts_len(&tx.inputs, &tx.outputs);
            let mut full = BytesMut::with_capacity(full_len);
            tx.encode_full(&mut full);
            debug_assert_eq!(full.len(), full_len);
            tx.wtxid = sha256d(&full);
            tx.weight = 3 * base_len as u64 + full_len as u64;
        } else {
            tx.wtxid = tx.txid.0;
            tx.weight = 4 * base_len as u64;
        }
        tx
    }
}

/// Deterministic filler bytes: `seed`-derived, tagged, of exactly `len` bytes.
fn filler_bytes(seed: Hash256, tag: u8, len: usize) -> Vec<u8> {
    let mut out = Vec::with_capacity(len);
    let mut input = [0u8; 37];
    input[..32].copy_from_slice(seed.as_bytes());
    input[32] = tag;
    let mut counter = 0u32;
    while out.len() < len {
        input[33..].copy_from_slice(&counter.to_le_bytes());
        let h = sha256d(&input);
        let take = (len - out.len()).min(32);
        out.extend_from_slice(&h.as_bytes()[..take]);
        counter += 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_tx(witness_len: usize) -> Transaction {
        Transaction::builder()
            .add_input_with_sizes([1u8; 32].into(), 0, 107, witness_len)
            .pay_to(Address::p2pkh([2; 20]), Amount::from_sat(50_000))
            .pay_to(Address::p2pkh([3; 20]), Amount::from_sat(25_000))
            .build()
    }

    #[test]
    fn builder_size_preview_matches_built() {
        for witness_len in [0usize, 1, 107, 2_800] {
            let builder = Transaction::builder()
                .add_input_with_sizes([1u8; 32].into(), 0, 107, witness_len)
                .pay_to(Address::p2pkh([2; 20]), Amount::from_sat(50_000))
                .pay_to(Address::p2pkh([3; 20]), Amount::from_sat(25_000));
            let (weight, vsize) = (builder.weight(), builder.vsize());
            let built = builder.build();
            assert_eq!(weight, built.weight(), "witness_len={witness_len}");
            assert_eq!(vsize, built.vsize(), "witness_len={witness_len}");
        }
    }

    #[test]
    fn arithmetic_lengths_match_encoders() {
        // Cross the compact-size thresholds (0xfc/0xfd boundary) in both
        // the script and witness dimensions.
        for (sig_len, wit_len) in
            [(0usize, 0usize), (107, 0), (107, 1), (252, 253), (300, 2_800), (70_000, 70_000)]
        {
            let tx = Transaction::builder()
                .add_input_with_sizes([1u8; 32].into(), 0, sig_len, wit_len)
                .pay_to(Address::p2pkh([2; 20]), Amount::from_sat(50_000))
                .build();
            let mut base = BytesMut::new();
            tx.encode_base(&mut base);
            assert_eq!(base_parts_len(tx.inputs(), tx.outputs()), base.len());
            let mut full = BytesMut::new();
            tx.encode_full(&mut full);
            assert_eq!(full_parts_len(tx.inputs(), tx.outputs()), full.len());
            assert_eq!(tx.weight(), 3 * base.len() as u64 + full.len() as u64);
        }
    }

    #[test]
    fn filler_input_matches_add_input_with_sizes() {
        let via_builder = Transaction::builder()
            .add_input_with_sizes([7u8; 32].into(), 3, 60, 400)
            .pay_to(Address::p2pkh([2; 20]), Amount::from_sat(1_000))
            .build();
        let via_txin = Transaction::builder()
            .add_input(TxIn::with_filler([7u8; 32].into(), 3, 60, 400))
            .pay_to(Address::p2pkh([2; 20]), Amount::from_sat(1_000))
            .build();
        assert_eq!(via_builder, via_txin);
        assert_eq!(via_builder.txid(), via_txin.txid());
    }

    #[test]
    fn txid_is_stable_and_content_sensitive() {
        let a = sample_tx(0);
        let b = sample_tx(0);
        assert_eq!(a.txid(), b.txid());
        let c = Transaction::builder()
            .add_input_with_sizes([1u8; 32].into(), 1, 107, 0)
            .pay_to(Address::p2pkh([2; 20]), Amount::from_sat(50_000))
            .build();
        assert_ne!(a.txid(), c.txid());
    }

    #[test]
    fn non_witness_legacy_size() {
        // Classic 1-in 2-out P2PKH: 4 + 1 + (36+1+107+4) + 1 + 2*(8+1+25) + 4
        let tx = sample_tx(0);
        let expected = 4 + 1 + (36 + 1 + 107 + 4) + 1 + 2 * (8 + 1 + 25) + 4;
        assert_eq!(tx.encoded_len(), expected);
        assert_eq!(tx.weight(), 4 * expected as u64);
        assert_eq!(tx.vsize(), expected as u64);
        assert_eq!(tx.wtxid(), tx.txid().0);
    }

    #[test]
    fn witness_discount_applies() {
        let legacy = sample_tx(0);
        let segwit = sample_tx(107);
        // Witness bytes count once, base bytes count four times.
        assert!(segwit.weight() > legacy.weight());
        assert!(segwit.weight() < legacy.weight() + 4 * 107);
        assert!(segwit.vsize() < legacy.vsize() + 107);
        assert_ne!(segwit.wtxid(), segwit.txid().0);
        // Txid ignores witness data entirely: same base fields, different witness.
        let segwit2 = sample_tx(50);
        assert_eq!(segwit.txid(), segwit2.txid());
    }

    #[test]
    fn encode_decode_round_trip_legacy() {
        let tx = sample_tx(0);
        let bytes = tx.encode_to_bytes();
        let decoded = Transaction::decode_all(&bytes).expect("decode");
        assert_eq!(decoded, tx);
        assert_eq!(decoded.txid(), tx.txid());
        assert_eq!(decoded.weight(), tx.weight());
    }

    #[test]
    fn encode_decode_round_trip_segwit() {
        let tx = sample_tx(107);
        let bytes = tx.encode_to_bytes();
        let decoded = Transaction::decode_all(&bytes).expect("decode");
        assert_eq!(decoded, tx);
        assert_eq!(decoded.wtxid(), tx.wtxid());
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(Transaction::decode_all(&[]).is_err());
        assert!(Transaction::decode_all(&[1, 2, 3]).is_err());
        let tx = sample_tx(0);
        let bytes = tx.encode_to_bytes();
        assert!(Transaction::decode_all(&bytes[..bytes.len() - 1]).is_err());
        // Trailing junk is also an error under decode_all.
        let mut extended = bytes.to_vec();
        extended.push(0);
        assert!(Transaction::decode_all(&extended).is_err());
    }

    #[test]
    fn coinbase_detection() {
        let cb = Transaction::builder()
            .add_input(TxIn::new(OutPoint::NULL))
            .pay_to(Address::p2pkh([9; 20]), Amount::from_btc(6))
            .build();
        assert!(cb.is_coinbase());
        assert!(!sample_tx(0).is_coinbase());
    }

    #[test]
    fn output_helpers() {
        let tx = sample_tx(0);
        assert_eq!(tx.output_value().to_sat(), 75_000);
        let addrs: Vec<_> = tx.output_addresses().collect();
        assert_eq!(addrs.len(), 2);
        assert_eq!(addrs[0], Address::p2pkh([2; 20]));
    }

    #[test]
    fn filler_bytes_exact_length_and_deterministic() {
        let seed = sha256d(b"seed");
        for len in [0usize, 1, 31, 32, 33, 100] {
            let a = filler_bytes(seed, 7, len);
            let b = filler_bytes(seed, 7, len);
            assert_eq!(a.len(), len);
            assert_eq!(a, b);
        }
        assert_ne!(filler_bytes(seed, 1, 32), filler_bytes(seed, 2, 32));
    }
}
