//! The unspent-transaction-output set, and fee computation.

use crate::amount::Amount;
use crate::block::Block;
use crate::transaction::{OutPoint, Transaction, TxOut};
use crate::fasthash::FastMap;
use std::fmt;

/// Errors from applying transactions to the UTXO set.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum UtxoError {
    /// An input referenced an unknown or already-spent output.
    MissingInput(OutPoint),
    /// Input value was smaller than output value (negative fee).
    NegativeFee,
    /// The same output was spent twice within the unit being applied.
    DoubleSpend(OutPoint),
}

impl fmt::Display for UtxoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            UtxoError::MissingInput(op) => write!(f, "missing input {}:{}", op.txid, op.vout),
            UtxoError::NegativeFee => write!(f, "outputs exceed inputs"),
            UtxoError::DoubleSpend(op) => write!(f, "double spend of {}:{}", op.txid, op.vout),
        }
    }
}

impl std::error::Error for UtxoError {}

/// An in-memory UTXO set.
#[derive(Clone, Debug, Default)]
pub struct UtxoSet {
    utxos: FastMap<OutPoint, TxOut>,
}

impl UtxoSet {
    /// Creates an empty set.
    pub fn new() -> UtxoSet {
        UtxoSet::default()
    }

    /// Number of unspent outputs.
    pub fn len(&self) -> usize {
        self.utxos.len()
    }

    /// True when no outputs are unspent.
    pub fn is_empty(&self) -> bool {
        self.utxos.is_empty()
    }

    /// Looks up an unspent output.
    pub fn get(&self, outpoint: &OutPoint) -> Option<&TxOut> {
        self.utxos.get(outpoint)
    }

    /// True when `outpoint` is unspent.
    pub fn contains(&self, outpoint: &OutPoint) -> bool {
        self.utxos.contains_key(outpoint)
    }

    /// Iterates over all unspent outputs (arbitrary order).
    pub fn iter(&self) -> impl Iterator<Item = (&OutPoint, &TxOut)> {
        self.utxos.iter()
    }

    /// Total input value of `tx` — the sum of values of the outputs it
    /// spends. Fails if any input is not currently unspent.
    pub fn input_value(&self, tx: &Transaction) -> Result<Amount, UtxoError> {
        let mut total = Amount::ZERO;
        for input in tx.inputs() {
            let prev = self
                .utxos
                .get(&input.prevout)
                .ok_or(UtxoError::MissingInput(input.prevout))?;
            total = total
                .checked_add(prev.value)
                .ok_or(UtxoError::NegativeFee)?;
        }
        Ok(total)
    }

    /// The fee `tx` pays: input value minus output value.
    pub fn fee(&self, tx: &Transaction) -> Result<Amount, UtxoError> {
        let in_value = self.input_value(tx)?;
        in_value
            .checked_sub(tx.output_value())
            .ok_or(UtxoError::NegativeFee)
    }

    /// Applies a non-coinbase transaction: consumes its inputs, inserts its
    /// outputs. Validates spendability and non-negative fee first, so a
    /// failed apply leaves the set untouched.
    pub fn apply_tx(&mut self, tx: &Transaction) -> Result<Amount, UtxoError> {
        let fee = self.fee(tx)?;
        // Detect intra-tx double spends before mutating.
        for (i, a) in tx.inputs().iter().enumerate() {
            for b in &tx.inputs()[i + 1..] {
                if a.prevout == b.prevout {
                    return Err(UtxoError::DoubleSpend(a.prevout));
                }
            }
        }
        for input in tx.inputs() {
            self.utxos.remove(&input.prevout);
        }
        self.insert_outputs(tx);
        Ok(fee)
    }

    /// Inserts all outputs of `tx` (used for coinbases and initial funding).
    pub fn insert_outputs(&mut self, tx: &Transaction) {
        for (vout, output) in tx.outputs().iter().enumerate() {
            self.utxos
                .insert(OutPoint::new(tx.txid(), vout as u32), output.clone());
        }
    }

    /// Applies a whole block in order (coinbase outputs inserted, body
    /// transactions applied), returning the total fees collected.
    ///
    /// On error the set may be partially updated; block-level validation
    /// (`crate::validation`) is expected to run on a clone or prior to
    /// commitment.
    pub fn apply_block(&mut self, block: &Block) -> Result<Amount, UtxoError> {
        Ok(self.apply_block_detailed(block)?.into_iter().sum())
    }

    /// Like [`UtxoSet::apply_block`], but returns each body transaction's
    /// fee in block order — the per-transaction record the ordering audit
    /// needs.
    pub fn apply_block_detailed(&mut self, block: &Block) -> Result<Vec<Amount>, UtxoError> {
        if let Some(cb) = block.coinbase() {
            self.insert_outputs(cb);
        }
        let mut fees = Vec::with_capacity(block.body().len());
        for tx in block.body() {
            fees.push(self.apply_tx(tx)?);
        }
        Ok(fees)
    }

    /// Read-only version of [`UtxoSet::apply_block_detailed`]: validates the
    /// whole block against `self` plus an in-block overlay and returns the
    /// same fees (or the same first error), without touching the set. The
    /// overlay shadows the base set — `Some(value)` for outputs created in
    /// the block, `None` for outputs it has spent — so in-block chains and
    /// re-creations resolve exactly as a sequential apply would.
    pub fn check_block_detailed(&self, block: &Block) -> Result<Vec<Amount>, UtxoError> {
        let mut overlay: FastMap<OutPoint, Option<Amount>> = FastMap::default();
        if let Some(cb) = block.coinbase() {
            for (vout, output) in cb.outputs().iter().enumerate() {
                overlay.insert(OutPoint::new(cb.txid(), vout as u32), Some(output.value));
            }
        }
        let mut fees = Vec::with_capacity(block.body().len());
        for tx in block.body() {
            let mut in_value = Amount::ZERO;
            for input in tx.inputs() {
                let prev = match overlay.get(&input.prevout) {
                    Some(Some(value)) => *value,
                    Some(None) => return Err(UtxoError::MissingInput(input.prevout)),
                    None => {
                        self.utxos
                            .get(&input.prevout)
                            .ok_or(UtxoError::MissingInput(input.prevout))?
                            .value
                    }
                };
                in_value = in_value.checked_add(prev).ok_or(UtxoError::NegativeFee)?;
            }
            let fee = in_value
                .checked_sub(tx.output_value())
                .ok_or(UtxoError::NegativeFee)?;
            // Same intra-tx double-spend scan as `apply_tx`, in the same
            // position (after the fee computation).
            for (i, a) in tx.inputs().iter().enumerate() {
                for b in &tx.inputs()[i + 1..] {
                    if a.prevout == b.prevout {
                        return Err(UtxoError::DoubleSpend(a.prevout));
                    }
                }
            }
            for input in tx.inputs() {
                overlay.insert(input.prevout, None);
            }
            for (vout, output) in tx.outputs().iter().enumerate() {
                overlay.insert(OutPoint::new(tx.txid(), vout as u32), Some(output.value));
            }
            fees.push(fee);
        }
        Ok(fees)
    }

    /// Applies a block already validated by
    /// [`UtxoSet::check_block_detailed`]: consumes inputs and inserts
    /// outputs with no further checks. Calling this with an unchecked block
    /// can corrupt the set.
    pub fn commit_checked_block(&mut self, block: &Block) {
        if let Some(cb) = block.coinbase() {
            self.insert_outputs(cb);
        }
        for tx in block.body() {
            for input in tx.inputs() {
                self.utxos.remove(&input.prevout);
            }
            self.insert_outputs(tx);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::address::Address;
    use crate::block::BlockHash;
    use crate::coinbase::CoinbaseBuilder;
    use crate::transaction::Txid;

    fn funding_tx(value: u64) -> Transaction {
        Transaction::builder()
            .add_input(crate::transaction::TxIn::new(OutPoint::NULL))
            .pay_to(Address::from_label("funder"), Amount::from_sat(value))
            .build()
    }

    fn spend(from: &Transaction, vout: u32, out_value: u64) -> Transaction {
        Transaction::builder()
            .add_input_with_sizes(from.txid(), vout, 107, 0)
            .pay_to(Address::from_label("recipient"), Amount::from_sat(out_value))
            .build()
    }

    #[test]
    fn fee_is_inputs_minus_outputs() {
        let mut set = UtxoSet::new();
        let fund = funding_tx(100_000);
        set.insert_outputs(&fund);
        let tx = spend(&fund, 0, 90_000);
        assert_eq!(set.fee(&tx), Ok(Amount::from_sat(10_000)));
        assert_eq!(set.apply_tx(&tx), Ok(Amount::from_sat(10_000)));
        assert!(!set.contains(&OutPoint::new(fund.txid(), 0)));
        assert!(set.contains(&OutPoint::new(tx.txid(), 0)));
    }

    #[test]
    fn missing_input_rejected() {
        let set = UtxoSet::new();
        let tx = spend(&funding_tx(1), 0, 1);
        assert!(matches!(set.fee(&tx), Err(UtxoError::MissingInput(_))));
    }

    #[test]
    fn negative_fee_rejected_without_mutation() {
        let mut set = UtxoSet::new();
        let fund = funding_tx(100);
        set.insert_outputs(&fund);
        let tx = spend(&fund, 0, 200);
        assert_eq!(set.apply_tx(&tx), Err(UtxoError::NegativeFee));
        // Set untouched.
        assert!(set.contains(&OutPoint::new(fund.txid(), 0)));
    }

    #[test]
    fn double_spend_within_tx_rejected() {
        let mut set = UtxoSet::new();
        let fund = funding_tx(100_000);
        set.insert_outputs(&fund);
        let tx = Transaction::builder()
            .add_input_with_sizes(fund.txid(), 0, 107, 0)
            .add_input_with_sizes(fund.txid(), 0, 107, 0)
            .pay_to(Address::from_label("r"), Amount::from_sat(100))
            .build();
        // fee() sums the same prevout twice, so apply must catch it.
        assert!(matches!(set.apply_tx(&tx), Err(UtxoError::DoubleSpend(_))));
    }

    #[test]
    fn sequential_double_spend_rejected() {
        let mut set = UtxoSet::new();
        let fund = funding_tx(100_000);
        set.insert_outputs(&fund);
        let tx1 = spend(&fund, 0, 90_000);
        let tx2 = spend(&fund, 0, 80_000);
        assert!(set.apply_tx(&tx1).is_ok());
        assert!(matches!(set.apply_tx(&tx2), Err(UtxoError::MissingInput(_))));
    }

    #[test]
    fn apply_block_collects_fees() {
        let mut set = UtxoSet::new();
        let fund1 = funding_tx(100_000);
        let fund2 = Transaction::builder()
            .add_input_with_sizes(Txid::from([9u8; 32]), 9, 1, 0)
            .pay_to(Address::from_label("f2"), Amount::from_sat(50_000))
            .build();
        set.insert_outputs(&fund1);
        set.insert_outputs(&fund2);
        let t1 = spend(&fund1, 0, 95_000);
        let t2 = spend(&fund2, 0, 49_000);
        let cb = CoinbaseBuilder::new(1)
            .reward(Address::from_label("pool"), Amount::from_btc(6))
            .build();
        let block = Block::assemble(2, BlockHash::ZERO, 0, 0, cb.clone(), vec![t1, t2]);
        let fees = set.apply_block(&block).expect("valid block");
        assert_eq!(fees, Amount::from_sat(6_000));
        assert!(set.contains(&OutPoint::new(cb.txid(), 0)));
    }

    #[test]
    fn check_then_commit_matches_apply() {
        // The read-only check plus blind commit must land the set in the
        // same state (and report the same fees) as the mutating apply.
        let mut applied = UtxoSet::new();
        let fund = funding_tx(100_000);
        applied.insert_outputs(&fund);
        let mut checked = applied.clone();

        let parent = spend(&fund, 0, 90_000);
        let child = spend(&parent, 0, 70_000);
        let cb = CoinbaseBuilder::new(1)
            .reward(Address::from_label("pool"), Amount::from_btc(6))
            .build();
        let block = Block::assemble(2, BlockHash::ZERO, 0, 0, cb, vec![parent, child]);

        let fees_apply = applied.apply_block_detailed(&block).expect("valid block");
        let fees_check = checked.check_block_detailed(&block).expect("valid block");
        assert_eq!(fees_apply, fees_check);
        checked.commit_checked_block(&block);
        assert_eq!(applied.len(), checked.len());
        for (op, _) in applied.utxos.iter() {
            assert_eq!(applied.get(op).map(|o| o.value), checked.get(op).map(|o| o.value));
        }
    }

    #[test]
    fn check_block_reports_same_errors_as_apply() {
        let mut set = UtxoSet::new();
        let fund = funding_tx(100_000);
        set.insert_outputs(&fund);
        let cb = CoinbaseBuilder::new(1)
            .reward(Address::from_label("pool"), Amount::from_btc(6))
            .build();

        // Sequential double spend inside the block: second tx sees a
        // missing input, exactly like the mutating apply.
        let t1 = spend(&fund, 0, 90_000);
        let t2 = spend(&fund, 0, 80_000);
        let block = Block::assemble(2, BlockHash::ZERO, 0, 0, cb.clone(), vec![t1, t2]);
        let check_err = set.check_block_detailed(&block).unwrap_err();
        let apply_err = set.clone().apply_block_detailed(&block).unwrap_err();
        assert_eq!(check_err, apply_err);
        assert!(matches!(check_err, UtxoError::MissingInput(_)));

        // Negative fee.
        let greedy = spend(&fund, 0, 200_000);
        let block = Block::assemble(2, BlockHash::ZERO, 0, 0, cb.clone(), vec![greedy]);
        assert_eq!(set.check_block_detailed(&block), Err(UtxoError::NegativeFee));

        // Intra-tx double spend.
        let dup = Transaction::builder()
            .add_input_with_sizes(fund.txid(), 0, 107, 0)
            .add_input_with_sizes(fund.txid(), 0, 107, 0)
            .pay_to(Address::from_label("r"), Amount::from_sat(100))
            .build();
        let block = Block::assemble(2, BlockHash::ZERO, 0, 0, cb, vec![dup]);
        assert!(matches!(
            set.check_block_detailed(&block),
            Err(UtxoError::DoubleSpend(_))
        ));
        // The read-only check never touched the set.
        assert!(set.contains(&OutPoint::new(fund.txid(), 0)));
    }

    #[test]
    fn chained_spend_within_block_is_valid() {
        // CPFP shape: child spends parent's output inside the same block.
        let mut set = UtxoSet::new();
        let fund = funding_tx(100_000);
        set.insert_outputs(&fund);
        let parent = spend(&fund, 0, 90_000);
        let child = spend(&parent, 0, 70_000);
        let cb = CoinbaseBuilder::new(1)
            .reward(Address::from_label("pool"), Amount::from_btc(6))
            .build();
        let block = Block::assemble(2, BlockHash::ZERO, 0, 0, cb, vec![parent, child]);
        let fees = set.apply_block(&block).expect("valid block");
        assert_eq!(fees, Amount::from_sat(10_000 + 20_000));
    }
}
