//! Stateless and contextual block validity checks.

use crate::amount::Amount;
use crate::block::Block;
use crate::params::Params;
use crate::transaction::OutPoint;
use crate::utxo::{UtxoError, UtxoSet};
use std::collections::HashSet;
use std::fmt;

/// Reasons a block fails validation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ValidationError {
    /// First transaction is not a coinbase, or a coinbase appears later.
    BadCoinbasePlacement,
    /// The header's merkle root does not match the transactions.
    BadMerkleRoot,
    /// Total block weight exceeds the consensus limit.
    OversizedBlock {
        /// The offending weight.
        weight: u64,
        /// The consensus limit.
        limit: u64,
    },
    /// Two transactions in the block spend the same output.
    DuplicateSpend(OutPoint),
    /// The same transaction appears twice.
    DuplicateTx,
    /// Coinbase claims more than subsidy plus fees.
    ExcessCoinbaseValue {
        /// What the coinbase claims.
        claimed: Amount,
        /// Subsidy plus collected fees.
        allowed: Amount,
    },
    /// A body transaction failed UTXO rules.
    Utxo(UtxoError),
}

impl fmt::Display for ValidationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValidationError::BadCoinbasePlacement => write!(f, "bad coinbase placement"),
            ValidationError::BadMerkleRoot => write!(f, "merkle root mismatch"),
            ValidationError::OversizedBlock { weight, limit } => {
                write!(f, "block weight {weight} exceeds limit {limit}")
            }
            ValidationError::DuplicateSpend(op) => {
                write!(f, "duplicate spend of {}:{}", op.txid, op.vout)
            }
            ValidationError::DuplicateTx => write!(f, "duplicate transaction"),
            ValidationError::ExcessCoinbaseValue { claimed, allowed } => {
                write!(f, "coinbase claims {claimed} but only {allowed} allowed")
            }
            ValidationError::Utxo(e) => write!(f, "utxo error: {e}"),
        }
    }
}

impl std::error::Error for ValidationError {}

impl From<UtxoError> for ValidationError {
    fn from(e: UtxoError) -> Self {
        ValidationError::Utxo(e)
    }
}

/// Checks that hold without chain context: coinbase placement, merkle
/// commitment, weight limit, duplicate txids, intra-block conflicting spends.
pub fn check_block_stateless(block: &Block, params: &Params) -> Result<(), ValidationError> {
    if block.coinbase().is_none() {
        return Err(ValidationError::BadCoinbasePlacement);
    }
    if block.body().iter().any(|t| t.is_coinbase()) {
        return Err(ValidationError::BadCoinbasePlacement);
    }
    if block.computed_merkle_root() != block.header.merkle_root {
        return Err(ValidationError::BadMerkleRoot);
    }
    let weight = block.total_weight();
    if weight > params.max_block_weight {
        return Err(ValidationError::OversizedBlock { weight, limit: params.max_block_weight });
    }
    let mut txids = HashSet::with_capacity(block.transactions.len());
    for tx in &block.transactions {
        if !txids.insert(tx.txid()) {
            return Err(ValidationError::DuplicateTx);
        }
    }
    let mut spends = HashSet::new();
    for tx in block.body() {
        for input in tx.inputs() {
            if !spends.insert(input.prevout) {
                return Err(ValidationError::DuplicateSpend(input.prevout));
            }
        }
    }
    Ok(())
}

/// Validates `block` against `utxos` at `height`, applying it on success and
/// returning each body transaction's fee in block order. On failure `utxos`
/// is left unchanged.
pub fn connect_block(
    block: &Block,
    utxos: &mut UtxoSet,
    height: u64,
    params: &Params,
) -> Result<Vec<Amount>, ValidationError> {
    check_block_stateless(block, params)?;
    // Validate read-only against the live set plus an in-block overlay, so
    // failures cannot corrupt it — without cloning the whole UTXO map the
    // way the old trial-apply did.
    let tx_fees = utxos.check_block_detailed(block)?;
    let fees: Amount = tx_fees.iter().copied().sum();
    let coinbase = block.coinbase().expect("checked by stateless validation");
    let allowed = params.subsidy_at(height) + fees;
    if coinbase.output_value() > allowed {
        return Err(ValidationError::ExcessCoinbaseValue {
            claimed: coinbase.output_value(),
            allowed,
        });
    }
    utxos.commit_checked_block(block);
    Ok(tx_fees)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::address::Address;
    use crate::block::BlockHash;
    use crate::coinbase::CoinbaseBuilder;
    use crate::transaction::{Transaction, TxIn};

    fn params() -> Params {
        Params::mainnet()
    }

    fn coinbase(height: u64, value: Amount) -> Transaction {
        CoinbaseBuilder::new(height)
            .reward(Address::from_label("pool"), value)
            .build()
    }

    fn funded_set() -> (UtxoSet, Transaction) {
        let mut set = UtxoSet::new();
        let fund = Transaction::builder()
            .add_input(TxIn::new(crate::transaction::OutPoint::NULL))
            .pay_to(Address::from_label("funder"), Amount::from_sat(1_000_000))
            .build();
        set.insert_outputs(&fund);
        (set, fund)
    }

    fn spend(from: &Transaction, out_value: u64) -> Transaction {
        Transaction::builder()
            .add_input_with_sizes(from.txid(), 0, 107, 0)
            .pay_to(Address::from_label("r"), Amount::from_sat(out_value))
            .build()
    }

    #[test]
    fn valid_block_connects() {
        let (mut set, fund) = funded_set();
        let tx = spend(&fund, 990_000);
        let block = Block::assemble(
            2,
            BlockHash::ZERO,
            0,
            0,
            coinbase(0, Amount::from_btc(50) + Amount::from_sat(10_000)),
            vec![tx],
        );
        let fees = connect_block(&block, &mut set, 0, &params()).expect("valid");
        assert_eq!(fees, vec![Amount::from_sat(10_000)]);
    }

    #[test]
    fn missing_coinbase_rejected() {
        let (mut set, fund) = funded_set();
        let tx = spend(&fund, 990_000);
        // Assemble with a "coinbase" that is not actually a coinbase.
        let not_cb = spend(&fund, 1_000);
        let block = Block::assemble(2, BlockHash::ZERO, 0, 0, not_cb, vec![tx]);
        assert_eq!(
            connect_block(&block, &mut set, 0, &params()),
            Err(ValidationError::BadCoinbasePlacement)
        );
    }

    #[test]
    fn tampered_merkle_rejected() {
        let (mut set, fund) = funded_set();
        let tx = spend(&fund, 990_000);
        let mut block =
            Block::assemble(2, BlockHash::ZERO, 0, 0, coinbase(0, Amount::from_btc(50)), Vec::<Transaction>::new());
        // Smuggle in a transaction without recomputing the root.
        block.transactions.push(tx.into());
        assert_eq!(
            connect_block(&block, &mut set, 0, &params()),
            Err(ValidationError::BadMerkleRoot)
        );
    }

    #[test]
    fn greedy_coinbase_rejected_and_set_untouched() {
        let (mut set, fund) = funded_set();
        let before = set.len();
        let tx = spend(&fund, 990_000);
        let block = Block::assemble(
            2,
            BlockHash::ZERO,
            0,
            0,
            coinbase(0, Amount::from_btc(51)), // subsidy is 50, fee 0.0001
            vec![tx],
        );
        assert!(matches!(
            connect_block(&block, &mut set, 0, &params()),
            Err(ValidationError::ExcessCoinbaseValue { .. })
        ));
        assert_eq!(set.len(), before);
    }

    #[test]
    fn conflicting_spends_rejected() {
        let (mut set, fund) = funded_set();
        let t1 = spend(&fund, 990_000);
        let t2 = spend(&fund, 980_000);
        let block = Block::assemble(
            2,
            BlockHash::ZERO,
            0,
            0,
            coinbase(0, Amount::from_btc(50)),
            vec![t1, t2],
        );
        assert!(matches!(
            connect_block(&block, &mut set, 0, &params()),
            Err(ValidationError::DuplicateSpend(_))
        ));
    }

    #[test]
    fn duplicate_tx_rejected() {
        let (mut set, fund) = funded_set();
        let t1 = spend(&fund, 990_000);
        let block = Block::assemble(
            2,
            BlockHash::ZERO,
            0,
            0,
            coinbase(0, Amount::from_btc(50)),
            vec![t1.clone(), t1],
        );
        assert!(matches!(
            connect_block(&block, &mut set, 0, &params()),
            Err(ValidationError::DuplicateTx)
        ));
    }

    #[test]
    fn oversized_block_rejected() {
        let mut small = params();
        small.max_block_weight = 500; // smaller than coinbase + one tx
        let (mut set, fund) = funded_set();
        let tx = spend(&fund, 990_000);
        let block = Block::assemble(
            2,
            BlockHash::ZERO,
            0,
            0,
            coinbase(0, Amount::from_btc(50)),
            vec![tx],
        );
        assert!(matches!(
            connect_block(&block, &mut set, 0, &small),
            Err(ValidationError::OversizedBlock { .. })
        ));
    }

    #[test]
    fn coinbase_in_body_rejected() {
        let (mut set, _) = funded_set();
        let rogue_cb = coinbase(1, Amount::from_btc(1));
        let block = Block::assemble(
            2,
            BlockHash::ZERO,
            0,
            0,
            coinbase(0, Amount::from_btc(50)),
            vec![rogue_cb],
        );
        assert_eq!(
            connect_block(&block, &mut set, 0, &params()),
            Err(ValidationError::BadCoinbasePlacement)
        );
    }
}
