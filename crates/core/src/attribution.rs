//! Mining-pool attribution from coinbase markers (Figures 2 and 8a).

use crate::index::ChainIndex;
use cn_chain::Address;
use std::collections::{BTreeSet, HashMap};

/// One pool's attributed footprint.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PoolStats {
    /// Pool name (marker tag).
    pub name: String,
    /// Blocks attributed to this pool.
    pub blocks: usize,
    /// Body transactions confirmed by this pool.
    pub transactions: usize,
    /// Reward wallets observed in this pool's coinbases (Figure 8a).
    pub wallets: BTreeSet<Address>,
}

/// The attribution result.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Attribution {
    /// Pools sorted by block count, descending.
    pub pools: Vec<PoolStats>,
    /// Blocks whose coinbase carried no recognizable marker (the paper
    /// failed to identify 1.32 % of 2020 blocks).
    pub unidentified_blocks: usize,
    total_blocks: usize,
}

impl Attribution {
    /// Normalized hash-rate estimate of `pool` — its share of *all* blocks
    /// (the paper's θ₀).
    pub fn hash_rate(&self, pool: &str) -> Option<f64> {
        if self.total_blocks == 0 {
            return None;
        }
        self.pools
            .iter()
            .find(|p| p.name == pool)
            .map(|p| p.blocks as f64 / self.total_blocks as f64)
    }

    /// The `k` largest pools by block count.
    pub fn top(&self, k: usize) -> &[PoolStats] {
        &self.pools[..k.min(self.pools.len())]
    }

    /// Total blocks considered.
    pub fn total_blocks(&self) -> usize {
        self.total_blocks
    }

    /// Combined hash share of the top `k` pools.
    pub fn top_share(&self, k: usize) -> f64 {
        if self.total_blocks == 0 {
            return 0.0;
        }
        self.top(k).iter().map(|p| p.blocks).sum::<usize>() as f64 / self.total_blocks as f64
    }

    /// Looks up a pool by name.
    pub fn pool(&self, name: &str) -> Option<&PoolStats> {
        self.pools.iter().find(|p| p.name == name)
    }
}

/// Attributes every block via its coinbase marker.
pub fn attribute(index: &ChainIndex) -> Attribution {
    let mut map: HashMap<String, PoolStats> = HashMap::new();
    let mut unidentified = 0usize;
    for block in index.blocks() {
        match &block.miner {
            Some(name) => {
                let entry = map.entry(name.clone()).or_insert_with(|| PoolStats {
                    name: name.clone(),
                    blocks: 0,
                    transactions: 0,
                    wallets: BTreeSet::new(),
                });
                entry.blocks += 1;
                entry.transactions += block.txs.len();
                entry.wallets.extend(block.coinbase_wallets.iter().copied());
            }
            None => unidentified += 1,
        }
    }
    let mut pools: Vec<PoolStats> = map.into_values().collect();
    pools.sort_by(|a, b| b.blocks.cmp(&a.blocks).then_with(|| a.name.cmp(&b.name)));
    Attribution { pools, unidentified_blocks: unidentified, total_blocks: index.len() }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cn_chain::{Amount, Block, Chain, CoinbaseBuilder, Params, PoolMarker};

    fn chain_with_miners(markers: &[Option<&str>]) -> Chain {
        let mut chain = Chain::new(Params::mainnet());
        for (h, marker) in markers.iter().enumerate() {
            let mut cb = CoinbaseBuilder::new(h as u64)
                .reward(
                    Address::from_label(&format!("pool:{}:{}", marker.unwrap_or("anon"), h % 2)),
                    Amount::from_btc(50),
                )
                .extra_nonce(h as u64);
            if let Some(m) = marker {
                cb = cb.marker(PoolMarker::new(format!("/{m}/")));
            }
            let block = Block::assemble(
                2,
                chain.tip_hash(),
                (h as u64) * 600,
                h as u32,
                cb.build(),
                Vec::<cn_chain::Transaction>::new(),
            );
            chain.connect(block).expect("valid");
        }
        chain
    }

    #[test]
    fn counts_blocks_and_estimates_hash_rate() {
        let chain = chain_with_miners(&[
            Some("F2Pool"),
            Some("F2Pool"),
            Some("Poolin"),
            Some("F2Pool"),
            None,
        ]);
        let index = ChainIndex::build(&chain);
        let att = attribute(&index);
        assert_eq!(att.total_blocks(), 5);
        assert_eq!(att.unidentified_blocks, 1);
        assert_eq!(att.pools[0].name, "F2Pool");
        assert_eq!(att.pools[0].blocks, 3);
        assert_eq!(att.hash_rate("F2Pool"), Some(0.6));
        assert_eq!(att.hash_rate("Poolin"), Some(0.2));
        assert_eq!(att.hash_rate("Unknown"), None);
    }

    #[test]
    fn wallet_inventory_accumulates_distinct_wallets() {
        // 4 F2Pool blocks rotating 2 wallets -> inventory of 2.
        let chain = chain_with_miners(&[Some("F2Pool"); 4]);
        let index = ChainIndex::build(&chain);
        let att = attribute(&index);
        assert_eq!(att.pool("F2Pool").expect("present").wallets.len(), 2);
    }

    #[test]
    fn top_k_and_share() {
        let chain = chain_with_miners(&[Some("A"), Some("A"), Some("B"), Some("C")]);
        let index = ChainIndex::build(&chain);
        let att = attribute(&index);
        assert_eq!(att.top(2).len(), 2);
        assert_eq!(att.top(2)[0].name, "A");
        assert!((att.top_share(2) - 0.75).abs() < 1e-12);
        assert_eq!(att.top(10).len(), 3);
    }

    #[test]
    fn empty_chain_attribution() {
        let chain = Chain::new(Params::mainnet());
        let att = attribute(&ChainIndex::build(&chain));
        assert_eq!(att.total_blocks(), 0);
        assert_eq!(att.hash_rate("X"), None);
        assert_eq!(att.top_share(3), 0.0);
    }
}
