//! The one-call audit driver: runs the paper's full methodology over a
//! chain and returns typed findings.
//!
//! Everything in this module is a composition of the lower-level pieces
//! (`attribution`, `self_interest`, `prioritization`, `sppe`, `darkfee`,
//! `ppe`); use those directly for custom studies, or this driver for the
//! standard audit.

use crate::attribution::{attribute, Attribution};
use crate::coverage::{SnapshotCoverage, StreamExpectation};
use crate::darkfee::miner_tx_sppes;
use crate::error::AuditError;
use crate::index::ChainIndex;
use crate::ppe::ppe_by_miner;
use crate::prioritization::{differential_prioritization, DifferentialTest};
use crate::self_interest::find_self_interest_transactions;
use crate::sppe::sppe_for_miner;
use cn_chain::{Chain, FastSet, Txid};
use cn_mempool::MempoolSnapshot;
use std::fmt;

/// Audit parameters.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct AuditConfig {
    /// Significance level for the binomial tests (the paper uses 0.001).
    pub alpha: f64,
    /// SPPE cutoff for flagging dark-fee-style placements (paper: 99 %;
    /// scale it down with block size — percentile ranks in an `n`-tx block
    /// cannot exceed `100·(n−1)/n`).
    pub sppe_threshold: f64,
    /// How many top pools (by block count) to test as miners and owners.
    pub top_k: usize,
    /// Minimum self-interest transaction count before an owner is tested
    /// (tiny sets make the binomial test meaningless).
    pub min_c_txs: usize,
}

impl Default for AuditConfig {
    fn default() -> Self {
        AuditConfig { alpha: 0.001, sppe_threshold: 90.0, top_k: 10, min_c_txs: 10 }
    }
}

/// One detected deviation.
#[derive(Clone, Debug, PartialEq)]
pub enum Finding {
    /// A pool accelerates transactions touching its own wallets.
    SelfAcceleration {
        /// The pool.
        miner: String,
        /// The test behind the verdict.
        test: DifferentialTest,
        /// Mean SPPE of the transactions in the pool's blocks.
        sppe: f64,
    },
    /// A pool accelerates another pool's transactions (collusion).
    CollusiveAcceleration {
        /// The accelerating pool.
        miner: String,
        /// The pool whose transactions benefit.
        owner: String,
        /// The test behind the verdict.
        test: DifferentialTest,
        /// Mean SPPE of the owner's transactions in the miner's blocks.
        sppe: f64,
    },
    /// A pool's blocks contain suspiciously placed transactions (possible
    /// dark-fee acceleration); counts only — confirming requires an
    /// acceleration oracle.
    DarkFeeSuspects {
        /// The pool.
        miner: String,
        /// Transactions at or above the SPPE threshold.
        suspects: Vec<Txid>,
    },
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Finding::SelfAcceleration { miner, test, sppe } => write!(
                f,
                "{miner} accelerates its own transactions (x={}/{} blocks, p={:.2e}, SPPE {sppe:.1}%)",
                test.x, test.y, test.p_accelerate
            ),
            Finding::CollusiveAcceleration { miner, owner, test, sppe } => write!(
                f,
                "{miner} accelerates {owner}'s transactions (x={}/{} blocks, p={:.2e}, SPPE {sppe:.1}%)",
                test.x, test.y, test.p_accelerate
            ),
            Finding::DarkFeeSuspects { miner, suspects } => write!(
                f,
                "{miner} has {} suspiciously placed transactions (possible dark fees)",
                suspects.len()
            ),
        }
    }
}

/// The full audit output.
///
/// `PartialEq` compares every field (f64s bit-for-bit via the derived
/// impl), which is how the streaming-equivalence suite pins the online
/// auditor to this batch driver.
#[derive(Clone, Debug, PartialEq)]
pub struct AuditReport {
    /// Pool attribution (blocks, wallets, hash rates).
    pub attribution: Attribution,
    /// Mean PPE per attributed pool.
    pub mean_ppe_by_miner: Vec<(String, f64)>,
    /// Detected deviations, strongest evidence first.
    pub findings: Vec<Finding>,
    /// The configuration used.
    pub config: AuditConfig,
    /// Observation coverage, when the audit consumed a snapshot stream
    /// ([`audit_with_snapshots`]); `None` for chain-only audits, which
    /// have no observation layer to degrade.
    pub coverage: Option<SnapshotCoverage>,
}

impl AuditReport {
    /// True when no deviation was detected.
    pub fn is_clean(&self) -> bool {
        self.findings
            .iter()
            .all(|f| matches!(f, Finding::DarkFeeSuspects { suspects, .. } if suspects.is_empty()))
    }

    /// Findings concerning one pool.
    pub fn findings_for(&self, miner: &str) -> Vec<&Finding> {
        self.findings
            .iter()
            .filter(|f| match f {
                Finding::SelfAcceleration { miner: m, .. }
                | Finding::CollusiveAcceleration { miner: m, .. }
                | Finding::DarkFeeSuspects { miner: m, .. } => m == miner,
            })
            .collect()
    }

    /// Renders a human-readable summary.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "audit over {} blocks, {} attributed pools ({} unidentified blocks)",
            self.attribution.total_blocks(),
            self.attribution.pools.len(),
            self.attribution.unidentified_blocks
        );
        for (miner, ppe) in &self.mean_ppe_by_miner {
            let _ = writeln!(out, "  {miner}: mean PPE {ppe:.2}%");
        }
        if self.findings.is_empty() {
            let _ = writeln!(out, "no deviations detected at alpha = {}", self.config.alpha);
        } else {
            let _ = writeln!(out, "findings:");
            for finding in &self.findings {
                let _ = writeln!(out, "  - {finding}");
            }
        }
        if let Some(cov) = &self.coverage {
            out.push_str(&cov.render());
            if !cov.is_complete() {
                let _ = writeln!(
                    out,
                    "warning: degraded observation — absence of findings is weak evidence"
                );
            }
        }
        out
    }
}

/// Runs the standard audit: attribution, per-miner PPE, the §5.1/§5.2
/// self-interest and collusion tests over the top pools, and the §5.4.2
/// SPPE sweep.
pub fn audit_chain(chain: &Chain, index: &ChainIndex, config: AuditConfig) -> AuditReport {
    let attribution = attribute(index);
    let self_map = find_self_interest_transactions(chain, &attribution);
    audit_attributed(index, attribution, &self_map, config)
}

/// The audit core shared by [`audit_chain`] and the streaming auditor:
/// everything downstream of attribution and self-interest classification.
/// Callers that maintain those two incrementally (no `Chain` in hand) feed
/// them in here and get a report identical to the batch driver's.
pub fn audit_attributed(
    index: &ChainIndex,
    attribution: Attribution,
    self_map: &crate::self_interest::SelfInterestMap,
    config: AuditConfig,
) -> AuditReport {
    // Per-miner PPE (Figure 7b).
    let ppe = ppe_by_miner(index);
    let mut mean_ppe_by_miner: Vec<(String, f64)> = attribution
        .top(config.top_k)
        .iter()
        .filter_map(|p| {
            ppe.get(&p.name).map(|values| {
                (p.name.clone(), values.iter().sum::<f64>() / values.len().max(1) as f64)
            })
        })
        .collect();
    // total_cmp: a NaN PPE (conceivable on degraded inputs) must not
    // panic the whole audit; it sorts to a stable position instead.
    mean_ppe_by_miner.sort_by(|a, b| b.1.total_cmp(&a.1));

    let mut findings = Vec::new();
    // Differential prioritization of every top owner's transactions by
    // every top miner.
    for owner in attribution.top(config.top_k) {
        let Some(c_txids) = self_map.of(&owner.name) else { continue };
        if c_txids.len() < config.min_c_txs {
            continue;
        }
        let c_txids: FastSet<Txid> = c_txids.clone();
        for miner in attribution.top(config.top_k) {
            let Some(theta0) = attribution.hash_rate(&miner.name) else { continue };
            let test = differential_prioritization(index, &c_txids, &miner.name, theta0);
            if !test.accelerates_at(config.alpha) {
                continue;
            }
            let sppe = sppe_for_miner(index, &c_txids, &miner.name).unwrap_or(0.0);
            if owner.name == miner.name {
                findings.push(Finding::SelfAcceleration { miner: miner.name.clone(), test, sppe });
            } else {
                findings.push(Finding::CollusiveAcceleration {
                    miner: miner.name.clone(),
                    owner: owner.name.clone(),
                    test,
                    sppe,
                });
            }
        }
    }
    // Dark-fee suspects per miner.
    for miner in attribution.top(config.top_k) {
        let suspects: Vec<Txid> = miner_tx_sppes(index, &miner.name)
            .into_iter()
            .filter(|(_, s)| *s >= config.sppe_threshold)
            .map(|(t, _)| t)
            .collect();
        if !suspects.is_empty() {
            findings.push(Finding::DarkFeeSuspects { miner: miner.name.clone(), suspects });
        }
    }
    // Strongest statistical evidence first.
    findings.sort_by(|a, b| {
        let p = |f: &Finding| match f {
            Finding::SelfAcceleration { test, .. }
            | Finding::CollusiveAcceleration { test, .. } => test.p_accelerate,
            Finding::DarkFeeSuspects { .. } => 1.0,
        };
        p(a).total_cmp(&p(b))
    });

    AuditReport { attribution, mean_ppe_by_miner, findings, config, coverage: None }
}

/// Runs the standard audit over a chain *and* its observer snapshot
/// stream, degrading gracefully when the stream is damaged.
///
/// The returned report always carries a [`SnapshotCoverage`] block; its
/// confidence quantifies how much observation survived. Errors:
///
/// * [`AuditError::EmptySnapshotStream`] — nothing was observed at all;
///   a "snapshot-based" audit over zero snapshots would be the chain-only
///   audit wearing a costume.
/// * [`AuditError::InsufficientCoverage`] — coverage fell below
///   `expectation.min_coverage`.
///
/// A stream with gaps, truncated dumps, or no detailed snapshots at all
/// still audits (the chain-side tests don't need snapshots) — but the
/// report says exactly how blind the observer was.
pub fn audit_with_snapshots(
    chain: &Chain,
    index: &ChainIndex,
    snapshots: &[MempoolSnapshot],
    expectation: StreamExpectation,
    config: AuditConfig,
) -> Result<AuditReport, AuditError> {
    if snapshots.is_empty() {
        return Err(AuditError::EmptySnapshotStream);
    }
    let coverage = SnapshotCoverage::assess(snapshots, expectation.windows, expectation.detailed)
        .with_chain(snapshots, index);
    let confidence = coverage.confidence();
    if confidence < expectation.min_coverage {
        return Err(AuditError::InsufficientCoverage {
            coverage: confidence,
            required: expectation.min_coverage,
        });
    }
    let mut report = audit_chain(chain, index, config);
    report.coverage = Some(coverage);
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cn_chain::{Address, Amount, Block, CoinbaseBuilder, Params, PoolMarker, Transaction};
    use cn_mempool::SnapshotEntry;

    /// A chain where pool "Cheat" always tops its blocks with a transfer
    /// from its own wallet at the lowest fee rate, while "Fair" follows
    /// the norm. 10 Cheat blocks, 10 Fair blocks.
    fn rigged_chain() -> (Chain, ChainIndex) {
        let mut chain = Chain::new(Params::mainnet());
        let cheat_wallet = Address::from_label("pool:Cheat:0");
        // Seed enough funding outputs, including some to the cheat wallet.
        let mut fund = Transaction::builder().add_input(cn_chain::TxIn::new(cn_chain::OutPoint::NULL));
        for _ in 0..40 {
            fund = fund.pay_to(Address::from_label("u"), Amount::from_sat(2_000_000));
        }
        for _ in 40..60 {
            fund = fund.pay_to(cheat_wallet, Amount::from_sat(2_000_000));
        }
        let fund = fund.build();
        chain.seed_utxos(&fund);

        let mut user_vout = 0u32;
        let mut cheat_vout = 40u32;
        for h in 0..20u64 {
            let cheating = h % 2 == 0;
            let name = if cheating { "Cheat" } else { "Fair" };
            let mut body = Vec::new();
            let mut fees = Amount::ZERO;
            if cheating {
                // Own transfer first, lowest fee in the block.
                let own = Transaction::builder()
                    .add_input_with_sizes(fund.txid(), cheat_vout, 107, 0)
                    .pay_to(Address::from_label("dest"), Amount::from_sat(1_999_000))
                    .build();
                cheat_vout += 1;
                fees += Amount::from_sat(1_000);
                body.push(own);
            }
            // Two well-paying user transactions.
            for _ in 0..2 {
                let tx = Transaction::builder()
                    .add_input_with_sizes(fund.txid(), user_vout, 107, 0)
                    .pay_to(Address::from_label("r"), Amount::from_sat(1_900_000))
                    .build();
                user_vout += 1;
                fees += Amount::from_sat(100_000);
                body.push(tx);
            }
            let cb = CoinbaseBuilder::new(h)
                .marker(PoolMarker::new(format!("/{name}/")))
                .reward(
                    if cheating { cheat_wallet } else { Address::from_label("pool:Fair:0") },
                    Amount::from_btc(50) + fees,
                )
                .extra_nonce(h)
                .build();
            let block = Block::assemble(2, chain.tip_hash(), h * 600, h as u32, cb, body);
            chain.connect(block).expect("valid");
        }
        let index = ChainIndex::build(&chain);
        (chain, index)
    }

    #[test]
    fn audit_flags_exactly_the_cheater() {
        let (chain, index) = rigged_chain();
        let config = AuditConfig { alpha: 0.01, sppe_threshold: 30.0, top_k: 5, min_c_txs: 3 };
        let report = audit_chain(&chain, &index, config);
        assert!(!report.is_clean());
        // Cheat must be flagged for self-acceleration.
        let cheat_findings = report.findings_for("Cheat");
        assert!(
            cheat_findings
                .iter()
                .any(|f| matches!(f, Finding::SelfAcceleration { sppe, .. } if *sppe > 20.0)),
            "findings: {:?}",
            report.findings
        );
        // Fair must have no acceleration finding.
        assert!(report
            .findings_for("Fair")
            .iter()
            .all(|f| matches!(f, Finding::DarkFeeSuspects { .. })));
        // The render mentions the cheater.
        assert!(report.render().contains("Cheat"));
    }

    #[test]
    fn clean_chain_audits_clean() {
        // All-Fair variant: reuse the rigged chain's Fair blocks only by
        // auditing with a huge alpha-proof threshold instead: simpler —
        // build a 6-block honest chain.
        let mut chain = Chain::new(Params::mainnet());
        let mut fund = Transaction::builder().add_input(cn_chain::TxIn::new(cn_chain::OutPoint::NULL));
        for _ in 0..12 {
            fund = fund.pay_to(Address::from_label("u"), Amount::from_sat(2_000_000));
        }
        let fund = fund.build();
        chain.seed_utxos(&fund);
        for h in 0..6u64 {
            let t1 = Transaction::builder()
                .add_input_with_sizes(fund.txid(), (h * 2) as u32, 107, 0)
                .pay_to(Address::from_label("a"), Amount::from_sat(1_800_000))
                .build();
            let t2 = Transaction::builder()
                .add_input_with_sizes(fund.txid(), (h * 2 + 1) as u32, 107, 0)
                .pay_to(Address::from_label("b"), Amount::from_sat(1_900_000))
                .build();
            let fees = Amount::from_sat(200_000 + 100_000);
            let cb = CoinbaseBuilder::new(h)
                .marker(PoolMarker::new("/Solo/"))
                .reward(Address::from_label("pool:Solo:0"), Amount::from_btc(50) + fees)
                .extra_nonce(h)
                .build();
            // Norm order: t1 (200k fee) vs t2 (100k): same size, t1 first.
            let block = Block::assemble(2, chain.tip_hash(), h * 600, h as u32, cb, vec![t1, t2]);
            chain.connect(block).expect("valid");
        }
        let index = ChainIndex::build(&chain);
        let report = audit_chain(&chain, &index, AuditConfig::default());
        assert!(report.is_clean(), "findings: {:?}", report.findings);
        assert!(report.render().contains("no deviations"));
    }

    #[test]
    fn default_config_matches_paper() {
        let c = AuditConfig::default();
        assert_eq!(c.alpha, 0.001);
        assert_eq!(c.top_k, 10);
    }

    #[test]
    fn snapshot_audit_rejects_empty_stream() {
        let (chain, index) = rigged_chain();
        let exp = StreamExpectation::from_run(12_000, 15, 4);
        let err = audit_with_snapshots(&chain, &index, &[], exp, AuditConfig::default());
        assert_eq!(err.expect_err("empty stream must error"), AuditError::EmptySnapshotStream);
    }

    #[test]
    fn snapshot_audit_reports_degraded_coverage() {
        let (chain, index) = rigged_chain();
        // One lone detailed snapshot where ~800 windows were expected.
        let snap = MempoolSnapshot::from_entries(
            15,
            vec![SnapshotEntry {
                txid: cn_chain::Txid::from([9; 32]),
                received: 10,
                fee: Amount::from_sat(1_000),
                vsize: 100,
                has_unconfirmed_parent: false,
            }],
        );
        let exp = StreamExpectation::from_run(12_000, 15, 4);
        let report =
            audit_with_snapshots(&chain, &index, std::slice::from_ref(&snap), exp, AuditConfig::default())
                .expect("degrades, not errors");
        let cov = report.coverage.expect("coverage present");
        assert!(cov.confidence() < 1.0);
        assert!(report.render().contains("coverage:"));
        assert!(report.render().contains("degraded observation"));

        // The same stream fails a 50 % coverage floor.
        let strict = exp.with_min_coverage(0.5);
        let err = audit_with_snapshots(&chain, &index, &[snap], strict, AuditConfig::default());
        assert!(matches!(err, Err(AuditError::InsufficientCoverage { .. })));
    }
}
