//! Mempool congestion analysis (§4.1, Figures 3, 4b–c, 9, 11).

use crate::delay::first_seen_times;
use crate::error::AuditError;
use cn_chain::{FastMap, Timestamp, Txid};
use cn_mempool::MempoolSnapshot;

/// The Mempool-size time series in vbytes (Figures 3c and 9).
pub fn size_series(snapshots: &[MempoolSnapshot]) -> Vec<(Timestamp, u64)> {
    snapshots.iter().map(|s| (s.time, s.total_vsize())).collect()
}

/// Checked variant of [`size_series`]: an empty stream is an error, not
/// an empty series — a congestion analysis over zero windows says
/// nothing, and downstream means over it would be 0/0.
pub fn size_series_checked(
    snapshots: &[MempoolSnapshot],
) -> Result<Vec<(Timestamp, u64)>, AuditError> {
    if snapshots.is_empty() {
        return Err(AuditError::EmptySnapshotStream);
    }
    Ok(size_series(snapshots))
}

/// Fraction of snapshots whose backlog exceeds one block capacity — the
/// paper's headline congestion statistic (75 % for 𝒜, 92 % for ℬ).
pub fn congested_fraction(snapshots: &[MempoolSnapshot], block_capacity: u64) -> f64 {
    if snapshots.is_empty() {
        return 0.0;
    }
    let congested = snapshots.iter().filter(|s| s.total_vsize() > block_capacity).count();
    congested as f64 / snapshots.len() as f64
}

/// Per-transaction fee rates grouped by the congestion bin *at first
/// observation* (Figures 4c and 11): bins 0–3 as defined by
/// [`MempoolSnapshot::congestion_bin`].
pub fn fee_rates_by_congestion(
    snapshots: &[MempoolSnapshot],
    block_capacity: u64,
) -> [Vec<f64>; 4] {
    let first = first_seen_times(snapshots);
    let mut assigned: FastMap<Txid, (usize, f64)> = FastMap::default();
    for snap in snapshots {
        let bin = snap.congestion_bin(block_capacity);
        for entry in snap.entries.iter() {
            // The first snapshot containing the tx defines its bin.
            if first.get(&entry.txid).copied() == Some(entry.received) {
                assigned
                    .entry(entry.txid)
                    .or_insert((bin, entry.fee_rate().btc_per_kb()));
            }
        }
    }
    let mut out: [Vec<f64>; 4] = Default::default();
    for (_, (bin, rate)) in assigned {
        out[bin].push(rate);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use cn_chain::Amount;
    use cn_mempool::SnapshotEntry;

    fn entry(seed: u8, received: Timestamp, vsize: u64, fee: u64) -> SnapshotEntry {
        SnapshotEntry {
            txid: Txid::from([seed; 32]),
            received,
            fee: Amount::from_sat(fee),
            vsize,
            has_unconfirmed_parent: false,
        }
    }

    #[test]
    fn size_series_extracts_totals() {
        let snaps = vec![
            MempoolSnapshot::from_entries(15, vec![entry(1, 10, 400, 800)]),
            MempoolSnapshot::from_entries(30, vec![]),
        ];
        assert_eq!(size_series(&snaps), vec![(15, 400), (30, 0)]);
    }

    #[test]
    fn congested_fraction_counts_backlog() {
        let cap = 1_000u64;
        let snaps = vec![
            MempoolSnapshot::from_entries(0, vec![entry(1, 0, 1_500, 100)]),
            MempoolSnapshot::from_entries(15, vec![entry(2, 5, 500, 100)]),
            MempoolSnapshot::from_entries(30, vec![entry(3, 20, 2_000, 100)]),
            MempoolSnapshot::from_entries(45, vec![]),
        ];
        assert!((congested_fraction(&snaps, cap) - 0.5).abs() < 1e-12);
        assert_eq!(congested_fraction(&[], cap), 0.0);
    }

    #[test]
    fn fee_rates_grouped_by_first_seen_bin() {
        let cap = 1_000u64;
        // Snapshot 1: uncongested (bin 0) contains tx 1.
        // Snapshot 2: heavily congested (bin 3) introduces tx 2.
        let snaps = vec![
            MempoolSnapshot::from_entries(0, vec![entry(1, 0, 500, 1_000)]),
            MempoolSnapshot::from_entries(
                15,
                vec![entry(1, 0, 500, 1_000), entry(2, 10, 5_000, 50_000)],
            ),
        ];
        let bins = fee_rates_by_congestion(&snaps, cap);
        assert_eq!(bins[0].len(), 1, "tx1 first seen uncongested");
        assert_eq!(bins[3].len(), 1, "tx2 first seen at bin 3");
        assert!(bins[1].is_empty() && bins[2].is_empty());
    }
}
