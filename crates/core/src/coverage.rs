//! Observation-coverage accounting: how much of the expected snapshot
//! stream actually arrived, and how much of the chain it saw.
//!
//! Every audit over snapshots carries one of these blocks. The paper's
//! own datasets have exactly this problem — dataset 𝒜's node restarted,
//! dataset ℬ covers a different span — and an audit that silently treats
//! a gappy stream as complete understates violation counts and commit
//! delays without any visible warning. Coverage makes the damage a
//! first-class, reportable number.

use crate::index::ChainIndex;
use cn_mempool::MempoolSnapshot;
use cn_chain::FastSet;

/// How complete a snapshot stream is relative to what the observer was
/// supposed to record, plus how much of the confirmed chain it saw.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SnapshotCoverage {
    /// Snapshot windows the observer was scheduled to record.
    pub expected_windows: u64,
    /// Windows actually present in the stream.
    pub present_windows: u64,
    /// Detailed (per-transaction) snapshots expected.
    pub expected_detailed: u64,
    /// Detailed snapshots present (including truncated ones).
    pub present_detailed: u64,
    /// Present detailed snapshots whose dump was cut off partway.
    pub truncated_detailed: u64,
    /// Windows recorded while the observer's view was known-compromised
    /// (e.g. inside an eclipse window). The rows are real observations,
    /// but the backlog they show is frozen, so confidence discounts them.
    pub degraded_windows: u64,
    /// Distinct transactions appearing in any detailed snapshot.
    pub txs_observed: usize,
    /// Transactions confirmed on the audited chain (0 when no chain was
    /// supplied).
    pub txs_confirmed: usize,
    /// Confirmed transactions the observer also saw pending.
    pub confirmed_observed: usize,
}

impl SnapshotCoverage {
    /// Measures a stream against the expected window counts. Chain-side
    /// fields stay zero; chain them in with
    /// [`SnapshotCoverage::with_chain`].
    pub fn assess(
        snapshots: &[MempoolSnapshot],
        expected_windows: u64,
        expected_detailed: u64,
    ) -> SnapshotCoverage {
        let present_windows = snapshots.len() as u64;
        let detailed: Vec<&MempoolSnapshot> =
            snapshots.iter().filter(|s| s.is_detailed()).collect();
        let truncated_detailed = detailed.iter().filter(|s| s.is_truncated()).count() as u64;
        let degraded_windows = snapshots.iter().filter(|s| s.is_degraded()).count() as u64;
        let observed: FastSet<_> =
            detailed.iter().flat_map(|s| s.entries.iter().map(|e| e.txid)).collect();
        SnapshotCoverage {
            expected_windows,
            present_windows,
            expected_detailed,
            present_detailed: detailed.len() as u64,
            truncated_detailed,
            degraded_windows,
            txs_observed: observed.len(),
            txs_confirmed: 0,
            confirmed_observed: 0,
        }
    }

    /// Fills the chain-side fields: how many confirmed transactions the
    /// stream saw pending before they committed.
    pub fn with_chain(mut self, snapshots: &[MempoolSnapshot], index: &ChainIndex) -> Self {
        let observed: FastSet<_> = snapshots
            .iter()
            .filter(|s| s.is_detailed())
            .flat_map(|s| s.entries.iter().map(|e| e.txid))
            .collect();
        self.txs_confirmed = index.tx_count();
        self.confirmed_observed = observed.iter().filter(|t| index.record(t).is_some()).count();
        self
    }

    /// Fraction of expected snapshot windows present, in `[0, 1]`.
    /// Strictly monotone in the number of windows removed from a stream.
    pub fn window_fraction(&self) -> f64 {
        ratio(self.present_windows, self.expected_windows)
    }

    /// Fraction of expected detailed snapshots present *untruncated* —
    /// the share of per-transaction observation capacity that survived.
    pub fn detail_fraction(&self) -> f64 {
        ratio(self.present_detailed - self.truncated_detailed, self.expected_detailed)
    }

    /// Fraction of expected windows that arrived with a healthy
    /// (non-degraded) view. Equals [`SnapshotCoverage::window_fraction`]
    /// when no window was degraded, so streams recorded before degraded
    /// stamping existed score identically.
    pub fn undegraded_fraction(&self) -> f64 {
        ratio(self.present_windows.saturating_sub(self.degraded_windows), self.expected_windows)
    }

    /// Fraction of confirmed transactions the observer saw pending
    /// (1.0 when no chain was joined — nothing contradicts the stream).
    pub fn confirmed_observed_fraction(&self) -> f64 {
        if self.txs_confirmed == 0 {
            1.0
        } else {
            self.confirmed_observed as f64 / self.txs_confirmed as f64
        }
    }

    /// The single confidence number a report leads with: the weakest of
    /// the window, undegraded-window, detail, and chain-visibility
    /// fractions. 1.0 means the stream is complete; anything lower flags
    /// a degraded audit.
    pub fn confidence(&self) -> f64 {
        self.window_fraction()
            .min(self.undegraded_fraction())
            .min(self.detail_fraction())
            .min(self.confirmed_observed_fraction())
    }

    /// True when nothing expected is missing or damaged.
    pub fn is_complete(&self) -> bool {
        self.present_windows >= self.expected_windows
            && self.present_detailed >= self.expected_detailed
            && self.truncated_detailed == 0
            && self.degraded_windows == 0
    }

    /// Renders the block appended to audit reports.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "coverage: {}/{} snapshot windows ({:.1}%), {}/{} detailed ({} truncated)",
            self.present_windows,
            self.expected_windows,
            self.window_fraction() * 100.0,
            self.present_detailed,
            self.expected_detailed,
            self.truncated_detailed,
        );
        // Mentioned only when present, so reports over healthy streams
        // render byte-identically to before degraded stamping existed.
        if self.degraded_windows > 0 {
            let _ = writeln!(
                out,
                "          {} windows recorded with a degraded (eclipsed) view",
                self.degraded_windows,
            );
        }
        let _ = writeln!(
            out,
            "          {} txs observed pending; {}/{} confirmed txs seen before commit ({:.1}%)",
            self.txs_observed,
            self.confirmed_observed,
            self.txs_confirmed,
            self.confirmed_observed_fraction() * 100.0,
        );
        let _ = writeln!(out, "confidence: {:.3}", self.confidence());
        out
    }
}

/// What a snapshot stream was supposed to contain — the denominator of
/// every coverage fraction — plus the caller's tolerance for damage.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct StreamExpectation {
    /// Snapshot windows the observer was scheduled to record.
    pub windows: u64,
    /// How many of those were scheduled to carry per-transaction rows.
    pub detailed: u64,
    /// Confidence floor: below this, an audit refuses to report instead
    /// of degrading (`0.0` = always degrade gracefully).
    pub min_coverage: f64,
}

impl StreamExpectation {
    /// Derives the expectation from a run's schedule: snapshots at
    /// `interval_secs`, `2·interval_secs`, … strictly before
    /// `duration_secs`, every `detail_every`-th one detailed.
    pub fn from_run(duration_secs: u64, interval_secs: u64, detail_every: u64) -> StreamExpectation {
        let windows = duration_secs.div_ceil(interval_secs.max(1)).saturating_sub(1);
        let detailed = windows.div_ceil(detail_every.max(1));
        StreamExpectation { windows, detailed, min_coverage: 0.0 }
    }

    /// Sets the confidence floor.
    pub fn with_min_coverage(mut self, floor: f64) -> StreamExpectation {
        self.min_coverage = floor;
        self
    }
}

fn ratio(num: u64, den: u64) -> f64 {
    if den == 0 {
        1.0
    } else {
        (num as f64 / den as f64).min(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cn_chain::{Amount, Txid};
    use cn_mempool::SnapshotEntry;

    fn detailed(time: u64, ids: &[u8]) -> MempoolSnapshot {
        MempoolSnapshot::from_entries(
            time,
            ids.iter()
                .map(|&i| SnapshotEntry {
                    txid: Txid::from([i; 32]),
                    received: time,
                    fee: Amount::from_sat(1_000),
                    vsize: 100,
                    has_unconfirmed_parent: false,
                })
                .collect(),
        )
    }

    #[test]
    fn complete_stream_scores_full_confidence() {
        let snaps = vec![detailed(15, &[1]), MempoolSnapshot::light(30, 1, 100), detailed(45, &[1, 2])];
        let cov = SnapshotCoverage::assess(&snaps, 3, 2);
        assert!(cov.is_complete());
        assert_eq!(cov.window_fraction(), 1.0);
        assert_eq!(cov.detail_fraction(), 1.0);
        assert_eq!(cov.confidence(), 1.0);
        assert_eq!(cov.txs_observed, 2);
    }

    #[test]
    fn gaps_lower_window_fraction() {
        let snaps = vec![detailed(15, &[1]), detailed(45, &[2])];
        let cov = SnapshotCoverage::assess(&snaps, 4, 4);
        assert!(!cov.is_complete());
        assert_eq!(cov.window_fraction(), 0.5);
        assert!(cov.confidence() <= 0.5);
    }

    #[test]
    fn truncation_lowers_detail_fraction_only() {
        let snaps = vec![detailed(15, &[1, 2, 3, 4]).truncate_detail(0.5), detailed(30, &[5])];
        let cov = SnapshotCoverage::assess(&snaps, 2, 2);
        assert_eq!(cov.window_fraction(), 1.0);
        assert_eq!(cov.truncated_detailed, 1);
        assert_eq!(cov.detail_fraction(), 0.5);
        assert!(!cov.is_complete());
    }

    #[test]
    fn coverage_monotone_under_window_removal() {
        let full: Vec<MempoolSnapshot> = (0..20).map(|i| detailed(15 * (i + 1), &[i as u8])).collect();
        let mut last = f64::INFINITY;
        for removed in 0..full.len() {
            let stream = &full[..full.len() - removed];
            let cov = SnapshotCoverage::assess(stream, 20, 20);
            let c = cov.confidence();
            assert!(c <= last, "confidence rose from {last} to {c} removing {removed}");
            last = c;
        }
    }

    #[test]
    fn degraded_windows_lower_confidence_without_hiding_rows() {
        let snaps = vec![
            detailed(15, &[1]),
            detailed(30, &[2]).mark_degraded(),
            detailed(45, &[3]).mark_degraded(),
            detailed(60, &[4]),
        ];
        let cov = SnapshotCoverage::assess(&snaps, 4, 4);
        assert_eq!(cov.degraded_windows, 2);
        assert_eq!(cov.window_fraction(), 1.0, "degraded windows still count as present");
        assert_eq!(cov.undegraded_fraction(), 0.5);
        assert_eq!(cov.confidence(), 0.5);
        assert!(!cov.is_complete());
        assert_eq!(cov.txs_observed, 4, "degraded rows remain observations");
        let s = cov.render();
        assert!(s.contains("2 windows recorded with a degraded"), "{s}");
        // A healthy stream renders without any degradation line at all.
        let healthy = SnapshotCoverage::assess(&[detailed(15, &[1])], 1, 1);
        assert!(!healthy.render().contains("degraded"));
        assert!(healthy.is_complete());
    }

    #[test]
    fn expectation_matches_run_schedule() {
        // Snapshots at 15, 30, …, < 21 600 s: 1 439 windows, every 4th
        // detailed starting with the first: ceil(1439/4) = 360.
        let exp = StreamExpectation::from_run(21_600, 15, 4);
        assert_eq!(exp.windows, 1_439);
        assert_eq!(exp.detailed, 360);
        assert_eq!(exp.min_coverage, 0.0);
        assert_eq!(exp.with_min_coverage(0.5).min_coverage, 0.5);
    }

    #[test]
    fn render_mentions_the_numbers() {
        let cov = SnapshotCoverage::assess(&[detailed(15, &[1])], 2, 1);
        let s = cov.render();
        assert!(s.contains("1/2"), "{s}");
        assert!(s.contains("confidence"), "{s}");
    }
}
