//! Child-pays-for-parent detection, per the paper's §E definition.

use cn_chain::{Block, FastSet, Txid};

/// Returns the txids in `block` that are CPFP transactions per §E: a
/// transaction is CPFP iff at least one of its inputs spends an output of
/// another transaction included in the *same* block.
pub fn cpfp_txids_in_block(block: &Block) -> FastSet<Txid> {
    let in_block: FastSet<Txid> = block.body().iter().map(|t| t.txid()).collect();
    block
        .body()
        .iter()
        .filter(|t| t.inputs().iter().any(|i| in_block.contains(&i.prevout.txid)))
        .map(|t| t.txid())
        .collect()
}

/// Fraction of body transactions in `block` that are CPFP (0 for an empty
/// block).
pub fn cpfp_fraction(block: &Block) -> f64 {
    let n = block.body().len();
    if n == 0 {
        return 0.0;
    }
    cpfp_txids_in_block(block).len() as f64 / n as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use cn_chain::{Address, Amount, BlockHash, CoinbaseBuilder, Transaction, TxOut};

    fn coinbase() -> Transaction {
        CoinbaseBuilder::new(0)
            .reward(Address::from_label("p"), Amount::from_btc(6))
            .build()
    }

    fn tx(seed: u8) -> Transaction {
        Transaction::builder()
            .add_input_with_sizes([seed; 32].into(), 0, 107, 0)
            .add_output(TxOut::to_address(Amount::from_sat(10_000), Address::from_label("r")))
            .build()
    }

    fn child_of(parent: &Transaction) -> Transaction {
        Transaction::builder()
            .add_input_with_sizes(parent.txid(), 0, 107, 0)
            .add_output(TxOut::to_address(Amount::from_sat(5_000), Address::from_label("c")))
            .build()
    }

    #[test]
    fn detects_same_block_dependency() {
        let a = tx(1);
        let b = child_of(&a);
        let c = tx(2);
        let block = Block::assemble(2, BlockHash::ZERO, 0, 0, coinbase(), vec![a.clone(), b.clone(), c]);
        let cpfp = cpfp_txids_in_block(&block);
        assert_eq!(cpfp, FastSet::from_iter([b.txid()]));
        assert!((cpfp_fraction(&block) - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn cross_block_dependency_is_not_cpfp() {
        let a = tx(1);
        let b = child_of(&a);
        // Parent in an earlier block: b alone in this block is not CPFP.
        let block = Block::assemble(2, BlockHash::ZERO, 0, 0, coinbase(), vec![b]);
        assert!(cpfp_txids_in_block(&block).is_empty());
    }

    #[test]
    fn grandchild_chain_all_flagged_but_root() {
        let a = tx(1);
        let b = child_of(&a);
        let c = child_of(&b);
        let block =
            Block::assemble(2, BlockHash::ZERO, 0, 0, coinbase(), vec![a.clone(), b.clone(), c.clone()]);
        let cpfp = cpfp_txids_in_block(&block);
        assert!(!cpfp.contains(&a.txid()));
        assert!(cpfp.contains(&b.txid()));
        assert!(cpfp.contains(&c.txid()));
    }

    #[test]
    fn coinbase_spend_is_not_cpfp() {
        // Spending the same block's coinbase would be invalid anyway; the
        // coinbase is not part of the body set.
        let block = Block::assemble(2, BlockHash::ZERO, 0, 0, coinbase(), vec![tx(3)]);
        assert!(cpfp_txids_in_block(&block).is_empty());
        assert_eq!(cpfp_fraction(&block), 0.0);
    }

    #[test]
    fn empty_block_fraction_zero() {
        let block = Block::assemble(2, BlockHash::ZERO, 0, 0, coinbase(), Vec::<Transaction>::new());
        assert_eq!(cpfp_fraction(&block), 0.0);
    }
}
