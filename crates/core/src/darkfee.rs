//! Dark-fee acceleration detection via SPPE thresholds (§5.4.2, Table 4).
//!
//! An accelerated transaction is placed near the top of a block its
//! public fee never earned, so its SPPE approaches +100. Sweeping an SPPE
//! threshold against an acceleration oracle (BTC.com's public checker in
//! the paper; simulator ground truth here) reproduces Table 4's
//! precision collapse as the threshold drops.

use crate::index::ChainIndex;
use crate::sppe::block_sppes;
use cn_chain::Txid;

/// One row of Table 4.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SppeThresholdRow {
    /// SPPE cutoff (inclusive).
    pub threshold: f64,
    /// Transactions with SPPE ≥ cutoff in the miner's blocks.
    pub total: usize,
    /// Of those, how many the oracle confirms as accelerated.
    pub accelerated: usize,
}

impl SppeThresholdRow {
    /// Precision at this threshold.
    pub fn precision(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.accelerated as f64 / self.total as f64
        }
    }
}

/// SPPE of every transaction in blocks attributed to `miner`.
pub fn miner_tx_sppes(index: &ChainIndex, miner: &str) -> Vec<(Txid, f64)> {
    let mut out = Vec::new();
    for block in index.blocks() {
        if block.miner.as_deref() != Some(miner) {
            continue;
        }
        out.extend(block_sppes(block));
    }
    out
}

/// Builds the Table 4 sweep: for each threshold, how many of the miner's
/// transactions clear it, and how many of those the oracle confirms.
pub fn sppe_threshold_table(
    index: &ChainIndex,
    miner: &str,
    thresholds: &[f64],
    is_accelerated: &dyn Fn(&Txid) -> bool,
) -> Vec<SppeThresholdRow> {
    let sppes = miner_tx_sppes(index, miner);
    thresholds
        .iter()
        .map(|&threshold| {
            let mut total = 0usize;
            let mut accelerated = 0usize;
            for (txid, sppe) in &sppes {
                if *sppe >= threshold {
                    total += 1;
                    if is_accelerated(txid) {
                        accelerated += 1;
                    }
                }
            }
            SppeThresholdRow { threshold, total, accelerated }
        })
        .collect()
}

/// The detector itself: transactions in the miner's blocks with
/// SPPE ≥ `threshold`, flagged as likely accelerated.
pub fn detect_accelerated(index: &ChainIndex, miner: &str, threshold: f64) -> Vec<Txid> {
    miner_tx_sppes(index, miner)
        .into_iter()
        .filter(|(_, s)| *s >= threshold)
        .map(|(t, _)| t)
        .collect()
}

/// Precision/recall of the detector against ground truth over a miner's
/// blocks.
pub fn score_detector(
    index: &ChainIndex,
    miner: &str,
    threshold: f64,
    truth: &dyn Fn(&Txid) -> bool,
) -> (f64, f64) {
    let sppes = miner_tx_sppes(index, miner);
    let mut tp = 0usize;
    let mut fp = 0usize;
    let mut fn_ = 0usize;
    for (txid, sppe) in &sppes {
        let flagged = *sppe >= threshold;
        let actual = truth(txid);
        match (flagged, actual) {
            (true, true) => tp += 1,
            (true, false) => fp += 1,
            (false, true) => fn_ += 1,
            (false, false) => {}
        }
    }
    let precision = if tp + fp == 0 { 0.0 } else { tp as f64 / (tp + fp) as f64 };
    let recall = if tp + fn_ == 0 { 0.0 } else { tp as f64 / (tp + fn_) as f64 };
    (precision, recall)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::{BlockInfo, TxRecord};
    use cn_chain::{Amount, BlockHash};
    use std::collections::HashSet;

    /// Builds an index-like block list without a full chain: one block by
    /// "M" where tx 1 (1 sat/vB) leads whales — the accelerated shape.
    fn handmade_index() -> ChainIndex {
        // ChainIndex fields are private; go through a real chain instead.
        // A compact helper: single block, four txs with chosen fees.
        use cn_chain::{Address, Block, Chain, CoinbaseBuilder, Params, PoolMarker, Transaction};
        let mut chain = Chain::new(Params::mainnet());
        let mut fund = Transaction::builder().add_input(cn_chain::TxIn::new(cn_chain::OutPoint::NULL));
        for _ in 0..4 {
            fund = fund.pay_to(Address::from_label("f"), Amount::from_sat(10_000_000));
        }
        let fund = fund.build();
        chain.seed_utxos(&fund);
        // Fees chosen so tx0 (the block leader) has the lowest fee rate.
        let fees = [1_000u64, 500_000, 400_000, 300_000];
        let mut txs = Vec::new();
        for (i, fee) in fees.iter().enumerate() {
            txs.push(
                Transaction::builder()
                    .add_input_with_sizes(fund.txid(), i as u32, 107, 0)
                    .pay_to(Address::from_label("r"), Amount::from_sat(10_000_000 - fee))
                    .build(),
            );
        }
        let total: u64 = fees.iter().sum();
        let cb = CoinbaseBuilder::new(0)
            .marker(PoolMarker::new("/M/"))
            .reward(Address::from_label("pool:M:0"), Amount::from_btc(50) + Amount::from_sat(total))
            .build();
        let block = Block::assemble(2, BlockHash::ZERO, 600, 0, cb, txs);
        chain.connect(block).expect("valid");
        ChainIndex::build(&chain)
    }

    #[test]
    fn accelerated_leader_found_at_high_threshold() {
        let index = handmade_index();
        let flagged = detect_accelerated(&index, "M", 70.0);
        assert_eq!(flagged.len(), 1, "only the out-of-place leader");
        let all = detect_accelerated(&index, "M", -100.0);
        assert_eq!(all.len(), 4, "zero threshold admits everything");
    }

    #[test]
    fn threshold_table_monotone_and_scored() {
        let index = handmade_index();
        let leader = detect_accelerated(&index, "M", 70.0)[0];
        let truth: HashSet<Txid> = HashSet::from([leader]);
        let rows = sppe_threshold_table(
            &index,
            "M",
            &[70.0, 0.0, -100.0],
            &|t| truth.contains(t),
        );
        assert_eq!(rows[0].total, 1);
        assert_eq!(rows[0].accelerated, 1);
        assert!((rows[0].precision() - 1.0).abs() < 1e-12);
        // Lower thresholds admit more, precision falls.
        assert!(rows[1].total >= rows[0].total);
        assert!(rows[2].total == 4);
        assert!(rows[2].precision() < 1.0);
        // Zero-member row precision defined as 0.
        let empty = SppeThresholdRow { threshold: 200.0, total: 0, accelerated: 0 };
        assert_eq!(empty.precision(), 0.0);
    }

    #[test]
    fn detector_precision_recall() {
        let index = handmade_index();
        let leader = detect_accelerated(&index, "M", 70.0)[0];
        let truth_set: HashSet<Txid> = HashSet::from([leader]);
        let (p, r) = score_detector(&index, "M", 70.0, &|t| truth_set.contains(t));
        assert_eq!((p, r), (1.0, 1.0));
        // At an absurdly low threshold precision drops but recall holds.
        let (p2, r2) = score_detector(&index, "M", -100.0, &|t| truth_set.contains(t));
        assert!(p2 < 1.0);
        assert_eq!(r2, 1.0);
    }

    #[test]
    fn foreign_miner_has_no_rows() {
        let index = handmade_index();
        assert!(miner_tx_sppes(&index, "Other").is_empty());
        let rows = sppe_threshold_table(&index, "Other", &[50.0], &|_| false);
        assert_eq!(rows[0].total, 0);
    }

    // Silence the unused-import warning for the handmade path types used
    // only through the chain construction above.
    #[allow(dead_code)]
    fn _touch(_: &BlockInfo, _: &TxRecord, _: BlockHash, _: Amount) {}
}
