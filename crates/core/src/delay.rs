//! Commit-delay analysis (§4.1.1, Figures 4a, 5, 12).
//!
//! A transaction's commit delay is measured in *blocks*: how many blocks
//! were mined from the moment the observer first saw it up to and
//! including the one that committed it. "Committed in the next block"
//! is a delay of 1.

use crate::error::AuditError;
use crate::index::ChainIndex;
use cn_chain::{FastMap, FeeRate, Timestamp, Txid};
use cn_mempool::MempoolSnapshot;
use std::collections::HashMap;

/// Checked variant of [`first_seen_times`] for pipelines over possibly
/// degraded streams: distinguishes "nothing was recorded" and "only
/// aggregates were recorded" — both of which the unchecked variant
/// silently maps to an empty join — from a genuinely empty result.
pub fn first_seen_times_checked(
    snapshots: &[MempoolSnapshot],
) -> Result<FastMap<Txid, Timestamp>, AuditError> {
    if snapshots.is_empty() {
        return Err(AuditError::EmptySnapshotStream);
    }
    if !snapshots.iter().any(|s| s.is_detailed()) {
        return Err(AuditError::NoDetailedSnapshots);
    }
    Ok(first_seen_times(snapshots))
}

/// First time each transaction was observed across a snapshot stream.
pub fn first_seen_times(snapshots: &[MempoolSnapshot]) -> FastMap<Txid, Timestamp> {
    let mut map: FastMap<Txid, Timestamp> = FastMap::default();
    for snap in snapshots {
        for entry in snap.entries.iter() {
            map.entry(entry.txid)
                .and_modify(|t| *t = (*t).min(entry.received))
                .or_insert(entry.received);
        }
    }
    map
}

/// One transaction's delay record.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DelayRecord {
    /// The transaction.
    pub txid: Txid,
    /// First-seen time at the observer.
    pub first_seen: Timestamp,
    /// Commit delay in blocks (≥ 1).
    pub blocks: u64,
    /// The fee rate it offered.
    pub fee_rate: FeeRate,
}

/// Computes block delays for every observed transaction that confirmed.
pub fn commit_delays(
    index: &ChainIndex,
    first_seen: &FastMap<Txid, Timestamp>,
) -> Vec<DelayRecord> {
    let block_times = index.block_times();
    let mut out = Vec::with_capacity(first_seen.len());
    for (&txid, &seen) in first_seen {
        let Some(record) = index.record(&txid) else { continue };
        // Blocks mined strictly after the tx was seen, up to and
        // including the commit block. Simulated block times are
        // monotone, so a partition point suffices.
        let first_candidate = block_times.partition_point(|&t| t <= seen) as u64;
        let blocks = record.height.saturating_sub(first_candidate) + 1;
        out.push(DelayRecord { txid, first_seen: seen, blocks, fee_rate: record.fee_rate() });
    }
    out.sort_by_key(|r| r.txid);
    out
}

/// The paper's fee bands (Figures 5 and 12), in BTC/KB:
/// low < 1e-4 ≤ high < 1e-3 ≤ exorbitant.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum FeeBand {
    /// Below 1e-4 BTC/KB (10 sat/vB).
    Low,
    /// Between 1e-4 and 1e-3 BTC/KB.
    High,
    /// Above 1e-3 BTC/KB (100 sat/vB).
    Exorbitant,
}

impl FeeBand {
    /// Classifies a fee rate.
    pub fn of(rate: FeeRate) -> FeeBand {
        let btc_per_kb = rate.btc_per_kb();
        if btc_per_kb < 1e-4 {
            FeeBand::Low
        } else if btc_per_kb < 1e-3 {
            FeeBand::High
        } else {
            FeeBand::Exorbitant
        }
    }
}

/// Partitions delay records into the three fee bands.
pub fn delays_by_fee_band(records: &[DelayRecord]) -> HashMap<FeeBand, Vec<u64>> {
    let mut map: HashMap<FeeBand, Vec<u64>> = HashMap::new();
    for r in records {
        map.entry(FeeBand::of(r.fee_rate)).or_default().push(r.blocks);
    }
    map
}

#[cfg(test)]
mod tests {
    use super::*;
    use cn_chain::{
        Address, Amount, Block, Chain, CoinbaseBuilder, Params, Transaction,
    };
    use cn_mempool::SnapshotEntry;

    fn snapshot(time: Timestamp, entries: &[(Txid, Timestamp)]) -> MempoolSnapshot {
        MempoolSnapshot::from_entries(
            time,
            entries
                .iter()
                .map(|&(txid, received)| SnapshotEntry {
                    txid,
                    received,
                    fee: Amount::from_sat(1_000),
                    vsize: 200,
                    has_unconfirmed_parent: false,
                })
                .collect(),
        )
    }

    #[test]
    fn first_seen_takes_minimum() {
        let a = Txid::from([1; 32]);
        let snaps = vec![snapshot(30, &[(a, 25)]), snapshot(45, &[(a, 25)])];
        let seen = first_seen_times(&snaps);
        assert_eq!(seen[&a], 25);
        assert_eq!(seen.len(), 1);
    }

    /// Chain with block times 600, 1200, 1800; one tx per block.
    fn chain_three_blocks() -> (Chain, Vec<Txid>) {
        let mut chain = Chain::new(Params::mainnet());
        let fund = Transaction::builder()
            .add_input(cn_chain::TxIn::new(cn_chain::OutPoint::NULL))
            .pay_to(Address::from_label("f"), Amount::from_sat(1_000_000))
            .pay_to(Address::from_label("f"), Amount::from_sat(1_000_000))
            .pay_to(Address::from_label("f"), Amount::from_sat(1_000_000))
            .build();
        chain.seed_utxos(&fund);
        let mut txids = Vec::new();
        for h in 0..3u64 {
            let tx = Transaction::builder()
                .add_input_with_sizes(fund.txid(), h as u32, 107, 0)
                .pay_to(Address::from_label("r"), Amount::from_sat(900_000))
                .build();
            txids.push(tx.txid());
            let cb = CoinbaseBuilder::new(h)
                .reward(Address::from_label("p"), Amount::from_btc(50) + Amount::from_sat(100_000))
                .extra_nonce(h)
                .build();
            let block =
                Block::assemble(2, chain.tip_hash(), (h + 1) * 600, h as u32, cb, vec![tx]);
            chain.connect(block).expect("valid");
        }
        (chain, txids)
    }

    #[test]
    fn next_block_inclusion_is_delay_one() {
        let (chain, txids) = chain_three_blocks();
        let index = ChainIndex::build(&chain);
        // Seen at t=0, committed in block 0 (time 600): delay 1.
        let mut seen = FastMap::default();
        seen.insert(txids[0], 0);
        let delays = commit_delays(&index, &seen);
        assert_eq!(delays.len(), 1);
        assert_eq!(delays[0].blocks, 1);
    }

    #[test]
    fn skipped_blocks_add_to_delay() {
        let (chain, txids) = chain_three_blocks();
        let index = ChainIndex::build(&chain);
        // Seen at t=0 but committed only in block 2 (two blocks passed by).
        let mut seen = FastMap::default();
        seen.insert(txids[2], 0);
        let delays = commit_delays(&index, &seen);
        assert_eq!(delays[0].blocks, 3);
    }

    #[test]
    fn seen_between_blocks() {
        let (chain, txids) = chain_three_blocks();
        let index = ChainIndex::build(&chain);
        // Seen at t=700 (after block 0 at 600), committed in block 1: delay 1.
        let mut seen = FastMap::default();
        seen.insert(txids[1], 700);
        let delays = commit_delays(&index, &seen);
        assert_eq!(delays[0].blocks, 1);
    }

    #[test]
    fn unconfirmed_observations_skipped() {
        let (chain, _) = chain_three_blocks();
        let index = ChainIndex::build(&chain);
        let mut seen = FastMap::default();
        seen.insert(Txid::from([0xdd; 32]), 0);
        assert!(commit_delays(&index, &seen).is_empty());
    }

    #[test]
    fn fee_bands_match_paper_boundaries() {
        // 1e-4 BTC/KB == 10 sat/vB; 1e-3 == 100 sat/vB.
        assert_eq!(FeeBand::of(FeeRate::from_sat_per_vb(9)), FeeBand::Low);
        assert_eq!(FeeBand::of(FeeRate::from_sat_per_vb(10)), FeeBand::High);
        assert_eq!(FeeBand::of(FeeRate::from_sat_per_vb(99)), FeeBand::High);
        assert_eq!(FeeBand::of(FeeRate::from_sat_per_vb(100)), FeeBand::Exorbitant);
        assert_eq!(FeeBand::of(FeeRate::ZERO), FeeBand::Low);
    }

    #[test]
    fn banded_delays_partition_records() {
        let records = vec![
            DelayRecord { txid: Txid::from([1; 32]), first_seen: 0, blocks: 5, fee_rate: FeeRate::from_sat_per_vb(2) },
            DelayRecord { txid: Txid::from([2; 32]), first_seen: 0, blocks: 2, fee_rate: FeeRate::from_sat_per_vb(50) },
            DelayRecord { txid: Txid::from([3; 32]), first_seen: 0, blocks: 1, fee_rate: FeeRate::from_sat_per_vb(500) },
        ];
        let by_band = delays_by_fee_band(&records);
        assert_eq!(by_band[&FeeBand::Low], vec![5]);
        assert_eq!(by_band[&FeeBand::High], vec![2]);
        assert_eq!(by_band[&FeeBand::Exorbitant], vec![1]);
    }
}
