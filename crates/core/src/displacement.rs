//! Displacement analysis: who pays for a norm violation?
//!
//! An extension of the paper's §6 discussion ("norm violations cause
//! irreparable economic harm to users"): every transaction placed *above*
//! its fee-rate rank pushes honestly bidding transactions down — and,
//! under a full block, out. This module quantifies that harm per block:
//! how many positions honest transactions lost, and how many vbytes of
//! honest demand were displaced out of the block entirely by
//! below-marginal-rate insertions.

use crate::index::{BlockInfo, ChainIndex};
use crate::ppe::predicted_positions;
use cn_chain::FeeRate;

/// Harm caused within one block.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct BlockDisplacement {
    /// Transactions placed above their fee-rate rank (the beneficiaries).
    pub promoted: usize,
    /// Positions lost in total by every demoted transaction.
    pub positions_lost: u64,
    /// Virtual bytes consumed by transactions whose fee rate is below the
    /// block's marginal (lowest) decile rate yet sit in the top decile —
    /// space honest bidders competed for and lost.
    pub queue_jumped_vbytes: u64,
}

/// Computes displacement for one block.
pub fn block_displacement(block: &BlockInfo) -> BlockDisplacement {
    let n = block.txs.len();
    if n < 2 {
        return BlockDisplacement::default();
    }
    let subset: Vec<(usize, u64, u64)> = block
        .txs
        .iter()
        .enumerate()
        .map(|(i, t)| (i, t.fee.to_sat(), t.vsize.max(1)))
        .collect();
    let predicted = predicted_positions(&subset);
    let mut out = BlockDisplacement::default();
    let top_decile = n / 10;
    let bottom_decile_rank = n - 1 - n / 10;
    for (observed, tx) in block.txs.iter().enumerate() {
        let pred = predicted[observed];
        if pred > observed {
            out.promoted += 1;
        } else if pred < observed {
            out.positions_lost += (observed - pred) as u64;
        }
        // Queue jumping: in the top decile while ranked in the bottom one.
        if observed <= top_decile && pred >= bottom_decile_rank {
            out.queue_jumped_vbytes += tx.vsize;
        }
    }
    out
}

/// Aggregate displacement per miner across the chain, with the share of
/// each miner's block space consumed by queue-jumpers.
pub fn displacement_by_miner(index: &ChainIndex) -> Vec<(String, BlockDisplacement, f64)> {
    use std::collections::BTreeMap;
    let mut agg: BTreeMap<String, (BlockDisplacement, u64)> = BTreeMap::new();
    for block in index.blocks() {
        let Some(miner) = &block.miner else { continue };
        let d = block_displacement(block);
        let total_vsize: u64 = block.txs.iter().map(|t| t.vsize).sum();
        let entry = agg.entry(miner.clone()).or_default();
        entry.0.promoted += d.promoted;
        entry.0.positions_lost += d.positions_lost;
        entry.0.queue_jumped_vbytes += d.queue_jumped_vbytes;
        entry.1 += total_vsize;
    }
    agg.into_iter()
        .map(|(miner, (d, vsize))| {
            let share = if vsize == 0 { 0.0 } else { d.queue_jumped_vbytes as f64 / vsize as f64 };
            (miner, d, share)
        })
        .collect()
}

/// Estimated fee premium the displaced would have needed to keep their
/// rank: the gap between the queue-jumpers' rates and the rate at the
/// position they took, summed over jumpers (in satoshi).
pub fn displacement_fee_gap(block: &BlockInfo) -> u64 {
    let n = block.txs.len();
    if n < 2 {
        return 0;
    }
    let subset: Vec<(usize, u64, u64)> = block
        .txs
        .iter()
        .enumerate()
        .map(|(i, t)| (i, t.fee.to_sat(), t.vsize.max(1)))
        .collect();
    let predicted = predicted_positions(&subset);
    let mut gap = 0u64;
    for (observed, tx) in block.txs.iter().enumerate() {
        if predicted[observed] <= observed + n / 10 {
            continue; // not a meaningful jump
        }
        // The rate the position "deserved": the tx whose predicted rank is
        // the observed position.
        if let Some(deserving) = block.txs.iter().enumerate().find(|(i, _)| predicted[*i] == observed)
        {
            let deserved_rate = deserving.1.fee_rate();
            let actual_rate = FeeRate::from_fee_and_vsize(tx.fee, tx.vsize);
            if deserved_rate > actual_rate {
                gap += deserved_rate
                    .fee_for_vsize(tx.vsize)
                    .saturating_sub(tx.fee)
                    .to_sat();
            }
        }
    }
    gap
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::TxRecord;
    use cn_chain::{Amount, BlockHash, Txid};

    fn block(rates: &[u64]) -> BlockInfo {
        let txs = rates
            .iter()
            .enumerate()
            .map(|(i, &r)| TxRecord {
                txid: Txid::from([(i + 1) as u8; 32]),
                height: 0,
                position: i,
                fee: Amount::from_sat(r * 100),
                vsize: 100,
                is_cpfp: false,
            })
            .collect();
        BlockInfo {
            height: 0,
            hash: BlockHash::ZERO,
            time: 0,
            miner: Some("M".into()),
            coinbase_wallets: vec![],
            txs,
        }
    }

    #[test]
    fn norm_block_causes_no_harm() {
        let b = block(&[100, 90, 80, 70, 60, 50, 40, 30, 20, 10]);
        let d = block_displacement(&b);
        assert_eq!(d, BlockDisplacement::default());
        assert_eq!(displacement_fee_gap(&b), 0);
    }

    #[test]
    fn queue_jumper_accounted() {
        // An 11-tx block whose leader pays the lowest rate.
        let b = block(&[1, 100, 90, 80, 70, 60, 50, 40, 30, 20, 10]);
        let d = block_displacement(&b);
        assert_eq!(d.promoted, 1);
        // Everyone else lost exactly one position.
        assert_eq!(d.positions_lost, 10);
        assert_eq!(d.queue_jumped_vbytes, 100);
        assert!(displacement_fee_gap(&b) > 0);
    }

    #[test]
    fn small_blocks_are_neutral() {
        assert_eq!(block_displacement(&block(&[5])), BlockDisplacement::default());
        assert_eq!(block_displacement(&block(&[])), BlockDisplacement::default());
    }

    #[test]
    fn per_miner_aggregation() {
        // Build a real chain-free aggregation through an empty index.
        let index = ChainIndex::default();
        assert!(displacement_by_miner(&index).is_empty());
    }
}
