//! The typed failure taxonomy for snapshot-consuming audit paths.
//!
//! Real snapshot streams arrive damaged — observer outages leave gaps,
//! interrupted dumps truncate detail, and whole runs can produce nothing
//! usable. Audit entry points that consume snapshots return
//! [`AuditError`] instead of panicking, so a pipeline over degraded data
//! fails (or degrades) deliberately.

use std::fmt;

/// Why an audit over a snapshot stream could not produce a result.
#[derive(Clone, Debug, PartialEq)]
pub enum AuditError {
    /// The snapshot stream has no snapshots at all — the observer never
    /// recorded anything in the analysis window.
    EmptySnapshotStream,
    /// The stream has snapshots but none carry per-transaction rows, so
    /// first-seen joins and violation-pair analyses are impossible.
    NoDetailedSnapshots,
    /// Observation coverage fell below the caller's floor; the report
    /// would be statistically meaningless.
    InsufficientCoverage {
        /// The fraction of expected snapshot windows actually present.
        coverage: f64,
        /// The caller's minimum acceptable fraction.
        required: f64,
    },
    /// A statistic that must be finite (a PPE mean, a p-value) was not;
    /// carries the computation site for diagnosis.
    NonFiniteStatistic {
        /// Which computation produced the non-finite value.
        context: &'static str,
    },
    /// A block pushed into the streaming auditor does not replay against
    /// its UTXO view — it spends unknown or already-spent outputs, so the
    /// auditor's fee and self-interest accounting cannot advance.
    UnreplayableBlock {
        /// Height of the offending block.
        height: u64,
    },
}

impl fmt::Display for AuditError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AuditError::EmptySnapshotStream => {
                write!(f, "snapshot stream is empty: nothing was observed")
            }
            AuditError::NoDetailedSnapshots => {
                write!(f, "snapshot stream has no detailed snapshots: per-tx analyses impossible")
            }
            AuditError::InsufficientCoverage { coverage, required } => write!(
                f,
                "observation coverage {:.1}% is below the required {:.1}%",
                coverage * 100.0,
                required * 100.0
            ),
            AuditError::NonFiniteStatistic { context } => {
                write!(f, "non-finite statistic in {context}")
            }
            AuditError::UnreplayableBlock { height } => {
                write!(f, "block at height {height} does not replay against the UTXO view")
            }
        }
    }
}

impl std::error::Error for AuditError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        assert!(AuditError::EmptySnapshotStream.to_string().contains("empty"));
        let e = AuditError::InsufficientCoverage { coverage: 0.42, required: 0.5 };
        let s = e.to_string();
        assert!(s.contains("42.0%") && s.contains("50.0%"), "{s}");
        assert!(AuditError::NonFiniteStatistic { context: "ppe" }.to_string().contains("ppe"));
    }

    #[test]
    fn implements_error_trait() {
        fn takes_error(_: &dyn std::error::Error) {}
        takes_error(&AuditError::NoDetailedSnapshots);
    }
}
