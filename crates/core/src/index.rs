//! One replay of the chain into the per-transaction facts every audit
//! metric consumes.

use crate::cpfp::cpfp_txids_in_block;
use cn_chain::{
    Address, Amount, Block, BlockHash, Chain, FastMap, FeeRate, PoolMarker, Timestamp, Txid,
};

/// Per-transaction audit facts.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TxRecord {
    /// The transaction id.
    pub txid: Txid,
    /// Containing block height.
    pub height: u64,
    /// 0-based position within the block body.
    pub position: usize,
    /// The fee actually paid (from validated chain records).
    pub fee: Amount,
    /// Virtual size in vbytes.
    pub vsize: u64,
    /// True under the §E CPFP definition (spends an output created in the
    /// same block).
    pub is_cpfp: bool,
}

impl TxRecord {
    /// Fee rate, the ranking key of the norms.
    pub fn fee_rate(&self) -> FeeRate {
        FeeRate::from_fee_and_vsize(self.fee, self.vsize)
    }
}

/// Per-block audit facts.
#[derive(Clone, Debug)]
pub struct BlockInfo {
    /// Height.
    pub height: u64,
    /// Block hash.
    pub hash: BlockHash,
    /// Block timestamp.
    pub time: Timestamp,
    /// Attributed miner (coinbase marker tag, slashes trimmed), if any.
    pub miner: Option<String>,
    /// Coinbase reward addresses (the pool-wallet signal of Figure 8a).
    pub coinbase_wallets: Vec<Address>,
    /// Body transactions in block order.
    pub txs: Vec<TxRecord>,
}

impl BlockInfo {
    /// Number of body transactions.
    pub fn tx_count(&self) -> usize {
        self.txs.len()
    }

    /// True when the block committed no user transactions.
    pub fn is_empty_block(&self) -> bool {
        self.txs.is_empty()
    }
}

/// The chain, digested for auditing.
///
/// Supports *epoch checkpointing*: [`ChainIndex::drain_below`] hands the
/// oldest block digests off (for a caller to spill to disk) and records the
/// offset in `base`, so a long-running streaming audit retains O(window)
/// digests in memory. Heights stay absolute throughout — a drained index
/// answers [`ChainIndex::block`] for retained heights and `None` below the
/// base, and [`ChainIndex::from_blocks`] rebuilds a full index from
/// re-read segments.
#[derive(Clone, Debug, Default)]
pub struct ChainIndex {
    /// Heights below this have been drained; `blocks[0]` is height `base`.
    base: u64,
    blocks: Vec<BlockInfo>,
    by_txid: FastMap<Txid, (u64, u32)>,
}

impl ChainIndex {
    /// Builds the index from a validated chain.
    ///
    /// # Panics
    /// Panics if the chain's per-block records disagree with its blocks —
    /// impossible for a chain built through [`Chain::connect`].
    pub fn build(chain: &Chain) -> ChainIndex {
        let mut index = ChainIndex::default();
        index.blocks.reserve(chain.blocks().len());
        for (block, record) in chain.blocks().iter().zip(chain.records()) {
            debug_assert_eq!(record.height, index.len() as u64);
            index.push_block(block, &record.tx_fees);
        }
        index
    }

    /// Rebuilds an index from previously drained (or otherwise digested)
    /// blocks — the restore half of the [`ChainIndex::drain_below`]
    /// checkpoint contract. Blocks must be contiguous and in height order;
    /// the first block's height becomes the base.
    ///
    /// # Panics
    /// Panics when the heights are not contiguous.
    pub fn from_blocks(blocks: Vec<BlockInfo>) -> ChainIndex {
        let base = blocks.first().map(|b| b.height).unwrap_or(0);
        let mut by_txid = FastMap::default();
        for (i, block) in blocks.iter().enumerate() {
            assert_eq!(block.height, base + i as u64, "blocks must be contiguous");
            for tx in &block.txs {
                by_txid.insert(tx.txid, (block.height, tx.position as u32));
            }
        }
        ChainIndex { base, blocks, by_txid }
    }

    /// Appends one connected block to the index — the incremental form of
    /// [`ChainIndex::build`], which is now a fold over this method. The
    /// block's height is the current tip height + 1 (blocks must arrive in
    /// connect order), so an index grown block-by-block is identical to one
    /// built from the finished chain.
    ///
    /// # Panics
    /// Panics when `tx_fees` does not line up with the block body.
    pub fn push_block(&mut self, block: &Block, tx_fees: &[Amount]) {
        assert_eq!(
            tx_fees.len(),
            block.body().len(),
            "chain record out of sync with block body"
        );
        let height = self.base + self.blocks.len() as u64;
        let cpfp = cpfp_txids_in_block(block);
        let miner = block
            .coinbase()
            .and_then(PoolMarker::from_coinbase)
            .map(|m| m.0.trim_matches('/').to_string());
        let coinbase_wallets = block
            .coinbase()
            .map(|cb| cb.output_addresses().collect())
            .unwrap_or_default();
        let mut txs = Vec::with_capacity(block.body().len());
        for (position, (tx, fee)) in block.body().iter().zip(tx_fees).enumerate() {
            let txid = tx.txid();
            self.by_txid.insert(txid, (height, position as u32));
            txs.push(TxRecord {
                txid,
                height,
                position,
                fee: *fee,
                vsize: tx.vsize(),
                is_cpfp: cpfp.contains(&txid),
            });
        }
        self.blocks.push(BlockInfo {
            height,
            hash: block.block_hash(),
            time: block.header.time,
            miner,
            coinbase_wallets,
            txs,
        });
    }

    /// All retained blocks, by height (every block unless
    /// [`ChainIndex::drain_below`] has checkpointed a prefix off).
    pub fn blocks(&self) -> &[BlockInfo] {
        &self.blocks
    }

    /// The height below which blocks have been drained (0 for a full
    /// index).
    pub fn base(&self) -> u64 {
        self.base
    }

    /// The block at `height`, `None` when unknown or drained.
    pub fn block(&self, height: u64) -> Option<&BlockInfo> {
        let offset = height.checked_sub(self.base)?;
        self.blocks.get(offset as usize)
    }

    /// Drains every retained block below `height`, returning them in
    /// height order and forgetting their per-transaction locations. The
    /// caller owns their persistence; [`ChainIndex::from_blocks`] over the
    /// concatenated drained segments (plus the retained tail) reproduces
    /// the undrained index exactly.
    pub fn drain_below(&mut self, height: u64) -> Vec<BlockInfo> {
        let cut = height.clamp(self.base, self.base + self.blocks.len() as u64);
        let drained: Vec<BlockInfo> = self.blocks.drain(..(cut - self.base) as usize).collect();
        for block in &drained {
            for tx in &block.txs {
                self.by_txid.remove(&tx.txid);
            }
        }
        self.base = cut;
        drained
    }

    /// Locates a confirmed transaction as `(height, position)`.
    pub fn locate(&self, txid: &Txid) -> Option<(u64, u32)> {
        self.by_txid.get(txid).copied()
    }

    /// The record of a confirmed transaction.
    pub fn record(&self, txid: &Txid) -> Option<&TxRecord> {
        let (h, p) = self.locate(txid)?;
        self.block(h).and_then(|b| b.txs.get(p as usize))
    }

    /// Chain height covered: drained prefix plus retained blocks.
    pub fn len(&self) -> usize {
        self.base as usize + self.blocks.len()
    }

    /// True when the chain was empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total body transactions across the *retained* blocks.
    pub fn tx_count(&self) -> usize {
        self.blocks.iter().map(|b| b.txs.len()).sum()
    }

    /// Fraction of body transactions that are CPFP (Table 1's
    /// "percentage of CPFP-transactions").
    pub fn cpfp_fraction(&self) -> f64 {
        let total = self.tx_count();
        if total == 0 {
            return 0.0;
        }
        let cpfp: usize =
            self.blocks.iter().map(|b| b.txs.iter().filter(|t| t.is_cpfp).count()).sum();
        cpfp as f64 / total as f64
    }

    /// Count of empty blocks (Table 1).
    pub fn empty_block_count(&self) -> usize {
        self.blocks.iter().filter(|b| b.is_empty_block()).count()
    }

    /// Block timestamps in height order (monotone for simulated chains).
    pub fn block_times(&self) -> Vec<Timestamp> {
        self.blocks.iter().map(|b| b.time).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cn_chain::{Block, CoinbaseBuilder, Params, Transaction};

    /// Builds a tiny two-block chain with a CPFP pair in block 1.
    fn sample_chain() -> Chain {
        let mut chain = Chain::new(Params::mainnet());
        let fund = Transaction::builder()
            .add_input(cn_chain::TxIn::new(cn_chain::OutPoint::NULL))
            .pay_to(Address::from_label("funder"), Amount::from_sat(10_000_000))
            .pay_to(Address::from_label("funder2"), Amount::from_sat(10_000_000))
            .build();
        chain.seed_utxos(&fund);

        let cb0 = CoinbaseBuilder::new(0)
            .marker(cn_chain::PoolMarker::new("/PoolA/"))
            .reward(Address::from_label("pool:A:0"), Amount::from_btc(50))
            .build();
        let b0 = Block::assemble(2, BlockHash::ZERO, 600, 0, cb0, Vec::<Transaction>::new());
        chain.connect(b0).expect("valid");

        let parent = Transaction::builder()
            .add_input_with_sizes(fund.txid(), 0, 107, 0)
            .pay_to(Address::from_label("r"), Amount::from_sat(9_900_000))
            .build();
        let child = Transaction::builder()
            .add_input_with_sizes(parent.txid(), 0, 107, 0)
            .pay_to(Address::from_label("r2"), Amount::from_sat(9_700_000))
            .build();
        let other = Transaction::builder()
            .add_input_with_sizes(fund.txid(), 1, 107, 0)
            .pay_to(Address::from_label("r3"), Amount::from_sat(9_950_000))
            .build();
        let fees = Amount::from_sat(100_000 + 200_000 + 50_000);
        let cb1 = CoinbaseBuilder::new(1)
            .marker(cn_chain::PoolMarker::new("/PoolB/"))
            .reward(Address::from_label("pool:B:0"), Amount::from_btc(50) + fees)
            .build();
        let b1 = Block::assemble(
            2,
            chain.tip_hash(),
            1_200,
            1,
            cb1,
            vec![parent, child, other],
        );
        chain.connect(b1).expect("valid");
        chain
    }

    #[test]
    fn index_captures_fees_positions_and_cpfp() {
        let chain = sample_chain();
        let index = ChainIndex::build(&chain);
        assert_eq!(index.len(), 2);
        assert_eq!(index.tx_count(), 3);
        assert_eq!(index.empty_block_count(), 1);

        let b1 = index.block(1).expect("exists");
        assert_eq!(b1.miner.as_deref(), Some("PoolB"));
        assert_eq!(b1.time, 1_200);
        assert_eq!(b1.txs[0].fee, Amount::from_sat(100_000));
        assert_eq!(b1.txs[1].fee, Amount::from_sat(200_000));
        assert_eq!(b1.txs[2].fee, Amount::from_sat(50_000));
        assert!(!b1.txs[0].is_cpfp);
        assert!(b1.txs[1].is_cpfp, "child spending same-block parent is CPFP");
        assert!(!b1.txs[2].is_cpfp);
        assert!((index.cpfp_fraction() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn locate_and_record_agree() {
        let chain = sample_chain();
        let index = ChainIndex::build(&chain);
        let b1 = index.block(1).expect("exists");
        for (pos, tx) in b1.txs.iter().enumerate() {
            assert_eq!(index.locate(&tx.txid), Some((1, pos as u32)));
            let rec = index.record(&tx.txid).expect("present");
            assert_eq!(rec.position, pos);
            assert_eq!(rec.fee_rate(), FeeRate::from_fee_and_vsize(rec.fee, rec.vsize));
        }
        assert_eq!(index.locate(&Txid::from([0xee; 32])), None);
    }

    #[test]
    fn incremental_push_matches_batch_build() {
        let chain = sample_chain();
        let batch = ChainIndex::build(&chain);
        let mut grown = ChainIndex::default();
        for (block, record) in chain.blocks().iter().zip(chain.records()) {
            grown.push_block(block, &record.tx_fees);
        }
        assert_eq!(grown.len(), batch.len());
        for (a, b) in grown.blocks().iter().zip(batch.blocks()) {
            assert_eq!(a.height, b.height);
            assert_eq!(a.hash, b.hash);
            assert_eq!(a.time, b.time);
            assert_eq!(a.miner, b.miner);
            assert_eq!(a.coinbase_wallets, b.coinbase_wallets);
            assert_eq!(a.txs, b.txs);
        }
        for block in batch.blocks() {
            for tx in &block.txs {
                assert_eq!(grown.locate(&tx.txid), batch.locate(&tx.txid));
            }
        }
    }

    #[test]
    fn drain_below_checkpoints_and_from_blocks_restores() {
        let chain = sample_chain();
        let full = ChainIndex::build(&chain);
        let mut drained = ChainIndex::build(&chain);

        let segment = drained.drain_below(1);
        assert_eq!(segment.len(), 1);
        assert_eq!(segment[0].height, 0);
        assert_eq!(drained.base(), 1);
        assert_eq!(drained.len(), full.len(), "heights stay absolute");
        assert!(drained.block(0).is_none(), "drained height is gone");
        assert_eq!(drained.block(1).map(|b| b.hash), full.block(1).map(|b| b.hash));
        // Drained txids are forgotten; retained ones still resolve.
        for tx in &full.block(1).expect("b1").txs {
            assert_eq!(drained.locate(&tx.txid), full.locate(&tx.txid));
            assert_eq!(drained.record(&tx.txid), full.record(&tx.txid));
        }
        // A no-op drain below the base returns nothing.
        assert!(drained.drain_below(0).is_empty());

        // Restore: drained segments + retained tail = the full index.
        let mut all = segment;
        all.extend(drained.blocks().iter().cloned());
        let restored = ChainIndex::from_blocks(all);
        assert_eq!(restored.base(), 0);
        assert_eq!(restored.len(), full.len());
        assert_eq!(restored.tx_count(), full.tx_count());
        for block in full.blocks() {
            for tx in &block.txs {
                assert_eq!(restored.locate(&tx.txid), full.locate(&tx.txid));
            }
        }
    }

    #[test]
    fn push_block_continues_past_a_drain() {
        let chain = sample_chain();
        let full = ChainIndex::build(&chain);
        let mut grown = ChainIndex::default();
        let (blocks, records): (Vec<_>, Vec<_>) =
            chain.blocks().iter().zip(chain.records()).unzip();
        grown.push_block(blocks[0], &records[0].tx_fees);
        let spilled = grown.drain_below(1);
        grown.push_block(blocks[1], &records[1].tx_fees);
        assert_eq!(grown.len(), 2, "height accounts for the drained prefix");
        assert_eq!(grown.block(1).map(|b| b.hash), full.block(1).map(|b| b.hash));
        assert_eq!(spilled[0].hash, full.block(0).expect("b0").hash);
    }

    #[test]
    fn attribution_fields_populated() {
        let chain = sample_chain();
        let index = ChainIndex::build(&chain);
        assert_eq!(index.block(0).expect("b0").miner.as_deref(), Some("PoolA"));
        assert_eq!(
            index.block(0).expect("b0").coinbase_wallets,
            vec![Address::from_label("pool:A:0")]
        );
        assert_eq!(index.block_times(), vec![600, 1_200]);
    }
}
