//! # cn-core — the blockchain ordering-audit toolkit
//!
//! The primary contribution of *"Selfish & Opaque Transaction Ordering in
//! the Bitcoin Blockchain: The Case for Chain Neutrality"* (IMC 2021) is a
//! set of auditing techniques that detect miners deviating from the
//! fee-rate prioritization norms. This crate implements all of them
//! against any [`cn_chain::Chain`] plus (optionally) an observer's
//! Mempool-snapshot stream:
//!
//! * [`index::ChainIndex`] — one replay of the chain producing the
//!   per-transaction facts everything else consumes: fee, fee rate,
//!   position, CPFP status (§E definition), and marker-based miner
//!   attribution.
//! * [`attribution`] — mining-pool attribution from coinbase markers,
//!   hash-rate estimation, and reward-wallet inventories (Figures 2, 8a).
//! * [`ppe`] — *Position Prediction Error*: how far each block's actual
//!   ordering deviates from the fee-rate norm (Figures 1 and 7).
//! * [`sppe`] — *Signed PPE* per transaction and per miner: positive when
//!   a transaction was placed above its fee-rate rank (§5.1, §5.4.2).
//! * [`pairs`] — snapshot-based violation-pair counting with an ε arrival
//!   margin and CPFP filtering (§4.2.1, Figure 6); includes an
//!   `O(n log² n)` offline divide-and-conquer counter and an `O(n²)`
//!   reference implementation.
//! * [`prioritization`] — the exact binomial acceleration/deceleration
//!   test (§5.1.1–5.1.2) with a windowed Fisher's-method variant (§5.1.3)
//!   for drifting hash rates (Tables 2 and 3).
//! * [`self_interest`] — finding transactions that move coins from or to
//!   a pool's wallets, by full UTXO replay (§5.2, Figure 8b).
//! * [`darkfee`] — SPPE-threshold detection of dark-fee-accelerated
//!   transactions, scored against any oracle (Table 4).
//! * [`delay`], [`congestion`] — commit-delay and Mempool-congestion
//!   analyses behind Figures 3–5 and 9–12.
//! * [`lowfee`] — norm-III adherence: who mines below-floor transactions
//!   (§4.2.3).
//! * [`displacement`] — an extension quantifying the economic harm each
//!   norm violation causes to honestly bidding users (§6).
//! * [`auditor`] — the one-call driver composing all of the above into a
//!   typed [`auditor::AuditReport`]; `audit_with_snapshots` additionally
//!   consumes the observer stream and degrades gracefully when it is
//!   damaged.
//! * [`streaming`] — the incremental auditor: ingests a live interleaved
//!   stream of block-connect and snapshot events, emits rolling windowed
//!   verdicts with bounded memory, and produces exact audits bit-identical
//!   to `audit_with_snapshots` on demand
//!   ([`streaming::StreamingAuditor`]).
//! * [`reconcile`] — cross-observer reconciliation: fuses an observer
//!   *fleet*'s snapshot streams (union rows, min first-seen, unanimity
//!   rules for degraded/truncated stamps), quantifies first-seen
//!   disagreement between vantage points, and drives the standard audit
//!   over the fused view (`reconcile::audit_with_fleet`).
//! * [`error`], [`coverage`] — the typed failure taxonomy
//!   ([`error::AuditError`]) and observation-coverage accounting
//!   ([`coverage::SnapshotCoverage`]) behind degraded-data tolerance:
//!   audits over gapped or truncated snapshot streams return errors or
//!   coverage-qualified reports instead of panicking.
//! * [`report`] — plain-text table rendering used by the experiment
//!   harness.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod attribution;
pub mod auditor;
pub mod congestion;
pub mod coverage;
pub mod cpfp;
pub mod darkfee;
pub mod delay;
pub mod displacement;
pub mod error;
pub mod index;
pub mod lowfee;
pub mod pairs;
pub mod ppe;
pub mod prioritization;
pub mod reconcile;
pub mod report;
pub mod self_interest;
pub mod spill;
pub mod sppe;
pub mod streaming;

pub use attribution::{attribute, Attribution, PoolStats};
pub use auditor::{
    audit_attributed, audit_chain, audit_with_snapshots, AuditConfig, AuditReport, Finding,
};
pub use coverage::{SnapshotCoverage, StreamExpectation};
pub use error::AuditError;
pub use darkfee::{sppe_threshold_table, SppeThresholdRow};
pub use index::{BlockInfo, ChainIndex, TxRecord};
pub use pairs::{
    count_cross_block, count_cross_block_bitset, count_cross_block_merge,
    count_cross_block_reference, count_violations_cdq, count_violations_reference, BlockPairSet,
    PairObservation, PairStats,
};
pub use ppe::{block_ppe, chain_ppe, ppe_by_miner};
pub use prioritization::{differential_prioritization, windowed_prioritization, DifferentialTest};
pub use reconcile::{
    audit_with_fleet, reconcile, reconcile_with_pool, FirstSeenStats, FleetView, ObserverView,
};
pub use sppe::{sppe_for_miner, tx_sppe};
pub use spill::{SpillError, SpilledAuditor};
pub use streaming::{
    interleave, DigestSegment, RollingMiner, RollingVerdict, StreamCounters, StreamEvent,
    StreamingAuditor, StreamingConfig,
};
