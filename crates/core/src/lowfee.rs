//! Norm III adherence: below-floor transactions (§4.2.3).
//!
//! Default nodes never accept transactions under the 1 sat/vB relay
//! floor, so such transactions should never confirm — yet the paper's
//! no-floor observer saw 1,084 of them, 53 of which were eventually
//! confirmed, by exactly three pools (F2Pool, ViaBTC, BTC.com). This
//! module runs the same analysis against a snapshot stream and chain.

use crate::index::ChainIndex;
use cn_chain::{FastSet, FeeRate, Txid};
use cn_mempool::MempoolSnapshot;
use std::collections::BTreeMap;

/// The §4.2.3 report.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct LowFeeReport {
    /// Below-floor transactions the observer saw.
    pub observed: usize,
    /// Of those, zero-fee transactions.
    pub zero_fee: usize,
    /// Below-floor transactions that eventually confirmed.
    pub confirmed: usize,
    /// Confirmations by pool (only pools that deviate appear).
    pub by_miner: BTreeMap<String, usize>,
}

impl LowFeeReport {
    /// Fraction of observed below-floor transactions that confirmed.
    pub fn confirmation_rate(&self) -> f64 {
        if self.observed == 0 {
            0.0
        } else {
            self.confirmed as f64 / self.observed as f64
        }
    }
}

/// Analyzes below-floor transactions: who saw them, who mined them.
///
/// `floor` is the norm-III threshold (1 sat/vB on mainnet). Only detailed
/// snapshots contribute observations.
pub fn low_fee_report(
    snapshots: &[MempoolSnapshot],
    index: &ChainIndex,
    floor: FeeRate,
) -> LowFeeReport {
    let mut seen: FastSet<Txid> = FastSet::default();
    let mut report = LowFeeReport::default();
    for snap in snapshots {
        for entry in snap.entries.iter() {
            if entry.fee_rate() < floor && seen.insert(entry.txid) {
                report.observed += 1;
                if entry.fee.is_zero() {
                    report.zero_fee += 1;
                }
            }
        }
    }
    for txid in &seen {
        if let Some((height, _)) = index.locate(txid) {
            report.confirmed += 1;
            if let Some(miner) = index.block(height).and_then(|b| b.miner.clone()) {
                *report.by_miner.entry(miner).or_default() += 1;
            }
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use cn_chain::{Address, Amount, Block, BlockHash, Chain, CoinbaseBuilder, Params, PoolMarker, Transaction};
    use cn_mempool::SnapshotEntry;

    fn entry(txid: Txid, fee: u64, vsize: u64) -> SnapshotEntry {
        SnapshotEntry {
            txid,
            received: 0,
            fee: Amount::from_sat(fee),
            vsize,
            has_unconfirmed_parent: false,
        }
    }

    #[test]
    fn counts_observed_zero_fee_and_confirmed() {
        // A chain where F2Pool mines one zero-fee transaction.
        let mut chain = Chain::new(Params::mainnet());
        let fund = Transaction::builder()
            .add_input(cn_chain::TxIn::new(cn_chain::OutPoint::NULL))
            .pay_to(Address::from_label("f"), Amount::from_sat(100_000))
            .build();
        chain.seed_utxos(&fund);
        let zero_fee_tx = Transaction::builder()
            .add_input_with_sizes(fund.txid(), 0, 107, 0)
            .pay_to(Address::from_label("r"), Amount::from_sat(100_000))
            .build();
        let cb = CoinbaseBuilder::new(0)
            .marker(PoolMarker::new("/F2Pool/"))
            .reward(Address::from_label("p"), Amount::from_btc(50))
            .build();
        let block =
            Block::assemble(2, BlockHash::ZERO, 600, 0, cb, vec![zero_fee_tx.clone()]);
        chain.connect(block).expect("valid");
        let index = ChainIndex::build(&chain);

        let never_confirmed = Txid::from([9; 32]);
        let snaps = vec![MempoolSnapshot::from_entries(
            0,
            vec![
                entry(zero_fee_tx.txid(), 0, 200),    // zero fee, confirmed
                entry(never_confirmed, 100, 200),      // 0.5 sat/vB, stuck
                entry(Txid::from([8; 32]), 5_000, 200), // healthy fee, ignored
            ],
        )];
        let report = low_fee_report(&snaps, &index, FeeRate::MIN_RELAY);
        assert_eq!(report.observed, 2);
        assert_eq!(report.zero_fee, 1);
        assert_eq!(report.confirmed, 1);
        assert_eq!(report.by_miner.get("F2Pool"), Some(&1));
        assert!((report.confirmation_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn duplicate_observations_counted_once() {
        let index = ChainIndex::default();
        let t = Txid::from([1; 32]);
        let snaps = vec![
            MempoolSnapshot::from_entries(0, vec![entry(t, 0, 200)]),
            MempoolSnapshot::from_entries(15, vec![entry(t, 0, 200)]),
        ];
        let report = low_fee_report(&snaps, &index, FeeRate::MIN_RELAY);
        assert_eq!(report.observed, 1);
        assert_eq!(report.confirmed, 0);
        assert_eq!(report.confirmation_rate(), 0.0);
    }

    #[test]
    fn empty_inputs() {
        let report = low_fee_report(&[], &ChainIndex::default(), FeeRate::MIN_RELAY);
        assert_eq!(report, LowFeeReport::default());
    }
}
