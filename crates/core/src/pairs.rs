//! Violation-pair counting (§4.2.1, Figure 6).
//!
//! Given the observer's view — for each eventually confirmed transaction,
//! its first-seen time `t`, fee rate `f`, and confirmation height `b` — a
//! pair `(i, j)` *violates* the fee-rate selection norm when
//!
//! ```text
//! t_i + ε < t_j   &&   f_i > f_j   &&   b_i > b_j
//! ```
//!
//! i.e. transaction `i` was seen (ε-robustly) earlier and offered more,
//! yet was committed later. The ε margin (the paper uses 10 s and 10 min)
//! absorbs divergence between the observer's arrival order and the
//! miners'.
//!
//! Counting is a 3-dimensional dominance problem; this module provides an
//! `O(n²)` reference and an `O(n log² n)` offline divide-and-conquer
//! (CDQ) counter over a Fenwick tree, plus the candidate-pair count
//! (pairs where the norm makes a prediction at all) for normalization.

use crate::error::AuditError;
use cn_chain::{FeeRate, Timestamp};

/// Checked entry point for degraded streams: violation counting over an
/// empty observation set (every detailed snapshot lost or truncated to
/// nothing) is reported as the data problem it is, instead of a zero
/// count that reads as "no violations".
pub fn count_violations_checked(
    obs: &[PairObservation],
    epsilon: u64,
) -> Result<PairStats, AuditError> {
    if obs.is_empty() {
        return Err(AuditError::NoDetailedSnapshots);
    }
    Ok(count_violations_cdq(obs, epsilon))
}

/// One confirmed transaction as the pair analysis sees it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PairObservation {
    /// First time the observer saw the transaction.
    pub received: Timestamp,
    /// The fee rate it offered.
    pub fee_rate: FeeRate,
    /// The height of the block that finally committed it.
    pub height: u64,
}

/// Violation-count result.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub struct PairStats {
    /// Pairs meeting all three violation conditions.
    pub violating: u64,
    /// Pairs meeting the time and fee conditions (the norm predicted an
    /// order for these).
    pub candidates: u64,
    /// All unordered pairs, `n·(n−1)/2`.
    pub total_pairs: u64,
}

impl PairStats {
    /// Violating share of all pairs (the Figure 6 y-axis).
    pub fn fraction_of_all(&self) -> f64 {
        if self.total_pairs == 0 {
            0.0
        } else {
            self.violating as f64 / self.total_pairs as f64
        }
    }

    /// Violating share of pairs where the norm made a prediction.
    pub fn fraction_of_candidates(&self) -> f64 {
        if self.candidates == 0 {
            0.0
        } else {
            self.violating as f64 / self.candidates as f64
        }
    }
}

/// Quadratic reference implementation (kept as the oracle for property
/// tests and as the ablation baseline for the CDQ counter).
pub fn count_violations_reference(obs: &[PairObservation], epsilon: u64) -> PairStats {
    let n = obs.len() as u64;
    let mut stats = PairStats { total_pairs: n * n.saturating_sub(1) / 2, ..PairStats::default() };
    for i in obs {
        for j in obs {
            if i.received.saturating_add(epsilon) < j.received && i.fee_rate > j.fee_rate {
                stats.candidates += 1;
                if i.height > j.height {
                    stats.violating += 1;
                }
            }
        }
    }
    stats
}

/// A Fenwick (binary indexed) tree over counts.
#[derive(Clone, Debug)]
struct Fenwick {
    tree: Vec<u64>,
}

impl Fenwick {
    fn new(n: usize) -> Fenwick {
        Fenwick { tree: vec![0; n + 1] }
    }

    /// Adds `delta` at 1-based index `i`.
    fn add(&mut self, mut i: usize, delta: i64) {
        while i < self.tree.len() {
            self.tree[i] = self.tree[i].wrapping_add(delta as u64);
            i += i & i.wrapping_neg();
        }
    }

    /// Sum of indices `1..=i`.
    fn prefix(&self, mut i: usize) -> u64 {
        let mut acc = 0u64;
        while i > 0 {
            acc = acc.wrapping_add(self.tree[i]);
            i -= i & i.wrapping_neg();
        }
        acc
    }
}

#[derive(Clone, Copy, Debug)]
struct Op {
    /// Event time: `t + ε` for inserts, `t` for queries.
    time: u64,
    /// Queries sort before inserts at equal time (strict `<` semantics).
    is_insert: bool,
    fee: FeeRate,
    /// 1-based compressed height rank.
    height_rank: usize,
}

/// `O(n log² n)` divide-and-conquer violation counter.
///
/// The operation sequence interleaves *inserts* (transaction `i` becomes
/// ε-eligible at `t_i + ε`) and *queries* (transaction `j` at `t_j` asks
/// how many eligible transactions dominate it in fee and height). The
/// recursion counts, for each query in the right half, the dominating
/// inserts in the left half via a fee-ordered sweep over a Fenwick tree
/// keyed by height rank.
pub fn count_violations_cdq(obs: &[PairObservation], epsilon: u64) -> PairStats {
    let n = obs.len() as u64;
    let total_pairs = n * n.saturating_sub(1) / 2;
    if obs.len() < 2 {
        return PairStats { total_pairs, ..PairStats::default() };
    }
    // Compress heights to ranks 1..=k.
    let mut heights: Vec<u64> = obs.iter().map(|o| o.height).collect();
    heights.sort_unstable();
    heights.dedup();
    let rank = |h: u64| heights.partition_point(|&x| x < h) + 1; // 1-based

    let mut ops: Vec<Op> = Vec::with_capacity(obs.len() * 2);
    for o in obs {
        ops.push(Op {
            time: o.received.saturating_add(epsilon),
            is_insert: true,
            fee: o.fee_rate,
            height_rank: rank(o.height),
        });
        ops.push(Op { time: o.received, is_insert: false, fee: o.fee_rate, height_rank: rank(o.height) });
    }
    // Queries first at equal time: `t_i + ε < t_j` is strict.
    ops.sort_by(|a, b| a.time.cmp(&b.time).then_with(|| a.is_insert.cmp(&b.is_insert)));

    let mut fenwick = Fenwick::new(heights.len());
    let mut violating = 0u64;
    let mut candidates = 0u64;
    cdq(&mut ops, &mut fenwick, &mut violating, &mut candidates);
    PairStats { violating, candidates, total_pairs }
}

/// Counts cross-half dominances and recurses. `ops` is ordered by
/// sequence time on entry and by fee (descending) on exit — the classic
/// CDQ merge-sort structure.
fn cdq(ops: &mut [Op], fenwick: &mut Fenwick, violating: &mut u64, candidates: &mut u64) {
    if ops.len() <= 1 {
        return;
    }
    let mid = ops.len() / 2;
    let (left, right) = ops.split_at_mut(mid);
    cdq(left, fenwick, violating, candidates);
    cdq(right, fenwick, violating, candidates);
    // Both halves are now sorted by fee descending. Sweep: for each query
    // in the right half (in fee-descending order), first add all left
    // inserts with strictly greater fee, then count height dominators.
    let mut li = 0usize;
    let mut added = 0u64;
    for q in right.iter().filter(|o| !o.is_insert) {
        while li < left.len() && left[li].fee > q.fee {
            if left[li].is_insert {
                fenwick.add(left[li].height_rank, 1);
                added += 1;
            }
            li += 1;
        }
        *candidates += added;
        *violating += added - fenwick.prefix(q.height_rank);
    }
    // Roll back the Fenwick for the parent call.
    for op in left[..li].iter().filter(|o| o.is_insert) {
        fenwick.add(op.height_rank, -1);
    }
    // Merge the halves by fee descending (manual merge keeps O(n log n)
    // overall sort cost across the recursion).
    let mut merged = Vec::with_capacity(left.len() + right.len());
    let (mut a, mut b) = (0usize, 0usize);
    while a < left.len() && b < right.len() {
        if left[a].fee >= right[b].fee {
            merged.push(left[a]);
            a += 1;
        } else {
            merged.push(right[b]);
            b += 1;
        }
    }
    merged.extend_from_slice(&left[a..]);
    merged.extend_from_slice(&right[b..]);
    ops.copy_from_slice(&merged);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obs(t: u64, rate: u64, h: u64) -> PairObservation {
        PairObservation {
            received: t,
            fee_rate: FeeRate::from_sat_per_kvb(rate),
            height: h,
        }
    }

    #[test]
    fn single_clear_violation() {
        // i seen first with a better rate, yet confirmed later.
        let data = [obs(0, 100, 5), obs(10, 50, 4)];
        let stats = count_violations_reference(&data, 0);
        assert_eq!(stats.violating, 1);
        assert_eq!(stats.candidates, 1);
        assert_eq!(stats.total_pairs, 1);
        assert_eq!(count_violations_cdq(&data, 0), stats);
    }

    #[test]
    fn norm_respected_no_violation() {
        let data = [obs(0, 100, 4), obs(10, 50, 5)];
        let stats = count_violations_reference(&data, 0);
        assert_eq!(stats.violating, 0);
        assert_eq!(stats.candidates, 1);
        assert_eq!(count_violations_cdq(&data, 0), stats);
    }

    #[test]
    fn epsilon_filters_close_arrivals() {
        let data = [obs(0, 100, 5), obs(8, 50, 4)];
        assert_eq!(count_violations_reference(&data, 0).violating, 1);
        // With ε = 10, 0 + 10 < 8 is false: the pair is no longer decided.
        assert_eq!(count_violations_reference(&data, 10).violating, 0);
        assert_eq!(count_violations_cdq(&data, 10).violating, 0);
    }

    #[test]
    fn strict_boundary_on_epsilon() {
        // t_i + ε == t_j must NOT count.
        let data = [obs(0, 100, 5), obs(10, 50, 4)];
        assert_eq!(count_violations_reference(&data, 10).violating, 0);
        assert_eq!(count_violations_cdq(&data, 10).violating, 0);
        assert_eq!(count_violations_reference(&data, 9).violating, 1);
        assert_eq!(count_violations_cdq(&data, 9).violating, 1);
    }

    #[test]
    fn equal_fee_rates_never_counted() {
        let data = [obs(0, 100, 5), obs(10, 100, 4)];
        let stats = count_violations_reference(&data, 0);
        assert_eq!(stats.candidates, 0);
        assert_eq!(stats.violating, 0);
        assert_eq!(count_violations_cdq(&data, 0), stats);
    }

    #[test]
    fn same_block_is_not_a_violation() {
        let data = [obs(0, 100, 5), obs(10, 50, 5)];
        let stats = count_violations_reference(&data, 0);
        assert_eq!(stats.violating, 0);
        assert_eq!(stats.candidates, 1);
        assert_eq!(count_violations_cdq(&data, 0), stats);
    }

    #[test]
    fn fractions() {
        let data = [obs(0, 100, 5), obs(10, 50, 4), obs(20, 10, 3)];
        let stats = count_violations_reference(&data, 0);
        assert_eq!(stats.total_pairs, 3);
        assert_eq!(stats.violating, 3);
        assert!((stats.fraction_of_all() - 1.0).abs() < 1e-12);
        assert!((stats.fraction_of_candidates() - 1.0).abs() < 1e-12);
        assert_eq!(PairStats::default().fraction_of_all(), 0.0);
    }

    #[test]
    fn cdq_matches_reference_on_pseudorandom_data() {
        // Deterministic pseudo-random stream via a simple LCG.
        let mut state = 0x2545_f491_4f6c_dd1du64;
        let mut next = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            state >> 33
        };
        for n in [1usize, 2, 3, 10, 64, 257] {
            let data: Vec<PairObservation> = (0..n)
                .map(|_| obs(next() % 1_000, next() % 50, next() % 20))
                .collect();
            for eps in [0u64, 5, 50] {
                let reference = count_violations_reference(&data, eps);
                let cdq = count_violations_cdq(&data, eps);
                assert_eq!(cdq, reference, "n={n} eps={eps}");
            }
        }
    }

    #[test]
    fn cdq_matches_reference_under_adversarial_ties() {
        // Tiny value domains make exact ties the rule, not the exception:
        // with times drawn from {0, ε, 2ε, …}, fees from three values, and
        // heights from two, almost every pair sits on a tie or exactly on
        // the strict `t_i + ε < t_j` boundary — the regime where the
        // Fenwick sweep's tie-breaking (queries before inserts at equal
        // time, strict fee comparison) is easiest to get subtly wrong.
        let mut state = 0x853c_49e6_748f_ea9bu64;
        let mut next = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            state >> 33
        };
        for eps in [0u64, 1, 7] {
            for n in [2usize, 3, 5, 17, 128] {
                let data: Vec<PairObservation> = (0..n)
                    .map(|_| {
                        // Times on the exact ε lattice; step 0 collapses
                        // everything onto a single instant.
                        let t = (next() % 4) * eps.max(1);
                        obs(t, [10, 10, 20, 30][(next() % 4) as usize], 1 + next() % 2)
                    })
                    .collect();
                assert_eq!(
                    count_violations_cdq(&data, eps),
                    count_violations_reference(&data, eps),
                    "ties: n={n} eps={eps}"
                );
            }
        }
    }

    #[test]
    fn cdq_matches_reference_with_epsilon_at_every_gap() {
        // For a fixed pseudo-random set, sweep ε across every pairwise
        // time gap and its ±1 neighbours, so each pair in turn flips from
        // decided to undecided exactly at the strict boundary.
        let mut state = 0xda3e_39cb_94b9_5bdbu64;
        let mut next = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            state >> 33
        };
        let data: Vec<PairObservation> =
            (0..40).map(|_| obs(next() % 200, next() % 30, next() % 8)).collect();
        let mut epsilons = vec![0u64];
        for i in &data {
            for j in &data {
                let gap = j.received.saturating_sub(i.received);
                epsilons.extend([gap.saturating_sub(1), gap, gap + 1]);
            }
        }
        epsilons.sort_unstable();
        epsilons.dedup();
        for eps in epsilons {
            assert_eq!(
                count_violations_cdq(&data, eps),
                count_violations_reference(&data, eps),
                "eps={eps}"
            );
        }
    }

    #[test]
    fn cdq_handles_epsilon_saturation() {
        // `t + ε` saturates instead of wrapping: with ε = u64::MAX no pair
        // can satisfy the strict inequality, however the times tie.
        let data =
            [obs(0, 100, 5), obs(u64::MAX - 1, 50, 4), obs(u64::MAX, 70, 3), obs(3, 60, 2)];
        for eps in [u64::MAX, u64::MAX - 1, u64::MAX / 2] {
            let reference = count_violations_reference(&data, eps);
            assert_eq!(count_violations_cdq(&data, eps), reference, "eps={eps}");
        }
        assert_eq!(count_violations_cdq(&data, u64::MAX).violating, 0);
    }

    #[test]
    fn fully_degenerate_inputs() {
        // All-identical observations: no pair has a strict fee or time
        // edge, so nothing is a candidate whatever ε says.
        let data = vec![obs(5, 10, 3); 50];
        for eps in [0u64, 1, 100] {
            let stats = count_violations_cdq(&data, eps);
            assert_eq!(stats.candidates, 0);
            assert_eq!(stats.violating, 0);
            assert_eq!(stats, count_violations_reference(&data, eps));
        }
    }

    #[test]
    fn empty_and_singleton() {
        assert_eq!(count_violations_cdq(&[], 0), PairStats::default());
        let one = [obs(0, 10, 1)];
        let stats = count_violations_cdq(&one, 0);
        assert_eq!(stats.total_pairs, 0);
        assert_eq!(stats.violating, 0);
    }
}
