//! Violation-pair counting (§4.2.1, Figure 6).
//!
//! Given the observer's view — for each eventually confirmed transaction,
//! its first-seen time `t`, fee rate `f`, and confirmation height `b` — a
//! pair `(i, j)` *violates* the fee-rate selection norm when
//!
//! ```text
//! t_i + ε < t_j   &&   f_i > f_j   &&   b_i > b_j
//! ```
//!
//! i.e. transaction `i` was seen (ε-robustly) earlier and offered more,
//! yet was committed later. The ε margin (the paper uses 10 s and 10 min)
//! absorbs divergence between the observer's arrival order and the
//! miners'.
//!
//! Counting is a 3-dimensional dominance problem; this module provides an
//! `O(n²)` reference and an `O(n log² n)` offline divide-and-conquer
//! (CDQ) counter over a Fenwick tree, plus the candidate-pair count
//! (pairs where the norm makes a prediction at all) for normalization.

use crate::error::AuditError;
use cn_chain::{FeeRate, Timestamp};

/// Checked entry point for degraded streams: violation counting over an
/// empty observation set (every detailed snapshot lost or truncated to
/// nothing) is reported as the data problem it is, instead of a zero
/// count that reads as "no violations".
pub fn count_violations_checked(
    obs: &[PairObservation],
    epsilon: u64,
) -> Result<PairStats, AuditError> {
    if obs.is_empty() {
        return Err(AuditError::NoDetailedSnapshots);
    }
    Ok(count_violations_cdq(obs, epsilon))
}

/// One confirmed transaction as the pair analysis sees it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PairObservation {
    /// First time the observer saw the transaction.
    pub received: Timestamp,
    /// The fee rate it offered.
    pub fee_rate: FeeRate,
    /// The height of the block that finally committed it.
    pub height: u64,
}

/// Violation-count result.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub struct PairStats {
    /// Pairs meeting all three violation conditions.
    pub violating: u64,
    /// Pairs meeting the time and fee conditions (the norm predicted an
    /// order for these).
    pub candidates: u64,
    /// All unordered pairs, `n·(n−1)/2`.
    pub total_pairs: u64,
}

impl PairStats {
    /// Violating share of all pairs (the Figure 6 y-axis).
    pub fn fraction_of_all(&self) -> f64 {
        if self.total_pairs == 0 {
            0.0
        } else {
            self.violating as f64 / self.total_pairs as f64
        }
    }

    /// Violating share of pairs where the norm made a prediction.
    pub fn fraction_of_candidates(&self) -> f64 {
        if self.candidates == 0 {
            0.0
        } else {
            self.violating as f64 / self.candidates as f64
        }
    }
}

/// Quadratic reference implementation (kept as the oracle for property
/// tests and as the ablation baseline for the CDQ counter).
pub fn count_violations_reference(obs: &[PairObservation], epsilon: u64) -> PairStats {
    let n = obs.len() as u64;
    let mut stats = PairStats { total_pairs: n * n.saturating_sub(1) / 2, ..PairStats::default() };
    for i in obs {
        for j in obs {
            if i.received.saturating_add(epsilon) < j.received && i.fee_rate > j.fee_rate {
                stats.candidates += 1;
                if i.height > j.height {
                    stats.violating += 1;
                }
            }
        }
    }
    stats
}

/// A Fenwick (binary indexed) tree over counts.
#[derive(Clone, Debug)]
struct Fenwick {
    tree: Vec<u64>,
}

impl Fenwick {
    fn new(n: usize) -> Fenwick {
        Fenwick { tree: vec![0; n + 1] }
    }

    /// Adds `delta` at 1-based index `i`.
    fn add(&mut self, mut i: usize, delta: i64) {
        while i < self.tree.len() {
            self.tree[i] = self.tree[i].wrapping_add(delta as u64);
            i += i & i.wrapping_neg();
        }
    }

    /// Sum of indices `1..=i`.
    fn prefix(&self, mut i: usize) -> u64 {
        let mut acc = 0u64;
        while i > 0 {
            acc = acc.wrapping_add(self.tree[i]);
            i -= i & i.wrapping_neg();
        }
        acc
    }
}

#[derive(Clone, Copy, Debug)]
struct Op {
    /// Event time: `t + ε` for inserts, `t` for queries.
    time: u64,
    /// Queries sort before inserts at equal time (strict `<` semantics).
    is_insert: bool,
    fee: FeeRate,
    /// 1-based compressed height rank.
    height_rank: usize,
}

/// `O(n log² n)` divide-and-conquer violation counter.
///
/// The operation sequence interleaves *inserts* (transaction `i` becomes
/// ε-eligible at `t_i + ε`) and *queries* (transaction `j` at `t_j` asks
/// how many eligible transactions dominate it in fee and height). The
/// recursion counts, for each query in the right half, the dominating
/// inserts in the left half via a fee-ordered sweep over a Fenwick tree
/// keyed by height rank.
pub fn count_violations_cdq(obs: &[PairObservation], epsilon: u64) -> PairStats {
    let n = obs.len() as u64;
    let total_pairs = n * n.saturating_sub(1) / 2;
    if obs.len() < 2 {
        return PairStats { total_pairs, ..PairStats::default() };
    }
    // Compress heights to ranks 1..=k.
    let mut heights: Vec<u64> = obs.iter().map(|o| o.height).collect();
    heights.sort_unstable();
    heights.dedup();
    let rank = |h: u64| heights.partition_point(|&x| x < h) + 1; // 1-based

    let mut ops: Vec<Op> = Vec::with_capacity(obs.len() * 2);
    for o in obs {
        ops.push(Op {
            time: o.received.saturating_add(epsilon),
            is_insert: true,
            fee: o.fee_rate,
            height_rank: rank(o.height),
        });
        ops.push(Op { time: o.received, is_insert: false, fee: o.fee_rate, height_rank: rank(o.height) });
    }
    // Queries first at equal time: `t_i + ε < t_j` is strict.
    ops.sort_by(|a, b| a.time.cmp(&b.time).then_with(|| a.is_insert.cmp(&b.is_insert)));

    let mut fenwick = Fenwick::new(heights.len());
    let mut violating = 0u64;
    let mut candidates = 0u64;
    cdq(&mut ops, &mut fenwick, &mut violating, &mut candidates);
    PairStats { violating, candidates, total_pairs }
}

/// Counts cross-half dominances and recurses. `ops` is ordered by
/// sequence time on entry and by fee (descending) on exit — the classic
/// CDQ merge-sort structure.
fn cdq(ops: &mut [Op], fenwick: &mut Fenwick, violating: &mut u64, candidates: &mut u64) {
    if ops.len() <= 1 {
        return;
    }
    let mid = ops.len() / 2;
    let (left, right) = ops.split_at_mut(mid);
    cdq(left, fenwick, violating, candidates);
    cdq(right, fenwick, violating, candidates);
    // Both halves are now sorted by fee descending. Sweep: for each query
    // in the right half (in fee-descending order), first add all left
    // inserts with strictly greater fee, then count height dominators.
    let mut li = 0usize;
    let mut added = 0u64;
    for q in right.iter().filter(|o| !o.is_insert) {
        while li < left.len() && left[li].fee > q.fee {
            if left[li].is_insert {
                fenwick.add(left[li].height_rank, 1);
                added += 1;
            }
            li += 1;
        }
        *candidates += added;
        *violating += added - fenwick.prefix(q.height_rank);
    }
    // Roll back the Fenwick for the parent call.
    for op in left[..li].iter().filter(|o| o.is_insert) {
        fenwick.add(op.height_rank, -1);
    }
    // Merge the halves by fee descending (manual merge keeps O(n log n)
    // overall sort cost across the recursion).
    let mut merged = Vec::with_capacity(left.len() + right.len());
    let (mut a, mut b) = (0usize, 0usize);
    while a < left.len() && b < right.len() {
        if left[a].fee >= right[b].fee {
            merged.push(left[a]);
            a += 1;
        } else {
            merged.push(right[b]);
            b += 1;
        }
    }
    merged.extend_from_slice(&left[a..]);
    merged.extend_from_slice(&right[b..]);
    ops.copy_from_slice(&merged);
}

// ---------------------------------------------------------------------------
// Cross-block kernels (streaming window sealing)
// ---------------------------------------------------------------------------
//
// The streaming auditor charges each cross-block pair to the earlier
// block's miner when the later block seals, which asks a two-set variant
// of the dominance question: given a *later* block L and an *earlier*
// block E (both already reduced to eligible `(received, fee)` rows),
//
// ```text
// held(L, E)     = #{(a ∈ L, b ∈ E) : b.recv + ε < a.recv && b.fee > a.fee}
// violating(L,E) = #{(a ∈ L, b ∈ E) : a.recv + ε < b.recv && a.fee > b.fee}
// candidates     = held + violating
// ```
//
// The naive scan is `O(|L|·|E|)` per block pair and dominates window
// sealing. Both directions are instances of one primitive —
// `dominant(X, Y) = #{(x, y) : x.recv + ε < y.recv && x.fee > y.fee}` —
// for which this module provides two exact kernels over pre-sorted
// per-block arrays ([`BlockPairSet`], built once per sealed block and
// reused for every window comparison it participates in):
//
// * a **sorted-merge** kernel: sweep Y by arrival time with a two-pointer
//   insert of ε-eligible X rows into a Fenwick tree keyed by fee rank,
//   `O((|X|+|Y|) log |X|)`;
// * a **bitset** kernel: sweep Y by fee (descending) with a two-pointer
//   marking of higher-fee X rows in a bitset indexed by X's arrival
//   rank, answering each y by a prefix popcount, `O(|Y|·|X|/64)`.
//
// Both are bit-identical to the nested-loop reference (strict
// comparisons, saturating ε) — counting is exact integer arithmetic, so
// kernel choice can never change an audit verdict.

/// Row-count threshold below which the bitset kernel beats the
/// sorted-merge kernel (`|X|/64` words per query vs `log |X|` Fenwick
/// probes, see the `pair_kernels` bench). Real block rowsets are a few
/// hundred rows, so the bitset path is the common case.
pub const BITSET_KERNEL_MAX_ROWS: usize = 4096;

/// One block's eligible rows, pre-sorted for the cross-block kernels.
///
/// Rows carry only what the norm compares: first-seen time and the exact
/// integer fee key (sat/kvB). Ranks are `u32` handles into the block's
/// own arrays, mirroring the interned-txid discipline used elsewhere.
#[derive(Clone, Debug, Default)]
pub struct BlockPairSet {
    /// First-seen times, ascending.
    recv: Vec<u64>,
    /// Fee key of the row at each arrival rank.
    fee_by_recv: Vec<u64>,
    /// Fee keys, ascending.
    fees_asc: Vec<u64>,
    /// Arrival rank of the row at each fee-ascending slot.
    recv_rank_by_fee_asc: Vec<u32>,
    /// Fee-ascending slot of the row at each arrival rank.
    fee_slot_by_recv: Vec<u32>,
}

impl BlockPairSet {
    /// Builds the sorted views from `(received, fee_key)` rows.
    pub fn new(rows: impl IntoIterator<Item = (Timestamp, FeeRate)>) -> BlockPairSet {
        let mut by_recv: Vec<(u64, u64)> =
            rows.into_iter().map(|(t, f)| (t, f.to_sat_per_kvb())).collect();
        by_recv.sort_unstable();
        let recv: Vec<u64> = by_recv.iter().map(|r| r.0).collect();
        let fee_by_recv: Vec<u64> = by_recv.iter().map(|r| r.1).collect();

        let mut fee_order: Vec<u32> = (0..by_recv.len() as u32).collect();
        fee_order.sort_unstable_by_key(|&r| fee_by_recv[r as usize]);
        let fees_asc: Vec<u64> = fee_order.iter().map(|&r| fee_by_recv[r as usize]).collect();
        let mut fee_slot_by_recv = vec![0u32; by_recv.len()];
        for (slot, &r) in fee_order.iter().enumerate() {
            fee_slot_by_recv[r as usize] = slot as u32;
        }
        BlockPairSet { recv, fee_by_recv, fees_asc, recv_rank_by_fee_asc: fee_order, fee_slot_by_recv }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.recv.len()
    }

    /// Whether the block contributed no eligible rows.
    pub fn is_empty(&self) -> bool {
        self.recv.is_empty()
    }

    /// `#{x : x.recv + ε < than}` — the ε-eligible arrival prefix.
    /// `saturating_add` keeps huge ε total (no row is ever eligible).
    fn eligible_before(&self, than: u64, epsilon: u64) -> usize {
        self.recv.partition_point(|&t| t.saturating_add(epsilon) < than)
    }
}

/// `dominant(X, Y)` via arrival-sweep + Fenwick over X's fee ranks.
fn dominant_merge(x: &BlockPairSet, y: &BlockPairSet, epsilon: u64) -> u64 {
    if x.is_empty() || y.is_empty() {
        return 0;
    }
    let mut fenwick = Fenwick::new(x.len());
    let mut xi = 0usize;
    let mut added = 0u64;
    let mut count = 0u64;
    for (&y_recv, &y_fee) in y.recv.iter().zip(&y.fee_by_recv) {
        while xi < x.len() && x.recv[xi].saturating_add(epsilon) < y_recv {
            fenwick.add(x.fee_slot_by_recv[xi] as usize + 1, 1);
            added += 1;
            xi += 1;
        }
        if added > 0 {
            // Rows with fee <= y_fee occupy exactly the first `le` fee slots.
            let le = x.fees_asc.partition_point(|&f| f <= y_fee);
            count += added - fenwick.prefix(le);
        }
    }
    count
}

/// `dominant(X, Y)` via fee-descending sweep + arrival-rank bitset.
fn dominant_bitset(x: &BlockPairSet, y: &BlockPairSet, epsilon: u64) -> u64 {
    if x.is_empty() || y.is_empty() {
        return 0;
    }
    let words = x.len().div_ceil(64);
    let mut bits = vec![0u64; words];
    // Y rows in fee-descending order, carrying their arrival times.
    let mut xj = x.len(); // next X fee-desc candidate is fees_asc[xj - 1]
    let mut count = 0u64;
    for ys in (0..y.len()).rev() {
        let y_fee = y.fees_asc[ys];
        let y_recv = y.recv[y.recv_rank_by_fee_asc[ys] as usize];
        while xj > 0 && x.fees_asc[xj - 1] > y_fee {
            let rank = x.recv_rank_by_fee_asc[xj - 1] as usize;
            bits[rank / 64] |= 1u64 << (rank % 64);
            xj -= 1;
        }
        let k = x.eligible_before(y_recv, epsilon);
        for &word in bits.iter().take(k / 64) {
            count += word.count_ones() as u64;
        }
        if !k.is_multiple_of(64) {
            let mask = (1u64 << (k % 64)) - 1;
            count += (bits[k / 64] & mask).count_ones() as u64;
        }
    }
    count
}

/// `dominant(X, Y)` with the kernel picked by X's row count.
fn dominant(x: &BlockPairSet, y: &BlockPairSet, epsilon: u64) -> u64 {
    if x.len() <= BITSET_KERNEL_MAX_ROWS {
        dominant_bitset(x, y, epsilon)
    } else {
        dominant_merge(x, y, epsilon)
    }
}

/// Cross-block pair statistics between a sealing (later) block and one
/// earlier window block, kernel-accelerated. `total_pairs` is the ordered
/// cross-product `|L|·|E|`.
pub fn count_cross_block(later: &BlockPairSet, earlier: &BlockPairSet, epsilon: u64) -> PairStats {
    let violating = dominant(later, earlier, epsilon);
    let held = dominant(earlier, later, epsilon);
    PairStats {
        violating,
        candidates: held + violating,
        total_pairs: later.len() as u64 * earlier.len() as u64,
    }
}

/// [`count_cross_block`] pinned to the sorted-merge (Fenwick) kernel
/// regardless of block size — for ablation benches and equivalence tests.
pub fn count_cross_block_merge(
    later: &BlockPairSet,
    earlier: &BlockPairSet,
    epsilon: u64,
) -> PairStats {
    let violating = dominant_merge(later, earlier, epsilon);
    let held = dominant_merge(earlier, later, epsilon);
    PairStats {
        violating,
        candidates: held + violating,
        total_pairs: later.len() as u64 * earlier.len() as u64,
    }
}

/// [`count_cross_block`] pinned to the bitset kernel regardless of block
/// size — for ablation benches and equivalence tests.
pub fn count_cross_block_bitset(
    later: &BlockPairSet,
    earlier: &BlockPairSet,
    epsilon: u64,
) -> PairStats {
    let violating = dominant_bitset(later, earlier, epsilon);
    let held = dominant_bitset(earlier, later, epsilon);
    PairStats {
        violating,
        candidates: held + violating,
        total_pairs: later.len() as u64 * earlier.len() as u64,
    }
}

/// Quadratic cross-block reference: the literal sealed-block × window-block
/// scan the kernels replace, kept as the oracle for property tests.
pub fn count_cross_block_reference(
    later: &[(Timestamp, FeeRate)],
    earlier: &[(Timestamp, FeeRate)],
    epsilon: u64,
) -> PairStats {
    let mut stats = PairStats {
        total_pairs: later.len() as u64 * earlier.len() as u64,
        ..PairStats::default()
    };
    for &(ra, fa) in later {
        for &(rb, fb) in earlier {
            if rb.saturating_add(epsilon) < ra && fb > fa {
                // Seen earlier at a higher rate, confirmed earlier: held.
                stats.candidates += 1;
            } else if ra.saturating_add(epsilon) < rb && fa > fb {
                // Seen earlier at a higher rate, confirmed later: violation.
                stats.candidates += 1;
                stats.violating += 1;
            }
        }
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obs(t: u64, rate: u64, h: u64) -> PairObservation {
        PairObservation {
            received: t,
            fee_rate: FeeRate::from_sat_per_kvb(rate),
            height: h,
        }
    }

    #[test]
    fn single_clear_violation() {
        // i seen first with a better rate, yet confirmed later.
        let data = [obs(0, 100, 5), obs(10, 50, 4)];
        let stats = count_violations_reference(&data, 0);
        assert_eq!(stats.violating, 1);
        assert_eq!(stats.candidates, 1);
        assert_eq!(stats.total_pairs, 1);
        assert_eq!(count_violations_cdq(&data, 0), stats);
    }

    #[test]
    fn norm_respected_no_violation() {
        let data = [obs(0, 100, 4), obs(10, 50, 5)];
        let stats = count_violations_reference(&data, 0);
        assert_eq!(stats.violating, 0);
        assert_eq!(stats.candidates, 1);
        assert_eq!(count_violations_cdq(&data, 0), stats);
    }

    #[test]
    fn epsilon_filters_close_arrivals() {
        let data = [obs(0, 100, 5), obs(8, 50, 4)];
        assert_eq!(count_violations_reference(&data, 0).violating, 1);
        // With ε = 10, 0 + 10 < 8 is false: the pair is no longer decided.
        assert_eq!(count_violations_reference(&data, 10).violating, 0);
        assert_eq!(count_violations_cdq(&data, 10).violating, 0);
    }

    #[test]
    fn strict_boundary_on_epsilon() {
        // t_i + ε == t_j must NOT count.
        let data = [obs(0, 100, 5), obs(10, 50, 4)];
        assert_eq!(count_violations_reference(&data, 10).violating, 0);
        assert_eq!(count_violations_cdq(&data, 10).violating, 0);
        assert_eq!(count_violations_reference(&data, 9).violating, 1);
        assert_eq!(count_violations_cdq(&data, 9).violating, 1);
    }

    #[test]
    fn equal_fee_rates_never_counted() {
        let data = [obs(0, 100, 5), obs(10, 100, 4)];
        let stats = count_violations_reference(&data, 0);
        assert_eq!(stats.candidates, 0);
        assert_eq!(stats.violating, 0);
        assert_eq!(count_violations_cdq(&data, 0), stats);
    }

    #[test]
    fn same_block_is_not_a_violation() {
        let data = [obs(0, 100, 5), obs(10, 50, 5)];
        let stats = count_violations_reference(&data, 0);
        assert_eq!(stats.violating, 0);
        assert_eq!(stats.candidates, 1);
        assert_eq!(count_violations_cdq(&data, 0), stats);
    }

    #[test]
    fn fractions() {
        let data = [obs(0, 100, 5), obs(10, 50, 4), obs(20, 10, 3)];
        let stats = count_violations_reference(&data, 0);
        assert_eq!(stats.total_pairs, 3);
        assert_eq!(stats.violating, 3);
        assert!((stats.fraction_of_all() - 1.0).abs() < 1e-12);
        assert!((stats.fraction_of_candidates() - 1.0).abs() < 1e-12);
        assert_eq!(PairStats::default().fraction_of_all(), 0.0);
    }

    #[test]
    fn cdq_matches_reference_on_pseudorandom_data() {
        // Deterministic pseudo-random stream via a simple LCG.
        let mut state = 0x2545_f491_4f6c_dd1du64;
        let mut next = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            state >> 33
        };
        for n in [1usize, 2, 3, 10, 64, 257] {
            let data: Vec<PairObservation> = (0..n)
                .map(|_| obs(next() % 1_000, next() % 50, next() % 20))
                .collect();
            for eps in [0u64, 5, 50] {
                let reference = count_violations_reference(&data, eps);
                let cdq = count_violations_cdq(&data, eps);
                assert_eq!(cdq, reference, "n={n} eps={eps}");
            }
        }
    }

    #[test]
    fn cdq_matches_reference_under_adversarial_ties() {
        // Tiny value domains make exact ties the rule, not the exception:
        // with times drawn from {0, ε, 2ε, …}, fees from three values, and
        // heights from two, almost every pair sits on a tie or exactly on
        // the strict `t_i + ε < t_j` boundary — the regime where the
        // Fenwick sweep's tie-breaking (queries before inserts at equal
        // time, strict fee comparison) is easiest to get subtly wrong.
        let mut state = 0x853c_49e6_748f_ea9bu64;
        let mut next = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            state >> 33
        };
        for eps in [0u64, 1, 7] {
            for n in [2usize, 3, 5, 17, 128] {
                let data: Vec<PairObservation> = (0..n)
                    .map(|_| {
                        // Times on the exact ε lattice; step 0 collapses
                        // everything onto a single instant.
                        let t = (next() % 4) * eps.max(1);
                        obs(t, [10, 10, 20, 30][(next() % 4) as usize], 1 + next() % 2)
                    })
                    .collect();
                assert_eq!(
                    count_violations_cdq(&data, eps),
                    count_violations_reference(&data, eps),
                    "ties: n={n} eps={eps}"
                );
            }
        }
    }

    #[test]
    fn cdq_matches_reference_with_epsilon_at_every_gap() {
        // For a fixed pseudo-random set, sweep ε across every pairwise
        // time gap and its ±1 neighbours, so each pair in turn flips from
        // decided to undecided exactly at the strict boundary.
        let mut state = 0xda3e_39cb_94b9_5bdbu64;
        let mut next = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            state >> 33
        };
        let data: Vec<PairObservation> =
            (0..40).map(|_| obs(next() % 200, next() % 30, next() % 8)).collect();
        let mut epsilons = vec![0u64];
        for i in &data {
            for j in &data {
                let gap = j.received.saturating_sub(i.received);
                epsilons.extend([gap.saturating_sub(1), gap, gap + 1]);
            }
        }
        epsilons.sort_unstable();
        epsilons.dedup();
        for eps in epsilons {
            assert_eq!(
                count_violations_cdq(&data, eps),
                count_violations_reference(&data, eps),
                "eps={eps}"
            );
        }
    }

    #[test]
    fn cdq_handles_epsilon_saturation() {
        // `t + ε` saturates instead of wrapping: with ε = u64::MAX no pair
        // can satisfy the strict inequality, however the times tie.
        let data =
            [obs(0, 100, 5), obs(u64::MAX - 1, 50, 4), obs(u64::MAX, 70, 3), obs(3, 60, 2)];
        for eps in [u64::MAX, u64::MAX - 1, u64::MAX / 2] {
            let reference = count_violations_reference(&data, eps);
            assert_eq!(count_violations_cdq(&data, eps), reference, "eps={eps}");
        }
        assert_eq!(count_violations_cdq(&data, u64::MAX).violating, 0);
    }

    #[test]
    fn fully_degenerate_inputs() {
        // All-identical observations: no pair has a strict fee or time
        // edge, so nothing is a candidate whatever ε says.
        let data = vec![obs(5, 10, 3); 50];
        for eps in [0u64, 1, 100] {
            let stats = count_violations_cdq(&data, eps);
            assert_eq!(stats.candidates, 0);
            assert_eq!(stats.violating, 0);
            assert_eq!(stats, count_violations_reference(&data, eps));
        }
    }

    #[test]
    fn empty_and_singleton() {
        assert_eq!(count_violations_cdq(&[], 0), PairStats::default());
        let one = [obs(0, 10, 1)];
        let stats = count_violations_cdq(&one, 0);
        assert_eq!(stats.total_pairs, 0);
        assert_eq!(stats.violating, 0);
    }

    // --- cross-block kernels ---

    fn rows(raw: &[(u64, u64)]) -> Vec<(Timestamp, FeeRate)> {
        raw.iter().map(|&(t, f)| (t, FeeRate::from_sat_per_kvb(f))).collect()
    }

    /// Asserts both kernels and the auto selector against the reference.
    fn assert_cross_kernels(later: &[(Timestamp, FeeRate)], earlier: &[(Timestamp, FeeRate)], eps: u64) {
        let reference = count_cross_block_reference(later, earlier, eps);
        let l = BlockPairSet::new(later.iter().copied());
        let e = BlockPairSet::new(earlier.iter().copied());
        let merge = PairStats {
            violating: dominant_merge(&l, &e, eps),
            candidates: dominant_merge(&l, &e, eps) + dominant_merge(&e, &l, eps),
            total_pairs: (l.len() * e.len()) as u64,
        };
        let bitset = PairStats {
            violating: dominant_bitset(&l, &e, eps),
            candidates: dominant_bitset(&l, &e, eps) + dominant_bitset(&e, &l, eps),
            total_pairs: (l.len() * e.len()) as u64,
        };
        assert_eq!(merge, reference, "sorted-merge kernel eps={eps}");
        assert_eq!(bitset, reference, "bitset kernel eps={eps}");
        assert_eq!(count_cross_block(&l, &e, eps), reference, "auto kernel eps={eps}");
    }

    #[test]
    fn cross_block_single_violation_and_hold() {
        // a ∈ later seen first at a higher rate but confirmed later: violation.
        let later = rows(&[(0, 100)]);
        let earlier = rows(&[(10, 50)]);
        let stats = count_cross_block_reference(&later, &earlier, 0);
        assert_eq!((stats.violating, stats.candidates, stats.total_pairs), (1, 1, 1));
        assert_cross_kernels(&later, &earlier, 0);
        // b ∈ earlier seen first at a higher rate and confirmed first: held.
        let stats = count_cross_block_reference(&earlier, &later, 0);
        assert_eq!((stats.violating, stats.candidates), (0, 1));
        assert_cross_kernels(&earlier, &later, 0);
    }

    #[test]
    fn cross_block_strict_epsilon_boundary() {
        // t_a + ε == t_b must NOT count, t_a + ε == t_b − 1 must.
        let later = rows(&[(0, 100)]);
        let earlier = rows(&[(10, 50)]);
        assert_eq!(count_cross_block_reference(&later, &earlier, 10).candidates, 0);
        assert_eq!(count_cross_block_reference(&later, &earlier, 9).violating, 1);
        for eps in [0, 9, 10, 11] {
            assert_cross_kernels(&later, &earlier, eps);
        }
    }

    #[test]
    fn cross_block_equal_fees_and_times_never_counted() {
        // Fee ties and time ties are both strict: all-identical rows on
        // both sides yield zero candidates at every ε.
        let later = rows(&[(5, 10), (5, 10), (5, 10)]);
        let earlier = rows(&[(5, 10), (5, 10)]);
        for eps in [0, 1, u64::MAX] {
            let stats = count_cross_block_reference(&later, &earlier, eps);
            assert_eq!((stats.violating, stats.candidates), (0, 0));
            assert_cross_kernels(&later, &earlier, eps);
        }
    }

    #[test]
    fn cross_block_adversarial_tie_lattice() {
        // Times on the exact ε lattice and fees from a tiny domain: the
        // regime where prefix boundaries (partition_point on `t + ε` and
        // on fee keys) sit exactly on tied values.
        let mut state = 0x9e37_79b9_7f4a_7c15u64;
        let mut next = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            state >> 33
        };
        for eps in [0u64, 1, 7] {
            for (nl, ne) in [(1usize, 1usize), (3, 2), (17, 5), (64, 129)] {
                let mk = |n: usize, next: &mut dyn FnMut() -> u64| {
                    rows(&(0..n)
                        .map(|_| ((next() % 4) * eps.max(1), [10, 10, 20, 30][(next() % 4) as usize]))
                        .collect::<Vec<_>>())
                };
                let later = mk(nl, &mut next);
                let earlier = mk(ne, &mut next);
                assert_cross_kernels(&later, &earlier, eps);
            }
        }
    }

    #[test]
    fn cross_block_epsilon_at_every_gap() {
        // Sweep ε across every pairwise gap ±1 so each cross pair flips
        // from decided to undecided exactly at the strict boundary.
        let mut state = 0xda3e_39cb_94b9_5bdbu64;
        let mut next = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            state >> 33
        };
        let later = rows(&(0..23).map(|_| (next() % 100, next() % 20)).collect::<Vec<_>>());
        let earlier = rows(&(0..31).map(|_| (next() % 100, next() % 20)).collect::<Vec<_>>());
        let mut epsilons = vec![0u64];
        for &(ta, _) in &later {
            for &(tb, _) in &earlier {
                let gap = ta.abs_diff(tb);
                epsilons.extend([gap.saturating_sub(1), gap, gap + 1]);
            }
        }
        epsilons.sort_unstable();
        epsilons.dedup();
        for eps in epsilons {
            assert_cross_kernels(&later, &earlier, eps);
        }
    }

    #[test]
    fn cross_block_epsilon_saturation() {
        // `t + ε` saturates instead of wrapping: near-u64::MAX times and
        // huge ε must never produce a candidate through overflow.
        let later = rows(&[(0, 100), (u64::MAX - 1, 50), (u64::MAX, 70)]);
        let earlier = rows(&[(3, 60), (u64::MAX, 10)]);
        for eps in [u64::MAX, u64::MAX - 1, u64::MAX / 2, 0] {
            assert_cross_kernels(&later, &earlier, eps);
        }
        let l = BlockPairSet::new(later.iter().copied());
        let e = BlockPairSet::new(earlier.iter().copied());
        assert_eq!(count_cross_block(&l, &e, u64::MAX).candidates, 0);
    }

    #[test]
    fn cross_block_pseudorandom_equivalence() {
        let mut state = 0x2545_f491_4f6c_dd1du64;
        let mut next = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            state >> 33
        };
        for (nl, ne) in [(0usize, 5usize), (5, 0), (1, 1), (40, 7), (130, 130), (257, 64)] {
            let later = rows(&(0..nl).map(|_| (next() % 1_000, next() % 50)).collect::<Vec<_>>());
            let earlier = rows(&(0..ne).map(|_| (next() % 1_000, next() % 50)).collect::<Vec<_>>());
            for eps in [0u64, 5, 50] {
                assert_cross_kernels(&later, &earlier, eps);
            }
        }
    }

    #[test]
    fn cross_block_empty_sides() {
        let some = BlockPairSet::new(rows(&[(1, 10), (2, 20)]));
        let empty = BlockPairSet::new(std::iter::empty());
        assert!(empty.is_empty());
        assert_eq!(count_cross_block(&some, &empty, 0), PairStats::default());
        assert_eq!(count_cross_block(&empty, &some, 0), PairStats::default());
    }
}
