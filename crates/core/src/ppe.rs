//! Position Prediction Error (§4.2.2, Figures 1 and 7).
//!
//! For a block's non-CPFP transactions, the fee-rate norm predicts their
//! order exactly: descending fee rate. PPE measures how far the observed
//! ordering deviates, as the mean absolute difference between predicted
//! and observed positions expressed in percentile ranks (so a block that
//! reverses the norm entirely scores ~33 % and a norm-following block
//! scores ~0 %).

use crate::index::{BlockInfo, ChainIndex};
use std::collections::HashMap;

/// Percentile rank (0–100) of position `i` among `n` items, mid-ranked.
pub(crate) fn percentile(i: usize, n: usize) -> f64 {
    debug_assert!(n > 0);
    (i as f64 + 0.5) / n as f64 * 100.0
}

/// Predicted position (0-based) of each transaction under the fee-rate
/// norm, among the given subset of a block's transactions. Ties are
/// broken in favour of the observed order (benefit of the doubt — the
/// norm does not specify tie order).
pub(crate) fn predicted_positions(subset: &[(usize, u64, u64)]) -> Vec<usize> {
    // subset entries: (observed_index_in_subset, fee_sat, vsize)
    let mut order: Vec<usize> = (0..subset.len()).collect();
    order.sort_by(|&a, &b| {
        let (oa, fa, va) = subset[a];
        let (ob, fb, vb) = subset[b];
        // fee rate descending: fa/va > fb/vb  <=>  fa*vb > fb*va
        let lhs = fa as u128 * vb as u128;
        let rhs = fb as u128 * va as u128;
        rhs.cmp(&lhs).then_with(|| oa.cmp(&ob))
    });
    // order[k] = index (within subset) of the tx predicted at position k;
    // invert to predicted position per tx.
    let mut predicted = vec![0usize; subset.len()];
    for (rank, &idx) in order.iter().enumerate() {
        predicted[idx] = rank;
    }
    predicted
}

/// PPE of a single block, over its non-CPFP transactions. Returns `None`
/// for blocks with no non-CPFP transactions (the paper keeps the 99.55 %
/// of blocks that have at least one).
pub fn block_ppe(block: &BlockInfo) -> Option<f64> {
    let subset: Vec<(usize, u64, u64)> = block
        .txs
        .iter()
        .filter(|t| !t.is_cpfp)
        .enumerate()
        .map(|(i, t)| (i, t.fee.to_sat(), t.vsize.max(1)))
        .collect();
    if subset.is_empty() {
        return None;
    }
    let n = subset.len();
    let predicted = predicted_positions(&subset);
    let total: f64 = (0..n)
        .map(|i| (percentile(predicted[i], n) - percentile(i, n)).abs())
        .sum();
    Some(total / n as f64)
}

/// PPE of every block in the chain (Figure 7a's population).
pub fn chain_ppe(index: &ChainIndex) -> Vec<f64> {
    index.blocks().iter().filter_map(block_ppe).collect()
}

/// PPE populations grouped by attributed miner (Figure 7b).
pub fn ppe_by_miner(index: &ChainIndex) -> HashMap<String, Vec<f64>> {
    let mut map: HashMap<String, Vec<f64>> = HashMap::new();
    for block in index.blocks() {
        let (Some(miner), Some(ppe)) = (&block.miner, block_ppe(block)) else {
            continue;
        };
        map.entry(miner.clone()).or_default().push(ppe);
    }
    map
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::TxRecord;
    use cn_chain::{Amount, BlockHash, Txid};

    fn block_with_rates(rates: &[u64], cpfp: &[bool]) -> BlockInfo {
        let txs = rates
            .iter()
            .enumerate()
            .map(|(i, &r)| TxRecord {
                txid: Txid::from([i as u8 + 1; 32]),
                height: 0,
                position: i,
                fee: Amount::from_sat(r * 200),
                vsize: 200,
                is_cpfp: cpfp.get(i).copied().unwrap_or(false),
            })
            .collect();
        BlockInfo {
            height: 0,
            hash: BlockHash::ZERO,
            time: 0,
            miner: Some("M".into()),
            coinbase_wallets: vec![],
            txs,
        }
    }

    #[test]
    fn norm_following_block_has_zero_ppe() {
        let b = block_with_rates(&[50, 40, 30, 20, 10], &[]);
        assert_eq!(block_ppe(&b), Some(0.0));
    }

    #[test]
    fn reversed_block_has_large_ppe() {
        let b = block_with_rates(&[10, 20, 30, 40, 50], &[]);
        let ppe = block_ppe(&b).expect("non-empty");
        // Full reversal of 5 items: mean |diff| = (4+2+0+2+4)/5 = 2.4
        // positions -> 2.4/5*100 = 48 percentile points.
        assert!((ppe - 48.0).abs() < 1e-9, "ppe = {ppe}");
    }

    #[test]
    fn single_swap_small_ppe() {
        let b = block_with_rates(&[50, 30, 40, 20], &[]);
        let ppe = block_ppe(&b).expect("non-empty");
        // Two adjacent items swapped among 4: mean |diff| = 0.5 -> 12.5pp.
        assert!((ppe - 12.5).abs() < 1e-9, "ppe = {ppe}");
    }

    #[test]
    fn cpfp_txs_excluded_from_prediction() {
        // The CPFP tx sits early despite a low fee rate; excluding it the
        // rest follow the norm perfectly.
        let b = block_with_rates(&[50, 1, 40, 30], &[false, true, false, false]);
        assert_eq!(block_ppe(&b), Some(0.0));
    }

    #[test]
    fn all_cpfp_block_is_skipped() {
        let b = block_with_rates(&[10, 20], &[true, true]);
        assert_eq!(block_ppe(&b), None);
    }

    #[test]
    fn ties_get_benefit_of_the_doubt() {
        let b = block_with_rates(&[30, 30, 30], &[]);
        assert_eq!(block_ppe(&b), Some(0.0));
    }

    #[test]
    fn single_tx_block_zero() {
        let b = block_with_rates(&[42], &[]);
        assert_eq!(block_ppe(&b), Some(0.0));
    }

    #[test]
    fn ppe_bounded_by_fifty() {
        // Worst case mean displacement is n/2 positions -> 50pp.
        for perm in [
            vec![1u64, 2, 3, 4, 5, 6],
            vec![6, 5, 4, 3, 2, 1],
            vec![3, 1, 4, 1, 5, 9],
        ] {
            let b = block_with_rates(&perm, &[]);
            let ppe = block_ppe(&b).expect("non-empty");
            assert!((0.0..=50.0).contains(&ppe), "ppe = {ppe}");
        }
    }
}
