//! The differential-prioritization test of §5.1 (Tables 2 and 3).
//!
//! Given a set of *c-transactions*, the *c-blocks* are the blocks that
//! include at least one of them. If miner `m` (hash rate θ₀) treats
//! c-transactions like everyone else, the number of c-blocks mined by `m`
//! is `Binomial(y, θ₀)`; a fat upper tail (acceleration) or lower tail
//! (deceleration) rejects that null.

use crate::index::ChainIndex;
use cn_chain::{FastSet, Txid};
use cn_stats::{binomial_test, fisher_combine, Tail};

/// The full §5.1 test result for one miner and one transaction set — one
/// row of Table 2/3.
#[derive(Clone, Debug, PartialEq)]
pub struct DifferentialTest {
    /// The miner under test.
    pub miner: String,
    /// Its normalized hash rate (θ₀).
    pub theta0: f64,
    /// c-blocks mined by the miner (x).
    pub x: u64,
    /// Total c-blocks (y).
    pub y: u64,
    /// Acceleration p-value, `Pr(B ≥ x)`.
    pub p_accelerate: f64,
    /// Deceleration p-value, `Pr(B ≤ x)`.
    pub p_decelerate: f64,
}

impl DifferentialTest {
    /// True when the acceleration null is rejected at `alpha`.
    pub fn accelerates_at(&self, alpha: f64) -> bool {
        self.p_accelerate < alpha
    }

    /// True when the deceleration null is rejected at `alpha`.
    pub fn decelerates_at(&self, alpha: f64) -> bool {
        self.p_decelerate < alpha
    }
}

/// Heights of blocks containing at least one c-transaction.
fn c_block_heights(index: &ChainIndex, c_txids: &FastSet<Txid>) -> Vec<u64> {
    let mut heights: Vec<u64> = c_txids
        .iter()
        .filter_map(|t| index.locate(t).map(|(h, _)| h))
        .collect();
    heights.sort_unstable();
    heights.dedup();
    heights
}

/// Runs the §5.1.1/§5.1.2 exact binomial tests for `miner` over the whole
/// chain.
pub fn differential_prioritization(
    index: &ChainIndex,
    c_txids: &FastSet<Txid>,
    miner: &str,
    theta0: f64,
) -> DifferentialTest {
    let heights = c_block_heights(index, c_txids);
    let y = heights.len() as u64;
    let x = heights
        .iter()
        .filter(|&&h| {
            index
                .block(h)
                .and_then(|b| b.miner.as_deref())
                .map(|m| m == miner)
                .unwrap_or(false)
        })
        .count() as u64;
    DifferentialTest {
        miner: miner.to_string(),
        theta0,
        x,
        y,
        p_accelerate: binomial_test(x, y, theta0, Tail::Upper).p_value,
        p_decelerate: binomial_test(x, y, theta0, Tail::Lower).p_value,
    }
}

/// The §5.1.3 variant for drifting hash rates: splits the chain into
/// `windows` equal height ranges, estimates θ₀ *within each window* from
/// the miner's block share there, tests each window, and combines the
/// per-window p-values with Fisher's method. Windows without c-blocks are
/// skipped. Returns `None` when no window had any c-block.
pub fn windowed_prioritization(
    index: &ChainIndex,
    c_txids: &FastSet<Txid>,
    miner: &str,
    windows: usize,
) -> Option<DifferentialTest> {
    assert!(windows > 0, "need at least one window");
    let total = index.len() as u64;
    if total == 0 {
        return None;
    }
    let heights = c_block_heights(index, c_txids);
    let window_len = total.div_ceil(windows as u64).max(1);
    let mut p_upper = Vec::new();
    let mut p_lower = Vec::new();
    let mut x_total = 0u64;
    let mut y_total = 0u64;
    let mut theta_weighted = 0.0;
    for w in 0..windows as u64 {
        let lo = w * window_len;
        let hi = ((w + 1) * window_len).min(total);
        if lo >= hi {
            break;
        }
        // Window-local hash rate estimate.
        let blocks_in_window = hi - lo;
        let mined_by_m = (lo..hi)
            .filter(|&h| {
                index.block(h).and_then(|b| b.miner.as_deref()).map(|m| m == miner) == Some(true)
            })
            .count() as u64;
        let theta = mined_by_m as f64 / blocks_in_window as f64;
        let in_window: Vec<u64> =
            heights.iter().copied().filter(|&h| h >= lo && h < hi).collect();
        let y = in_window.len() as u64;
        if y == 0 {
            continue;
        }
        let x = in_window
            .iter()
            .filter(|&&h| {
                index.block(h).and_then(|b| b.miner.as_deref()).map(|m| m == miner) == Some(true)
            })
            .count() as u64;
        p_upper.push(binomial_test(x, y, theta, Tail::Upper).p_value);
        p_lower.push(binomial_test(x, y, theta, Tail::Lower).p_value);
        x_total += x;
        y_total += y;
        theta_weighted += theta * y as f64;
    }
    if p_upper.is_empty() {
        return None;
    }
    Some(DifferentialTest {
        miner: miner.to_string(),
        theta0: theta_weighted / y_total as f64,
        x: x_total,
        y: y_total,
        p_accelerate: fisher_combine(&p_upper),
        p_decelerate: fisher_combine(&p_lower),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use cn_chain::{
        Address, Amount, Block, Chain, CoinbaseBuilder, Params, PoolMarker,
        Transaction,
    };

    /// Builds a chain where every block contains one marked c-transaction,
    /// with `miners[i]` mining block i.
    fn chain_with(miners: &[&str]) -> (Chain, FastSet<Txid>) {
        let mut chain = Chain::new(Params::mainnet());
        let mut fund = Transaction::builder().add_input(cn_chain::TxIn::new(cn_chain::OutPoint::NULL));
        for _ in miners {
            fund = fund.pay_to(Address::from_label("funder"), Amount::from_sat(1_000_000));
        }
        let fund = fund.build();
        chain.seed_utxos(&fund);
        let mut c_txids = FastSet::default();
        for (h, m) in miners.iter().enumerate() {
            let tx = Transaction::builder()
                .add_input_with_sizes(fund.txid(), h as u32, 107, 0)
                .pay_to(Address::from_label("r"), Amount::from_sat(900_000))
                .build();
            c_txids.insert(tx.txid());
            let cb = CoinbaseBuilder::new(h as u64)
                .marker(PoolMarker::new(format!("/{m}/")))
                .reward(Address::from_label(m), Amount::from_btc(50) + Amount::from_sat(100_000))
                .extra_nonce(h as u64)
                .build();
            let block =
                Block::assemble(2, chain.tip_hash(), h as u64 * 600, h as u32, cb, vec![tx]);
            chain.connect(block).expect("valid");
        }
        (chain, c_txids)
    }

    #[test]
    fn over_representation_flags_acceleration() {
        // Miner M mines 8 of 10 c-blocks with a 20% hash rate.
        let miners = ["M", "M", "M", "M", "M", "M", "M", "M", "O", "O"];
        let (chain, c_txids) = chain_with(&miners);
        let index = ChainIndex::build(&chain);
        let t = differential_prioritization(&index, &c_txids, "M", 0.2);
        assert_eq!(t.x, 8);
        assert_eq!(t.y, 10);
        assert!(t.p_accelerate < 1e-4, "p = {}", t.p_accelerate);
        assert!(t.accelerates_at(0.001));
        assert!(!t.decelerates_at(0.001));
    }

    #[test]
    fn proportional_representation_is_clean() {
        // Miner M mines 2 of 10 c-blocks at a 20% hash rate.
        let miners = ["M", "O", "O", "O", "M", "O", "O", "O", "O", "O"];
        let (chain, c_txids) = chain_with(&miners);
        let index = ChainIndex::build(&chain);
        let t = differential_prioritization(&index, &c_txids, "M", 0.2);
        assert_eq!((t.x, t.y), (2, 10));
        assert!(t.p_accelerate > 0.3);
        assert!(t.p_decelerate > 0.3);
    }

    #[test]
    fn under_representation_flags_deceleration() {
        // Miner M mines 0 of 12 c-blocks despite a 50% hash rate.
        let miners = ["O"; 12];
        let (chain, c_txids) = chain_with(&miners);
        let index = ChainIndex::build(&chain);
        let t = differential_prioritization(&index, &c_txids, "M", 0.5);
        assert_eq!(t.x, 0);
        assert!(t.p_decelerate < 0.001, "p = {}", t.p_decelerate);
        assert!(t.decelerates_at(0.001));
    }

    #[test]
    fn unconfirmed_c_txids_ignored() {
        let (chain, mut c_txids) = chain_with(&["M", "O"]);
        c_txids.insert(Txid::from([0xcc; 32])); // never confirmed
        let index = ChainIndex::build(&chain);
        let t = differential_prioritization(&index, &c_txids, "M", 0.5);
        assert_eq!(t.y, 2);
    }

    #[test]
    fn windowed_variant_agrees_qualitatively() {
        let miners = ["M", "M", "M", "M", "M", "M", "M", "M", "O", "O"];
        let (chain, c_txids) = chain_with(&miners);
        let index = ChainIndex::build(&chain);
        // NOTE: with window-local θ estimated from the same blocks the
        // test is conservative; use one window to compare totals.
        let w = windowed_prioritization(&index, &c_txids, "M", 2).expect("has c-blocks");
        assert_eq!(w.x, 8);
        assert_eq!(w.y, 10);
        assert!(w.theta0 > 0.0);
    }

    #[test]
    fn windowed_none_when_no_c_blocks() {
        let (chain, _) = chain_with(&["M", "O"]);
        let index = ChainIndex::build(&chain);
        let none = windowed_prioritization(&index, &FastSet::default(), "M", 3);
        assert!(none.is_none());
    }

    #[test]
    fn empty_chain_gives_trivial_test() {
        let chain = Chain::new(Params::mainnet());
        let index = ChainIndex::build(&chain);
        let t = differential_prioritization(&index, &FastSet::default(), "M", 0.3);
        assert_eq!((t.x, t.y), (0, 0));
        assert_eq!(t.p_accelerate, 1.0);
        assert_eq!(t.p_decelerate, 1.0);
    }
}
