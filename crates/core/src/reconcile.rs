//! Cross-observer reconciliation: fusing an observer *fleet* into one
//! audit-grade view.
//!
//! The paper's datasets come from single vantage points, and §7 flags the
//! obvious weakness: one node's mempool is one peer neighborhood's
//! opinion. An adversarial network — an eclipsed observer, peers that
//! selectively withhold high-fee or miner-origin transactions, spy-
//! resistant diffusion delays — can bias everything downstream (first-seen
//! times, violation pairs, dark-fee suspicion) without leaving a trace in
//! the stream itself.
//!
//! This module takes N independent observer streams and reconciles them:
//!
//! * **Fused stream** — per snapshot window, the union of every
//!   observer's rows, first-seen taken as the *minimum* across observers
//!   (the earliest time anyone saw the transaction is the best available
//!   bound on its broadcast time). A window is stamped degraded or
//!   truncated only when *every* contributing observer's window was — one
//!   healthy vantage point heals the fleet.
//! * **Disagreement statistics** — how far the observers' first-seen
//!   times spread for transactions seen by more than one of them. Large
//!   spreads are the fingerprint of selective withholding or targeted
//!   delay; a healthy fleet disagrees by network propagation jitter only.
//! * **Fused coverage** — a [`SnapshotCoverage`] over the fused stream,
//!   so [`crate::auditor::audit_with_snapshots`] can consume the fleet
//!   view exactly as it would a single observer's.
//!
//! Observers whose streams are entirely empty (hard-eclipsed from the
//! first window) are dropped and reported, not fatal: the audit proceeds
//! on whoever still saw the network. Only a fleet that is blind in *every*
//! eye refuses to audit.

use crate::auditor::{audit_with_snapshots, AuditConfig, AuditReport};
use crate::coverage::{SnapshotCoverage, StreamExpectation};
use crate::error::AuditError;
use crate::index::ChainIndex;
use cn_chain::{Chain, FastMap, Timestamp, Txid};
use cn_mempool::{MempoolSnapshot, SnapshotEntry};
use cn_stats::Pool;
use std::collections::BTreeMap;

/// One observer's contribution to the fleet: its label, its snapshot
/// stream, and what that stream was scheduled to contain.
#[derive(Clone, Debug)]
pub struct ObserverView {
    /// Human-readable vantage-point name (from the scenario config).
    pub label: String,
    /// The snapshots this observer recorded.
    pub snapshots: Vec<MempoolSnapshot>,
    /// What the stream was supposed to contain.
    pub expectation: StreamExpectation,
}

/// How much the fleet's observers disagree about when transactions first
/// appeared — the reconciliation layer's adversary detector.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct FirstSeenStats {
    /// Transactions seen pending by at least one live observer.
    pub txs_union: usize,
    /// Transactions seen by *every* live observer.
    pub txs_all: usize,
    /// Transactions seen by at least two observers whose first-seen
    /// times differ.
    pub disagreements: usize,
    /// Mean first-seen spread (max − min, seconds) over transactions
    /// seen by at least two observers.
    pub mean_spread_secs: f64,
    /// Median first-seen spread over the same set.
    pub median_spread_secs: f64,
    /// Largest first-seen spread anywhere.
    pub max_spread_secs: u64,
}

/// The reconciled fleet: who contributed, who was blind, what the fused
/// stream looks like, and how much the vantage points disagreed.
#[derive(Clone, Debug)]
pub struct FleetView {
    /// Labels of observers that contributed at least one snapshot.
    pub labels: Vec<String>,
    /// Labels of observers dropped for having recorded nothing at all.
    pub dropped: Vec<String>,
    /// Per-live-observer coverage, index-aligned with `labels`.
    pub per_observer: Vec<SnapshotCoverage>,
    /// The fused snapshot stream (union rows, min first-seen).
    pub fused: Vec<MempoolSnapshot>,
    /// Coverage of the fused stream.
    pub coverage: SnapshotCoverage,
    /// Cross-observer first-seen agreement statistics.
    pub first_seen: FirstSeenStats,
    /// The fused stream's expectation (the widest of the live
    /// observers'), for feeding straight into an audit.
    pub expectation: StreamExpectation,
}

impl FleetView {
    /// Renders the reconciliation block the fleet experiment prints.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "fleet: {} live observer(s){}, fused confidence {:.3}",
            self.labels.len(),
            if self.dropped.is_empty() {
                String::new()
            } else {
                format!(", {} dropped ({})", self.dropped.len(), self.dropped.join(" "))
            },
            self.coverage.confidence(),
        );
        for (label, cov) in self.labels.iter().zip(&self.per_observer) {
            let _ = writeln!(
                out,
                "  {label}: confidence {:.3}, {} degraded window(s)",
                cov.confidence(),
                cov.degraded_windows
            );
        }
        let fs = &self.first_seen;
        let _ = writeln!(
            out,
            "  first-seen: {} txs union, {} seen by all, {} disagreement(s), spread mean {:.1}s median {:.1}s max {}s",
            fs.txs_union,
            fs.txs_all,
            fs.disagreements,
            fs.mean_spread_secs,
            fs.median_spread_secs,
            fs.max_spread_secs,
        );
        out
    }
}

/// Reconciles N observer streams into one [`FleetView`].
///
/// Errors with [`AuditError::EmptySnapshotStream`] only when **every**
/// observer recorded nothing; any single surviving vantage point keeps
/// the fleet auditable (graceful degradation).
pub fn reconcile(views: &[ObserverView]) -> Result<FleetView, AuditError> {
    reconcile_with_pool(views, Pool::auto())
}

/// [`reconcile`] with an explicit fork-join width for the per-observer
/// folds. The reconciliation is byte-identical at any width (the pool's
/// order-preserving join); the parameter only moves wall time, and exists
/// so the serial-vs-parallel identity property can be tested without
/// touching process-global state.
pub fn reconcile_with_pool(views: &[ObserverView], pool: Pool) -> Result<FleetView, AuditError> {
    let (live, dead): (Vec<&ObserverView>, Vec<&ObserverView>) =
        views.iter().partition(|v| !v.snapshots.is_empty());
    if live.is_empty() {
        return Err(AuditError::EmptySnapshotStream);
    }
    let labels: Vec<String> = live.iter().map(|v| v.label.clone()).collect();
    let dropped: Vec<String> = dead.iter().map(|v| v.label.clone()).collect();
    // Each observer's coverage assessment reads only its own stream: fan
    // out per observer, join in roster order.
    let per_observer: Vec<SnapshotCoverage> = pool.map(&live, |v| {
        SnapshotCoverage::assess(&v.snapshots, v.expectation.windows, v.expectation.detailed)
    });

    // The fused stream promises the widest schedule any live observer
    // promised; min_coverage is the strictest floor among them.
    let expectation = StreamExpectation {
        windows: live.iter().map(|v| v.expectation.windows).max().unwrap_or(0),
        detailed: live.iter().map(|v| v.expectation.detailed).max().unwrap_or(0),
        min_coverage: live.iter().map(|v| v.expectation.min_coverage).fold(0.0, f64::max),
    };

    let fused = fuse_streams(&live, pool);
    let coverage = SnapshotCoverage::assess(&fused, expectation.windows, expectation.detailed);
    let first_seen = first_seen_stats(&live, pool);

    Ok(FleetView { labels, dropped, per_observer, fused, coverage, first_seen, expectation })
}

/// Reconciles the fleet and runs the standard snapshot audit over the
/// fused stream: the one-call driver for multi-vantage auditing. Returns
/// the report alongside the fleet view so callers can print both the
/// findings and the reconciliation diagnostics.
pub fn audit_with_fleet(
    chain: &Chain,
    index: &ChainIndex,
    views: &[ObserverView],
    config: AuditConfig,
) -> Result<(AuditReport, FleetView), AuditError> {
    let fleet = reconcile(views)?;
    let report = audit_with_snapshots(chain, index, &fleet.fused, fleet.expectation, config)?;
    Ok((report, fleet))
}

/// Unions the live observers' streams window by window.
///
/// Window membership is decided serially (a cheap time-keyed bucketing);
/// the per-window unions — where the row merging actually costs — are
/// independent of one another and fan out across the pool, joined back in
/// ascending window order.
fn fuse_streams(live: &[&ObserverView], pool: Pool) -> Vec<MempoolSnapshot> {
    if let [solo] = live {
        // A one-eyed fleet *is* its observer: share the rows (Arc clones)
        // instead of re-sorting every window's union of one.
        return solo.snapshots.clone();
    }
    let mut by_time: BTreeMap<Timestamp, Vec<&MempoolSnapshot>> = BTreeMap::new();
    for view in live {
        for snap in &view.snapshots {
            by_time.entry(snap.time).or_default().push(snap);
        }
    }
    let windows: Vec<(Timestamp, Vec<&MempoolSnapshot>)> = by_time.into_iter().collect();
    pool.map(&windows, |(time, contributors)| {
        let time = *time;
            // One healthy contributor heals the window: stamps survive
            // fusion only when unanimous.
            let all_degraded = contributors.iter().all(|s| s.is_degraded());
            let detailed: Vec<&&MempoolSnapshot> =
                contributors.iter().filter(|s| s.is_detailed()).collect();
            let mut snap = if detailed.is_empty() {
                // Light window: the biggest backlog anyone saw is the
                // least-censored aggregate available.
                let count = contributors.iter().map(|s| s.len()).max().unwrap_or(0);
                let vsize = contributors.iter().map(|s| s.total_vsize()).max().unwrap_or(0);
                MempoolSnapshot::light(time, count, vsize)
            } else {
                let mut rows: FastMap<Txid, SnapshotEntry> = FastMap::default();
                for s in &detailed {
                    for e in s.entries.iter() {
                        rows.entry(e.txid)
                            .and_modify(|kept| {
                                // Earliest sighting wins; CPFP candidacy
                                // stays flagged if anyone saw the parent
                                // unconfirmed (conservative for §4.2.1).
                                kept.received = kept.received.min(e.received);
                                kept.has_unconfirmed_parent |= e.has_unconfirmed_parent;
                            })
                            .or_insert(*e);
                    }
                }
                let merged =
                    MempoolSnapshot::from_entries(time, rows.into_values().collect());
                if detailed.iter().all(|s| s.is_truncated()) {
                    // Every dump was cut off, so the union is still a cut
                    // view; a full-keep truncation applies the stamp.
                    merged.truncate_detail(1.0)
                } else {
                    merged
                }
            };
            if all_degraded {
                snap = snap.mark_degraded();
            }
            snap
        })
}

/// Computes the cross-observer first-seen agreement statistics.
fn first_seen_stats(live: &[&ObserverView], pool: Pool) -> FirstSeenStats {
    // Per-observer earliest sighting per txid: each map reads only its own
    // observer's stream, so the builds fan out; the cross-observer merge
    // below stays serial in roster order.
    let per_obs: Vec<FastMap<Txid, Timestamp>> = pool.map(live, |view| {
        let mut first: FastMap<Txid, Timestamp> = FastMap::default();
        for snap in view.snapshots.iter().filter(|s| s.is_detailed()) {
            for e in snap.entries.iter() {
                first
                    .entry(e.txid)
                    .and_modify(|t| *t = (*t).min(e.received))
                    .or_insert(e.received);
            }
        }
        first
    });

    let mut sightings: FastMap<Txid, (Timestamp, Timestamp, usize)> = FastMap::default();
    for first in &per_obs {
        for (&txid, &t) in first {
            sightings
                .entry(txid)
                .and_modify(|(min, max, n)| {
                    *min = (*min).min(t);
                    *max = (*max).max(t);
                    *n += 1;
                })
                .or_insert((t, t, 1));
        }
    }

    let txs_union = sightings.len();
    let txs_all = sightings.values().filter(|(_, _, n)| *n == live.len()).count();
    let mut spreads: Vec<u64> =
        sightings.values().filter(|(_, _, n)| *n >= 2).map(|(min, max, _)| max - min).collect();
    spreads.sort_unstable();
    let disagreements = spreads.iter().filter(|s| **s > 0).count();
    let mean_spread_secs = if spreads.is_empty() {
        0.0
    } else {
        spreads.iter().sum::<u64>() as f64 / spreads.len() as f64
    };
    let median_spread_secs = if spreads.is_empty() {
        0.0
    } else if spreads.len().is_multiple_of(2) {
        (spreads[spreads.len() / 2 - 1] + spreads[spreads.len() / 2]) as f64 / 2.0
    } else {
        spreads[spreads.len() / 2] as f64
    };
    let max_spread_secs = spreads.last().copied().unwrap_or(0);

    FirstSeenStats {
        txs_union,
        txs_all,
        disagreements,
        mean_spread_secs,
        median_spread_secs,
        max_spread_secs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cn_chain::Amount;

    fn entry(seed: u8, received: Timestamp) -> SnapshotEntry {
        SnapshotEntry {
            txid: Txid::from([seed; 32]),
            received,
            fee: Amount::from_sat(1_000),
            vsize: 100,
            has_unconfirmed_parent: false,
        }
    }

    fn view(label: &str, snapshots: Vec<MempoolSnapshot>, windows: u64) -> ObserverView {
        ObserverView {
            label: label.into(),
            snapshots,
            expectation: StreamExpectation { windows, detailed: windows, min_coverage: 0.0 },
        }
    }

    #[test]
    fn all_empty_fleet_refuses_to_audit() {
        let views = vec![view("a", Vec::new(), 4), view("b", Vec::new(), 4)];
        assert_eq!(reconcile(&views).expect_err("blind fleet"), AuditError::EmptySnapshotStream);
    }

    #[test]
    fn empty_observers_are_dropped_not_fatal() {
        let snaps = vec![MempoolSnapshot::from_entries(15, vec![entry(1, 10)])];
        let views = vec![view("alive", snaps, 1), view("eclipsed", Vec::new(), 1)];
        let fleet = reconcile(&views).expect("one live eye suffices");
        assert_eq!(fleet.labels, vec!["alive".to_string()]);
        assert_eq!(fleet.dropped, vec!["eclipsed".to_string()]);
        assert_eq!(fleet.fused.len(), 1);
        assert!(fleet.render().contains("1 dropped"));
    }

    #[test]
    fn fusion_takes_union_rows_and_min_first_seen() {
        // Observer a sees tx1 at 10 and tx2 at 20; observer b sees tx1
        // later (withheld) and tx3 that a never saw.
        let a = view(
            "a",
            vec![MempoolSnapshot::from_entries(15, vec![entry(1, 10), entry(2, 20)])],
            1,
        );
        let b = view(
            "b",
            vec![MempoolSnapshot::from_entries(15, vec![entry(1, 14), entry(3, 12)])],
            1,
        );
        let fleet = reconcile(&[a, b]).expect("reconciles");
        assert_eq!(fleet.fused.len(), 1);
        let fused = &fleet.fused[0];
        assert_eq!(fused.len(), 3, "union of rows");
        let tx1 = fused.entries.iter().find(|e| e.txid == Txid::from([1; 32])).expect("tx1");
        assert_eq!(tx1.received, 10, "earliest sighting wins");
        let fs = fleet.first_seen;
        assert_eq!(fs.txs_union, 3);
        assert_eq!(fs.txs_all, 1, "only tx1 seen by both");
        assert_eq!(fs.disagreements, 1);
        assert_eq!(fs.max_spread_secs, 4);
        assert!((fs.mean_spread_secs - 4.0).abs() < 1e-12);
        assert!((fs.median_spread_secs - 4.0).abs() < 1e-12);
    }

    #[test]
    fn one_healthy_observer_heals_degraded_windows() {
        let healthy = view("h", vec![MempoolSnapshot::from_entries(15, vec![entry(1, 10)])], 1);
        let eclipsed = view(
            "e",
            vec![MempoolSnapshot::from_entries(15, vec![entry(2, 11)]).mark_degraded()],
            1,
        );
        let fleet = reconcile(&[healthy, eclipsed]).expect("reconciles");
        assert!(!fleet.fused[0].is_degraded(), "one healthy eye heals the window");
        assert_eq!(fleet.coverage.degraded_windows, 0);
        assert_eq!(fleet.per_observer[1].degraded_windows, 1, "per-observer stamp kept");

        // Unanimously degraded windows stay stamped.
        let e1 = view(
            "e1",
            vec![MempoolSnapshot::from_entries(15, vec![entry(1, 10)]).mark_degraded()],
            1,
        );
        let e2 = view(
            "e2",
            vec![MempoolSnapshot::from_entries(15, vec![entry(2, 11)]).mark_degraded()],
            1,
        );
        let fleet = reconcile(&[e1, e2]).expect("reconciles");
        assert!(fleet.fused[0].is_degraded());
        assert_eq!(fleet.coverage.degraded_windows, 1);
    }

    #[test]
    fn light_windows_fuse_to_widest_backlog() {
        let a = view("a", vec![MempoolSnapshot::light(30, 10, 2_000)], 1);
        let b = view("b", vec![MempoolSnapshot::light(30, 25, 5_000)], 1);
        let fleet = reconcile(&[a, b]).expect("reconciles");
        assert!(!fleet.fused[0].is_detailed());
        assert_eq!(fleet.fused[0].len(), 25);
        assert_eq!(fleet.fused[0].total_vsize(), 5_000);
    }

    #[test]
    fn truncation_survives_only_when_unanimous() {
        let full = MempoolSnapshot::from_entries(15, vec![entry(1, 10), entry(2, 11)]);
        let cut = full.truncate_detail(0.5);
        assert!(cut.is_truncated());
        let fleet =
            reconcile(&[view("a", vec![full.clone()], 1), view("b", vec![cut.clone()], 1)])
                .expect("reconciles");
        assert!(!fleet.fused[0].is_truncated(), "the full dump heals the cut one");
        let fleet = reconcile(&[view("a", vec![cut.clone()], 1), view("b", vec![cut], 1)])
            .expect("reconciles");
        assert!(fleet.fused[0].is_truncated(), "everyone cut: still a cut view");
    }

    #[test]
    fn fleet_expectation_is_the_widest_promise() {
        let snaps = vec![MempoolSnapshot::from_entries(15, vec![entry(1, 10)])];
        let mut a = view("a", snaps.clone(), 3);
        a.expectation.min_coverage = 0.25;
        let b = view("b", snaps, 7);
        let fleet = reconcile(&[a, b]).expect("reconciles");
        assert_eq!(fleet.expectation.windows, 7);
        assert_eq!(fleet.expectation.min_coverage, 0.25);
    }
}
