//! Plain-text table rendering for the experiment harness.

use std::fmt::Write as _;

/// A simple column-aligned text table.
#[derive(Clone, Debug, Default)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Starts a table with the given column headers.
    pub fn new(headers: &[&str]) -> Table {
        Table { headers: headers.iter().map(|s| s.to_string()).collect(), rows: Vec::new() }
    }

    /// Appends a row; shorter rows are padded with empty cells.
    pub fn row(&mut self, cells: &[String]) -> &mut Table {
        let mut row: Vec<String> = cells.to_vec();
        row.resize(self.headers.len(), String::new());
        self.rows.push(row);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate().take(cols) {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let render_row = |out: &mut String, cells: &[String]| {
            for (i, cell) in cells.iter().enumerate().take(cols) {
                if i > 0 {
                    out.push_str("  ");
                }
                let _ = write!(out, "{cell:<width$}", width = widths[i]);
            }
            // Trim trailing padding.
            while out.ends_with(' ') {
                out.pop();
            }
            out.push('\n');
        };
        render_row(&mut out, &self.headers);
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols.saturating_sub(1));
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            render_row(&mut out, row);
        }
        out
    }
}

/// Formats a p-value the way the paper prints them (4 decimal places,
/// scientific below 1e-4).
pub fn fmt_p(p: f64) -> String {
    if p == 0.0 || p >= 1e-4 {
        format!("{p:.4}")
    } else {
        format!("{p:.1e}")
    }
}

/// Formats a fraction as a percentage with two decimals.
pub fn fmt_pct(x: f64) -> String {
    format!("{:.2}%", x * 100.0)
}

/// Tabulates a CDF curve as `value cdf` pairs, one per line.
pub fn fmt_cdf(curve: &[(f64, f64)]) -> String {
    let mut out = String::new();
    for (x, p) in curve {
        let _ = writeln!(out, "{x:>14.6}  {p:>8.4}");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(&["pool", "x", "p-value"]);
        t.row(&["F2Pool".into(), "466".into(), "0.0000".into()]);
        t.row(&["ViaBTC-with-long-name".into(), "7".into(), "1.0000".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("pool"));
        assert!(lines[1].chars().all(|c| c == '-'));
        // Columns align: "x" column starts at the same offset in all rows.
        let col = lines[2].find("466").expect("cell present");
        assert_eq!(&lines[3][col..col + 1], "7");
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    fn short_rows_padded() {
        let mut t = Table::new(&["a", "b"]);
        t.row(&["only".into()]);
        assert!(t.render().contains("only"));
    }

    #[test]
    fn p_value_formats() {
        assert_eq!(fmt_p(0.2856), "0.2856");
        assert_eq!(fmt_p(0.0), "0.0000");
        assert_eq!(fmt_p(3.2e-7), "3.2e-7");
        assert_eq!(fmt_pct(0.6498), "64.98%");
    }

    #[test]
    fn cdf_formatting() {
        let s = fmt_cdf(&[(1.0, 0.5), (2.0, 1.0)]);
        assert_eq!(s.lines().count(), 2);
        assert!(s.contains("0.5000"));
    }
}
