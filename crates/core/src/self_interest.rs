//! Self-interest transaction identification (§5.2, Figure 8b).
//!
//! A transaction is a *self-interest* transaction of pool `P` when it
//! moves coins **from** or **to** one of `P`'s wallets. Pool wallets come
//! from coinbase reward outputs (`attribution`); detecting spends *from*
//! them requires resolving every input's funding address, which this
//! module does with one full UTXO replay of the chain.

use crate::attribution::Attribution;
use crate::index::ChainIndex;
use cn_chain::{Address, Chain, FastMap, FastSet, Txid};
use std::collections::{BTreeSet, HashMap};

/// Transactions touching each pool's wallets.
#[derive(Clone, Debug, Default)]
pub struct SelfInterestMap {
    /// Pool name → txids that send from or pay to its wallets.
    pub by_pool: HashMap<String, FastSet<Txid>>,
}

impl SelfInterestMap {
    /// The transactions of one pool.
    pub fn of(&self, pool: &str) -> Option<&FastSet<Txid>> {
        self.by_pool.get(pool)
    }

    /// Total transactions flagged across pools (a tx touching two pools'
    /// wallets counts for both, as in the paper's per-pool counts).
    pub fn total_flagged(&self) -> usize {
        self.by_pool.values().map(|s| s.len()).sum()
    }
}

/// Replays the chain once, classifying every body transaction against the
/// pools' wallet inventories.
pub fn find_self_interest_transactions(
    chain: &Chain,
    attribution: &Attribution,
) -> SelfInterestMap {
    // Wallet → pool lookup. A wallet observed for several pools (shared
    // payout infrastructure, like BitDeer/BTC.com in the paper) maps to
    // all of them.
    let mut wallet_pools: FastMap<Address, Vec<String>> = FastMap::default();
    for pool in &attribution.pools {
        for &wallet in &pool.wallets {
            wallet_pools.entry(wallet).or_default().push(pool.name.clone());
        }
    }

    let mut utxos = chain.initial_utxos();
    let mut map = SelfInterestMap::default();
    for block in chain.blocks() {
        if let Some(cb) = block.coinbase() {
            utxos.insert_outputs(cb);
        }
        for tx in block.body() {
            let mut touched: BTreeSet<&String> = BTreeSet::new();
            for input in tx.inputs() {
                if let Some(prev) = utxos.get(&input.prevout) {
                    if let Some(addr) = prev.address() {
                        if let Some(pools) = wallet_pools.get(&addr) {
                            touched.extend(pools.iter());
                        }
                    }
                }
            }
            for addr in tx.output_addresses() {
                if let Some(pools) = wallet_pools.get(&addr) {
                    touched.extend(pools.iter());
                }
            }
            for pool in touched {
                map.by_pool.entry(pool.clone()).or_default().insert(tx.txid());
            }
            // Advance the view; the chain was validated, so this succeeds.
            utxos.apply_tx(tx).expect("validated chain replays cleanly");
        }
    }
    map
}

/// Convenience: self-interest txids for one pool, given the chain and its
/// attribution.
pub fn self_interest_txids(
    chain: &Chain,
    index: &ChainIndex,
    pool: &str,
) -> FastSet<Txid> {
    let attribution = crate::attribution::attribute(index);
    find_self_interest_transactions(chain, &attribution)
        .of(pool)
        .cloned()
        .unwrap_or_default()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attribution::attribute;
    use cn_chain::{
        Amount, Block, BlockHash, CoinbaseBuilder, Params, PoolMarker, Transaction,
    };

    /// One pool mines two blocks; in block 1 someone pays the pool's
    /// wallet, and the pool spends its block-0 reward.
    fn build() -> (Chain, ChainIndex) {
        let mut chain = Chain::new(Params::mainnet());
        let fund = Transaction::builder()
            .add_input(cn_chain::TxIn::new(cn_chain::OutPoint::NULL))
            .pay_to(Address::from_label("user"), Amount::from_sat(5_000_000))
            .pay_to(Address::from_label("user2"), Amount::from_sat(5_000_000))
            .build();
        chain.seed_utxos(&fund);
        let pool_wallet = Address::from_label("pool:P:0");

        // Block 0: P's coinbase reward to its wallet.
        let cb0 = CoinbaseBuilder::new(0)
            .marker(PoolMarker::new("/P/"))
            .reward(pool_wallet, Amount::from_btc(50))
            .build();
        let cb0_txid = cb0.txid();
        let b0 = Block::assemble(2, BlockHash::ZERO, 0, 0, cb0, Vec::<Transaction>::new());
        chain.connect(b0).expect("valid");

        // Block 1 (mined by Q): a user pays P's wallet (to-pool tx) and P
        // spends its reward (from-pool tx); a third tx touches no pool.
        let pay_to_pool = Transaction::builder()
            .add_input_with_sizes(fund.txid(), 0, 107, 0)
            .pay_to(pool_wallet, Amount::from_sat(4_000_000))
            .build();
        let spend_reward = Transaction::builder()
            .add_input_with_sizes(cb0_txid, 0, 107, 0)
            .pay_to(Address::from_label("exchange"), Amount::from_btc(49))
            .build();
        let unrelated = Transaction::builder()
            .add_input_with_sizes(fund.txid(), 1, 107, 0)
            .pay_to(Address::from_label("someone"), Amount::from_sat(4_900_000))
            .build();
        let fees = Amount::from_sat(1_000_000) + Amount::from_btc(1) + Amount::from_sat(100_000);
        let cb1 = CoinbaseBuilder::new(1)
            .marker(PoolMarker::new("/Q/"))
            .reward(Address::from_label("pool:Q:0"), Amount::from_btc(50) + fees)
            .build();
        let b1 = Block::assemble(
            2,
            chain.tip_hash(),
            600,
            1,
            cb1,
            vec![pay_to_pool, spend_reward, unrelated],
        );
        chain.connect(b1).expect("valid");
        let index = ChainIndex::build(&chain);
        (chain, index)
    }

    #[test]
    fn finds_from_and_to_pool_transactions() {
        let (chain, index) = build();
        let att = attribute(&index);
        let map = find_self_interest_transactions(&chain, &att);
        let p_txs = map.of("P").expect("pool P flagged");
        assert_eq!(p_txs.len(), 2, "one to-pool and one from-pool tx");
        // Q's wallet only ever received its own coinbase; no body tx
        // touches it.
        assert!(map.of("Q").is_none() || map.of("Q").expect("set").is_empty());
    }

    #[test]
    fn unrelated_tx_not_flagged() {
        let (chain, index) = build();
        let att = attribute(&index);
        let map = find_self_interest_transactions(&chain, &att);
        let all: FastSet<Txid> = map.by_pool.values().flatten().copied().collect();
        // Exactly the two pool-touching transactions, not the third.
        assert_eq!(all.len(), 2);
        assert_eq!(map.total_flagged(), 2);
    }

    #[test]
    fn convenience_wrapper_matches() {
        let (chain, index) = build();
        let txids = self_interest_txids(&chain, &index, "P");
        assert_eq!(txids.len(), 2);
        assert!(self_interest_txids(&chain, &index, "Nobody").is_empty());
    }
}
