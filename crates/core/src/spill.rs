//! Epoch-checkpointed streaming audit: the chain-digest state spilled to a
//! log-structured store, bounding auditor memory to O(window + epoch).
//!
//! [`StreamingAuditor`]'s exact verdict is a function of the whole chain,
//! so its digested per-transaction state (the [`ChainIndex`], the observed
//! txid set, the address→txid log) necessarily grows with run length —
//! the one O(chain) term its module docs concede. [`SpilledAuditor`] moves
//! that term to disk: every `epoch_blocks` sealed heights it drains the
//! settled digest slice ([`StreamingAuditor::drain_digest`]) and appends
//! it, serialized with the chain's own wire primitives, to a seekable
//! store. Push-path memory is then O(window + epoch).
//!
//! The exact verdict still needs the whole digest, so
//! [`SpilledAuditor::verdict`] replays the spilled segments, rebuilds the
//! full index/sets *transiently*, and runs
//! [`StreamingAuditor::verdict_with_digest`] — bit-identical to an
//! unspilled auditor's [`StreamingAuditor::verdict`] over the same events.
//! The peak is paid once at verdict time instead of held for the whole
//! run, and [`StreamingAuditor::rolling`] stays available throughout at
//! its usual O(window) cost.

use crate::auditor::AuditReport;
use crate::error::AuditError;
use crate::index::{BlockInfo, ChainIndex, TxRecord};
use crate::streaming::{
    DigestSegment, RollingVerdict, StreamCounters, StreamEvent, StreamingAuditor,
};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use cn_chain::encode::{
    ensure_remaining, read_compact_size, read_var_bytes, write_compact_size, write_var_bytes,
    DecodeError, MAX_DECODE_LEN,
};
use cn_chain::{Address, Amount, Block, BlockHash, FastMap, FastSet, Hash256, Txid};
use cn_mempool::MempoolSnapshot;
use std::fmt;
use std::io::{self, Read, Seek, SeekFrom, Write};

/// Error from the spill store or the audit it feeds.
#[derive(Debug)]
pub enum SpillError {
    /// The underlying store failed.
    Io(io::Error),
    /// A spilled segment failed to decode on restore.
    Corrupt(DecodeError),
    /// The restored audit refused or failed.
    Audit(AuditError),
}

impl fmt::Display for SpillError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpillError::Io(e) => write!(f, "spill store i/o: {e}"),
            SpillError::Corrupt(e) => write!(f, "corrupt spill segment: {e}"),
            SpillError::Audit(e) => write!(f, "audit: {e}"),
        }
    }
}

impl std::error::Error for SpillError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SpillError::Io(e) => Some(e),
            SpillError::Corrupt(e) => Some(e),
            SpillError::Audit(e) => Some(e),
        }
    }
}

impl From<io::Error> for SpillError {
    fn from(e: io::Error) -> Self {
        SpillError::Io(e)
    }
}

impl From<DecodeError> for SpillError {
    fn from(e: DecodeError) -> Self {
        SpillError::Corrupt(e)
    }
}

impl From<AuditError> for SpillError {
    fn from(e: AuditError) -> Self {
        SpillError::Audit(e)
    }
}

/// A [`StreamingAuditor`] whose chain-digest state is epoch-checkpointed
/// into a seekable byte store (a spill file at scale, an in-memory
/// `Cursor` in tests). See the module docs for the memory contract.
pub struct SpilledAuditor<S: Read + Write + Seek> {
    auditor: StreamingAuditor,
    store: S,
    epoch_blocks: u64,
    /// Heights checkpointed into the store so far.
    spilled_blocks: u64,
    /// Store length in bytes (restore reads exactly this much).
    spilled_bytes: u64,
    /// Segments appended.
    spilled_segments: u64,
}

impl<S: Read + Write + Seek> SpilledAuditor<S> {
    /// Wraps `auditor`, checkpointing its digest into `store` every
    /// `epoch_blocks` sealed heights (0 disables spilling — the wrapper
    /// then behaves exactly like the inner auditor).
    pub fn new(auditor: StreamingAuditor, store: S, epoch_blocks: u64) -> SpilledAuditor<S> {
        SpilledAuditor {
            auditor,
            store,
            epoch_blocks,
            spilled_blocks: 0,
            spilled_bytes: 0,
            spilled_segments: 0,
        }
    }

    /// The wrapped auditor (rolling state, counters, config).
    pub fn auditor(&self) -> &StreamingAuditor {
        &self.auditor
    }

    /// Ingestion/state counters of the wrapped auditor.
    pub fn counters(&self) -> StreamCounters {
        self.auditor.counters()
    }

    /// Blocks ingested so far.
    pub fn tip_blocks(&self) -> u64 {
        self.auditor.tip_blocks()
    }

    /// Digest segments checkpointed so far.
    pub fn spilled_segments(&self) -> u64 {
        self.spilled_segments
    }

    /// Bytes the checkpointed segments occupy in the store.
    pub fn spilled_bytes(&self) -> u64 {
        self.spilled_bytes
    }

    /// Dispatches one event; blocks may trigger a checkpoint.
    pub fn push_event(&mut self, event: &StreamEvent<'_>) -> Result<(), SpillError> {
        match event {
            StreamEvent::Block(b) => self.push_block(b),
            StreamEvent::Snapshot(s) => {
                self.push_snapshot(s);
                Ok(())
            }
        }
    }

    /// Ingests one snapshot (never spills — snapshot state is O(1)).
    pub fn push_snapshot(&mut self, snap: &MempoolSnapshot) {
        self.auditor.push_snapshot(snap);
    }

    /// Ingests one block, then checkpoints the digest if a full epoch of
    /// heights has sealed since the last spill.
    pub fn push_block(&mut self, block: &Block) -> Result<(), SpillError> {
        self.auditor.push_block(block)?;
        if self.epoch_blocks > 0
            && self.auditor.sealed_blocks().saturating_sub(self.spilled_blocks)
                >= self.epoch_blocks
        {
            self.spill()?;
        }
        Ok(())
    }

    /// Drains the settled digest slice and appends it to the store.
    fn spill(&mut self) -> Result<(), SpillError> {
        let segment = self.auditor.drain_digest();
        self.spilled_blocks += segment.blocks.len() as u64;
        let payload = encode_segment(&segment);
        let mut head = BytesMut::with_capacity(10);
        write_compact_size(&mut head, payload.len() as u64);
        self.store.seek(SeekFrom::Start(self.spilled_bytes))?;
        self.store.write_all(&head)?;
        self.store.write_all(&payload)?;
        self.spilled_bytes += (head.len() + payload.len()) as u64;
        self.spilled_segments += 1;
        Ok(())
    }

    /// The windowed telemetry — oblivious to spilling.
    pub fn rolling(&self) -> RollingVerdict {
        self.auditor.rolling()
    }

    /// The exact audit: replays every spilled segment, rebuilds the full
    /// chain digest transiently (drained segments + the auditor's retained
    /// remainder), and produces the verdict an unspilled
    /// [`StreamingAuditor::verdict`] would return over the same events —
    /// bit-identical, including refusal semantics.
    pub fn verdict(&mut self) -> Result<AuditReport, SpillError> {
        let mut blocks: Vec<BlockInfo> = Vec::new();
        let mut observed: FastSet<Txid> = FastSet::default();
        let mut addr_txids: FastMap<Address, Vec<Txid>> = FastMap::default();

        self.store.seek(SeekFrom::Start(0))?;
        let mut raw = vec![0u8; self.spilled_bytes as usize];
        self.store.read_exact(&mut raw)?;
        let mut cursor = Bytes::copy_from_slice(&raw);
        drop(raw);
        for _ in 0..self.spilled_segments {
            let len = read_compact_size(&mut cursor)?;
            ensure_remaining(&cursor, len as usize)?;
            let segment = decode_segment(&mut cursor)?;
            blocks.extend(segment.blocks);
            observed.extend(segment.observed);
            for (addr, txids) in segment.addr_txids {
                addr_txids.entry(addr).or_default().extend(txids);
            }
        }

        // The retained remainder: live index blocks, live sets.
        let live = self.auditor.digest_view();
        blocks.extend(live.0.iter().cloned());
        observed.extend(live.1.iter().copied());
        for (addr, txids) in live.2 {
            addr_txids.entry(*addr).or_default().extend(txids.iter().copied());
        }

        let index = ChainIndex::from_blocks(blocks);
        Ok(self.auditor.verdict_with_digest(&index, &observed, &addr_txids)?)
    }
}

/// Serializes one digest segment with the chain's wire primitives.
fn encode_segment(segment: &DigestSegment) -> Bytes {
    let mut buf = BytesMut::new();
    write_compact_size(&mut buf, segment.blocks.len() as u64);
    for block in &segment.blocks {
        write_compact_size(&mut buf, block.height);
        buf.put_slice(block.hash.0.as_bytes());
        write_compact_size(&mut buf, block.time);
        match &block.miner {
            Some(miner) => {
                buf.put_u8(1);
                write_var_bytes(&mut buf, miner.as_bytes());
            }
            None => buf.put_u8(0),
        }
        write_compact_size(&mut buf, block.coinbase_wallets.len() as u64);
        for wallet in &block.coinbase_wallets {
            put_address(&mut buf, wallet);
        }
        write_compact_size(&mut buf, block.txs.len() as u64);
        for tx in &block.txs {
            // Height and position are implied by block membership and row
            // order; only the independent facts are stored.
            buf.put_slice(tx.txid.0.as_bytes());
            write_compact_size(&mut buf, tx.fee.to_sat());
            write_compact_size(&mut buf, tx.vsize);
            buf.put_u8(tx.is_cpfp as u8);
        }
    }
    write_compact_size(&mut buf, segment.observed.len() as u64);
    for txid in &segment.observed {
        buf.put_slice(txid.0.as_bytes());
    }
    write_compact_size(&mut buf, segment.addr_txids.len() as u64);
    for (addr, txids) in &segment.addr_txids {
        put_address(&mut buf, addr);
        write_compact_size(&mut buf, txids.len() as u64);
        for txid in txids {
            buf.put_slice(txid.0.as_bytes());
        }
    }
    buf.freeze()
}

/// Decodes one digest segment (the inverse of [`encode_segment`]).
fn decode_segment(buf: &mut Bytes) -> Result<DigestSegment, DecodeError> {
    let block_count = checked_len(read_compact_size(buf)?)?;
    let mut blocks = Vec::with_capacity(block_count.min(4_096));
    for _ in 0..block_count {
        let height = read_compact_size(buf)?;
        let hash = BlockHash(read_hash(buf)?);
        let time = read_compact_size(buf)?;
        ensure_remaining(buf, 1)?;
        let miner = if buf.get_u8() == 1 {
            let raw = read_var_bytes(buf)?;
            Some(String::from_utf8(raw.to_vec()).map_err(|_| DecodeError::UnexpectedEnd)?)
        } else {
            None
        };
        let wallet_count = checked_len(read_compact_size(buf)?)?;
        let mut coinbase_wallets = Vec::with_capacity(wallet_count.min(4_096));
        for _ in 0..wallet_count {
            coinbase_wallets.push(read_address(buf)?);
        }
        let tx_count = checked_len(read_compact_size(buf)?)?;
        let mut txs = Vec::with_capacity(tx_count.min(65_536));
        for position in 0..tx_count {
            let txid = Txid(read_hash(buf)?);
            let fee = Amount::from_sat(read_compact_size(buf)?);
            let vsize = read_compact_size(buf)?;
            ensure_remaining(buf, 1)?;
            let is_cpfp = buf.get_u8() != 0;
            txs.push(TxRecord { txid, height, position, fee, vsize, is_cpfp });
        }
        blocks.push(BlockInfo { height, hash, time, miner, coinbase_wallets, txs });
    }
    let observed_count = checked_len(read_compact_size(buf)?)?;
    let mut observed = Vec::with_capacity(observed_count.min(1 << 20));
    for _ in 0..observed_count {
        observed.push(Txid(read_hash(buf)?));
    }
    let addr_count = checked_len(read_compact_size(buf)?)?;
    let mut addr_txids = Vec::with_capacity(addr_count.min(1 << 20));
    for _ in 0..addr_count {
        let addr = read_address(buf)?;
        let n = checked_len(read_compact_size(buf)?)?;
        let mut txids = Vec::with_capacity(n.min(1 << 20));
        for _ in 0..n {
            txids.push(Txid(read_hash(buf)?));
        }
        addr_txids.push((addr, txids));
    }
    Ok(DigestSegment { blocks, observed, addr_txids })
}

fn checked_len(n: u64) -> Result<usize, DecodeError> {
    if n > MAX_DECODE_LEN {
        return Err(DecodeError::OversizedLength(n));
    }
    Ok(n as usize)
}

fn read_hash(buf: &mut Bytes) -> Result<Hash256, DecodeError> {
    ensure_remaining(buf, 32)?;
    let mut raw = [0u8; 32];
    buf.copy_to_slice(&mut raw);
    Ok(Hash256(raw))
}

fn put_address(buf: &mut BytesMut, addr: &Address) {
    let kind = match addr {
        Address::P2pkh(_) => 0u8,
        Address::P2sh(_) => 1,
        Address::P2wpkh(_) => 2,
    };
    buf.put_u8(kind);
    buf.put_slice(addr.payload());
}

fn read_address(buf: &mut Bytes) -> Result<Address, DecodeError> {
    ensure_remaining(buf, 21)?;
    let kind = buf.get_u8();
    let mut payload = [0u8; 20];
    buf.copy_to_slice(&mut payload);
    match kind {
        0 => Ok(Address::P2pkh(payload)),
        1 => Ok(Address::P2sh(payload)),
        2 => Ok(Address::P2wpkh(payload)),
        _ => Err(DecodeError::UnexpectedEnd),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coverage::StreamExpectation;
    use crate::streaming::{interleave, StreamingConfig};
    use cn_chain::{Amount, Chain, CoinbaseBuilder, Params, PoolMarker, Transaction};
    use cn_mempool::SnapshotEntry;
    use std::io::Cursor;

    /// A small valid chain alternating two pools, with per-block snapshots.
    fn sample(blocks: u64) -> (Chain, Vec<MempoolSnapshot>) {
        let mut chain = Chain::new(Params::mainnet());
        let mut fund =
            Transaction::builder().add_input(cn_chain::TxIn::new(cn_chain::OutPoint::NULL));
        for _ in 0..blocks * 2 {
            fund = fund.pay_to(Address::from_label("u"), Amount::from_sat(2_000_000));
        }
        let fund = fund.build();
        chain.seed_utxos(&fund);
        let mut snapshots = Vec::new();
        for h in 0..blocks {
            let t1 = Transaction::builder()
                .add_input_with_sizes(fund.txid(), (h * 2) as u32, 107, 0)
                .pay_to(Address::from_label("a"), Amount::from_sat(1_800_000))
                .build();
            let t2 = Transaction::builder()
                .add_input_with_sizes(fund.txid(), (h * 2 + 1) as u32, 107, 0)
                .pay_to(Address::from_label("b"), Amount::from_sat(1_900_000))
                .build();
            snapshots.push(MempoolSnapshot::from_entries(
                h * 600 + 300,
                [&t1, &t2]
                    .iter()
                    .enumerate()
                    .map(|(i, tx)| SnapshotEntry {
                        txid: tx.txid(),
                        received: h * 600 + 100 + i as u64,
                        fee: Amount::from_sat(if i == 0 { 200_000 } else { 100_000 }),
                        vsize: tx.vsize(),
                        has_unconfirmed_parent: false,
                    })
                    .collect(),
            ));
            let fees = Amount::from_sat(300_000);
            let pool = if h % 2 == 0 { "/Alpha/" } else { "/Beta/" };
            let cb = CoinbaseBuilder::new(h)
                .marker(PoolMarker::new(pool))
                .reward(
                    Address::from_label(&format!("pool:{}:0", &pool[1..pool.len() - 1])),
                    Amount::from_btc(50) + fees,
                )
                .extra_nonce(h)
                .build();
            let block =
                Block::assemble(2, chain.tip_hash(), (h + 1) * 600, h as u32, cb, vec![t1, t2]);
            chain.connect(block).expect("valid");
        }
        (chain, snapshots)
    }

    fn config(blocks: u64, window: u64) -> StreamingConfig {
        let mut cfg = StreamingConfig::new(StreamExpectation {
            windows: blocks,
            detailed: blocks,
            min_coverage: 0.0,
        });
        cfg.window_blocks = window;
        cfg
    }

    #[test]
    fn spilled_verdict_is_bit_identical_to_unspilled() {
        let (chain, snapshots) = sample(16);
        for epoch in [1u64, 3, 5] {
            let mut plain =
                StreamingAuditor::new(chain.initial_utxos(), config(16, 4));
            let mut spilled = SpilledAuditor::new(
                StreamingAuditor::new(chain.initial_utxos(), config(16, 4)),
                Cursor::new(Vec::new()),
                epoch,
            );
            for ev in interleave(chain.blocks(), &snapshots) {
                plain.push_event(&ev).expect("replays");
                spilled.push_event(&ev).expect("replays");
            }
            assert!(spilled.spilled_segments() > 0, "epoch {epoch} never spilled");
            assert!(
                spilled.auditor().digest_view().0.len() < chain.blocks().len(),
                "epoch {epoch} retained the whole index"
            );
            let want = plain.verdict().expect("audits");
            let got = spilled.verdict().expect("audits");
            assert_eq!(got, want, "epoch {epoch}");
            assert_eq!(got.render(), want.render(), "epoch {epoch}");
            // Rolling telemetry is oblivious to spilling.
            assert_eq!(spilled.rolling(), plain.rolling(), "epoch {epoch}");
            // Verdict is repeatable (the store survives being replayed).
            let again = spilled.verdict().expect("audits twice");
            assert_eq!(again, want, "epoch {epoch} second verdict");
        }
    }

    #[test]
    fn epoch_zero_never_spills_and_matches() {
        let (chain, snapshots) = sample(8);
        let mut plain = StreamingAuditor::new(chain.initial_utxos(), config(8, 3));
        let mut spilled = SpilledAuditor::new(
            StreamingAuditor::new(chain.initial_utxos(), config(8, 3)),
            Cursor::new(Vec::new()),
            0,
        );
        for ev in interleave(chain.blocks(), &snapshots) {
            plain.push_event(&ev).expect("replays");
            spilled.push_event(&ev).expect("replays");
        }
        assert_eq!(spilled.spilled_segments(), 0);
        assert_eq!(spilled.spilled_bytes(), 0);
        assert_eq!(spilled.verdict().expect("audits"), plain.verdict().expect("audits"));
    }

    #[test]
    fn segment_round_trips_through_the_wire_format() {
        let (chain, snapshots) = sample(10);
        let mut auditor = StreamingAuditor::new(chain.initial_utxos(), config(10, 2));
        for ev in interleave(chain.blocks(), &snapshots) {
            auditor.push_event(&ev).expect("replays");
        }
        let segment = auditor.drain_digest();
        assert!(!segment.blocks.is_empty());
        assert!(!segment.observed.is_empty());
        assert!(!segment.addr_txids.is_empty());
        let encoded = encode_segment(&segment);
        let mut cursor = Bytes::copy_from_slice(&encoded);
        let decoded = decode_segment(&mut cursor).expect("round trip");
        assert!(!cursor.has_remaining(), "decoder consumed everything");
        assert_eq!(decoded.observed, segment.observed);
        assert_eq!(decoded.addr_txids, segment.addr_txids);
        assert_eq!(decoded.blocks.len(), segment.blocks.len());
        for (a, b) in decoded.blocks.iter().zip(&segment.blocks) {
            assert_eq!(a.height, b.height);
            assert_eq!(a.hash, b.hash);
            assert_eq!(a.time, b.time);
            assert_eq!(a.miner, b.miner);
            assert_eq!(a.coinbase_wallets, b.coinbase_wallets);
            assert_eq!(a.txs, b.txs);
        }
        // A truncated segment is a typed decode error, not a panic.
        let mut torn = Bytes::copy_from_slice(&encoded[..encoded.len() / 2]);
        assert!(decode_segment(&mut torn).is_err());
    }
}
