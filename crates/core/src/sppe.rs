//! Signed Position Prediction Error (§5.1.1, §5.4.2).
//!
//! For a transaction `c` in a block, `SPPE(c) = predicted − observed`
//! percentile rank. A transaction placed *above* its fee-rate rank (the
//! acceleration signature) scores positive; one pushed to the bottom
//! scores negative. Per-miner SPPE averages the statistic over a
//! transaction set within that miner's blocks.

use crate::index::{BlockInfo, ChainIndex};
use crate::ppe::{percentile, predicted_positions};
use cn_chain::{FastSet, Txid};

/// SPPE of one transaction within its block (all body transactions form
/// the ranking basis). Returns `None` when the txid is not in the block.
pub fn tx_sppe(block: &BlockInfo, txid: &Txid) -> Option<f64> {
    let observed = block.txs.iter().position(|t| &t.txid == txid)?;
    let subset: Vec<(usize, u64, u64)> = block
        .txs
        .iter()
        .enumerate()
        .map(|(i, t)| (i, t.fee.to_sat(), t.vsize.max(1)))
        .collect();
    let n = subset.len();
    let predicted = predicted_positions(&subset);
    Some(percentile(predicted[observed], n) - percentile(observed, n))
}

/// SPPE of every transaction in a block, in block order.
pub fn block_sppes(block: &BlockInfo) -> Vec<(Txid, f64)> {
    if block.txs.is_empty() {
        return Vec::new();
    }
    let subset: Vec<(usize, u64, u64)> = block
        .txs
        .iter()
        .enumerate()
        .map(|(i, t)| (i, t.fee.to_sat(), t.vsize.max(1)))
        .collect();
    let n = subset.len();
    let predicted = predicted_positions(&subset);
    block
        .txs
        .iter()
        .enumerate()
        .map(|(i, t)| (t.txid, percentile(predicted[i], n) - percentile(i, n)))
        .collect()
}

/// Mean SPPE of the c-transactions confirmed in blocks attributed to
/// `miner` (the `% SPPE(m)` column of Tables 2 and 3). Returns `None`
/// when the miner confirmed none of them.
pub fn sppe_for_miner(index: &ChainIndex, c_txids: &FastSet<Txid>, miner: &str) -> Option<f64> {
    let mut total = 0.0;
    let mut count = 0usize;
    for block in index.blocks() {
        if block.miner.as_deref() != Some(miner) {
            continue;
        }
        if block.txs.iter().all(|t| !c_txids.contains(&t.txid)) {
            continue;
        }
        for (txid, sppe) in block_sppes(block) {
            if c_txids.contains(&txid) {
                total += sppe;
                count += 1;
            }
        }
    }
    if count == 0 {
        None
    } else {
        Some(total / count as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::TxRecord;
    use cn_chain::{Amount, BlockHash};

    fn block(miner: &str, rates: &[u64]) -> BlockInfo {
        let txs = rates
            .iter()
            .enumerate()
            .map(|(i, &r)| TxRecord {
                txid: Txid::from([(i + 1) as u8; 32]),
                height: 0,
                position: i,
                fee: Amount::from_sat(r * 100),
                vsize: 100,
                is_cpfp: false,
            })
            .collect();
        BlockInfo {
            height: 0,
            hash: BlockHash::ZERO,
            time: 0,
            miner: Some(miner.into()),
            coinbase_wallets: vec![],
            txs,
        }
    }

    #[test]
    fn accelerated_low_fee_leader_scores_high_positive() {
        // A 1 sat/vB tx at the very top of a block of whales.
        let b = block("M", &[1, 100, 90, 80, 70]);
        let sppe = tx_sppe(&b, &Txid::from([1; 32])).expect("present");
        // Predicted bottom (rank 4 of 5, pct 90), observed top (pct 10).
        assert!((sppe - 80.0).abs() < 1e-9, "sppe = {sppe}");
    }

    #[test]
    fn decelerated_whale_scores_negative() {
        let b = block("M", &[50, 40, 30, 100]);
        let sppe = tx_sppe(&b, &Txid::from([4; 32])).expect("present");
        assert!(sppe < -70.0, "sppe = {sppe}");
    }

    #[test]
    fn norm_placed_tx_scores_zero() {
        let b = block("M", &[100, 90, 80]);
        for i in 1..=3u8 {
            assert_eq!(tx_sppe(&b, &Txid::from([i; 32])), Some(0.0));
        }
    }

    #[test]
    fn absent_tx_is_none() {
        let b = block("M", &[10, 20]);
        assert_eq!(tx_sppe(&b, &Txid::from([0xaa; 32])), None);
    }

    #[test]
    fn block_sppes_sum_to_zero() {
        // Signed displacements over a permutation cancel.
        let b = block("M", &[10, 90, 30, 70, 50]);
        let sum: f64 = block_sppes(&b).iter().map(|(_, s)| s).sum();
        assert!(sum.abs() < 1e-9, "sum = {sum}");
    }

    #[test]
    fn miner_scoped_mean() {
        let chain_blocks = [block("M", &[1, 100, 90]), block("Other", &[1, 100, 90])];
        // Hand-build an index-like scan through sppe_for_miner by calling
        // the block function directly: construct a ChainIndex is heavier,
        // so check the per-block primitive and scoping logic separately.
        let target = Txid::from([1; 32]);
        let own = tx_sppe(&chain_blocks[0], &target).expect("present");
        assert!(own > 0.0);
        // sppe_for_miner over a real index is exercised in integration
        // tests; here we validate at least that the helper skips foreign
        // miners by means of an empty set.
        let mut set = FastSet::default();
        set.insert(target);
        // A miner with no blocks yields None on an empty index.
        let empty = ChainIndex::default();
        assert_eq!(sppe_for_miner(&empty, &set, "M"), None);
    }
}
