//! The incremental (online) auditor: the batch methodology over a live
//! event stream, with rolling verdicts and windowed memory.
//!
//! [`StreamingAuditor`] ingests an interleaved stream of block-connect and
//! mempool-snapshot events ([`StreamEvent`]) and exposes two outputs:
//!
//! * [`StreamingAuditor::verdict`] — the **exact** audit. It maintains the
//!   same digested facts the batch pipeline derives — a [`ChainIndex`]
//!   grown block-by-block, a live UTXO view for fees and self-interest
//!   classification, and the coverage counters of
//!   [`SnapshotCoverage::assess`] — and then runs the *same* downstream
//!   code ([`crate::auditor::audit_attributed`]). The result is
//!   bit-identical to [`crate::auditor::audit_with_snapshots`] over the
//!   final chain and snapshot set, including the refusal behavior: an
//!   empty stream errors, and coverage below the expectation floor refuses
//!   with [`AuditError::InsufficientCoverage`].
//! * [`StreamingAuditor::rolling`] — the **windowed** telemetry: per-miner
//!   [`MinerAccumulator`] shards keyed by confirmation height, sealed and
//!   merged epoch-by-epoch (the associative merge law of
//!   [`cn_stats::stream`]), streaming delay/fee-rate quantiles
//!   ([`Histogram`]), windowed pair-violation counts, and an incremental
//!   binomial + Fisher evaluation over the per-epoch violation counts.
//!
//! # Memory bound
//!
//! The snapshot stream — by far the dominant data volume; an observer
//! re-lists its whole backlog every detailed snapshot — is **never
//! retained**. Each snapshot is folded into O(1) coverage counters, a
//! first-seen entry per *pending* transaction, and the histograms, then
//! dropped. Windowed pair state holds rows for at most `2·window_blocks`
//! confirmation heights (a sealed height stays one extra window as the
//! comparison partner of later blocks). What necessarily grows with the
//! chain is the same digested per-transaction state the batch
//! [`ChainIndex`] carries (audit facts, the observed-txid set, and the
//! address→txid log that replaces the batch auditor's post-hoc UTXO
//! replay) — the exact verdict is a function of the whole chain, so no
//! auditor can answer it from a window. [`StreamCounters`] reports both
//! sides: `rows_processed` counts every snapshot row ever ingested, while
//! `window_rows`/`peak_window_rows` track the retained sliding-window
//! state, which stays O(window + backlog), not O(history).
//!
//! # Chunking invariance
//!
//! Verdict state is insensitive to how the stream is chunked or how
//! snapshots interleave with blocks: blocks must arrive in height order
//! (enforced by the UTXO replay), snapshot-derived state is built from
//! sets, counters, and per-transaction minima, and all cross-referencing
//! (observed∩confirmed, self-interest unions, attribution) happens at
//! `verdict()` time. Any interleaving of the same events therefore yields
//! the same verdict — the property `tests/streaming_equivalence.rs` pins.

use crate::attribution::attribute;
use crate::auditor::{audit_attributed, AuditConfig, AuditReport};
use crate::coverage::{SnapshotCoverage, StreamExpectation};
use crate::error::AuditError;
use crate::index::{BlockInfo, ChainIndex};
use crate::pairs::{count_cross_block, BlockPairSet};
use crate::ppe::block_ppe;
use crate::self_interest::SelfInterestMap;
use crate::sppe::block_sppes;
use cn_chain::{Address, Block, FastMap, FastSet, FeeRate, Timestamp, Txid, UtxoSet};
use cn_mempool::MempoolSnapshot;
use cn_stats::stream::{Histogram, MinerAccumulator};
use cn_stats::{binomial_test, fisher_combine, Pool, Tail};
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// One event of the interleaved audit input stream.
#[derive(Clone, Copy, Debug)]
pub enum StreamEvent<'a> {
    /// A block connected to the chain tip.
    Block(&'a Block),
    /// An observer mempool snapshot.
    Snapshot(&'a MempoolSnapshot),
}

impl StreamEvent<'_> {
    /// The event's timestamp (block header time or snapshot time).
    pub fn time(&self) -> Timestamp {
        match self {
            StreamEvent::Block(b) => b.header.time,
            StreamEvent::Snapshot(s) => s.time,
        }
    }
}

/// Interleaves a finished run's blocks and snapshots into the canonical
/// event stream: merged by timestamp, blocks first on ties, with each
/// source's internal order preserved (blocks stay in height order).
pub fn interleave<'a>(
    blocks: &'a [Block],
    snapshots: &'a [MempoolSnapshot],
) -> Vec<StreamEvent<'a>> {
    let mut events = Vec::with_capacity(blocks.len() + snapshots.len());
    let (mut bi, mut si) = (0usize, 0usize);
    while bi < blocks.len() || si < snapshots.len() {
        let take_block = match (blocks.get(bi), snapshots.get(si)) {
            (Some(b), Some(s)) => b.header.time <= s.time,
            (Some(_), None) => true,
            _ => false,
        };
        if take_block {
            events.push(StreamEvent::Block(&blocks[bi]));
            bi += 1;
        } else {
            events.push(StreamEvent::Snapshot(&snapshots[si]));
            si += 1;
        }
    }
    events
}

/// Streaming-auditor parameters.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct StreamingConfig {
    /// The batch audit parameters the exact verdict runs with.
    pub audit: AuditConfig,
    /// What the snapshot stream was scheduled to contain, including the
    /// confidence floor below which [`StreamingAuditor::verdict`] refuses.
    pub expectation: StreamExpectation,
    /// Sliding-window width in confirmation heights. A block's rolling
    /// state is sealed once the tip is `window_blocks` past it, and kept
    /// one further window as the pair-comparison partner of later blocks.
    pub window_blocks: u64,
    /// The ε arrival margin for windowed pair-violation counting (§4.2.1).
    pub epsilon_secs: u64,
    /// How many trailing sealed epochs (of `window_blocks` heights each)
    /// the per-miner Fisher combination spans.
    pub fisher_epochs: usize,
}

impl StreamingConfig {
    /// Default streaming parameters over a given stream expectation:
    /// batch-default audit config, a 12-block window, ε = 10 s, Fisher
    /// over the trailing 64 epochs.
    pub fn new(expectation: StreamExpectation) -> StreamingConfig {
        StreamingConfig {
            audit: AuditConfig::default(),
            expectation,
            window_blocks: 12,
            epsilon_secs: 10,
            fisher_epochs: 64,
        }
    }
}

/// Ingestion and state-size counters; the bench driver exports these into
/// `BENCH_pipeline.json` so CI can assert the windowed state stays
/// O(window), not O(history).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StreamCounters {
    /// Total events pushed.
    pub events: u64,
    /// Blocks pushed.
    pub blocks: u64,
    /// Snapshots pushed.
    pub snapshots: u64,
    /// Snapshot rows ingested over the stream's lifetime — the volume a
    /// batch audit retains in full.
    pub rows_processed: u64,
    /// Rows currently retained in windowed state: sliding-window block
    /// rows plus pending first-seen entries.
    pub window_rows: u64,
    /// High-water mark of `window_rows`.
    pub peak_window_rows: u64,
}

/// A pending transaction's first-seen facts, folded over snapshots.
#[derive(Clone, Copy, Debug)]
struct SeenFact {
    received: Timestamp,
    /// True when any snapshot listed the tx with an unconfirmed parent —
    /// such rows are CPFP candidates and excluded from pair counting.
    unconfirmed_parent: bool,
}

/// One retained transaction row in the sliding window.
#[derive(Clone, Debug)]
struct WindowRow {
    txid: Txid,
    fee_rate: FeeRate,
    /// CPFP by the §E chain definition or ever seen with an unconfirmed
    /// parent; excluded from pair counting (resolved at seal time).
    excluded: bool,
    sppe: f64,
    seen: Option<SeenFact>,
}

/// Rolling state for one confirmation height.
#[derive(Clone, Debug)]
struct WindowBlock {
    time: Timestamp,
    miner: Option<String>,
    rows: Vec<WindowRow>,
    /// Eligible rows pre-sorted for the cross-block pair kernels, built
    /// once when this height seals and reused by every later seal that
    /// pairs against it.
    pairs: Option<BlockPairSet>,
}

/// One miner's row of a [`RollingVerdict`].
#[derive(Clone, Debug, PartialEq)]
pub struct RollingMiner {
    /// Pool name.
    pub name: String,
    /// Merged accumulator over every sealed height plus the live epoch.
    pub stats: MinerAccumulator,
    /// Fisher-combined p-value of the per-epoch pair-violation binomial
    /// tests (H₁: this miner resolves fee/time-ordered pairs against the
    /// norm more often than the epoch's global rate); `None` until an
    /// epoch with candidate pairs for this miner has sealed.
    pub fisher_p: Option<f64>,
}

/// The windowed telemetry snapshot returned by
/// [`StreamingAuditor::rolling`]. Deterministic for a given set of
/// ingested events, regardless of chunking.
#[derive(Clone, Debug, PartialEq)]
pub struct RollingVerdict {
    /// Chain height ingested so far (number of blocks).
    pub tip_blocks: u64,
    /// Heights whose rolling state has sealed (trails the tip by up to
    /// `window_blocks`).
    pub sealed_blocks: u64,
    /// Per-miner rolling stats, largest block count first (name-tiebroken),
    /// capped at the audit config's `top_k`.
    pub miners: Vec<RollingMiner>,
    /// Commit-delay quantiles in seconds (p50, p90), once observed
    /// confirmations exist.
    pub delay_p50_p90: Option<(f64, f64)>,
    /// Confirmed fee-rate quantiles in sat/vB (p50, p90).
    pub feerate_p50_p90: Option<(f64, f64)>,
    /// Ingestion/state counters at the time of the call.
    pub counters: StreamCounters,
}

impl RollingVerdict {
    /// Renders a compact, deterministic summary line block.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "rolling @ {} blocks ({} sealed): {} snapshots, {} rows processed, {} window rows (peak {})",
            self.tip_blocks,
            self.sealed_blocks,
            self.counters.snapshots,
            self.counters.rows_processed,
            self.counters.window_rows,
            self.counters.peak_window_rows,
        );
        if let Some((p50, p90)) = self.delay_p50_p90 {
            let _ = writeln!(out, "  commit delay p50 {p50:.0}s p90 {p90:.0}s");
        }
        if let Some((p50, p90)) = self.feerate_p50_p90 {
            let _ = writeln!(out, "  fee rate p50 {p50:.1} p90 {p90:.1} sat/vB");
        }
        for m in &self.miners {
            let _ = write!(
                out,
                "  {}: {} blocks, {} txs",
                m.name, m.stats.blocks, m.stats.txs
            );
            if let Some(ppe) = m.stats.mean_ppe() {
                let _ = write!(out, ", PPE {ppe:.2}%");
            }
            if let Some(v) = m.stats.violation_fraction() {
                let _ = write!(
                    out,
                    ", pairs {}/{} ({:.2}%)",
                    m.stats.pair_violating,
                    m.stats.pair_candidates,
                    v * 100.0
                );
            }
            if let Some(p) = m.fisher_p {
                let _ = write!(out, ", fisher p {p:.3}");
            }
            out.push('\n');
        }
        out
    }
}

/// The incremental auditor. See the module docs for the state layout and
/// guarantees.
#[derive(Clone, Debug)]
pub struct StreamingAuditor {
    config: StreamingConfig,

    // ---- exact-verdict state (mirrors the batch pipeline's inputs) ----
    index: ChainIndex,
    utxos: UtxoSet,
    /// Every confirmed tx, under each address it touched (resolved input
    /// funding addresses + output addresses) — the streaming replacement
    /// for the batch auditor's post-hoc UTXO replay. Pool wallets are only
    /// known at verdict time (attribution is retroactive), so the log is
    /// keyed by address, not pool.
    addr_txids: FastMap<Address, Vec<Txid>>,
    /// Distinct txids seen in any detailed snapshot.
    observed: FastSet<Txid>,
    // Coverage counters, mirroring `SnapshotCoverage::assess`.
    present_windows: u64,
    present_detailed: u64,
    truncated_detailed: u64,
    degraded_windows: u64,
    /// Set when a pushed block failed to replay; all later verdicts refuse.
    poisoned: Option<u64>,

    // ---- windowed rolling state ----
    first_seen: FastMap<Txid, SeenFact>,
    window: BTreeMap<u64, WindowBlock>,
    /// Next height to seal.
    seal_frontier: u64,
    current_epoch: u64,
    epoch: BTreeMap<String, MinerAccumulator>,
    sealed: BTreeMap<String, MinerAccumulator>,
    fisher: BTreeMap<String, VecDeque<f64>>,
    delay_hist: Histogram,
    feerate_hist: Histogram,

    /// Fork-join pool for the window pair scans (deterministic join; a
    /// width-1 pool is exactly the serial loop).
    pool: Pool,

    counters: StreamCounters,
}

impl StreamingAuditor {
    /// A streaming auditor over a chain seeded with `seed_utxos` (the
    /// pre-genesis outputs, [`cn_chain::Chain::initial_utxos`]).
    pub fn new(seed_utxos: UtxoSet, config: StreamingConfig) -> StreamingAuditor {
        StreamingAuditor {
            config,
            index: ChainIndex::default(),
            utxos: seed_utxos,
            addr_txids: FastMap::default(),
            observed: FastSet::default(),
            present_windows: 0,
            present_detailed: 0,
            truncated_detailed: 0,
            degraded_windows: 0,
            poisoned: None,
            first_seen: FastMap::default(),
            window: BTreeMap::new(),
            seal_frontier: 0,
            current_epoch: 0,
            epoch: BTreeMap::new(),
            sealed: BTreeMap::new(),
            fisher: BTreeMap::new(),
            // 30 s buckets out to 2 h; 1 sat/vB buckets out to 500.
            delay_hist: Histogram::new(0.0, 7_200.0, 240),
            feerate_hist: Histogram::new(0.0, 500.0, 500),
            pool: Pool::auto(),
            counters: StreamCounters::default(),
        }
    }

    /// Overrides the fork-join width for the window pair scans. Output is
    /// byte-identical at any width; this only moves wall time.
    pub fn with_workers(mut self, workers: usize) -> StreamingAuditor {
        self.pool = Pool::with_workers(workers);
        self
    }

    /// The configured parameters.
    pub fn config(&self) -> &StreamingConfig {
        &self.config
    }

    /// Ingestion/state counters.
    pub fn counters(&self) -> StreamCounters {
        self.counters
    }

    /// Blocks ingested so far.
    pub fn tip_blocks(&self) -> u64 {
        self.index.len() as u64
    }

    /// Heights whose rolling state has sealed — everything below this is
    /// settled and eligible for [`StreamingAuditor::drain_digest`].
    pub fn sealed_blocks(&self) -> u64 {
        self.seal_frontier
    }

    /// The retained (undrained) chain-digest state: indexed blocks, the
    /// observed-txid set, and the address→txid log. A digest-checkpointing
    /// caller appends these to its restored segments when rebuilding the
    /// full digest for [`StreamingAuditor::verdict_with_digest`].
    pub fn digest_view(
        &self,
    ) -> (&[crate::index::BlockInfo], &FastSet<Txid>, &FastMap<Address, Vec<Txid>>) {
        (self.index.blocks(), &self.observed, &self.addr_txids)
    }

    /// Dispatches one event.
    pub fn push_event(&mut self, event: &StreamEvent<'_>) -> Result<(), AuditError> {
        match event {
            StreamEvent::Block(b) => self.push_block(b),
            StreamEvent::Snapshot(s) => {
                self.push_snapshot(s);
                Ok(())
            }
        }
    }

    /// Ingests one observer snapshot: coverage counters, the observed-txid
    /// set, and first-seen facts. O(rows) work, O(1) retained beyond the
    /// per-pending-tx first-seen entry.
    pub fn push_snapshot(&mut self, snap: &MempoolSnapshot) {
        self.counters.events += 1;
        self.counters.snapshots += 1;
        self.present_windows += 1;
        if snap.is_detailed() {
            self.present_detailed += 1;
            if snap.is_truncated() {
                self.truncated_detailed += 1;
            }
        }
        if snap.is_degraded() {
            self.degraded_windows += 1;
        }
        for row in snap.rows() {
            self.counters.rows_processed += 1;
            self.observed.insert(row.txid);
            let fact = self
                .first_seen
                .entry(row.txid)
                .or_insert(SeenFact { received: row.received, unconfirmed_parent: false });
            fact.received = fact.received.min(row.received);
            fact.unconfirmed_parent |= row.has_unconfirmed_parent;
        }
        self.note_window_rows();
    }

    /// Ingests one connected block: replays it against the UTXO view
    /// (fees and the self-interest address log), extends the
    /// [`ChainIndex`], and advances the sliding window (sealing heights
    /// `window_blocks` behind the new tip).
    ///
    /// Blocks must arrive in connect (height) order; a block that does not
    /// replay poisons the auditor — the error is sticky and every later
    /// [`StreamingAuditor::verdict`] returns it.
    pub fn push_block(&mut self, block: &Block) -> Result<(), AuditError> {
        if let Some(height) = self.poisoned {
            return Err(AuditError::UnreplayableBlock { height });
        }
        let height = self.index.len() as u64;
        self.counters.events += 1;
        self.counters.blocks += 1;
        if let Some(cb) = block.coinbase() {
            self.utxos.insert_outputs(cb);
        }
        let mut fees = Vec::with_capacity(block.body().len());
        for tx in block.body() {
            // Resolve funding addresses before the spend consumes them.
            let mut touched: BTreeSet<Address> = BTreeSet::new();
            for input in tx.inputs() {
                if let Some(addr) = self.utxos.get(&input.prevout).and_then(|p| p.address()) {
                    touched.insert(addr);
                }
            }
            touched.extend(tx.output_addresses());
            let fee = match self.utxos.apply_tx(tx) {
                Ok(fee) => fee,
                Err(_) => {
                    self.poisoned = Some(height);
                    return Err(AuditError::UnreplayableBlock { height });
                }
            };
            let txid = tx.txid();
            for addr in touched {
                self.addr_txids.entry(addr).or_default().push(txid);
            }
            fees.push(fee);
        }
        self.index.push_block(block, &fees);
        self.extend_window(height);
        while self.seal_frontier + self.config.window_blocks <= height {
            let h = self.seal_frontier;
            self.seal_height(h);
            self.seal_frontier += 1;
            // Evict heights a full window behind the seal frontier: no
            // future seal can pair against them.
            let keep_from = h.saturating_sub(self.config.window_blocks);
            while let Some((&lowest, _)) = self.window.first_key_value() {
                if lowest >= keep_from {
                    break;
                }
                if let Some(evicted) = self.window.remove(&lowest) {
                    for row in &evicted.rows {
                        self.first_seen.remove(&row.txid);
                    }
                }
            }
        }
        self.note_window_rows();
        Ok(())
    }

    /// Captures the just-indexed block into the sliding window.
    fn extend_window(&mut self, height: u64) {
        let info = self.index.block(height).expect("just pushed");
        let sppes: FastMap<Txid, f64> = block_sppes(info).into_iter().collect();
        let rows = info
            .txs
            .iter()
            .map(|rec| WindowRow {
                txid: rec.txid,
                fee_rate: rec.fee_rate(),
                excluded: rec.is_cpfp,
                sppe: sppes.get(&rec.txid).copied().unwrap_or(0.0),
                seen: None,
            })
            .collect();
        self.window.insert(
            height,
            WindowBlock { time: info.time, miner: info.miner.clone(), rows, pairs: None },
        );
    }

    /// Seals one height: joins first-seen facts (settled by now — later
    /// snapshots list later arrivals), feeds the histograms and the
    /// current epoch's per-miner shards, and counts windowed pairs.
    fn seal_height(&mut self, height: u64) {
        let epoch = height / self.config.window_blocks.max(1);
        if epoch != self.current_epoch {
            self.finalize_epoch();
            self.current_epoch = epoch;
        }
        // Join first-seen facts into the sealed rows.
        let mut sealed_block = self.window.remove(&height).expect("height in window");
        for row in &mut sealed_block.rows {
            row.seen = self.first_seen.get(&row.txid).copied();
            if let Some(seen) = row.seen {
                row.excluded |= seen.unconfirmed_parent;
            }
        }

        // Per-miner block/PPE/SPPE components.
        if let Some(miner) = sealed_block.miner.clone() {
            let info = self.index.block(height).expect("indexed");
            let acc = self.epoch.entry(miner).or_default();
            acc.push_block(sealed_block.rows.len() as u64, block_ppe(info));
            for row in &sealed_block.rows {
                acc.push_sppe(row.sppe, row.sppe >= self.config.audit.sppe_threshold);
            }
        }

        // Delay/fee-rate sketches over observed confirmations.
        for row in &sealed_block.rows {
            if let Some(seen) = row.seen {
                self.delay_hist.push(sealed_block.time.saturating_sub(seen.received) as f64);
                self.feerate_hist.push(row.fee_rate.sat_per_vbyte());
            }
        }

        // Windowed pair counting: each cross-block pair is examined once,
        // when its later block seals, and charged to the earlier block's
        // miner (whose inclusion decision resolved the pair). A candidate
        // is a fee/time-ordered pair (one member seen ≥ ε earlier at a
        // strictly higher fee rate); it violates the norm when that member
        // confirmed later.
        let eps = self.config.epsilon_secs;
        let lo = height.saturating_sub(self.config.window_blocks);
        // The sealing block's eligible rows (first-seen joined, CPFP
        // excluded), pre-sorted once for all its window comparisons. A
        // pair is a candidate when one side was seen ≥ ε earlier at a
        // strictly higher fee rate, and violating when that side
        // nevertheless confirmed later — exactly the nested scan
        // `count_cross_block_reference` spells out; the kernels are
        // integer-exact replacements.
        let sealed_set = BlockPairSet::new(
            sealed_block
                .rows
                .iter()
                .filter(|r| !r.excluded)
                .filter_map(|r| r.seen.map(|s| (s.received, r.fee_rate))),
        );
        let partners: Vec<(&str, &BlockPairSet)> = self
            .window
            .range(lo..height)
            .filter_map(|(_, earlier)| match (earlier.miner.as_deref(), earlier.pairs.as_ref()) {
                (Some(miner), Some(pairs)) => Some((miner, pairs)),
                _ => None,
            })
            .collect();
        // Each window comparison is independent; fan out only when the
        // kernels have real work, otherwise thread spawn dominates.
        let work: usize =
            sealed_set.len() * partners.iter().map(|(_, p)| p.len()).sum::<usize>();
        let pool =
            if work >= 1 << 16 { self.pool } else { Pool::serial() };
        let counts = pool.map(&partners, |&(_, pairs)| count_cross_block(&sealed_set, pairs, eps));
        let mut charges: BTreeMap<&str, (u64, u64)> = BTreeMap::new();
        for (&(miner, _), stats) in partners.iter().zip(&counts) {
            if stats.candidates > 0 {
                let c = charges.entry(miner).or_default();
                c.0 += stats.violating;
                c.1 += stats.candidates;
            }
        }
        for (miner, (violating, candidates)) in charges {
            self.epoch.entry(miner.to_string()).or_default().push_pairs(violating, candidates);
        }

        // Re-insert: the sealed height remains a comparison partner for
        // the next `window_blocks` seals, carrying its pre-sorted rows.
        sealed_block.pairs = Some(sealed_set);
        self.window.insert(height, sealed_block);
    }

    /// Closes the current epoch: per-miner binomial tests of the epoch's
    /// pair-violation counts against its global rate, folded into each
    /// miner's trailing Fisher set, then the shard merge into the sealed
    /// totals — the associative-merge law in action.
    fn finalize_epoch(&mut self) {
        let total_v: u64 = self.epoch.values().map(|a| a.pair_violating).sum();
        let total_c: u64 = self.epoch.values().map(|a| a.pair_candidates).sum();
        if total_c > 0 {
            let rate = total_v as f64 / total_c as f64;
            for (miner, acc) in &self.epoch {
                if acc.pair_candidates == 0 {
                    continue;
                }
                let p = binomial_test(acc.pair_violating, acc.pair_candidates, rate, Tail::Upper)
                    .p_value;
                let ps = self.fisher.entry(miner.clone()).or_default();
                if ps.len() == self.config.fisher_epochs.max(1) {
                    ps.pop_front();
                }
                ps.push_back(p);
            }
        }
        for (miner, acc) in std::mem::take(&mut self.epoch) {
            self.sealed.entry(miner).or_default().merge(&acc);
        }
    }

    /// Updates the retained-state counter and its high-water mark.
    fn note_window_rows(&mut self) {
        let rows: usize = self.window.values().map(|b| b.rows.len()).sum();
        self.counters.window_rows = (rows + self.first_seen.len()) as u64;
        self.counters.peak_window_rows =
            self.counters.peak_window_rows.max(self.counters.window_rows);
    }

    /// The windowed telemetry: sealed totals merged with the live epoch's
    /// shards, quantile sketches, and per-miner Fisher evidence. Pure —
    /// depends only on the set of events ingested so far.
    pub fn rolling(&self) -> RollingVerdict {
        let mut merged = self.sealed.clone();
        for (miner, acc) in &self.epoch {
            merged.entry(miner.clone()).or_default().merge(acc);
        }
        let mut miners: Vec<RollingMiner> = merged
            .into_iter()
            .map(|(name, stats)| {
                let fisher_p = self
                    .fisher
                    .get(&name)
                    .filter(|ps| !ps.is_empty())
                    .map(|ps| fisher_combine(&ps.iter().copied().collect::<Vec<_>>()));
                RollingMiner { name, stats, fisher_p }
            })
            .collect();
        miners.sort_by(|a, b| {
            b.stats.blocks.cmp(&a.stats.blocks).then_with(|| a.name.cmp(&b.name))
        });
        miners.truncate(self.config.audit.top_k);
        let q = |h: &Histogram| Some((h.quantile(0.5)?, h.quantile(0.9)?));
        RollingVerdict {
            tip_blocks: self.index.len() as u64,
            sealed_blocks: self.seal_frontier,
            miners,
            delay_p50_p90: q(&self.delay_hist),
            feerate_p50_p90: q(&self.feerate_hist),
            counters: self.counters,
        }
    }

    /// The exact audit over everything ingested so far — bit-identical to
    /// [`crate::auditor::audit_with_snapshots`] over the same chain prefix
    /// and snapshot set, with the same refusal semantics (empty stream,
    /// coverage floor).
    pub fn verdict(&self) -> Result<AuditReport, AuditError> {
        self.verdict_with_digest(&self.index, &self.observed, &self.addr_txids)
    }

    /// The exact audit with the chain-digest side supplied by the caller —
    /// the restore half of the [`StreamingAuditor::drain_digest`] contract.
    /// A caller that checkpointed digest segments out of memory rebuilds
    /// the full `index`, `observed` set, and `addr_txids` log (drained
    /// segments + this auditor's retained remainder) and gets the verdict
    /// [`StreamingAuditor::verdict`] would have produced had nothing been
    /// drained. Coverage counters, refusal semantics, and poisoning are
    /// still this auditor's own.
    pub fn verdict_with_digest(
        &self,
        index: &ChainIndex,
        observed: &FastSet<Txid>,
        addr_txids: &FastMap<Address, Vec<Txid>>,
    ) -> Result<AuditReport, AuditError> {
        if let Some(height) = self.poisoned {
            return Err(AuditError::UnreplayableBlock { height });
        }
        if self.counters.snapshots == 0 {
            return Err(AuditError::EmptySnapshotStream);
        }
        let coverage = SnapshotCoverage {
            expected_windows: self.config.expectation.windows,
            present_windows: self.present_windows,
            expected_detailed: self.config.expectation.detailed,
            present_detailed: self.present_detailed,
            truncated_detailed: self.truncated_detailed,
            degraded_windows: self.degraded_windows,
            txs_observed: observed.len(),
            txs_confirmed: index.tx_count(),
            confirmed_observed: observed.iter().filter(|t| index.record(t).is_some()).count(),
        };
        let confidence = coverage.confidence();
        if confidence < self.config.expectation.min_coverage {
            return Err(AuditError::InsufficientCoverage {
                coverage: confidence,
                required: self.config.expectation.min_coverage,
            });
        }
        let attribution = attribute(index);
        // Rebuild the self-interest map from the address log: pool wallet
        // inventories are only known now (attribution is retroactive), and
        // the log recorded exactly what the batch UTXO replay would see.
        let mut self_map = SelfInterestMap::default();
        for pool in &attribution.pools {
            let mut set = FastSet::default();
            for wallet in &pool.wallets {
                if let Some(txids) = addr_txids.get(wallet) {
                    set.extend(txids.iter().copied());
                }
            }
            if !set.is_empty() {
                self_map.by_pool.insert(pool.name.clone(), set);
            }
        }
        let mut report = audit_attributed(index, attribution, &self_map, self.config.audit);
        report.coverage = Some(coverage);
        Ok(report)
    }

    /// Checkpoints the settled slice of the chain-digest state out of this
    /// auditor, bounding its memory to O(window + epoch) regardless of
    /// chain length. Returns:
    ///
    /// * every indexed block below the seal frontier (no push path reads
    ///   them again — sealing touches only heights at or above the
    ///   frontier, and pair partners live in the window map),
    /// * the entire observed-txid set (only read at verdict time; txids
    ///   re-observed after a drain reappear in a later segment, so restore
    ///   is a set union),
    /// * the entire address→txid log (ditto; per-address segments
    ///   concatenate in drain order back to the undrained vectors).
    ///
    /// Rolling state and coverage counters are untouched —
    /// [`StreamingAuditor::rolling`] is oblivious to drains. The exact
    /// verdict requires handing the drained segments back via
    /// [`StreamingAuditor::verdict_with_digest`]; calling
    /// [`StreamingAuditor::verdict`] after a drain audits only the
    /// retained remainder. Segment contents are sorted (observed txids,
    /// address keys) so checkpoint bytes are deterministic.
    pub fn drain_digest(&mut self) -> DigestSegment {
        let blocks = self.index.drain_below(self.seal_frontier);
        let mut observed: Vec<Txid> = std::mem::take(&mut self.observed).into_iter().collect();
        observed.sort_unstable();
        let mut addr_txids: Vec<(Address, Vec<Txid>)> =
            std::mem::take(&mut self.addr_txids).into_iter().collect();
        addr_txids.sort_unstable_by_key(|(addr, _)| *addr);
        DigestSegment { blocks, observed, addr_txids }
    }
}

/// One checkpointed slice of the chain-digest state; see
/// [`StreamingAuditor::drain_digest`].
#[derive(Clone, Debug, Default)]
pub struct DigestSegment {
    /// Indexed blocks below the seal frontier, in height order.
    pub blocks: Vec<BlockInfo>,
    /// Txids observed in detailed snapshots since the last drain, sorted.
    pub observed: Vec<Txid>,
    /// Address→confirmed-txid log entries since the last drain, sorted by
    /// address; each list is in confirmation order.
    pub addr_txids: Vec<(Address, Vec<Txid>)>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use cn_chain::{Amount, Chain, CoinbaseBuilder, Params, PoolMarker, Transaction};
    use cn_mempool::SnapshotEntry;

    /// A small valid chain: 8 blocks, 2 user txs each, one pool.
    fn sample() -> (Chain, Vec<MempoolSnapshot>) {
        let mut chain = Chain::new(Params::mainnet());
        let mut fund =
            Transaction::builder().add_input(cn_chain::TxIn::new(cn_chain::OutPoint::NULL));
        for _ in 0..16 {
            fund = fund.pay_to(Address::from_label("u"), Amount::from_sat(2_000_000));
        }
        let fund = fund.build();
        chain.seed_utxos(&fund);
        let mut snapshots = Vec::new();
        for h in 0..8u64 {
            let t1 = Transaction::builder()
                .add_input_with_sizes(fund.txid(), (h * 2) as u32, 107, 0)
                .pay_to(Address::from_label("a"), Amount::from_sat(1_800_000))
                .build();
            let t2 = Transaction::builder()
                .add_input_with_sizes(fund.txid(), (h * 2 + 1) as u32, 107, 0)
                .pay_to(Address::from_label("b"), Amount::from_sat(1_900_000))
                .build();
            snapshots.push(MempoolSnapshot::from_entries(
                h * 600 + 300,
                [&t1, &t2]
                    .iter()
                    .enumerate()
                    .map(|(i, tx)| SnapshotEntry {
                        txid: tx.txid(),
                        received: h * 600 + 100 + i as u64,
                        fee: Amount::from_sat(if i == 0 { 200_000 } else { 100_000 }),
                        vsize: tx.vsize(),
                        has_unconfirmed_parent: false,
                    })
                    .collect(),
            ));
            let fees = Amount::from_sat(300_000);
            let cb = CoinbaseBuilder::new(h)
                .marker(PoolMarker::new("/Solo/"))
                .reward(Address::from_label("pool:Solo:0"), Amount::from_btc(50) + fees)
                .extra_nonce(h)
                .build();
            let block = Block::assemble(
                2,
                chain.tip_hash(),
                (h + 1) * 600,
                h as u32,
                cb,
                vec![t1, t2],
            );
            chain.connect(block).expect("valid");
        }
        (chain, snapshots)
    }

    fn expectation() -> StreamExpectation {
        StreamExpectation { windows: 8, detailed: 8, min_coverage: 0.0 }
    }

    #[test]
    fn verdict_matches_batch_audit() {
        let (chain, snapshots) = sample();
        let mut auditor =
            StreamingAuditor::new(chain.initial_utxos(), StreamingConfig::new(expectation()));
        for ev in interleave(chain.blocks(), &snapshots) {
            auditor.push_event(&ev).expect("replays");
        }
        let index = ChainIndex::build(&chain);
        let batch = crate::auditor::audit_with_snapshots(
            &chain,
            &index,
            &snapshots,
            expectation(),
            AuditConfig::default(),
        )
        .expect("audits");
        let stream = auditor.verdict().expect("audits");
        assert_eq!(stream, batch);
        assert_eq!(stream.render(), batch.render());
    }

    #[test]
    fn empty_stream_refuses_like_batch() {
        let (chain, _) = sample();
        let auditor =
            StreamingAuditor::new(chain.initial_utxos(), StreamingConfig::new(expectation()));
        assert_eq!(auditor.verdict(), Err(AuditError::EmptySnapshotStream));
    }

    #[test]
    fn coverage_floor_refuses_like_batch() {
        let (chain, snapshots) = sample();
        let exp = expectation().with_min_coverage(0.9);
        let mut cfg = StreamingConfig::new(exp);
        cfg.window_blocks = 4;
        let mut auditor = StreamingAuditor::new(chain.initial_utxos(), cfg);
        // Only push the first snapshot: coverage 1/8 < 0.9.
        auditor.push_snapshot(&snapshots[0]);
        for b in chain.blocks() {
            auditor.push_block(b).expect("replays");
        }
        let index = ChainIndex::build(&chain);
        let batch = crate::auditor::audit_with_snapshots(
            &chain,
            &index,
            &snapshots[..1],
            exp,
            AuditConfig::default(),
        );
        assert_eq!(auditor.verdict(), batch);
        assert!(matches!(auditor.verdict(), Err(AuditError::InsufficientCoverage { .. })));
    }

    #[test]
    fn window_state_stays_bounded_and_rolls() {
        let (chain, snapshots) = sample();
        let mut cfg = StreamingConfig::new(expectation());
        cfg.window_blocks = 2;
        let mut auditor = StreamingAuditor::new(chain.initial_utxos(), cfg);
        for ev in interleave(chain.blocks(), &snapshots) {
            auditor.push_event(&ev).expect("replays");
        }
        let rolling = auditor.rolling();
        assert_eq!(rolling.tip_blocks, 8);
        assert_eq!(rolling.sealed_blocks, 6, "tip minus window");
        // Retained rows bounded by two windows of blocks + pending txs,
        // far below the processed row count.
        let c = rolling.counters;
        assert!(c.rows_processed >= 16);
        // ≤ 2W+1 retained heights × 2 rows, doubled for first-seen entries.
        // (The peak ≪ rows_processed separation only shows at scale; the
        // bench harness and CI assert it over the full datasets.)
        assert!(c.window_rows <= (2 * 2 + 1) * 2 * 2, "window rows {}", c.window_rows);
        assert!(c.peak_window_rows >= c.window_rows);
        assert_eq!(rolling.miners.len(), 1);
        assert_eq!(rolling.miners[0].name, "Solo");
        assert!(rolling.delay_p50_p90.is_some());
        assert!(!rolling.render().is_empty());
    }

    #[test]
    fn unreplayable_block_poisons_the_auditor() {
        let (chain, snapshots) = sample();
        let mut auditor =
            StreamingAuditor::new(UtxoSet::new(), StreamingConfig::new(expectation()));
        auditor.push_snapshot(&snapshots[0]);
        // Without the seed outputs, the first body tx cannot replay.
        let err = auditor.push_block(&chain.blocks()[0]).expect_err("unreplayable");
        assert_eq!(err, AuditError::UnreplayableBlock { height: 0 });
        assert_eq!(auditor.verdict(), Err(AuditError::UnreplayableBlock { height: 0 }));
        let err2 = auditor.push_block(&chain.blocks()[1]).expect_err("sticky");
        assert_eq!(err2, AuditError::UnreplayableBlock { height: 0 });
    }
}
