//! Edge cases of cross-observer reconciliation: unanimity rules over
//! fully degraded windows, the single-observer fast path against the
//! general fusion path, and windows with nothing in them.

use cn_chain::{
    Address, Amount, Block, Chain, CoinbaseBuilder, Params, PoolMarker, Transaction, Txid,
};
use cn_core::{
    audit_with_fleet, audit_with_snapshots, reconcile, AuditConfig, ChainIndex, StreamExpectation,
};
use cn_core::reconcile::ObserverView;
use cn_mempool::{MempoolSnapshot, SnapshotEntry};

fn entry(seed: u8, received: u64) -> SnapshotEntry {
    SnapshotEntry {
        txid: Txid::from([seed; 32]),
        received,
        fee: Amount::from_sat(1_000),
        vsize: 100,
        has_unconfirmed_parent: false,
    }
}

fn view(label: &str, snapshots: Vec<MempoolSnapshot>, windows: u64) -> ObserverView {
    ObserverView {
        label: label.into(),
        snapshots,
        expectation: StreamExpectation { windows, detailed: windows, min_coverage: 0.0 },
    }
}

/// A small honest chain plus a matching snapshot stream, for audits that
/// need a real chain behind the fleet.
fn sample_world() -> (Chain, Vec<MempoolSnapshot>) {
    let mut chain = Chain::new(Params::mainnet());
    let mut fund = Transaction::builder().add_input(cn_chain::TxIn::new(cn_chain::OutPoint::NULL));
    for _ in 0..12 {
        fund = fund.pay_to(Address::from_label("u"), Amount::from_sat(2_000_000));
    }
    let fund = fund.build();
    chain.seed_utxos(&fund);
    let mut snapshots = Vec::new();
    for h in 0..6u64 {
        let t1 = Transaction::builder()
            .add_input_with_sizes(fund.txid(), (h * 2) as u32, 107, 0)
            .pay_to(Address::from_label("a"), Amount::from_sat(1_800_000))
            .build();
        let t2 = Transaction::builder()
            .add_input_with_sizes(fund.txid(), (h * 2 + 1) as u32, 107, 0)
            .pay_to(Address::from_label("b"), Amount::from_sat(1_900_000))
            .build();
        snapshots.push(MempoolSnapshot::from_entries(
            h * 600 + 300,
            [&t1, &t2]
                .iter()
                .enumerate()
                .map(|(i, tx)| SnapshotEntry {
                    txid: tx.txid(),
                    received: h * 600 + 100 + i as u64,
                    fee: Amount::from_sat(if i == 0 { 200_000 } else { 100_000 }),
                    vsize: tx.vsize(),
                    has_unconfirmed_parent: false,
                })
                .collect(),
        ));
        let fees = Amount::from_sat(300_000);
        let cb = CoinbaseBuilder::new(h)
            .marker(PoolMarker::new("/Solo/"))
            .reward(Address::from_label("pool:Solo:0"), Amount::from_btc(50) + fees)
            .extra_nonce(h)
            .build();
        let block =
            Block::assemble(2, chain.tip_hash(), (h + 1) * 600, h as u32, cb, vec![t1, t2]);
        chain.connect(block).expect("valid");
    }
    (chain, snapshots)
}

// ---- unanimity when ALL observers were degraded ----

#[test]
fn whole_stream_degraded_in_every_eye_stays_degraded() {
    // Both observers were eclipsed for the entire run: every fused window
    // keeps the degraded stamp, and the fused confidence collapses to 0.
    let degraded = |seed: u8| {
        vec![
            MempoolSnapshot::from_entries(15, vec![entry(seed, 10)]).mark_degraded(),
            MempoolSnapshot::from_entries(30, vec![entry(seed + 1, 20)]).mark_degraded(),
        ]
    };
    let fleet =
        reconcile(&[view("a", degraded(1), 2), view("b", degraded(10), 2)]).expect("reconciles");
    assert!(fleet.fused.iter().all(|s| s.is_degraded()), "unanimously degraded windows survive");
    assert_eq!(fleet.coverage.degraded_windows, 2);
    assert_eq!(fleet.coverage.undegraded_fraction(), 0.0);
    assert_eq!(fleet.coverage.confidence(), 0.0);
    // The rows themselves remain observations.
    assert_eq!(fleet.first_seen.txs_union, 4);
}

#[test]
fn per_window_unanimity_is_independent() {
    // Window 15: both degraded (stamp survives). Window 30: only one
    // (healed). The unanimity rule is per window, not per stream.
    let a = vec![
        MempoolSnapshot::from_entries(15, vec![entry(1, 10)]).mark_degraded(),
        MempoolSnapshot::from_entries(30, vec![entry(2, 20)]).mark_degraded(),
    ];
    let b = vec![
        MempoolSnapshot::from_entries(15, vec![entry(3, 11)]).mark_degraded(),
        MempoolSnapshot::from_entries(30, vec![entry(4, 21)]),
    ];
    let fleet = reconcile(&[view("a", a, 2), view("b", b, 2)]).expect("reconciles");
    assert!(fleet.fused[0].is_degraded());
    assert!(!fleet.fused[1].is_degraded());
    assert_eq!(fleet.coverage.degraded_windows, 1);
    assert_eq!(fleet.coverage.undegraded_fraction(), 0.5);
}

// ---- single-observer fast path vs the general fusion path ----

#[test]
fn solo_fast_path_preserves_stream_and_stamps() {
    // A one-eyed fleet's fused stream is its observer's stream verbatim,
    // including degraded and truncated stamps and light windows.
    let snaps = vec![
        MempoolSnapshot::from_entries(15, vec![entry(1, 10), entry(2, 11)]),
        MempoolSnapshot::from_entries(30, vec![entry(3, 20)]).mark_degraded(),
        MempoolSnapshot::from_entries(45, (1..=4).map(|i| entry(i, 40)).collect())
            .truncate_detail(0.5),
        MempoolSnapshot::light(60, 7, 700),
    ];
    let fleet = reconcile(&[view("solo", snaps.clone(), 4)]).expect("reconciles");
    assert_eq!(fleet.fused, snaps);
    assert!(fleet.dropped.is_empty());

    // An observer dropped for total blindness does not knock the fleet off
    // the fast path.
    let fleet =
        reconcile(&[view("solo", snaps.clone(), 4), view("blind", Vec::new(), 4)])
            .expect("reconciles");
    assert_eq!(fleet.fused, snaps);
    assert_eq!(fleet.dropped, vec!["blind".to_string()]);
}

#[test]
fn duplicated_observer_fuses_to_the_solo_stream() {
    // Feeding the same stream through two "observers" exercises the
    // general fusion path; its output must match the solo fast path —
    // same rows, same minima, same stamps, same light aggregates.
    let snaps = vec![
        MempoolSnapshot::from_entries(15, vec![entry(1, 10), entry(2, 11)]).mark_degraded(),
        MempoolSnapshot::from_entries(30, (1..=4).map(|i| entry(i, 20)).collect())
            .truncate_detail(0.5),
        MempoolSnapshot::light(45, 9, 900),
    ];
    let solo = reconcile(&[view("a", snaps.clone(), 3)]).expect("reconciles");
    let twin =
        reconcile(&[view("a", snaps.clone(), 3), view("b", snaps, 3)]).expect("reconciles");
    assert_eq!(solo.fused, twin.fused);
    assert_eq!(solo.coverage, twin.coverage);
    assert_eq!(solo.first_seen.txs_union, twin.first_seen.txs_union);
    assert_eq!(twin.first_seen.disagreements, 0, "identical eyes never disagree");
}

#[test]
fn n1_fleet_audit_equals_single_stream_audit() {
    let (chain, snapshots) = sample_world();
    let index = ChainIndex::build(&chain);
    let expectation = StreamExpectation { windows: 6, detailed: 6, min_coverage: 0.0 };
    let solo = ObserverView {
        label: "solo".into(),
        snapshots: snapshots.clone(),
        expectation,
    };
    let (fleet_report, fleet) =
        audit_with_fleet(&chain, &index, &[solo], AuditConfig::default()).expect("audits");
    let single =
        audit_with_snapshots(&chain, &index, &snapshots, expectation, AuditConfig::default())
            .expect("audits");
    assert_eq!(fleet_report, single, "one-eyed fleet audit is the single-observer audit");
    assert_eq!(fleet_report.render(), single.render());
    assert_eq!(fleet.expectation, expectation);
}

// ---- empty-window fusion ----

#[test]
fn empty_detailed_windows_fuse_to_an_empty_detailed_window() {
    // Both observers took a detailed snapshot of an empty backlog.
    let a = vec![MempoolSnapshot::from_entries(15, Vec::new())];
    let b = vec![MempoolSnapshot::from_entries(15, Vec::new())];
    let fleet = reconcile(&[view("a", a, 1), view("b", b, 1)]).expect("reconciles");
    let fused = &fleet.fused[0];
    assert!(fused.is_detailed());
    assert!(fused.is_empty());
    assert_eq!(fused.total_vsize(), 0);
    assert_eq!(fleet.first_seen.txs_union, 0);
    assert_eq!(fleet.coverage.txs_observed, 0);
    assert_eq!(fleet.coverage.window_fraction(), 1.0, "an empty window is still a window");
}

#[test]
fn zero_count_light_windows_fuse_to_zero() {
    let a = vec![MempoolSnapshot::light(30, 0, 0)];
    let b = vec![MempoolSnapshot::light(30, 0, 0)];
    let fleet = reconcile(&[view("a", a, 1), view("b", b, 1)]).expect("reconciles");
    let fused = &fleet.fused[0];
    assert!(!fused.is_detailed());
    assert!(fused.is_empty());
    assert_eq!(fused.total_vsize(), 0);
    assert_eq!(fused.congestion_bin(1_000_000), 0);
}

#[test]
fn empty_detailed_beats_light_in_the_same_window() {
    // One observer dumped an (empty) detail view, the other only counted.
    // Fusion prefers detail: the fused window is detailed and empty — the
    // detail dump is positive evidence the backlog was empty, while the
    // light count alone cannot say what was in it.
    let detailed = vec![MempoolSnapshot::from_entries(15, Vec::new())];
    let light = vec![MempoolSnapshot::light(15, 3, 300)];
    let fleet =
        reconcile(&[view("d", detailed, 1), view("l", light, 1)]).expect("reconciles");
    let fused = &fleet.fused[0];
    assert!(fused.is_detailed());
    assert!(fused.is_empty());
    assert_eq!(fleet.coverage.present_detailed, 1);
}

#[test]
fn empty_window_stream_still_audits_the_chain() {
    // A fleet that only ever saw empty backlogs still audits: the
    // chain-side tests need no snapshot rows, and coverage reports how
    // blind the observation layer was.
    let (chain, _) = sample_world();
    let index = ChainIndex::build(&chain);
    let views = vec![
        view("a", vec![MempoolSnapshot::from_entries(15, Vec::new())], 1),
        view("b", vec![MempoolSnapshot::light(15, 0, 0)], 1),
    ];
    let (report, fleet) =
        audit_with_fleet(&chain, &index, &views, AuditConfig::default()).expect("audits");
    let cov = report.coverage.expect("coverage present");
    assert_eq!(cov.txs_observed, 0);
    assert_eq!(cov.confirmed_observed, 0);
    assert!(cov.confidence() < 1.0, "saw none of the confirmed txs");
    assert_eq!(fleet.first_seen.txs_union, 0);
}
