//! Byte-identity of parallel observer folding: `reconcile_with_pool`
//! must produce the same fleet view at any worker count. Per-observer
//! coverage assessment and per-window fusion run on the fork-join pool;
//! the deterministic join keeps every field identical to the serial
//! fold (DESIGN.md §8).

use cn_chain::{Amount, Txid};
use cn_core::reconcile::{reconcile_with_pool, FleetView, ObserverView};
use cn_core::StreamExpectation;
use cn_mempool::{MempoolSnapshot, SnapshotEntry};
use cn_stats::Pool;
use proptest::prelude::*;

fn entry(seed: u8, received: u64, fee: u64) -> SnapshotEntry {
    SnapshotEntry {
        txid: Txid::from([seed; 32]),
        received,
        fee: Amount::from_sat(fee),
        vsize: 100 + (seed as u64 % 7) * 30,
        has_unconfirmed_parent: seed.is_multiple_of(5),
    }
}

fn assert_views_identical(a: &FleetView, b: &FleetView, workers: usize) {
    assert_eq!(a.labels, b.labels, "workers={workers}");
    assert_eq!(a.dropped, b.dropped, "workers={workers}");
    assert_eq!(a.fused, b.fused, "workers={workers}");
    assert_eq!(a.first_seen, b.first_seen, "workers={workers}");
    assert_eq!(a.expectation, b.expectation, "workers={workers}");
    assert_eq!(a.per_observer.len(), b.per_observer.len(), "workers={workers}");
    for (ca, cb) in a.per_observer.iter().zip(&b.per_observer) {
        assert_eq!(ca.confidence(), cb.confidence(), "workers={workers}");
        assert_eq!(ca.degraded_windows, cb.degraded_windows, "workers={workers}");
    }
    assert_eq!(a.coverage.confidence(), b.coverage.confidence(), "workers={workers}");
    assert_eq!(a.render(), b.render(), "workers={workers}");
}

/// Strategy: a fleet of 1–4 observers, each with 0–8 snapshot windows of
/// 0–5 rows; some rows shared across observers (same seed byte) with
/// differing first-seen stamps, some windows degraded.
fn fleet_strategy() -> impl Strategy<Value = Vec<ObserverView>> {
    let entry_s = (0u8..40, 0u64..5_000, 1_000u64..300_000)
        .prop_map(|(seed, received, fee)| entry(seed, received, fee));
    let window_s = (0u64..8, proptest::collection::vec(entry_s, 0..5), any::<bool>()).prop_map(
        |(w, entries, degraded)| {
            let snap = MempoolSnapshot::from_entries(w * 600 + 300, entries);
            if degraded {
                snap.mark_degraded()
            } else {
                snap
            }
        },
    );
    let view_s = proptest::collection::vec(window_s, 0..8);
    proptest::collection::vec(view_s, 1..4).prop_map(|fleets| {
        fleets
            .into_iter()
            .enumerate()
            .map(|(i, snapshots)| ObserverView {
                label: format!("obs-{i}"),
                snapshots,
                expectation: StreamExpectation { windows: 8, detailed: 8, min_coverage: 0.0 },
            })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn folding_is_worker_invariant(views in fleet_strategy(), workers in 2usize..=8) {
        let serial = reconcile_with_pool(&views, Pool::with_workers(1));
        let parallel = reconcile_with_pool(&views, Pool::with_workers(workers));
        match (serial, parallel) {
            (Ok(a), Ok(b)) => assert_views_identical(&a, &b, workers),
            (Err(a), Err(b)) => prop_assert_eq!(format!("{a}"), format!("{b}")),
            (a, b) => panic!(
                "worker count changed the outcome: serial ok={}, parallel ok={}",
                a.is_ok(),
                b.is_ok()
            ),
        }
    }
}
