//! The paper's published numbers, kept in one place so reports can print
//! paper-vs-measured side by side (and EXPERIMENTS.md can cite them).

/// Table 1 and §4 headline statistics for one dataset.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DatasetCalibration {
    /// Dataset label.
    pub label: &'static str,
    /// Blocks in the paper's dataset.
    pub blocks: u64,
    /// Issued transactions in the paper's dataset.
    pub transactions: u64,
    /// CPFP share of transactions.
    pub cpfp_fraction: f64,
    /// Empty blocks.
    pub empty_blocks: u64,
    /// Fraction of time the Mempool exceeded one block capacity.
    pub congested_fraction: Option<f64>,
    /// Fraction of transactions committed in the next block.
    pub next_block_fraction: Option<f64>,
    /// Fraction waiting at least 3 blocks.
    pub three_plus_blocks_fraction: Option<f64>,
}

/// Dataset 𝒜 (Feb 20 – Mar 13, 2019).
pub const DATASET_A: DatasetCalibration = DatasetCalibration {
    label: "A",
    blocks: 3_119,
    transactions: 6_816_375,
    cpfp_fraction: 0.2645,
    empty_blocks: 38,
    congested_fraction: Some(0.75),
    next_block_fraction: Some(0.65),
    three_plus_blocks_fraction: Some(0.15),
};

/// Dataset ℬ (Jun 1 – 30, 2019).
pub const DATASET_B: DatasetCalibration = DatasetCalibration {
    label: "B",
    blocks: 4_520,
    transactions: 10_484_201,
    cpfp_fraction: 0.2317,
    empty_blocks: 18,
    congested_fraction: Some(0.92),
    next_block_fraction: Some(0.60),
    three_plus_blocks_fraction: Some(0.20),
};

/// Dataset 𝒞 (Jan 1 – Dec 31, 2020).
pub const DATASET_C: DatasetCalibration = DatasetCalibration {
    label: "C",
    blocks: 53_214,
    transactions: 112_489_054,
    cpfp_fraction: 0.1911,
    empty_blocks: 240,
    congested_fraction: None,
    next_block_fraction: None,
    three_plus_blocks_fraction: None,
};

/// §4.2.2: mean PPE over dataset 𝒞 and the 80th-percentile bound.
pub const PAPER_MEAN_PPE: f64 = 2.65;
/// §4.2.2: 80 % of blocks have PPE below this.
pub const PAPER_P80_PPE: f64 = 4.03;

/// Table 4 (BTC.com, dataset 𝒞): `(SPPE threshold, total, accelerated)`.
pub const PAPER_TABLE_4: [(f64, u64, u64); 5] = [
    (100.0, 628, 464),
    (99.0, 1_108, 720),
    (90.0, 5_365, 972),
    (50.0, 95_282, 1_007),
    (1.0, 657_423, 1_029),
];

/// Figure 14: acceleration-fee multiples over public fees.
pub const PAPER_ACCEL_FEE_MEAN_MULTIPLE: f64 = 566.3;
/// Figure 14 median multiple.
pub const PAPER_ACCEL_FEE_MEDIAN_MULTIPLE: f64 = 116.64;

/// Table 5: per-year fee share of miner revenue (mean %, 2016–2020).
pub const PAPER_FEE_SHARE_BY_YEAR: [(u32, f64); 5] = [
    (2016, 2.48),
    (2017, 11.77),
    (2018, 3.19),
    (2019, 2.75),
    (2020, 6.29),
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn calibration_internally_consistent() {
        for d in [DATASET_A, DATASET_B, DATASET_C] {
            assert!(d.blocks > 0);
            assert!(d.transactions > d.blocks);
            assert!((0.0..1.0).contains(&d.cpfp_fraction));
            assert!(d.empty_blocks < d.blocks);
        }
        assert!(DATASET_B.congested_fraction > DATASET_A.congested_fraction);
    }

    #[test]
    fn table4_monotone() {
        for w in PAPER_TABLE_4.windows(2) {
            assert!(w[0].0 > w[1].0, "thresholds descending");
            assert!(w[0].1 <= w[1].1, "totals grow as threshold drops");
        }
    }
}
