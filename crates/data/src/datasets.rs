//! Scenario constructors for the paper's three datasets.
//!
//! **Scaling.** The real datasets span weeks to a year of mainnet at
//! 1 MvB blocks and millions of transactions; a library test suite cannot
//! replay that. Every constructor therefore scales two knobs *together*,
//! preserving the ratios the findings depend on:
//!
//! * block capacity: 100 kvB (a tenth of mainnet) — so blocks still hold
//!   hundreds of transactions and position statistics are meaningful;
//! * arrival rate: calibrated against that capacity to reproduce each
//!   dataset's congestion profile (𝒜 ~75 % congested, ℬ ~92 % with price
//!   surge bursts, 𝒞 mixed).
//!
//! Wall-clock spans shrink from weeks to days ([`Scale::Full`]) or hours
//! ([`Scale::Quick`]); EXPERIMENTS.md records the resulting counts next
//! to the paper's.

use crate::pools::{roster_2019_a, roster_2019_b, roster_2020};
use cn_chain::{Params, Timestamp};
use cn_mempool::MempoolPolicy;
use cn_net::FaultPlan;
use cn_sim::congestion::CongestionProfile;
use cn_sim::scenario::{ObserverConfig, PoolBehavior, ScamConfig, Scenario};

/// How much simulated time to spend.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scale {
    /// Hours — for unit/integration tests.
    Quick,
    /// Days — for the experiment harness and benches.
    Full,
    /// Weeks — the `megasim` scale tier (thousands of blocks through the
    /// event-log path). The standard datasets treat this like [`Full`];
    /// only [`dataset_mega`]'s block-count targets stretch with it.
    Large,
}

impl Scale {
    fn duration(self, quick: Timestamp, full: Timestamp) -> Timestamp {
        match self {
            Scale::Quick => quick,
            Scale::Full | Scale::Large => full,
        }
    }

    /// Detailed-snapshot stride: every snapshot at Quick scale, one per
    /// five minutes at Full scale (memory: a year of 15-second
    /// per-transaction rows does not fit an ordinary machine; the paper's
    /// own released dataset faced the same constraint).
    fn snapshot_detail_every(self) -> u64 {
        match self {
            Scale::Quick => 4,
            Scale::Full | Scale::Large => 20,
        }
    }
}

/// Scaled-down chain parameters shared by all datasets: 100 kvB blocks.
pub fn scaled_params() -> Params {
    Params { max_block_weight: 400_000, ..Params::mainnet() }
}

/// Dataset 𝒜: default observer node (8 peers, fee floor on), moderate
/// congestion with diurnal waves (paper: congested ~75 % of the time).
pub fn dataset_a(scale: Scale) -> Scenario {
    let mut s = Scenario::base("dataset-A", 0xA11CE);
    s.params = scaled_params();
    s.duration = scale.duration(6 * 3_600, 72 * 3_600);
    s.pools = roster_2019_a().iter().map(|p| p.honest()).collect();
    s.congestion = CongestionProfile::diurnal(0.56, 0.45)
        .with_burst(s.duration / 5, s.duration / 5 + s.duration / 18, 2.2)
        .with_burst(3 * s.duration / 5, 3 * s.duration / 5 + s.duration / 24, 2.0);
    s.observers = vec![ObserverConfig {
        label: "A-default".into(),
        peers: 8,
        policy: MempoolPolicy::default(),
        max_mempool_vsize: Some(25 * s.params.max_block_vsize()),
        latency_factor: 1.0,
    }];
    s.snapshot_detail_every = scale.snapshot_detail_every();
    s.relay_nodes = 16;
    s.miner_hubs = 3;
    s.users = 300;
    s.cpfp_prob = 0.47; // realizes as ~26% same-block CPFP (Table 1)
    s.empty_block_prob = 0.012; // Table 1: 38 empty of 3119
    s.zero_fee_prob = 0.0;
    s.self_interest_rate = 0.0;
    s.acceleration_demand = 0.0;
    s
}

/// Dataset ℬ: well-connected observer (125 peers), **no fee floor**
/// (zero-fee transactions visible), heavier congestion with price-surge
/// bursts (paper: congested ~92 % of the time, June 2019 Libra surge).
pub fn dataset_b(scale: Scale) -> Scenario {
    let mut s = Scenario::base("dataset-B", 0xB0B);
    s.params = scaled_params();
    s.duration = scale.duration(6 * 3_600, 72 * 3_600);
    s.pools = roster_2019_b()
        .iter()
        .map(|p| {
            // §4.2.3: F2Pool, ViaBTC and BTC.com confirmed below-floor
            // transactions.
            let low_fee = matches!(p.name, "F2Pool" | "ViaBTC" | "BTC.com");
            p.with(Vec::new(), low_fee)
        })
        .collect();
    s.congestion = CongestionProfile::diurnal(0.56, 0.40)
        .with_burst(s.duration / 4, s.duration / 4 + s.duration / 12, 2.8)
        .with_burst(2 * s.duration / 3, 2 * s.duration / 3 + s.duration / 14, 3.2);
    s.observers = vec![ObserverConfig {
        label: "B-wideopen".into(),
        peers: 125,
        policy: MempoolPolicy::accept_all(),
        max_mempool_vsize: Some(25 * s.params.max_block_vsize()),
        latency_factor: 1.0,
    }];
    s.snapshot_detail_every = scale.snapshot_detail_every();
    s.relay_nodes = 16;
    s.miner_hubs = 3;
    s.users = 300;
    s.cpfp_prob = 0.40; // realizes as ~23% same-block CPFP
    s.empty_block_prob = 0.004; // Table 1: 18 of 4520
    s.zero_fee_prob = 0.0006; // the paper saw 1084 below-floor txs in a month
    s.self_interest_rate = 0.0;
    s.acceleration_demand = 0.0;
    s
}

/// Dataset 𝒞: the 2020 audit target, with every misbehaviour the paper
/// detected injected as ground truth:
///
/// * **Self-interest acceleration** by F2Pool, ViaBTC, 1THash & 58Coin,
///   and SlushPool (Table 2);
/// * **Collusion**: ViaBTC also accelerates 1THash & 58Coin's and
///   SlushPool's transactions (Table 2);
/// * **Dark-fee services** operated by BTC.com, AntPool, ViaBTC, F2Pool
///   and Poolin (§5.4.1), with public under-bidding demand;
/// * **Below-floor acceptance** by F2Pool, ViaBTC and BTC.com (§4.2.3);
/// * the **Twitter-scam window** with no pool treating scam payments
///   differently (Table 3's null result).
pub fn dataset_c(scale: Scale) -> Scenario {
    let mut s = Scenario::base("dataset-C", 0xC0DE);
    s.params = scaled_params();
    s.duration = scale.duration(12 * 3_600, 7 * 24 * 3_600);
    let premium = 1.5;
    s.pools = roster_2020()
        .iter()
        .map(|p| {
            let mut behaviors = Vec::new();
            match p.name {
                "F2Pool" => {
                    behaviors.push(PoolBehavior::SelfInterest);
                    behaviors.push(PoolBehavior::DarkFee { premium });
                }
                "ViaBTC" => {
                    behaviors.push(PoolBehavior::SelfInterest);
                    behaviors.push(PoolBehavior::Collude {
                        partners: vec!["1THash & 58Coin".into(), "SlushPool".into()],
                    });
                    behaviors.push(PoolBehavior::DarkFee { premium });
                }
                "1THash & 58Coin" => behaviors.push(PoolBehavior::SelfInterest),
                "SlushPool" => behaviors.push(PoolBehavior::SelfInterest),
                "BTC.com" | "AntPool" | "Poolin" => {
                    behaviors.push(PoolBehavior::DarkFee { premium });
                }
                _ => {}
            }
            let low_fee = matches!(p.name, "F2Pool" | "ViaBTC" | "BTC.com");
            p.with(behaviors, low_fee)
        })
        .collect();
    s.congestion = CongestionProfile::diurnal(0.48, 0.45)
        .with_burst(s.duration / 6, s.duration / 6 + s.duration / 20, 2.4)
        .with_burst(s.duration / 2, s.duration / 2 + s.duration / 26, 2.0)
        .with_burst(4 * s.duration / 5, 4 * s.duration / 5 + s.duration / 20, 2.6);
    s.observers = vec![ObserverConfig {
        label: "C-default".into(),
        peers: 8,
        policy: MempoolPolicy::default(),
        max_mempool_vsize: Some(25 * s.params.max_block_vsize()),
        latency_factor: 1.0,
    }];
    s.snapshot_detail_every = scale.snapshot_detail_every();
    s.relay_nodes = 16;
    s.miner_hubs = 4;
    s.users = 400;
    s.cpfp_prob = 0.36; // realizes as ~19% same-block CPFP (Table 1)
    s.empty_block_prob = 0.0045; // Table 1: 240 of 53214
    s.zero_fee_prob = 0.0003;
    // Every pool routinely moves its own funds (Figure 8b).
    s.self_interest_rate = 1.0 / 500.0;
    s.acceleration_demand = 0.012;
    // Twitter-scam window (July 15, 2020 analog): a day in the middle.
    let window_start = s.duration * 2 / 5;
    s.scam = Some(ScamConfig {
        window_start,
        window_end: window_start + s.duration / 7,
        donation_prob: 0.004,
    });
    s
}

/// Dataset ℳ ("mega"): the scale-tier scenario behind the `megasim`
/// experiment. Unlike 𝒜/ℬ/𝒞 it is not calibrated against a paper table;
/// it exists to make chain *length* the only variable under test, so the
/// per-block knobs are deliberately lean — quarter-size blocks, a small
/// cast, sparse snapshots — and the span is set by a block-count target
/// (`target_blocks × target_spacing`). The simulate-and-audit pipeline
/// runs it through the event-log path ([`crate::log`]) at two tiers and
/// asserts peak RSS stays flat in the target.
pub fn dataset_mega(target_blocks: u64) -> Scenario {
    let mut s = Scenario::base("dataset-M", 0x3E6A);
    // 25 kvB blocks: positions still span dozens of slots, but per-block
    // simulation cost is a quarter of the calibrated datasets'.
    s.params = Params { max_block_weight: 100_000, ..Params::mainnet() };
    s.duration = target_blocks * s.params.target_spacing_secs;
    s.pools = roster_2019_a().iter().map(|p| p.honest()).collect();
    // Arrival rate matched to the quarter-size blocks: ~0.10 tx/s against
    // ~41.7 vB/s of capacity keeps mean utilization near two thirds, so
    // diurnal peaks oversubscribe briefly but troughs always drain the
    // backlog. (0.52 — dataset-𝒜's rate against full-size blocks — would
    // oversubscribe 4× here and grow the mempool without bound.)
    s.congestion = CongestionProfile::diurnal(0.10, 0.35);
    s.observers = vec![ObserverConfig {
        label: "M-default".into(),
        peers: 8,
        policy: MempoolPolicy::default(),
        max_mempool_vsize: Some(25 * s.params.max_block_vsize()),
        latency_factor: 1.0,
    }];
    // Sparse sampling: one snapshot a minute, one detailed per ten — the
    // log path's row volume grows with the run regardless, which is the
    // point.
    s.snapshot_interval = 60;
    s.snapshot_detail_every = 10;
    s.relay_nodes = 8;
    s.miner_hubs = 2;
    s.users = 120;
    s.cpfp_prob = 0.3;
    s.empty_block_prob = 0.01;
    s.zero_fee_prob = 0.0;
    // A trickle of pool-wallet self-spends, so coinbase rewards re-enter
    // circulation instead of accruing one unspent output per block for
    // the whole run (pool wallets consolidate like user wallets do).
    s.self_interest_rate = 0.002;
    s.acceleration_demand = 0.0;
    // The load-bearing knob: without consolidation every payment nets one
    // new live output, so the UTXO set — and sim RSS with it — grows
    // linearly in the block target. Sweeping wallets back down to a dozen
    // outputs caps the live population at ~users × threshold.
    s.wallet_consolidation = Some(12);
    s
}

/// Dataset 𝒞 observed through a *realistically broken* measurement
/// pipeline: the same chain-side misbehaviours as [`dataset_c`], but the
/// observation layer degrades at a calibrated moderate fault intensity —
/// lossy and spiky relay links, duplicated/reordered deliveries, three
/// observer outages, truncated detail dumps, and stale-tip orphans. The
/// robustness experiment sweeps the intensity knob; this constructor
/// pins the single reference point used by tests and docs.
pub fn dataset_faulty(scale: Scale) -> Scenario {
    let mut s = dataset_c(scale);
    s.name = "dataset-faulty".into();
    s.seed = 0xFA017;
    s.faults = FaultPlan::scaled(0.35);
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_datasets_validate() {
        for scale in [Scale::Quick, Scale::Full, Scale::Large] {
            assert_eq!(dataset_a(scale).validate(), Ok(()));
            assert_eq!(dataset_b(scale).validate(), Ok(()));
            assert_eq!(dataset_c(scale).validate(), Ok(()));
            assert_eq!(dataset_faulty(scale).validate(), Ok(()));
        }
        assert_eq!(dataset_mega(52).validate(), Ok(()));
    }

    #[test]
    fn mega_duration_tracks_the_block_target() {
        let small = dataset_mega(52);
        let large = dataset_mega(5_200);
        assert_eq!(small.duration, 52 * small.params.target_spacing_secs);
        assert_eq!(large.duration, 100 * small.duration);
        // Everything but the span is tier-invariant: the two tiers must
        // differ only in chain length for the flat-RSS comparison to mean
        // anything.
        assert_eq!(small.pools, large.pools);
        assert_eq!(small.seed, large.seed);
        assert_eq!(small.users, large.users);
        assert_eq!(small.snapshot_interval, large.snapshot_interval);
    }

    #[test]
    fn faulty_dataset_is_dataset_c_plus_faults() {
        let c = dataset_c(Scale::Quick);
        let f = dataset_faulty(Scale::Quick);
        assert!(!c.faults.enabled());
        assert!(f.faults.enabled());
        assert_eq!(f.pools, c.pools, "same misbehaviour ground truth");
        assert_eq!(f.duration, c.duration);
        assert!(f.faults.observer.downtime_frac > 0.0);
        assert!(f.faults.stale_tip_prob > 0.0);
    }

    #[test]
    fn dataset_b_is_laxer_and_better_connected() {
        let a = dataset_a(Scale::Quick);
        let b = dataset_b(Scale::Quick);
        assert_eq!(a.observers[0].policy, MempoolPolicy::default());
        assert_eq!(b.observers[0].policy, MempoolPolicy::accept_all());
        assert!(b.observers[0].peers > a.observers[0].peers);
        assert!(b.congestion.max_rate() > a.congestion.max_rate());
        assert!(b.zero_fee_prob > 0.0);
    }

    #[test]
    fn dataset_c_wires_the_misbehaviours() {
        let c = dataset_c(Scale::Quick);
        let by_name = |n: &str| c.pools.iter().find(|p| p.name == n).expect("in roster");
        assert!(by_name("ViaBTC")
            .behaviors
            .iter()
            .any(|b| matches!(b, PoolBehavior::Collude { partners } if partners.len() == 2)));
        assert!(by_name("SlushPool")
            .behaviors
            .iter()
            .any(|b| matches!(b, PoolBehavior::SelfInterest)));
        assert!(by_name("BTC.com")
            .behaviors
            .iter()
            .any(|b| matches!(b, PoolBehavior::DarkFee { .. })));
        assert!(by_name("AntPool").behaviors.iter().all(|b| !matches!(b, PoolBehavior::SelfInterest)));
        assert!(by_name("F2Pool").accepts_low_fee);
        assert!(!by_name("Poolin").accepts_low_fee);
        assert!(c.scam.is_some());
        assert!(c.acceleration_demand > 0.0);
    }

    #[test]
    fn scale_changes_duration_only() {
        let quick = dataset_a(Scale::Quick);
        let full = dataset_a(Scale::Full);
        assert!(full.duration > quick.duration);
        assert_eq!(quick.pools, full.pools);
        assert_eq!(quick.seed, full.seed);
    }

    #[test]
    fn scaled_params_keep_ratios() {
        let p = scaled_params();
        assert_eq!(p.max_block_vsize(), 100_000);
        assert_eq!(p.target_spacing_secs, 600);
    }
}
