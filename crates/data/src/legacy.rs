//! The pre-April-2016 ordering era, for the Figure 1 reproduction.
//!
//! Until Bitcoin Core 0.12.1 (April 2016), block space was partly filled
//! by *coin-age priority* — `Σ(input_value × input_age) / size` — rather
//! than fee rate. Figure 1 shows that predicting positions with the
//! fee-rate norm works poorly on pre-2016 blocks and near-perfectly
//! afterwards. This module synthesizes blocks under both regimes so the
//! experiment harness can reproduce that contrast.

use cn_core::index::{BlockInfo, TxRecord};
use cn_chain::{Amount, BlockHash, Txid};
use cn_stats::{LogNormal, SimRng};

/// Which ordering rule a block's miner used.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EraOrdering {
    /// Pre-April-2016: descending coin-age priority.
    CoinAgePriority,
    /// Post-April-2016: descending fee rate (the GBT norm).
    FeeRate,
}

/// One synthetic candidate transaction.
#[derive(Clone, Copy, Debug)]
struct Candidate {
    fee: u64,
    vsize: u64,
    /// Coin-age priority score (value × age / size), arbitrary units.
    priority: f64,
}

/// Synthesizes `n_blocks` block digests of `txs_per_block` transactions
/// each, ordered per `era`. Fee rates and priorities are drawn
/// independently (empirically they correlate weakly), which is exactly
/// why the fee-rate predictor fails on priority-ordered blocks.
pub fn synthetic_blocks(
    era: EraOrdering,
    n_blocks: usize,
    txs_per_block: usize,
    rng: &mut SimRng,
) -> Vec<BlockInfo> {
    let rate_dist = LogNormal::with_median(20_000.0, 1.0); // sat/kvB
    let size_dist = LogNormal::with_median(250.0, 0.4);
    let prio_dist = LogNormal::with_median(1.0, 1.5);
    let mut blocks = Vec::with_capacity(n_blocks);
    for height in 0..n_blocks {
        let mut candidates: Vec<Candidate> = (0..txs_per_block)
            .map(|_| {
                let vsize = size_dist.sample(rng).clamp(120.0, 2_000.0) as u64;
                let rate = rate_dist.sample(rng).clamp(100.0, 10_000_000.0);
                Candidate {
                    fee: (rate * vsize as f64 / 1_000.0) as u64,
                    vsize,
                    priority: prio_dist.sample(rng),
                }
            })
            .collect();
        match era {
            EraOrdering::CoinAgePriority => candidates.sort_by(|a, b| {
                b.priority.partial_cmp(&a.priority).expect("finite priorities")
            }),
            EraOrdering::FeeRate => candidates.sort_by(|a, b| {
                let lhs = a.fee as u128 * b.vsize as u128;
                let rhs = b.fee as u128 * a.vsize as u128;
                rhs.cmp(&lhs)
            }),
        }
        let txs: Vec<TxRecord> = candidates
            .iter()
            .enumerate()
            .map(|(position, c)| TxRecord {
                txid: synthetic_txid(height, position),
                height: height as u64,
                position,
                fee: Amount::from_sat(c.fee),
                vsize: c.vsize,
                is_cpfp: false,
            })
            .collect();
        blocks.push(BlockInfo {
            height: height as u64,
            hash: BlockHash::ZERO,
            time: height as u64 * 600,
            miner: None,
            coinbase_wallets: Vec::new(),
            txs,
        });
    }
    blocks
}

fn synthetic_txid(height: usize, position: usize) -> Txid {
    let mut bytes = [0u8; 32];
    bytes[..8].copy_from_slice(&(height as u64).to_le_bytes());
    bytes[8..16].copy_from_slice(&(position as u64).to_le_bytes());
    Txid(cn_chain::Hash256(bytes))
}

#[cfg(test)]
mod tests {
    use super::*;
    use cn_core::ppe::block_ppe;

    #[test]
    fn fee_rate_era_has_zero_ppe() {
        let mut rng = SimRng::seed_from_u64(1);
        for b in synthetic_blocks(EraOrdering::FeeRate, 10, 80, &mut rng) {
            let ppe = block_ppe(&b).expect("non-empty");
            assert!(ppe < 1e-9, "fee-ordered block should predict exactly, got {ppe}");
        }
    }

    #[test]
    fn priority_era_has_large_ppe() {
        let mut rng = SimRng::seed_from_u64(2);
        let blocks = synthetic_blocks(EraOrdering::CoinAgePriority, 20, 80, &mut rng);
        let mean: f64 =
            blocks.iter().filter_map(block_ppe).sum::<f64>() / blocks.len() as f64;
        // Independent orderings put the expected displacement near 33%.
        assert!(mean > 20.0, "priority-era mean PPE {mean}");
    }

    #[test]
    fn deterministic_and_distinct_txids() {
        let mut rng1 = SimRng::seed_from_u64(3);
        let mut rng2 = SimRng::seed_from_u64(3);
        let a = synthetic_blocks(EraOrdering::FeeRate, 3, 10, &mut rng1);
        let b = synthetic_blocks(EraOrdering::FeeRate, 3, 10, &mut rng2);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.txs.len(), y.txs.len());
            for (tx, ty) in x.txs.iter().zip(&y.txs) {
                assert_eq!(tx.txid, ty.txid);
            }
        }
        // Distinct txids across the set.
        let mut all: Vec<Txid> = a.iter().flat_map(|b| b.txs.iter().map(|t| t.txid)).collect();
        all.sort();
        all.dedup();
        assert_eq!(all.len(), 30);
    }
}
