//! # cn-data — calibrated scenarios reproducing the paper's datasets
//!
//! The paper measures three datasets — 𝒜 (three weeks of Mempool
//! snapshots from a default node, Feb–Mar 2019), ℬ (one month from a
//! 125-peer no-fee-floor node, Jun 2019), and 𝒞 (every 2020 block) — plus
//! the Twitter-scam window inside 𝒞. None of those raw inputs exist
//! offline, so this crate synthesizes *calibrated equivalents*: scenarios
//! whose pool rosters, hash-rate shares, congestion profiles, CPFP
//! fractions, and injected misbehaviours match the paper's published
//! summary statistics, scaled down in wall-clock span (documented per
//! constructor and recorded in `EXPERIMENTS.md`).
//!
//! * [`pools`] — the top-20 mining-pool rosters with the paper's hash-rate
//!   shares and wallet counts.
//! * [`datasets`] — `dataset_a` / `dataset_b` / `dataset_c` scenario
//!   constructors, each with a [`Scale`] knob (`Quick` for tests, `Full`
//!   for the experiment harness).
//! * [`calibration`] — the paper's published numbers, for side-by-side
//!   comparison in reports.
//! * [`legacy`] — the pre-April-2016 coin-age-priority ordering era used
//!   by the Figure 1 reproduction.
//! * [`log`] — the compact binary event-log codec: a run's canonical
//!   block/snapshot stream serialized to disk and replayed, so run length
//!   is a disk-shaped cost instead of a RAM-shaped one.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod calibration;
pub mod datasets;
pub mod legacy;
pub mod log;
pub mod pools;

pub use datasets::{dataset_a, dataset_b, dataset_c, dataset_faulty, dataset_mega, Scale};
pub use log::{write_run, LogError, LogEvent, LogReader, LogStats, LogWriter};
pub use pools::{roster_2019_a, roster_2019_b, roster_2020, PoolSpec};
