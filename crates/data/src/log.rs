//! Compact append-only binary event logs — the disk-shaped form of a run.
//!
//! A simulation's observable output is one canonical event stream: blocks
//! and primary-observer mempool snapshots, time-sorted with blocks first on
//! same-second ties (exactly what `cn_core::streaming::interleave` produces
//! from a finished run, and what [`StreamingAuditor`] consumes). This
//! module serializes that stream into a segmented binary log and replays
//! it, so run length becomes a disk cost instead of a RAM cost:
//!
//! * [`LogWriter`] implements [`cn_sim::EventSink`], so a chunked
//!   `World::run_streamed` writes the log directly while dropping records
//!   from memory; [`write_run`] feeds a finished monolithic run through
//!   the identical encoder (the byte-identity oracle for the chunked path).
//! * [`LogReader`] replays the stream sequentially with O(segment) state.
//!
//! ## Format
//!
//! ```text
//! magic "CNEVLOG1"
//! prologue: compact_size seed_count, then each seed funding transaction
//!           as a length-prefixed canonical tx encoding — what a replay
//!           needs for the initial UTXO set
//! records:  tag u8 · compact_size payload_len · payload
//!   0x01 segment start: compact_size segment_index. Resets the txid
//!        intern table and the timestamp delta base; the writer opens a
//!        new segment after every `epoch_blocks`-th block record, making
//!        segmentation a pure function of (event sequence, epoch length)
//!        and per-segment decoder state O(epoch).
//!   0x02 block: the canonical block encoding.
//!   0x03 snapshot: flags u8 (bit0 detailed, bit1 truncated,
//!        bit2 degraded) · compact_size time-delta vs the previous
//!        record in this segment (absolute for the first) · then either
//!        aggregates (light: count, vsize) or struct-of-arrays row
//!        columns (detailed): txid handles (interned u32-sized compact
//!        sizes; a first appearance writes the next free handle followed
//!        by the raw 32 bytes), zigzag received-vs-snapshot-time deltas,
//!        fees, vsizes, and a packed unconfirmed-parent bitset.
//! ```
//!
//! Snapshot rows dominate log volume: the backlog is re-listed every
//! detailed snapshot, so interned txid handles (3 bytes amortized instead
//! of 32) and delta timestamps do most of the compression work.
//!
//! Corruption surfaces as a typed [`LogError`], never a panic.

use cn_chain::encode::{
    ensure_remaining, read_compact_size, write_compact_size, DecodeError, MAX_DECODE_LEN,
};
use cn_chain::{Amount, Block, Decodable, Encodable, FastMap, Timestamp, Transaction, Txid, UtxoSet};
use cn_mempool::{MempoolSnapshot, SnapshotEntry};
use cn_sim::sink::EventSink;
use cn_sim::SimOutput;
use bytes::{Buf, BufMut, Bytes, BytesMut};
use std::fmt;
use std::io::{self, Read, Write};

/// File magic: identifies the format and pins its revision.
pub const LOG_MAGIC: &[u8; 8] = b"CNEVLOG1";

const TAG_SEGMENT: u8 = 0x01;
const TAG_BLOCK: u8 = 0x02;
const TAG_SNAPSHOT: u8 = 0x03;

const FLAG_DETAILED: u8 = 0b001;
const FLAG_TRUNCATED: u8 = 0b010;
const FLAG_DEGRADED: u8 = 0b100;

/// Error from writing or replaying an event log.
#[derive(Debug)]
pub enum LogError {
    /// An underlying I/O operation failed.
    Io(io::Error),
    /// The input does not start with [`LOG_MAGIC`].
    BadMagic,
    /// A record tag byte is not one of the known tags.
    UnknownTag(u8),
    /// The input ended in the middle of a record (a torn tail).
    TruncatedRecord,
    /// A record payload failed structural decoding.
    Decode(DecodeError),
    /// A snapshot row referenced a txid handle beyond the intern table.
    BadHandle {
        /// The handle the row carried.
        handle: u64,
        /// Intern-table size at that point.
        table: usize,
    },
    /// A record payload had bytes left over after decoding.
    TrailingBytes,
}

impl fmt::Display for LogError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LogError::Io(e) => write!(f, "event log i/o: {e}"),
            LogError::BadMagic => write!(f, "not an event log (bad magic)"),
            LogError::UnknownTag(t) => write!(f, "unknown event-log record tag {t:#04x}"),
            LogError::TruncatedRecord => write!(f, "event log ends mid-record"),
            LogError::Decode(e) => write!(f, "malformed event-log record: {e}"),
            LogError::BadHandle { handle, table } => {
                write!(f, "snapshot row references txid handle {handle} of {table}")
            }
            LogError::TrailingBytes => write!(f, "event-log record has trailing bytes"),
        }
    }
}

impl std::error::Error for LogError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            LogError::Io(e) => Some(e),
            LogError::Decode(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for LogError {
    fn from(e: io::Error) -> Self {
        LogError::Io(e)
    }
}

impl From<DecodeError> for LogError {
    fn from(e: DecodeError) -> Self {
        LogError::Decode(e)
    }
}

/// Aggregate counters a finished [`LogWriter`] reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LogStats {
    /// Total bytes written, magic and prologue included.
    pub bytes: u64,
    /// Block records written.
    pub blocks: u64,
    /// Snapshot records written.
    pub snapshots: u64,
    /// Segments opened.
    pub segments: u64,
}

fn zigzag(n: i64) -> u64 {
    ((n << 1) ^ (n >> 63)) as u64
}

fn unzigzag(n: u64) -> i64 {
    ((n >> 1) as i64) ^ -((n & 1) as i64)
}

/// Segmented binary encoder for the canonical event stream.
///
/// Implements [`EventSink`], so `World::run_streamed` can write the log
/// directly. I/O errors are sticky: the first failure is remembered,
/// subsequent events are ignored, and [`LogWriter::finish`] reports it —
/// keeping the sink trait infallible for the simulation loop.
pub struct LogWriter<W: Write> {
    out: W,
    epoch_blocks: u64,
    header_written: bool,
    segment_open: bool,
    blocks_in_segment: u64,
    last_time: Option<Timestamp>,
    intern: FastMap<Txid, u32>,
    stats: LogStats,
    error: Option<io::Error>,
    buf: BytesMut,
}

impl<W: Write> LogWriter<W> {
    /// Creates a writer that opens a new segment after every
    /// `epoch_blocks`-th block record (0 means one unbounded segment).
    pub fn new(out: W, epoch_blocks: u64) -> LogWriter<W> {
        LogWriter {
            out,
            epoch_blocks,
            header_written: false,
            segment_open: false,
            blocks_in_segment: 0,
            last_time: None,
            intern: FastMap::default(),
            stats: LogStats { bytes: 0, blocks: 0, snapshots: 0, segments: 0 },
            error: None,
            buf: BytesMut::new(),
        }
    }

    /// Flushes the underlying writer and returns the aggregate counters,
    /// or the first I/O error encountered.
    pub fn finish(mut self) -> Result<LogStats, LogError> {
        if let Some(e) = self.error.take() {
            return Err(LogError::Io(e));
        }
        self.out.flush()?;
        Ok(self.stats)
    }

    fn write_all(&mut self, bytes: &[u8]) {
        if self.error.is_some() {
            return;
        }
        if let Err(e) = self.out.write_all(bytes) {
            self.error = Some(e);
            return;
        }
        self.stats.bytes += bytes.len() as u64;
    }

    fn write_record(&mut self, tag: u8) {
        let payload = std::mem::take(&mut self.buf);
        let mut head = BytesMut::with_capacity(10);
        head.put_u8(tag);
        write_compact_size(&mut head, payload.len() as u64);
        self.write_all(&head);
        self.write_all(&payload);
    }

    fn ensure_segment(&mut self) {
        if self.segment_open {
            return;
        }
        let index = self.stats.segments;
        self.stats.segments += 1;
        self.segment_open = true;
        self.blocks_in_segment = 0;
        self.last_time = None;
        self.intern.clear();
        write_compact_size(&mut self.buf, index);
        self.write_record(TAG_SEGMENT);
    }

    fn encode_snapshot(&mut self, snap: &MempoolSnapshot) {
        let mut flags = 0u8;
        if snap.is_detailed() {
            flags |= FLAG_DETAILED;
        }
        if snap.is_truncated() {
            flags |= FLAG_TRUNCATED;
        }
        if snap.is_degraded() {
            flags |= FLAG_DEGRADED;
        }
        self.buf.put_u8(flags);
        let delta = snap.time - self.last_time.unwrap_or(0);
        write_compact_size(&mut self.buf, delta);
        if !snap.is_detailed() {
            write_compact_size(&mut self.buf, snap.len() as u64);
            write_compact_size(&mut self.buf, snap.total_vsize());
            return;
        }
        let rows = &snap.entries;
        write_compact_size(&mut self.buf, rows.len() as u64);
        // Struct-of-arrays columns: like-typed values stream together, so
        // the varints of a mostly-unchanged backlog compress into long
        // runs of small handles and small deltas.
        for row in rows.iter() {
            match self.intern.get(&row.txid) {
                Some(&handle) => write_compact_size(&mut self.buf, handle as u64),
                None => {
                    let handle = self.intern.len() as u32;
                    self.intern.insert(row.txid, handle);
                    write_compact_size(&mut self.buf, handle as u64);
                    self.buf.put_slice(row.txid.0.as_bytes());
                }
            }
        }
        for row in rows.iter() {
            let delta = snap.time as i64 - row.received as i64;
            write_compact_size(&mut self.buf, zigzag(delta));
        }
        for row in rows.iter() {
            write_compact_size(&mut self.buf, row.fee.to_sat());
        }
        for row in rows.iter() {
            write_compact_size(&mut self.buf, row.vsize);
        }
        let mut bits = vec![0u8; rows.len().div_ceil(8)];
        for (i, row) in rows.iter().enumerate() {
            if row.has_unconfirmed_parent {
                bits[i / 8] |= 1 << (i % 8);
            }
        }
        self.buf.put_slice(&bits);
    }
}

impl<W: Write> EventSink for LogWriter<W> {
    fn on_start(&mut self, seeds: &[Transaction]) {
        if self.header_written {
            return;
        }
        self.header_written = true;
        self.write_all(&LOG_MAGIC[..]);
        write_compact_size(&mut self.buf, seeds.len() as u64);
        for tx in seeds {
            let mut tx_buf = BytesMut::new();
            tx.encode(&mut tx_buf);
            write_compact_size(&mut self.buf, tx_buf.len() as u64);
            self.buf.put_slice(&tx_buf);
        }
        let prologue = std::mem::take(&mut self.buf);
        self.write_all(&prologue);
    }

    fn on_block(&mut self, block: &Block) {
        debug_assert!(self.header_written, "on_start must precede events");
        self.ensure_segment();
        block.encode(&mut self.buf);
        self.write_record(TAG_BLOCK);
        self.last_time = Some(block.header.time);
        self.stats.blocks += 1;
        self.blocks_in_segment += 1;
        if self.epoch_blocks > 0 && self.blocks_in_segment >= self.epoch_blocks {
            self.segment_open = false;
        }
    }

    fn on_snapshot(&mut self, snapshot: &MempoolSnapshot) {
        debug_assert!(self.header_written, "on_start must precede events");
        self.ensure_segment();
        self.encode_snapshot(snapshot);
        self.write_record(TAG_SNAPSHOT);
        self.last_time = Some(snapshot.time);
        self.stats.snapshots += 1;
    }
}

/// One replayed event.
#[derive(Debug, Clone)]
pub enum LogEvent {
    /// A block record.
    Block(Block),
    /// A snapshot record.
    Snapshot(MempoolSnapshot),
}

/// Sequential event-log replayer with O(segment) state: the only
/// accumulation across records is the current segment's txid intern table,
/// which resets at every segment boundary.
pub struct LogReader<R: Read> {
    input: R,
    seeds: Vec<Transaction>,
    intern: Vec<Txid>,
    last_time: Option<Timestamp>,
    segments_seen: u64,
}

impl<R: Read> LogReader<R> {
    /// Opens a log: verifies the magic and reads the seed prologue.
    pub fn new(mut input: R) -> Result<LogReader<R>, LogError> {
        let mut magic = [0u8; 8];
        read_exact_or(&mut input, &mut magic, LogError::BadMagic)?;
        if &magic != LOG_MAGIC {
            return Err(LogError::BadMagic);
        }
        let count = read_compact_io(&mut input)?;
        if count > MAX_DECODE_LEN {
            return Err(LogError::Decode(DecodeError::OversizedLength(count)));
        }
        // The claimed count is untrusted until the txs actually decode.
        let mut seeds = Vec::with_capacity((count as usize).min(1_024));
        for _ in 0..count {
            let len = read_compact_io(&mut input)?;
            if len > MAX_DECODE_LEN {
                return Err(LogError::Decode(DecodeError::OversizedLength(len)));
            }
            let mut raw = vec![0u8; len as usize];
            read_exact_or(&mut input, &mut raw, LogError::TruncatedRecord)?;
            let mut bytes = Bytes::copy_from_slice(&raw);
            let tx = Transaction::decode(&mut bytes)?;
            if bytes.has_remaining() {
                return Err(LogError::TrailingBytes);
            }
            seeds.push(tx);
        }
        Ok(LogReader { input, seeds, intern: Vec::new(), last_time: None, segments_seen: 0 })
    }

    /// The seed funding transactions from the prologue.
    pub fn seeds(&self) -> &[Transaction] {
        &self.seeds
    }

    /// The UTXO set as it stood before the first block — what a streaming
    /// auditor must be constructed with.
    pub fn initial_utxos(&self) -> UtxoSet {
        let mut set = UtxoSet::new();
        for tx in &self.seeds {
            set.insert_outputs(tx);
        }
        set
    }

    /// Segments encountered so far.
    pub fn segments_seen(&self) -> u64 {
        self.segments_seen
    }

    /// Replays the next block or snapshot, `Ok(None)` at a clean end of
    /// log. Segment records are consumed internally.
    pub fn next_event(&mut self) -> Result<Option<LogEvent>, LogError> {
        loop {
            let tag = match read_u8_opt(&mut self.input)? {
                None => return Ok(None),
                Some(t) => t,
            };
            let len = read_compact_io(&mut self.input)?;
            if len > MAX_DECODE_LEN {
                return Err(LogError::Decode(DecodeError::OversizedLength(len)));
            }
            let mut payload = vec![0u8; len as usize];
            read_exact_or(&mut self.input, &mut payload, LogError::TruncatedRecord)?;
            let mut payload = Bytes::copy_from_slice(&payload);
            match tag {
                TAG_SEGMENT => {
                    let _index = read_compact_size(&mut payload)?;
                    self.intern.clear();
                    self.last_time = None;
                    self.segments_seen += 1;
                    if payload.has_remaining() {
                        return Err(LogError::TrailingBytes);
                    }
                }
                TAG_BLOCK => {
                    let block = Block::decode(&mut payload)?;
                    if payload.has_remaining() {
                        return Err(LogError::TrailingBytes);
                    }
                    self.last_time = Some(block.header.time);
                    return Ok(Some(LogEvent::Block(block)));
                }
                TAG_SNAPSHOT => {
                    let snap = self.decode_snapshot(&mut payload)?;
                    if payload.has_remaining() {
                        return Err(LogError::TrailingBytes);
                    }
                    self.last_time = Some(snap.time);
                    return Ok(Some(LogEvent::Snapshot(snap)));
                }
                other => return Err(LogError::UnknownTag(other)),
            }
        }
    }

    fn decode_snapshot(&mut self, payload: &mut Bytes) -> Result<MempoolSnapshot, LogError> {
        ensure_remaining(payload, 1)?;
        let flags = payload.get_u8();
        let delta = read_compact_size(payload)?;
        // A corrupt delta must surface as a typed error, not an overflow.
        let time = self
            .last_time
            .unwrap_or(0)
            .checked_add(delta)
            .ok_or(LogError::Decode(DecodeError::OversizedLength(delta)))?;
        let mut snap = if flags & FLAG_DETAILED == 0 {
            let count = read_compact_size(payload)?;
            if count > MAX_DECODE_LEN {
                return Err(LogError::Decode(DecodeError::OversizedLength(count)));
            }
            let vsize = read_compact_size(payload)?;
            MempoolSnapshot::light(time, count as usize, vsize)
        } else {
            let rows = read_compact_size(payload)?;
            if rows > MAX_DECODE_LEN {
                return Err(LogError::Decode(DecodeError::OversizedLength(rows)));
            }
            let rows = rows as usize;
            // Every row costs at least one handle byte, so a claimed count
            // beyond the remaining payload is structurally impossible —
            // reject it before trusting it for preallocation.
            ensure_remaining(payload, rows)?;
            let mut txids = Vec::with_capacity(rows);
            for _ in 0..rows {
                let handle = read_compact_size(payload)?;
                if handle < self.intern.len() as u64 {
                    txids.push(self.intern[handle as usize]);
                } else if handle == self.intern.len() as u64 {
                    ensure_remaining(payload, 32)?;
                    let mut raw = [0u8; 32];
                    payload.copy_to_slice(&mut raw);
                    let txid = Txid::from(raw);
                    self.intern.push(txid);
                    txids.push(txid);
                } else {
                    return Err(LogError::BadHandle { handle, table: self.intern.len() });
                }
            }
            let mut received = Vec::with_capacity(rows);
            for _ in 0..rows {
                let delta = unzigzag(read_compact_size(payload)?);
                // Wrapping: a corrupt delta yields a wrong-but-total value;
                // the surrounding record almost always fails structurally.
                received.push((time as i64).wrapping_sub(delta) as Timestamp);
            }
            let mut fees = Vec::with_capacity(rows);
            for _ in 0..rows {
                fees.push(Amount::from_sat(read_compact_size(payload)?));
            }
            let mut vsizes = Vec::with_capacity(rows);
            for _ in 0..rows {
                vsizes.push(read_compact_size(payload)?);
            }
            let bits_len = rows.div_ceil(8);
            ensure_remaining(payload, bits_len)?;
            let mut bits = vec![0u8; bits_len];
            payload.copy_to_slice(&mut bits);
            let entries: Vec<SnapshotEntry> = (0..rows)
                .map(|i| SnapshotEntry {
                    txid: txids[i],
                    received: received[i],
                    fee: fees[i],
                    vsize: vsizes[i],
                    has_unconfirmed_parent: bits[i / 8] & (1 << (i % 8)) != 0,
                })
                .collect();
            MempoolSnapshot::from_entries(time, entries)
        };
        if flags & FLAG_TRUNCATED != 0 {
            snap = snap.mark_truncated();
        }
        if flags & FLAG_DEGRADED != 0 {
            snap = snap.mark_degraded();
        }
        Ok(snap)
    }
}

/// Encodes a finished monolithic run through the same writer the chunked
/// path uses — the byte-identity oracle: for any epoch length,
/// `World::run_streamed` into a `LogWriter` must produce these bytes.
pub fn write_run<W: Write>(
    out: &SimOutput,
    epoch_blocks: u64,
    to: W,
) -> Result<LogStats, LogError> {
    let mut writer = LogWriter::new(to, epoch_blocks);
    writer.on_start(out.chain.seeded_transactions());
    for event in cn_core::streaming::interleave(out.chain.blocks(), &out.snapshots) {
        match event {
            cn_core::StreamEvent::Block(b) => writer.on_block(b),
            cn_core::StreamEvent::Snapshot(s) => writer.on_snapshot(s),
        }
    }
    writer.finish()
}

fn read_u8_opt<R: Read>(input: &mut R) -> Result<Option<u8>, LogError> {
    let mut byte = [0u8; 1];
    loop {
        match input.read(&mut byte) {
            Ok(0) => return Ok(None),
            Ok(_) => return Ok(Some(byte[0])),
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(LogError::Io(e)),
        }
    }
}

fn read_exact_or<R: Read>(input: &mut R, buf: &mut [u8], on_eof: LogError) -> Result<(), LogError> {
    match input.read_exact(buf) {
        Ok(()) => Ok(()),
        Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => Err(on_eof),
        Err(e) => Err(LogError::Io(e)),
    }
}

/// Reads a compact-size varint directly from an [`io::Read`] stream,
/// mapping EOF onto [`LogError::TruncatedRecord`].
fn read_compact_io<R: Read>(input: &mut R) -> Result<u64, LogError> {
    let mut first = [0u8; 1];
    read_exact_or(input, &mut first, LogError::TruncatedRecord)?;
    let extra = match first[0] {
        0xfd => 2,
        0xfe => 4,
        0xff => 8,
        n => return Ok(n as u64),
    };
    let mut rest = [0u8; 9];
    read_exact_or(input, &mut rest[1..=extra], LogError::TruncatedRecord)?;
    rest[0] = first[0];
    let mut bytes = Bytes::copy_from_slice(&rest[..=extra]);
    Ok(read_compact_size(&mut bytes)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datasets::{dataset_a, Scale};
    use cn_sim::World;

    #[test]
    fn zigzag_round_trips() {
        for n in [0i64, 1, -1, 2, -2, 1 << 40, -(1 << 40), i64::MAX, i64::MIN] {
            assert_eq!(unzigzag(zigzag(n)), n);
        }
    }

    fn tiny_run() -> SimOutput {
        let mut s = dataset_a(Scale::Quick);
        s.duration = 3_600;
        World::new(s).run()
    }

    fn replay_all(log: &[u8]) -> (Vec<Block>, Vec<MempoolSnapshot>, Vec<Transaction>, u64) {
        let mut reader = LogReader::new(log).expect("valid log");
        let seeds = reader.seeds().to_vec();
        let mut blocks = Vec::new();
        let mut snaps = Vec::new();
        while let Some(event) = reader.next_event().expect("valid record") {
            match event {
                LogEvent::Block(b) => blocks.push(b),
                LogEvent::Snapshot(s) => snaps.push(s),
            }
        }
        (blocks, snaps, seeds, reader.segments_seen())
    }

    #[test]
    fn round_trip_replays_identical_stream() {
        let out = tiny_run();
        let mut log = Vec::new();
        let stats = write_run(&out, 7, &mut log).expect("write");
        assert_eq!(stats.bytes, log.len() as u64);
        assert_eq!(stats.blocks, out.chain.blocks().len() as u64);
        assert_eq!(stats.snapshots, out.snapshots.len() as u64);
        // Trailing snapshots after an epoch-closing final block open one
        // extra segment, so the count is ceil(blocks/7) or one more.
        let floor = stats.blocks.div_ceil(7).max(1);
        assert!(stats.segments == floor || stats.segments == floor + 1);

        let (blocks, snaps, seeds, segments) = replay_all(&log);
        assert_eq!(seeds, out.chain.seeded_transactions());
        assert_eq!(blocks, out.chain.blocks());
        assert_eq!(snaps, out.snapshots);
        assert_eq!(segments, stats.segments);
    }

    #[test]
    fn epoch_segmentation_is_a_function_of_the_block_count() {
        let out = tiny_run();
        let blocks = out.chain.blocks().len() as u64;
        assert!(blocks > 2, "scenario too small to segment");

        let mut per_block = Vec::new();
        let one = write_run(&out, 1, &mut per_block).expect("write");
        assert!(one.segments == blocks || one.segments == blocks + 1);

        let mut unbounded = Vec::new();
        let zero = write_run(&out, 0, &mut unbounded).expect("write");
        assert_eq!(zero.segments, 1);

        // Same stream, same records — only the segment boundaries (and the
        // intern-table resets they force) differ. Sizes are a wash: short
        // segments re-pay the 32-byte txid dictionary, long segments widen
        // every row's handle varint — so only decoded equality is asserted.
        let (b1, s1, ..) = replay_all(&per_block);
        let (b0, s0, ..) = replay_all(&unbounded);
        assert_eq!(b1, b0);
        assert_eq!(s1, s0);
    }

    fn entry(seed: u8, received: Timestamp) -> SnapshotEntry {
        SnapshotEntry {
            txid: Txid::from([seed; 32]),
            received,
            fee: Amount::from_sat(1_000 + seed as u64),
            vsize: 110 + seed as u64,
            has_unconfirmed_parent: seed.is_multiple_of(2),
        }
    }

    #[test]
    fn snapshot_shapes_and_flags_round_trip() {
        let detailed =
            MempoolSnapshot::from_entries(500, vec![entry(1, 480), entry(2, 505), entry(3, 12)]);
        let originals = vec![
            MempoolSnapshot::light(100, 42, 9_000),
            MempoolSnapshot::from_entries(200, Vec::new()),
            detailed.clone(),
            detailed.truncate_detail(0.5),
            detailed.clone().mark_degraded(),
            detailed.truncate_detail(0.34).mark_degraded(),
            MempoolSnapshot::light(900, 7, 800).mark_degraded(),
        ];

        let mut log = Vec::new();
        let mut writer = LogWriter::new(&mut log, 0);
        writer.on_start(&[]);
        for snap in &originals {
            writer.on_snapshot(snap);
        }
        let stats = writer.finish().expect("write");
        assert_eq!(stats.snapshots, originals.len() as u64);

        let (blocks, snaps, seeds, _) = replay_all(&log);
        assert!(blocks.is_empty());
        assert!(seeds.is_empty());
        assert_eq!(snaps, originals);
        // `received` later than the snapshot stamp (entry 2) survives via
        // the signed delta; the flags byte carries each stamp combination.
        assert!(snaps[3].is_truncated() && !snaps[3].is_degraded());
        assert!(snaps[5].is_truncated() && snaps[5].is_degraded());
        assert!(!snaps[6].is_detailed() && snaps[6].is_degraded());
    }

    #[test]
    fn corrupt_input_yields_typed_errors_not_panics() {
        let out = tiny_run();
        let mut log = Vec::new();
        write_run(&out, 5, &mut log).expect("write");

        // Bad magic.
        let mut bad = log.clone();
        bad[0] ^= 0xff;
        assert!(matches!(LogReader::new(&bad[..]), Err(LogError::BadMagic)));

        // A torn tail: every proper prefix must end in a clean `Ok(None)`
        // or a typed truncation error — never a panic.
        for cut in [log.len() - 1, log.len() - 17, log.len() / 2, 9] {
            let mut reader = match LogReader::new(&log[..cut]) {
                Ok(r) => r,
                Err(LogError::TruncatedRecord) => continue,
                Err(e) => panic!("unexpected header error at cut {cut}: {e}"),
            };
            loop {
                match reader.next_event() {
                    Ok(Some(_)) => continue,
                    Ok(None) => break,
                    Err(LogError::TruncatedRecord | LogError::Decode(_)) => break,
                    Err(e) => panic!("unexpected error at cut {cut}: {e}"),
                }
            }
        }

        // An unknown record tag.
        let mut tagged = log.clone();
        tagged.extend_from_slice(&[0x7f, 0x00]);
        let mut reader = LogReader::new(&tagged[..]).expect("header intact");
        let err = loop {
            match reader.next_event() {
                Ok(Some(_)) => continue,
                Ok(None) => panic!("unknown tag not surfaced"),
                Err(e) => break e,
            }
        };
        assert!(matches!(err, LogError::UnknownTag(0x7f)));

        // A snapshot row pointing past the intern table.
        let mut bad_handle = Vec::new();
        let mut writer = LogWriter::new(&mut bad_handle, 0);
        writer.on_start(&[]);
        writer.finish().expect("header");
        // segment 0, then a detailed snapshot whose first row claims handle 9.
        bad_handle.extend_from_slice(&[TAG_SEGMENT, 0x01, 0x00]);
        bad_handle.extend_from_slice(&[TAG_SNAPSHOT, 0x04, FLAG_DETAILED, 0x00, 0x01, 0x09]);
        let mut reader = LogReader::new(&bad_handle[..]).expect("header intact");
        let err = reader.next_event().expect_err("bad handle");
        assert!(matches!(err, LogError::BadHandle { handle: 9, table: 0 }));

        // Payload longer than its contents decode to.
        let mut trailing = Vec::new();
        let mut writer = LogWriter::new(&mut trailing, 0);
        writer.on_start(&[]);
        writer.finish().expect("header");
        bad_segment_with_extra_byte(&mut trailing);
        let mut reader = LogReader::new(&trailing[..]).expect("header intact");
        let err = reader.next_event().expect_err("trailing bytes");
        assert!(matches!(err, LogError::TrailingBytes));
    }

    fn bad_segment_with_extra_byte(log: &mut Vec<u8>) {
        log.extend_from_slice(&[TAG_SEGMENT, 0x02, 0x00, 0xaa]);
    }
}
