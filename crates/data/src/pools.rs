//! Mining-pool rosters with the paper's hash-rate shares.

use cn_sim::scenario::{PoolBehavior, PoolConfig};

/// A pool's roster entry before behaviours are attached.
#[derive(Clone, Debug, PartialEq)]
pub struct PoolSpec {
    /// Pool name (as in the paper's figures).
    pub name: &'static str,
    /// Normalized hash-rate share (from Figure 2).
    pub share: f64,
    /// Reward wallets the pool rotates (Figure 8a: SlushPool used 56,
    /// Poolin 23; most pools a handful — scaled down proportionally).
    pub wallets: usize,
}

impl PoolSpec {
    /// Converts to an honest scenario pool config.
    pub fn honest(&self) -> PoolConfig {
        PoolConfig::honest(self.name, self.share, self.wallets)
    }

    /// Converts with behaviours attached.
    pub fn with(&self, behaviors: Vec<PoolBehavior>, accepts_low_fee: bool) -> PoolConfig {
        let mut cfg = self.honest();
        cfg.behaviors = behaviors;
        cfg.accepts_low_fee = accepts_low_fee;
        cfg
    }
}

/// Dataset 𝒜's top pools (Feb–Mar 2019, §3): BTC.com 17.18 %, AntPool
/// 12.79 %, F2Pool 11.29 %, Poolin 11.03 %, SlushPool 8.94 %, plus a tail
/// standing in for the remaining operators.
pub fn roster_2019_a() -> Vec<PoolSpec> {
    vec![
        PoolSpec { name: "BTC.com", share: 0.1718, wallets: 3 },
        PoolSpec { name: "AntPool", share: 0.1279, wallets: 3 },
        PoolSpec { name: "F2Pool", share: 0.1129, wallets: 4 },
        PoolSpec { name: "Poolin", share: 0.1103, wallets: 8 },
        PoolSpec { name: "SlushPool", share: 0.0894, wallets: 12 },
        PoolSpec { name: "ViaBTC", share: 0.0700, wallets: 2 },
        PoolSpec { name: "BTC.TOP", share: 0.0600, wallets: 2 },
        PoolSpec { name: "Bitfury", share: 0.0400, wallets: 1 },
        PoolSpec { name: "Huobi", share: 0.0380, wallets: 2 },
        PoolSpec { name: "SpiderPool", share: 0.0300, wallets: 1 },
        PoolSpec { name: "DPool", share: 0.0250, wallets: 1 },
        PoolSpec { name: "BitClub", share: 0.0200, wallets: 1 },
        PoolSpec { name: "Bixin", share: 0.0180, wallets: 1 },
        PoolSpec { name: "WAYI.CN", share: 0.0150, wallets: 1 },
        PoolSpec { name: "58COIN", share: 0.0130, wallets: 1 },
        PoolSpec { name: "Rawpool", share: 0.0120, wallets: 1 },
        PoolSpec { name: "Tangpool", share: 0.0100, wallets: 1 },
        PoolSpec { name: "KanoPool", share: 0.0080, wallets: 1 },
        PoolSpec { name: "Sigmapool", share: 0.0070, wallets: 1 },
        PoolSpec { name: "SoloCK", share: 0.0060, wallets: 1 },
    ]
}

/// Dataset ℬ's top pools (Jun 2019, §3): BTC.com 19.67 %, AntPool
/// 12.77 %, F2Pool 11.57 %, SlushPool 9.69 %, Poolin 9.58 %.
pub fn roster_2019_b() -> Vec<PoolSpec> {
    vec![
        PoolSpec { name: "BTC.com", share: 0.1967, wallets: 3 },
        PoolSpec { name: "AntPool", share: 0.1277, wallets: 3 },
        PoolSpec { name: "F2Pool", share: 0.1157, wallets: 4 },
        PoolSpec { name: "SlushPool", share: 0.0969, wallets: 12 },
        PoolSpec { name: "Poolin", share: 0.0958, wallets: 8 },
        PoolSpec { name: "ViaBTC", share: 0.0650, wallets: 2 },
        PoolSpec { name: "BTC.TOP", share: 0.0550, wallets: 2 },
        PoolSpec { name: "Bitfury", share: 0.0350, wallets: 1 },
        PoolSpec { name: "Huobi", share: 0.0330, wallets: 2 },
        PoolSpec { name: "SpiderPool", share: 0.0280, wallets: 1 },
        PoolSpec { name: "DPool", share: 0.0220, wallets: 1 },
        PoolSpec { name: "BitClub", share: 0.0180, wallets: 1 },
        PoolSpec { name: "Bixin", share: 0.0160, wallets: 1 },
        PoolSpec { name: "WAYI.CN", share: 0.0140, wallets: 1 },
        PoolSpec { name: "58COIN", share: 0.0120, wallets: 1 },
        PoolSpec { name: "Rawpool", share: 0.0110, wallets: 1 },
        PoolSpec { name: "Tangpool", share: 0.0090, wallets: 1 },
        PoolSpec { name: "KanoPool", share: 0.0080, wallets: 1 },
        PoolSpec { name: "Sigmapool", share: 0.0070, wallets: 1 },
        PoolSpec { name: "SoloCK", share: 0.0060, wallets: 1 },
    ]
}

/// Dataset 𝒞's top-20 pools (2020, §3 and Tables 2–3): F2Pool 17.53 %,
/// Poolin 14.80 %, BTC.com 11.99 %, AntPool 10.96 %, Huobi 7.5 %, and the
/// Table 2 actors ViaBTC (6.76 %), 1THash & 58Coin (6.11 %) and SlushPool
/// (3.75 %).
pub fn roster_2020() -> Vec<PoolSpec> {
    vec![
        PoolSpec { name: "F2Pool", share: 0.1753, wallets: 4 },
        PoolSpec { name: "Poolin", share: 0.1480, wallets: 8 },
        PoolSpec { name: "BTC.com", share: 0.1199, wallets: 3 },
        PoolSpec { name: "AntPool", share: 0.1096, wallets: 3 },
        PoolSpec { name: "Huobi", share: 0.0750, wallets: 3 },
        PoolSpec { name: "ViaBTC", share: 0.0676, wallets: 2 },
        PoolSpec { name: "1THash & 58Coin", share: 0.0611, wallets: 2 },
        PoolSpec { name: "Okex", share: 0.0520, wallets: 3 },
        PoolSpec { name: "Binance Pool", share: 0.0450, wallets: 2 },
        PoolSpec { name: "SlushPool", share: 0.0375, wallets: 12 },
        PoolSpec { name: "Lubian.com", share: 0.0220, wallets: 2 },
        PoolSpec { name: "BTC.TOP", share: 0.0180, wallets: 1 },
        PoolSpec { name: "Bitfury", share: 0.0150, wallets: 1 },
        PoolSpec { name: "SpiderPool", share: 0.0120, wallets: 1 },
        PoolSpec { name: "NovaBlock", share: 0.0090, wallets: 1 },
        PoolSpec { name: "TigerPool", share: 0.0070, wallets: 1 },
        PoolSpec { name: "BitDeer", share: 0.0060, wallets: 1 },
        PoolSpec { name: "Buffett", share: 0.0050, wallets: 1 },
        PoolSpec { name: "EMCD", share: 0.0045, wallets: 1 },
        PoolSpec { name: "MiningCity", share: 0.0040, wallets: 1 },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rosters_have_twenty_pools() {
        assert_eq!(roster_2019_a().len(), 20);
        assert_eq!(roster_2019_b().len(), 20);
        assert_eq!(roster_2020().len(), 20);
    }

    #[test]
    fn shares_are_plausible() {
        for roster in [roster_2019_a(), roster_2019_b(), roster_2020()] {
            let total: f64 = roster.iter().map(|p| p.share).sum();
            assert!((0.9..=1.01).contains(&total), "total share {total}");
            for p in &roster {
                assert!(p.share > 0.0 && p.wallets > 0);
            }
        }
    }

    #[test]
    fn paper_headline_shares_match() {
        let c = roster_2020();
        assert_eq!(c[0].name, "F2Pool");
        assert!((c[0].share - 0.1753).abs() < 1e-9);
        let viabtc = c.iter().find(|p| p.name == "ViaBTC").expect("present");
        assert!((viabtc.share - 0.0676).abs() < 1e-9);
    }

    #[test]
    fn spec_conversion_attaches_behaviors() {
        let spec = &roster_2020()[0];
        let cfg = spec.with(vec![PoolBehavior::SelfInterest], true);
        assert_eq!(cfg.behaviors.len(), 1);
        assert!(cfg.accepts_low_fee);
        assert_eq!(cfg.name, "F2Pool");
    }

    #[test]
    fn names_are_unique() {
        for roster in [roster_2019_a(), roster_2019_b(), roster_2020()] {
            let mut names: Vec<_> = roster.iter().map(|p| p.name).collect();
            names.sort_unstable();
            names.dedup();
            assert_eq!(names.len(), roster.len());
        }
    }
}
