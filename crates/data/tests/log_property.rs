//! Randomized properties of the event-log codec: arbitrary canonical
//! streams round-trip exactly, and arbitrary tail corruption surfaces as a
//! typed error after a faithful prefix — never a panic.

use cn_chain::{Address, Amount, Block, BlockHash, Header, Timestamp, Transaction};
use cn_data::log::{LogError, LogEvent, LogReader, LogWriter};
use cn_mempool::{MempoolSnapshot, SnapshotEntry};
use cn_sim::EventSink;
use proptest::prelude::*;
use std::sync::Arc;

fn arb_transaction() -> impl Strategy<Value = Transaction> {
    (
        proptest::collection::vec((any::<[u8; 32]>(), 0u32..4, 0usize..120, 0usize..80), 1..4),
        proptest::collection::vec((1u64..10_000_000, any::<[u8; 20]>()), 1..4),
        any::<u32>(),
    )
        .prop_map(|(inputs, outputs, lock_time)| {
            let mut b = Transaction::builder().lock_time(lock_time);
            for (txid, vout, ss, wit) in inputs {
                b = b.add_input_with_sizes(txid.into(), vout, ss, wit);
            }
            for (value, payload) in outputs {
                b = b.pay_to(Address::p2pkh(payload), Amount::from_sat(value));
            }
            b.build()
        })
}

/// One generated event, time carried as a delta so streams stay canonical
/// (non-decreasing stamps) by construction.
#[derive(Debug, Clone)]
enum EventSpec {
    Block {
        delta: u16,
        nonce: u32,
        txs: Vec<Transaction>,
    },
    Light {
        delta: u16,
        count: u16,
        vsize: u32,
        degraded: bool,
    },
    /// Detailed rows; `rows` may be empty (an empty detail window).
    Detailed {
        delta: u16,
        rows: Vec<([u8; 32], i16, u32, u16, bool)>,
        keep_frac: Option<u8>,
        degraded: bool,
    },
}

fn arb_event() -> impl Strategy<Value = EventSpec> {
    (
        (0u8..3, any::<u16>(), any::<bool>()),
        (any::<u32>(), proptest::collection::vec(arb_transaction(), 0..3)),
        (any::<u16>(), any::<u32>()),
        (
            proptest::collection::vec(
                (any::<[u8; 32]>(), any::<i16>(), 1u32..5_000_000, 1u16..4_000, any::<bool>()),
                0..20,
            ),
            any::<bool>(),
            0u8..101,
        ),
    )
        .prop_map(|((sel, delta, degraded), (nonce, txs), (count, vsize), (rows, keep, frac))| {
            match sel {
                0 => EventSpec::Block { delta, nonce, txs },
                1 => EventSpec::Light { delta, count, vsize: vsize / 2, degraded },
                _ => EventSpec::Detailed {
                    delta,
                    rows,
                    keep_frac: if keep { Some(frac) } else { None },
                    degraded,
                },
            }
        })
}

/// Materializes specs into the canonical stream the writer will see.
fn build_stream(start: Timestamp, specs: &[EventSpec]) -> Vec<LogEvent> {
    let mut time = start;
    let mut prev_hash = BlockHash::ZERO;
    let mut events = Vec::new();
    for spec in specs {
        match spec {
            EventSpec::Block { delta, nonce, txs } => {
                time += *delta as Timestamp;
                let transactions: Vec<Arc<Transaction>> =
                    txs.iter().cloned().map(Arc::new).collect();
                let header = Header {
                    version: 2,
                    prev_hash,
                    merkle_root: cn_chain::merkle_root(
                        &transactions.iter().map(|t| t.txid()).collect::<Vec<_>>(),
                    ),
                    time,
                    bits: 0x1d00_ffff,
                    nonce: *nonce,
                };
                prev_hash = header.block_hash();
                events.push(LogEvent::Block(Block { header, transactions }));
            }
            EventSpec::Light { delta, count, vsize, degraded } => {
                time += *delta as Timestamp;
                let mut snap = MempoolSnapshot::light(time, *count as usize, *vsize as u64);
                if *degraded {
                    snap = snap.mark_degraded();
                }
                events.push(LogEvent::Snapshot(snap));
            }
            EventSpec::Detailed { delta, rows, keep_frac, degraded } => {
                time += *delta as Timestamp;
                let entries: Vec<SnapshotEntry> = rows
                    .iter()
                    .map(|(txid, recv_off, fee, vsize, parent)| SnapshotEntry {
                        txid: (*txid).into(),
                        received: time.saturating_add_signed(*recv_off as i64),
                        fee: Amount::from_sat(*fee as u64),
                        vsize: *vsize as u64,
                        has_unconfirmed_parent: *parent,
                    })
                    .collect();
                let mut snap = MempoolSnapshot::from_entries(time, entries);
                if let Some(frac) = keep_frac {
                    snap = snap.truncate_detail(*frac as f64 / 100.0);
                }
                if *degraded {
                    snap = snap.mark_degraded();
                }
                events.push(LogEvent::Snapshot(snap));
            }
        }
    }
    events
}

fn encode(seeds: &[Transaction], events: &[LogEvent], epoch: u64) -> Vec<u8> {
    let mut log = Vec::new();
    let mut writer = LogWriter::new(&mut log, epoch);
    writer.on_start(seeds);
    for event in events {
        match event {
            LogEvent::Block(b) => writer.on_block(b),
            LogEvent::Snapshot(s) => writer.on_snapshot(s),
        }
    }
    writer.finish().expect("in-memory write cannot fail");
    log
}

fn assert_event_eq(want: &LogEvent, have: &LogEvent, at: usize) {
    match (want, have) {
        (LogEvent::Block(w), LogEvent::Block(h)) => assert_eq!(w, h, "block {at} differs"),
        (LogEvent::Snapshot(w), LogEvent::Snapshot(h)) => {
            assert_eq!(w, h, "snapshot {at} differs")
        }
        (w, h) => panic!("event {at} kind mismatch: {w:?} vs {h:?}"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn random_streams_round_trip(
        seeds in proptest::collection::vec(arb_transaction(), 0..4),
        specs in proptest::collection::vec(arb_event(), 0..30),
        start in 0u64..1_000_000,
        epoch in 0u64..6,
    ) {
        let events = build_stream(start, &specs);
        let log = encode(&seeds, &events, epoch);

        let mut reader = LogReader::new(&log[..]).expect("valid header");
        prop_assert_eq!(reader.seeds(), &seeds[..]);
        for (i, expected) in events.iter().enumerate() {
            let got = reader.next_event().expect("valid record").expect("stream too short");
            assert_event_eq(expected, &got, i);
        }
        prop_assert!(reader.next_event().expect("clean end").is_none());
    }

    #[test]
    fn torn_tails_fail_typed_after_a_faithful_prefix(
        seeds in proptest::collection::vec(arb_transaction(), 0..3),
        specs in proptest::collection::vec(arb_event(), 1..20),
        start in 0u64..1_000_000,
        cut_frac in 0.0f64..1.0,
    ) {
        let events = build_stream(start, &specs);
        let log = encode(&seeds, &events, 3);
        let cut = ((log.len() as f64) * cut_frac) as usize;
        let torn = &log[..cut];

        match LogReader::new(torn) {
            // The header itself was torn — a typed error is the contract.
            Err(LogError::BadMagic | LogError::TruncatedRecord | LogError::Decode(_)) => {}
            Err(e) => panic!("unexpected header error at cut {cut}: {e}"),
            Ok(mut reader) => {
                prop_assert_eq!(reader.seeds(), &seeds[..]);
                let mut replayed = 0usize;
                loop {
                    match reader.next_event() {
                        Ok(Some(event)) => {
                            // Whatever survives the cut must match the
                            // original stream, in order.
                            prop_assert!(replayed < events.len());
                            assert_event_eq(&events[replayed], &event, replayed);
                            replayed += 1;
                        }
                        Ok(None) => break,
                        Err(LogError::TruncatedRecord | LogError::Decode(_)) => break,
                        Err(e) => panic!("unexpected error at cut {cut}: {e}"),
                    }
                }
            }
        }
    }

    #[test]
    fn flipped_bytes_never_panic(
        seeds in proptest::collection::vec(arb_transaction(), 0..2),
        specs in proptest::collection::vec(arb_event(), 1..12),
        start in 0u64..100_000,
        pos_frac in 0.0f64..1.0,
        flip in 1u8..=255,
    ) {
        let events = build_stream(start, &specs);
        let mut log = encode(&seeds, &events, 2);
        let pos = (((log.len() - 1) as f64) * pos_frac) as usize;
        log[pos] ^= flip;

        // Any outcome is acceptable except a panic: a typed error, a clean
        // end, or even a different-but-well-formed stream.
        if let Ok(mut reader) = LogReader::new(&log[..]) {
            for _ in 0..events.len() + 2 {
                match reader.next_event() {
                    Ok(Some(_)) => continue,
                    _ => break,
                }
            }
        }
    }
}
