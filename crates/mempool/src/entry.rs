//! A transaction resident in the Mempool, with cached fee metadata.

use cn_chain::{Amount, FeeRate, Timestamp, Transaction, Txid};
use std::sync::Arc;

/// A Mempool resident: the transaction plus everything the pool and the
/// block assembler need to rank it.
///
/// Transactions are held behind [`Arc`] so that the many per-node Mempool
/// views a network simulation maintains share one copy of each transaction.
#[derive(Clone, Debug)]
pub struct MempoolEntry {
    tx: Arc<Transaction>,
    fee: Amount,
    received: Timestamp,
    sequence: u64,
    /// Cached ancestor-package totals (self + all in-pool ancestors),
    /// maintained incrementally by the pool on every topology change.
    pub(crate) anc_fee: u64,
    pub(crate) anc_vsize: u64,
    /// Cached descendant-package totals (self + all in-pool descendants).
    pub(crate) desc_fee: u64,
    pub(crate) desc_vsize: u64,
    /// Cached descendant-package cardinality (self + all in-pool
    /// descendants), maintained alongside `desc_fee`/`desc_vsize` so the
    /// descendant-limit policy check is O(1) instead of a closure walk.
    pub(crate) desc_count: u32,
    /// Interned adjacency: slab handles of the resident parents/children.
    /// Maintained by the pool on every add/remove; dedup'd.
    pub(crate) parents: Vec<u32>,
    pub(crate) children: Vec<u32>,
}

impl MempoolEntry {
    /// Wraps a transaction with its externally computed fee (the Mempool
    /// does not own a UTXO view; the node layer computes fees) and receipt
    /// time. `sequence` is the pool-assigned arrival counter.
    pub(crate) fn new(
        tx: Arc<Transaction>,
        fee: Amount,
        received: Timestamp,
        sequence: u64,
    ) -> Self {
        let vsize = tx.vsize();
        MempoolEntry {
            tx,
            fee,
            received,
            sequence,
            anc_fee: fee.to_sat(),
            anc_vsize: vsize,
            desc_fee: fee.to_sat(),
            desc_vsize: vsize,
            desc_count: 1,
            parents: Vec::new(),
            children: Vec::new(),
        }
    }

    /// The transaction.
    pub fn tx(&self) -> &Transaction {
        &self.tx
    }

    /// A shared handle to the transaction (cheap to clone).
    pub fn tx_arc(&self) -> Arc<Transaction> {
        Arc::clone(&self.tx)
    }

    /// The transaction id.
    pub fn txid(&self) -> Txid {
        self.tx.txid()
    }

    /// The absolute fee.
    pub fn fee(&self) -> Amount {
        self.fee
    }

    /// Virtual size in vbytes.
    pub fn vsize(&self) -> u64 {
        self.tx.vsize()
    }

    /// The standalone fee rate (fee / vsize), the quantity norms I and II
    /// rank by.
    pub fn fee_rate(&self) -> FeeRate {
        FeeRate::from_fee_and_vsize(self.fee, self.vsize())
    }

    /// When the pool first saw this transaction.
    pub fn received(&self) -> Timestamp {
        self.received
    }

    /// Pool-local arrival sequence number (total order on arrivals, used to
    /// break fee-rate ties deterministically).
    pub fn sequence(&self) -> u64 {
        self.sequence
    }

    /// Cached ancestor-package totals: `(fee, vsize)` of this transaction
    /// plus every in-pool ancestor. Maintained by the pool; O(1).
    pub fn ancestor_score(&self) -> (Amount, u64) {
        (Amount::from_sat(self.anc_fee), self.anc_vsize)
    }

    /// Cached descendant-package totals: `(fee, vsize)` of this transaction
    /// plus every in-pool descendant. Maintained by the pool; O(1).
    pub fn descendant_score(&self) -> (Amount, u64) {
        (Amount::from_sat(self.desc_fee), self.desc_vsize)
    }

    /// Cached descendant-package cardinality (this transaction plus every
    /// in-pool descendant). Maintained by the pool; O(1).
    pub fn descendant_count(&self) -> u32 {
        self.desc_count
    }
}

/// The node-independent slice of admission work for one transaction.
///
/// Every receiving node performs the same prefix of admission: derive the
/// txid, weight, vsize and standalone fee rate, and reduce the input list
/// to the distinct set of potential in-pool parents. None of that depends
/// on the receiving node's mempool state or policy, so a relay layer can
/// compute it once per transaction and share it across the whole fan-out
/// (see `RelayPayload` in `cn-net`), instead of redoing it per (tx, node).
#[derive(Clone, Debug)]
pub struct AdmissionPrecheck {
    /// Cached transaction id.
    pub txid: Txid,
    /// Virtual size in vbytes.
    pub vsize: u64,
    /// Standalone fee rate (fee / vsize) for the policy floor check.
    pub rate: FeeRate,
    /// Distinct prevout txids in first-appearance order. Per node, the
    /// resident subset of these (in this order) is exactly the parent set
    /// the per-input scan used to rebuild: `lookup` is injective, so
    /// dedup-by-txid and dedup-by-handle agree.
    pub parent_txids: Vec<Txid>,
}

impl AdmissionPrecheck {
    /// Computes the shared admission prefix for `tx` with absolute fee
    /// `fee`.
    pub fn of(tx: &Transaction, fee: Amount) -> Self {
        let vsize = tx.vsize();
        let mut parent_txids: Vec<Txid> = Vec::new();
        for input in tx.inputs() {
            let ptxid = input.prevout.txid;
            if !parent_txids.contains(&ptxid) {
                parent_txids.push(ptxid);
            }
        }
        AdmissionPrecheck {
            txid: tx.txid(),
            vsize,
            rate: FeeRate::from_fee_and_vsize(fee, vsize),
            parent_txids,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cn_chain::{Address, TxOut};

    fn tx() -> Transaction {
        Transaction::builder()
            .add_input_with_sizes([1; 32].into(), 0, 107, 0)
            .add_output(TxOut::to_address(Amount::from_sat(1_000), Address::from_label("r")))
            .build()
    }

    #[test]
    fn fee_rate_derived_from_fee_and_vsize() {
        let t = tx();
        let vsize = t.vsize();
        let e = MempoolEntry::new(t.into(), Amount::from_sat(vsize * 2), 50, 0);
        assert_eq!(e.fee_rate(), FeeRate::from_sat_per_vb(2));
        assert_eq!(e.received(), 50);
    }

    #[test]
    fn accessors_round_trip() {
        let t = tx();
        let txid = t.txid();
        let e = MempoolEntry::new(t.into(), Amount::from_sat(500), 9, 7);
        assert_eq!(e.txid(), txid);
        assert_eq!(e.fee(), Amount::from_sat(500));
        assert_eq!(e.sequence(), 7);
    }
}
