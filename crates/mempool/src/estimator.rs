//! A wallet-style fee estimator.
//!
//! §4.1.2: "the Bitcoin Core code and most of the wallet software rely on
//! the distribution of transactions' fee-rates included in previous blocks
//! to suggest to users the fees that they should include." This estimator
//! reproduces that behaviour: it keeps the fee-rate distributions of the
//! last `window` blocks and suggests a quantile of the pooled sample. The
//! simulator's users consult it when pricing their transactions, which is
//! what makes simulated fee-rates track congestion the way Figure 4(c)
//! shows real ones do.

use cn_chain::{Block, FeeRate, UtxoSet};
use std::collections::VecDeque;

/// Rolling fee estimator over recent blocks.
///
/// The pooled, sorted sample is rebuilt once per recorded block rather
/// than on every [`FeeEstimator::suggest`] call: users consult the
/// estimator per transaction, blocks arrive ~600× less often.
#[derive(Clone, Debug)]
pub struct FeeEstimator {
    window: usize,
    recent: VecDeque<Vec<FeeRate>>,
    pooled_sorted: Vec<FeeRate>,
}

impl FeeEstimator {
    /// Creates an estimator remembering the last `window` blocks.
    ///
    /// # Panics
    /// Panics when `window` is zero.
    pub fn new(window: usize) -> FeeEstimator {
        assert!(window > 0, "window must be positive");
        FeeEstimator {
            window,
            recent: VecDeque::with_capacity(window),
            pooled_sorted: Vec::new(),
        }
    }

    /// Records the fee rates observed in a newly mined block's body.
    pub fn record_rates(&mut self, rates: Vec<FeeRate>) {
        if self.recent.len() == self.window {
            self.recent.pop_front();
        }
        self.recent.push_back(rates);
        self.pooled_sorted.clear();
        self.pooled_sorted.extend(self.recent.iter().flatten().copied());
        self.pooled_sorted.sort_unstable();
    }

    /// Convenience: extracts body fee rates from a block given the UTXO
    /// view *before* the block (so input values resolve) and records them.
    pub fn record_block(&mut self, block: &Block, utxos_before: &UtxoSet) {
        let mut view = utxos_before.clone();
        let mut rates = Vec::with_capacity(block.body().len());
        if let Some(cb) = block.coinbase() {
            view.insert_outputs(cb);
        }
        for tx in block.body() {
            if let Ok(fee) = view.fee(tx) {
                rates.push(FeeRate::from_fee_and_vsize(fee, tx.vsize()));
            }
            // Keep the view advancing even for unresolvable entries.
            let _ = view.apply_tx(tx);
        }
        self.record_rates(rates);
    }

    /// Suggests the fee rate at quantile `q` of the pooled recent sample
    /// (e.g. 0.5 for an economical wallet, 0.9 for an impatient one).
    /// Returns the relay floor when no history exists yet.
    pub fn suggest(&self, q: f64) -> FeeRate {
        assert!((0.0..=1.0).contains(&q), "quantile {q} outside [0,1]");
        let pooled = &self.pooled_sorted;
        if pooled.is_empty() {
            return FeeRate::MIN_RELAY;
        }
        let rank = ((q * pooled.len() as f64).ceil() as usize).clamp(1, pooled.len());
        pooled[rank - 1]
    }

    /// Number of blocks currently remembered.
    pub fn depth(&self) -> usize {
        self.recent.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rates(v: &[u64]) -> Vec<FeeRate> {
        v.iter().map(|&s| FeeRate::from_sat_per_vb(s)).collect()
    }

    #[test]
    fn empty_history_returns_floor() {
        let est = FeeEstimator::new(5);
        assert_eq!(est.suggest(0.5), FeeRate::MIN_RELAY);
    }

    #[test]
    fn suggests_quantiles_of_pooled_sample() {
        let mut est = FeeEstimator::new(5);
        est.record_rates(rates(&[1, 2, 3, 4]));
        est.record_rates(rates(&[5, 6, 7, 8, 9, 10]));
        assert_eq!(est.suggest(0.5), FeeRate::from_sat_per_vb(5));
        assert_eq!(est.suggest(1.0), FeeRate::from_sat_per_vb(10));
        assert_eq!(est.suggest(0.1), FeeRate::from_sat_per_vb(1));
    }

    #[test]
    fn window_slides() {
        let mut est = FeeEstimator::new(2);
        est.record_rates(rates(&[100]));
        est.record_rates(rates(&[1]));
        est.record_rates(rates(&[2]));
        // The 100 sat/vB block fell out of the window.
        assert_eq!(est.suggest(1.0), FeeRate::from_sat_per_vb(2));
        assert_eq!(est.depth(), 2);
    }

    #[test]
    fn rising_congestion_raises_suggestions() {
        let mut est = FeeEstimator::new(3);
        est.record_rates(rates(&[1, 1, 2]));
        let calm = est.suggest(0.9);
        est.record_rates(rates(&[20, 30, 40]));
        est.record_rates(rates(&[25, 35, 45]));
        let congested = est.suggest(0.9);
        assert!(congested > calm);
    }

    #[test]
    #[should_panic(expected = "window must be positive")]
    fn zero_window_panics() {
        let _ = FeeEstimator::new(0);
    }
}
