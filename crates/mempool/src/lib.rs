//! # cn-mempool — a Bitcoin-Core-style memory pool
//!
//! The Mempool is the queue the entire paper is about: miners draw
//! transactions from it when building blocks, and its congestion level
//! drives user fee behaviour. This crate reproduces the parts of Bitcoin
//! Core's `CTxMemPool` that matter for ordering studies:
//!
//! * acceptance policy, including the **minimum fee-rate threshold**
//!   (norm III; configurable off, as the paper's dataset ℬ node did),
//! * conflict (double-spend) rejection against in-pool spends,
//! * **ancestor/descendant linkage** so child-pays-for-parent (CPFP)
//!   packages can be scored the way `GetBlockTemplate` scores them,
//! * fee-rate-sorted iteration for greedy template construction,
//! * periodic [`snapshot::MempoolSnapshot`]s — the exact artifact the
//!   paper's datasets 𝒜/ℬ consist of (one per 15 seconds),
//! * a fee estimator modelled on wallet behaviour (suggest fees from the
//!   fee-rate distribution of recent blocks).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod entry;
pub mod estimator;
pub mod mempool;
pub mod policy;
pub mod rbf;
pub mod snapshot;

pub use entry::{AdmissionPrecheck, MempoolEntry};
pub use estimator::FeeEstimator;
pub use mempool::{AcceptError, AncKey, Mempool, TxHandle};
pub use policy::MempoolPolicy;
pub use rbf::{RbfError, Replacement};
pub use snapshot::{MempoolSnapshot, SnapshotEntry};
