//! The Mempool proper: indexes, acceptance, package linkage, block connect.
//!
//! Residents live in a slab arena: admission interns the txid to a dense
//! `u32` handle, and every internal structure (parent/child adjacency,
//! ancestry walks, the assembler-facing ancestor-score index) operates on
//! handles instead of re-hashing 32-byte txids. The txid-keyed maps that
//! remain (`lookup`, `spent`) use the digest-prefix hasher from
//! [`cn_chain::fasthash`], the same trick as Bitcoin Core's
//! `SaltedTxidHasher`.

use crate::entry::{AdmissionPrecheck, MempoolEntry};
use crate::policy::MempoolPolicy;
use crate::snapshot::{MempoolSnapshot, SnapshotEntry};
use cn_chain::{Amount, Block, FastMap, FeeRate, OutPoint, Timestamp, Transaction, Txid};
use std::cmp::{Ordering, Reverse};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::sync::Arc;

/// Why a transaction was refused admission.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AcceptError {
    /// Already in the pool.
    Duplicate,
    /// Fee rate below the policy floor (norm III).
    BelowMinFeeRate {
        /// The transaction's fee rate.
        offered: FeeRate,
        /// The policy floor.
        floor: FeeRate,
    },
    /// Spends an outpoint another in-pool transaction already spends.
    Conflict {
        /// The contested outpoint.
        outpoint: OutPoint,
        /// The in-pool transaction spending it.
        existing: Txid,
    },
    /// The in-pool ancestor package would exceed the policy depth limit.
    TooManyAncestors,
    /// An ancestor's descendant set would exceed the policy limit.
    TooManyDescendants,
}

impl fmt::Display for AcceptError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AcceptError::Duplicate => write!(f, "transaction already in mempool"),
            AcceptError::BelowMinFeeRate { offered, floor } => {
                write!(f, "fee rate {offered} below floor {floor}")
            }
            AcceptError::Conflict { outpoint, existing } => {
                write!(f, "conflicts with {existing} over {}:{}", outpoint.txid, outpoint.vout)
            }
            AcceptError::TooManyAncestors => write!(f, "ancestor package too deep"),
            AcceptError::TooManyDescendants => write!(f, "descendant package too large"),
        }
    }
}

impl std::error::Error for AcceptError {}

/// Fee-rate sort key for [`Mempool::iter_by_fee_rate_desc`]: highest fee
/// rate first, FIFO arrival order within ties (the arrival sequence is
/// unique per pool, so the order is total without a txid tie-break).
type RateKey = (FeeRate, Reverse<u64>, u32);

/// A dense per-pool transaction handle: the slab index a resident was
/// interned at on admission. Valid until that transaction leaves the pool
/// (slots are recycled, so never hold one across a remove).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct TxHandle(u32);

impl TxHandle {
    /// The slab index, for handle-indexed scratch arrays.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Ancestor-package score key, ordered exactly like the assembler ranks
/// candidates: cross-multiplied package fee rate, then smaller package,
/// then earlier arrival, then txid. Iterating the pool's maintained index
/// in reverse therefore yields candidates best-first — the order
/// `GetBlockTemplate`'s selection loop wants them.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct AncKey {
    /// Saturating fixed-point package rate, `floor(fee << 32 / vsize)`:
    /// a compare-first approximation of the exact cross-multiplied rate.
    /// `floor` (and saturation) are monotone, so `approx_a < approx_b`
    /// implies the exact rates compare the same way; only equal
    /// approximations fall through to the exact comparison. Most tree
    /// descents therefore resolve on one integer compare instead of two
    /// 128-bit multiplications per node.
    pub approx: u64,
    /// Ancestor-package fee in satoshis at the time the key was indexed.
    pub fee: u64,
    /// Ancestor-package virtual size.
    pub vsize: u64,
    /// Arrival sequence (unique per pool — makes the order total).
    pub seq: u64,
    /// The transaction this key scores.
    pub txid: Txid,
    /// Its slab handle, so index consumers skip the txid lookup.
    pub handle: TxHandle,
}

impl AncKey {
    /// The monotone fixed-point rate prefix for (`fee`, `vsize`).
    pub fn approx_rate(fee: u64, vsize: u64) -> u64 {
        (((fee as u128) << 32) / vsize.max(1) as u128).min(u64::MAX as u128) as u64
    }
}

impl Ord for AncKey {
    fn cmp(&self, other: &Self) -> Ordering {
        self.approx
            .cmp(&other.approx)
            .then_with(|| {
                let lhs = self.fee as u128 * other.vsize as u128;
                let rhs = other.fee as u128 * self.vsize as u128;
                lhs.cmp(&rhs)
            })
            // Smaller packages first among equal rates (Core's heuristic).
            .then_with(|| other.vsize.cmp(&self.vsize))
            // Earlier arrival wins: greater-is-better, so compare reversed.
            .then_with(|| other.seq.cmp(&self.seq))
            .then_with(|| self.txid.cmp(&other.txid))
            .then_with(|| self.handle.cmp(&other.handle))
    }
}

impl PartialOrd for AncKey {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// A Bitcoin-Core-style memory pool.
///
/// ```
/// use cn_mempool::{Mempool, MempoolPolicy};
/// use cn_chain::{Address, Amount, Transaction, TxOut};
///
/// let mut pool = Mempool::new(MempoolPolicy::default());
/// let tx = Transaction::builder()
///     .add_input_with_sizes([1u8; 32].into(), 0, 107, 0)
///     .add_output(TxOut::to_address(Amount::from_sat(50_000), Address::from_label("r")))
///     .build();
/// let fee = Amount::from_sat(tx.vsize() * 10); // 10 sat/vB
/// let txid = pool.add(tx, fee, 0).expect("above the relay floor");
/// assert!(pool.contains(&txid));
/// assert_eq!(pool.iter_by_fee_rate_desc().next().unwrap().txid(), txid);
/// ```
#[derive(Clone, Debug, Default)]
pub struct Mempool {
    policy: MempoolPolicy,
    /// Txid → slab handle. The only per-touch txid hash on the hot path.
    lookup: FastMap<Txid, u32>,
    /// The intern arena. `None` slots are free and listed in `free`.
    slots: Vec<Option<MempoolEntry>>,
    free: Vec<u32>,
    /// In-pool spends, for conflict detection and confirmed-conflict eviction.
    spent: FastMap<OutPoint, u32>,
    /// Ancestor-package score index, maintained on every add/remove/confirm
    /// so the assembler's selection loop can walk residents best-first
    /// without rebuilding a heap per block.
    anc_index: BTreeSet<AncKey>,
    /// Descendant-package fee rate index — the `-maxmempool` eviction order.
    /// Maintained only once [`Mempool::activate_index`] has run.
    by_desc_rate: BTreeSet<(FeeRate, Txid)>,
    /// Live txid-sorted snapshot rows, so a detailed snapshot is one
    /// sort-free copy instead of a per-entry rebuild with ancestry walks.
    /// Maintained only once [`Mempool::activate_index`] has run.
    rows: BTreeMap<Txid, SnapshotEntry>,
    /// Last detailed-row dump, shared until the pool next changes.
    snapshot_cache: Option<Arc<Vec<SnapshotEntry>>>,
    /// Whether `by_desc_rate` and `rows` are live. Both exist only for
    /// [`Mempool::limit_size`] and [`Mempool::snapshot`]; most pool views
    /// (miner hubs, relays) never call either, so the upkeep is deferred
    /// until the first call that needs it. Derived state only — activating
    /// late yields exactly the indexes incremental upkeep would have.
    index_active: bool,
    total_vsize: u64,
    next_sequence: u64,
}

impl Mempool {
    /// Creates an empty pool with the given policy.
    pub fn new(policy: MempoolPolicy) -> Mempool {
        Mempool { policy, ..Mempool::default() }
    }

    /// The acceptance policy.
    pub fn policy(&self) -> &MempoolPolicy {
        &self.policy
    }

    /// Number of resident transactions.
    pub fn len(&self) -> usize {
        self.lookup.len()
    }

    /// True when the pool is empty.
    pub fn is_empty(&self) -> bool {
        self.lookup.is_empty()
    }

    /// Aggregate virtual size of all residents, in vbytes — the paper's
    /// "Mempool size" congestion signal.
    pub fn total_vsize(&self) -> u64 {
        self.total_vsize
    }

    /// The live entry at slab index `h` (panics on a dead handle).
    fn slot(&self, h: u32) -> &MempoolEntry {
        self.slots[h as usize].as_ref().expect("live handle")
    }

    fn slot_mut(&mut self, h: u32) -> &mut MempoolEntry {
        self.slots[h as usize].as_mut().expect("live handle")
    }

    fn handle(&self, txid: &Txid) -> Option<u32> {
        self.lookup.get(txid).copied()
    }

    /// Looks up a resident entry.
    pub fn get(&self, txid: &Txid) -> Option<&MempoolEntry> {
        self.handle(txid).map(|h| self.slot(h))
    }

    /// True when `txid` is resident.
    pub fn contains(&self, txid: &Txid) -> bool {
        self.lookup.contains_key(txid)
    }

    /// The slab handle `txid` was interned at, if resident.
    pub fn handle_of(&self, txid: &Txid) -> Option<TxHandle> {
        self.handle(txid).map(TxHandle)
    }

    /// The entry behind a live handle.
    pub fn entry_at(&self, h: TxHandle) -> &MempoolEntry {
        self.slot(h.0)
    }

    /// Slab capacity (one past the largest handle index ever issued) —
    /// the size handle-indexed scratch arrays need.
    pub fn slot_count(&self) -> usize {
        self.slots.len()
    }

    /// Direct resident parents of a live handle.
    pub fn parent_handles(&self, h: TxHandle) -> impl Iterator<Item = TxHandle> + '_ {
        self.slot(h.0).parents.iter().map(|&p| TxHandle(p))
    }

    /// Direct resident children of a live handle.
    pub fn child_handles(&self, h: TxHandle) -> impl Iterator<Item = TxHandle> + '_ {
        self.slot(h.0).children.iter().map(|&c| TxHandle(c))
    }

    /// The maintained ancestor-score index, worst-first (reverse it for
    /// the assembler's best-first order).
    pub fn anc_score_iter(&self) -> impl DoubleEndedIterator<Item = &AncKey> + '_ {
        self.anc_index.iter()
    }

    /// Smallest resident transaction weight.
    ///
    /// One dense slab scan per call (weights are cached on the
    /// transaction, so each slot is a pointer chase, not a recompute).
    /// The assembler asks once per template — tens of scans per simulated
    /// hour — which is far cheaper than the sorted multiset this used to
    /// maintain across every admission and eviction on the hot path.
    pub fn min_tx_weight(&self) -> Option<u64> {
        self.slots.iter().flatten().map(|e| e.tx().weight()).min()
    }

    /// Attempts to admit `tx` with externally computed `fee` at time `now`.
    pub fn add(&mut self, tx: Transaction, fee: Amount, now: Timestamp) -> Result<Txid, AcceptError> {
        self.add_shared(Arc::new(tx), fee, now)
    }

    /// Like [`Mempool::add`], but takes a shared transaction handle so
    /// several node views can admit the same transaction without copying it.
    pub fn add_shared(
        &mut self,
        tx: Arc<Transaction>,
        fee: Amount,
        now: Timestamp,
    ) -> Result<Txid, AcceptError> {
        let pre = AdmissionPrecheck::of(&tx, fee);
        self.add_prechecked(tx, fee, now, &pre)
    }

    /// Like [`Mempool::add_shared`], but consumes a shared
    /// [`AdmissionPrecheck`]: the node-independent admission prefix (txid,
    /// vsize, standalone rate, distinct prevout txids) computed once per
    /// transaction by the relay layer and reused by every receiving node,
    /// instead of recomputed per (tx, node).
    pub fn add_prechecked(
        &mut self,
        tx: Arc<Transaction>,
        fee: Amount,
        now: Timestamp,
        pre: &AdmissionPrecheck,
    ) -> Result<Txid, AcceptError> {
        let txid = pre.txid;
        if self.lookup.contains_key(&txid) {
            return Err(AcceptError::Duplicate);
        }
        let rate = pre.rate;
        if let Some(floor) = self.policy.min_fee_rate {
            if rate < floor {
                return Err(AcceptError::BelowMinFeeRate { offered: rate, floor });
            }
        }
        for input in tx.inputs() {
            if let Some(&existing) = self.spent.get(&input.prevout) {
                return Err(AcceptError::Conflict {
                    outpoint: input.prevout,
                    existing: self.slot(existing).txid(),
                });
            }
        }
        // Package limits against in-pool ancestors. The resident subset of
        // the precheck's distinct prevout txids, in precheck order, is
        // exactly the parent set the per-input scan used to rebuild.
        let mut parents: Vec<u32> = Vec::with_capacity(pre.parent_txids.len());
        for ptxid in &pre.parent_txids {
            if let Some(&p) = self.lookup.get(ptxid) {
                parents.push(p);
            }
        }
        let ancestors: Vec<u32> = if parents.is_empty() {
            Vec::new()
        } else {
            self.closure_including(&parents, Link::Parents)
        };
        if !parents.is_empty() {
            if ancestors.len() >= self.policy.max_ancestors {
                return Err(AcceptError::TooManyAncestors);
            }
            for &ancestor in &ancestors {
                // O(1) via the maintained descendant-package cardinality:
                // desc_count counts the ancestor plus its descendants, the
                // same quantity the closure walk here used to recount.
                if self.slot(ancestor).desc_count as usize >= self.policy.max_descendants {
                    return Err(AcceptError::TooManyDescendants);
                }
            }
        }

        let sequence = self.next_sequence;
        self.next_sequence += 1;
        let has_parent = !parents.is_empty();
        let vsize = pre.vsize;
        self.total_vsize += vsize;

        let mut entry = MempoolEntry::new(tx, fee, now, sequence);
        entry.parents = parents;
        let h = match self.free.pop() {
            Some(h) => {
                self.slots[h as usize] = Some(entry);
                h
            }
            None => {
                self.slots.push(Some(entry));
                (self.slots.len() - 1) as u32
            }
        };
        self.lookup.insert(txid, h);
        for input in self.slots[h as usize].as_ref().expect("just interned").tx().inputs() {
            self.spent.insert(input.prevout, h);
        }
        for i in 0..self.slot(h).parents.len() {
            let p = self.slot(h).parents[i];
            self.slot_mut(p).children.push(h);
        }
        // P2P paths can deliver a child before its parent; if any resident
        // transaction already spends one of this transaction's outputs,
        // reconstruct the parent→child edge now.
        let mut reconnected = false;
        let out_count = self.slot(h).tx().outputs().len() as u32;
        for vout in 0..out_count {
            let Some(&c) = self.spent.get(&OutPoint::new(txid, vout)) else { continue };
            if !self.slot(h).children.contains(&c) {
                self.slot_mut(h).children.push(c);
            }
            self.slot_mut(c).parents.push(h);
            reconnected = true;
        }
        if self.index_active {
            self.by_desc_rate.insert((FeeRate::from_fee_and_vsize(fee, vsize), txid));
            self.rows.insert(
                txid,
                SnapshotEntry {
                    txid,
                    received: now,
                    fee,
                    vsize,
                    has_unconfirmed_parent: has_parent,
                },
            );
            self.snapshot_cache = None;
        }
        if reconnected {
            // Rare out-of-order arrival: the new transaction gained resident
            // descendants, so the incremental deltas below don't apply.
            // Recompute the affected neighbourhood from the graph.
            self.rescore_around(h);
        } else {
            let fee_sat = fee.to_sat();
            let mut anc_fee = fee_sat;
            let mut anc_vsize = vsize;
            for &a in &ancestors {
                let e = self.slot(a);
                anc_fee += e.fee().to_sat();
                anc_vsize += e.vsize();
            }
            self.insert_anc_score(h, anc_fee, anc_vsize);
            for &a in &ancestors {
                self.shift_desc_score(a, fee_sat as i128, vsize as i128, 1);
            }
        }
        Ok(txid)
    }

    /// The ancestor-score index key currently stored for the entry at `h`.
    fn anc_key(entry: &MempoolEntry, h: u32) -> AncKey {
        AncKey {
            approx: AncKey::approx_rate(entry.anc_fee, entry.anc_vsize),
            fee: entry.anc_fee,
            vsize: entry.anc_vsize,
            seq: entry.sequence(),
            txid: entry.txid(),
            handle: TxHandle(h),
        }
    }

    /// Sets the entry's ancestor-package totals and re-keys the score
    /// index. Also the insertion path: removing a key that was never
    /// indexed is a no-op, so fresh entries land here too.
    fn set_anc_score(&mut self, h: u32, fee_sat: u64, vsize: u64) {
        let Some(entry) = self.slots[h as usize].as_mut() else { return };
        let old = Self::anc_key(entry, h);
        entry.anc_fee = fee_sat;
        entry.anc_vsize = vsize;
        let new = Self::anc_key(entry, h);
        if new != old {
            self.anc_index.remove(&old);
        }
        self.anc_index.insert(new);
    }

    /// Insertion-only [`Mempool::set_anc_score`] for an entry that was
    /// never indexed: skips the old-key removal probe, which is a full
    /// tree descent for a key that cannot be present. Admission is the
    /// hottest caller and always inserts fresh entries, so the saved
    /// probe is once per accepted transaction per node.
    fn insert_anc_score(&mut self, h: u32, fee_sat: u64, vsize: u64) {
        let Some(entry) = self.slots[h as usize].as_mut() else { return };
        entry.anc_fee = fee_sat;
        entry.anc_vsize = vsize;
        self.anc_index.insert(Self::anc_key(entry, h));
    }

    /// The descendant-package index key currently stored for `txid`.
    fn desc_key(entry: &MempoolEntry, txid: Txid) -> (FeeRate, Txid) {
        (FeeRate::from_fee_and_vsize(Amount::from_sat(entry.desc_fee), entry.desc_vsize), txid)
    }

    /// Applies a delta to the descendant-package totals (and cardinality)
    /// at `h`, re-keying the eviction index.
    fn shift_desc_score(&mut self, h: u32, dfee: i128, dvsize: i128, dcount: i64) {
        let index_active = self.index_active;
        let Some(entry) = self.slots[h as usize].as_mut() else { return };
        let txid = entry.txid();
        let old_key = Self::desc_key(entry, txid);
        entry.desc_fee = (entry.desc_fee as i128 + dfee).max(0) as u64;
        entry.desc_vsize = (entry.desc_vsize as i128 + dvsize).max(0) as u64;
        entry.desc_count = (entry.desc_count as i64 + dcount).max(0) as u32;
        let new_key = Self::desc_key(entry, txid);
        if index_active && new_key != old_key {
            self.by_desc_rate.remove(&old_key);
            self.by_desc_rate.insert(new_key);
        }
    }

    /// Recomputes the descendant-package totals at `h` from the graph and
    /// re-keys the eviction index.
    fn recompute_desc_score(&mut self, h: u32) {
        let (fee, vsize, count) = self.compute_descendant_package_counted_h(h);
        let index_active = self.index_active;
        let Some(entry) = self.slots[h as usize].as_mut() else { return };
        let txid = entry.txid();
        let old_key = Self::desc_key(entry, txid);
        entry.desc_fee = fee.to_sat();
        entry.desc_vsize = vsize;
        entry.desc_count = count;
        let new_key = Self::desc_key(entry, txid);
        if index_active && new_key != old_key {
            self.by_desc_rate.remove(&old_key);
            self.by_desc_rate.insert(new_key);
        }
    }

    /// Recomputes the cached package scores around `h` from the graph:
    /// ancestor scores for the entry and its descendants, descendant scores
    /// for the entry and its ancestors, and parent flags for its children.
    /// Only needed on the rare child-before-parent reconnect.
    fn rescore_around(&mut self, h: u32) {
        let mut down = self.descendants_h(h);
        down.push(h);
        for d in down {
            let (fee, vsize) = self.compute_ancestor_package_h(d);
            self.set_anc_score(d, fee.to_sat(), vsize);
        }
        let mut up = self.ancestors_h(h);
        up.push(h);
        for a in up {
            self.recompute_desc_score(a);
        }
        if self.index_active {
            let kids: Vec<Txid> =
                self.slot(h).children.iter().map(|&c| self.slot(c).txid()).collect();
            for c in kids {
                if let Some(row) = self.rows.get_mut(&c) {
                    if !row.has_unconfirmed_parent {
                        row.has_unconfirmed_parent = true;
                        self.snapshot_cache = None;
                    }
                }
            }
        }
    }

    /// Removes one transaction (no descendant handling); returns the entry.
    /// Package scores of survivors are the *caller's* responsibility — see
    /// [`Mempool::remove_confirmed`] and [`Mempool::remove_with_descendants`].
    fn remove_single_h(&mut self, h: u32) -> Option<MempoolEntry> {
        let entry = self.slots[h as usize].take()?;
        let txid = entry.txid();
        self.lookup.remove(&txid);
        self.free.push(h);
        self.anc_index.remove(&Self::anc_key(&entry, h));
        if self.index_active {
            self.by_desc_rate.remove(&Self::desc_key(&entry, txid));
            self.rows.remove(&txid);
            self.snapshot_cache = None;
        }
        self.total_vsize -= entry.vsize();
        for input in entry.tx().inputs() {
            self.spent.remove(&input.prevout);
        }
        for &p in &entry.parents {
            if let Some(pe) = self.slots[p as usize].as_mut() {
                pe.children.retain(|&c| c != h);
            }
        }
        // Direct children lost a resident parent; drop the edge and
        // refresh their CPFP flag.
        for &c in &entry.children {
            let flag = match self.slots[c as usize].as_mut() {
                Some(ce) => {
                    ce.parents.retain(|&p| p != h);
                    !ce.parents.is_empty()
                }
                None => continue,
            };
            if self.index_active {
                let child_txid = self.slot(c).txid();
                if let Some(row) = self.rows.get_mut(&child_txid) {
                    row.has_unconfirmed_parent = flag;
                }
            }
        }
        Some(entry)
    }

    /// Removes `txid` and every in-pool descendant (used when a transaction
    /// is evicted or conflicted away — its children can no longer be mined).
    pub fn remove_with_descendants(&mut self, txid: &Txid) -> Vec<MempoolEntry> {
        let Some(h) = self.handle(txid) else { return Vec::new() };
        let mut order = self.descendants_h(h);
        order.push(h);
        // The whole subtree leaves together, so no survivor loses an
        // ancestor (a survivor descending from a removed tx would itself be
        // in the subtree). Survivors that are ancestors of removed members
        // shed them from their descendant packages; subtract each removed
        // member from its out-of-subtree ancestors before edges disappear.
        for &r in &order {
            let (fee, vsize) = {
                let e = self.slot(r);
                (e.fee().to_sat(), e.vsize())
            };
            for a in self.ancestors_h(r) {
                if !order.contains(&a) {
                    self.shift_desc_score(a, -(fee as i128), -(vsize as i128), -1);
                }
            }
        }
        let mut removed = Vec::with_capacity(order.len());
        for t in order {
            if let Some(e) = self.remove_single_h(t) {
                removed.push(e);
            }
        }
        removed
    }

    /// Connects a block: removes confirmed transactions and evicts any pool
    /// transaction (plus descendants) that conflicts with a confirmed spend.
    /// Returns `(confirmed_count, conflicted_count)`.
    ///
    /// Batched: the whole resident confirmed set leaves first, then each
    /// surviving neighbour is rescored exactly once — when a CPFP package
    /// confirms together, the per-member interleaved removal used to rescore
    /// the same survivors once per confirmed member. A valid block cannot
    /// confirm a descendant of a transaction it conflicts out (the
    /// descendant's input would be unspendable), so deferring the conflict
    /// scan behind the batched confirm leaves the final pool state — and
    /// both counts — exactly what the interleaved order produced.
    pub fn apply_block(&mut self, block: &Block) -> (usize, usize) {
        let confirmed_h: Vec<u32> =
            block.body().iter().filter_map(|tx| self.handle(&tx.txid())).collect();
        let confirmed = confirmed_h.len();
        if confirmed > 0 {
            // Survivors below a confirmed member lose it from their ancestor
            // package; survivors above one (only on out-of-order arrivals —
            // valid blocks confirm parents first) shed it from their
            // descendant package.
            let mut touched_down: Vec<u32> = Vec::new();
            let mut touched_up: Vec<u32> = Vec::new();
            for &h in &confirmed_h {
                touched_down.extend(self.descendants_h(h));
                if !self.slot(h).parents.is_empty() {
                    touched_up.extend(self.ancestors_h(h));
                }
            }
            for &h in &confirmed_h {
                self.remove_single_h(h);
            }
            // No admissions happen mid-connect, so freed slots stay empty:
            // a dead handle here is a confirmed member, not a recycled slot.
            touched_down.sort_unstable();
            touched_down.dedup();
            for d in touched_down {
                if self.slots[d as usize].is_some() {
                    let (fee, vsize) = self.compute_ancestor_package_h(d);
                    self.set_anc_score(d, fee.to_sat(), vsize);
                }
            }
            touched_up.sort_unstable();
            touched_up.dedup();
            for a in touched_up {
                if self.slots[a as usize].is_some() {
                    self.recompute_desc_score(a);
                }
            }
        }
        // A confirmed spend of an outpoint invalidates any other pool
        // transaction spending it.
        let mut conflicted = 0;
        for tx in block.body() {
            let txid = tx.txid();
            for input in tx.inputs() {
                if let Some(&rival) = self.spent.get(&input.prevout) {
                    let rival_txid = self.slot(rival).txid();
                    if rival_txid != txid {
                        conflicted += self.remove_with_descendants(&rival_txid).len();
                    }
                }
            }
        }
        (confirmed, conflicted)
    }

    /// Handle-level ancestor closure of `seeds` *including* the seeds
    /// (for [`Link::Parents`]) — the shape admission's package-limit check
    /// wants. Linear-scan dedup: package limits cap these sets at 25.
    fn closure_including(&self, seeds: &[u32], link: Link) -> Vec<u32> {
        let mut out: Vec<u32> = Vec::new();
        let mut stack: Vec<u32> = seeds.to_vec();
        while let Some(t) = stack.pop() {
            if out.contains(&t) {
                continue;
            }
            out.push(t);
            let entry = self.slot(t);
            let next = match link {
                Link::Parents => &entry.parents,
                Link::Children => &entry.children,
            };
            stack.extend_from_slice(next);
        }
        out
    }

    /// All in-pool ancestor handles of `h` (excluding itself).
    fn ancestors_h(&self, h: u32) -> Vec<u32> {
        self.closure_including(&self.slot(h).parents.clone(), Link::Parents)
    }

    /// All in-pool descendant handles of `h` (excluding itself).
    fn descendants_h(&self, h: u32) -> Vec<u32> {
        self.closure_including(&self.slot(h).children.clone(), Link::Children)
    }

    /// All in-pool ancestors of `txid` (excluding itself).
    pub fn ancestors(&self, txid: &Txid) -> Vec<Txid> {
        match self.handle(txid) {
            Some(h) => self.ancestors_h(h).into_iter().map(|a| self.slot(a).txid()).collect(),
            None => Vec::new(),
        }
    }

    /// All in-pool descendants of `txid` (excluding itself).
    pub fn descendants(&self, txid: &Txid) -> Vec<Txid> {
        match self.handle(txid) {
            Some(h) => self.descendants_h(h).into_iter().map(|d| self.slot(d).txid()).collect(),
            None => Vec::new(),
        }
    }

    /// Ancestor handles of a live handle (excluding itself).
    pub fn ancestor_handles(&self, h: TxHandle) -> Vec<TxHandle> {
        self.ancestors_h(h.0).into_iter().map(TxHandle).collect()
    }

    /// Descendant handles of a live handle (excluding itself).
    pub fn descendant_handles(&self, h: TxHandle) -> Vec<TxHandle> {
        self.descendants_h(h.0).into_iter().map(TxHandle).collect()
    }

    /// The in-pool transaction currently spending `outpoint`, if any.
    pub fn spender_of(&self, outpoint: &OutPoint) -> Option<Txid> {
        self.spent.get(outpoint).map(|&h| self.slot(h).txid())
    }

    /// The *descendant package score* of `txid`: total fee and vsize of
    /// the transaction plus all its in-pool descendants — the quantity
    /// Bitcoin Core's size-limit eviction ranks by. O(1): the pool keeps
    /// the score current across every add/remove/confirm.
    pub fn descendant_package(&self, txid: &Txid) -> Option<(Amount, u64)> {
        self.get(txid).map(|e| e.descendant_score())
    }

    /// Walk-based descendant-package score and cardinality, for rescoring
    /// fallbacks and index-consistency checks.
    fn compute_descendant_package_counted_h(&self, h: u32) -> (Amount, u64, u32) {
        let entry = self.slot(h);
        let mut fee = entry.fee();
        let mut vsize = entry.vsize();
        let mut count: u32 = 1;
        for d in self.descendants_h(h) {
            let e = self.slot(d);
            fee += e.fee();
            vsize += e.vsize();
            count += 1;
        }
        (fee, vsize, count)
    }

    /// Evicts lowest-value packages until the pool fits in `max_vsize`
    /// virtual bytes — Bitcoin Core's `-maxmempool` behaviour. The victim
    /// each round is the transaction with the lowest descendant-package
    /// fee rate (ties by txid); it leaves together with its descendants.
    /// Returns the evicted txids in eviction order. O(log n) per victim
    /// via the maintained descendant-rate index.
    pub fn limit_size(&mut self, max_vsize: u64) -> Vec<Txid> {
        self.activate_index();
        let mut evicted = Vec::new();
        while self.total_vsize > max_vsize {
            let Some(&(_, victim)) = self.by_desc_rate.iter().next() else { break };
            evicted.extend(self.remove_with_descendants(&victim).iter().map(|e| e.txid()));
        }
        evicted
    }

    /// The CPFP *ancestor package score* of `txid`: total fee and vsize of
    /// the transaction plus all its in-pool ancestors — the quantity
    /// Bitcoin Core's assembler actually ranks by. O(1): the pool keeps
    /// the score current across every add/remove/confirm.
    pub fn ancestor_package(&self, txid: &Txid) -> Option<(Amount, u64)> {
        self.get(txid).map(|e| e.ancestor_score())
    }

    /// Walk-based ancestor-package score, for rescoring fallbacks and
    /// index-consistency checks.
    fn compute_ancestor_package_h(&self, h: u32) -> (Amount, u64) {
        let entry = self.slot(h);
        let mut fee = entry.fee();
        let mut vsize = entry.vsize();
        for a in self.ancestors_h(h) {
            let e = self.slot(a);
            fee += e.fee();
            vsize += e.vsize();
        }
        (fee, vsize)
    }

    /// Builds `by_desc_rate` and `rows` from current entries and switches
    /// on their incremental upkeep. Both indexes are pure functions of the
    /// entry set (descendant scores are always maintained), so a pool that
    /// activates late holds exactly what one active from birth would.
    fn activate_index(&mut self) {
        if self.index_active {
            return;
        }
        self.index_active = true;
        self.by_desc_rate =
            self.iter().map(|e| Self::desc_key(e, e.txid())).collect();
        self.rows = self
            .iter()
            .map(|e| {
                let txid = e.txid();
                (
                    txid,
                    SnapshotEntry {
                        txid,
                        received: e.received(),
                        fee: e.fee(),
                        vsize: e.vsize(),
                        has_unconfirmed_parent: !e.parents.is_empty(),
                    },
                )
            })
            .collect();
        self.snapshot_cache = None;
    }

    /// Direct in-pool children of `txid` (one spending hop, not the full
    /// descendant closure).
    pub fn children_of(&self, txid: &Txid) -> impl Iterator<Item = Txid> + '_ {
        self.handle(txid)
            .into_iter()
            .flat_map(move |h| self.slot(h).children.iter().map(|&c| self.slot(c).txid()))
    }

    /// Whether `txid` has at least one in-pool ancestor (i.e. is the child
    /// part of a potential CPFP package).
    pub fn has_unconfirmed_parent(&self, txid: &Txid) -> bool {
        self.get(txid).map(|e| !e.parents.is_empty()).unwrap_or(false)
    }

    /// Iterates entries from highest to lowest fee rate (FIFO within ties).
    ///
    /// Sorts on demand: the pool no longer maintains a fee-rate index on
    /// the admission path, because the only hot consumer of rate order is
    /// the *top* rate ([`Mempool::top_fee_rate`]) and everything else
    /// (snapshot reports, benches, tests) tolerates an O(n log n) sort at
    /// call time. The order is the old maintained-index order exactly:
    /// rate descending, FIFO (arrival sequence) within equal rates.
    pub fn iter_by_fee_rate_desc(&self) -> impl Iterator<Item = &MempoolEntry> + '_ {
        let mut keys: Vec<RateKey> = self
            .slots
            .iter()
            .enumerate()
            .filter_map(|(h, s)| {
                s.as_ref().map(|e| (e.fee_rate(), Reverse(e.sequence()), h as u32))
            })
            .collect();
        keys.sort_unstable_by(|a, b| b.cmp(a));
        keys.into_iter().map(move |(_, _, h)| self.slot(h))
    }

    /// The highest resident fee rate — the acceleration quote anchor.
    /// One dense scan; called per quote, not per admission.
    pub fn top_fee_rate(&self) -> Option<FeeRate> {
        self.slots.iter().flatten().map(|e| e.fee_rate()).max()
    }

    /// Iterates all entries in slab order (deterministic, not sorted).
    pub fn iter(&self) -> impl Iterator<Item = &MempoolEntry> + '_ {
        self.slots.iter().filter_map(|s| s.as_ref())
    }

    /// Evicts entries older than `max_age` at time `now` (Bitcoin Core's
    /// two-week expiry, configurable). Descendants of an evicted entry are
    /// evicted with it. Returns evicted txids.
    pub fn evict_expired(&mut self, now: Timestamp, max_age: u64) -> Vec<Txid> {
        let expired: Vec<Txid> = self
            .iter()
            .filter(|e| now.saturating_sub(e.received()) > max_age)
            .map(|e| e.txid())
            .collect();
        let mut evicted = Vec::new();
        for txid in expired {
            if self.contains(&txid) {
                evicted.extend(self.remove_with_descendants(&txid).iter().map(|e| e.txid()));
            }
        }
        evicted
    }

    /// Records the pool's full state at `now` — one paper-style dataset
    /// row with per-transaction entries. The rows are kept live (sorted,
    /// CPFP-flagged) by the pool, so this is a single shared-storage copy;
    /// consecutive snapshots of an unchanged pool share one allocation.
    pub fn snapshot(&mut self, now: Timestamp) -> MempoolSnapshot {
        self.activate_index();
        let rows = match &self.snapshot_cache {
            Some(cached) => Arc::clone(cached),
            None => {
                let rows: Arc<Vec<SnapshotEntry>> =
                    Arc::new(self.rows.values().copied().collect());
                self.snapshot_cache = Some(Arc::clone(&rows));
                rows
            }
        };
        MempoolSnapshot::from_shared(now, rows, self.total_vsize)
    }

    /// Records only the pool's aggregate state at `now` (count and total
    /// virtual size) — cheap enough for every 15-second tick of a
    /// year-scale run.
    pub fn snapshot_light(&self, now: Timestamp) -> MempoolSnapshot {
        MempoolSnapshot::light(now, self.len(), self.total_vsize)
    }
}

/// Which adjacency direction a closure walk follows.
#[derive(Clone, Copy)]
enum Link {
    Parents,
    Children,
}

#[cfg(test)]
mod tests {
    use super::*;
    use cn_chain::{Address, TxOut};

    fn tx_with(seed: u8, vout: u32, out_sats: u64) -> Transaction {
        Transaction::builder()
            .add_input_with_sizes([seed; 32].into(), vout, 107, 0)
            .add_output(TxOut::to_address(Amount::from_sat(out_sats), Address::from_label("r")))
            .build()
    }

    fn child_of(parent: &Transaction, out_sats: u64) -> Transaction {
        Transaction::builder()
            .add_input_with_sizes(parent.txid(), 0, 107, 0)
            .add_output(TxOut::to_address(Amount::from_sat(out_sats), Address::from_label("c")))
            .build()
    }

    fn pool() -> Mempool {
        Mempool::new(MempoolPolicy::default())
    }

    /// The ancestor-score index must always hold exactly one key per
    /// resident, at the entry's current (anc_fee, anc_vsize, seq), and the
    /// cached descendant-package cardinality must match the graph.
    fn assert_anc_index_consistent(p: &Mempool) {
        assert_eq!(p.anc_index.len(), p.len(), "one key per resident");
        for key in &p.anc_index {
            let e = p.get(&key.txid).expect("indexed txs are resident");
            assert_eq!((key.fee, key.vsize), (e.anc_fee, e.anc_vsize), "key matches entry");
            assert_eq!(key.seq, e.sequence());
            let (fee, vsize) = p.compute_ancestor_package_h(key.handle.0);
            assert_eq!((key.fee, key.vsize), (fee.to_sat(), vsize), "key matches the graph");
            assert_eq!(
                e.descendant_count() as usize,
                p.descendants_h(key.handle.0).len() + 1,
                "desc_count matches the graph"
            );
        }
    }

    #[test]
    fn add_and_lookup() {
        let mut p = pool();
        let t = tx_with(1, 0, 1_000);
        let vsize = t.vsize();
        let txid = p.add(t, Amount::from_sat(2_000), 10).expect("accepted");
        assert!(p.contains(&txid));
        assert_eq!(p.len(), 1);
        assert_eq!(p.total_vsize(), vsize);
        assert_eq!(p.get(&txid).expect("resident").received(), 10);
        assert_eq!(p.handle_of(&txid).map(|h| h.index()), Some(0));
        assert_anc_index_consistent(&p);
    }

    #[test]
    fn duplicate_rejected() {
        let mut p = pool();
        let t = tx_with(1, 0, 1_000);
        p.add(t.clone(), Amount::from_sat(2_000), 0).expect("first");
        assert_eq!(p.add(t, Amount::from_sat(2_000), 1), Err(AcceptError::Duplicate));
    }

    #[test]
    fn relay_floor_enforced_and_disableable() {
        let t = tx_with(1, 0, 1_000);
        let mut strict = pool();
        assert!(matches!(
            strict.add(t.clone(), Amount::from_sat(10), 0),
            Err(AcceptError::BelowMinFeeRate { .. })
        ));
        let mut lax = Mempool::new(MempoolPolicy::accept_all());
        assert!(lax.add(t, Amount::ZERO, 0).is_ok());
    }

    #[test]
    fn conflicting_spend_rejected() {
        let mut p = pool();
        let a = tx_with(1, 0, 1_000);
        let b = Transaction::builder()
            .add_input_with_sizes([1; 32].into(), 0, 108, 0) // same prevout, different tx
            .add_output(TxOut::to_address(Amount::from_sat(900), Address::from_label("x")))
            .build();
        p.add(a.clone(), Amount::from_sat(2_000), 0).expect("first");
        let err = p.add(b, Amount::from_sat(3_000), 1).expect_err("conflict");
        assert!(matches!(err, AcceptError::Conflict { existing, .. } if existing == a.txid()));
    }

    #[test]
    fn fee_rate_iteration_descending_with_fifo_ties() {
        let mut p = pool();
        let low = tx_with(1, 0, 1_000);
        let high = tx_with(2, 0, 1_000);
        let mid_first = tx_with(3, 0, 1_000);
        let mid_second = tx_with(4, 0, 1_000);
        // All four txs have identical vsize, so fees order the rates.
        let vs = low.vsize();
        p.add(low.clone(), Amount::from_sat(vs * 2), 0).expect("ok");
        p.add(mid_first.clone(), Amount::from_sat(vs * 5), 1).expect("ok");
        p.add(high.clone(), Amount::from_sat(vs * 9), 2).expect("ok");
        p.add(mid_second.clone(), Amount::from_sat(vs * 5), 3).expect("ok");
        let order: Vec<Txid> = p.iter_by_fee_rate_desc().map(|e| e.txid()).collect();
        assert_eq!(order, vec![high.txid(), mid_first.txid(), mid_second.txid(), low.txid()]);
    }

    #[test]
    fn ancestors_and_descendants_tracked() {
        let mut p = pool();
        let parent = tx_with(1, 0, 50_000);
        let child = child_of(&parent, 40_000);
        let grandchild = child_of(&child, 30_000);
        p.add(parent.clone(), Amount::from_sat(1_000), 0).expect("ok");
        p.add(child.clone(), Amount::from_sat(5_000), 1).expect("ok");
        p.add(grandchild.clone(), Amount::from_sat(5_000), 2).expect("ok");

        let mut anc = p.ancestors(&grandchild.txid());
        anc.sort();
        let mut expect = vec![parent.txid(), child.txid()];
        expect.sort();
        assert_eq!(anc, expect);

        let mut desc = p.descendants(&parent.txid());
        desc.sort();
        let mut expect = vec![child.txid(), grandchild.txid()];
        expect.sort();
        assert_eq!(desc, expect);

        assert!(p.has_unconfirmed_parent(&child.txid()));
        assert!(!p.has_unconfirmed_parent(&parent.txid()));
        assert_anc_index_consistent(&p);
    }

    #[test]
    fn ancestor_package_scores_cpfp() {
        // accept_all so the deliberately underpriced parent gets in.
        let mut p = Mempool::new(MempoolPolicy::accept_all());
        let parent = tx_with(1, 0, 50_000);
        let child = child_of(&parent, 40_000);
        let (pv, cv) = (parent.vsize(), child.vsize());
        p.add(parent.clone(), Amount::from_sat(100), 0).expect("low-fee parent");
        p.add(child.clone(), Amount::from_sat(9_000), 1).expect("high-fee child");
        let (fee, vsize) = p.ancestor_package(&child.txid()).expect("resident");
        assert_eq!(fee, Amount::from_sat(9_100));
        assert_eq!(vsize, pv + cv);
        // Parent alone scores only itself.
        let (fee, vsize) = p.ancestor_package(&parent.txid()).expect("resident");
        assert_eq!(fee, Amount::from_sat(100));
        assert_eq!(vsize, pv);
        assert_anc_index_consistent(&p);
    }

    #[test]
    fn apply_block_confirms_and_evicts_conflicts() {
        let mut p = pool();
        let confirmed = tx_with(1, 0, 1_000);
        let rival = Transaction::builder()
            .add_input_with_sizes([2; 32].into(), 0, 107, 0)
            .add_output(TxOut::to_address(Amount::from_sat(800), Address::from_label("x")))
            .build();
        let rival_child = child_of(&rival, 500);
        p.add(confirmed.clone(), Amount::from_sat(2_000), 0).expect("ok");
        p.add(rival.clone(), Amount::from_sat(2_000), 0).expect("ok");
        p.add(rival_child.clone(), Amount::from_sat(2_000), 0).expect("ok");

        // The block confirms `confirmed` plus a tx double-spending `rival`'s input.
        let winner = Transaction::builder()
            .add_input_with_sizes([2; 32].into(), 0, 108, 0)
            .add_output(TxOut::to_address(Amount::from_sat(700), Address::from_label("w")))
            .build();
        let cb = cn_chain::CoinbaseBuilder::new(1)
            .reward(Address::from_label("pool"), Amount::from_btc(6))
            .build();
        let block = cn_chain::Block::assemble(
            2,
            cn_chain::BlockHash::ZERO,
            0,
            0,
            cb,
            vec![confirmed.clone(), winner],
        );
        let (confirmed_n, conflicted_n) = p.apply_block(&block);
        assert_eq!(confirmed_n, 1);
        assert_eq!(conflicted_n, 2); // rival + its child
        assert!(p.is_empty());
        assert_anc_index_consistent(&p);
    }

    #[test]
    fn remove_with_descendants_cleans_indexes() {
        let mut p = pool();
        let parent = tx_with(1, 0, 50_000);
        let child = child_of(&parent, 40_000);
        p.add(parent.clone(), Amount::from_sat(1_000), 0).expect("ok");
        p.add(child.clone(), Amount::from_sat(1_000), 0).expect("ok");
        let removed = p.remove_with_descendants(&parent.txid());
        assert_eq!(removed.len(), 2);
        assert!(p.is_empty());
        assert_eq!(p.total_vsize(), 0);
        assert_eq!(p.iter_by_fee_rate_desc().count(), 0);
        assert_eq!(p.min_tx_weight(), None);
        // Re-adding after removal works (spent index was cleaned).
        assert!(p.add(parent, Amount::from_sat(1_000), 1).is_ok());
        assert_anc_index_consistent(&p);
    }

    #[test]
    fn ancestor_limit_enforced() {
        let mut p = Mempool::new(MempoolPolicy {
            max_ancestors: 2,
            ..MempoolPolicy::default()
        });
        let t0 = tx_with(1, 0, 90_000);
        let t1 = child_of(&t0, 80_000);
        let t2 = child_of(&t1, 70_000);
        p.add(t0, Amount::from_sat(1_000), 0).expect("ok");
        p.add(t1, Amount::from_sat(1_000), 0).expect("ok");
        assert_eq!(p.add(t2, Amount::from_sat(1_000), 0), Err(AcceptError::TooManyAncestors));
    }

    #[test]
    fn descendant_limit_enforced() {
        let mut p = Mempool::new(MempoolPolicy {
            max_descendants: 2,
            ..MempoolPolicy::default()
        });
        // One parent with two outputs; attach children until refused.
        let parent = Transaction::builder()
            .add_input_with_sizes([7; 32].into(), 0, 107, 0)
            .add_output(TxOut::to_address(Amount::from_sat(50_000), Address::from_label("a")))
            .add_output(TxOut::to_address(Amount::from_sat(50_000), Address::from_label("b")))
            .build();
        let c0 = Transaction::builder()
            .add_input_with_sizes(parent.txid(), 0, 107, 0)
            .add_output(TxOut::to_address(Amount::from_sat(40_000), Address::from_label("c")))
            .build();
        let c1 = Transaction::builder()
            .add_input_with_sizes(parent.txid(), 1, 107, 0)
            .add_output(TxOut::to_address(Amount::from_sat(40_000), Address::from_label("d")))
            .build();
        p.add(parent, Amount::from_sat(1_000), 0).expect("ok");
        p.add(c0, Amount::from_sat(1_000), 0).expect("ok");
        assert_eq!(p.add(c1, Amount::from_sat(1_000), 0), Err(AcceptError::TooManyDescendants));
    }

    #[test]
    fn expiry_evicts_old_entries_with_children() {
        let mut p = pool();
        let old = tx_with(1, 0, 50_000);
        let child = child_of(&old, 40_000);
        let fresh = tx_with(2, 0, 1_000);
        p.add(old.clone(), Amount::from_sat(1_000), 0).expect("ok");
        p.add(child.clone(), Amount::from_sat(1_000), 500_000).expect("ok");
        p.add(fresh.clone(), Amount::from_sat(1_000), 1_000_000).expect("ok");
        let evicted = p.evict_expired(1_000_100, 600_000);
        assert_eq!(evicted.len(), 2);
        assert!(p.contains(&fresh.txid()));
        assert!(!p.contains(&old.txid()));
        assert!(!p.contains(&child.txid()));
        assert_anc_index_consistent(&p);
    }

    #[test]
    fn descendant_package_mirrors_ancestor_package() {
        let mut p = Mempool::new(MempoolPolicy::accept_all());
        let parent = tx_with(1, 0, 50_000);
        let child = child_of(&parent, 40_000);
        p.add(parent.clone(), Amount::from_sat(100), 0).expect("ok");
        p.add(child.clone(), Amount::from_sat(9_000), 1).expect("ok");
        let (fee, vsize) = p.descendant_package(&parent.txid()).expect("resident");
        assert_eq!(fee, Amount::from_sat(9_100));
        assert_eq!(vsize, parent.vsize() + child.vsize());
        let (fee, _) = p.descendant_package(&child.txid()).expect("resident");
        assert_eq!(fee, Amount::from_sat(9_000));
    }

    #[test]
    fn limit_size_evicts_worst_packages_first() {
        let mut p = pool();
        let cheap = tx_with(1, 0, 1_000);
        let mid = tx_with(2, 0, 1_000);
        let rich = tx_with(3, 0, 1_000);
        let vs = cheap.vsize();
        p.add(cheap.clone(), Amount::from_sat(vs * 2), 0).expect("ok");
        p.add(mid.clone(), Amount::from_sat(vs * 10), 1).expect("ok");
        p.add(rich.clone(), Amount::from_sat(vs * 50), 2).expect("ok");
        let evicted = p.limit_size(2 * vs);
        assert_eq!(evicted, vec![cheap.txid()]);
        assert!(p.contains(&mid.txid()) && p.contains(&rich.txid()));
        assert!(p.total_vsize() <= 2 * vs);
        // Already under the cap: a second call is a no-op.
        assert!(p.limit_size(2 * vs).is_empty());
    }

    #[test]
    fn limit_size_keeps_cpfp_parent_with_rich_child() {
        let mut p = Mempool::new(MempoolPolicy::accept_all());
        let parent = tx_with(1, 0, 50_000);
        let child = child_of(&parent, 40_000);
        let loner = tx_with(2, 0, 1_000);
        p.add(parent.clone(), Amount::from_sat(100), 0).expect("ok");
        p.add(child.clone(), Amount::from_sat(50_000), 1).expect("ok");
        p.add(loner.clone(), Amount::from_sat(2_000), 2).expect("ok");
        // Descendant-package scoring protects the low-fee parent because
        // its package includes the rich child; the loner goes instead.
        let budget = parent.vsize() + child.vsize();
        let evicted = p.limit_size(budget);
        assert_eq!(evicted, vec![loner.txid()]);
        assert!(p.contains(&parent.txid()) && p.contains(&child.txid()));
    }

    #[test]
    fn snapshot_captures_pool_state() {
        let mut p = pool();
        let parent = tx_with(1, 0, 50_000);
        let child = child_of(&parent, 40_000);
        p.add(parent.clone(), Amount::from_sat(1_000), 5).expect("ok");
        p.add(child.clone(), Amount::from_sat(2_000), 9).expect("ok");
        let snap = p.snapshot(15);
        assert_eq!(snap.time, 15);
        assert_eq!(snap.entries.len(), 2);
        let child_row = snap.entries.iter().find(|e| e.txid == child.txid()).expect("child");
        assert!(child_row.has_unconfirmed_parent);
        assert_eq!(child_row.received, 9);
        let parent_row = snap.entries.iter().find(|e| e.txid == parent.txid()).expect("parent");
        assert!(!parent_row.has_unconfirmed_parent);
        assert_eq!(snap.total_vsize(), parent.vsize() + child.vsize());
    }

    #[test]
    fn handles_recycled_after_removal() {
        let mut p = pool();
        let a = tx_with(1, 0, 1_000);
        let b = tx_with(2, 0, 1_000);
        let a_id = p.add(a, Amount::from_sat(2_000), 0).expect("ok");
        let slot_a = p.handle_of(&a_id).expect("live").index();
        p.remove_with_descendants(&a_id);
        let b_id = p.add(b, Amount::from_sat(2_000), 1).expect("ok");
        assert_eq!(p.handle_of(&b_id).expect("live").index(), slot_a, "slot reused");
        assert_eq!(p.slot_count(), 1);
        assert_anc_index_consistent(&p);
    }

    #[test]
    fn desc_count_tracks_adds_removes_and_reconnect() {
        let mut p = Mempool::new(MempoolPolicy::accept_all());
        let parent = tx_with(1, 0, 50_000);
        let child = child_of(&parent, 40_000);
        let grandchild = child_of(&child, 30_000);
        // Out-of-order arrival: child first, then parent (reconnect path),
        // then grandchild (incremental path).
        p.add(child.clone(), Amount::from_sat(4_000), 0).expect("ok");
        p.add(parent.clone(), Amount::from_sat(300), 1).expect("ok");
        p.add(grandchild.clone(), Amount::from_sat(900), 2).expect("ok");
        assert_eq!(p.get(&parent.txid()).expect("resident").descendant_count(), 3);
        assert_eq!(p.get(&child.txid()).expect("resident").descendant_count(), 2);
        assert_eq!(p.get(&grandchild.txid()).expect("resident").descendant_count(), 1);
        assert_anc_index_consistent(&p);
        // Subtree eviction sheds the removed members from survivors.
        p.remove_with_descendants(&child.txid());
        assert_eq!(p.get(&parent.txid()).expect("resident").descendant_count(), 1);
        assert_anc_index_consistent(&p);
    }

    #[test]
    fn add_prechecked_matches_add_shared() {
        // The same package admitted through both entry points must land in
        // identical pool state, including refusals.
        let mut via_shared = pool();
        let mut via_pre = pool();
        let parent = tx_with(1, 0, 50_000);
        let child = child_of(&parent, 40_000);
        let dup = parent.clone();
        for tx in [parent, child, dup] {
            let fee = Amount::from_sat(tx.vsize() * 3);
            let shared: Arc<Transaction> = tx.into();
            let pre = AdmissionPrecheck::of(&shared, fee);
            let a = via_shared.add_shared(Arc::clone(&shared), fee, 7);
            let b = via_pre.add_prechecked(shared, fee, 7, &pre);
            assert_eq!(a, b);
        }
        assert_eq!(via_shared.len(), via_pre.len());
        let order_a: Vec<Txid> = via_shared.iter_by_fee_rate_desc().map(|e| e.txid()).collect();
        let order_b: Vec<Txid> = via_pre.iter_by_fee_rate_desc().map(|e| e.txid()).collect();
        assert_eq!(order_a, order_b);
        assert_anc_index_consistent(&via_pre);
    }

    #[test]
    fn apply_block_batched_confirm_of_cpfp_package() {
        // A whole parent/child package confirms in one block while an
        // unrelated CPFP pair survives — survivor scores must match the
        // graph after the batched connect.
        let mut p = Mempool::new(MempoolPolicy::accept_all());
        let parent = tx_with(1, 0, 50_000);
        let child = child_of(&parent, 40_000);
        let other = tx_with(2, 0, 50_000);
        let other_child = child_of(&other, 40_000);
        p.add(parent.clone(), Amount::from_sat(100), 0).expect("ok");
        p.add(child.clone(), Amount::from_sat(9_000), 1).expect("ok");
        p.add(other.clone(), Amount::from_sat(200), 2).expect("ok");
        p.add(other_child.clone(), Amount::from_sat(7_000), 3).expect("ok");
        let cb = cn_chain::CoinbaseBuilder::new(1)
            .reward(Address::from_label("pool"), Amount::from_btc(6))
            .build();
        let block = cn_chain::Block::assemble(
            1,
            cn_chain::BlockHash::ZERO,
            0,
            0,
            cb,
            vec![parent.clone(), child.clone()],
        );
        let (confirmed_n, conflicted_n) = p.apply_block(&block);
        assert_eq!((confirmed_n, conflicted_n), (2, 0));
        assert_eq!(p.len(), 2);
        let (fee, _) = p.ancestor_package(&other_child.txid()).expect("resident");
        assert_eq!(fee, Amount::from_sat(7_200));
        assert_eq!(p.get(&other.txid()).expect("resident").descendant_count(), 2);
        assert_anc_index_consistent(&p);
    }

    #[test]
    fn anc_index_tracks_reconnect_and_confirm() {
        // Child delivered before parent (out-of-order reconnect), then the
        // parent is confirmed away — the maintained index must match the
        // graph at every step.
        let mut p = Mempool::new(MempoolPolicy::accept_all());
        let parent = tx_with(9, 0, 50_000);
        let child = child_of(&parent, 40_000);
        p.add(child.clone(), Amount::from_sat(4_000), 0).expect("orphan accepted");
        p.add(parent.clone(), Amount::from_sat(300), 1).expect("parent accepted");
        assert_anc_index_consistent(&p);
        let (fee, _) = p.ancestor_package(&child.txid()).expect("resident");
        assert_eq!(fee, Amount::from_sat(4_300), "reconnect rescored the child");

        let cb = cn_chain::CoinbaseBuilder::new(1)
            .reward(Address::from_label("pool"), Amount::from_btc(6))
            .build();
        let block = cn_chain::Block::assemble(
            1,
            cn_chain::BlockHash::ZERO,
            0,
            0,
            cb,
            vec![parent.clone()],
        );
        p.apply_block(&block);
        assert_anc_index_consistent(&p);
        let (fee, _) = p.ancestor_package(&child.txid()).expect("child survives");
        assert_eq!(fee, Amount::from_sat(4_000), "confirm peeled the parent off");
    }
}
