//! The Mempool proper: indexes, acceptance, package linkage, block connect.

use crate::entry::MempoolEntry;
use crate::policy::MempoolPolicy;
use crate::snapshot::{MempoolSnapshot, SnapshotEntry};
use cn_chain::{Amount, Block, FeeRate, OutPoint, Timestamp, Transaction, Txid};
use std::cmp::Reverse;
use std::sync::Arc;
use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};
use std::fmt;

/// Why a transaction was refused admission.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AcceptError {
    /// Already in the pool.
    Duplicate,
    /// Fee rate below the policy floor (norm III).
    BelowMinFeeRate {
        /// The transaction's fee rate.
        offered: FeeRate,
        /// The policy floor.
        floor: FeeRate,
    },
    /// Spends an outpoint another in-pool transaction already spends.
    Conflict {
        /// The contested outpoint.
        outpoint: OutPoint,
        /// The in-pool transaction spending it.
        existing: Txid,
    },
    /// The in-pool ancestor package would exceed the policy depth limit.
    TooManyAncestors,
    /// An ancestor's descendant set would exceed the policy limit.
    TooManyDescendants,
}

impl fmt::Display for AcceptError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AcceptError::Duplicate => write!(f, "transaction already in mempool"),
            AcceptError::BelowMinFeeRate { offered, floor } => {
                write!(f, "fee rate {offered} below floor {floor}")
            }
            AcceptError::Conflict { outpoint, existing } => {
                write!(f, "conflicts with {existing} over {}:{}", outpoint.txid, outpoint.vout)
            }
            AcceptError::TooManyAncestors => write!(f, "ancestor package too deep"),
            AcceptError::TooManyDescendants => write!(f, "descendant package too large"),
        }
    }
}

impl std::error::Error for AcceptError {}

/// Fee-rate-sorted key: iterating the index in reverse yields highest fee
/// rate first, with FIFO arrival order breaking ties deterministically.
type RateKey = (FeeRate, Reverse<u64>, Txid);

/// A Bitcoin-Core-style memory pool.
///
/// ```
/// use cn_mempool::{Mempool, MempoolPolicy};
/// use cn_chain::{Address, Amount, Transaction, TxOut};
///
/// let mut pool = Mempool::new(MempoolPolicy::default());
/// let tx = Transaction::builder()
///     .add_input_with_sizes([1u8; 32].into(), 0, 107, 0)
///     .add_output(TxOut::to_address(Amount::from_sat(50_000), Address::from_label("r")))
///     .build();
/// let fee = Amount::from_sat(tx.vsize() * 10); // 10 sat/vB
/// let txid = pool.add(tx, fee, 0).expect("above the relay floor");
/// assert!(pool.contains(&txid));
/// assert_eq!(pool.iter_by_fee_rate_desc().next().unwrap().txid(), txid);
/// ```
#[derive(Clone, Debug, Default)]
pub struct Mempool {
    policy: MempoolPolicy,
    entries: HashMap<Txid, MempoolEntry>,
    by_rate: BTreeSet<RateKey>,
    /// In-pool spends, for conflict detection and confirmed-conflict eviction.
    spent: HashMap<OutPoint, Txid>,
    /// Parent txid -> children resident in the pool.
    children: HashMap<Txid, BTreeSet<Txid>>,
    /// Descendant-package fee rate index — the `-maxmempool` eviction order.
    /// Maintained only once [`Mempool::activate_index`] has run.
    by_desc_rate: BTreeSet<(FeeRate, Txid)>,
    /// Live txid-sorted snapshot rows, so a detailed snapshot is one
    /// sort-free copy instead of a per-entry rebuild with ancestry walks.
    /// Maintained only once [`Mempool::activate_index`] has run.
    rows: BTreeMap<Txid, SnapshotEntry>,
    /// Last detailed-row dump, shared until the pool next changes.
    snapshot_cache: Option<Arc<Vec<SnapshotEntry>>>,
    /// Whether `by_desc_rate` and `rows` are live. Both exist only for
    /// [`Mempool::limit_size`] and [`Mempool::snapshot`]; most pool views
    /// (miner hubs, relays) never call either, so the upkeep is deferred
    /// until the first call that needs it. Derived state only — activating
    /// late yields exactly the indexes incremental upkeep would have.
    index_active: bool,
    total_vsize: u64,
    next_sequence: u64,
}

impl Mempool {
    /// Creates an empty pool with the given policy.
    pub fn new(policy: MempoolPolicy) -> Mempool {
        Mempool { policy, ..Mempool::default() }
    }

    /// The acceptance policy.
    pub fn policy(&self) -> &MempoolPolicy {
        &self.policy
    }

    /// Number of resident transactions.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when the pool is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Aggregate virtual size of all residents, in vbytes — the paper's
    /// "Mempool size" congestion signal.
    pub fn total_vsize(&self) -> u64 {
        self.total_vsize
    }

    /// Looks up a resident entry.
    pub fn get(&self, txid: &Txid) -> Option<&MempoolEntry> {
        self.entries.get(txid)
    }

    /// True when `txid` is resident.
    pub fn contains(&self, txid: &Txid) -> bool {
        self.entries.contains_key(txid)
    }

    /// Attempts to admit `tx` with externally computed `fee` at time `now`.
    pub fn add(&mut self, tx: Transaction, fee: Amount, now: Timestamp) -> Result<Txid, AcceptError> {
        self.add_shared(Arc::new(tx), fee, now)
    }

    /// Like [`Mempool::add`], but takes a shared transaction handle so
    /// several node views can admit the same transaction without copying it.
    pub fn add_shared(
        &mut self,
        tx: Arc<Transaction>,
        fee: Amount,
        now: Timestamp,
    ) -> Result<Txid, AcceptError> {
        let txid = tx.txid();
        if self.entries.contains_key(&txid) {
            return Err(AcceptError::Duplicate);
        }
        let rate = FeeRate::from_fee_and_vsize(fee, tx.vsize());
        if let Some(floor) = self.policy.min_fee_rate {
            if rate < floor {
                return Err(AcceptError::BelowMinFeeRate { offered: rate, floor });
            }
        }
        for input in tx.inputs() {
            if let Some(&existing) = self.spent.get(&input.prevout) {
                return Err(AcceptError::Conflict { outpoint: input.prevout, existing });
            }
        }
        // Package limits against in-pool ancestors.
        let parents: BTreeSet<Txid> = tx
            .inputs()
            .iter()
            .map(|i| i.prevout.txid)
            .filter(|t| self.entries.contains_key(t))
            .collect();
        let ancestors: HashSet<Txid> = if parents.is_empty() {
            HashSet::new()
        } else {
            self.collect_ancestors(parents.iter().copied())
        };
        if !parents.is_empty() {
            if ancestors.len() >= self.policy.max_ancestors {
                return Err(AcceptError::TooManyAncestors);
            }
            for ancestor in &ancestors {
                if self.descendants(ancestor).len() + 1 >= self.policy.max_descendants {
                    return Err(AcceptError::TooManyDescendants);
                }
            }
        }

        let sequence = self.next_sequence;
        self.next_sequence += 1;
        for input in tx.inputs() {
            self.spent.insert(input.prevout, txid);
        }
        let has_parent = !parents.is_empty();
        for parent in parents {
            self.children.entry(parent).or_default().insert(txid);
        }
        // P2P paths can deliver a child before its parent; if any resident
        // transaction already spends one of this transaction's outputs,
        // reconstruct the parent→child edge now.
        let mut reconnected = false;
        for vout in 0..tx.outputs().len() as u32 {
            if let Some(&child) = self.spent.get(&OutPoint::new(txid, vout)) {
                self.children.entry(txid).or_default().insert(child);
                reconnected = true;
            }
        }
        let vsize = tx.vsize();
        self.total_vsize += vsize;
        self.by_rate.insert((rate, Reverse(sequence), txid));
        self.entries.insert(txid, MempoolEntry::new(tx, fee, now, sequence));
        if self.index_active {
            self.by_desc_rate.insert((FeeRate::from_fee_and_vsize(fee, vsize), txid));
            self.rows.insert(
                txid,
                SnapshotEntry {
                    txid,
                    received: now,
                    fee,
                    vsize,
                    has_unconfirmed_parent: has_parent,
                },
            );
            self.snapshot_cache = None;
        }
        if reconnected {
            // Rare out-of-order arrival: the new transaction gained resident
            // descendants, so the incremental deltas below don't apply.
            // Recompute the affected neighbourhood from the graph.
            self.rescore_around(&txid);
        } else {
            let fee_sat = fee.to_sat();
            let mut anc_fee = fee_sat;
            let mut anc_vsize = vsize;
            for a in &ancestors {
                let e = self.entries.get(a).expect("ancestors resident");
                anc_fee += e.fee().to_sat();
                anc_vsize += e.vsize();
            }
            let entry = self.entries.get_mut(&txid).expect("just inserted");
            entry.anc_fee = anc_fee;
            entry.anc_vsize = anc_vsize;
            for a in &ancestors {
                self.shift_desc_score(a, fee_sat as i128, vsize as i128);
            }
        }
        Ok(txid)
    }

    /// The descendant-package index key currently stored for `txid`.
    fn desc_key(entry: &MempoolEntry, txid: Txid) -> (FeeRate, Txid) {
        (FeeRate::from_fee_and_vsize(Amount::from_sat(entry.desc_fee), entry.desc_vsize), txid)
    }

    /// Applies a delta to `txid`'s descendant-package totals, re-keying the
    /// eviction index.
    fn shift_desc_score(&mut self, txid: &Txid, dfee: i128, dvsize: i128) {
        let index_active = self.index_active;
        let Some(entry) = self.entries.get_mut(txid) else { return };
        let old_key = Self::desc_key(entry, *txid);
        entry.desc_fee = (entry.desc_fee as i128 + dfee).max(0) as u64;
        entry.desc_vsize = (entry.desc_vsize as i128 + dvsize).max(0) as u64;
        let new_key = Self::desc_key(entry, *txid);
        if index_active && new_key != old_key {
            self.by_desc_rate.remove(&old_key);
            self.by_desc_rate.insert(new_key);
        }
    }

    /// Recomputes the cached package scores around `txid` from the graph:
    /// ancestor scores for `txid` and its descendants, descendant scores
    /// for `txid` and its ancestors, and parent flags for its children.
    /// Only needed on the rare child-before-parent reconnect.
    fn rescore_around(&mut self, txid: &Txid) {
        let mut down = self.descendants(txid);
        down.push(*txid);
        for d in down {
            let (fee, vsize) = self.compute_ancestor_package(&d);
            if let Some(e) = self.entries.get_mut(&d) {
                e.anc_fee = fee.to_sat();
                e.anc_vsize = vsize;
            }
        }
        let mut up = self.ancestors(txid);
        up.push(*txid);
        for a in up {
            let (fee, vsize) = self.compute_descendant_package(&a);
            let index_active = self.index_active;
            let keys = self.entries.get_mut(&a).map(|entry| {
                let old_key = Self::desc_key(entry, a);
                entry.desc_fee = fee.to_sat();
                entry.desc_vsize = vsize;
                (old_key, Self::desc_key(entry, a))
            });
            if let Some((old_key, new_key)) = keys {
                if index_active && new_key != old_key {
                    self.by_desc_rate.remove(&old_key);
                    self.by_desc_rate.insert(new_key);
                }
            }
        }
        if self.index_active {
            let kids: Vec<Txid> =
                self.children.get(txid).map(|s| s.iter().copied().collect()).unwrap_or_default();
            for c in kids {
                if let Some(row) = self.rows.get_mut(&c) {
                    if !row.has_unconfirmed_parent {
                        row.has_unconfirmed_parent = true;
                        self.snapshot_cache = None;
                    }
                }
            }
        }
    }

    /// Removes one transaction (no descendant handling); returns the entry.
    /// Package scores of survivors are the *caller's* responsibility — see
    /// [`Mempool::remove_confirmed`] and [`Mempool::remove_with_descendants`].
    fn remove_single(&mut self, txid: &Txid) -> Option<MempoolEntry> {
        let entry = self.entries.remove(txid)?;
        self.by_rate
            .remove(&(entry.fee_rate(), Reverse(entry.sequence()), *txid));
        if self.index_active {
            self.by_desc_rate.remove(&Self::desc_key(&entry, *txid));
            self.rows.remove(txid);
            self.snapshot_cache = None;
        }
        self.total_vsize -= entry.vsize();
        for input in entry.tx().inputs() {
            self.spent.remove(&input.prevout);
        }
        for input in entry.tx().inputs() {
            if let Some(set) = self.children.get_mut(&input.prevout.txid) {
                set.remove(txid);
                if set.is_empty() {
                    self.children.remove(&input.prevout.txid);
                }
            }
        }
        let kids = self.children.remove(txid);
        // Direct children lost a resident parent; refresh their CPFP flag.
        if self.index_active {
            if let Some(kids) = kids {
                for c in kids {
                    let flag = self
                        .entries
                        .get(&c)
                        .map(|e| {
                            e.tx()
                                .inputs()
                                .iter()
                                .any(|i| self.entries.contains_key(&i.prevout.txid))
                        })
                        .unwrap_or(false);
                    if let Some(row) = self.rows.get_mut(&c) {
                        row.has_unconfirmed_parent = flag;
                    }
                }
            }
        }
        Some(entry)
    }

    /// Removes a transaction confirmed by a block. Valid blocks confirm
    /// parents before children, so the entry normally has no in-pool
    /// ancestors left; its descendants each lose exactly this transaction
    /// from their ancestor package. A defensive fallback recomputes the
    /// neighbourhood if the topological precondition ever fails.
    fn remove_confirmed(&mut self, txid: &Txid) -> Option<MempoolEntry> {
        let entry = self.entries.get(txid)?;
        let fee = entry.fee().to_sat();
        let vsize = entry.vsize();
        let has_ancestor = entry
            .tx()
            .inputs()
            .iter()
            .any(|i| self.entries.contains_key(&i.prevout.txid));
        if !has_ancestor {
            for d in self.descendants(txid) {
                if let Some(e) = self.entries.get_mut(&d) {
                    e.anc_fee = e.anc_fee.saturating_sub(fee);
                    e.anc_vsize = e.anc_vsize.saturating_sub(vsize);
                }
            }
            self.remove_single(txid)
        } else {
            let ancestors = self.ancestors(txid);
            let descendants = self.descendants(txid);
            let removed = self.remove_single(txid);
            for d in descendants {
                let (fee, vsize) = self.compute_ancestor_package(&d);
                if let Some(e) = self.entries.get_mut(&d) {
                    e.anc_fee = fee.to_sat();
                    e.anc_vsize = vsize;
                }
            }
            for a in ancestors {
                let (fee, vsize) = self.compute_descendant_package(&a);
                let index_active = self.index_active;
                let keys = self.entries.get_mut(&a).map(|entry| {
                    let old_key = Self::desc_key(entry, a);
                    entry.desc_fee = fee.to_sat();
                    entry.desc_vsize = vsize;
                    (old_key, Self::desc_key(entry, a))
                });
                if let Some((old_key, new_key)) = keys {
                    if index_active && new_key != old_key {
                        self.by_desc_rate.remove(&old_key);
                        self.by_desc_rate.insert(new_key);
                    }
                }
            }
            removed
        }
    }

    /// Removes `txid` and every in-pool descendant (used when a transaction
    /// is evicted or conflicted away — its children can no longer be mined).
    pub fn remove_with_descendants(&mut self, txid: &Txid) -> Vec<MempoolEntry> {
        let mut order = self.descendants(txid);
        order.push(*txid);
        // The whole subtree leaves together, so no survivor loses an
        // ancestor (a survivor descending from a removed tx would itself be
        // in the subtree). Survivors that are ancestors of removed members
        // shed them from their descendant packages; subtract each removed
        // member from its out-of-subtree ancestors before edges disappear.
        let removal_set: HashSet<Txid> = order.iter().copied().collect();
        for r in &order {
            let Some(e) = self.entries.get(r) else { continue };
            let (fee, vsize) = (e.fee().to_sat(), e.vsize());
            for a in self.ancestors(r) {
                if !removal_set.contains(&a) {
                    self.shift_desc_score(&a, -(fee as i128), -(vsize as i128));
                }
            }
        }
        let mut removed = Vec::with_capacity(order.len());
        for t in order {
            if let Some(e) = self.remove_single(&t) {
                removed.push(e);
            }
        }
        removed
    }

    /// Connects a block: removes confirmed transactions and evicts any pool
    /// transaction (plus descendants) that conflicts with a confirmed spend.
    /// Returns `(confirmed_count, conflicted_count)`.
    pub fn apply_block(&mut self, block: &Block) -> (usize, usize) {
        let mut confirmed = 0;
        let mut conflicted = 0;
        for tx in block.body() {
            let txid = tx.txid();
            if self.remove_confirmed(&txid).is_some() {
                confirmed += 1;
            }
            // A confirmed spend of an outpoint invalidates any other pool
            // transaction spending it.
            for input in tx.inputs() {
                if let Some(&rival) = self.spent.get(&input.prevout) {
                    if rival != txid {
                        conflicted += self.remove_with_descendants(&rival).len();
                    }
                }
            }
        }
        (confirmed, conflicted)
    }

    /// All in-pool ancestors of `txid` (excluding itself).
    pub fn ancestors(&self, txid: &Txid) -> Vec<Txid> {
        let Some(entry) = self.entries.get(txid) else {
            return Vec::new();
        };
        let parents = entry
            .tx()
            .inputs()
            .iter()
            .map(|i| i.prevout.txid)
            .filter(|t| self.entries.contains_key(t));
        self.collect_ancestors(parents).into_iter().collect()
    }

    fn collect_ancestors(&self, seeds: impl Iterator<Item = Txid>) -> HashSet<Txid> {
        let mut seen: HashSet<Txid> = HashSet::new();
        let mut stack: Vec<Txid> = seeds.collect();
        while let Some(t) = stack.pop() {
            if !seen.insert(t) {
                continue;
            }
            if let Some(entry) = self.entries.get(&t) {
                for input in entry.tx().inputs() {
                    let p = input.prevout.txid;
                    if self.entries.contains_key(&p) && !seen.contains(&p) {
                        stack.push(p);
                    }
                }
            }
        }
        seen
    }

    /// All in-pool descendants of `txid` (excluding itself).
    pub fn descendants(&self, txid: &Txid) -> Vec<Txid> {
        let mut seen: HashSet<Txid> = HashSet::new();
        let mut stack: Vec<Txid> = self
            .children
            .get(txid)
            .map(|s| s.iter().copied().collect())
            .unwrap_or_default();
        let mut out = Vec::new();
        while let Some(t) = stack.pop() {
            if !seen.insert(t) {
                continue;
            }
            out.push(t);
            if let Some(kids) = self.children.get(&t) {
                stack.extend(kids.iter().copied());
            }
        }
        out
    }

    /// The in-pool transaction currently spending `outpoint`, if any.
    pub fn spender_of(&self, outpoint: &OutPoint) -> Option<Txid> {
        self.spent.get(outpoint).copied()
    }

    /// The *descendant package score* of `txid`: total fee and vsize of
    /// the transaction plus all its in-pool descendants — the quantity
    /// Bitcoin Core's size-limit eviction ranks by. O(1): the pool keeps
    /// the score current across every add/remove/confirm.
    pub fn descendant_package(&self, txid: &Txid) -> Option<(Amount, u64)> {
        self.entries.get(txid).map(|e| e.descendant_score())
    }

    /// Walk-based descendant-package score, for rescoring fallbacks and
    /// index-consistency checks.
    fn compute_descendant_package(&self, txid: &Txid) -> (Amount, u64) {
        let Some(entry) = self.entries.get(txid) else {
            return (Amount::ZERO, 0);
        };
        let mut fee = entry.fee();
        let mut vsize = entry.vsize();
        for d in self.descendants(txid) {
            let e = self.entries.get(&d).expect("descendants are resident");
            fee += e.fee();
            vsize += e.vsize();
        }
        (fee, vsize)
    }

    /// Evicts lowest-value packages until the pool fits in `max_vsize`
    /// virtual bytes — Bitcoin Core's `-maxmempool` behaviour. The victim
    /// each round is the transaction with the lowest descendant-package
    /// fee rate (ties by txid); it leaves together with its descendants.
    /// Returns the evicted txids in eviction order. O(log n) per victim
    /// via the maintained descendant-rate index.
    pub fn limit_size(&mut self, max_vsize: u64) -> Vec<Txid> {
        self.activate_index();
        let mut evicted = Vec::new();
        while self.total_vsize > max_vsize {
            let Some(&(_, victim)) = self.by_desc_rate.iter().next() else { break };
            evicted.extend(self.remove_with_descendants(&victim).iter().map(|e| e.txid()));
        }
        evicted
    }

    /// The CPFP *ancestor package score* of `txid`: total fee and vsize of
    /// the transaction plus all its in-pool ancestors — the quantity
    /// Bitcoin Core's assembler actually ranks by. O(1): the pool keeps
    /// the score current across every add/remove/confirm.
    pub fn ancestor_package(&self, txid: &Txid) -> Option<(Amount, u64)> {
        self.entries.get(txid).map(|e| e.ancestor_score())
    }

    /// Walk-based ancestor-package score, for rescoring fallbacks and
    /// index-consistency checks.
    fn compute_ancestor_package(&self, txid: &Txid) -> (Amount, u64) {
        let Some(entry) = self.entries.get(txid) else {
            return (Amount::ZERO, 0);
        };
        let mut fee = entry.fee();
        let mut vsize = entry.vsize();
        for a in self.ancestors(txid) {
            let e = self.entries.get(&a).expect("ancestors are resident");
            fee += e.fee();
            vsize += e.vsize();
        }
        (fee, vsize)
    }

    /// Builds `by_desc_rate` and `rows` from current entries and switches
    /// on their incremental upkeep. Both indexes are pure functions of the
    /// entry set (descendant scores are always maintained), so a pool that
    /// activates late holds exactly what one active from birth would.
    fn activate_index(&mut self) {
        if self.index_active {
            return;
        }
        self.index_active = true;
        self.by_desc_rate =
            self.entries.iter().map(|(txid, e)| Self::desc_key(e, *txid)).collect();
        self.rows = self
            .entries
            .values()
            .map(|e| {
                let txid = e.txid();
                let has_parent = e
                    .tx()
                    .inputs()
                    .iter()
                    .any(|i| self.entries.contains_key(&i.prevout.txid));
                (
                    txid,
                    SnapshotEntry {
                        txid,
                        received: e.received(),
                        fee: e.fee(),
                        vsize: e.vsize(),
                        has_unconfirmed_parent: has_parent,
                    },
                )
            })
            .collect();
        self.snapshot_cache = None;
    }

    /// Direct in-pool children of `txid` (one spending hop, not the full
    /// descendant closure).
    pub fn children_of(&self, txid: &Txid) -> impl Iterator<Item = Txid> + '_ {
        self.children.get(txid).into_iter().flat_map(|s| s.iter().copied())
    }

    /// Whether `txid` has at least one in-pool ancestor (i.e. is the child
    /// part of a potential CPFP package).
    pub fn has_unconfirmed_parent(&self, txid: &Txid) -> bool {
        self.entries
            .get(txid)
            .map(|e| {
                e.tx()
                    .inputs()
                    .iter()
                    .any(|i| self.entries.contains_key(&i.prevout.txid))
            })
            .unwrap_or(false)
    }

    /// Iterates entries from highest to lowest fee rate (FIFO within ties).
    pub fn iter_by_fee_rate_desc(&self) -> impl Iterator<Item = &MempoolEntry> + '_ {
        self.by_rate
            .iter()
            .rev()
            .map(move |(_, _, txid)| self.entries.get(txid).expect("index consistent"))
    }

    /// Iterates all entries in arbitrary order.
    pub fn iter(&self) -> impl Iterator<Item = &MempoolEntry> + '_ {
        self.entries.values()
    }

    /// Evicts entries older than `max_age` at time `now` (Bitcoin Core's
    /// two-week expiry, configurable). Descendants of an evicted entry are
    /// evicted with it. Returns evicted txids.
    pub fn evict_expired(&mut self, now: Timestamp, max_age: u64) -> Vec<Txid> {
        let expired: Vec<Txid> = self
            .entries
            .values()
            .filter(|e| now.saturating_sub(e.received()) > max_age)
            .map(|e| e.txid())
            .collect();
        let mut evicted = Vec::new();
        for txid in expired {
            if self.contains(&txid) {
                evicted.extend(self.remove_with_descendants(&txid).iter().map(|e| e.txid()));
            }
        }
        evicted
    }

    /// Records the pool's full state at `now` — one paper-style dataset
    /// row with per-transaction entries. The rows are kept live (sorted,
    /// CPFP-flagged) by the pool, so this is a single shared-storage copy;
    /// consecutive snapshots of an unchanged pool share one allocation.
    pub fn snapshot(&mut self, now: Timestamp) -> MempoolSnapshot {
        self.activate_index();
        let rows = match &self.snapshot_cache {
            Some(cached) => Arc::clone(cached),
            None => {
                let rows: Arc<Vec<SnapshotEntry>> =
                    Arc::new(self.rows.values().copied().collect());
                self.snapshot_cache = Some(Arc::clone(&rows));
                rows
            }
        };
        MempoolSnapshot::from_shared(now, rows, self.total_vsize)
    }

    /// Records only the pool's aggregate state at `now` (count and total
    /// virtual size) — cheap enough for every 15-second tick of a
    /// year-scale run.
    pub fn snapshot_light(&self, now: Timestamp) -> MempoolSnapshot {
        MempoolSnapshot::light(now, self.entries.len(), self.total_vsize)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cn_chain::{Address, TxOut};

    fn tx_with(seed: u8, vout: u32, out_sats: u64) -> Transaction {
        Transaction::builder()
            .add_input_with_sizes([seed; 32].into(), vout, 107, 0)
            .add_output(TxOut::to_address(Amount::from_sat(out_sats), Address::from_label("r")))
            .build()
    }

    fn child_of(parent: &Transaction, out_sats: u64) -> Transaction {
        Transaction::builder()
            .add_input_with_sizes(parent.txid(), 0, 107, 0)
            .add_output(TxOut::to_address(Amount::from_sat(out_sats), Address::from_label("c")))
            .build()
    }

    fn pool() -> Mempool {
        Mempool::new(MempoolPolicy::default())
    }

    #[test]
    fn add_and_lookup() {
        let mut p = pool();
        let t = tx_with(1, 0, 1_000);
        let vsize = t.vsize();
        let txid = p.add(t, Amount::from_sat(2_000), 10).expect("accepted");
        assert!(p.contains(&txid));
        assert_eq!(p.len(), 1);
        assert_eq!(p.total_vsize(), vsize);
        assert_eq!(p.get(&txid).expect("resident").received(), 10);
    }

    #[test]
    fn duplicate_rejected() {
        let mut p = pool();
        let t = tx_with(1, 0, 1_000);
        p.add(t.clone(), Amount::from_sat(2_000), 0).expect("first");
        assert_eq!(p.add(t, Amount::from_sat(2_000), 1), Err(AcceptError::Duplicate));
    }

    #[test]
    fn relay_floor_enforced_and_disableable() {
        let t = tx_with(1, 0, 1_000);
        let mut strict = pool();
        assert!(matches!(
            strict.add(t.clone(), Amount::from_sat(10), 0),
            Err(AcceptError::BelowMinFeeRate { .. })
        ));
        let mut lax = Mempool::new(MempoolPolicy::accept_all());
        assert!(lax.add(t, Amount::ZERO, 0).is_ok());
    }

    #[test]
    fn conflicting_spend_rejected() {
        let mut p = pool();
        let a = tx_with(1, 0, 1_000);
        let b = Transaction::builder()
            .add_input_with_sizes([1; 32].into(), 0, 108, 0) // same prevout, different tx
            .add_output(TxOut::to_address(Amount::from_sat(900), Address::from_label("x")))
            .build();
        p.add(a.clone(), Amount::from_sat(2_000), 0).expect("first");
        let err = p.add(b, Amount::from_sat(3_000), 1).expect_err("conflict");
        assert!(matches!(err, AcceptError::Conflict { existing, .. } if existing == a.txid()));
    }

    #[test]
    fn fee_rate_iteration_descending_with_fifo_ties() {
        let mut p = pool();
        let low = tx_with(1, 0, 1_000);
        let high = tx_with(2, 0, 1_000);
        let mid_first = tx_with(3, 0, 1_000);
        let mid_second = tx_with(4, 0, 1_000);
        // All four txs have identical vsize, so fees order the rates.
        let vs = low.vsize();
        p.add(low.clone(), Amount::from_sat(vs * 2), 0).expect("ok");
        p.add(mid_first.clone(), Amount::from_sat(vs * 5), 1).expect("ok");
        p.add(high.clone(), Amount::from_sat(vs * 9), 2).expect("ok");
        p.add(mid_second.clone(), Amount::from_sat(vs * 5), 3).expect("ok");
        let order: Vec<Txid> = p.iter_by_fee_rate_desc().map(|e| e.txid()).collect();
        assert_eq!(order, vec![high.txid(), mid_first.txid(), mid_second.txid(), low.txid()]);
    }

    #[test]
    fn ancestors_and_descendants_tracked() {
        let mut p = pool();
        let parent = tx_with(1, 0, 50_000);
        let child = child_of(&parent, 40_000);
        let grandchild = child_of(&child, 30_000);
        p.add(parent.clone(), Amount::from_sat(1_000), 0).expect("ok");
        p.add(child.clone(), Amount::from_sat(5_000), 1).expect("ok");
        p.add(grandchild.clone(), Amount::from_sat(5_000), 2).expect("ok");

        let mut anc = p.ancestors(&grandchild.txid());
        anc.sort();
        let mut expect = vec![parent.txid(), child.txid()];
        expect.sort();
        assert_eq!(anc, expect);

        let mut desc = p.descendants(&parent.txid());
        desc.sort();
        let mut expect = vec![child.txid(), grandchild.txid()];
        expect.sort();
        assert_eq!(desc, expect);

        assert!(p.has_unconfirmed_parent(&child.txid()));
        assert!(!p.has_unconfirmed_parent(&parent.txid()));
    }

    #[test]
    fn ancestor_package_scores_cpfp() {
        // accept_all so the deliberately underpriced parent gets in.
        let mut p = Mempool::new(MempoolPolicy::accept_all());
        let parent = tx_with(1, 0, 50_000);
        let child = child_of(&parent, 40_000);
        let (pv, cv) = (parent.vsize(), child.vsize());
        p.add(parent.clone(), Amount::from_sat(100), 0).expect("low-fee parent");
        p.add(child.clone(), Amount::from_sat(9_000), 1).expect("high-fee child");
        let (fee, vsize) = p.ancestor_package(&child.txid()).expect("resident");
        assert_eq!(fee, Amount::from_sat(9_100));
        assert_eq!(vsize, pv + cv);
        // Parent alone scores only itself.
        let (fee, vsize) = p.ancestor_package(&parent.txid()).expect("resident");
        assert_eq!(fee, Amount::from_sat(100));
        assert_eq!(vsize, pv);
    }

    #[test]
    fn apply_block_confirms_and_evicts_conflicts() {
        let mut p = pool();
        let confirmed = tx_with(1, 0, 1_000);
        let rival = Transaction::builder()
            .add_input_with_sizes([2; 32].into(), 0, 107, 0)
            .add_output(TxOut::to_address(Amount::from_sat(800), Address::from_label("x")))
            .build();
        let rival_child = child_of(&rival, 500);
        p.add(confirmed.clone(), Amount::from_sat(2_000), 0).expect("ok");
        p.add(rival.clone(), Amount::from_sat(2_000), 0).expect("ok");
        p.add(rival_child.clone(), Amount::from_sat(2_000), 0).expect("ok");

        // The block confirms `confirmed` plus a tx double-spending `rival`'s input.
        let winner = Transaction::builder()
            .add_input_with_sizes([2; 32].into(), 0, 108, 0)
            .add_output(TxOut::to_address(Amount::from_sat(700), Address::from_label("w")))
            .build();
        let cb = cn_chain::CoinbaseBuilder::new(1)
            .reward(Address::from_label("pool"), Amount::from_btc(6))
            .build();
        let block = cn_chain::Block::assemble(
            2,
            cn_chain::BlockHash::ZERO,
            0,
            0,
            cb,
            vec![confirmed.clone(), winner],
        );
        let (confirmed_n, conflicted_n) = p.apply_block(&block);
        assert_eq!(confirmed_n, 1);
        assert_eq!(conflicted_n, 2); // rival + its child
        assert!(p.is_empty());
    }

    #[test]
    fn remove_with_descendants_cleans_indexes() {
        let mut p = pool();
        let parent = tx_with(1, 0, 50_000);
        let child = child_of(&parent, 40_000);
        p.add(parent.clone(), Amount::from_sat(1_000), 0).expect("ok");
        p.add(child.clone(), Amount::from_sat(1_000), 0).expect("ok");
        let removed = p.remove_with_descendants(&parent.txid());
        assert_eq!(removed.len(), 2);
        assert!(p.is_empty());
        assert_eq!(p.total_vsize(), 0);
        assert_eq!(p.iter_by_fee_rate_desc().count(), 0);
        // Re-adding after removal works (spent index was cleaned).
        assert!(p.add(parent, Amount::from_sat(1_000), 1).is_ok());
    }

    #[test]
    fn ancestor_limit_enforced() {
        let mut p = Mempool::new(MempoolPolicy {
            max_ancestors: 2,
            ..MempoolPolicy::default()
        });
        let t0 = tx_with(1, 0, 90_000);
        let t1 = child_of(&t0, 80_000);
        let t2 = child_of(&t1, 70_000);
        p.add(t0, Amount::from_sat(1_000), 0).expect("ok");
        p.add(t1, Amount::from_sat(1_000), 0).expect("ok");
        assert_eq!(p.add(t2, Amount::from_sat(1_000), 0), Err(AcceptError::TooManyAncestors));
    }

    #[test]
    fn descendant_limit_enforced() {
        let mut p = Mempool::new(MempoolPolicy {
            max_descendants: 2,
            ..MempoolPolicy::default()
        });
        // One parent with two outputs; attach children until refused.
        let parent = Transaction::builder()
            .add_input_with_sizes([7; 32].into(), 0, 107, 0)
            .add_output(TxOut::to_address(Amount::from_sat(50_000), Address::from_label("a")))
            .add_output(TxOut::to_address(Amount::from_sat(50_000), Address::from_label("b")))
            .build();
        let c0 = Transaction::builder()
            .add_input_with_sizes(parent.txid(), 0, 107, 0)
            .add_output(TxOut::to_address(Amount::from_sat(40_000), Address::from_label("c")))
            .build();
        let c1 = Transaction::builder()
            .add_input_with_sizes(parent.txid(), 1, 107, 0)
            .add_output(TxOut::to_address(Amount::from_sat(40_000), Address::from_label("d")))
            .build();
        p.add(parent, Amount::from_sat(1_000), 0).expect("ok");
        p.add(c0, Amount::from_sat(1_000), 0).expect("ok");
        assert_eq!(p.add(c1, Amount::from_sat(1_000), 0), Err(AcceptError::TooManyDescendants));
    }

    #[test]
    fn expiry_evicts_old_entries_with_children() {
        let mut p = pool();
        let old = tx_with(1, 0, 50_000);
        let child = child_of(&old, 40_000);
        let fresh = tx_with(2, 0, 1_000);
        p.add(old.clone(), Amount::from_sat(1_000), 0).expect("ok");
        p.add(child.clone(), Amount::from_sat(1_000), 500_000).expect("ok");
        p.add(fresh.clone(), Amount::from_sat(1_000), 1_000_000).expect("ok");
        let evicted = p.evict_expired(1_000_100, 600_000);
        assert_eq!(evicted.len(), 2);
        assert!(p.contains(&fresh.txid()));
        assert!(!p.contains(&old.txid()));
        assert!(!p.contains(&child.txid()));
    }

    #[test]
    fn descendant_package_mirrors_ancestor_package() {
        let mut p = Mempool::new(MempoolPolicy::accept_all());
        let parent = tx_with(1, 0, 50_000);
        let child = child_of(&parent, 40_000);
        p.add(parent.clone(), Amount::from_sat(100), 0).expect("ok");
        p.add(child.clone(), Amount::from_sat(9_000), 1).expect("ok");
        let (fee, vsize) = p.descendant_package(&parent.txid()).expect("resident");
        assert_eq!(fee, Amount::from_sat(9_100));
        assert_eq!(vsize, parent.vsize() + child.vsize());
        let (fee, _) = p.descendant_package(&child.txid()).expect("resident");
        assert_eq!(fee, Amount::from_sat(9_000));
    }

    #[test]
    fn limit_size_evicts_worst_packages_first() {
        let mut p = pool();
        let cheap = tx_with(1, 0, 1_000);
        let mid = tx_with(2, 0, 1_000);
        let rich = tx_with(3, 0, 1_000);
        let vs = cheap.vsize();
        p.add(cheap.clone(), Amount::from_sat(vs * 2), 0).expect("ok");
        p.add(mid.clone(), Amount::from_sat(vs * 10), 1).expect("ok");
        p.add(rich.clone(), Amount::from_sat(vs * 50), 2).expect("ok");
        let evicted = p.limit_size(2 * vs);
        assert_eq!(evicted, vec![cheap.txid()]);
        assert!(p.contains(&mid.txid()) && p.contains(&rich.txid()));
        assert!(p.total_vsize() <= 2 * vs);
        // Already under the cap: a second call is a no-op.
        assert!(p.limit_size(2 * vs).is_empty());
    }

    #[test]
    fn limit_size_keeps_cpfp_parent_with_rich_child() {
        let mut p = Mempool::new(MempoolPolicy::accept_all());
        let parent = tx_with(1, 0, 50_000);
        let child = child_of(&parent, 40_000);
        let loner = tx_with(2, 0, 1_000);
        p.add(parent.clone(), Amount::from_sat(100), 0).expect("ok");
        p.add(child.clone(), Amount::from_sat(50_000), 1).expect("ok");
        p.add(loner.clone(), Amount::from_sat(2_000), 2).expect("ok");
        // Descendant-package scoring protects the low-fee parent because
        // its package includes the rich child; the loner goes instead.
        let budget = parent.vsize() + child.vsize();
        let evicted = p.limit_size(budget);
        assert_eq!(evicted, vec![loner.txid()]);
        assert!(p.contains(&parent.txid()) && p.contains(&child.txid()));
    }

    #[test]
    fn snapshot_captures_pool_state() {
        let mut p = pool();
        let parent = tx_with(1, 0, 50_000);
        let child = child_of(&parent, 40_000);
        p.add(parent.clone(), Amount::from_sat(1_000), 5).expect("ok");
        p.add(child.clone(), Amount::from_sat(2_000), 9).expect("ok");
        let snap = p.snapshot(15);
        assert_eq!(snap.time, 15);
        assert_eq!(snap.entries.len(), 2);
        let child_row = snap.entries.iter().find(|e| e.txid == child.txid()).expect("child");
        assert!(child_row.has_unconfirmed_parent);
        assert_eq!(child_row.received, 9);
        let parent_row = snap.entries.iter().find(|e| e.txid == parent.txid()).expect("parent");
        assert!(!parent_row.has_unconfirmed_parent);
        assert_eq!(snap.total_vsize(), parent.vsize() + child.vsize());
    }
}
