//! Mempool acceptance policy.

use cn_chain::FeeRate;
use serde::{Deserialize, Serialize};

/// Node-operator policy knobs for Mempool acceptance.
///
/// The defaults mirror Bitcoin Core's: a 1 sat/vB relay floor (norm III)
/// and Core's 25-transaction ancestor/descendant package limits. The
/// paper's dataset-ℬ node ran with the floor disabled
/// ([`MempoolPolicy::accept_all`]) to observe zero-fee transactions.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct MempoolPolicy {
    /// Transactions below this fee rate are refused admission
    /// (`None` disables the check).
    pub min_fee_rate: Option<FeeRate>,
    /// Maximum number of in-pool ancestors (package depth guard).
    pub max_ancestors: usize,
    /// Maximum number of in-pool descendants per transaction.
    pub max_descendants: usize,
}

impl Default for MempoolPolicy {
    fn default() -> Self {
        MempoolPolicy {
            min_fee_rate: Some(FeeRate::MIN_RELAY),
            max_ancestors: 25,
            max_descendants: 25,
        }
    }
}

impl MempoolPolicy {
    /// Policy of the paper's dataset-ℬ observer: accepts everything,
    /// including zero-fee transactions.
    pub fn accept_all() -> MempoolPolicy {
        MempoolPolicy { min_fee_rate: None, ..MempoolPolicy::default() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_enforces_relay_floor() {
        let p = MempoolPolicy::default();
        assert_eq!(p.min_fee_rate, Some(FeeRate::MIN_RELAY));
        assert_eq!(p.max_ancestors, 25);
    }

    #[test]
    fn accept_all_disables_floor_only() {
        let p = MempoolPolicy::accept_all();
        assert_eq!(p.min_fee_rate, None);
        assert_eq!(p.max_descendants, MempoolPolicy::default().max_descendants);
    }
}
