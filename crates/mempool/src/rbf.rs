//! BIP-125-style replace-by-fee.
//!
//! Bitcoin Core lets a new transaction evict in-pool conflicts when it
//! pays strictly more, at a better rate, and covers the relay cost of
//! everything it displaces. RBF interacts with ordering studies in two
//! ways: it is the *sanctioned* way to accelerate a stuck transaction
//! (unlike dark fees, the new bid is public), and replacements churn the
//! arrival order the ε-margin of §4.2.1 must absorb.

use crate::mempool::{AcceptError, Mempool};
use cn_chain::{Amount, FeeRate, Timestamp, Transaction, Txid};
use std::collections::HashSet;
use std::fmt;
use std::sync::Arc;

/// Why a replacement was refused (BIP-125 rule names).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RbfError {
    /// The transaction conflicts with nothing — plain `add` applies.
    NoConflict,
    /// Admission failed for a non-conflict reason (fee floor, limits…).
    Admission(AcceptError),
    /// Rule 3: replacement must pay more absolute fee than everything it
    /// evicts.
    InsufficientFee {
        /// Fee offered by the replacement.
        offered: Amount,
        /// Combined fees of the transactions it would evict.
        displaced: Amount,
    },
    /// Rule 4: replacement must additionally pay for its own relay
    /// bandwidth at the minimum rate.
    InsufficientFeeRate,
    /// Rule 5: too many transactions would be evicted (Core caps at 100).
    TooManyEvicted(usize),
}

impl fmt::Display for RbfError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RbfError::NoConflict => write!(f, "no in-pool conflict to replace"),
            RbfError::Admission(e) => write!(f, "admission failed: {e}"),
            RbfError::InsufficientFee { offered, displaced } => {
                write!(f, "fee {offered} does not exceed displaced {displaced}")
            }
            RbfError::InsufficientFeeRate => write!(f, "replacement does not pay for its relay"),
            RbfError::TooManyEvicted(n) => write!(f, "would evict {n} transactions (cap 100)"),
        }
    }
}

impl std::error::Error for RbfError {}

/// Outcome of a successful replacement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Replacement {
    /// The admitted transaction.
    pub txid: Txid,
    /// Everything evicted (conflicts plus their descendants).
    pub evicted: Vec<Txid>,
}

/// Maximum transactions a single replacement may evict (BIP-125 rule 5).
pub const MAX_REPLACEMENT_EVICTIONS: usize = 100;

impl Mempool {
    /// Attempts to admit `tx`, replacing any in-pool conflicts under
    /// BIP-125-style rules. Falls back to plain admission when there is
    /// no conflict (returned as `Replacement` with no evictions).
    pub fn add_with_rbf(
        &mut self,
        tx: Arc<Transaction>,
        fee: Amount,
        now: Timestamp,
    ) -> Result<Replacement, RbfError> {
        // Find direct conflicts.
        let mut conflicts: HashSet<Txid> = HashSet::new();
        for input in tx.inputs() {
            if let Some(rival) = self.spender_of(&input.prevout) {
                conflicts.insert(rival);
            }
        }
        if conflicts.is_empty() {
            return match self.add_shared(tx, fee, now) {
                Ok(txid) => Ok(Replacement { txid, evicted: Vec::new() }),
                Err(e) => Err(RbfError::Admission(e)),
            };
        }
        // Collect the full eviction set: conflicts plus descendants.
        let mut evict: Vec<Txid> = Vec::new();
        let mut seen: HashSet<Txid> = HashSet::new();
        for c in &conflicts {
            if seen.insert(*c) {
                evict.push(*c);
            }
            for d in self.descendants(c) {
                if seen.insert(d) {
                    evict.push(d);
                }
            }
        }
        if evict.len() > MAX_REPLACEMENT_EVICTIONS {
            return Err(RbfError::TooManyEvicted(evict.len()));
        }
        // Rule 3: strictly more absolute fee than everything displaced.
        let displaced: Amount = evict
            .iter()
            .filter_map(|t| self.get(t).map(|e| e.fee()))
            .sum();
        if fee <= displaced {
            return Err(RbfError::InsufficientFee { offered: fee, displaced });
        }
        // Rule 4: the increment must pay for the replacement's own relay.
        let increment = fee - displaced;
        let min_rate = self.policy().min_fee_rate.unwrap_or(FeeRate::MIN_RELAY);
        if increment < min_rate.fee_for_vsize(tx.vsize()) {
            return Err(RbfError::InsufficientFeeRate);
        }
        // Evict, then admit. Admission can still fail (e.g. package
        // limits); restore nothing in that case — Core behaves the same
        // way only transactionally, so check admission preconditions that
        // eviction cannot fix *before* evicting: after removing all
        // conflicts, the only remaining failure modes are fee floor and
        // package limits, both computable now.
        let rate = FeeRate::from_fee_and_vsize(fee, tx.vsize());
        if let Some(floor) = self.policy().min_fee_rate {
            if rate < floor {
                return Err(RbfError::Admission(AcceptError::BelowMinFeeRate {
                    offered: rate,
                    floor,
                }));
            }
        }
        for t in &evict {
            self.remove_with_descendants(t);
        }
        match self.add_shared(tx, fee, now) {
            Ok(txid) => Ok(Replacement { txid, evicted: evict }),
            Err(e) => Err(RbfError::Admission(e)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::MempoolPolicy;
    use cn_chain::{Address, TxOut};

    fn tx_spending(seed: u8, vout: u32, script_len: usize, out_sats: u64) -> Arc<Transaction> {
        Arc::new(
            Transaction::builder()
                .add_input_with_sizes([seed; 32].into(), vout, script_len, 0)
                .add_output(TxOut::to_address(Amount::from_sat(out_sats), Address::from_label("r")))
                .build(),
        )
    }

    fn child_of(parent: &Transaction, out_sats: u64) -> Arc<Transaction> {
        Arc::new(
            Transaction::builder()
                .add_input_with_sizes(parent.txid(), 0, 107, 0)
                .add_output(TxOut::to_address(Amount::from_sat(out_sats), Address::from_label("c")))
                .build(),
        )
    }

    fn pool() -> Mempool {
        Mempool::new(MempoolPolicy::default())
    }

    #[test]
    fn no_conflict_falls_back_to_plain_add() {
        let mut p = pool();
        let tx = tx_spending(1, 0, 107, 10_000);
        let r = p.add_with_rbf(tx.clone(), Amount::from_sat(1_000), 0).expect("admitted");
        assert!(r.evicted.is_empty());
        assert!(p.contains(&tx.txid()));
    }

    #[test]
    fn replacement_needs_higher_absolute_fee() {
        let mut p = pool();
        let original = tx_spending(1, 0, 107, 10_000);
        p.add_shared(original.clone(), Amount::from_sat(5_000), 0).expect("in");
        // Same prevout, different script size -> conflicting txid.
        let cheap = tx_spending(1, 0, 108, 9_000);
        let err = p.add_with_rbf(cheap, Amount::from_sat(5_000), 1).expect_err("too cheap");
        assert!(matches!(err, RbfError::InsufficientFee { .. }));
        assert!(p.contains(&original.txid()), "original survives a failed RBF");
    }

    #[test]
    fn replacement_must_pay_for_relay() {
        let mut p = pool();
        let original = tx_spending(1, 0, 107, 10_000);
        p.add_shared(original, Amount::from_sat(5_000), 0).expect("in");
        let bumped = tx_spending(1, 0, 108, 9_000);
        // One satoshi more does not cover ~190 vB of relay at 1 sat/vB.
        let err = p.add_with_rbf(bumped, Amount::from_sat(5_001), 1).expect_err("stingy");
        assert_eq!(err, RbfError::InsufficientFeeRate);
    }

    #[test]
    fn successful_replacement_evicts_conflict_and_descendants() {
        let mut p = pool();
        let original = tx_spending(1, 0, 107, 50_000);
        let child = child_of(&original, 40_000);
        p.add_shared(original.clone(), Amount::from_sat(5_000), 0).expect("in");
        p.add_shared(child.clone(), Amount::from_sat(2_000), 1).expect("in");
        let replacement = tx_spending(1, 0, 108, 9_000);
        let r = p
            .add_with_rbf(replacement.clone(), Amount::from_sat(8_000), 2)
            .expect("replaces");
        assert_eq!(r.evicted.len(), 2);
        assert!(!p.contains(&original.txid()));
        assert!(!p.contains(&child.txid()));
        assert!(p.contains(&replacement.txid()));
        // 7000-sat increment over 190 vB covers relay comfortably.
    }

    #[test]
    fn replacement_fee_must_exceed_whole_package() {
        let mut p = pool();
        let original = tx_spending(1, 0, 107, 50_000);
        let child = child_of(&original, 40_000);
        p.add_shared(original, Amount::from_sat(5_000), 0).expect("in");
        p.add_shared(child, Amount::from_sat(5_000), 1).expect("in");
        // Beats the parent alone but not parent+child.
        let replacement = tx_spending(1, 0, 108, 9_000);
        let err =
            p.add_with_rbf(replacement, Amount::from_sat(9_000), 2).expect_err("underpays");
        assert!(matches!(
            err,
            RbfError::InsufficientFee { displaced, .. } if displaced == Amount::from_sat(10_000)
        ));
    }

    #[test]
    fn multi_conflict_replacement() {
        let mut p = pool();
        // Two originals spending different outpoints.
        let a = tx_spending(1, 0, 107, 10_000);
        let b = tx_spending(2, 0, 107, 10_000);
        p.add_shared(a.clone(), Amount::from_sat(3_000), 0).expect("in");
        p.add_shared(b.clone(), Amount::from_sat(3_000), 0).expect("in");
        // One replacement double-spending both.
        let replacement = Arc::new(
            Transaction::builder()
                .add_input_with_sizes([1; 32].into(), 0, 108, 0)
                .add_input_with_sizes([2; 32].into(), 0, 108, 0)
                .add_output(TxOut::to_address(Amount::from_sat(15_000), Address::from_label("r")))
                .build(),
        );
        let r = p.add_with_rbf(replacement, Amount::from_sat(7_000), 1).expect("replaces both");
        assert_eq!(r.evicted.len(), 2);
        assert!(!p.contains(&a.txid()) && !p.contains(&b.txid()));
        assert_eq!(p.len(), 1);
    }

    #[test]
    fn below_floor_replacement_rejected_without_eviction() {
        let mut p = pool();
        let original = tx_spending(1, 0, 107, 10_000);
        p.add_shared(original.clone(), Amount::from_sat(5_000), 0).expect("in");
        // Replacement paying more in total but the *rate* below floor is
        // impossible here (more fee, similar size), so emulate with a
        // giant low-rate transaction.
        let big = Arc::new(
            Transaction::builder()
                .add_input_with_sizes([1; 32].into(), 0, 20_000, 0)
                .add_output(TxOut::to_address(Amount::from_sat(1_000), Address::from_label("r")))
                .build(),
        );
        let fee = Amount::from_sat(5_100); // > displaced, but ~0.25 sat/vB
        let err = p.add_with_rbf(big, fee, 1).expect_err("below floor");
        assert!(matches!(err, RbfError::Admission(AcceptError::BelowMinFeeRate { .. })
            | RbfError::InsufficientFeeRate));
        assert!(p.contains(&original.txid()), "original must survive");
    }
}
