//! Mempool snapshots — the paper's primary measurement artifact.
//!
//! Datasets 𝒜 and ℬ are streams of snapshots taken every 15 seconds from an
//! observer node. Each snapshot records, for every unconfirmed transaction,
//! when it was first seen and what fee rate it offers; the audit layer joins
//! these with the chain to compute commit delays, congestion levels, and
//! ordering-violation pairs.
//!
//! Snapshots come in two weights: *detailed* (per-transaction rows — what
//! the paper's datasets contain) and *light* (aggregate backlog size only).
//! A year-scale simulation cannot afford per-transaction rows every 15
//! seconds, so the simulator interleaves them; every congestion analysis
//! works on the aggregate, and per-transaction analyses use the detailed
//! subset.

use cn_chain::{Amount, FeeRate, Timestamp, Txid};
use std::sync::Arc;

/// One transaction's row within a detailed snapshot.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SnapshotEntry {
    /// The transaction id.
    pub txid: Txid,
    /// When the observer first received it.
    pub received: Timestamp,
    /// The absolute fee it offers.
    pub fee: Amount,
    /// Its virtual size.
    pub vsize: u64,
    /// True when a parent was still unconfirmed at snapshot time — such
    /// entries are CPFP candidates, which §4.2.1 excludes from
    /// violation-pair counting.
    pub has_unconfirmed_parent: bool,
}

impl SnapshotEntry {
    /// The entry's standalone fee rate.
    pub fn fee_rate(&self) -> FeeRate {
        FeeRate::from_fee_and_vsize(self.fee, self.vsize)
    }
}

/// The state of a Mempool at one instant.
///
/// Detailed snapshots share their row storage behind an [`Arc`]: cloning a
/// snapshot, or taking repeated snapshots of an unchanged pool, costs one
/// reference count instead of one row copy.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct MempoolSnapshot {
    /// Snapshot time.
    pub time: Timestamp,
    /// Resident transactions, sorted by txid (empty for light snapshots).
    pub entries: Arc<Vec<SnapshotEntry>>,
    detailed: bool,
    truncated: bool,
    degraded: bool,
    count: usize,
    vsize: u64,
}

impl MempoolSnapshot {
    /// Builds a detailed snapshot from per-transaction rows.
    pub fn from_entries(time: Timestamp, mut entries: Vec<SnapshotEntry>) -> MempoolSnapshot {
        entries.sort_by_key(|e| e.txid);
        let count = entries.len();
        let vsize = entries.iter().map(|e| e.vsize).sum();
        MempoolSnapshot {
            time,
            entries: Arc::new(entries),
            detailed: true,
            truncated: false,
            degraded: false,
            count,
            vsize,
        }
    }

    /// Builds a detailed snapshot over already-sorted shared rows whose
    /// aggregate vsize the caller has tracked (the Mempool hot path).
    pub fn from_shared(
        time: Timestamp,
        entries: Arc<Vec<SnapshotEntry>>,
        vsize: u64,
    ) -> MempoolSnapshot {
        debug_assert!(entries.windows(2).all(|w| w[0].txid <= w[1].txid), "rows must be sorted");
        debug_assert_eq!(entries.iter().map(|e| e.vsize).sum::<u64>(), vsize);
        let count = entries.len();
        MempoolSnapshot {
            time,
            entries,
            detailed: true,
            truncated: false,
            degraded: false,
            count,
            vsize,
        }
    }

    /// Builds a light snapshot carrying only aggregates.
    pub fn light(time: Timestamp, count: usize, vsize: u64) -> MempoolSnapshot {
        MempoolSnapshot {
            time,
            entries: Arc::new(Vec::new()),
            detailed: false,
            truncated: false,
            degraded: false,
            count,
            vsize,
        }
    }

    /// A copy of this detailed snapshot with its per-transaction dump cut
    /// off partway — what an interrupted RPC transfer leaves behind. Keeps
    /// the first `keep_frac` of the txid-sorted rows, recomputes the
    /// aggregates from the surviving rows (the cut loses them too), and
    /// marks the result [`MempoolSnapshot::is_truncated`]. Light snapshots
    /// are returned unchanged: they carry no dump to truncate. A cut that
    /// keeps every row shares the original storage instead of copying it.
    pub fn truncate_detail(&self, keep_frac: f64) -> MempoolSnapshot {
        if !self.detailed {
            return self.clone();
        }
        let keep = (self.entries.len() as f64 * keep_frac.clamp(0.0, 1.0)) as usize;
        if keep >= self.entries.len() {
            return MempoolSnapshot { truncated: true, ..self.clone() };
        }
        let entries: Vec<SnapshotEntry> = self.entries[..keep].to_vec();
        let count = entries.len();
        let vsize = entries.iter().map(|e| e.vsize).sum();
        MempoolSnapshot {
            time: self.time,
            entries: Arc::new(entries),
            detailed: true,
            truncated: true,
            degraded: self.degraded,
            count,
            vsize,
        }
    }

    /// The same snapshot stamped *degraded*: the observer recorded it
    /// while its view was known-compromised (e.g. inside an eclipse
    /// window, where the backlog is frozen at whatever the node held when
    /// it lost its peers). The rows are kept — they are real observations
    /// — but coverage accounting discounts the window, so a downstream
    /// audit can never mistake an eclipsed stream for a healthy one.
    pub fn mark_degraded(mut self) -> MempoolSnapshot {
        self.degraded = true;
        self
    }

    /// True when the observer's view was known-compromised at snapshot
    /// time; see [`MempoolSnapshot::mark_degraded`].
    pub fn is_degraded(&self) -> bool {
        self.degraded
    }

    /// The same snapshot stamped *truncated* — the reassembly hook for
    /// decoders replaying recorded streams. [`MempoolSnapshot::from_entries`]
    /// always yields an untruncated snapshot and
    /// [`MempoolSnapshot::truncate_detail`] performs a fresh cut, so a codec
    /// that persisted a truncated snapshot's surviving rows needs this stamp
    /// to round-trip the flag (the aggregates already equal the surviving-row
    /// sums, which `from_entries` recomputes identically).
    pub fn mark_truncated(mut self) -> MempoolSnapshot {
        self.truncated = true;
        self
    }

    /// True when per-transaction rows are present.
    pub fn is_detailed(&self) -> bool {
        self.detailed
    }

    /// True when this snapshot's detail dump was cut off partway; its
    /// rows and aggregates undercount the real backlog, and coverage
    /// accounting treats it as a degraded observation window.
    pub fn is_truncated(&self) -> bool {
        self.truncated
    }

    /// Number of unconfirmed transactions at snapshot time.
    pub fn len(&self) -> usize {
        self.count
    }

    /// True when no transactions were pending.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Aggregate virtual size — compared against the 1 MB block capacity to
    /// classify congestion (Figure 3).
    pub fn total_vsize(&self) -> u64 {
        self.vsize
    }

    /// Iterates the per-transaction rows a streaming consumer should fold
    /// over: every row of a detailed snapshot, nothing for a light one.
    /// (Light snapshots expose aggregates only; their `entries` vector is
    /// empty, so this is equivalent to `entries.iter()` but states the
    /// intent and stays correct if light snapshots ever carry rows.)
    pub fn rows(&self) -> impl Iterator<Item = &SnapshotEntry> {
        self.entries.iter().take(if self.detailed { usize::MAX } else { 0 })
    }

    /// Iterates the txids visible in this snapshot's rows — the
    /// "observed pending" set coverage accounting and first-seen joins are
    /// built from. Empty for light snapshots.
    pub fn observed_txids(&self) -> impl Iterator<Item = Txid> + '_ {
        self.rows().map(|e| e.txid)
    }

    /// The congestion bin of §4.1.2 given a block capacity in vbytes:
    /// 0 = below capacity (no congestion), 1 = (1x, 2x], 2 = (2x, 4x],
    /// 3 = above 4x (highest congestion).
    pub fn congestion_bin(&self, block_capacity: u64) -> usize {
        let size = self.total_vsize();
        if size <= block_capacity {
            0
        } else if size <= 2 * block_capacity {
            1
        } else if size <= 4 * block_capacity {
            2
        } else {
            3
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(seed: u8, vsize: u64, fee: u64) -> SnapshotEntry {
        SnapshotEntry {
            txid: Txid::from([seed; 32]),
            received: 0,
            fee: Amount::from_sat(fee),
            vsize,
            has_unconfirmed_parent: false,
        }
    }

    #[test]
    fn detailed_snapshot_aggregates_entries() {
        let snap = MempoolSnapshot::from_entries(15, vec![entry(2, 300, 600), entry(1, 250, 500)]);
        assert_eq!(snap.total_vsize(), 550);
        assert_eq!(snap.len(), 2);
        assert!(!snap.is_empty());
        assert!(snap.is_detailed());
        // Entries sorted by txid for determinism.
        assert_eq!(snap.entries[0].txid, Txid::from([1; 32]));
    }

    #[test]
    fn light_snapshot_keeps_aggregates_only() {
        let snap = MempoolSnapshot::light(30, 1_000, 275_000);
        assert!(!snap.is_detailed());
        assert!(snap.entries.is_empty());
        assert_eq!(snap.len(), 1_000);
        assert_eq!(snap.total_vsize(), 275_000);
    }

    #[test]
    fn congestion_bins_match_paper_boundaries() {
        let cap = 1_000_000u64;
        let mk = |v: u64| MempoolSnapshot::light(0, 1, v);
        assert_eq!(mk(0).congestion_bin(cap), 0);
        assert_eq!(mk(cap).congestion_bin(cap), 0);
        assert_eq!(mk(cap + 1).congestion_bin(cap), 1);
        assert_eq!(mk(2 * cap).congestion_bin(cap), 1);
        assert_eq!(mk(2 * cap + 1).congestion_bin(cap), 2);
        assert_eq!(mk(4 * cap).congestion_bin(cap), 2);
        assert_eq!(mk(4 * cap + 1).congestion_bin(cap), 3);
    }

    #[test]
    fn fee_rate_computed_per_entry() {
        let e = entry(1, 250, 500);
        assert_eq!(e.fee_rate(), FeeRate::from_sat_per_vb(2));
    }

    #[test]
    fn truncation_keeps_prefix_and_marks_snapshot() {
        let snap = MempoolSnapshot::from_entries(
            15,
            (1..=10).map(|i| entry(i, 100, 1_000)).collect(),
        );
        let cut = snap.truncate_detail(0.5);
        assert!(cut.is_truncated());
        assert!(cut.is_detailed());
        assert_eq!(cut.len(), 5);
        assert_eq!(cut.total_vsize(), 500);
        assert_eq!(cut.entries[0].txid, Txid::from([1; 32]));
        assert!(!snap.is_truncated(), "original untouched");

        // Degenerate fractions clamp instead of panicking.
        assert_eq!(snap.truncate_detail(2.0).len(), 10);
        assert_eq!(snap.truncate_detail(-1.0).len(), 0);
    }

    #[test]
    fn degraded_stamp_round_trips_and_survives_truncation() {
        let snap = MempoolSnapshot::from_entries(
            15,
            (1..=4).map(|i| entry(i, 100, 1_000)).collect(),
        );
        assert!(!snap.is_degraded());
        let stamped = snap.clone().mark_degraded();
        assert!(stamped.is_degraded());
        assert_eq!(stamped.len(), snap.len(), "rows are kept");
        assert_ne!(stamped, snap, "the stamp participates in equality");
        // The stamp survives a truncation cut (both branches).
        assert!(stamped.truncate_detail(0.5).is_degraded());
        assert!(stamped.truncate_detail(1.0).is_degraded());
        assert!(MempoolSnapshot::light(30, 5, 500).mark_degraded().is_degraded());
    }

    #[test]
    fn rows_iterate_detailed_only() {
        let detailed =
            MempoolSnapshot::from_entries(15, vec![entry(2, 300, 600), entry(1, 250, 500)]);
        assert_eq!(detailed.rows().count(), 2);
        assert_eq!(
            detailed.observed_txids().collect::<Vec<_>>(),
            vec![Txid::from([1; 32]), Txid::from([2; 32])]
        );
        let light = MempoolSnapshot::light(30, 1_000, 275_000);
        assert_eq!(light.rows().count(), 0);
        assert_eq!(light.observed_txids().count(), 0);
    }

    #[test]
    fn truncating_light_snapshot_is_identity() {
        let light = MempoolSnapshot::light(30, 100, 50_000);
        let cut = light.truncate_detail(0.2);
        assert_eq!(cut, light);
        assert!(!cut.is_truncated());
    }
}
