//! A dark-fee transaction acceleration service (§5.4).
//!
//! Large pools (BTC.com, AntPool, ViaBTC, F2Pool, Poolin) sell acceleration
//! through their websites: the buyer pays an *opaque* fee, invisible to
//! other miners and to the public fee market. §5.4.1's key empirical
//! finding is that the quoted price is so high that, had it been offered
//! publicly, the transaction would out-bid the entire Mempool. The quoting
//! rule here reproduces exactly that property, and [`fee_multiple`]
//! reproduces the Figure 14 comparison.

use cn_chain::{Amount, FeeRate, Txid};
use std::collections::HashMap;

/// A pool's acceleration service: quoting, order book, public lookup.
#[derive(Clone, Debug)]
pub struct AccelerationService {
    pool_name: String,
    /// Paid orders: txid -> dark fee paid.
    orders: HashMap<Txid, Amount>,
    /// Multiplier applied on top of the Mempool's best fee rate when
    /// quoting (>= 1.0; BTC.com's empirical multiples are far larger).
    premium: f64,
}

impl AccelerationService {
    /// Creates a service with the default 1.5× top-of-pool premium.
    pub fn new(pool_name: impl Into<String>) -> AccelerationService {
        AccelerationService { pool_name: pool_name.into(), orders: HashMap::new(), premium: 1.5 }
    }

    /// Adjusts the quoting premium.
    ///
    /// # Panics
    /// Panics when `premium < 1.0` — quoting below top-of-pool would
    /// contradict the §5.4.1 observation the model encodes.
    pub fn with_premium(mut self, premium: f64) -> AccelerationService {
        assert!(premium >= 1.0, "premium must be >= 1.0, got {premium}");
        self.premium = premium;
        self
    }

    /// The operating pool's name.
    pub fn pool_name(&self) -> &str {
        &self.pool_name
    }

    /// Quotes the dark fee for accelerating a transaction of `vsize` vbytes
    /// currently offering `public_fee`, when the best fee rate anywhere in
    /// the Mempool is `top_rate`.
    ///
    /// The quote is the smallest payment that lifts the transaction's
    /// *total* (public + dark) fee rate to `premium ×` the top of the pool —
    /// so an accelerated transaction always outranks every public bidder.
    pub fn quote(&self, vsize: u64, public_fee: Amount, top_rate: FeeRate) -> Amount {
        let target_rate =
            FeeRate::from_sat_per_kvb((top_rate.to_sat_per_kvb() as f64 * self.premium) as u64)
                .max(FeeRate::MIN_RELAY);
        let target_fee = target_rate.fee_for_vsize(vsize);
        target_fee.saturating_sub(public_fee).max(Amount::ONE_SAT)
    }

    /// Records a paid acceleration order.
    pub fn accelerate(&mut self, txid: Txid, payment: Amount) {
        self.orders.insert(txid, payment);
    }

    /// Public lookup, mirroring BTC.com's "check if a transaction was
    /// accelerated" endpoint the paper used for ground truth (§5.4.2).
    pub fn is_accelerated(&self, txid: &Txid) -> bool {
        self.orders.contains_key(txid)
    }

    /// The dark fee paid for `txid`, if any.
    pub fn paid_fee(&self, txid: &Txid) -> Option<Amount> {
        self.orders.get(txid).copied()
    }

    /// Number of outstanding orders.
    pub fn order_count(&self) -> usize {
        self.orders.len()
    }

    /// Iterates all orders.
    pub fn orders(&self) -> impl Iterator<Item = (&Txid, &Amount)> {
        self.orders.iter()
    }

    /// Drops an order (e.g. once confirmed, for bookkeeping hygiene).
    pub fn settle(&mut self, txid: &Txid) -> Option<Amount> {
        self.orders.remove(txid)
    }
}

/// The Figure 14 statistic: how many times larger the acceleration fee is
/// than the transaction's public fee. Returns `None` for a zero public fee
/// (the ratio is unbounded; the paper's snapshot had none).
pub fn fee_multiple(public_fee: Amount, acceleration_fee: Amount) -> Option<f64> {
    if public_fee.is_zero() {
        return None;
    }
    Some(acceleration_fee.to_sat() as f64 / public_fee.to_sat() as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn txid(n: u8) -> Txid {
        Txid::from([n; 32])
    }

    #[test]
    fn quote_beats_entire_pool() {
        let svc = AccelerationService::new("BTC.com");
        let top = FeeRate::from_sat_per_vb(80);
        let vsize = 250u64;
        let public_fee = Amount::from_sat(500); // 2 sat/vB
        let dark = svc.quote(vsize, public_fee, top);
        let total_rate = FeeRate::from_fee_and_vsize(public_fee + dark, vsize);
        assert!(total_rate > top, "total {total_rate} must beat top {top}");
    }

    #[test]
    fn quote_scales_with_congestion() {
        let svc = AccelerationService::new("p");
        let calm = svc.quote(250, Amount::from_sat(500), FeeRate::from_sat_per_vb(2));
        let congested = svc.quote(250, Amount::from_sat(500), FeeRate::from_sat_per_vb(200));
        assert!(congested > calm);
    }

    #[test]
    fn quote_is_never_zero() {
        let svc = AccelerationService::new("p");
        // Already the top transaction: still charged a token satoshi.
        let q = svc.quote(250, Amount::from_sat(1_000_000), FeeRate::from_sat_per_vb(1));
        assert!(q >= Amount::ONE_SAT);
    }

    #[test]
    fn order_book_round_trip() {
        let mut svc = AccelerationService::new("ViaBTC");
        assert!(!svc.is_accelerated(&txid(1)));
        svc.accelerate(txid(1), Amount::from_sat(50_000));
        assert!(svc.is_accelerated(&txid(1)));
        assert_eq!(svc.paid_fee(&txid(1)), Some(Amount::from_sat(50_000)));
        assert_eq!(svc.order_count(), 1);
        assert_eq!(svc.settle(&txid(1)), Some(Amount::from_sat(50_000)));
        assert!(!svc.is_accelerated(&txid(1)));
    }

    #[test]
    fn fee_multiple_matches_definition() {
        assert_eq!(fee_multiple(Amount::from_sat(100), Amount::from_sat(11_664)), Some(116.64));
        assert_eq!(fee_multiple(Amount::ZERO, Amount::from_sat(1)), None);
    }

    #[test]
    #[should_panic(expected = "premium must be >= 1.0")]
    fn discount_premium_rejected() {
        let _ = AccelerationService::new("p").with_premium(0.5);
    }

    #[test]
    fn premium_raises_quote() {
        let base = AccelerationService::new("p");
        let pricey = AccelerationService::new("p").with_premium(5.0);
        let top = FeeRate::from_sat_per_vb(50);
        assert!(pricey.quote(250, Amount::ZERO, top) > base.quote(250, Amount::ZERO, top));
    }
}
