//! # cn-miner — block templates, prioritization policies, acceleration
//!
//! Reproduces the machinery the paper's norms come from, plus the
//! deviations it detects:
//!
//! * [`template::BlockAssembler`] — a `GetBlockTemplate`-style greedy
//!   assembler: CPFP-aware ancestor-package *selection* (norm I) and
//!   fee-rate *ordering* within the block (norm II), subject to the block
//!   weight limit.
//! * [`policy`] — the [`policy::MinerPolicy`] trait and implementations for
//!   every behaviour the paper studies: norm-following, selfish
//!   acceleration of a pool's own transactions, collusive acceleration of a
//!   partner pool's transactions, dark-fee acceleration, and
//!   deceleration/censoring of blacklisted payments.
//! * [`acceleration`] — an opaque side-channel acceleration service
//!   modelled on BTC.com's: quotes a dark fee high enough to beat the
//!   entire current Mempool (the empirical observation of §5.4.1), records
//!   orders, and answers public "was this accelerated?" queries.
//! * [`pool::MiningPool`] — a pool operator: marker, reward wallets, hash
//!   rate, policy, optional acceleration service; turns a Mempool into a
//!   full [`cn_chain::Block`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod acceleration;
pub mod policy;
pub mod pool;
pub mod template;

pub use acceleration::AccelerationService;
pub use policy::{
    AddressAccelerationPolicy, CensorPolicy, CompositePolicy, DarkFeePolicy, MinerPolicy,
    NormPolicy, Priority, TxContext,
};
pub use pool::MiningPool;
pub use template::{AssemblyStats, BlockAssembler, BlockTemplate};
