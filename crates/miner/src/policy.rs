//! Miner prioritization policies — the norm and every deviation from it
//! that the paper documents.

use crate::acceleration::AccelerationService;
use cn_chain::{Address, FeeRate, Transaction};
use parking_lot::Mutex;
use std::collections::HashSet;
use std::sync::Arc;

/// How a miner treats one transaction when building a template.
///
/// Ordering: directives compose with `Exclude` strongest, then
/// `Accelerate`, then `Decelerate`, then `Normal` (see [`CompositePolicy`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Priority {
    /// Follow the fee-rate norm.
    Normal,
    /// Only include if space remains after all normal transactions, and
    /// place at the bottom of the block.
    Decelerate,
    /// Include ahead of all normal transactions, at the top of the block —
    /// the signature the SPPE detector keys on.
    Accelerate,
    /// Never include (censorship).
    Exclude,
}

/// Everything a policy may inspect about one candidate transaction.
///
/// Input addresses must be resolved by the caller (the node layer owns the
/// UTXO view); they are how a pool recognizes spends *from* its own wallets.
#[derive(Clone, Debug)]
pub struct TxContext<'a> {
    /// The candidate transaction.
    pub tx: &'a Transaction,
    /// Its standalone fee rate.
    pub fee_rate: FeeRate,
    /// Addresses funding the transaction (senders).
    pub input_addresses: &'a [Address],
}

impl TxContext<'_> {
    /// True when any input or output touches `addr`.
    pub fn touches(&self, addr: &Address) -> bool {
        self.input_addresses.contains(addr) || self.tx.output_addresses().any(|a| a == *addr)
    }
}

/// A transaction-prioritization policy.
pub trait MinerPolicy: Send + Sync {
    /// Classifies one candidate.
    fn classify(&self, ctx: &TxContext<'_>) -> Priority;

    /// A short label for reports.
    fn name(&self) -> &str;

    /// Whether [`MinerPolicy::classify`] ever reads
    /// [`TxContext::input_addresses`]. Template building resolves every
    /// input's address per candidate when true; policies that only look at
    /// the transaction itself (or nothing) should return false so the
    /// norm-following majority of pools skips that work entirely.
    fn wants_input_addresses(&self) -> bool {
        true
    }

    /// Whether [`MinerPolicy::classify`] returns [`Priority::Normal`] for
    /// *every* transaction. When true the assembler skips the per-entry
    /// classification pass and selects straight off the mempool's
    /// persistent ancestor-score index. Only override to `true` for a
    /// policy that cannot return anything but Normal; the conservative
    /// default keeps unknown policies on the classified path.
    fn always_normal(&self) -> bool {
        false
    }
}

/// The norm-following policy: pure fee-rate prioritization (what the paper
/// assumes all miners run, and what most in fact run).
#[derive(Clone, Debug, Default)]
pub struct NormPolicy;

impl MinerPolicy for NormPolicy {
    fn classify(&self, _ctx: &TxContext<'_>) -> Priority {
        Priority::Normal
    }

    fn name(&self) -> &str {
        "norm"
    }

    fn wants_input_addresses(&self) -> bool {
        false
    }

    fn always_normal(&self) -> bool {
        true
    }
}

/// Accelerates transactions touching a watched wallet set.
///
/// With the pool's own wallets this is the paper's *self-interest*
/// misbehaviour (§5.2); with a partner pool's wallets it is the *collusive*
/// variant (ViaBTC accelerating 1THash/58Coin and SlushPool transactions).
#[derive(Clone, Debug)]
pub struct AddressAccelerationPolicy {
    label: String,
    watched: HashSet<Address>,
}

impl AddressAccelerationPolicy {
    /// Creates a policy accelerating any transaction touching `watched`.
    pub fn new(label: impl Into<String>, watched: impl IntoIterator<Item = Address>) -> Self {
        AddressAccelerationPolicy { label: label.into(), watched: watched.into_iter().collect() }
    }

    /// The watched wallet set.
    pub fn watched(&self) -> &HashSet<Address> {
        &self.watched
    }
}

impl MinerPolicy for AddressAccelerationPolicy {
    fn classify(&self, ctx: &TxContext<'_>) -> Priority {
        let touches_watched = ctx.input_addresses.iter().any(|a| self.watched.contains(a))
            || ctx.tx.output_addresses().any(|a| self.watched.contains(&a));
        if touches_watched {
            Priority::Accelerate
        } else {
            Priority::Normal
        }
    }

    fn name(&self) -> &str {
        &self.label
    }
}

/// Accelerates transactions with a paid order in a dark-fee
/// [`AccelerationService`] (§5.4).
#[derive(Clone)]
pub struct DarkFeePolicy {
    service: Arc<Mutex<AccelerationService>>,
}

impl DarkFeePolicy {
    /// Creates a policy backed by the given service.
    pub fn new(service: Arc<Mutex<AccelerationService>>) -> Self {
        DarkFeePolicy { service }
    }
}

impl MinerPolicy for DarkFeePolicy {
    fn classify(&self, ctx: &TxContext<'_>) -> Priority {
        if self.service.lock().is_accelerated(&ctx.tx.txid()) {
            Priority::Accelerate
        } else {
            Priority::Normal
        }
    }

    fn name(&self) -> &str {
        "dark-fee"
    }

    fn wants_input_addresses(&self) -> bool {
        false
    }
}

/// Decelerates or excludes transactions paying to blacklisted addresses —
/// the hypothesized (and, per §5.3, *not* observed in the wild) treatment
/// of scam payments.
#[derive(Clone, Debug)]
pub struct CensorPolicy {
    blacklist: HashSet<Address>,
    exclude: bool,
}

impl CensorPolicy {
    /// Decelerate-only variant: blacklisted payments sink to the block
    /// bottom and are skipped under contention, but are not refused.
    pub fn decelerating(blacklist: impl IntoIterator<Item = Address>) -> Self {
        CensorPolicy { blacklist: blacklist.into_iter().collect(), exclude: false }
    }

    /// Hard-censoring variant: blacklisted payments are never mined.
    pub fn excluding(blacklist: impl IntoIterator<Item = Address>) -> Self {
        CensorPolicy { blacklist: blacklist.into_iter().collect(), exclude: true }
    }
}

impl MinerPolicy for CensorPolicy {
    fn classify(&self, ctx: &TxContext<'_>) -> Priority {
        let touches = ctx.tx.output_addresses().any(|a| self.blacklist.contains(&a))
            || ctx.input_addresses.iter().any(|a| self.blacklist.contains(a));
        if touches {
            if self.exclude {
                Priority::Exclude
            } else {
                Priority::Decelerate
            }
        } else {
            Priority::Normal
        }
    }

    fn name(&self) -> &str {
        if self.exclude {
            "censor-exclude"
        } else {
            "censor-decelerate"
        }
    }
}

/// Combines several policies; the strongest directive wins
/// (`Exclude > Accelerate > Decelerate > Normal`).
pub struct CompositePolicy {
    label: String,
    parts: Vec<Box<dyn MinerPolicy>>,
}

impl CompositePolicy {
    /// Creates a composite.
    pub fn new(label: impl Into<String>, parts: Vec<Box<dyn MinerPolicy>>) -> Self {
        CompositePolicy { label: label.into(), parts }
    }
}

impl MinerPolicy for CompositePolicy {
    fn classify(&self, ctx: &TxContext<'_>) -> Priority {
        let mut strongest = Priority::Normal;
        for part in &self.parts {
            let p = part.classify(ctx);
            if p == Priority::Exclude {
                return Priority::Exclude;
            }
            strongest = strongest.max(p);
        }
        strongest
    }

    fn name(&self) -> &str {
        &self.label
    }

    fn wants_input_addresses(&self) -> bool {
        self.parts.iter().any(|p| p.wants_input_addresses())
    }

    fn always_normal(&self) -> bool {
        self.parts.iter().all(|p| p.always_normal())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cn_chain::{Amount, TxOut};

    fn tx_to(addr: Address) -> Transaction {
        Transaction::builder()
            .add_input_with_sizes([1; 32].into(), 0, 107, 0)
            .add_output(TxOut::to_address(Amount::from_sat(1_000), addr))
            .build()
    }

    fn ctx<'a>(tx: &'a Transaction, inputs: &'a [Address]) -> TxContext<'a> {
        TxContext { tx, fee_rate: FeeRate::from_sat_per_vb(5), input_addresses: inputs }
    }

    #[test]
    fn norm_policy_is_neutral() {
        let tx = tx_to(Address::from_label("anyone"));
        assert_eq!(NormPolicy.classify(&ctx(&tx, &[])), Priority::Normal);
    }

    #[test]
    fn address_acceleration_matches_outputs() {
        let mine = Address::from_label("pool-wallet");
        let policy = AddressAccelerationPolicy::new("self", [mine]);
        let to_me = tx_to(mine);
        let to_other = tx_to(Address::from_label("other"));
        assert_eq!(policy.classify(&ctx(&to_me, &[])), Priority::Accelerate);
        assert_eq!(policy.classify(&ctx(&to_other, &[])), Priority::Normal);
    }

    #[test]
    fn address_acceleration_matches_inputs() {
        let mine = Address::from_label("pool-wallet");
        let policy = AddressAccelerationPolicy::new("self", [mine]);
        let tx = tx_to(Address::from_label("payee"));
        let inputs = [mine];
        assert_eq!(policy.classify(&ctx(&tx, &inputs)), Priority::Accelerate);
    }

    #[test]
    fn dark_fee_policy_reads_order_book() {
        let svc = Arc::new(Mutex::new(AccelerationService::new("BTC.com")));
        let policy = DarkFeePolicy::new(svc.clone());
        let tx = tx_to(Address::from_label("user"));
        assert_eq!(policy.classify(&ctx(&tx, &[])), Priority::Normal);
        svc.lock().accelerate(tx.txid(), Amount::from_sat(100_000));
        assert_eq!(policy.classify(&ctx(&tx, &[])), Priority::Accelerate);
    }

    #[test]
    fn censor_variants() {
        let scam = Address::from_label("scammer");
        let tx = tx_to(scam);
        let soft = CensorPolicy::decelerating([scam]);
        let hard = CensorPolicy::excluding([scam]);
        assert_eq!(soft.classify(&ctx(&tx, &[])), Priority::Decelerate);
        assert_eq!(hard.classify(&ctx(&tx, &[])), Priority::Exclude);
        let clean = tx_to(Address::from_label("legit"));
        assert_eq!(soft.classify(&ctx(&clean, &[])), Priority::Normal);
    }

    #[test]
    fn composite_takes_strongest() {
        let mine = Address::from_label("pool");
        let scam = Address::from_label("scam");
        let composite = CompositePolicy::new(
            "both",
            vec![
                Box::new(AddressAccelerationPolicy::new("self", [mine])),
                Box::new(CensorPolicy::excluding([scam])),
            ],
        );
        assert_eq!(composite.classify(&ctx(&tx_to(mine), &[])), Priority::Accelerate);
        assert_eq!(composite.classify(&ctx(&tx_to(scam), &[])), Priority::Exclude);
        assert_eq!(
            composite.classify(&ctx(&tx_to(Address::from_label("x")), &[])),
            Priority::Normal
        );
        // Exclude beats Accelerate when both apply (tx paying pool AND scam).
        let both = Transaction::builder()
            .add_input_with_sizes([1; 32].into(), 0, 107, 0)
            .add_output(TxOut::to_address(Amount::from_sat(1), mine))
            .add_output(TxOut::to_address(Amount::from_sat(1), scam))
            .build();
        assert_eq!(composite.classify(&ctx(&both, &[])), Priority::Exclude);
    }

    #[test]
    fn priority_ordering_for_composition() {
        assert!(Priority::Exclude > Priority::Accelerate);
        assert!(Priority::Accelerate > Priority::Decelerate);
        assert!(Priority::Decelerate > Priority::Normal);
    }
}
