//! A mining pool operator: identity, wallets, policy, block production.

use crate::acceleration::AccelerationService;
use crate::policy::{MinerPolicy, NormPolicy, TxContext};
use crate::template::{AssemblyStats, BlockAssembler, BlockTemplate};
use cn_chain::{
    Address, Block, BlockHash, CoinbaseBuilder, OutPoint, Params, PoolMarker, Timestamp,
};
use cn_mempool::Mempool;
use parking_lot::Mutex;
use std::sync::Arc;

/// A mining pool operator (MPO).
///
/// Owns a marker tag (stamped into every coinbase, the attribution signal
/// of §5.2), one or more reward wallets (Figure 8(a) shows real pools use
/// up to dozens), a hash-rate weight, a prioritization policy, and
/// optionally a dark-fee acceleration service.
pub struct MiningPool {
    name: String,
    marker: PoolMarker,
    wallets: Vec<Address>,
    hash_rate: f64,
    policy: Box<dyn MinerPolicy>,
    acceleration: Option<Arc<Mutex<AccelerationService>>>,
    blocks_mined: u64,
    /// Created on the first build and reused for every later block, so the
    /// incremental-vs-full assembly counters accumulate per pool. Chain
    /// parameters are captured from that first call; callers never vary
    /// them across a pool's lifetime.
    assembler: Option<BlockAssembler>,
}

impl MiningPool {
    /// The deterministic reward wallets a pool named `name` uses — exposed
    /// so scenario builders can reference a pool's wallets (e.g. to wire a
    /// collusion policy) before or without constructing the pool.
    pub fn derive_wallets(name: &str, wallet_count: usize) -> Vec<Address> {
        (0..wallet_count)
            .map(|i| Address::from_label(&format!("pool:{name}:{i}")))
            .collect()
    }

    /// Creates a norm-following pool with `wallet_count` deterministic
    /// reward wallets derived from its name.
    pub fn new(name: impl Into<String>, hash_rate: f64, wallet_count: usize) -> MiningPool {
        let name = name.into();
        assert!(hash_rate >= 0.0 && hash_rate.is_finite(), "bad hash rate {hash_rate}");
        assert!(wallet_count > 0, "a pool needs at least one reward wallet");
        let wallets = MiningPool::derive_wallets(&name, wallet_count);
        MiningPool {
            marker: PoolMarker::new(format!("/{name}/")),
            name,
            wallets,
            hash_rate,
            policy: Box::new(NormPolicy),
            acceleration: None,
            blocks_mined: 0,
            assembler: None,
        }
    }

    /// Replaces the prioritization policy.
    pub fn with_policy(mut self, policy: Box<dyn MinerPolicy>) -> MiningPool {
        self.policy = policy;
        self
    }

    /// Attaches a dark-fee acceleration service.
    pub fn with_acceleration(mut self, svc: Arc<Mutex<AccelerationService>>) -> MiningPool {
        self.acceleration = Some(svc);
        self
    }

    /// The pool's display name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The coinbase marker.
    pub fn marker(&self) -> &PoolMarker {
        &self.marker
    }

    /// The pool's reward wallets.
    pub fn wallets(&self) -> &[Address] {
        &self.wallets
    }

    /// The pool's hash-rate weight (relative; normalized by the simulator).
    pub fn hash_rate(&self) -> f64 {
        self.hash_rate
    }

    /// The policy in force.
    pub fn policy(&self) -> &dyn MinerPolicy {
        self.policy.as_ref()
    }

    /// The acceleration service handle, if the pool sells acceleration.
    pub fn acceleration(&self) -> Option<&Arc<Mutex<AccelerationService>>> {
        self.acceleration.as_ref()
    }

    /// Blocks this pool has produced so far.
    pub fn blocks_mined(&self) -> u64 {
        self.blocks_mined
    }

    /// Template-assembly path counters for this pool, including the
    /// rebuild-reason breakdown. All zero before the first build.
    pub fn assembly_stats(&self) -> AssemblyStats {
        self.assembler.as_ref().map_or_else(AssemblyStats::default, BlockAssembler::stats)
    }

    /// Produces a full block on top of `prev`, at `height` and `time`,
    /// drawing from `mempool`. `resolve_input` maps an outpoint to the
    /// address it pays (the node layer owns that view); unresolvable
    /// inputs are treated as touching no watched wallet.
    pub fn build_block(
        &mut self,
        mempool: &Mempool,
        params: &Params,
        prev: BlockHash,
        height: u64,
        time: Timestamp,
        resolve_input: &dyn Fn(&OutPoint) -> Option<Address>,
    ) -> Block {
        let assembler =
            self.assembler.get_or_insert_with(|| BlockAssembler::new(params.clone()));
        let wants_inputs = self.policy.wants_input_addresses();
        let policy = self.policy.as_ref();
        let template: BlockTemplate = if policy.always_normal() {
            assembler.assemble_norm(mempool)
        } else {
            assembler.assemble(mempool, |entry| {
                let input_addresses: Vec<Address> = if wants_inputs {
                    entry
                        .tx()
                        .inputs()
                        .iter()
                        .filter_map(|i| resolve_input(&i.prevout))
                        .collect()
                } else {
                    Vec::new()
                };
                let ctx = TxContext {
                    tx: entry.tx(),
                    fee_rate: entry.fee_rate(),
                    input_addresses: &input_addresses,
                };
                policy.classify(&ctx)
            })
        };

        let reward = params.subsidy_at(height) + template.total_fees;
        let wallet = self.wallets[(self.blocks_mined as usize) % self.wallets.len()];
        let coinbase = CoinbaseBuilder::new(height)
            .marker(self.marker.clone())
            .reward(wallet, reward)
            .extra_nonce(self.blocks_mined)
            .build();
        self.blocks_mined += 1;
        Block::assemble(
            2,
            prev,
            time,
            (height as u32).wrapping_mul(2_654_435_761).wrapping_add(self.blocks_mined as u32),
            coinbase,
            template.transactions,
        )
    }

    /// Convenience for tests and examples: the wallet the *next* block's
    /// reward would go to.
    pub fn next_reward_wallet(&self) -> Address {
        self.wallets[(self.blocks_mined as usize) % self.wallets.len()]
    }
}

impl std::fmt::Debug for MiningPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MiningPool")
            .field("name", &self.name)
            .field("hash_rate", &self.hash_rate)
            .field("wallets", &self.wallets.len())
            .field("policy", &self.policy.name())
            .field("blocks_mined", &self.blocks_mined)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::AddressAccelerationPolicy;
    use cn_chain::{Amount, Transaction, TxOut, Txid};
    use cn_mempool::MempoolPolicy;

    fn tx_paying(seed: u8, addr: Address, rate: u64) -> (Transaction, Amount) {
        let tx = Transaction::builder()
            .add_input_with_sizes([seed; 32].into(), 0, 107, 0)
            .add_output(TxOut::to_address(Amount::from_sat(10_000), addr))
            .build();
        let fee = Amount::from_sat(tx.vsize() * rate);
        (tx, fee)
    }

    #[test]
    fn block_carries_marker_and_reward() {
        let mut pool = MiningPool::new("F2Pool", 0.17, 3);
        let mempool = Mempool::new(MempoolPolicy::default());
        let params = Params::mainnet();
        let block =
            pool.build_block(&mempool, &params, BlockHash::ZERO, 630_000, 0, &|_| None);
        assert_eq!(
            PoolMarker::from_coinbase(block.coinbase().expect("coinbase")),
            Some(PoolMarker::new("/F2Pool/"))
        );
        // Post-third-halving subsidy with no fees: 6.25 BTC.
        assert_eq!(
            block.coinbase().expect("coinbase").output_value(),
            Amount::from_sat(625_000_000)
        );
        assert!(block.is_empty_block());
        assert_eq!(pool.blocks_mined(), 1);
    }

    #[test]
    fn wallets_rotate_across_blocks() {
        let mut pool = MiningPool::new("SlushPool", 0.05, 3);
        let mempool = Mempool::new(MempoolPolicy::default());
        let params = Params::mainnet();
        let mut reward_addrs = Vec::new();
        let mut prev = BlockHash::ZERO;
        for h in 0..4 {
            let b = pool.build_block(&mempool, &params, prev, h, h * 600, &|_| None);
            prev = b.block_hash();
            let cb = b.coinbase().expect("coinbase");
            reward_addrs.push(cb.outputs()[0].address().expect("template address"));
        }
        assert_eq!(reward_addrs[0], pool.wallets()[0]);
        assert_eq!(reward_addrs[1], pool.wallets()[1]);
        assert_eq!(reward_addrs[2], pool.wallets()[2]);
        assert_eq!(reward_addrs[3], pool.wallets()[0]); // wrapped
    }

    #[test]
    fn policy_shapes_block_content() {
        let watched = Address::from_label("pool:ViaBTC:0");
        let mut pool = MiningPool::new("ViaBTC", 0.07, 1)
            .with_policy(Box::new(AddressAccelerationPolicy::new("self", [watched])));
        let mut mempool = Mempool::new(MempoolPolicy::default());
        let (whale, whale_fee) = tx_paying(1, Address::from_label("x"), 200);
        let (own, own_fee) = tx_paying(2, watched, 1);
        let whale_id = mempool.add(whale, whale_fee, 0).expect("ok");
        let own_id = mempool.add(own, own_fee, 1).expect("ok");
        let params = Params::mainnet();
        let block = pool.build_block(&mempool, &params, BlockHash::ZERO, 0, 0, &|_| None);
        let order: Vec<Txid> = block.body().iter().map(|t| t.txid()).collect();
        assert_eq!(order, vec![own_id, whale_id], "own low-fee tx must lead");
        // Coinbase claims subsidy + both fees.
        assert_eq!(
            block.coinbase().expect("cb").output_value(),
            params.subsidy_at(0) + whale_fee + own_fee
        );
    }

    #[test]
    fn resolver_feeds_input_addresses() {
        // A policy watching an address only visible via input resolution.
        let sender = Address::from_label("watched-sender");
        let mut pool = MiningPool::new("P", 0.1, 1)
            .with_policy(Box::new(AddressAccelerationPolicy::new("self", [sender])));
        let mut mempool = Mempool::new(MempoolPolicy::default());
        let (whale, whale_fee) = tx_paying(1, Address::from_label("x"), 200);
        let (from_watched, fee2) = tx_paying(2, Address::from_label("y"), 1);
        mempool.add(whale, whale_fee, 0).expect("ok");
        let watched_id = mempool.add(from_watched, fee2, 1).expect("ok");
        let params = Params::mainnet();
        let block = pool.build_block(&mempool, &params, BlockHash::ZERO, 0, 0, &|op| {
            // Pretend every outpoint with txid [2;32] is funded by `sender`.
            if op.txid == Txid::from([2u8; 32]) {
                Some(sender)
            } else {
                None
            }
        });
        assert_eq!(block.body()[0].txid(), watched_id);
    }
}
