//! `GetBlockTemplate`-style block template construction.
//!
//! Reproduces the two norms the protocol's shared implementation encodes
//! (§2.1 of the paper):
//!
//! * **Norm I (selection)** — candidates are drawn greedily by *ancestor
//!   package* fee rate (CPFP-aware, as Bitcoin Core's `BlockAssembler`
//!   does), until the weight budget is exhausted.
//! * **Norm II (ordering)** — within the block, transactions are placed in
//!   descending fee-rate order, subject only to the topological constraint
//!   that parents precede children.
//!
//! Deviations are injected through a [`Priority`] classifier: accelerated
//! transactions are selected and placed *first* (dragging their ancestors
//! along), decelerated ones are deferred to the residual space at the
//! *bottom*, excluded ones (and, necessarily, their descendants) never
//! appear. This is exactly the lever the paper's SPPE detector measures.

use crate::policy::Priority;
use cn_chain::{Amount, FastMap, FastSet, Params, Transaction, Txid};
use cn_mempool::{Mempool, MempoolEntry, TxHandle};
use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::sync::Arc;

/// The product of template construction: ordered body transactions plus
/// their fees (coinbase is the pool's job).
///
/// Transactions are shared handles into the mempool's storage — assembling
/// a template never copies a transaction body.
#[derive(Clone, Debug)]
pub struct BlockTemplate {
    /// Body transactions in final block order.
    pub transactions: Vec<Arc<Transaction>>,
    /// Fee of each transaction, parallel to `transactions`.
    pub fees: Vec<Amount>,
    /// Total fees offered by the body.
    pub total_fees: Amount,
    /// Total body weight in weight units.
    pub total_weight: u64,
}

impl BlockTemplate {
    /// Number of body transactions.
    pub fn len(&self) -> usize {
        self.transactions.len()
    }

    /// True when the template selected nothing.
    pub fn is_empty(&self) -> bool {
        self.transactions.is_empty()
    }
}

/// Ancestor-package score compared exactly (cross-multiplied), as fee-rate
/// division would introduce rounding ties.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct PackageScore {
    fee: u64,
    vsize: u64,
    /// Arrival sequence for deterministic tie-breaks (earlier wins).
    seq: u64,
}

impl Ord for PackageScore {
    fn cmp(&self, other: &Self) -> Ordering {
        let lhs = self.fee as u128 * other.vsize as u128;
        let rhs = other.fee as u128 * self.vsize as u128;
        lhs.cmp(&rhs)
            // Smaller packages first among equal rates (Core's heuristic).
            .then_with(|| other.vsize.cmp(&self.vsize))
            // Earlier arrival wins: greater-is-better, so compare reversed.
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

impl PartialOrd for PackageScore {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct HeapItem {
    score: PackageScore,
    txid: Txid,
}

impl Ord for HeapItem {
    fn cmp(&self, other: &Self) -> Ordering {
        self.score.cmp(&other.score).then_with(|| self.txid.cmp(&other.txid))
    }
}

impl PartialOrd for HeapItem {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Heap item for the cursor fast path: ordered exactly like [`HeapItem`],
/// but carrying the mempool slab handle so score-overlay lookups are dense
/// array indexing instead of txid hashing.
#[derive(Clone, Copy, Debug)]
struct CursorItem {
    score: PackageScore,
    txid: Txid,
    handle: TxHandle,
}

impl Ord for CursorItem {
    fn cmp(&self, other: &Self) -> Ordering {
        self.score.cmp(&other.score).then_with(|| self.txid.cmp(&other.txid))
    }
}

impl PartialOrd for CursorItem {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl PartialEq for CursorItem {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}

impl Eq for CursorItem {}

/// Lifetime assembly-path counters for one assembler: which selection
/// path each template took, and — for full rebuilds — which deviation
/// classes forced it off the incremental path. One rebuild can count
/// under several reasons (a priority map may carry Accelerate and
/// Exclude entries at once).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct AssemblyStats {
    /// Templates built on the incremental all-Normal fast path.
    pub incremental_hits: u64,
    /// Templates that needed the full classify-and-rebuild path.
    pub full_rebuilds: u64,
    /// Full rebuilds whose priority map carried ≥1 Accelerate entry.
    pub rebuilds_with_accelerate: u64,
    /// Full rebuilds whose priority map carried ≥1 Decelerate entry.
    pub rebuilds_with_decelerate: u64,
    /// Full rebuilds whose priority map carried ≥1 Exclude entry.
    pub rebuilds_with_exclude: u64,
}

/// A `GetBlockTemplate`-style assembler.
///
/// ```
/// use cn_miner::{BlockAssembler, Priority};
/// use cn_mempool::{Mempool, MempoolPolicy};
/// use cn_chain::{Address, Amount, Params, Transaction, TxOut};
///
/// let mut pool = Mempool::new(MempoolPolicy::default());
/// for (seed, rate) in [(1u8, 5u64), (2, 50)] {
///     let tx = Transaction::builder()
///         .add_input_with_sizes([seed; 32].into(), 0, 107, 0)
///         .add_output(TxOut::to_address(Amount::from_sat(1_000), Address::from_label("r")))
///         .build();
///     let fee = Amount::from_sat(tx.vsize() * rate);
///     pool.add(tx, fee, 0).unwrap();
/// }
/// let tpl = BlockAssembler::new(Params::mainnet()).assemble(&pool, |_| Priority::Normal);
/// // Norm II: the 50 sat/vB transaction leads the block.
/// assert_eq!(tpl.len(), 2);
/// assert!(tpl.fees[0] > tpl.fees[1]);
/// ```
#[derive(Clone, Debug)]
pub struct BlockAssembler {
    params: Params,
    /// Which selection path each template took, with rebuild reasons.
    stats: AssemblyStats,
}

impl BlockAssembler {
    /// Creates an assembler for the given chain parameters.
    pub fn new(params: Params) -> BlockAssembler {
        BlockAssembler { params, stats: AssemblyStats::default() }
    }

    /// Lifetime path counters — how many templates this assembler built
    /// on the incremental fast path vs the full rebuild path, and what
    /// forced each rebuild.
    pub fn stats(&self) -> AssemblyStats {
        self.stats
    }

    /// The body weight budget (block limit minus coinbase reservation).
    pub fn weight_budget(&self) -> u64 {
        self.params
            .max_block_weight
            .saturating_sub(self.params.coinbase_reserved_weight)
    }

    /// Builds a template from `mempool`, classifying each candidate with
    /// `classify` (use `|_| Priority::Normal` for a norm-following miner).
    ///
    /// Selection runs on the mempool's incrementally maintained
    /// ancestor-package scores. When every candidate is Normal — the
    /// overwhelmingly common case — the assembler takes the incremental
    /// fast path: a cursor over the pool's persistent ancestor-score index
    /// (which survives across blocks; connecting a block only re-keys the
    /// affected descendants) merged with a small side heap of re-scored
    /// entries. Otherwise it falls back to the full phase-by-phase
    /// rebuild. Either way the result is bit-identical to
    /// [`BlockAssembler::assemble_reference`], the walk-everything
    /// specification version.
    pub fn assemble<F>(&mut self, mempool: &Mempool, classify: F) -> BlockTemplate
    where
        F: Fn(&MempoolEntry) -> Priority,
    {
        let priorities = self.classify_priorities(mempool, classify);
        self.assemble_with_priorities(mempool, &priorities)
    }

    /// [`BlockAssembler::assemble`] for a policy known to classify every
    /// transaction as Normal: skips the per-entry classification pass
    /// entirely and goes straight to the incremental fast path.
    pub fn assemble_norm(&mut self, mempool: &Mempool) -> BlockTemplate {
        let priorities = FastMap::default();
        self.assemble_with_priorities(mempool, &priorities)
    }

    /// Shared selection dispatch behind the public `assemble` entry points.
    fn assemble_with_priorities(
        &mut self,
        mempool: &Mempool,
        priorities: &FastMap<Txid, Priority>,
    ) -> BlockTemplate {
        let budget = self.weight_budget();
        if priorities.is_empty() {
            self.stats.incremental_hits += 1;
            let selected = self.select_norm_cursor(mempool, budget);
            return self.order_and_finish(mempool, priorities, selected);
        }
        self.stats.full_rebuilds += 1;
        // Which deviation classes forced this rebuild (post-propagation,
        // so an accelerated child's dragged-up ancestors count too).
        let (mut acc, mut dec, mut exc) = (false, false, false);
        for p in priorities.values() {
            match p {
                Priority::Accelerate => acc = true,
                Priority::Decelerate => dec = true,
                Priority::Exclude => exc = true,
                Priority::Normal => {}
            }
        }
        self.stats.rebuilds_with_accelerate += u64::from(acc);
        self.stats.rebuilds_with_decelerate += u64::from(dec);
        self.stats.rebuilds_with_exclude += u64::from(exc);
        let mut selected: Vec<Txid> = Vec::new();
        let mut selected_set: FastSet<Txid> = FastSet::default();
        let mut used_weight = 0u64;
        // Remaining package score per candidate: self + every *unselected*
        // in-pool ancestor. A sparse overlay over the pool's cached
        // ancestor totals: an absent key means "nothing selected out of
        // this package yet", so the cached score is authoritative and no
        // per-candidate seeding pass is needed.
        let mut rem: FastMap<Txid, (u64, u64)> = FastMap::default();

        for phase in [Priority::Accelerate, Priority::Normal, Priority::Decelerate] {
            // A deviation phase with no transaction classified into it has
            // no candidates — its heap would come up empty after a full
            // blocked-status sweep of the mempool. Skipping it outright is
            // bit-identical (the priority map is sparse: absent = Normal),
            // and turns the common norm-following pool into a single-phase
            // pass.
            if phase != Priority::Normal && !priorities.values().any(|p| *p == phase) {
                continue;
            }
            // Accelerate-only rebuild whose accelerate phase committed every
            // classified transaction (the common shape: a dark-fee pool with
            // a handful of live accelerations — on dataset 𝒞 this is all 42
            // rebuilds). The Normal phase then has no blockers (a blocker is
            // an *unselected* disallowed transaction) and no classified
            // candidates, so it degenerates to norm selection over the
            // leftover pool: run it on the persistent-index cursor seeded
            // with the accelerate phase's selections instead of heapifying
            // every resident.
            if phase == Priority::Normal
                && acc
                && !dec
                && !exc
                && priorities.keys().all(|t| selected_set.contains(t))
            {
                let slots = mempool.slot_count();
                let mut sel = vec![false; slots];
                for t in selected.iter() {
                    if let Some(h) = mempool.handle_of(t) {
                        sel[h.index()] = true;
                    }
                }
                let mut dense_rem: Vec<Option<(u64, u64)>> = vec![None; slots];
                let mut modified: BinaryHeap<CursorItem> = BinaryHeap::new();
                for (t, &(fee, vsize)) in &rem {
                    let Some(h) = mempool.handle_of(t) else { continue };
                    if sel[h.index()] {
                        continue;
                    }
                    dense_rem[h.index()] = Some((fee, vsize));
                    modified.push(CursorItem {
                        score: PackageScore { fee, vsize, seq: mempool.entry_at(h).sequence() },
                        txid: *t,
                        handle: h,
                    });
                }
                self.select_norm_cursor_from(
                    mempool,
                    budget,
                    used_weight,
                    &mut selected,
                    sel,
                    dense_rem,
                    modified,
                );
                // No Decelerate or Exclude entries exist, so no later phase
                // reads `selected_set`/`rem`/`used_weight`; leaving them at
                // their accelerate-phase state is fine.
                continue;
            }
            self.select_phase_indexed(
                mempool,
                priorities,
                phase,
                budget,
                &mut used_weight,
                &mut selected,
                &mut selected_set,
                &mut rem,
            );
        }

        self.order_and_finish(mempool, priorities, selected)
    }

    /// Greedy norm selection driven by the mempool's persistent
    /// ancestor-score index — the incremental fast path for an all-Normal
    /// template.
    ///
    /// The pool keeps its ancestor-score index sorted across blocks
    /// (admission, RBF, eviction, and block connect each re-key only the
    /// affected entries), so assembly starts from an already-sorted
    /// candidate list instead of heapifying every resident: a static
    /// cursor walks the index best-first while a side heap carries only
    /// entries whose remaining package score deviates from their
    /// block-start key (an ancestor got selected). Both feeds merge under
    /// the exact [`HeapItem`] total order; a cursor entry whose key went
    /// stale is requeued at its true score just as the reference's
    /// stale-check requeues a popped heap copy, so the pop sequence — and
    /// therefore the selection — is bit-identical to the reference walk.
    fn select_norm_cursor(&self, mempool: &Mempool, budget: u64) -> Vec<Txid> {
        let slots = mempool.slot_count();
        let mut selected: Vec<Txid> = Vec::new();
        self.select_norm_cursor_from(
            mempool,
            budget,
            0,
            &mut selected,
            vec![false; slots],
            vec![None; slots],
            BinaryHeap::new(),
        );
        selected
    }

    /// The cursor walk behind [`BlockAssembler::select_norm_cursor`],
    /// generalized to *continue from a prior phase's selections*: `sel`,
    /// `rem`, and `modified` seed the walk with what that phase already
    /// committed (selected handles, deviated remaining-package scores, and
    /// one re-scored heap copy per deviated entry). With empty seeds this
    /// is exactly the block-start cursor. The staleness argument is
    /// unchanged — a cursor copy keyed before the seed phase pops, fails
    /// the score check, and requeues at its true score, while every
    /// *improved* score is already present in `modified` — so the pop
    /// sequence matches the heap-everything phase selector pop for pop.
    #[allow(clippy::too_many_arguments)]
    fn select_norm_cursor_from(
        &self,
        mempool: &Mempool,
        budget: u64,
        mut used: u64,
        selected: &mut Vec<Txid>,
        mut sel: Vec<bool>,
        mut rem: Vec<Option<(u64, u64)>>,
        mut modified: BinaryHeap<CursorItem>,
    ) {
        // Any package weighs at least the lightest resident transaction;
        // once that cannot fit, nothing can. Same early exit as the phase
        // selector, with the minimum scanned once per template instead of
        // maintained across every admission.
        let Some(min_weight) = mempool.min_tx_weight() else {
            return;
        };
        let score_at = |rem: &[Option<(u64, u64)>], h: TxHandle| -> PackageScore {
            let e = mempool.entry_at(h);
            let (fee, vsize) = rem[h.index()].unwrap_or_else(|| {
                let (f, v) = e.ancestor_score();
                (f.to_sat(), v)
            });
            PackageScore { fee, vsize, seq: e.sequence() }
        };
        let mut cursor = mempool.anc_score_iter().rev().peekable();
        loop {
            if budget - used < min_weight {
                break; // no remaining package can fit
            }
            // Take the better of the two feeds under the heap total order.
            let from_cursor: Option<CursorItem> = cursor.peek().map(|k| CursorItem {
                score: PackageScore { fee: k.fee, vsize: k.vsize, seq: k.seq },
                txid: k.txid,
                handle: k.handle,
            });
            let use_cursor = match (&from_cursor, modified.peek()) {
                (Some(c), Some(m)) => c > m,
                (Some(_), None) => true,
                (None, Some(_)) => false,
                (None, None) => break,
            };
            let item = if use_cursor {
                cursor.next();
                from_cursor.expect("peeked")
            } else {
                modified.pop().expect("peeked")
            };
            let h = item.handle;
            if sel[h.index()] {
                continue; // already swept in as someone's ancestor
            }
            // Stale check: if an ancestor was selected since this copy was
            // keyed (at block start for cursor entries, at push time for
            // heap copies), requeue at the true remaining score and retry.
            let score = score_at(&rem, h);
            if score != item.score {
                modified.push(CursorItem { score, txid: item.txid, handle: h });
                continue;
            }
            // Gather the unselected ancestors + self, check the fit.
            let mut package: Vec<TxHandle> = mempool
                .ancestor_handles(h)
                .into_iter()
                .filter(|a| !sel[a.index()])
                .collect();
            package.push(h);
            let weight: u64 =
                package.iter().map(|t| mempool.entry_at(*t).tx().weight()).sum();
            if used + weight > budget {
                continue; // does not fit; try the next-best package
            }
            // Include ancestors before the child (topological within package).
            package.sort_by_key(|t| {
                (mempool.ancestor_handles(*t).len(), mempool.entry_at(*t).sequence())
            });
            for t in &package {
                if !sel[t.index()] {
                    sel[t.index()] = true;
                    selected.push(mempool.entry_at(*t).txid());
                }
            }
            used += weight;
            // Every selected member leaves the remaining package of each
            // of its unselected descendants.
            for m in &package {
                let e = mempool.entry_at(*m);
                let (mfee, mvsize) = (e.fee().to_sat(), e.vsize());
                for d in mempool.descendant_handles(*m) {
                    if sel[d.index()] {
                        continue;
                    }
                    let slot = rem[d.index()].get_or_insert_with(|| {
                        let (f, v) = mempool.entry_at(d).ancestor_score();
                        (f.to_sat(), v)
                    });
                    slot.0 -= mfee;
                    slot.1 -= mvsize;
                }
            }
            // Descendants of what we just took have new package scores.
            for d in mempool.descendant_handles(h) {
                if sel[d.index()] {
                    continue;
                }
                modified.push(CursorItem {
                    score: score_at(&rem, d),
                    txid: mempool.entry_at(d).txid(),
                    handle: d,
                });
            }
        }
    }

    /// Walk-based reference assembler: recomputes every package score from
    /// the transaction graph, exactly as written before the indexed hot
    /// path existed. Kept as the specification the optimized
    /// [`BlockAssembler::assemble`] must match bit for bit (see the
    /// property tests); not intended for production use.
    pub fn assemble_reference<F>(&self, mempool: &Mempool, classify: F) -> BlockTemplate
    where
        F: Fn(&MempoolEntry) -> Priority,
    {
        let priorities = self.classify_priorities(mempool, classify);
        let budget = self.weight_budget();
        let mut selected: Vec<Txid> = Vec::new();
        let mut selected_set: FastSet<Txid> = FastSet::default();
        let mut used_weight = 0u64;
        for phase in [Priority::Accelerate, Priority::Normal, Priority::Decelerate] {
            self.select_phase_reference(
                mempool,
                &priorities,
                phase,
                budget,
                &mut used_weight,
                &mut selected,
                &mut selected_set,
            );
        }
        self.order_and_finish(mempool, &priorities, selected)
    }

    /// Applies `classify` and propagates priorities along package edges
    /// (exclusion down, acceleration up, deceleration down).
    fn classify_priorities<F>(&self, mempool: &Mempool, classify: F) -> FastMap<Txid, Priority>
    where
        F: Fn(&MempoolEntry) -> Priority,
    {
        // Sparse: only deviations from Normal are stored (the map is empty
        // for a norm-following pool), so lookups go through
        // [`BlockAssembler::prio`].
        let mut priorities: FastMap<Txid, Priority> = FastMap::default();
        for entry in mempool.iter() {
            let p = classify(entry);
            if p != Priority::Normal {
                priorities.insert(entry.txid(), p);
            }
        }
        // Exclusion propagates downward: a descendant of an excluded
        // transaction cannot be mined (its input would be missing).
        let excluded_seeds: Vec<Txid> = priorities
            .iter()
            .filter(|(_, p)| **p == Priority::Exclude)
            .map(|(t, _)| *t)
            .collect();
        for seed in excluded_seeds {
            for d in mempool.descendants(&seed) {
                priorities.insert(d, Priority::Exclude);
            }
        }
        // Acceleration propagates upward: committing an accelerated child
        // requires committing its ancestors, at the same priority (this is
        // how real acceleration services honour CPFP packages).
        let accelerated_seeds: Vec<Txid> = priorities
            .iter()
            .filter(|(_, p)| **p == Priority::Accelerate)
            .map(|(t, _)| *t)
            .collect();
        for seed in accelerated_seeds {
            for a in mempool.ancestors(&seed) {
                if priorities.get(&a) != Some(&Priority::Exclude) {
                    priorities.insert(a, Priority::Accelerate);
                }
            }
        }
        // Deceleration propagates downward: a package containing a
        // decelerated ancestor is deferred with it (unless the child is
        // itself accelerated, which re-prioritizes the package upward and
        // was handled above).
        let decelerated_seeds: Vec<Txid> = priorities
            .iter()
            .filter(|(_, p)| **p == Priority::Decelerate)
            .map(|(t, _)| *t)
            .collect();
        for seed in decelerated_seeds {
            if priorities.get(&seed) != Some(&Priority::Decelerate) {
                continue; // was re-prioritized by an accelerated descendant
            }
            for d in mempool.descendants(&seed) {
                if Self::prio(&priorities, &d) == Priority::Normal {
                    priorities.insert(d, Priority::Decelerate);
                }
            }
        }

        priorities
    }

    /// The effective priority of `txid` under a sparse priority map
    /// (absent means Normal).
    fn prio(priorities: &FastMap<Txid, Priority>, txid: &Txid) -> Priority {
        priorities.get(txid).copied().unwrap_or(Priority::Normal)
    }

    /// Whether phase `phase` may pull in a package member of priority `p`.
    fn phase_allows(phase: Priority, p: Priority) -> bool {
        match p {
            Priority::Exclude => false,
            // The accelerate phase drags ancestors of any minable priority.
            _ if phase == Priority::Accelerate => true,
            _ => p == phase,
        }
    }

    /// Greedy ancestor-package selection for one priority class, driven by
    /// maintained remaining-package scores.
    ///
    /// Invariants making this bit-identical to the reference walk:
    /// * `rem[t]` always equals self + every unselected in-pool ancestor,
    ///   because every selected transaction is subtracted from all of its
    ///   descendants at selection time.
    /// * A candidate is *blocked* when some unselected ancestor has a
    ///   priority the phase must not pull in. Blockers can never be
    ///   selected during the phase (selections are restricted to allowed
    ///   priorities), so blocked status is static per phase and one
    ///   downward sweep computes it.
    /// * Heap keys are exact integer package scores, so pop order matches
    ///   the reference's recompute-per-pop order.
    #[allow(clippy::too_many_arguments)]
    fn select_phase_indexed(
        &self,
        mempool: &Mempool,
        priorities: &FastMap<Txid, Priority>,
        phase: Priority,
        budget: u64,
        used_weight: &mut u64,
        selected: &mut Vec<Txid>,
        selected_set: &mut FastSet<Txid>,
        rem: &mut FastMap<Txid, (u64, u64)>,
    ) {
        // Downward sweep: everything below a disallowed unselected
        // transaction is unpackageable this phase. The priority map is
        // sparse (absent = Normal), so for the Accelerate and Normal
        // phases every possible seed is a map key — the Accelerate phase
        // only refuses Exclude, the Normal phase refuses every non-Normal
        // priority — and the sweep can seed off the map instead of
        // scanning the whole pool. Only the Decelerate phase (which
        // refuses the unselected Normal majority) still needs the scan.
        let mut blocked: FastSet<Txid> = FastSet::default();
        let mut stack: Vec<Txid> = Vec::new();
        if phase == Priority::Decelerate {
            for entry in mempool.iter() {
                let txid = entry.txid();
                if selected_set.contains(&txid) {
                    continue;
                }
                let p = Self::prio(priorities, &txid);
                if !Self::phase_allows(phase, p) {
                    stack.push(txid);
                }
            }
        } else {
            for (txid, p) in priorities {
                if !Self::phase_allows(phase, *p) && !selected_set.contains(txid) {
                    stack.push(*txid);
                }
            }
        }
        while let Some(t) = stack.pop() {
            for c in mempool.children_of(&t) {
                if blocked.insert(c) {
                    stack.push(c);
                }
            }
        }

        let score_of = |rem: &FastMap<Txid, (u64, u64)>, txid: &Txid| -> PackageScore {
            let e = mempool.get(txid).expect("resident");
            let (fee, vsize) = rem.get(txid).copied().unwrap_or_else(|| {
                let (f, v) = e.ancestor_score();
                (f.to_sat(), v)
            });
            PackageScore { fee, vsize, seq: e.sequence() }
        };

        let mut heap: BinaryHeap<HeapItem> = BinaryHeap::new();
        // Smallest single-transaction weight among candidates: a lower
        // bound on any package still to come (every package weighs at
        // least its own child). Lets the pop loop stop as soon as no
        // candidate can possibly fit, instead of walk-checking the whole
        // remaining heap — pure early exit, selections are unchanged.
        let mut min_weight = u64::MAX;
        let mut push_candidate = |entry: &MempoolEntry, txid: Txid| {
            min_weight = min_weight.min(entry.tx().weight());
            let (fee, vsize) = rem.get(&txid).copied().unwrap_or_else(|| {
                let (f, v) = entry.ancestor_score();
                (f.to_sat(), v)
            });
            heap.push(HeapItem {
                score: PackageScore { fee, vsize, seq: entry.sequence() },
                txid,
            });
        };
        if phase == Priority::Normal {
            // Normal candidates are everything *not* in the sparse map.
            for entry in mempool.iter() {
                let txid = entry.txid();
                if priorities.contains_key(&txid)
                    || selected_set.contains(&txid)
                    || blocked.contains(&txid)
                {
                    continue;
                }
                push_candidate(entry, txid);
            }
        } else {
            // Deviation-phase candidates are exactly the map keys of that
            // priority: iterate the sparse map, not the pool.
            for (txid, p) in priorities {
                if *p != phase || selected_set.contains(txid) || blocked.contains(txid) {
                    continue;
                }
                push_candidate(mempool.get(txid).expect("classified txs resident"), *txid);
            }
        }
        while let Some(item) = heap.pop() {
            if budget - *used_weight < min_weight {
                break; // no remaining package can fit
            }
            if selected_set.contains(&item.txid) {
                continue; // already swept in as someone's ancestor
            }
            // Stale check against the maintained score; if an ancestor was
            // selected since this entry was pushed, reinsert and retry.
            let score = score_of(rem, &item.txid);
            if score != item.score {
                heap.push(HeapItem { score, txid: item.txid });
                continue;
            }
            // Gather the unselected ancestors + self, check the fit.
            let mut package: Vec<Txid> = mempool
                .ancestors(&item.txid)
                .into_iter()
                .filter(|a| !selected_set.contains(a))
                .collect();
            package.push(item.txid);
            let weight: u64 = package
                .iter()
                .map(|t| mempool.get(t).expect("resident").tx().weight())
                .sum();
            if *used_weight + weight > budget {
                continue; // does not fit; try the next-best package
            }
            // Include ancestors before the child (topological within package).
            package.sort_by_key(|t| {
                let depth = mempool.ancestors(t).len();
                (depth, mempool.get(t).expect("resident").sequence())
            });
            for txid in &package {
                if selected_set.insert(*txid) {
                    selected.push(*txid);
                }
            }
            *used_weight += weight;
            // Every selected member leaves the remaining package of each of
            // its unselected descendants.
            for m in &package {
                let e = mempool.get(m).expect("resident");
                let (mfee, mvsize) = (e.fee().to_sat(), e.vsize());
                for d in mempool.descendants(m) {
                    if selected_set.contains(&d) {
                        continue;
                    }
                    let slot = rem.entry(d).or_insert_with(|| {
                        let (f, v) = mempool.get(&d).expect("resident").ancestor_score();
                        (f.to_sat(), v)
                    });
                    slot.0 -= mfee;
                    slot.1 -= mvsize;
                }
            }
            // Descendants of what we just took have new package scores.
            for d in mempool.descendants(&item.txid) {
                if Self::prio(priorities, &d) == phase
                    && !selected_set.contains(&d)
                    && !blocked.contains(&d)
                {
                    heap.push(HeapItem { score: score_of(rem, &d), txid: d });
                }
            }
        }
    }

    /// Greedy ancestor-package selection restricted to one priority class
    /// (reference version: rescans and rescores via graph walks).
    #[allow(clippy::too_many_arguments)]
    fn select_phase_reference(
        &self,
        mempool: &Mempool,
        priorities: &FastMap<Txid, Priority>,
        phase: Priority,
        budget: u64,
        used_weight: &mut u64,
        selected: &mut Vec<Txid>,
        selected_set: &mut FastSet<Txid>,
    ) {
        let mut heap: BinaryHeap<HeapItem> = BinaryHeap::new();
        for entry in mempool.iter() {
            let txid = entry.txid();
            if Self::prio(priorities, &txid) != phase || selected_set.contains(&txid) {
                continue;
            }
            if let Some(score) = self.package_score(mempool, &txid, selected_set, priorities, phase)
            {
                heap.push(HeapItem { score, txid });
            }
        }
        while let Some(item) = heap.pop() {
            if selected_set.contains(&item.txid) {
                continue; // already swept in as someone's ancestor
            }
            // Stale check: recompute authoritative score; if it changed
            // (an ancestor was selected meanwhile), reinsert and retry.
            let Some(score) =
                self.package_score(mempool, &item.txid, selected_set, priorities, phase)
            else {
                continue; // package no longer eligible in this phase
            };
            if score != item.score {
                heap.push(HeapItem { score, txid: item.txid });
                continue;
            }
            // Gather the unselected ancestors + self, check the fit.
            let mut package: Vec<Txid> = mempool
                .ancestors(&item.txid)
                .into_iter()
                .filter(|a| !selected_set.contains(a))
                .collect();
            package.push(item.txid);
            let weight: u64 = package
                .iter()
                .map(|t| mempool.get(t).expect("resident").tx().weight())
                .sum();
            if *used_weight + weight > budget {
                continue; // does not fit; try the next-best package
            }
            // Include ancestors before the child (topological within package).
            package.sort_by_key(|t| {
                let depth = mempool.ancestors(t).len();
                (depth, mempool.get(t).expect("resident").sequence())
            });
            for txid in package {
                if selected_set.insert(txid) {
                    selected.push(txid);
                }
            }
            *used_weight += weight;
            // Descendants of what we just took have new package scores.
            for d in mempool.descendants(&item.txid) {
                if Self::prio(priorities, &d) == phase && !selected_set.contains(&d) {
                    if let Some(score) =
                        self.package_score(mempool, &d, selected_set, priorities, phase)
                    {
                        heap.push(HeapItem { score, txid: d });
                    }
                }
            }
        }
    }

    /// Score of `txid`'s package (self + unselected in-pool ancestors), or
    /// `None` when the package contains a member this phase must not pull
    /// in (excluded always; lower-priority members only in their own phase).
    fn package_score(
        &self,
        mempool: &Mempool,
        txid: &Txid,
        selected_set: &FastSet<Txid>,
        priorities: &FastMap<Txid, Priority>,
        phase: Priority,
    ) -> Option<PackageScore> {
        let entry = mempool.get(txid)?;
        let mut fee = entry.fee().to_sat();
        let mut vsize = entry.vsize();
        let seq = entry.sequence();
        for a in mempool.ancestors(txid) {
            if selected_set.contains(&a) {
                continue;
            }
            match Self::prio(priorities, &a) {
                Priority::Exclude => return None,
                // An ancestor in a *lower* phase cannot be pulled in by a
                // higher phase; Accelerate ancestors were already promoted.
                p if p != phase && phase != Priority::Accelerate => return None,
                _ => {}
            }
            let e = mempool.get(&a).expect("ancestors resident");
            fee += e.fee().to_sat();
            vsize += e.vsize();
        }
        Some(PackageScore { fee, vsize, seq })
    }

    /// Orders the selected set per norm II (fee-rate descending, parents
    /// first, accelerated at the top, decelerated at the bottom) and
    /// totals the template.
    fn order_and_finish(
        &self,
        mempool: &Mempool,
        priorities: &FastMap<Txid, Priority>,
        selected: Vec<Txid>,
    ) -> BlockTemplate {
        let selected_set: FastSet<Txid> = selected.iter().copied().collect();
        // Kahn's algorithm with a priority queue: among transactions whose
        // selected parents are all placed, place the one with the best
        // (segment, fee rate, arrival) key.
        #[derive(PartialEq, Eq)]
        struct OrderKey {
            segment: u8, // 0 accelerated, 1 normal, 2 decelerated
            rate_num: u64,
            rate_den: u64,
            seq: u64,
            txid: Txid,
        }
        impl Ord for OrderKey {
            fn cmp(&self, other: &Self) -> Ordering {
                // BinaryHeap pops the max; "better" must compare greater.
                other
                    .segment
                    .cmp(&self.segment)
                    .then_with(|| {
                        let lhs = self.rate_num as u128 * other.rate_den as u128;
                        let rhs = other.rate_num as u128 * self.rate_den as u128;
                        lhs.cmp(&rhs)
                    })
                    .then_with(|| other.seq.cmp(&self.seq))
                    .then_with(|| other.txid.cmp(&self.txid))
            }
        }
        impl PartialOrd for OrderKey {
            fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
                Some(self.cmp(other))
            }
        }

        let segment_of = |txid: &Txid| -> u8 {
            match priorities.get(txid) {
                Some(Priority::Accelerate) => 0,
                Some(Priority::Decelerate) => 2,
                _ => 1,
            }
        };
        let mut pending_parents: FastMap<Txid, usize> = FastMap::default();
        for txid in &selected {
            // Distinct parents: a child may spend several outputs of one
            // parent, which still counts as a single placement dependency.
            let parents: FastSet<Txid> = mempool
                .get(txid)
                .expect("resident")
                .tx()
                .inputs()
                .iter()
                .map(|i| i.prevout.txid)
                .filter(|t| selected_set.contains(t))
                .collect();
            pending_parents.insert(*txid, parents.len());
        }
        let mut ready: BinaryHeap<OrderKey> = BinaryHeap::new();
        let make_key = |txid: Txid| -> OrderKey {
            let e = mempool.get(&txid).expect("resident");
            OrderKey {
                segment: segment_of(&txid),
                rate_num: e.fee().to_sat(),
                rate_den: e.vsize().max(1),
                seq: e.sequence(),
                txid,
            }
        };
        for (txid, n) in &pending_parents {
            if *n == 0 {
                ready.push(make_key(*txid));
            }
        }
        let mut ordered: Vec<Txid> = Vec::with_capacity(selected.len());
        while let Some(key) = ready.pop() {
            ordered.push(key.txid);
            // Only direct children hold a placement dependency on this tx.
            for child in mempool.children_of(&key.txid) {
                if let Some(n) = pending_parents.get_mut(&child) {
                    *n = n.saturating_sub(1);
                    if *n == 0 {
                        ready.push(make_key(child));
                    }
                }
            }
        }
        debug_assert_eq!(ordered.len(), selected.len(), "ordering lost transactions");

        let mut transactions = Vec::with_capacity(ordered.len());
        let mut fees = Vec::with_capacity(ordered.len());
        let mut total_fees = Amount::ZERO;
        let mut total_weight = 0u64;
        for txid in ordered {
            let e = mempool.get(&txid).expect("resident");
            total_fees += e.fee();
            total_weight += e.tx().weight();
            fees.push(e.fee());
            transactions.push(e.tx_arc());
        }
        BlockTemplate { transactions, fees, total_fees, total_weight }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cn_chain::{Address, FeeRate, TxOut};
    use cn_mempool::MempoolPolicy;

    fn params() -> Params {
        Params::mainnet()
    }

    fn tx_with(seed: u8, out_sats: u64) -> Transaction {
        Transaction::builder()
            .add_input_with_sizes([seed; 32].into(), 0, 107, 0)
            .add_output(TxOut::to_address(Amount::from_sat(out_sats), Address::from_label("r")))
            .build()
    }

    fn child_of(parent: &Transaction, out_sats: u64) -> Transaction {
        Transaction::builder()
            .add_input_with_sizes(parent.txid(), 0, 107, 0)
            .add_output(TxOut::to_address(Amount::from_sat(out_sats), Address::from_label("c")))
            .build()
    }

    fn add_at_rate(pool: &mut Mempool, tx: Transaction, sat_per_vb: u64, t: u64) -> Txid {
        let fee = Amount::from_sat(tx.vsize() * sat_per_vb);
        pool.add(tx, fee, t).expect("accepted")
    }

    #[test]
    fn empty_mempool_empty_template() {
        let pool = Mempool::new(MempoolPolicy::default());
        let tpl = BlockAssembler::new(params()).assemble(&pool, |_| Priority::Normal);
        assert!(tpl.is_empty());
        assert_eq!(tpl.total_fees, Amount::ZERO);
    }

    #[test]
    fn norm_orders_by_fee_rate_desc() {
        let mut pool = Mempool::new(MempoolPolicy::default());
        let a = add_at_rate(&mut pool, tx_with(1, 1_000), 5, 0);
        let b = add_at_rate(&mut pool, tx_with(2, 1_000), 50, 1);
        let c = add_at_rate(&mut pool, tx_with(3, 1_000), 20, 2);
        let tpl = BlockAssembler::new(params()).assemble(&pool, |_| Priority::Normal);
        let order: Vec<Txid> = tpl.transactions.iter().map(|t| t.txid()).collect();
        assert_eq!(order, vec![b, c, a]);
        assert_eq!(tpl.len(), 3);
    }

    #[test]
    fn weight_budget_respected() {
        let mut small = params();
        small.max_block_weight = 4_000 + 2 * tx_with(1, 1).weight(); // room for ~2 txs
        let mut pool = Mempool::new(MempoolPolicy::default());
        add_at_rate(&mut pool, tx_with(1, 1_000), 10, 0);
        add_at_rate(&mut pool, tx_with(2, 1_000), 30, 1);
        add_at_rate(&mut pool, tx_with(3, 1_000), 20, 2);
        let mut assembler = BlockAssembler::new(small);
        let tpl = assembler.assemble(&pool, |_| Priority::Normal);
        assert_eq!(tpl.len(), 2);
        assert!(tpl.total_weight <= assembler.weight_budget());
        // The two highest rates won.
        let rates: Vec<u64> = tpl
            .fees
            .iter()
            .zip(&tpl.transactions)
            .map(|(f, t)| FeeRate::from_fee_and_vsize(*f, t.vsize()).to_sat_per_kvb() / 1000)
            .collect();
        assert_eq!(rates, vec![30, 20]);
    }

    #[test]
    fn cpfp_package_selected_together_parent_first() {
        let mut pool = Mempool::new(MempoolPolicy::accept_all());
        // Low-fee parent alone would lose to mid; high-fee child rescues it.
        let parent = tx_with(1, 50_000);
        let child = child_of(&parent, 40_000);
        let parent_id = pool.add(parent.clone(), Amount::from_sat(0), 0).expect("ok");
        let child_fee = Amount::from_sat((parent.vsize() + child.vsize()) * 40);
        let child_id = pool.add(child.clone(), child_fee, 1).expect("ok");
        let mid = add_at_rate(&mut pool, tx_with(9, 1_000), 20, 2);

        let mut small = params();
        small.max_block_weight =
            4_000 + parent.weight() + child.weight(); // no room for mid
        let tpl = BlockAssembler::new(small).assemble(&pool, |_| Priority::Normal);
        let order: Vec<Txid> = tpl.transactions.iter().map(|t| t.txid()).collect();
        // Package rate 40 sat/vB beats mid's 20; parent must precede child.
        assert_eq!(order, vec![parent_id, child_id]);
        assert!(!order.contains(&mid));
    }

    #[test]
    fn acceleration_puts_low_fee_tx_on_top() {
        let mut pool = Mempool::new(MempoolPolicy::default());
        let whale = add_at_rate(&mut pool, tx_with(1, 1_000), 100, 0);
        let sponsored = add_at_rate(&mut pool, tx_with(2, 1_000), 1, 1);
        add_at_rate(&mut pool, tx_with(3, 1_000), 50, 2);
        let tpl = BlockAssembler::new(params()).assemble(&pool, |e| {
            if e.txid() == sponsored {
                Priority::Accelerate
            } else {
                Priority::Normal
            }
        });
        let order: Vec<Txid> = tpl.transactions.iter().map(|t| t.txid()).collect();
        assert_eq!(order[0], sponsored, "accelerated tx must lead the block");
        assert_eq!(order[1], whale);
    }

    #[test]
    fn deceleration_sinks_to_bottom() {
        let mut pool = Mempool::new(MempoolPolicy::default());
        let rich = add_at_rate(&mut pool, tx_with(1, 1_000), 100, 0);
        add_at_rate(&mut pool, tx_with(2, 1_000), 50, 1);
        let sunk = rich;
        let tpl = BlockAssembler::new(params()).assemble(&pool, |e| {
            if e.txid() == sunk {
                Priority::Decelerate
            } else {
                Priority::Normal
            }
        });
        let order: Vec<Txid> = tpl.transactions.iter().map(|t| t.txid()).collect();
        assert_eq!(*order.last().expect("non-empty"), sunk);
    }

    #[test]
    fn decelerated_dropped_first_under_contention() {
        let mut small = params();
        small.max_block_weight = 4_000 + tx_with(1, 1).weight(); // one tx fits
        let mut pool = Mempool::new(MempoolPolicy::default());
        let rich = add_at_rate(&mut pool, tx_with(1, 1_000), 100, 0);
        let poor = add_at_rate(&mut pool, tx_with(2, 1_000), 2, 1);
        let tpl = BlockAssembler::new(small).assemble(&pool, |e| {
            if e.txid() == rich {
                Priority::Decelerate
            } else {
                Priority::Normal
            }
        });
        // The decelerated 100 sat/vB tx loses its slot to the normal 2 sat/vB one.
        let order: Vec<Txid> = tpl.transactions.iter().map(|t| t.txid()).collect();
        assert_eq!(order, vec![poor]);
    }

    #[test]
    fn exclusion_censors_tx_and_descendants() {
        let mut pool = Mempool::new(MempoolPolicy::default());
        let parent = tx_with(1, 50_000);
        let child = child_of(&parent, 40_000);
        let parent_id = add_at_rate(&mut pool, parent.clone(), 30, 0);
        let child_fee = Amount::from_sat(child.vsize() * 60);
        let child_id = pool.add(child, child_fee, 1).expect("ok");
        let bystander = add_at_rate(&mut pool, tx_with(5, 1_000), 5, 2);
        let tpl = BlockAssembler::new(params()).assemble(&pool, |e| {
            if e.txid() == parent_id {
                Priority::Exclude
            } else {
                Priority::Normal
            }
        });
        let order: Vec<Txid> = tpl.transactions.iter().map(|t| t.txid()).collect();
        assert_eq!(order, vec![bystander]);
        assert!(!order.contains(&parent_id));
        assert!(!order.contains(&child_id), "orphaned child must be censored too");
    }

    #[test]
    fn accelerated_child_drags_normal_parent_to_top() {
        let mut pool = Mempool::new(MempoolPolicy::default());
        let parent = tx_with(1, 50_000);
        let child = child_of(&parent, 40_000);
        let parent_id = add_at_rate(&mut pool, parent, 1, 0);
        let child_id = add_at_rate(&mut pool, child, 1, 1);
        let whale = add_at_rate(&mut pool, tx_with(7, 1_000), 500, 2);
        let tpl = BlockAssembler::new(params()).assemble(&pool, |e| {
            if e.txid() == child_id {
                Priority::Accelerate
            } else {
                Priority::Normal
            }
        });
        let order: Vec<Txid> = tpl.transactions.iter().map(|t| t.txid()).collect();
        assert_eq!(order[0], parent_id, "parent must be promoted with its child");
        assert_eq!(order[1], child_id);
        assert_eq!(order[2], whale);
    }

    #[test]
    fn totals_are_consistent() {
        let mut pool = Mempool::new(MempoolPolicy::default());
        for seed in 1..=10u8 {
            add_at_rate(&mut pool, tx_with(seed, 1_000), (seed as u64) * 3, seed as u64);
        }
        let tpl = BlockAssembler::new(params()).assemble(&pool, |_| Priority::Normal);
        assert_eq!(tpl.len(), 10);
        let sum: Amount = tpl.fees.iter().copied().sum();
        assert_eq!(sum, tpl.total_fees);
        let weight: u64 = tpl.transactions.iter().map(|t| t.weight()).sum();
        assert_eq!(weight, tpl.total_weight);
    }

    #[test]
    fn tie_break_is_fifo() {
        let mut pool = Mempool::new(MempoolPolicy::default());
        let first = add_at_rate(&mut pool, tx_with(1, 1_000), 10, 0);
        let second = add_at_rate(&mut pool, tx_with(2, 1_000), 10, 1);
        let tpl = BlockAssembler::new(params()).assemble(&pool, |_| Priority::Normal);
        let order: Vec<Txid> = tpl.transactions.iter().map(|t| t.txid()).collect();
        assert_eq!(order, vec![first, second]);
    }
}
