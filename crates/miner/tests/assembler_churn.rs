//! Churn property test: the incremental assembler must stay bit-identical
//! to [`BlockAssembler::assemble_reference`] across a *lifetime* of mempool
//! churn, not just on a freshly built pool.
//!
//! Each round applies a randomized batch of the mutations the persistent
//! ancestor-score index has to absorb — plain admission, CPFP packages
//! delivered partially or out of order (parent lost or reordered behind its
//! child, per [`FaultPlan::scaled`] link probabilities), BIP-125
//! replacements, expiry eviction, size-limit eviction — then assembles a
//! block with the incremental path, checks it byte-for-byte against the
//! reference walk, connects it, and checks the *post-connect* pool again
//! (block connect re-keys every affected descendant in the index; a stale
//! re-key is exactly the kind of bug only multi-block churn exposes).

use cn_chain::{
    Address, Amount, Block, BlockHash, CoinbaseBuilder, FeeRate, Hash256, Params, PoolMarker,
    Transaction, Txid,
};
use cn_mempool::{Mempool, MempoolPolicy};
use cn_miner::{AssemblyStats, BlockAssembler, Priority};
use cn_net::FaultPlan;
use cn_stats::SimRng;
use std::sync::Arc;

/// Deterministic priority mix keyed on the txid (same mix as the
/// single-shot identity test): ~10% each of accelerate / decelerate /
/// exclude, rest normal.
fn classify_by_txid(txid: &Txid) -> Priority {
    match txid.0.as_bytes()[0] % 10 {
        0 => Priority::Accelerate,
        1 => Priority::Decelerate,
        2 => Priority::Exclude,
        _ => Priority::Normal,
    }
}

/// Driver state for one churn run.
struct Churn {
    rng: SimRng,
    mempool: Mempool,
    faults: FaultPlan,
    /// Parents whose delivery was dropped by the fault plan: their
    /// children sit in the pool scoring as parentless singletons until a
    /// later round retransmits the parent and the admission path
    /// reconstructs the package edge (the partial-delivery CPFP lock).
    pending_parents: Vec<(Arc<Transaction>, Amount)>,
    next_funding: u64,
    now: u64,
}

impl Churn {
    fn new(seed: u64, intensity: f64) -> Churn {
        Churn {
            rng: SimRng::seed_from_u64(seed),
            mempool: Mempool::new(MempoolPolicy::accept_all()),
            faults: FaultPlan::scaled(intensity),
            pending_parents: Vec::new(),
            next_funding: 0,
            now: 0,
        }
    }

    /// A fresh confirmed-outpoint txid no pool transaction spends yet.
    fn funding_txid(&mut self) -> Txid {
        let mut bytes = [0u8; 32];
        bytes[..8].copy_from_slice(&self.next_funding.to_le_bytes());
        bytes[8] = 0xF0;
        self.next_funding += 1;
        Txid::from(bytes)
    }

    /// Builds a two-output transaction spending `(src, vout)` at `rate`
    /// sat/vB; the label counter keeps txids unique across the run.
    fn make_tx(&mut self, src: Txid, vout: u32, rate: u64) -> (Transaction, Amount) {
        let script_len = 60 + self.rng.next_below(1_500) as usize;
        let n = self.next_funding;
        self.next_funding += 1;
        let tx = Transaction::builder()
            .add_input_with_sizes(src, vout, script_len, 0)
            .pay_to(Address::from_label(&format!("a{n}")), Amount::from_sat(20_000))
            .pay_to(Address::from_label(&format!("b{n}")), Amount::from_sat(15_000))
            .build();
        let fee = Amount::from_sat(tx.vsize() * rate);
        (tx, fee)
    }

    /// One randomized mutation. Admission failures (package limits,
    /// replacement rules) are legal outcomes, not test failures — the
    /// property under test is assembler identity, whatever the pool holds.
    fn step(&mut self, resident: &[Txid]) {
        self.now += 1 + self.rng.next_below(5_000);
        match self.rng.next_below(10) {
            // Independent admission.
            0..=2 => {
                let src = self.funding_txid();
                let rate = 1 + self.rng.next_below(150);
                let (tx, fee) = self.make_tx(src, 0, rate);
                let _ = self.mempool.add(tx, fee, self.now);
            }
            // CPFP package, delivered per the fault plan: intact, child
            // first (reorder), or child only (parent lost until a later
            // retransmission).
            3..=5 => {
                let src = self.funding_txid();
                let parent_rate = 1 + self.rng.next_below(40);
                let (parent, parent_fee) = self.make_tx(src, 0, parent_rate);
                let child_rate = 50 + self.rng.next_below(400);
                let (child, child_fee) = self.make_tx(parent.txid(), 0, child_rate);
                let parent = Arc::new(parent);
                if self.rng.next_bool(self.faults.link.loss_prob) {
                    let _ = self.mempool.add(child, child_fee, self.now);
                    self.pending_parents.push((parent, parent_fee));
                } else if self.rng.next_bool(self.faults.link.reorder_prob) {
                    let _ = self.mempool.add(child, child_fee, self.now);
                    let _ = self.mempool.add_shared(parent, parent_fee, self.now);
                } else {
                    let _ = self.mempool.add_shared(parent, parent_fee, self.now);
                    let _ = self.mempool.add(child, child_fee, self.now);
                }
            }
            // Retransmit a lost parent under an already-resident child.
            6 => {
                if let Some((parent, fee)) = self.pending_parents.pop() {
                    let _ = self.mempool.add_shared(parent, fee, self.now);
                }
            }
            // BIP-125 replacement of a resident transaction (plus its
            // descendants): outbid the displaced package by a margin that
            // also covers the replacement's own relay.
            7..=8 => {
                let Some(&victim) = self.rng.choose(resident) else { return };
                let Some(entry) = self.mempool.get(&victim) else { return };
                let prevout = entry.tx().inputs()[0].prevout;
                let Some((displaced, _)) = self.mempool.descendant_package(&victim) else {
                    return;
                };
                let (tx, _) = self.make_tx(prevout.txid, prevout.vout, 1);
                let fee = displaced
                    + FeeRate::MIN_RELAY.fee_for_vsize(tx.vsize())
                    + Amount::from_sat(1 + self.rng.next_below(5_000));
                let _ = self.mempool.add_with_rbf(Arc::new(tx), fee, self.now);
            }
            // Eviction churn: expiry or size-limit trimming.
            _ => {
                if self.rng.next_bool(0.5) {
                    let _ = self.mempool.evict_expired(self.now, 40_000);
                } else {
                    let cap = self.mempool.total_vsize().saturating_mul(3) / 4;
                    let _ = self.mempool.limit_size(cap.max(1_000));
                }
            }
        }
    }
}

/// Asserts the incremental template equals the reference walk bit for bit:
/// same transactions in the same order (checked through the merkle-rooted
/// block hash, so any body divergence flips it), same fee vector, same
/// totals.
fn assert_identical(fast: &cn_miner::BlockTemplate, reference: &cn_miner::BlockTemplate, tag: &str) {
    let seal = |template: &cn_miner::BlockTemplate| {
        let coinbase = CoinbaseBuilder::new(1)
            .marker(PoolMarker::new("churn"))
            .reward(Address::from_label("miner"), Amount::from_sat(625_000_000))
            .build();
        Block::assemble(
            2,
            BlockHash(Hash256::from([0u8; 32])),
            0,
            0,
            coinbase,
            template.transactions.iter().cloned(),
        )
    };
    assert_eq!(
        seal(fast).block_hash(),
        seal(reference).block_hash(),
        "template bodies diverged ({tag})"
    );
    assert_eq!(fast.fees, reference.fees, "fee vector diverged ({tag})");
    assert_eq!(fast.total_fees, reference.total_fees, "total fees diverged ({tag})");
    assert_eq!(fast.total_weight, reference.total_weight, "total weight diverged ({tag})");
}

/// Runs `rounds` churn rounds; after each, assembles with the incremental
/// path under `classify`, checks identity, connects the block, and checks
/// identity again against the post-connect pool.
fn run_churn<F>(
    seed: u64,
    intensity: f64,
    rounds: usize,
    params: Params,
    classify: F,
) -> AssemblyStats
where
    F: Fn(&Txid) -> Priority,
{
    let mut churn = Churn::new(seed, intensity);
    let mut assembler = BlockAssembler::new(params);
    for round in 0..rounds {
        let resident: Vec<Txid> = churn.mempool.iter().map(|e| e.txid()).collect();
        for _ in 0..20 {
            churn.step(&resident);
        }
        let tag = format!("seed {seed} intensity {intensity} round {round}");
        let fast = assembler.assemble(&churn.mempool, |e| classify(&e.txid()));
        let reference = assembler.assemble_reference(&churn.mempool, |e| classify(&e.txid()));
        assert_identical(&fast, &reference, &tag);

        let coinbase = CoinbaseBuilder::new(round as u64 + 1)
            .marker(PoolMarker::new("churn"))
            .reward(Address::from_label("miner"), Amount::from_sat(625_000_000))
            .build();
        let block = Block::assemble(
            2,
            BlockHash(Hash256::from([0u8; 32])),
            churn.now,
            round as u32,
            coinbase,
            fast.transactions.iter().cloned(),
        );
        churn.mempool.apply_block(&block);

        // The connect just re-keyed the index; the very next template must
        // still match the reference over the leftover pool.
        let fast = assembler.assemble(&churn.mempool, |e| classify(&e.txid()));
        let reference = assembler.assemble_reference(&churn.mempool, |e| classify(&e.txid()));
        assert_identical(&fast, &reference, &format!("{tag} post-connect"));
    }
    assembler.stats()
}

#[test]
fn churn_norm_assembler_matches_reference_every_block() {
    // All-Normal classification: every template must ride the incremental
    // cursor, across fault intensities from inert to severe.
    let mut params = Params::mainnet();
    params.max_block_weight = 150_000;
    let mut hits = 0;
    for (seed, intensity) in [(1u64, 0.0), (2, 0.35), (3, 0.85)] {
        let stats = run_churn(seed, intensity, 8, params.clone(), |_| Priority::Normal);
        assert_eq!(stats.full_rebuilds, 0, "all-Normal churn must never force a full rebuild");
        hits += stats.incremental_hits;
    }
    assert!(hits > 0, "incremental path never engaged");
}

#[test]
fn churn_accelerate_only_matches_reference_every_block() {
    // Accelerate-only classification (~20% of txids, no decelerate or
    // exclude): every rebuild whose accelerate phase commits all of its
    // classified transactions rides the seeded-cursor Normal phase — the
    // fast path dark-fee pools hit block after block. Identity against the
    // reference walk must hold across the same churn as the mixed test.
    let mut params = Params::mainnet();
    params.max_block_weight = 150_000;
    let mut rebuilds = 0;
    for (seed, intensity) in [(21u64, 0.0), (22, 0.4), (23, 0.85)] {
        let stats = run_churn(seed, intensity, 8, params.clone(), |txid| {
            match txid.0.as_bytes()[0] % 5 {
                0 => Priority::Accelerate,
                _ => Priority::Normal,
            }
        });
        assert_eq!(
            stats.rebuilds_with_accelerate, stats.full_rebuilds,
            "accelerate-only churn: every rebuild must be acceleration-driven"
        );
        assert_eq!(stats.rebuilds_with_decelerate, 0);
        assert_eq!(stats.rebuilds_with_exclude, 0);
        rebuilds += stats.full_rebuilds;
    }
    assert!(rebuilds > 0, "accelerate-only churn never exercised the full path");
}

#[test]
fn churn_classified_assembler_matches_reference_every_block() {
    // Mixed priorities force the full phase-by-phase path; identity must
    // hold there under the same churn, partial delivery included.
    let mut params = Params::mainnet();
    params.max_block_weight = 150_000;
    let mut rebuilds = 0;
    for (seed, intensity) in [(11u64, 0.15), (12, 0.6), (13, 0.85)] {
        let stats = run_churn(seed, intensity, 8, params.clone(), classify_by_txid);
        // Every rebuild reason is bounded by the rebuild count, and a
        // rebuild must have at least one reason recorded.
        for reason in [
            stats.rebuilds_with_accelerate,
            stats.rebuilds_with_decelerate,
            stats.rebuilds_with_exclude,
        ] {
            assert!(reason <= stats.full_rebuilds, "reason count exceeds rebuilds");
        }
        if stats.full_rebuilds > 0 {
            assert!(
                stats.rebuilds_with_accelerate
                    + stats.rebuilds_with_decelerate
                    + stats.rebuilds_with_exclude
                    > 0,
                "rebuilds recorded without any reason"
            );
        }
        rebuilds += stats.full_rebuilds;
    }
    assert!(rebuilds > 0, "classified churn never exercised the full path");
}
