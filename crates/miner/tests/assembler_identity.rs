//! Property test: the indexed hot-path assembler produces bit-identical
//! templates to the walk-everything reference across randomized mempools —
//! CPFP packages, accelerations, decelerations, and exclusions included.

use cn_chain::{Address, Amount, Params, Transaction, Txid};
use cn_mempool::{Mempool, MempoolPolicy};
use cn_miner::{BlockAssembler, Priority};
use cn_stats::SimRng;

/// A deterministic priority mix keyed on the txid, so both assemblers see
/// the same classification: ~10% accelerated, ~10% decelerated, ~10%
/// excluded, rest normal.
fn classify_by_txid(txid: &Txid) -> Priority {
    match txid.0.as_bytes()[0] % 10 {
        0 => Priority::Accelerate,
        1 => Priority::Decelerate,
        2 => Priority::Exclude,
        _ => Priority::Normal,
    }
}

/// Builds a randomized mempool: a mix of independent transactions and
/// CPFP chains (children spending in-pool parents, up to two per parent),
/// with sizes and fee rates spread wide enough to shuffle package scores.
fn random_mempool(seed: u64) -> Mempool {
    let mut rng = SimRng::seed_from_u64(seed);
    let mut mempool = Mempool::new(MempoolPolicy::accept_all());
    let mut resident: Vec<(Txid, u32)> = Vec::new(); // (txid, children so far)
    let n = 40 + rng.next_below(80);
    for i in 0..n {
        // ~30% of transactions chain off an earlier in-pool parent.
        let parent = if !resident.is_empty() && rng.next_below(10) < 3 {
            let idx = rng.next_below(resident.len() as u64) as usize;
            (resident[idx].1 < 2).then(|| {
                let vout = resident[idx].1;
                resident[idx].1 += 1;
                (resident[idx].0, vout)
            })
        } else {
            None
        };
        let (src_txid, vout) = parent.unwrap_or_else(|| {
            let mut bytes = [0u8; 32];
            bytes[..8].copy_from_slice(&(seed ^ 0xdead_beef).to_le_bytes());
            bytes[8..16].copy_from_slice(&i.to_le_bytes());
            (Txid::from(bytes), 0)
        });
        let script_len = 60 + rng.next_below(1_800) as usize;
        let tx = Transaction::builder()
            .add_input_with_sizes(src_txid, vout, script_len, 0)
            .pay_to(Address::from_label(&format!("r{seed}-{i}")), Amount::from_sat(20_000))
            .pay_to(Address::from_label(&format!("c{seed}-{i}")), Amount::from_sat(15_000))
            .build();
        // Rates from below-floor to whale; CPFP children lean high so
        // child-pays-for-parent packages actually outrank their parents.
        let rate = 1 + rng.next_below(if parent.is_some() { 400 } else { 150 });
        let fee = Amount::from_sat(tx.vsize() * rate);
        let txid = mempool.add(tx, fee, i).expect("accept_all admits everything");
        resident.push((txid, 0));
    }
    mempool
}

fn assert_templates_identical(assembler: &mut BlockAssembler, mempool: &Mempool, seed: u64) {
    let fast = assembler.assemble(mempool, |e| classify_by_txid(&e.txid()));
    let reference = assembler.assemble_reference(mempool, |e| classify_by_txid(&e.txid()));
    let fast_ids: Vec<Txid> = fast.transactions.iter().map(|t| t.txid()).collect();
    let ref_ids: Vec<Txid> = reference.transactions.iter().map(|t| t.txid()).collect();
    assert_eq!(fast_ids, ref_ids, "selection/order diverged (seed {seed})");
    assert_eq!(fast.fees, reference.fees, "fees diverged (seed {seed})");
    assert_eq!(fast.total_fees, reference.total_fees, "total fees diverged (seed {seed})");
    assert_eq!(fast.total_weight, reference.total_weight, "weight diverged (seed {seed})");
}

#[test]
fn indexed_assembler_matches_reference_when_everything_fits() {
    let mut assembler = BlockAssembler::new(Params::mainnet());
    for seed in 0..25 {
        assert_templates_identical(&mut assembler, &random_mempool(seed), seed);
    }
}

#[test]
fn indexed_assembler_matches_reference_under_contention() {
    // Shrink the budget so only a fraction of the pool fits: exercises
    // budget exhaustion, the min-weight early exit, and package splitting
    // at the boundary.
    let mut params = Params::mainnet();
    params.max_block_weight = 120_000;
    let mut assembler = BlockAssembler::new(params);
    for seed in 100..125 {
        assert_templates_identical(&mut assembler, &random_mempool(seed), seed);
    }
}

#[test]
fn indexed_assembler_matches_reference_norm_only() {
    // The pure fee-rate norm (no priority map at all) is the hot path the
    // majority of simulated pools run; cover it separately.
    let mut params = Params::mainnet();
    params.max_block_weight = 200_000;
    let mut assembler = BlockAssembler::new(params);
    for seed in 200..215 {
        let mempool = random_mempool(seed);
        let fast = assembler.assemble(&mempool, |_| Priority::Normal);
        let reference = assembler.assemble_reference(&mempool, |_| Priority::Normal);
        let fast_ids: Vec<Txid> = fast.transactions.iter().map(|t| t.txid()).collect();
        let ref_ids: Vec<Txid> = reference.transactions.iter().map(|t| t.txid()).collect();
        assert_eq!(fast_ids, ref_ids, "norm selection diverged (seed {seed})");
    }
}
