//! Fault injection: the knobs that degrade the P2P and observation layers.
//!
//! Real measurement pipelines never see the clean world the rest of this
//! workspace simulates: relay links drop and delay announcements, peers
//! deliver the same transaction twice or out of order, observer daemons
//! crash and leave holes in the snapshot stream, and RPC dumps get cut
//! off mid-transfer. A [`FaultPlan`] describes all of that declaratively;
//! the simulation runner samples from it, and the audit layer is expected
//! to survive (and quantify) the resulting damage.
//!
//! A plan with every knob at zero — [`FaultPlan::none`] — must be
//! *inert*: the runner guards every fault draw behind
//! [`FaultPlan::enabled`], so a disabled plan leaves the event stream
//! bit-identical to a build without this module.

use cn_stats::SimRng;
use serde::{Deserialize, Serialize};

/// Per-delivery link degradation, sampled independently for every
/// (transaction, stakeholder) delivery the runner schedules.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct LinkFaults {
    /// Probability a delivery is silently lost (never reaches the node).
    pub loss_prob: f64,
    /// Probability a delivery suffers a latency spike.
    pub spike_prob: f64,
    /// Extra delay added by a spike, in milliseconds.
    pub spike_ms: u64,
    /// Probability a delivery arrives twice (the duplicate trails the
    /// original by up to [`LinkFaults::jitter_ms`]).
    pub duplicate_prob: f64,
    /// Probability a delivery is jittered out of order relative to other
    /// in-flight transactions.
    pub reorder_prob: f64,
    /// Uniform jitter bound for reordered and duplicated deliveries, ms.
    pub jitter_ms: u64,
}

impl LinkFaults {
    /// No link degradation.
    pub fn none() -> LinkFaults {
        LinkFaults {
            loss_prob: 0.0,
            spike_prob: 0.0,
            spike_ms: 0,
            duplicate_prob: 0.0,
            reorder_prob: 0.0,
            jitter_ms: 0,
        }
    }

    /// True when any knob can fire.
    pub fn enabled(&self) -> bool {
        self.loss_prob > 0.0
            || self.spike_prob > 0.0
            || self.duplicate_prob > 0.0
            || self.reorder_prob > 0.0
    }

    /// Extra delivery delay in milliseconds, or `None` when the delivery
    /// is lost. Draws from `rng` only for knobs that are switched on, so
    /// two plans differing in one knob keep the other draws aligned.
    pub fn sample_delivery(&self, rng: &mut SimRng) -> Option<u64> {
        if self.loss_prob > 0.0 && rng.next_bool(self.loss_prob) {
            return None;
        }
        let mut extra = 0u64;
        if self.spike_prob > 0.0 && rng.next_bool(self.spike_prob) {
            extra += self.spike_ms;
        }
        if self.reorder_prob > 0.0 && rng.next_bool(self.reorder_prob) {
            extra += rng.next_below(self.jitter_ms.max(1));
        }
        Some(extra)
    }

    /// Trailing delay for a duplicate delivery, or `None` when this
    /// delivery is not duplicated.
    pub fn sample_duplicate(&self, rng: &mut SimRng) -> Option<u64> {
        if self.duplicate_prob > 0.0 && rng.next_bool(self.duplicate_prob) {
            Some(1 + rng.next_below(self.jitter_ms.max(1)))
        } else {
            None
        }
    }
}

/// Observer-side degradation: snapshot gaps and truncated detail dumps.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct ObserverFaults {
    /// Fraction of the run the observer is down (snapshot windows inside
    /// an outage are simply missing from the stream).
    pub downtime_frac: f64,
    /// Number of distinct outage spells the downtime is spread over.
    pub downtime_spells: usize,
    /// Probability a detailed snapshot is truncated (its per-transaction
    /// dump cut off partway, as an interrupted RPC would be).
    pub truncate_prob: f64,
    /// Fraction of rows a truncated snapshot keeps.
    pub truncate_keep_frac: f64,
}

impl ObserverFaults {
    /// A fully available observer.
    pub fn none() -> ObserverFaults {
        ObserverFaults {
            downtime_frac: 0.0,
            downtime_spells: 0,
            truncate_prob: 0.0,
            truncate_keep_frac: 1.0,
        }
    }

    /// True when any knob can fire.
    pub fn enabled(&self) -> bool {
        (self.downtime_frac > 0.0 && self.downtime_spells > 0) || self.truncate_prob > 0.0
    }

    /// The outage windows over a run of `duration_ms`, as half-open
    /// `[start, end)` millisecond intervals. Spells are evenly spaced and
    /// equally sized — deterministic, so a plan fully determines which
    /// snapshot windows go missing.
    pub fn downtime_windows_ms(&self, duration_ms: u64) -> Vec<(u64, u64)> {
        if self.downtime_frac <= 0.0 || self.downtime_spells == 0 {
            return Vec::new();
        }
        let spells = self.downtime_spells as u64;
        let spell_len = (self.downtime_frac * duration_ms as f64 / spells as f64) as u64;
        let stride = duration_ms / spells;
        (0..spells)
            .map(|k| {
                let center = k * stride + stride / 2;
                let start = center.saturating_sub(spell_len / 2);
                (start, (start + spell_len).min(duration_ms))
            })
            .collect()
    }
}

/// The complete fault model for one scenario.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Link-level delivery faults.
    pub link: LinkFaults,
    /// Observer-side faults.
    pub observer: ObserverFaults,
    /// Probability a found block loses a propagation race to a
    /// same-height competitor and is orphaned (never enters the chain).
    pub stale_tip_prob: f64,
}

impl FaultPlan {
    /// A fully inert plan: no fault draw ever happens under it.
    pub fn none() -> FaultPlan {
        FaultPlan { link: LinkFaults::none(), observer: ObserverFaults::none(), stale_tip_prob: 0.0 }
    }

    /// True when any fault can fire anywhere.
    pub fn enabled(&self) -> bool {
        self.link.enabled() || self.observer.enabled() || self.stale_tip_prob > 0.0
    }

    /// A calibrated plan at `intensity` in `[0, 1]`: every knob scales
    /// linearly from inert (0.0) to severely degraded (1.0) — at full
    /// intensity a fifth of deliveries are lost, the observer misses a
    /// third of the run, and most detail dumps are cut in half.
    pub fn scaled(intensity: f64) -> FaultPlan {
        let i = intensity.clamp(0.0, 1.0);
        if i == 0.0 {
            return FaultPlan::none();
        }
        FaultPlan {
            link: LinkFaults {
                loss_prob: 0.20 * i,
                spike_prob: 0.25 * i,
                spike_ms: (45_000.0 * i) as u64,
                duplicate_prob: 0.15 * i,
                reorder_prob: 0.25 * i,
                jitter_ms: (20_000.0 * i) as u64,
            },
            observer: ObserverFaults {
                downtime_frac: 0.35 * i,
                downtime_spells: 3,
                truncate_prob: 0.5 * i,
                truncate_keep_frac: 1.0 - 0.5 * i,
            },
            stale_tip_prob: 0.10 * i,
        }
    }

    /// Sanity checks, surfaced through `Scenario::validate`.
    pub fn validate(&self) -> Result<(), String> {
        let probs = [
            ("link.loss_prob", self.link.loss_prob),
            ("link.spike_prob", self.link.spike_prob),
            ("link.duplicate_prob", self.link.duplicate_prob),
            ("link.reorder_prob", self.link.reorder_prob),
            ("observer.truncate_prob", self.observer.truncate_prob),
            ("observer.truncate_keep_frac", self.observer.truncate_keep_frac),
            ("stale_tip_prob", self.stale_tip_prob),
        ];
        for (name, p) in probs {
            if !(0.0..=1.0).contains(&p) {
                return Err(format!("fault plan: {name} must be in [0,1], got {p}"));
            }
        }
        if !(0.0..=0.9).contains(&self.observer.downtime_frac) {
            return Err(format!(
                "fault plan: observer.downtime_frac must be in [0,0.9], got {}",
                self.observer.downtime_frac
            ));
        }
        if self.observer.downtime_frac > 0.0 && self.observer.downtime_spells == 0 {
            return Err("fault plan: downtime_frac > 0 needs at least one spell".into());
        }
        if self.stale_tip_prob >= 1.0 {
            return Err("fault plan: stale_tip_prob must be < 1 or no block ever connects".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_is_inert_and_valid() {
        let plan = FaultPlan::none();
        assert!(!plan.enabled());
        assert_eq!(plan.validate(), Ok(()));
        assert!(plan.observer.downtime_windows_ms(86_400_000).is_empty());
    }

    #[test]
    fn scaled_zero_equals_none() {
        assert_eq!(FaultPlan::scaled(0.0), FaultPlan::none());
    }

    #[test]
    fn scaled_plans_validate_across_range() {
        for i in [0.1, 0.35, 0.6, 0.85, 1.0] {
            let plan = FaultPlan::scaled(i);
            assert!(plan.enabled(), "intensity {i} should enable faults");
            assert_eq!(plan.validate(), Ok(()), "intensity {i}");
        }
    }

    #[test]
    fn scaled_is_monotone_in_intensity() {
        let lo = FaultPlan::scaled(0.3);
        let hi = FaultPlan::scaled(0.9);
        assert!(hi.link.loss_prob > lo.link.loss_prob);
        assert!(hi.observer.downtime_frac > lo.observer.downtime_frac);
        assert!(hi.stale_tip_prob > lo.stale_tip_prob);
    }

    #[test]
    fn downtime_windows_cover_requested_fraction() {
        let obs = ObserverFaults {
            downtime_frac: 0.3,
            downtime_spells: 3,
            truncate_prob: 0.0,
            truncate_keep_frac: 1.0,
        };
        let duration = 600_000u64;
        let windows = obs.downtime_windows_ms(duration);
        assert_eq!(windows.len(), 3);
        let covered: u64 = windows.iter().map(|(s, e)| e - s).sum();
        let frac = covered as f64 / duration as f64;
        assert!((frac - 0.3).abs() < 0.02, "covered {frac}");
        // Windows are disjoint and ordered.
        for pair in windows.windows(2) {
            assert!(pair[0].1 <= pair[1].0, "overlapping windows {windows:?}");
        }
    }

    #[test]
    fn invalid_plans_rejected() {
        let mut plan = FaultPlan::none();
        plan.link.loss_prob = 1.5;
        assert!(plan.validate().is_err());

        let mut plan = FaultPlan::none();
        plan.observer.downtime_frac = 0.95;
        assert!(plan.validate().is_err());

        let mut plan = FaultPlan::none();
        plan.observer.downtime_frac = 0.2;
        plan.observer.downtime_spells = 0;
        assert!(plan.validate().is_err());
    }

    #[test]
    fn loss_rate_tracks_probability() {
        let faults = LinkFaults { loss_prob: 0.4, ..LinkFaults::none() };
        let mut rng = SimRng::seed_from_u64(11);
        let lost = (0..10_000).filter(|_| faults.sample_delivery(&mut rng).is_none()).count();
        let rate = lost as f64 / 10_000.0;
        assert!((rate - 0.4).abs() < 0.03, "loss rate {rate}");
    }

    #[test]
    fn disabled_knobs_never_draw() {
        // A plan with everything off must not consume rng state even when
        // sampled — that is what keeps FaultPlan::none() bit-inert.
        let faults = LinkFaults::none();
        let mut a = SimRng::seed_from_u64(3);
        let b = SimRng::seed_from_u64(3);
        assert_eq!(faults.sample_delivery(&mut a), Some(0));
        assert_eq!(faults.sample_duplicate(&mut a), None);
        let mut a2 = a;
        let mut b2 = b;
        assert_eq!(a2.next_raw(), b2.next_raw());
    }
}
