//! Fault injection: the knobs that degrade the P2P and observation layers.
//!
//! Real measurement pipelines never see the clean world the rest of this
//! workspace simulates: relay links drop and delay announcements, peers
//! deliver the same transaction twice or out of order, observer daemons
//! crash and leave holes in the snapshot stream, and RPC dumps get cut
//! off mid-transfer. A [`FaultPlan`] describes all of that declaratively;
//! the simulation runner samples from it, and the audit layer is expected
//! to survive (and quantify) the resulting damage.
//!
//! A plan with every knob at zero — [`FaultPlan::none`] — must be
//! *inert*: the runner guards every fault draw behind
//! [`FaultPlan::enabled`], so a disabled plan leaves the event stream
//! bit-identical to a build without this module.

use cn_stats::SimRng;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Why a fault- or adversary-plan input was rejected: the typed error
/// behind [`FaultPlan::validate`], [`FaultPlan::try_scaled`] and
/// [`AdversaryPlan::validate`]. Rejecting bad knobs at construction keeps
/// garbage probabilities (NaN, negatives, >1) out of the RNG draws, where
/// they would silently bias every downstream sample.
#[derive(Clone, Debug, PartialEq)]
pub enum FaultPlanError {
    /// A knob that must be a finite number was NaN or infinite.
    NonFinite {
        /// Which knob.
        field: &'static str,
        /// The offending value.
        value: f64,
    },
    /// A knob left its allowed interval.
    OutOfRange {
        /// Which knob.
        field: &'static str,
        /// The offending value.
        value: f64,
        /// Lower bound (inclusive).
        min: f64,
        /// Upper bound (inclusive).
        max: f64,
    },
    /// Downtime was requested but spread over zero spells.
    MissingSpells,
    /// A certain stale tip: no block would ever connect.
    CertainStaleTip,
    /// An adversary rule targets an observer index outside the fleet.
    UnknownObserver {
        /// The out-of-range index.
        observer: usize,
        /// How many observers the fleet actually has.
        fleet_size: usize,
    },
    /// An eclipse window whose end does not come after its start.
    EmptyEclipseWindow {
        /// Window start, seconds.
        start_secs: u64,
        /// Window end, seconds.
        end_secs: u64,
    },
}

impl fmt::Display for FaultPlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultPlanError::NonFinite { field, value } => {
                write!(f, "fault plan: {field} must be finite, got {value}")
            }
            FaultPlanError::OutOfRange { field, value, min, max } => {
                write!(f, "fault plan: {field} must be in [{min},{max}], got {value}")
            }
            FaultPlanError::MissingSpells => {
                write!(f, "fault plan: downtime_frac > 0 needs at least one spell")
            }
            FaultPlanError::CertainStaleTip => {
                write!(f, "fault plan: stale_tip_prob must be < 1 or no block ever connects")
            }
            FaultPlanError::UnknownObserver { observer, fleet_size } => {
                write!(f, "adversary plan: observer {observer} outside fleet of {fleet_size}")
            }
            FaultPlanError::EmptyEclipseWindow { start_secs, end_secs } => {
                write!(f, "adversary plan: eclipse window [{start_secs},{end_secs}) is empty")
            }
        }
    }
}

impl std::error::Error for FaultPlanError {}

/// Checks one probability-like knob: finite and inside `[min, max]`.
fn check_range(field: &'static str, value: f64, min: f64, max: f64) -> Result<(), FaultPlanError> {
    if !value.is_finite() {
        return Err(FaultPlanError::NonFinite { field, value });
    }
    if !(min..=max).contains(&value) {
        return Err(FaultPlanError::OutOfRange { field, value, min, max });
    }
    Ok(())
}

/// Per-delivery link degradation, sampled independently for every
/// (transaction, stakeholder) delivery the runner schedules.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct LinkFaults {
    /// Probability a delivery is silently lost (never reaches the node).
    pub loss_prob: f64,
    /// Probability a delivery suffers a latency spike.
    pub spike_prob: f64,
    /// Extra delay added by a spike, in milliseconds.
    pub spike_ms: u64,
    /// Probability a delivery arrives twice (the duplicate trails the
    /// original by up to [`LinkFaults::jitter_ms`]).
    pub duplicate_prob: f64,
    /// Probability a delivery is jittered out of order relative to other
    /// in-flight transactions.
    pub reorder_prob: f64,
    /// Uniform jitter bound for reordered and duplicated deliveries, ms.
    pub jitter_ms: u64,
}

impl LinkFaults {
    /// No link degradation.
    pub fn none() -> LinkFaults {
        LinkFaults {
            loss_prob: 0.0,
            spike_prob: 0.0,
            spike_ms: 0,
            duplicate_prob: 0.0,
            reorder_prob: 0.0,
            jitter_ms: 0,
        }
    }

    /// True when any knob can fire.
    pub fn enabled(&self) -> bool {
        self.loss_prob > 0.0
            || self.spike_prob > 0.0
            || self.duplicate_prob > 0.0
            || self.reorder_prob > 0.0
    }

    /// Extra delivery delay in milliseconds, or `None` when the delivery
    /// is lost. Draws from `rng` only for knobs that are switched on, so
    /// two plans differing in one knob keep the other draws aligned.
    pub fn sample_delivery(&self, rng: &mut SimRng) -> Option<u64> {
        if self.loss_prob > 0.0 && rng.next_bool(self.loss_prob) {
            return None;
        }
        let mut extra = 0u64;
        if self.spike_prob > 0.0 && rng.next_bool(self.spike_prob) {
            extra += self.spike_ms;
        }
        if self.reorder_prob > 0.0 && rng.next_bool(self.reorder_prob) {
            extra += rng.next_below(self.jitter_ms.max(1));
        }
        Some(extra)
    }

    /// Trailing delay for a duplicate delivery, or `None` when this
    /// delivery is not duplicated.
    pub fn sample_duplicate(&self, rng: &mut SimRng) -> Option<u64> {
        if self.duplicate_prob > 0.0 && rng.next_bool(self.duplicate_prob) {
            Some(1 + rng.next_below(self.jitter_ms.max(1)))
        } else {
            None
        }
    }
}

/// Observer-side degradation: snapshot gaps and truncated detail dumps.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct ObserverFaults {
    /// Fraction of the run the observer is down (snapshot windows inside
    /// an outage are simply missing from the stream).
    pub downtime_frac: f64,
    /// Number of distinct outage spells the downtime is spread over.
    pub downtime_spells: usize,
    /// Probability a detailed snapshot is truncated (its per-transaction
    /// dump cut off partway, as an interrupted RPC would be).
    pub truncate_prob: f64,
    /// Fraction of rows a truncated snapshot keeps.
    pub truncate_keep_frac: f64,
}

impl ObserverFaults {
    /// A fully available observer.
    pub fn none() -> ObserverFaults {
        ObserverFaults {
            downtime_frac: 0.0,
            downtime_spells: 0,
            truncate_prob: 0.0,
            truncate_keep_frac: 1.0,
        }
    }

    /// True when any knob can fire.
    pub fn enabled(&self) -> bool {
        (self.downtime_frac > 0.0 && self.downtime_spells > 0) || self.truncate_prob > 0.0
    }

    /// The outage windows over a run of `duration_ms`, as half-open
    /// `[start, end)` millisecond intervals. Spells are evenly spaced and
    /// equally sized — deterministic, so a plan fully determines which
    /// snapshot windows go missing.
    pub fn downtime_windows_ms(&self, duration_ms: u64) -> Vec<(u64, u64)> {
        if self.downtime_frac <= 0.0 || self.downtime_spells == 0 {
            return Vec::new();
        }
        let spells = self.downtime_spells as u64;
        let spell_len = (self.downtime_frac * duration_ms as f64 / spells as f64) as u64;
        let stride = duration_ms / spells;
        (0..spells)
            .map(|k| {
                let center = k * stride + stride / 2;
                let start = center.saturating_sub(spell_len / 2);
                (start, (start + spell_len).min(duration_ms))
            })
            .collect()
    }
}

/// The complete fault model for one scenario.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Link-level delivery faults.
    pub link: LinkFaults,
    /// Observer-side faults.
    pub observer: ObserverFaults,
    /// Probability a found block loses a propagation race to a
    /// same-height competitor and is orphaned (never enters the chain).
    pub stale_tip_prob: f64,
}

impl FaultPlan {
    /// A fully inert plan: no fault draw ever happens under it.
    pub fn none() -> FaultPlan {
        FaultPlan { link: LinkFaults::none(), observer: ObserverFaults::none(), stale_tip_prob: 0.0 }
    }

    /// True when any fault can fire anywhere.
    pub fn enabled(&self) -> bool {
        self.link.enabled() || self.observer.enabled() || self.stale_tip_prob > 0.0
    }

    /// A calibrated plan at `intensity` in `[0, 1]`: every knob scales
    /// linearly from inert (0.0) to severely degraded (1.0) — at full
    /// intensity a fifth of deliveries are lost, the observer misses a
    /// third of the run, and most detail dumps are cut in half.
    ///
    /// Finite out-of-range intensities are clamped into `[0, 1]`; a
    /// non-finite intensity (NaN, ±∞) carries no usable scale at all and
    /// panics with the typed [`FaultPlanError`] message. Use
    /// [`FaultPlan::try_scaled`] to handle bad inputs without panicking.
    ///
    /// # Panics
    /// Panics when `intensity` is NaN or infinite.
    pub fn scaled(intensity: f64) -> FaultPlan {
        FaultPlan::try_scaled(intensity.clamp(0.0, 1.0))
            .unwrap_or_else(|e| panic!("FaultPlan::scaled: {e}"))
    }

    /// The checked form of [`FaultPlan::scaled`]: rejects non-finite and
    /// out-of-`[0, 1]` intensities with a typed error instead of clamping
    /// or propagating NaN into every probability knob (`NaN.clamp` is
    /// NaN, so an unchecked path would hand the RNG garbage draws).
    pub fn try_scaled(intensity: f64) -> Result<FaultPlan, FaultPlanError> {
        check_range("intensity", intensity, 0.0, 1.0)?;
        let i = intensity;
        if i == 0.0 {
            return Ok(FaultPlan::none());
        }
        Ok(FaultPlan {
            link: LinkFaults {
                loss_prob: 0.20 * i,
                spike_prob: 0.25 * i,
                spike_ms: (45_000.0 * i) as u64,
                duplicate_prob: 0.15 * i,
                reorder_prob: 0.25 * i,
                jitter_ms: (20_000.0 * i) as u64,
            },
            observer: ObserverFaults {
                downtime_frac: 0.35 * i,
                downtime_spells: 3,
                truncate_prob: 0.5 * i,
                truncate_keep_frac: 1.0 - 0.5 * i,
            },
            stale_tip_prob: 0.10 * i,
        })
    }

    /// Sanity checks, surfaced through `Scenario::validate`. Non-finite
    /// knobs are rejected before the range checks — `NaN` fails every
    /// comparison, so it would otherwise slip through an interval test
    /// written with `contains`.
    pub fn validate(&self) -> Result<(), FaultPlanError> {
        let probs = [
            ("link.loss_prob", self.link.loss_prob),
            ("link.spike_prob", self.link.spike_prob),
            ("link.duplicate_prob", self.link.duplicate_prob),
            ("link.reorder_prob", self.link.reorder_prob),
            ("observer.truncate_prob", self.observer.truncate_prob),
            ("observer.truncate_keep_frac", self.observer.truncate_keep_frac),
            ("stale_tip_prob", self.stale_tip_prob),
        ];
        for (name, p) in probs {
            check_range(name, p, 0.0, 1.0)?;
        }
        check_range("observer.downtime_frac", self.observer.downtime_frac, 0.0, 0.9)?;
        if self.observer.downtime_frac > 0.0 && self.observer.downtime_spells == 0 {
            return Err(FaultPlanError::MissingSpells);
        }
        if self.stale_tip_prob >= 1.0 {
            return Err(FaultPlanError::CertainStaleTip);
        }
        Ok(())
    }
}

/// A targeted observer partition: the named observer loses all its peers
/// for the half-open window `[start_secs, end_secs)`. Deliveries whose
/// arrival at that observer falls inside the window never reach it, and
/// snapshots it records inside the window are marked degraded — the
/// daemon is up, but its view is frozen at the eclipse's start.
///
/// Eclipses are fully deterministic (no RNG draw): a plan pins exactly
/// which arrivals and windows are affected.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct EclipseWindow {
    /// Fleet index of the eclipsed observer.
    pub observer: usize,
    /// Window start in simulation seconds (inclusive).
    pub start_secs: u64,
    /// Window end in simulation seconds (exclusive).
    pub end_secs: u64,
}

impl EclipseWindow {
    /// True when millisecond instant `t_ms` falls inside the window.
    /// The window is half-open: an event exactly at the opening edge is
    /// eclipsed, one exactly at the closing edge is not.
    pub fn contains_ms(&self, t_ms: u64) -> bool {
        t_ms >= self.start_secs * 1_000 && t_ms < self.end_secs * 1_000
    }
}

/// What a selectively-withholding peer refuses to relay.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum WithholdPredicate {
    /// Every transaction (a fully censoring neighborhood).
    All,
    /// Transactions bidding at or above a fee-rate floor — the adversary
    /// hides exactly the traffic an ordering audit cares most about.
    HighFee {
        /// Fee-rate floor in satoshis per kilo-vbyte.
        min_sat_per_kvb: u64,
    },
    /// Transactions issued from mining-pool wallets — hiding the
    /// self-interest transfers the §5.2 detector needs to see pending.
    MinerOrigin,
}

impl WithholdPredicate {
    /// Whether a transaction with the given provenance and fee rate
    /// matches this predicate.
    pub fn matches(&self, miner_origin: bool, fee_rate_sat_per_kvb: u64) -> bool {
        match self {
            WithholdPredicate::All => true,
            WithholdPredicate::HighFee { min_sat_per_kvb } => {
                fee_rate_sat_per_kvb >= *min_sat_per_kvb
            }
            WithholdPredicate::MinerOrigin => miner_origin,
        }
    }
}

/// A selectively-withholding peer neighborhood around one observer (or
/// the whole fleet): matching transactions are dropped on their way to
/// the target with probability `control` — the fraction of the target's
/// peers the adversary speaks for.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct WithholdRule {
    /// Fleet index of the targeted observer; `None` targets every
    /// observer (each with an independent draw, so fleets recover what a
    /// single vantage point loses).
    pub observer: Option<usize>,
    /// Probability a matching delivery to the target is withheld.
    pub control: f64,
    /// Which transactions the adversary withholds.
    pub predicate: WithholdPredicate,
}

/// Spy-resistant diffusion delays: first-hop announcement stalling (à la
/// Dandelion stem phases or trickle timers) that postpones when
/// *observers* first hear of a transaction without delaying miners.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct DiffusionDelay {
    /// Probability a (transaction, observer) first delivery is stalled.
    pub stall_prob: f64,
    /// Upper bound of the uniform extra delay, in milliseconds.
    pub max_stall_ms: u64,
}

/// The adversarial-observation model for one scenario: attacks on *what
/// the measurement fleet sees* rather than on the link substrate
/// ([`LinkFaults`]) or the observer daemon ([`ObserverFaults`]).
///
/// Like the fault plan, the empty plan — [`AdversaryPlan::none`] — is
/// bit-inert: the runner guards every draw behind
/// [`AdversaryPlan::enabled`] (and per-component checks), so a run under
/// the empty plan is byte-identical to one without adversary support.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct AdversaryPlan {
    /// Targeted observer partitions.
    pub eclipses: Vec<EclipseWindow>,
    /// Selectively-withholding peer neighborhoods.
    pub withholds: Vec<WithholdRule>,
    /// First-hop announcement stalling toward observers.
    pub diffusion: Option<DiffusionDelay>,
}

impl AdversaryPlan {
    /// The empty plan: no adversary, no draw, bit-identical runs.
    pub fn none() -> AdversaryPlan {
        AdversaryPlan::default()
    }

    /// True when any attack can fire anywhere.
    pub fn enabled(&self) -> bool {
        !self.eclipses.is_empty()
            || self.withholds.iter().any(|w| w.control > 0.0)
            || self.diffusion.is_some_and(|d| d.stall_prob > 0.0)
    }

    /// Sanity checks against a fleet of `fleet_size` observers.
    pub fn validate(&self, fleet_size: usize) -> Result<(), FaultPlanError> {
        for e in &self.eclipses {
            if e.observer >= fleet_size {
                return Err(FaultPlanError::UnknownObserver { observer: e.observer, fleet_size });
            }
            if e.end_secs <= e.start_secs {
                return Err(FaultPlanError::EmptyEclipseWindow {
                    start_secs: e.start_secs,
                    end_secs: e.end_secs,
                });
            }
        }
        for w in &self.withholds {
            if let Some(obs) = w.observer {
                if obs >= fleet_size {
                    return Err(FaultPlanError::UnknownObserver { observer: obs, fleet_size });
                }
            }
            check_range("withhold.control", w.control, 0.0, 1.0)?;
        }
        if let Some(d) = self.diffusion {
            check_range("diffusion.stall_prob", d.stall_prob, 0.0, 1.0)?;
        }
        Ok(())
    }

    /// True when observer `obs` is eclipsed at millisecond instant `t_ms`.
    /// Deterministic; consumes no RNG state.
    pub fn eclipsed(&self, obs: usize, t_ms: u64) -> bool {
        self.eclipses.iter().any(|e| e.observer == obs && e.contains_ms(t_ms))
    }

    /// Whether the delivery of a transaction (with the given provenance
    /// and fee rate) to observer `obs` is withheld. One draw per rule
    /// whose target and predicate match — rules that cannot fire consume
    /// no RNG state, keeping the empty plan bit-inert.
    pub fn withholds_delivery(
        &self,
        obs: usize,
        miner_origin: bool,
        fee_rate_sat_per_kvb: u64,
        rng: &mut SimRng,
    ) -> bool {
        let mut withheld = false;
        for w in &self.withholds {
            if w.control <= 0.0 {
                continue;
            }
            if w.observer.is_some_and(|t| t != obs) {
                continue;
            }
            if !w.predicate.matches(miner_origin, fee_rate_sat_per_kvb) {
                continue;
            }
            // Draw for every matching rule (not short-circuiting on the
            // first hit) so the stream stays aligned across observers.
            if rng.next_bool(w.control) {
                withheld = true;
            }
        }
        withheld
    }

    /// True when any withhold rule could match a delivery to observer
    /// `obs` — the guard that keeps fee-rate computation off the
    /// no-adversary fast path.
    pub fn may_withhold(&self, obs: usize) -> bool {
        self.withholds.iter().any(|w| w.control > 0.0 && w.observer.is_none_or(|t| t == obs))
    }

    /// Extra announcement delay toward an observer, in milliseconds.
    /// Draws only when diffusion stalling is enabled.
    pub fn diffusion_extra_ms(&self, rng: &mut SimRng) -> u64 {
        match self.diffusion {
            Some(d) if d.stall_prob > 0.0 && rng.next_bool(d.stall_prob) => {
                1 + rng.next_below(d.max_stall_ms.max(1))
            }
            _ => 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_is_inert_and_valid() {
        let plan = FaultPlan::none();
        assert!(!plan.enabled());
        assert_eq!(plan.validate(), Ok(()));
        assert!(plan.observer.downtime_windows_ms(86_400_000).is_empty());
    }

    #[test]
    fn scaled_zero_equals_none() {
        assert_eq!(FaultPlan::scaled(0.0), FaultPlan::none());
    }

    #[test]
    fn scaled_plans_validate_across_range() {
        for i in [0.1, 0.35, 0.6, 0.85, 1.0] {
            let plan = FaultPlan::scaled(i);
            assert!(plan.enabled(), "intensity {i} should enable faults");
            assert_eq!(plan.validate(), Ok(()), "intensity {i}");
        }
    }

    #[test]
    fn scaled_is_monotone_in_intensity() {
        let lo = FaultPlan::scaled(0.3);
        let hi = FaultPlan::scaled(0.9);
        assert!(hi.link.loss_prob > lo.link.loss_prob);
        assert!(hi.observer.downtime_frac > lo.observer.downtime_frac);
        assert!(hi.stale_tip_prob > lo.stale_tip_prob);
    }

    #[test]
    fn downtime_windows_cover_requested_fraction() {
        let obs = ObserverFaults {
            downtime_frac: 0.3,
            downtime_spells: 3,
            truncate_prob: 0.0,
            truncate_keep_frac: 1.0,
        };
        let duration = 600_000u64;
        let windows = obs.downtime_windows_ms(duration);
        assert_eq!(windows.len(), 3);
        let covered: u64 = windows.iter().map(|(s, e)| e - s).sum();
        let frac = covered as f64 / duration as f64;
        assert!((frac - 0.3).abs() < 0.02, "covered {frac}");
        // Windows are disjoint and ordered.
        for pair in windows.windows(2) {
            assert!(pair[0].1 <= pair[1].0, "overlapping windows {windows:?}");
        }
    }

    #[test]
    fn invalid_plans_rejected() {
        let mut plan = FaultPlan::none();
        plan.link.loss_prob = 1.5;
        assert!(plan.validate().is_err());

        let mut plan = FaultPlan::none();
        plan.observer.downtime_frac = 0.95;
        assert!(plan.validate().is_err());

        let mut plan = FaultPlan::none();
        plan.observer.downtime_frac = 0.2;
        plan.observer.downtime_spells = 0;
        assert!(plan.validate().is_err());
    }

    #[test]
    fn loss_rate_tracks_probability() {
        let faults = LinkFaults { loss_prob: 0.4, ..LinkFaults::none() };
        let mut rng = SimRng::seed_from_u64(11);
        let lost = (0..10_000).filter(|_| faults.sample_delivery(&mut rng).is_none()).count();
        let rate = lost as f64 / 10_000.0;
        assert!((rate - 0.4).abs() < 0.03, "loss rate {rate}");
    }

    #[test]
    fn non_finite_knobs_rejected_with_typed_error() {
        assert!(matches!(
            FaultPlan::try_scaled(f64::NAN),
            Err(FaultPlanError::NonFinite { field: "intensity", value }) if value.is_nan()
        ));
        assert!(matches!(
            FaultPlan::try_scaled(f64::INFINITY),
            Err(FaultPlanError::NonFinite { field: "intensity", .. })
        ));
        assert_eq!(
            FaultPlan::try_scaled(-0.2),
            Err(FaultPlanError::OutOfRange { field: "intensity", value: -0.2, min: 0.0, max: 1.0 })
        );
        assert_eq!(FaultPlan::try_scaled(1.0), Ok(FaultPlan::scaled(1.0)));
        assert_eq!(FaultPlan::try_scaled(0.0), Ok(FaultPlan::none()));

        // A NaN smuggled into a knob no longer slips past validation.
        let mut plan = FaultPlan::none();
        plan.link.loss_prob = f64::NAN;
        assert!(matches!(
            plan.validate(),
            Err(FaultPlanError::NonFinite { field: "link.loss_prob", .. })
        ));
    }

    #[test]
    #[should_panic(expected = "must be finite")]
    fn scaled_panics_on_nan_instead_of_propagating_it() {
        let _ = FaultPlan::scaled(f64::NAN);
    }

    #[test]
    fn scaled_clamps_finite_out_of_range() {
        assert_eq!(FaultPlan::scaled(-3.0), FaultPlan::none());
        assert_eq!(FaultPlan::scaled(7.5), FaultPlan::scaled(1.0));
    }

    #[test]
    fn empty_adversary_plan_is_inert_and_valid() {
        let plan = AdversaryPlan::none();
        assert!(!plan.enabled());
        assert_eq!(plan.validate(4), Ok(()));
        assert!(!plan.eclipsed(0, 0));
        assert!(!plan.may_withhold(0));
        // No knob on: sampling must consume no RNG state.
        let mut a = SimRng::seed_from_u64(5);
        let mut b = SimRng::seed_from_u64(5);
        assert!(!plan.withholds_delivery(0, true, 1_000_000, &mut a));
        assert_eq!(plan.diffusion_extra_ms(&mut a), 0);
        assert_eq!(a.next_raw(), b.next_raw());
    }

    #[test]
    fn eclipse_window_boundaries_are_half_open() {
        let e = EclipseWindow { observer: 1, start_secs: 100, end_secs: 200 };
        assert!(!e.contains_ms(99_999));
        assert!(e.contains_ms(100_000), "opening edge is eclipsed");
        assert!(e.contains_ms(199_999));
        assert!(!e.contains_ms(200_000), "closing edge is not");
        let plan = AdversaryPlan { eclipses: vec![e], ..AdversaryPlan::none() };
        assert!(plan.enabled());
        assert!(plan.eclipsed(1, 100_000));
        assert!(!plan.eclipsed(0, 100_000), "only the targeted observer");
        assert!(!plan.eclipsed(1, 200_000));
    }

    #[test]
    fn adversary_plan_validation_catches_bad_targets() {
        let plan = AdversaryPlan {
            eclipses: vec![EclipseWindow { observer: 4, start_secs: 0, end_secs: 10 }],
            ..AdversaryPlan::none()
        };
        assert_eq!(
            plan.validate(4),
            Err(FaultPlanError::UnknownObserver { observer: 4, fleet_size: 4 })
        );

        let plan = AdversaryPlan {
            eclipses: vec![EclipseWindow { observer: 0, start_secs: 10, end_secs: 10 }],
            ..AdversaryPlan::none()
        };
        assert!(matches!(plan.validate(1), Err(FaultPlanError::EmptyEclipseWindow { .. })));

        let plan = AdversaryPlan {
            withholds: vec![WithholdRule {
                observer: Some(9),
                control: 0.5,
                predicate: WithholdPredicate::All,
            }],
            ..AdversaryPlan::none()
        };
        assert!(matches!(plan.validate(2), Err(FaultPlanError::UnknownObserver { .. })));

        let plan = AdversaryPlan {
            withholds: vec![WithholdRule {
                observer: None,
                control: f64::NAN,
                predicate: WithholdPredicate::All,
            }],
            ..AdversaryPlan::none()
        };
        assert!(matches!(plan.validate(2), Err(FaultPlanError::NonFinite { .. })));

        let plan = AdversaryPlan {
            diffusion: Some(DiffusionDelay { stall_prob: 1.5, max_stall_ms: 100 }),
            ..AdversaryPlan::none()
        };
        assert!(matches!(plan.validate(2), Err(FaultPlanError::OutOfRange { .. })));
    }

    #[test]
    fn withhold_predicates_select_their_traffic() {
        assert!(WithholdPredicate::All.matches(false, 0));
        assert!(WithholdPredicate::HighFee { min_sat_per_kvb: 50_000 }.matches(false, 50_000));
        assert!(!WithholdPredicate::HighFee { min_sat_per_kvb: 50_000 }.matches(false, 49_999));
        assert!(WithholdPredicate::MinerOrigin.matches(true, 0));
        assert!(!WithholdPredicate::MinerOrigin.matches(false, 1_000_000));
    }

    #[test]
    fn withhold_rate_tracks_control_on_target_only() {
        let plan = AdversaryPlan {
            withholds: vec![WithholdRule {
                observer: Some(2),
                control: 0.6,
                predicate: WithholdPredicate::All,
            }],
            ..AdversaryPlan::none()
        };
        assert!(plan.may_withhold(2));
        assert!(!plan.may_withhold(1));
        let mut rng = SimRng::seed_from_u64(17);
        let hits =
            (0..10_000).filter(|_| plan.withholds_delivery(2, false, 0, &mut rng)).count();
        let rate = hits as f64 / 10_000.0;
        assert!((rate - 0.6).abs() < 0.03, "withhold rate {rate}");
        // A non-target observer is never withheld (and draws nothing).
        let mut a = SimRng::seed_from_u64(3);
        let mut b = SimRng::seed_from_u64(3);
        assert!(!plan.withholds_delivery(0, false, 0, &mut a));
        assert_eq!(a.next_raw(), b.next_raw());
    }

    #[test]
    fn diffusion_stall_bounded_and_sometimes_zero() {
        let plan = AdversaryPlan {
            diffusion: Some(DiffusionDelay { stall_prob: 0.5, max_stall_ms: 2_000 }),
            ..AdversaryPlan::none()
        };
        assert!(plan.enabled());
        let mut rng = SimRng::seed_from_u64(29);
        let mut stalled = 0;
        for _ in 0..5_000 {
            let extra = plan.diffusion_extra_ms(&mut rng);
            assert!(extra <= 2_000);
            if extra > 0 {
                stalled += 1;
            }
        }
        let rate = stalled as f64 / 5_000.0;
        assert!((rate - 0.5).abs() < 0.05, "stall rate {rate}");
    }

    #[test]
    fn error_display_is_informative() {
        let e = FaultPlanError::OutOfRange { field: "intensity", value: 2.0, min: 0.0, max: 1.0 };
        assert!(e.to_string().contains("intensity"), "{e}");
        assert!(FaultPlanError::MissingSpells.to_string().contains("spell"));
        let e = FaultPlanError::UnknownObserver { observer: 7, fleet_size: 4 };
        assert!(e.to_string().contains('7') && e.to_string().contains('4'), "{e}");
    }

    #[test]
    fn disabled_knobs_never_draw() {
        // A plan with everything off must not consume rng state even when
        // sampled — that is what keeps FaultPlan::none() bit-inert.
        let faults = LinkFaults::none();
        let mut a = SimRng::seed_from_u64(3);
        let b = SimRng::seed_from_u64(3);
        assert_eq!(faults.sample_delivery(&mut a), Some(0));
        assert_eq!(faults.sample_duplicate(&mut a), None);
        let mut a2 = a;
        let mut b2 = b;
        assert_eq!(a2.next_raw(), b2.next_raw());
    }
}
