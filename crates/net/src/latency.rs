//! Per-link propagation delays.

use crate::topology::Topology;
use cn_stats::{LogNormal, SimRng};
use std::collections::HashMap;

/// Propagation latency for every edge of a topology, in (fractional)
/// seconds.
///
/// Transaction relay in Bitcoin involves inv/getdata/tx round-trips plus
/// batching delays, so effective per-hop latency is on the order of
/// seconds; a log-normal captures its spread. Latencies are sampled once
/// per link at construction (a link's delay is stable relative to the
/// inter-arrival times we study).
#[derive(Clone, Debug)]
pub struct LatencyModel {
    link: HashMap<(usize, usize), f64>,
}

impl LatencyModel {
    /// Samples link latencies: log-normal with the given median (seconds)
    /// and log-space sigma.
    pub fn sample(topology: &Topology, median_secs: f64, sigma: f64, rng: &mut SimRng) -> Self {
        let dist = LogNormal::with_median(median_secs, sigma);
        let mut link = HashMap::new();
        for (a, b) in topology.edges() {
            link.insert((a, b), dist.sample(rng));
        }
        LatencyModel { link }
    }

    /// The latency of the edge `{a, b}`.
    ///
    /// # Panics
    /// Panics for a non-edge — a bug in the caller's traversal.
    pub fn get(&self, a: usize, b: usize) -> f64 {
        let key = if a < b { (a, b) } else { (b, a) };
        *self.link.get(&key).unwrap_or_else(|| panic!("no edge {a}-{b}"))
    }

    /// Number of links.
    pub fn len(&self) -> usize {
        self.link.len()
    }

    /// True when the model covers no links.
    pub fn is_empty(&self) -> bool {
        self.link.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (Topology, LatencyModel) {
        let mut rng = SimRng::seed_from_u64(4);
        let t = Topology::random(12, &[4; 12], &mut rng);
        let l = LatencyModel::sample(&t, 1.5, 0.6, &mut rng);
        (t, l)
    }

    #[test]
    fn covers_every_edge_symmetrically() {
        let (t, l) = setup();
        assert_eq!(l.len(), t.edges().count());
        for (a, b) in t.edges() {
            assert_eq!(l.get(a, b), l.get(b, a));
            assert!(l.get(a, b) > 0.0);
        }
    }

    #[test]
    fn median_roughly_calibrated() {
        let mut rng = SimRng::seed_from_u64(7);
        let t = Topology::random(100, &vec![10; 100], &mut rng);
        let l = LatencyModel::sample(&t, 2.0, 0.5, &mut rng);
        let mut values: Vec<f64> = t.edges().map(|(a, b)| l.get(a, b)).collect();
        values.sort_by(|x, y| x.partial_cmp(y).expect("finite"));
        let median = values[values.len() / 2];
        assert!((median / 2.0 - 1.0).abs() < 0.25, "median {median}");
    }

    #[test]
    #[should_panic(expected = "no edge")]
    fn non_edge_panics() {
        let (_, l) = setup();
        let _ = l.get(0, 0);
    }
}
