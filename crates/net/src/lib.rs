//! # cn-net — simulated Bitcoin P2P substrate
//!
//! The paper's measurement nodes see transactions at different times than
//! the miners do — that is why §4.2.1 tightens its violation test with an
//! ε margin (10 s / 10 min) and why dataset ℬ's node was configured with
//! 125 peers instead of the default 8. This crate models exactly the part
//! of the P2P layer those details depend on: *who first hears about a
//! transaction, and when*.
//!
//! * [`topology::Topology`] — random degree-bounded connected graphs; an
//!   observer's peer count is its degree.
//! * [`latency::LatencyModel`] — per-link log-normal propagation delays
//!   (inv/getdata round-trips in real Bitcoin take on the order of
//!   seconds).
//! * [`faults::FaultPlan`] — declarative degradation of the substrate:
//!   lossy/spiky/duplicating links, observer downtime and truncated
//!   snapshot dumps, stale-tip block races.
//! * [`faults::AdversaryPlan`] — adversarial observation scenarios aimed
//!   at the measurement fleet: targeted observer eclipses, selectively
//!   withholding peer neighborhoods, and spy-resistant diffusion delays.
//! * [`network::Network`] — nodes with roles (relay, observer, miner hub),
//!   each stakeholder holding its own [`cn_mempool::Mempool`] view.
//!   Flooding is modelled exactly: under flood relay the first arrival at
//!   a node equals the shortest-path latency from the origin, so
//!   propagation is computed with Dijkstra rather than per-hop events.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod faults;
pub mod latency;
pub mod network;
pub mod topology;

pub use faults::{
    AdversaryPlan, DiffusionDelay, EclipseWindow, FaultPlan, FaultPlanError, LinkFaults,
    ObserverFaults, WithholdPredicate, WithholdRule,
};
pub use latency::LatencyModel;
pub use network::{Network, NodeId, NodeRole, RelayPayload};
pub use topology::Topology;
