//! The network: roles, per-stakeholder Mempool views, flood propagation.

use crate::latency::LatencyModel;
use crate::topology::Topology;
use cn_chain::{Amount, Block, Timestamp, Transaction, Txid};
use cn_mempool::{AcceptError, AdmissionPrecheck, Mempool, MempoolPolicy};
use cn_stats::Pool;
use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashMap};
use std::sync::{Arc, OnceLock};

/// Index of a node in the network.
pub type NodeId = usize;

/// A broadcast transaction's relay state, shared by every delivery it
/// fans out to: the simulator allocates **one** `Arc<RelayPayload>` per
/// broadcast and every per-node delivery event holds a handle, instead of
/// cloning a transaction handle plus fee per delivery. The txid is
/// captured once so delivery bookkeeping never re-reads the transaction.
#[derive(Clone, Debug)]
pub struct RelayPayload {
    /// Cached transaction id.
    pub txid: Txid,
    /// The transaction body (shared; never copied per delivery).
    pub tx: Arc<Transaction>,
    /// The public fee the broadcast offers.
    pub fee: Amount,
    /// Node-independent admission prefix, computed lazily on the first
    /// delivery and shared by every subsequent one — once per transaction
    /// instead of once per (tx, node).
    precheck: OnceLock<AdmissionPrecheck>,
}

impl RelayPayload {
    /// Wraps a transaction and its fee for relay.
    pub fn new(tx: Arc<Transaction>, fee: Amount) -> RelayPayload {
        RelayPayload { txid: tx.txid(), tx, fee, precheck: OnceLock::new() }
    }

    /// The shared admission precheck, computed on first use and memoized
    /// for the rest of the fan-out.
    pub fn precheck(&self) -> &AdmissionPrecheck {
        self.precheck.get_or_init(|| AdmissionPrecheck::of(&self.tx, self.fee))
    }

    /// True when the precheck memo is already populated — a later delivery
    /// reusing the first one's work.
    pub fn precheck_cached(&self) -> bool {
        self.precheck.get().is_some()
    }
}

/// What a node does.
#[derive(Clone, Debug, PartialEq)]
pub enum NodeRole {
    /// Pure relay: forwards traffic, keeps no Mempool we care about.
    Relay,
    /// A measurement node recording a Mempool view (the paper's full
    /// nodes behind datasets 𝒜 and ℬ).
    Observer {
        /// The node's Mempool acceptance policy (dataset ℬ disabled the
        /// fee floor).
        policy: MempoolPolicy,
    },
    /// The network attachment point of one or more mining pools; its
    /// Mempool view is what the pools' `GetBlockTemplate` draws from.
    MinerHub {
        /// Hub label (the simulator keeps its own pool-to-hub map).
        pool: usize,
        /// The hub's Mempool acceptance policy — `accept_all` models the
        /// §4.2.3 pools that mine below-floor transactions.
        policy: MempoolPolicy,
    },
}

/// A simulated P2P network.
///
/// Flooding delivers a message to each node along the fastest path, so
/// first-arrival times are shortest-path distances in the latency graph —
/// computed with Dijkstra instead of simulating every hop.
#[derive(Clone, Debug)]
pub struct Network {
    topology: Topology,
    latency: LatencyModel,
    roles: Vec<NodeRole>,
    mempools: HashMap<NodeId, Mempool>,
    /// Per-origin first-arrival vectors, filled on first use. Topology and
    /// latencies never change after construction, so a cached single-source
    /// run stays valid for the network's lifetime.
    propagation: Vec<OnceLock<Vec<f64>>>,
    /// Stakeholder nodes (every node owning a Mempool), sorted once for
    /// deterministic admission order.
    stakeholder_order: Vec<NodeId>,
    /// Pooled arrival buffer reused across [`Network::broadcast_tx`] calls
    /// so a broadcast never clones the cached propagation vector.
    arrival_scratch: Vec<f64>,
}

/// Max-heap adapter for Dijkstra's min-priority queue over f64 distances.
#[derive(PartialEq)]
struct QueueItem {
    dist: f64,
    node: NodeId,
}

impl Eq for QueueItem {}

impl Ord for QueueItem {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: smaller distance = greater priority. Distances are
        // finite sums of finite latencies, so partial_cmp cannot fail.
        other
            .dist
            .partial_cmp(&self.dist)
            .expect("finite distances")
            .then_with(|| other.node.cmp(&self.node))
    }
}

impl PartialOrd for QueueItem {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Network {
    /// Assembles a network; one Mempool is allocated per observer and
    /// miner hub.
    ///
    /// # Panics
    /// Panics when `roles.len()` differs from the topology's node count.
    pub fn new(topology: Topology, latency: LatencyModel, roles: Vec<NodeRole>) -> Network {
        assert_eq!(roles.len(), topology.len(), "one role per node");
        let mut mempools = HashMap::new();
        for (id, role) in roles.iter().enumerate() {
            match role {
                NodeRole::Observer { policy } => {
                    mempools.insert(id, Mempool::new(*policy));
                }
                NodeRole::MinerHub { policy, .. } => {
                    mempools.insert(id, Mempool::new(*policy));
                }
                NodeRole::Relay => {}
            }
        }
        let propagation = (0..topology.len()).map(|_| OnceLock::new()).collect();
        let mut stakeholder_order: Vec<NodeId> = mempools.keys().copied().collect();
        stakeholder_order.sort_unstable();
        Network {
            topology,
            latency,
            roles,
            mempools,
            propagation,
            stakeholder_order,
            arrival_scratch: Vec::new(),
        }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.topology.len()
    }

    /// True when the network has no nodes.
    pub fn is_empty(&self) -> bool {
        self.topology.is_empty()
    }

    /// The role of `node`.
    pub fn role(&self, node: NodeId) -> &NodeRole {
        &self.roles[node]
    }

    /// Ids of all observer nodes.
    pub fn observers(&self) -> Vec<NodeId> {
        self.roles
            .iter()
            .enumerate()
            .filter(|(_, r)| matches!(r, NodeRole::Observer { .. }))
            .map(|(i, _)| i)
            .collect()
    }

    /// Ids of all miner-hub nodes, with their pool indexes.
    pub fn miner_hubs(&self) -> Vec<(NodeId, usize)> {
        self.roles
            .iter()
            .enumerate()
            .filter_map(|(i, r)| match r {
                NodeRole::MinerHub { pool, .. } => Some((i, *pool)),
                _ => None,
            })
            .collect()
    }

    /// The Mempool view held at `node` (observers and miner hubs only).
    pub fn mempool(&self, node: NodeId) -> Option<&Mempool> {
        self.mempools.get(&node)
    }

    /// Mutable access to a node's Mempool view.
    pub fn mempool_mut(&mut self, node: NodeId) -> Option<&mut Mempool> {
        self.mempools.get_mut(&node)
    }

    /// First-arrival time (in fractional seconds after emission) of a
    /// flooded message from `origin` at every node — single-source
    /// shortest paths over link latencies. The run is computed once per
    /// origin and cached (the latency graph is immutable), so repeated
    /// broadcasts from the same node cost one slice lookup.
    pub fn propagation_from(&self, origin: NodeId) -> &[f64] {
        self.propagation[origin].get_or_init(|| {
            let n = self.len();
            let mut dist = vec![f64::INFINITY; n];
            dist[origin] = 0.0;
            let mut heap = BinaryHeap::new();
            heap.push(QueueItem { dist: 0.0, node: origin });
            while let Some(QueueItem { dist: d, node }) = heap.pop() {
                if d > dist[node] {
                    continue;
                }
                for &next in self.topology.neighbors(node) {
                    let nd = d + self.latency.get(node, next);
                    if nd < dist[next] {
                        dist[next] = nd;
                        heap.push(QueueItem { dist: nd, node: next });
                    }
                }
            }
            dist
        })
    }

    /// Broadcasts a transaction issued at `origin` at absolute time `when`
    /// (seconds): every stakeholder Mempool sees it at `when +
    /// first-arrival`, rounded to whole seconds. Returns, for each
    /// stakeholder node, the arrival time and the admission outcome.
    pub fn broadcast_tx(
        &mut self,
        origin: NodeId,
        tx: Arc<Transaction>,
        fee: Amount,
        when: Timestamp,
    ) -> Vec<(NodeId, Timestamp, Result<(), AcceptError>)> {
        // Reuse the pooled buffer: `propagation_from` borrows `self`
        // immutably while the admission loop below needs `&mut`, so the
        // arrivals are staged through a scratch vector that persists
        // across broadcasts instead of a fresh clone per call.
        let mut arrivals = std::mem::take(&mut self.arrival_scratch);
        arrivals.clear();
        arrivals.extend_from_slice(self.propagation_from(origin));
        // The admission prefix is node-independent: compute it once for the
        // whole stakeholder fan-out.
        let pre = AdmissionPrecheck::of(&tx, fee);
        let mut results = Vec::with_capacity(self.stakeholder_order.len());
        for i in 0..self.stakeholder_order.len() {
            let node = self.stakeholder_order[i]; // sorted: deterministic admission order
            let arrival = when + arrivals[node].round() as Timestamp;
            let outcome = self
                .mempools
                .get_mut(&node)
                .expect("stakeholder has a mempool")
                .add_prechecked(Arc::clone(&tx), fee, arrival, &pre)
                .map(|_| ());
            results.push((node, arrival, outcome));
        }
        self.arrival_scratch = arrivals;
        results
    }

    /// Connects a freshly mined block on every stakeholder Mempool.
    ///
    /// Block propagation (seconds) is far shorter than the inter-block
    /// interval (minutes) and does not influence ordering metrics, so the
    /// connect is applied instantaneously; stale-tip races are out of
    /// scope.
    pub fn apply_block(&mut self, block: &Block) {
        for mempool in self.mempools.values_mut() {
            mempool.apply_block(block);
        }
    }

    /// Like [`Network::apply_block`], but fans the per-node connects across
    /// `pool`'s workers. Every stakeholder view connects the same block
    /// independently (no shared state, no RNG), so the fan-out is
    /// byte-identical to the serial loop at any worker count.
    pub fn apply_block_parallel(&mut self, block: &Block, pool: &Pool) {
        if pool.workers() <= 1 || self.mempools.len() <= 1 {
            self.apply_block(block);
            return;
        }
        let mut views: Vec<&mut Mempool> = self.mempools.values_mut().collect();
        pool.for_each_mut(&mut views, |mempool| {
            mempool.apply_block(block);
        });
    }

    /// Disjoint mutable Mempool views for every stakeholder, for batched
    /// admission fan-outs that partition work by receiving node.
    pub fn mempools_iter_mut(&mut self) -> impl Iterator<Item = (NodeId, &mut Mempool)> + '_ {
        self.mempools.iter_mut().map(|(&node, mempool)| (node, mempool))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cn_chain::{Address, TxOut};
    use cn_stats::SimRng;

    fn network(observer_policy: MempoolPolicy) -> Network {
        let mut rng = SimRng::seed_from_u64(11);
        let n = 10;
        let mut degrees = vec![4; n];
        degrees[0] = 8; // observer
        let topology = Topology::random(n, &degrees, &mut rng);
        let latency = LatencyModel::sample(&topology, 1.5, 0.5, &mut rng);
        let mut roles = vec![NodeRole::Relay; n];
        roles[0] = NodeRole::Observer { policy: observer_policy };
        roles[5] = NodeRole::MinerHub { pool: 0, policy: MempoolPolicy::default() };
        Network::new(topology, latency, roles)
    }

    fn tx(seed: u8) -> Arc<Transaction> {
        Arc::new(
            Transaction::builder()
                .add_input_with_sizes([seed; 32].into(), 0, 107, 0)
                .add_output(TxOut::to_address(Amount::from_sat(1_000), Address::from_label("r")))
                .build(),
        )
    }

    #[test]
    fn roles_create_mempools() {
        let net = network(MempoolPolicy::default());
        assert!(net.mempool(0).is_some());
        assert!(net.mempool(5).is_some());
        assert!(net.mempool(1).is_none());
        assert_eq!(net.observers(), vec![0]);
        assert_eq!(net.miner_hubs(), vec![(5, 0)]);
    }

    #[test]
    fn propagation_is_metric_like() {
        let net = network(MempoolPolicy::default());
        let d = net.propagation_from(3);
        assert_eq!(d[3], 0.0);
        for (i, &v) in d.iter().enumerate() {
            assert!(v.is_finite(), "node {i} unreachable");
            if i != 3 {
                assert!(v > 0.0);
            }
        }
    }

    #[test]
    fn broadcast_delivers_with_origin_dependent_delay() {
        let mut net = network(MempoolPolicy::default());
        let t = tx(1);
        let fee = Amount::from_sat(t.vsize() * 10);
        let results = net.broadcast_tx(3, Arc::clone(&t), fee, 1_000);
        assert_eq!(results.len(), 2); // observer + hub
        for (node, arrival, outcome) in &results {
            assert!(*arrival >= 1_000);
            assert!(outcome.is_ok());
            assert!(net.mempool(*node).expect("stakeholder").contains(&t.txid()));
            assert_eq!(
                net.mempool(*node).expect("stakeholder").get(&t.txid()).expect("in").received(),
                *arrival
            );
        }
    }

    #[test]
    fn strict_observer_rejects_low_fee_while_hub_view_differs() {
        let mut net = network(MempoolPolicy::default());
        let t = tx(2);
        let results = net.broadcast_tx(3, Arc::clone(&t), Amount::ZERO, 0);
        for (_, _, outcome) in &results {
            assert!(matches!(outcome, Err(AcceptError::BelowMinFeeRate { .. })));
        }
        // A no-floor observer accepts the same broadcast.
        let mut lax = network(MempoolPolicy::accept_all());
        let results = lax.broadcast_tx(3, Arc::clone(&t), Amount::ZERO, 0);
        let observer_outcome = &results.iter().find(|(n, _, _)| *n == 0).expect("observer").2;
        assert!(observer_outcome.is_ok());
    }

    #[test]
    fn apply_block_clears_all_views() {
        let mut net = network(MempoolPolicy::default());
        let t = tx(3);
        let fee = Amount::from_sat(t.vsize() * 10);
        net.broadcast_tx(2, Arc::clone(&t), fee, 0);
        let cb = cn_chain::CoinbaseBuilder::new(1)
            .reward(Address::from_label("p"), Amount::from_btc(6))
            .build();
        let block = Block::assemble(
            2,
            cn_chain::BlockHash::ZERO,
            600,
            0,
            cb,
            vec![(*t).clone()],
        );
        net.apply_block(&block);
        assert!(!net.mempool(0).expect("obs").contains(&t.txid()));
        assert!(!net.mempool(5).expect("hub").contains(&t.txid()));
    }

    #[test]
    fn different_origins_give_different_arrival_orders() {
        // The root cause of the paper's ε adjustment: two transactions
        // issued from different corners of the network can arrive at the
        // observer in either order.
        let net = network(MempoolPolicy::default());
        let from_2 = net.propagation_from(2);
        let from_8 = net.propagation_from(8);
        // Find the observer's arrival offsets; they must differ by origin.
        assert_ne!(from_2[0], from_8[0]);
    }
}
