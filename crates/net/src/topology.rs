//! Random connected peer graphs with per-node degree targets.

use cn_stats::SimRng;

/// An undirected peer graph.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Topology {
    adj: Vec<Vec<usize>>,
}

impl Topology {
    /// Generates a connected random graph over `n` nodes where node `i`
    /// initiates `degrees[i]` outbound connections to distinct random
    /// peers (mirroring Bitcoin's 8-outbound default; the paper's
    /// dataset-ℬ observer used 125). A ring backbone guarantees
    /// connectivity.
    ///
    /// # Panics
    /// Panics when `degrees.len() != n` or `n < 2`.
    pub fn random(n: usize, degrees: &[usize], rng: &mut SimRng) -> Topology {
        assert!(n >= 2, "need at least two nodes");
        assert_eq!(degrees.len(), n, "one degree target per node");
        let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
        let connect = |adj: &mut Vec<Vec<usize>>, a: usize, b: usize| {
            if a != b && !adj[a].contains(&b) {
                adj[a].push(b);
                adj[b].push(a);
            }
        };
        // Ring backbone keeps the graph connected regardless of the draw.
        for i in 0..n {
            connect(&mut adj, i, (i + 1) % n);
        }
        for (i, &target) in degrees.iter().enumerate() {
            let mut attempts = 0;
            while adj[i].len() < target && attempts < 20 * target.max(1) {
                let peer = rng.next_below(n as u64) as usize;
                connect(&mut adj, i, peer);
                attempts += 1;
            }
        }
        Topology { adj }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.adj.len()
    }

    /// True when the graph has no nodes (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.adj.is_empty()
    }

    /// Neighbors of `node`.
    pub fn neighbors(&self, node: usize) -> &[usize] {
        &self.adj[node]
    }

    /// The degree (peer count) of `node`.
    pub fn degree(&self, node: usize) -> usize {
        self.adj[node].len()
    }

    /// Iterates every undirected edge once, as `(a, b)` with `a < b`.
    pub fn edges(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        self.adj
            .iter()
            .enumerate()
            .flat_map(|(a, peers)| peers.iter().filter(move |&&b| a < b).map(move |&b| (a, b)))
    }

    /// True when every node can reach every other (sanity check).
    pub fn is_connected(&self) -> bool {
        let n = self.len();
        if n == 0 {
            return true;
        }
        let mut seen = vec![false; n];
        let mut stack = vec![0usize];
        let mut count = 0;
        while let Some(v) = stack.pop() {
            if seen[v] {
                continue;
            }
            seen[v] = true;
            count += 1;
            stack.extend(self.adj[v].iter().copied().filter(|&u| !seen[u]));
        }
        count == n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn always_connected() {
        for seed in 0..10 {
            let mut rng = SimRng::seed_from_u64(seed);
            let degrees = vec![8; 30];
            let t = Topology::random(30, &degrees, &mut rng);
            assert!(t.is_connected(), "seed {seed}");
        }
    }

    #[test]
    fn degrees_roughly_honored() {
        let mut rng = SimRng::seed_from_u64(1);
        let mut degrees = vec![8; 40];
        degrees[0] = 30; // well-connected observer
        let t = Topology::random(40, &degrees, &mut rng);
        assert!(t.degree(0) >= 25, "observer degree {}", t.degree(0));
        // Ordinary nodes should stay near their target (ring + inbound).
        assert!(t.degree(5) >= 8);
    }

    #[test]
    fn edges_are_symmetric_and_unique() {
        let mut rng = SimRng::seed_from_u64(2);
        let t = Topology::random(20, &[5; 20], &mut rng);
        for (a, b) in t.edges() {
            assert!(a < b);
            assert!(t.neighbors(a).contains(&b));
            assert!(t.neighbors(b).contains(&a));
        }
        // No duplicate neighbors.
        for v in 0..t.len() {
            let mut peers = t.neighbors(v).to_vec();
            peers.sort_unstable();
            peers.dedup();
            assert_eq!(peers.len(), t.degree(v));
        }
    }

    #[test]
    fn deterministic_for_seed() {
        let a = Topology::random(15, &[4; 15], &mut SimRng::seed_from_u64(9));
        let b = Topology::random(15, &[4; 15], &mut SimRng::seed_from_u64(9));
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "one degree target per node")]
    fn degree_length_mismatch_panics() {
        let mut rng = SimRng::seed_from_u64(0);
        let _ = Topology::random(5, &[1, 2], &mut rng);
    }
}
