//! Congestion profiles: the transaction arrival-rate function λ(t).
//!
//! Figure 3 of the paper shows the Mempool oscillating between drained and
//! 15× block capacity; dataset ℬ adds sharp price-surge bursts. The
//! arrival process is a nonhomogeneous Poisson process whose rate is a
//! base level modulated by a diurnal wave and explicit burst windows.

use cn_chain::Timestamp;
use serde::{Deserialize, Serialize};

/// A burst window multiplying the base rate.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct Burst {
    /// Window start (seconds).
    pub start: Timestamp,
    /// Window end (exclusive, seconds).
    pub end: Timestamp,
    /// Rate multiplier while inside the window.
    pub multiplier: f64,
}

/// The arrival-rate function.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct CongestionProfile {
    /// Base arrivals per second.
    pub base_rate: f64,
    /// Peak-to-trough amplitude of the diurnal wave, in `[0, 1)`;
    /// 0 disables it.
    pub diurnal_amplitude: f64,
    /// Period of the diurnal wave in seconds (86,400 for a day).
    pub diurnal_period: Timestamp,
    /// Burst windows (may overlap; multipliers compound).
    pub bursts: Vec<Burst>,
}

impl CongestionProfile {
    /// A flat profile with the given rate.
    pub fn flat(rate: f64) -> CongestionProfile {
        assert!(rate > 0.0 && rate.is_finite(), "rate must be positive");
        CongestionProfile {
            base_rate: rate,
            diurnal_amplitude: 0.0,
            diurnal_period: 86_400,
            bursts: Vec::new(),
        }
    }

    /// A daily-wave profile.
    pub fn diurnal(rate: f64, amplitude: f64) -> CongestionProfile {
        assert!((0.0..1.0).contains(&amplitude), "amplitude in [0,1)");
        CongestionProfile { diurnal_amplitude: amplitude, ..CongestionProfile::flat(rate) }
    }

    /// Adds a burst window.
    pub fn with_burst(mut self, start: Timestamp, end: Timestamp, multiplier: f64) -> Self {
        assert!(end > start, "empty burst window");
        assert!(multiplier > 0.0, "multiplier must be positive");
        self.bursts.push(Burst { start, end, multiplier });
        self
    }

    /// λ(t): instantaneous arrivals per second.
    pub fn rate_at(&self, t: Timestamp) -> f64 {
        let phase =
            2.0 * std::f64::consts::PI * (t % self.diurnal_period) as f64 / self.diurnal_period as f64;
        let mut rate = self.base_rate * (1.0 + self.diurnal_amplitude * phase.sin());
        for b in &self.bursts {
            if t >= b.start && t < b.end {
                rate *= b.multiplier;
            }
        }
        rate
    }

    /// An upper bound on λ over all t (for Poisson thinning).
    pub fn max_rate(&self) -> f64 {
        let burst_factor: f64 = self.bursts.iter().map(|b| b.multiplier.max(1.0)).product();
        self.base_rate * (1.0 + self.diurnal_amplitude) * burst_factor
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flat_profile_is_constant() {
        let p = CongestionProfile::flat(2.5);
        assert_eq!(p.rate_at(0), 2.5);
        assert_eq!(p.rate_at(1_000_000), 2.5);
        assert_eq!(p.max_rate(), 2.5);
    }

    #[test]
    fn diurnal_wave_oscillates_around_base() {
        let p = CongestionProfile::diurnal(4.0, 0.5);
        let quarter = p.diurnal_period / 4;
        assert!((p.rate_at(quarter) - 6.0).abs() < 1e-9); // peak: base*(1+a)
        assert!((p.rate_at(3 * quarter) - 2.0).abs() < 1e-9); // trough
        assert!((p.rate_at(0) - 4.0).abs() < 1e-9);
    }

    #[test]
    fn bursts_multiply_inside_window_only() {
        let p = CongestionProfile::flat(1.0).with_burst(100, 200, 5.0);
        assert_eq!(p.rate_at(99), 1.0);
        assert_eq!(p.rate_at(100), 5.0);
        assert_eq!(p.rate_at(199), 5.0);
        assert_eq!(p.rate_at(200), 1.0);
    }

    #[test]
    fn overlapping_bursts_compound() {
        let p = CongestionProfile::flat(1.0)
            .with_burst(0, 100, 2.0)
            .with_burst(50, 150, 3.0);
        assert_eq!(p.rate_at(75), 6.0);
        assert_eq!(p.rate_at(25), 2.0);
        assert_eq!(p.rate_at(125), 3.0);
    }

    #[test]
    fn max_rate_dominates_everywhere() {
        let p = CongestionProfile::diurnal(2.0, 0.4)
            .with_burst(10, 20, 3.0)
            .with_burst(15, 30, 2.0);
        let max = p.max_rate();
        for t in 0..200 {
            assert!(p.rate_at(t) <= max + 1e-12, "t={t}");
        }
    }

    #[test]
    #[should_panic(expected = "empty burst window")]
    fn degenerate_burst_panics() {
        let _ = CongestionProfile::flat(1.0).with_burst(5, 5, 2.0);
    }
}
