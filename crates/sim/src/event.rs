//! A deterministic event queue at millisecond resolution.
//!
//! Milliseconds keep sub-second P2P latencies ordered correctly even
//! though the public [`cn_chain::Timestamp`] unit is seconds. Ties are
//! broken by an insertion sequence number, so runs are reproducible no
//! matter how events collide.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Simulation time in milliseconds.
pub type SimMillis = u64;

/// An entry in the queue: a payload due at a time.
struct Scheduled<E> {
    due: SimMillis,
    seq: u64,
    payload: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.due == other.due && self.seq == other.seq
    }
}

impl<E> Eq for Scheduled<E> {}

impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed for a min-queue on (due, seq).
        other.due.cmp(&self.due).then_with(|| other.seq.cmp(&self.seq))
    }
}

impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// A deterministic min-priority event queue.
pub struct EventQueue<E> {
    heap: BinaryHeap<Scheduled<E>>,
    next_seq: u64,
    now: SimMillis,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        EventQueue { heap: BinaryHeap::new(), next_seq: 0, now: 0 }
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue at time zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// The time of the most recently popped event.
    pub fn now(&self) -> SimMillis {
        self.now
    }

    /// Schedules `payload` at absolute time `due`.
    ///
    /// # Panics
    /// Panics when `due` is in the past — events may not rewrite history.
    pub fn schedule(&mut self, due: SimMillis, payload: E) {
        assert!(due >= self.now, "event scheduled at {due} before now {}", self.now);
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Scheduled { due, seq, payload });
    }

    /// Pops the next event, advancing the clock to its due time.
    pub fn pop(&mut self) -> Option<(SimMillis, E)> {
        let s = self.heap.pop()?;
        self.now = s.due;
        Some((s.due, s.payload))
    }

    /// The due time of the next event without popping it.
    pub fn peek_due(&self) -> Option<SimMillis> {
        self.heap.peek().map(|s| s.due)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when nothing is scheduled.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(30, "c");
        q.schedule(10, "a");
        q.schedule(20, "b");
        assert_eq!(q.pop(), Some((10, "a")));
        assert_eq!(q.pop(), Some((20, "b")));
        assert_eq!(q.now(), 20);
        assert_eq!(q.pop(), Some((30, "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        q.schedule(5, "first");
        q.schedule(5, "second");
        q.schedule(5, "third");
        assert_eq!(q.pop().expect("has").1, "first");
        assert_eq!(q.pop().expect("has").1, "second");
        assert_eq!(q.pop().expect("has").1, "third");
    }

    #[test]
    fn peek_does_not_advance() {
        let mut q = EventQueue::new();
        q.schedule(7, ());
        assert_eq!(q.peek_due(), Some(7));
        assert_eq!(q.now(), 0);
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
    }

    #[test]
    #[should_panic(expected = "before now")]
    fn scheduling_in_the_past_panics() {
        let mut q = EventQueue::new();
        q.schedule(10, ());
        q.pop();
        q.schedule(5, ());
    }

    #[test]
    fn interleaved_scheduling_keeps_order() {
        let mut q = EventQueue::new();
        q.schedule(10, 1u32);
        assert_eq!(q.pop(), Some((10, 1)));
        q.schedule(15, 2);
        q.schedule(12, 3);
        assert_eq!(q.pop(), Some((12, 3)));
        assert_eq!(q.pop(), Some((15, 2)));
    }
}
