//! Deterministic event queues at millisecond resolution.
//!
//! Milliseconds keep sub-second P2P latencies ordered correctly even
//! though the public [`cn_chain::Timestamp`] unit is seconds. Ties are
//! broken by an insertion sequence number, so runs are reproducible no
//! matter how events collide.
//!
//! Two implementations share one contract (pop order is ascending
//! `(due, seq)`):
//!
//! * [`EventQueue`] — a binary heap; the reference implementation.
//! * [`BucketQueue`] — a two-level calendar queue tuned for the
//!   simulator's bounded latency distribution (most events land within
//!   seconds of `now`; block finds land minutes out). The near window is
//!   a ring of fixed-width buckets; anything beyond it overflows into a
//!   far map and migrates in as the window advances. [`World`] runs on
//!   this queue; a randomized property test pins it to the heap's order.
//!
//! [`World`]: crate::world::World

use std::cmp::Ordering;
use std::collections::{BTreeMap, BinaryHeap};

/// Simulation time in milliseconds.
pub type SimMillis = u64;

/// An entry in the queue: a payload due at a time.
struct Scheduled<E> {
    due: SimMillis,
    seq: u64,
    payload: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.due == other.due && self.seq == other.seq
    }
}

impl<E> Eq for Scheduled<E> {}

impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed for a min-queue on (due, seq).
        other.due.cmp(&self.due).then_with(|| other.seq.cmp(&self.seq))
    }
}

impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// A deterministic min-priority event queue.
pub struct EventQueue<E> {
    heap: BinaryHeap<Scheduled<E>>,
    next_seq: u64,
    now: SimMillis,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        EventQueue { heap: BinaryHeap::new(), next_seq: 0, now: 0 }
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue at time zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// The time of the most recently popped event.
    pub fn now(&self) -> SimMillis {
        self.now
    }

    /// Schedules `payload` at absolute time `due`.
    ///
    /// # Panics
    /// Panics when `due` is in the past — events may not rewrite history.
    pub fn schedule(&mut self, due: SimMillis, payload: E) {
        assert!(due >= self.now, "event scheduled at {due} before now {}", self.now);
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Scheduled { due, seq, payload });
    }

    /// Pops the next event, advancing the clock to its due time.
    pub fn pop(&mut self) -> Option<(SimMillis, E)> {
        let s = self.heap.pop()?;
        self.now = s.due;
        Some((s.due, s.payload))
    }

    /// The due time of the next event without popping it.
    pub fn peek_due(&self) -> Option<SimMillis> {
        self.heap.peek().map(|s| s.due)
    }

    /// The next event's due time and payload without popping it — what a
    /// batch drain inspects to decide whether the run continues.
    pub fn peek(&self) -> Option<(SimMillis, &E)> {
        self.heap.peek().map(|s| (s.due, &s.payload))
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when nothing is scheduled.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

/// Near-window bucket width: 2^10 = 1024 ms. Wide enough that a relay
/// fan-out (sub-second latencies) lands in a handful of buckets, narrow
/// enough that a bucket rarely holds more than a few dozen events.
const BUCKET_SHIFT: u32 = 10;

/// Near-window length in buckets: ~35 simulated minutes, covering the
/// overwhelming majority of inter-block gaps. Power of two so the ring
/// index is a mask.
const NEAR_BUCKETS: usize = 2_048;

/// Population above which a bucket abandons its vector for a heap.
///
/// Simulator buckets hold a few dozen events, far below this, so the
/// sim always runs on the vector path; only adversarially dense inputs
/// (thousands of events compressed into one 1024 ms bucket, as in the
/// `event_queue` bench's heavy-tail case) ever spill.
const SPILL_THRESHOLD: usize = 256;

/// One near-window bucket.
///
/// Two representations, chosen by population:
///
/// * `Small` — a vector, sorted descending by `(due, seq)` on first pop
///   (`sorted` flag) so popping is `pop()` off the back. Once sorted,
///   later arrivals binary-insert instead of marking the bucket dirty;
///   the naive sort-on-demand scheme re-sorts the whole bucket on every
///   pop under interleaved pop/schedule churn, going quadratic in the
///   bucket population.
/// * `Dense` — a spill min-heap (the [`Scheduled`] ordering is already
///   reversed for min-first popping) for buckets past
///   [`SPILL_THRESHOLD`], where per-insert `memmove` and bounded
///   re-sorts stop being cheap. Reverts to `Small` once drained.
enum Bucket<E> {
    Small { items: Vec<Scheduled<E>>, sorted: bool },
    Dense(BinaryHeap<Scheduled<E>>),
}

impl<E> Bucket<E> {
    fn new() -> Self {
        Bucket::Small { items: Vec::new(), sorted: false }
    }

    fn is_empty(&self) -> bool {
        match self {
            Bucket::Small { items, .. } => items.is_empty(),
            Bucket::Dense(heap) => heap.is_empty(),
        }
    }

    fn push(&mut self, entry: Scheduled<E>) {
        match self {
            Bucket::Small { items, sorted } => {
                if *sorted {
                    // `Scheduled`'s reversed ordering sorts descending
                    // by `(due, seq)`, so the true-prefix is everything
                    // due later than `entry`.
                    let at = items.partition_point(|s| *s < entry);
                    items.insert(at, entry);
                } else {
                    items.push(entry);
                }
                self.spill_if_dense();
            }
            Bucket::Dense(heap) => heap.push(entry),
        }
    }

    /// Absorbs a migrated far bucket in one batch.
    fn absorb(&mut self, batch: Vec<Scheduled<E>>) {
        match self {
            Bucket::Small { items, sorted } => {
                if items.is_empty() {
                    *items = batch;
                } else {
                    items.extend(batch);
                }
                *sorted = false;
                self.spill_if_dense();
            }
            Bucket::Dense(heap) => heap.extend(batch),
        }
    }

    fn spill_if_dense(&mut self) {
        if let Bucket::Small { items, .. } = self {
            if items.len() > SPILL_THRESHOLD {
                *self = Bucket::Dense(BinaryHeap::from(std::mem::take(items)));
            }
        }
    }

    /// Sorts a `Small` bucket if needed so its minimum sits at the back.
    fn make_ready(&mut self) {
        if let Bucket::Small { items, sorted } = self {
            if !*sorted {
                // Ascending in the reversed ordering = descending by
                // `(due, seq)`: the back is the next event.
                items.sort_unstable();
                *sorted = true;
            }
        }
    }

    fn pop(&mut self) -> Option<Scheduled<E>> {
        self.make_ready();
        match self {
            Bucket::Small { items, sorted } => {
                let s = items.pop();
                if items.is_empty() {
                    // Next epoch of this ring slot starts on the cheap
                    // unsorted-fill path.
                    *sorted = false;
                }
                s
            }
            Bucket::Dense(heap) => {
                let s = heap.pop();
                if heap.is_empty() {
                    *self = Bucket::new();
                }
                s
            }
        }
    }

    fn peek_due(&mut self) -> Option<SimMillis> {
        self.make_ready();
        match self {
            Bucket::Small { items, .. } => items.last().map(|s| s.due),
            Bucket::Dense(heap) => heap.peek().map(|s| s.due),
        }
    }

    fn peek(&mut self) -> Option<(SimMillis, &E)> {
        self.make_ready();
        match self {
            Bucket::Small { items, .. } => items.last().map(|s| (s.due, &s.payload)),
            Bucket::Dense(heap) => heap.peek().map(|s| (s.due, &s.payload)),
        }
    }
}

/// A two-level calendar queue with the same contract as [`EventQueue`].
///
/// Events due within the near window (`NEAR_BUCKETS` buckets of
/// `2^BUCKET_SHIFT` ms) go straight into a ring; later events wait in a
/// far overflow map keyed by bucket index and migrate into the ring as
/// the window slides forward. A bucket fills as an unsorted vector, is
/// sorted once when the cursor reaches it, and absorbs late arrivals by
/// binary insertion, so popping is `O(1)` off the back; pathologically
/// dense buckets spill into a per-bucket heap (see [`SPILL_THRESHOLD`]).
/// An empty near window skips directly to the earliest far bucket
/// instead of scanning.
pub struct BucketQueue<E> {
    near: Vec<Bucket<E>>,
    /// Events currently held in `near` (the ring), for skip-ahead.
    near_len: usize,
    /// Far overflow: absolute bucket index -> events in that bucket.
    far: BTreeMap<u64, Vec<Scheduled<E>>>,
    /// Absolute index of the bucket the cursor is draining; the ring
    /// covers `[cur, cur + NEAR_BUCKETS)`.
    cur: u64,
    len: usize,
    next_seq: u64,
    now: SimMillis,
}

impl<E> Default for BucketQueue<E> {
    fn default() -> Self {
        BucketQueue {
            near: (0..NEAR_BUCKETS).map(|_| Bucket::new()).collect(),
            near_len: 0,
            far: BTreeMap::new(),
            cur: 0,
            len: 0,
            next_seq: 0,
            now: 0,
        }
    }
}

impl<E> BucketQueue<E> {
    /// Creates an empty queue at time zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// The time of the most recently popped event.
    pub fn now(&self) -> SimMillis {
        self.now
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when nothing is scheduled.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Schedules `payload` at absolute time `due`.
    ///
    /// # Panics
    /// Panics when `due` is in the past — events may not rewrite history.
    pub fn schedule(&mut self, due: SimMillis, payload: E) {
        assert!(due >= self.now, "event scheduled at {due} before now {}", self.now);
        let seq = self.next_seq;
        self.next_seq += 1;
        let b = due >> BUCKET_SHIFT;
        debug_assert!(b >= self.cur, "bucket {b} behind cursor {}", self.cur);
        let entry = Scheduled { due, seq, payload };
        if b < self.cur + NEAR_BUCKETS as u64 {
            self.near[(b as usize) & (NEAR_BUCKETS - 1)].push(entry);
            self.near_len += 1;
        } else {
            self.far.entry(b).or_default().push(entry);
        }
        self.len += 1;
    }

    /// Moves every far bucket that now falls inside the near window into
    /// the ring.
    fn migrate_far(&mut self) {
        while let Some((&b, _)) = self.far.iter().next() {
            if b >= self.cur + NEAR_BUCKETS as u64 {
                break;
            }
            let items = self.far.remove(&b).expect("just observed");
            self.near_len += items.len();
            self.near[(b as usize) & (NEAR_BUCKETS - 1)].absorb(items);
        }
    }

    /// Advances the cursor to the next non-empty bucket. Caller must
    /// ensure the queue is non-empty.
    fn advance_to_nonempty(&mut self) {
        loop {
            self.migrate_far();
            if self.near_len == 0 {
                // Near window dry: jump straight to the earliest far
                // bucket (skip-ahead) and let migration pull it in.
                let (&b, _) = self.far.iter().next().expect("non-empty queue");
                self.cur = b;
                continue;
            }
            if !self.near[(self.cur as usize) & (NEAR_BUCKETS - 1)].is_empty() {
                return;
            }
            self.cur += 1;
        }
    }

    /// Pops the next event, advancing the clock to its due time.
    pub fn pop(&mut self) -> Option<(SimMillis, E)> {
        if self.len == 0 {
            return None;
        }
        self.advance_to_nonempty();
        let slot = &mut self.near[(self.cur as usize) & (NEAR_BUCKETS - 1)];
        let s = slot.pop().expect("advance found items");
        self.len -= 1;
        self.near_len -= 1;
        self.now = s.due;
        debug_assert_eq!(s.due >> BUCKET_SHIFT, self.cur);
        Some((s.due, s.payload))
    }

    /// The due time of the next event without popping it.
    pub fn peek_due(&mut self) -> Option<SimMillis> {
        if self.len == 0 {
            return None;
        }
        self.advance_to_nonempty();
        self.near[(self.cur as usize) & (NEAR_BUCKETS - 1)].peek_due()
    }

    /// The next event's due time and payload without popping it — what a
    /// batch drain inspects to decide whether the run continues.
    pub fn peek(&mut self) -> Option<(SimMillis, &E)> {
        if self.len == 0 {
            return None;
        }
        self.advance_to_nonempty();
        self.near[(self.cur as usize) & (NEAR_BUCKETS - 1)].peek()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(30, "c");
        q.schedule(10, "a");
        q.schedule(20, "b");
        assert_eq!(q.pop(), Some((10, "a")));
        assert_eq!(q.pop(), Some((20, "b")));
        assert_eq!(q.now(), 20);
        assert_eq!(q.pop(), Some((30, "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        q.schedule(5, "first");
        q.schedule(5, "second");
        q.schedule(5, "third");
        assert_eq!(q.pop().expect("has").1, "first");
        assert_eq!(q.pop().expect("has").1, "second");
        assert_eq!(q.pop().expect("has").1, "third");
    }

    #[test]
    fn peek_does_not_advance() {
        let mut q = EventQueue::new();
        q.schedule(7, ());
        assert_eq!(q.peek_due(), Some(7));
        assert_eq!(q.now(), 0);
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
    }

    #[test]
    #[should_panic(expected = "before now")]
    fn scheduling_in_the_past_panics() {
        let mut q = EventQueue::new();
        q.schedule(10, ());
        q.pop();
        q.schedule(5, ());
    }

    #[test]
    fn interleaved_scheduling_keeps_order() {
        let mut q = EventQueue::new();
        q.schedule(10, 1u32);
        assert_eq!(q.pop(), Some((10, 1)));
        q.schedule(15, 2);
        q.schedule(12, 3);
        assert_eq!(q.pop(), Some((12, 3)));
        assert_eq!(q.pop(), Some((15, 2)));
    }

    #[test]
    fn bucket_pops_in_time_order() {
        let mut q = BucketQueue::new();
        q.schedule(30, "c");
        q.schedule(10, "a");
        q.schedule(20, "b");
        assert_eq!(q.pop(), Some((10, "a")));
        assert_eq!(q.pop(), Some((20, "b")));
        assert_eq!(q.now(), 20);
        assert_eq!(q.pop(), Some((30, "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn bucket_ties_break_by_insertion_order() {
        let mut q = BucketQueue::new();
        q.schedule(5, "first");
        q.schedule(5, "second");
        q.schedule(5, "third");
        assert_eq!(q.pop().expect("has").1, "first");
        assert_eq!(q.pop().expect("has").1, "second");
        assert_eq!(q.pop().expect("has").1, "third");
    }

    #[test]
    fn bucket_peek_does_not_advance() {
        let mut q = BucketQueue::new();
        q.schedule(7, ());
        assert_eq!(q.peek_due(), Some(7));
        assert_eq!(q.now(), 0);
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
    }

    #[test]
    fn payload_peek_matches_next_pop() {
        let mut heap = EventQueue::new();
        let mut bucket = BucketQueue::new();
        for (due, p) in [(9, "b"), (3, "a"), (9, "c")] {
            heap.schedule(due, p);
            bucket.schedule(due, p);
        }
        while !bucket.is_empty() {
            let hp = heap.peek().map(|(d, &p)| (d, p));
            let bp = bucket.peek().map(|(d, &p)| (d, p));
            assert_eq!(hp, bp);
            assert_eq!(hp, heap.pop());
            assert_eq!(bp, bucket.pop());
        }
        assert_eq!(bucket.peek().map(|(d, &p)| (d, p)), None);
    }

    #[test]
    #[should_panic(expected = "before now")]
    fn bucket_scheduling_in_the_past_panics() {
        let mut q = BucketQueue::new();
        q.schedule(10, ());
        q.pop();
        q.schedule(5, ());
    }

    #[test]
    fn bucket_far_overflow_round_trips() {
        // Events far beyond the near window must come back in order.
        let window_ms = (NEAR_BUCKETS as u64) << BUCKET_SHIFT;
        let mut q = BucketQueue::new();
        q.schedule(3 * window_ms, "far");
        q.schedule(10 * window_ms, "farther");
        q.schedule(50, "near");
        assert_eq!(q.pop(), Some((50, "near")));
        assert_eq!(q.pop(), Some((3 * window_ms, "far")));
        // Scheduling relative to the new now still works.
        q.schedule(3 * window_ms + 1, "tail");
        assert_eq!(q.pop(), Some((3 * window_ms + 1, "tail")));
        assert_eq!(q.pop(), Some((10 * window_ms, "farther")));
        assert!(q.is_empty());
    }

    #[test]
    fn bucket_skip_ahead_over_empty_window() {
        // A single event many windows out must not require scanning.
        let mut q = BucketQueue::new();
        let due = (NEAR_BUCKETS as u64) << (BUCKET_SHIFT + 6);
        q.schedule(due, 42u32);
        assert_eq!(q.pop(), Some((due, 42)));
        assert_eq!(q.now(), due);
    }

    #[test]
    fn bucket_spill_to_dense_preserves_order() {
        // Force one bucket past SPILL_THRESHOLD under pop/schedule churn
        // and check the pop sequence against the reference heap.
        let mut heap: EventQueue<u64> = EventQueue::new();
        let mut bucket: BucketQueue<u64> = BucketQueue::new();
        let mut x = 0x9E37_79B9_7F4A_7C15u64;
        for i in 0..(3 * SPILL_THRESHOLD as u64) {
            x = x.wrapping_mul(0xD120_0000_0001).wrapping_add(7);
            let due = x % (1 << BUCKET_SHIFT); // all in bucket 0
            heap.schedule(due.max(heap.now()), i);
            bucket.schedule(due.max(bucket.now()), i);
            if i % 5 == 0 {
                assert_eq!(heap.pop(), bucket.pop());
            }
        }
        loop {
            let (h, b) = (heap.pop(), bucket.pop());
            assert_eq!(h, b);
            if h.is_none() {
                break;
            }
        }
    }

    /// The randomized equivalence property pinning [`BucketQueue`] to the
    /// reference heap: identical schedule/pop interleavings must produce
    /// identical pop sequences, with due-time offsets drawn from uniform
    /// near, clustered-tie, and heavy-tailed far distributions.
    #[test]
    fn bucket_matches_heap_reference_randomized() {
        use cn_stats::SimRng;
        for seed in 0..8u64 {
            let mut rng = SimRng::seed_from_u64(0xEBE17 + seed);
            let mut heap: EventQueue<u64> = EventQueue::new();
            let mut bucket: BucketQueue<u64> = BucketQueue::new();
            let mut payload = 0u64;
            for _ in 0..400 {
                let burst = rng.next_below(8);
                for _ in 0..burst {
                    let offset = match rng.next_below(4) {
                        // Uniform across a few near buckets.
                        0 => rng.next_below(5_000),
                        // Dense ties inside one bucket.
                        1 => rng.next_below(16),
                        // Block-find scale (minutes).
                        2 => rng.next_below(2_000_000),
                        // Heavy tail: up to ~2^26 ms, far beyond the window.
                        _ => 1u64 << (6 + rng.next_below(21)),
                    };
                    let due = heap.now() + offset;
                    heap.schedule(due, payload);
                    bucket.schedule(due, payload);
                    payload += 1;
                }
                let pops = rng.next_below(6);
                for _ in 0..pops {
                    assert_eq!(heap.pop(), bucket.pop(), "seed {seed}");
                    assert_eq!(heap.now(), bucket.now(), "seed {seed}");
                }
                assert_eq!(heap.len(), bucket.len(), "seed {seed}");
            }
            // Drain both completely.
            loop {
                let (h, b) = (heap.pop(), bucket.pop());
                assert_eq!(h, b, "seed {seed}");
                if h.is_none() {
                    break;
                }
            }
        }
    }
}
