//! # cn-sim — deterministic discrete-event blockchain simulator
//!
//! Produces the artifacts the paper's audit consumes — a confirmed chain,
//! an observer's 15-second Mempool snapshot stream, and (unlike the real
//! world) *ground truth* about every injected misbehaviour — from a single
//! seeded scenario description:
//!
//! * [`event`] — a deterministic millisecond-resolution event queue.
//! * [`congestion`] — congestion profiles: base transaction rate, diurnal
//!   waves, and burst windows (dataset ℬ's June-2019 price-surge spikes).
//! * [`profile`] — per-run profiling: event counts and per-subsystem
//!   timings (observational only; never feeds back into the run).
//! * [`workload`] — the user population: wallet/outpoint management, fee
//!   bidding against a wallet-style estimator, CPFP chains, scam
//!   donations, self-interest transfers, dark-fee acceleration demand.
//! * [`scenario`] — the full configuration surface.
//! * [`sink`] — streaming event sinks: the chunked run path emits the
//!   canonical block/snapshot stream to a consumer instead of RAM.
//! * [`truth`] — ground-truth labels for detector validation.
//! * [`world`] — the runner: arrivals → P2P propagation → per-pool
//!   template construction → chain validation → Mempool block-connect.
//!
//! Identical seeds produce byte-identical results; no ambient clock or
//! platform randomness is consulted anywhere.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod congestion;
pub mod event;
pub mod profile;
pub mod scenario;
pub mod sink;
pub mod truth;
pub mod workload;
pub mod world;

pub use congestion::CongestionProfile;
pub use profile::SimProfile;
pub use scenario::{PoolBehavior, PoolConfig, ScamConfig, Scenario};
pub use sink::{CollectingSink, EventSink};
pub use truth::GroundTruth;
pub use world::{SimOutput, StreamedSummary, World, WorldCheckpoint};
